package repro

import (
	"context"
	"fmt"
	"math"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/passive"
	"repro/internal/sampling"
)

// Built-in solver names. Tap solvers consume *Instance, beacon solvers
// ProbeSet (or *ProbeSet), sampling solvers *MultiInstance.
const (
	SolverTapGreedyLoad = "tap/greedy-load"
	SolverTapGreedyGain = "tap/greedy-gain"
	SolverTapFlow       = "tap/flow-heuristic"
	SolverTapILP        = "tap/ilp"
	SolverTapILPArcPath = "tap/ilp-lp1"
	SolverTapExact      = "tap/exact"
	SolverTapRounding   = "tap/rounding"
	SolverTapMaxCover   = "tap/max-coverage"
	SolverTapPortfolio  = "tap/portfolio"

	SolverBeaconThiran = "beacon/thiran"
	SolverBeaconGreedy = "beacon/greedy"
	SolverBeaconILP    = "beacon/ilp"

	SolverSamplePPME  = "sample/ppme"
	SolverSampleRates = "sample/rates"
)

func init() {
	tap := func(name string, fn func(ctx context.Context, in *Instance, o Options) (TapPlacement, error)) {
		mustRegister(SolverFunc{SolverName: name, Fn: func(ctx context.Context, problem Problem, o Options) (*Result, error) {
			in, err := tapInstance(problem)
			if err != nil {
				return nil, err
			}
			if o.Coverage <= 0 || o.Coverage > 1 {
				return nil, fmt.Errorf("coverage %g outside (0,1]", o.Coverage)
			}
			pl, err := fn(ctx, in, o)
			if err != nil {
				return nil, err
			}
			return tapResult(pl), nil
		}})
	}

	tap(SolverTapGreedyLoad, func(_ context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.GreedyLoad(in, o.Coverage), nil
	})
	tap(SolverTapGreedyGain, func(_ context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.GreedyGain(in, o.Coverage), nil
	})
	tap(SolverTapFlow, func(_ context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.FlowHeuristic(in, o.Coverage), nil
	})
	tap(SolverTapILP, func(ctx context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.SolveILP(ctx, in, o.Coverage, ilpOptions(passive.LP2, o))
	})
	tap(SolverTapILPArcPath, func(ctx context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.SolveILP(ctx, in, o.Coverage, ilpOptions(passive.LP1, o))
	})
	tap(SolverTapExact, func(ctx context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.ExactCover(ctx, in, o.Coverage, cover.ExactOptions{
			MaxNodes: o.MaxNodes,
			Warm:     o.warmCover,
			Capture:  o.captureCover,
		}), nil
	})
	tap(SolverTapRounding, func(ctx context.Context, in *Instance, o Options) (TapPlacement, error) {
		return passive.RandomizedRounding(ctx, in, o.Coverage, o.Seed)
	})

	// tap/max-coverage ignores Coverage: it maximizes monitored volume
	// under the device budget instead of minimizing devices under a
	// coverage floor.
	mustRegister(SolverFunc{SolverName: SolverTapMaxCover, Fn: func(ctx context.Context, problem Problem, o Options) (*Result, error) {
		in, err := tapInstance(problem)
		if err != nil {
			return nil, err
		}
		pl, err := passive.MaxCoverage(ctx, in, o.Budget, o.Installed)
		if err != nil {
			return nil, err
		}
		res := tapResult(pl)
		res.Objective = pl.Covered
		res.Bound = finiteBound(pl.Stats.Bound)
		res.Gap = gapOf(res.Objective, pl.Stats.Bound, res.Optimal)
		return res, nil
	}})

	mustRegister(NewPortfolio(SolverTapPortfolio,
		SolverTapGreedyGain, SolverTapFlow, SolverTapILP))

	beacon := func(name string, fn func(ctx context.Context, ps ProbeSet, o Options) (BeaconPlacement, error)) {
		mustRegister(SolverFunc{SolverName: name, Fn: func(ctx context.Context, problem Problem, o Options) (*Result, error) {
			ps, err := probeSet(problem)
			if err != nil {
				return nil, err
			}
			pl, err := fn(ctx, ps, o)
			if err != nil {
				return nil, err
			}
			return beaconResult(pl), nil
		}})
	}
	beacon(SolverBeaconThiran, func(_ context.Context, ps ProbeSet, _ Options) (BeaconPlacement, error) {
		return active.PlaceThiran(ps)
	})
	beacon(SolverBeaconGreedy, func(_ context.Context, ps ProbeSet, _ Options) (BeaconPlacement, error) {
		return active.PlaceGreedy(ps)
	})
	beacon(SolverBeaconILP, func(ctx context.Context, ps ProbeSet, o Options) (BeaconPlacement, error) {
		return active.PlaceILPOpts(ctx, ps, active.ILPOptions{MaxNodes: o.MaxNodes, Gap: o.Gap, RelGap: o.RelGap})
	})

	mustRegister(SolverFunc{SolverName: SolverSamplePPME, Fn: func(ctx context.Context, problem Problem, o Options) (*Result, error) {
		mi, err := multiInstance(problem)
		if err != nil {
			return nil, err
		}
		sol, err := sampling.Solve(ctx, mi, sampling.Config{K: o.Coverage, MaxNodes: o.MaxNodes, Gap: o.Gap, RelGap: o.RelGap})
		if err != nil {
			return nil, err
		}
		return samplingResult(sol), nil
	}})
	mustRegister(SolverFunc{SolverName: SolverSampleRates, Fn: func(ctx context.Context, problem Problem, o Options) (*Result, error) {
		mi, err := multiInstance(problem)
		if err != nil {
			return nil, err
		}
		sol, err := sampling.SolveRates(ctx, mi, o.Installed, sampling.Config{K: o.Coverage})
		if err != nil {
			return nil, err
		}
		return samplingResult(sol), nil
	}})
}

func tapInstance(problem Problem) (*Instance, error) {
	in, ok := problem.(*Instance)
	if !ok {
		return nil, fmt.Errorf("want *repro.Instance, got %T", problem)
	}
	return in, nil
}

func multiInstance(problem Problem) (*MultiInstance, error) {
	mi, ok := problem.(*MultiInstance)
	if !ok {
		return nil, fmt.Errorf("want *repro.MultiInstance, got %T", problem)
	}
	return mi, nil
}

func probeSet(problem Problem) (ProbeSet, error) {
	switch ps := problem.(type) {
	case ProbeSet:
		return ps, nil
	case *ProbeSet:
		return *ps, nil
	}
	return ProbeSet{}, fmt.Errorf("want repro.ProbeSet, got %T", problem)
}

func ilpOptions(f passive.Formulation, o Options) ILPOptions {
	return ILPOptions{
		Formulation: f,
		Installed:   o.Installed,
		Budget:      o.Budget,
		MaxNodes:    o.MaxNodes,
		Gap:         o.Gap,
		RelGap:      o.RelGap,
	}
}

func tapResult(pl TapPlacement) *Result {
	res := &Result{
		Taps:      &pl,
		Objective: float64(pl.Devices()),
		Bound:     finiteBound(pl.Stats.Bound),
		Optimal:   pl.Exact,
		Stats:     solveStats(pl.Stats),
	}
	res.Gap = gapOf(res.Objective, res.Bound, res.Optimal)
	// Normalize the embedded counters to the same finite sentinel, so
	// a Result is always JSON-marshalable (the service and the
	// persistent cache serialize it; ±Inf has no JSON encoding).
	pl.Stats.Bound = res.Bound
	return res
}

func beaconResult(pl BeaconPlacement) *Result {
	res := &Result{
		Beacons:   &pl,
		Objective: float64(pl.Devices()),
		Bound:     finiteBound(pl.Stats.Bound),
		Optimal:   pl.Exact,
		Stats:     solveStats(pl.Stats),
	}
	res.Gap = gapOf(res.Objective, res.Bound, res.Optimal)
	pl.Stats.Bound = res.Bound
	return res
}

func samplingResult(sol *SamplingSolution) *Result {
	res := &Result{
		Sampling:  sol,
		Objective: sol.Cost,
		Bound:     finiteBound(sol.Stats.Bound),
		Optimal:   sol.Exact,
		Stats:     solveStats(sol.Stats),
	}
	res.Gap = gapOf(res.Objective, res.Bound, res.Optimal)
	sol.Stats.Bound = res.Bound
	return res
}

// solveStats copies an internal effort-counter block into the public
// Stats (Wall is stamped by SolverFunc.Solve).
func solveStats(st core.SolveStats) Stats {
	return Stats{
		Nodes:            st.Nodes,
		Pivots:           st.Pivots,
		Refactorizations: st.Refactorizations,
		DevexResets:      st.DevexResets,
		WarmStarts:       st.WarmStarts,
		CutsAdded:        st.CutsAdded,
		VarsFixed:        st.VarsFixed,
		PresolveRemoved:  st.PresolveRemoved,
		StrongBranches:   st.StrongBranches,
		SubtreeTasks:     st.SubtreeTasks,
		Steals:           st.Steals,
		DominancePrunes:  st.DominancePrunes,
		Degraded:         st.Degraded,
	}
}

// gapOf returns |objective − bound| for early-stopped exact solves and
// 0 when the result is proven optimal or the solver computed no bound
// (zero or non-finite, e.g. a solve canceled before its root
// relaxation finished).
func gapOf(objective, bound float64, optimal bool) float64 {
	if optimal || bound == 0 || math.IsInf(bound, 0) || math.IsNaN(bound) {
		return 0
	}
	return math.Abs(objective - bound)
}

// finiteBound maps a solver's "no bound proven" infinities to the zero
// sentinel the Result documentation promises.
func finiteBound(bound float64) float64 {
	if math.IsInf(bound, 0) || math.IsNaN(bound) {
		return 0
	}
	return bound
}
