package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cover"
	"repro/internal/lp"
)

// This file implements session re-optimization (ROADMAP item 2): a
// Session re-solves a mutated problem warm, reusing the previous
// solve's artifacts — the incumbent placement as a search hint and the
// saved root LP basis — instead of starting cold, while guaranteeing
// the answer is byte-identical to a cold solve of the mutated instance
// (the resolve==cold metamorphic lock in internal/scenariotest).
//
// Which artifacts survive which mutation is governed by the structural
// Delta between the previous and the next problem:
//
//	class          hint  LP basis   rationale
//	Unchanged       ✓       ✓       everything still describes the instance
//	Rescale         ✓       ✓       same traffic rows → same LP shape; the
//	                                dual-simplex revalidates the basis and
//	                                falls back cold on rejection
//	Traffic         ✓       –       rows added/removed change the LP shape;
//	                                the hint is re-validated against the new
//	                                instance before adoption
//	Topology        –       –       edge IDs may be reassigned: nothing from
//	                                the old instance names the same objects
//	Unknown         –       –       unsupported problem kind, solve cold
//
// Soundness never depends on this table: every artifact is re-validated
// by the solver that consumes it (hints are feasibility-checked, bases
// shape-checked and dual-repaired). The table only decides what is
// worth shipping.

// DeltaClass classifies the structural mutation between two problems.
type DeltaClass int

const (
	// DeltaUnknown marks a pair of problems the differ could not relate
	// (unsupported kind, or nil): resolve cold.
	DeltaUnknown DeltaClass = iota
	// DeltaUnchanged: structurally identical problems.
	DeltaUnchanged
	// DeltaRescale: same topology, same traffic rows (IDs and paths),
	// only volumes changed — the bounded delta traffic.Churn's rescale
	// step performs.
	DeltaRescale
	// DeltaTraffic: same topology, traffic rows added or removed (and
	// possibly rescaled) — churn's drop/add steps.
	DeltaTraffic
	// DeltaTopology: the graph itself changed (link down, node added).
	DeltaTopology
)

func (c DeltaClass) String() string {
	switch c {
	case DeltaUnchanged:
		return "unchanged"
	case DeltaRescale:
		return "rescale"
	case DeltaTraffic:
		return "traffic"
	case DeltaTopology:
		return "topology"
	}
	return "unknown"
}

// Delta is the structural diff between two problems, computed by
// ComputeDelta. It drives the artifact validity rules above and gives
// tests something to assert boundedness on.
type Delta struct {
	Class DeltaClass
	// RowsAdded and RowsRemoved count traffic rows present in only one
	// of the two instances (matched by ID; a row whose path changed
	// counts as removed+added, since its cover column is a different
	// object).
	RowsAdded   int
	RowsRemoved int
	// Rescaled counts surviving rows whose volume changed; MinFactor
	// and MaxFactor bound the ratios new/old over those rows (both 1
	// when Rescaled is 0).
	Rescaled  int
	MinFactor float64
	MaxFactor float64
}

// ComputeDelta structurally diffs two problems. Only *Instance pairs
// are classified; anything else is DeltaUnknown (the session then
// simply resolves cold, which is always sound).
func ComputeDelta(prev, next Problem) Delta {
	a, okA := prev.(*Instance)
	b, okB := next.(*Instance)
	if !okA || !okB || a == nil || b == nil {
		return Delta{Class: DeltaUnknown, MinFactor: 1, MaxFactor: 1}
	}
	if !sameGraph(a.G, b.G) {
		return Delta{Class: DeltaTopology, MinFactor: 1, MaxFactor: 1}
	}
	d := Delta{MinFactor: 1, MaxFactor: 1}
	prevRows := make(map[int]*Traffic, len(a.Traffics))
	for i := range a.Traffics {
		prevRows[a.Traffics[i].ID] = &a.Traffics[i]
	}
	seen := make(map[int]bool, len(b.Traffics))
	for i := range b.Traffics {
		t := &b.Traffics[i]
		p, ok := prevRows[t.ID]
		if !ok || !samePath(p.Path, t.Path) {
			d.RowsAdded++
			continue
		}
		seen[t.ID] = true
		if p.Volume != t.Volume {
			d.Rescaled++
			if p.Volume > 0 {
				f := t.Volume / p.Volume
				if d.Rescaled == 1 {
					d.MinFactor, d.MaxFactor = f, f
				} else {
					if f < d.MinFactor {
						d.MinFactor = f
					}
					if f > d.MaxFactor {
						d.MaxFactor = f
					}
				}
			}
		}
	}
	for id := range prevRows {
		if !seen[id] {
			d.RowsRemoved++
		}
	}
	switch {
	case d.RowsAdded > 0 || d.RowsRemoved > 0:
		d.Class = DeltaTraffic
	case d.Rescaled > 0:
		d.Class = DeltaRescale
	default:
		d.Class = DeltaUnchanged
	}
	return d
}

func sameGraph(a, b *Graph) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	be := b.Edges()
	for i, e := range a.Edges() {
		if e.U != be[i].U || e.V != be[i].V || e.Capacity != be[i].Capacity || e.Weight != be[i].Weight {
			return false
		}
	}
	return true
}

func samePath(a, b Path) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// PlacementDiff reports how a placement moved between two results —
// the operational answer ("which devices do I physically touch?") a
// churn-step re-solve exists to produce.
type PlacementDiff struct {
	// AddedTaps and RemovedTaps are tap links present in only one of
	// the two placements (sorted).
	AddedTaps   []EdgeID
	RemovedTaps []EdgeID
	// AddedBeacons and RemovedBeacons are the beacon equivalents.
	AddedBeacons   []NodeID
	RemovedBeacons []NodeID
	// Unchanged counts devices common to both placements.
	Unchanged int
}

// Moves returns the total number of device changes in the diff.
func (d PlacementDiff) Moves() int {
	return len(d.AddedTaps) + len(d.RemovedTaps) + len(d.AddedBeacons) + len(d.RemovedBeacons)
}

// Diff compares this result's placement against a previous one and
// returns the devices added and removed. A nil prev reports every
// device as added. Sampling placements diff on their device edges.
func (r *Result) Diff(prev *Result) PlacementDiff {
	var d PlacementDiff
	var prevTaps []EdgeID
	var prevBeacons []NodeID
	if prev != nil {
		if prev.Taps != nil {
			prevTaps = prev.Taps.Edges
		}
		if prev.Sampling != nil {
			prevTaps = prev.Sampling.Edges
		}
		if prev.Beacons != nil {
			prevBeacons = prev.Beacons.Beacons
		}
	}
	var curTaps []EdgeID
	if r.Taps != nil {
		curTaps = r.Taps.Edges
	}
	if r.Sampling != nil {
		curTaps = r.Sampling.Edges
	}
	var curBeacons []NodeID
	if r.Beacons != nil {
		curBeacons = r.Beacons.Beacons
	}
	addE, remE, sameE := diffIDs(prevTaps, curTaps)
	d.AddedTaps, d.RemovedTaps = addE, remE
	addN, remN, sameN := diffIDs(prevBeacons, curBeacons)
	d.AddedBeacons, d.RemovedBeacons = addN, remN
	d.Unchanged = sameE + sameN
	return d
}

// diffIDs set-diffs two sorted-comparable ID slices, returning
// (in cur only, in prev only, in both).
func diffIDs[T EdgeID | NodeID](prev, cur []T) (added, removed []T, unchanged int) {
	inPrev := make(map[T]bool, len(prev))
	for _, e := range prev {
		inPrev[e] = true
	}
	inCur := make(map[T]bool, len(cur))
	for _, e := range cur {
		inCur[e] = true
	}
	for _, e := range cur {
		if inPrev[e] {
			unchanged++
		} else {
			added = append(added, e)
		}
	}
	for _, e := range prev {
		if !inCur[e] {
			removed = append(removed, e)
		}
	}
	return added, removed, unchanged
}

// Session re-solves a drifting problem warm. The first Solve runs cold
// and captures re-usable artifacts; every subsequent Resolve diffs the
// new problem against the previous one, ships whichever artifacts the
// Delta class keeps valid, and re-captures from the new solve. Answers
// are byte-identical to cold solves of the same problem — warmth only
// changes how fast the proof closes (Stats counters show the
// difference; scenariotest invariant 6 locks the equality).
//
// A Session is safe for concurrent use but serializes its solves: the
// artifact chain is a sequence, not a pool. Results are never shared
// with a cache — a warm result must not masquerade as a cold one (see
// engine.SessionScope) — so sessions trade memoization for warmth.
type Session struct {
	mu     sync.Mutex
	solver Solver
	opts   []Option

	prevProblem Problem
	prevResult  *Result
	coverBasis  *lp.Basis
	lastDelta   Delta
	resolves    int
}

// NewSession builds a session around a registered solver. The options
// apply to every solve in the session (per-solve options can be added
// on Solve/Resolve and take precedence).
func NewSession(solver string, opts ...Option) (*Session, error) {
	s, err := LookupSolver(solver)
	if err != nil {
		return nil, err
	}
	return &Session{solver: s, opts: opts}, nil
}

// Solve runs a cold solve and (re)starts the artifact chain from its
// result. Use it for the first problem of a session or to hard-reset
// after Resolve reported an unusable delta.
func (s *Session) Solve(ctx context.Context, problem Problem, opts ...Option) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solveLocked(ctx, problem, nil, Delta{Class: DeltaUnknown, MinFactor: 1, MaxFactor: 1}, opts)
}

// Resolve re-solves a mutated problem warm: it computes the structural
// Delta against the session's previous problem, injects the artifacts
// that class keeps valid, and solves. The result is byte-identical to
// a cold Solve of the same problem; r.Diff(session.Previous()) — taken
// before Resolve updates the chain — or the convenience LastDiff gives
// the device moves.
func (s *Session) Resolve(ctx context.Context, problem Problem, opts ...Option) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prevProblem == nil {
		return s.solveLocked(ctx, problem, nil, Delta{Class: DeltaUnknown, MinFactor: 1, MaxFactor: 1}, opts)
	}
	delta := ComputeDelta(s.prevProblem, problem)
	var warm *cover.Warm
	switch delta.Class {
	case DeltaUnchanged, DeltaRescale:
		warm = &cover.Warm{Hint: s.prevHint(), Basis: s.coverBasis}
	case DeltaTraffic:
		warm = &cover.Warm{Hint: s.prevHint()}
	}
	if warm != nil && warm.Hint == nil && warm.Basis == nil {
		warm = nil // nothing accumulated yet: plain cold solve
	}
	return s.solveLocked(ctx, problem, warm, delta, opts)
}

// Previous returns the session's previous result (nil before the first
// solve). Treat it as read-only.
func (s *Session) Previous() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prevResult
}

// LastDelta returns the Delta of the most recent Resolve (class
// DeltaUnknown for a cold Solve).
func (s *Session) LastDelta() Delta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastDelta
}

// Resolves returns how many solves the session has run.
func (s *Session) Resolves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolves
}

// prevHint extracts the previous tap placement as a cover hint (edge
// IDs double as set indices in the Theorem 1 set-cover view).
func (s *Session) prevHint() []int {
	if s.prevResult == nil || s.prevResult.Taps == nil {
		return nil
	}
	hint := make([]int, len(s.prevResult.Taps.Edges))
	for i, e := range s.prevResult.Taps.Edges {
		hint[i] = int(e)
	}
	return hint
}

func (s *Session) solveLocked(ctx context.Context, problem Problem, warm *cover.Warm, delta Delta, opts []Option) (*Result, error) {
	capture := &cover.Capture{}
	all := make([]Option, 0, len(s.opts)+len(opts)+1)
	all = append(all, s.opts...)
	all = append(all, opts...)
	all = append(all, func(o *Options) {
		o.warmCover = warm
		o.captureCover = capture
	})
	res, err := s.solver.Solve(ctx, problem, all...)
	if err != nil {
		return nil, fmt.Errorf("session resolve %d (%s delta): %w", s.resolves, delta.Class, err)
	}
	s.lastDelta = delta
	s.resolves++
	s.prevProblem = problem
	s.prevResult = res
	if res.Degraded || ctx.Err() != nil {
		// A degraded or deadline-cut answer must not seed the next warm
		// solve's artifact chain: its incumbent is clock-dependent. The
		// result itself is returned (with provenance intact), but the
		// chain restarts cold.
		s.prevProblem, s.prevResult, s.coverBasis = nil, nil, nil
		return res, nil
	}
	if capture.Basis != nil {
		s.coverBasis = capture.Basis
	} else if warm == nil || warm.Basis == nil {
		// Cold solve that never ran the LP: no basis to carry.
		s.coverBasis = nil
	}
	return res, nil
}
