package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/fault"
)

// Persistent result store: a Runner built WithCacheDir keeps its memo
// cache content-addressed on disk — one JSON file per canonical
// SHA-256 instance key (the same keys engine.Key computes for the
// in-memory cache) — so a restarted process is warm from its first
// request. The store is written through the cache's OnStore hook at
// solve time (crash-safe: an entry is on disk before any waiter sees
// it) and loaded through Seed at construction. Files are written
// atomically (temp + rename), and every entry is a self-certifying
// envelope: the canonical key plus a SHA-256 checksum over the result
// bytes. On load, an entry whose filename, embedded key, checksum, and
// JSON shape do not all agree is moved to a quarantine/ subdirectory —
// never served, never deleted (the evidence survives for postmortem) —
// and counted on the runner; foreign files (wrong extension, non-key
// names) are skipped silently. The store is an accelerator, never a
// correctness dependency: a quarantined entry just means one cold
// re-solve.

// cacheFileExt is the extension of persisted result entries.
const cacheFileExt = ".json"

// quarantineDir is the subdirectory corrupt entries are moved to.
const quarantineDir = "quarantine"

// cacheEnvelope is the on-disk format of one entry. SHA256 certifies
// Result's exact bytes, so a torn write, a flipped bit, or a file
// renamed under a different key is detected before the result is ever
// seeded into the cache.
type cacheEnvelope struct {
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// cacheStore binds a directory to the quarantine counter of the runner
// that owns it.
type cacheStore struct {
	dir         string
	quarantined *atomic.Int64
}

// load seeds cache with every verified entry under the store's
// directory. Corrupt entries are quarantined and counted; foreign
// files are skipped; a missing dir loads nothing.
func (cs *cacheStore) load(cache *engine.Cache) (loaded int) {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		return 0
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, cacheFileExt) {
			continue
		}
		key := strings.TrimSuffix(name, cacheFileExt)
		if !validCacheKey(key) {
			continue
		}
		// Inject point: a failing or bit-rotted disk under the store.
		// Err simulates an unreadable file (skipped, like a real read
		// error); Corrupt flips one byte of the content below, which the
		// envelope checksum must catch and quarantine.
		out := fault.Hit(fault.PointCacheLoad)
		if out.Err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(cs.dir, name))
		if err != nil {
			continue
		}
		if out.Corrupt && len(data) > 0 {
			data[len(data)/2] ^= 0x40
		}
		res, ok := decodeCacheEntry(key, data)
		if !ok {
			cs.quarantine(name)
			continue
		}
		if cache.Seed(key, res) {
			loaded++
		}
	}
	return loaded
}

// decodeCacheEntry verifies one entry's envelope against the filename
// key and returns the result it certifies.
func decodeCacheEntry(key string, data []byte) (*Result, bool) {
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	if env.Key != key || len(env.Result) == 0 {
		return nil, false
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// quarantine moves a corrupt entry into the quarantine/ subdirectory
// (best-effort) and counts it. The file is preserved, not deleted: a
// corrupt store entry is evidence of a disk or writer bug.
func (cs *cacheStore) quarantine(name string) {
	cs.quarantined.Add(1)
	qdir := filepath.Join(cs.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	os.Rename(filepath.Join(cs.dir, name), filepath.Join(qdir, name))
}

// save writes one result under the store's directory, atomically.
// Persistence is best-effort: on any error the entry simply stays
// memory-only.
func (cs *cacheStore) save(key string, value any) {
	res, ok := value.(*Result)
	if !ok || !validCacheKey(key) {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		return
	}
	sum := sha256.Sum256(body)
	data, err := json.Marshal(cacheEnvelope{Key: key, SHA256: hex.EncodeToString(sum[:]), Result: body})
	if err != nil {
		return
	}
	// Inject point: a failing disk under the writer. Err drops the write
	// (entry stays memory-only); Corrupt truncates the payload to half —
	// the torn image a non-atomic writer would leave — which the next
	// load must quarantine instead of serving.
	out := fault.Hit(fault.PointCacheStore)
	if out.Err != nil {
		return
	}
	if out.Corrupt {
		data = data[:len(data)/2]
	}
	tmp, err := os.CreateTemp(cs.dir, "."+key+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	os.Rename(tmp.Name(), filepath.Join(cs.dir, key+cacheFileExt))
}

// validCacheKey reports whether key looks like a canonical engine key
// (lowercase hex SHA-256) — the guard that keeps the store from ever
// writing or reading a path-traversing filename.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// attachCacheDir wires the persistent store to a fresh cache: load
// first (warm restarts), then install the write-through save hook.
// Quarantined-entry counts accumulate on quarantined.
func attachCacheDir(cache *engine.Cache, dir string, quarantined *atomic.Int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repro: cache dir: %w", err)
	}
	cs := &cacheStore{dir: dir, quarantined: quarantined}
	cs.load(cache)
	cache.SetOnStore(cs.save)
	return nil
}
