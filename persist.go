package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/engine"
)

// Persistent result store: a Runner built WithCacheDir keeps its memo
// cache content-addressed on disk — one JSON file per canonical
// SHA-256 instance key (the same keys engine.Key computes for the
// in-memory cache) — so a restarted process is warm from its first
// request. The store is written through the cache's OnStore hook at
// solve time (crash-safe: an entry is on disk before any waiter sees
// it) and loaded through Seed at construction. Files are written
// atomically (temp + rename), and unreadable or corrupt entries are
// skipped on load: the store is an accelerator, never a correctness
// dependency.

// cacheFileExt is the extension of persisted result entries.
const cacheFileExt = ".json"

// loadCacheDir seeds cache with every decodable entry under dir.
// Corrupt or foreign files are skipped; a missing dir loads nothing.
func loadCacheDir(cache *engine.Cache, dir string) (loaded int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, cacheFileExt) {
			continue
		}
		key := strings.TrimSuffix(name, cacheFileExt)
		if !validCacheKey(key) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var res Result
		if err := json.Unmarshal(data, &res); err != nil {
			continue
		}
		if cache.Seed(key, &res) {
			loaded++
		}
	}
	return loaded
}

// saveCacheEntry writes one result under dir, atomically. Persistence
// is best-effort: on any error the entry simply stays memory-only.
func saveCacheEntry(dir, key string, value any) {
	res, ok := value.(*Result)
	if !ok || !validCacheKey(key) {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	os.Rename(tmp.Name(), filepath.Join(dir, key+cacheFileExt))
}

// validCacheKey reports whether key looks like a canonical engine key
// (lowercase hex SHA-256) — the guard that keeps the store from ever
// writing or reading a path-traversing filename.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// attachCacheDir wires the persistent store to a fresh cache: load
// first (warm restarts), then install the write-through save hook.
func attachCacheDir(cache *engine.Cache, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repro: cache dir: %w", err)
	}
	loadCacheDir(cache, dir)
	cache.SetOnStore(func(key string, value any) { saveCacheEntry(dir, key, value) })
	return nil
}
