package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// marshalNoWall marshals a result with the wall clock zeroed: a
// re-solve reproduces every deterministic field, but not the clock.
func marshalNoWall(t *testing.T, res *Result) []byte {
	t.Helper()
	cp := *res
	cp.Stats.Wall = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// seedStore solves one instance into dir and returns the persisted
// entry filenames plus the canonical response bytes.
func seedStore(t *testing.T, dir string) (files []string, want []byte) {
	t.Helper()
	r := NewRunner(WithWorkers(1), WithCacheDir(dir))
	res, err := r.SolveBatch(context.Background(), SolverTapExact,
		[]Problem{testInstance(t, 1)}, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	want = marshalNoWall(t, res[0])
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), cacheFileExt) {
			files = append(files, de.Name())
		}
	}
	if len(files) == 0 {
		t.Fatal("cold solve persisted no entries")
	}
	return files, want
}

// resolveAfter restarts a runner over dir, re-solves the same problem,
// and returns the runner and its response bytes.
func resolveAfter(t *testing.T, dir string) (*Runner, []byte) {
	t.Helper()
	r := NewRunner(WithWorkers(1), WithCacheDir(dir))
	res, err := r.SolveBatch(context.Background(), SolverTapExact,
		[]Problem{testInstance(t, 1)}, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	return r, marshalNoWall(t, res[0])
}

// TestCacheDirCorruptEntriesQuarantined covers the WithCacheDir
// corruption ladder: truncated, bit-flipped, and wrong-key entries must
// each be quarantined (moved, counted), never served, and the re-solve
// must reproduce the original answer byte-for-byte.
func TestCacheDirCorruptEntriesQuarantined(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func(data []byte) []byte
		rename bool
	}{
		{name: "truncated", mangle: func(d []byte) []byte { return d[:len(d)/2] }},
		{name: "bit-flipped", mangle: func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)/2] ^= 0x01
			return out
		}},
		{name: "wrong-key", rename: true},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			files, want := seedStore(t, dir)
			victim := files[0]
			path := filepath.Join(dir, victim)
			quarantined := victim
			if tc.rename {
				// A valid-looking key that does not match the envelope's
				// embedded key: the self-certification must reject it.
				wrong := strings.Repeat("ab", 32) + cacheFileExt
				if err := os.Rename(path, filepath.Join(dir, wrong)); err != nil {
					t.Fatal(err)
				}
				quarantined = wrong
			} else {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			r, got := resolveAfter(t, dir)
			if !bytes.Equal(got, want) {
				t.Fatalf("re-solve after %s corruption differs:\nwant %s\ngot  %s", tc.name, want, got)
			}
			if n := r.CacheQuarantined(); n != 1 {
				t.Fatalf("CacheQuarantined = %d, want 1", n)
			}
			if hits, _ := r.CacheCounts(); hits != 0 {
				t.Fatalf("cache hits = %d, want 0 (corrupt entry must not be served)", hits)
			}
			if _, err := os.Stat(filepath.Join(dir, quarantineDir, quarantined)); err != nil {
				t.Fatalf("corrupt entry not preserved in quarantine/: %v", err)
			}
			// The re-solve rewrote a fresh, verifiable entry under the
			// real key (wrong-key corruption leaves no file under the
			// bogus name).
			if tc.rename {
				if _, err := os.Stat(filepath.Join(dir, quarantined)); !os.IsNotExist(err) {
					t.Fatalf("bogus-key file still present in the store: %v", err)
				}
			} else {
				data, err := os.ReadFile(filepath.Join(dir, victim))
				if err != nil {
					t.Fatalf("fresh entry missing after re-solve: %v", err)
				}
				key := strings.TrimSuffix(victim, cacheFileExt)
				if _, ok := decodeCacheEntry(key, data); !ok {
					t.Fatal("re-solved store entry does not verify")
				}
			}
		})
	}
}

// TestCacheDirForeignFilesSkippedSilently pins the skip-vs-quarantine
// boundary: files that are not store entries at all (wrong extension,
// non-key names) are left alone and not counted.
func TestCacheDirForeignFilesSkippedSilently(t *testing.T) {
	dir := t.TempDir()
	_, want := seedStore(t, dir)
	for name, content := range map[string]string{
		"notes.txt":  "operator scribbles",
		"short.json": "{}",
		"UPPERCASE" + strings.Repeat("0", 55) + ".json": "{}",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r, got := resolveAfter(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatal("foreign files changed the served result")
	}
	if n := r.CacheQuarantined(); n != 0 {
		t.Fatalf("CacheQuarantined = %d, want 0 (foreign files are skipped, not quarantined)", n)
	}
	if hits, _ := r.CacheCounts(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (real entry must still be served)", hits)
	}
	for _, name := range []string{"notes.txt", "short.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("foreign file %s was touched: %v", name, err)
		}
	}
}

// TestCacheStoreTornWriteFaultQuarantinedOnReload drives the
// cache/store inject point: a torn write must be caught by the next
// load's checksum and quarantined, with the re-solve correct.
func TestCacheStoreTornWriteFaultQuarantinedOnReload(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry(1)
	reg.Set(fault.PointCacheStore, fault.Schedule{Every: 1, Corrupt: true})
	fault.Activate(reg)
	_, want := func() ([]string, []byte) {
		defer fault.Deactivate()
		return seedStore(t, dir)
	}()

	r, got := resolveAfter(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatal("re-solve after torn write differs from original")
	}
	if n := r.CacheQuarantined(); n == 0 {
		t.Fatal("torn write was not quarantined on reload")
	}
	if hits, _ := r.CacheCounts(); hits != 0 {
		t.Fatalf("cache hits = %d, want 0 (torn entry must not be served)", hits)
	}
}

// TestCacheLoadFaults drives the cache/load inject point in both
// modes: Err skips the entry (cold re-solve, nothing quarantined —
// the file may be fine, the read failed), Corrupt trips the checksum
// and quarantines.
func TestCacheLoadFaults(t *testing.T) {
	t.Run("read-error-skips", func(t *testing.T) {
		dir := t.TempDir()
		files, want := seedStore(t, dir)
		reg := fault.NewRegistry(1)
		reg.Set(fault.PointCacheLoad, fault.Schedule{Every: 1, Err: os.ErrPermission})
		fault.Activate(reg)
		defer fault.Deactivate()
		r, got := resolveAfter(t, dir)
		if !bytes.Equal(got, want) {
			t.Fatal("re-solve after injected read error differs")
		}
		if n := r.CacheQuarantined(); n != 0 {
			t.Fatalf("CacheQuarantined = %d, want 0 for a read error", n)
		}
		if _, err := os.Stat(filepath.Join(dir, files[0])); err != nil {
			t.Fatalf("entry moved on a mere read error: %v", err)
		}
	})
	t.Run("corrupt-quarantines", func(t *testing.T) {
		dir := t.TempDir()
		_, want := seedStore(t, dir)
		reg := fault.NewRegistry(1)
		reg.Set(fault.PointCacheLoad, fault.Schedule{Every: 1, Corrupt: true})
		fault.Activate(reg)
		defer fault.Deactivate()
		r, got := resolveAfter(t, dir)
		if !bytes.Equal(got, want) {
			t.Fatal("re-solve after injected corruption differs")
		}
		if n := r.CacheQuarantined(); n != 1 {
			t.Fatalf("CacheQuarantined = %d, want 1", n)
		}
	})
}
