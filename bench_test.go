// Benchmarks regenerating every figure of the paper's evaluation (one
// benchmark per figure, DESIGN.md §3) plus the ablation studies of
// DESIGN.md §6. Each figure benchmark runs a reduced number of seeds
// per iteration so `go test -bench=.` finishes in minutes; cmd/repro
// reproduces the same series at the paper's full 20-seed averaging.
package repro

import (
	"context"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lp"
	"repro/internal/mip"
	"repro/internal/passive"
	"repro/internal/sampling"
	"repro/internal/simulate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchSeeds is the per-iteration averaging depth of the figure
// benchmarks (the paper uses 20; cmd/repro defaults to 20).
const benchSeeds = 3

func BenchmarkFig6TrafficWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig6(int64(i), io.Discard, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Passive10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig7(context.Background(), benchSeeds)
		sanityPassive(b, s)
	}
}

func BenchmarkFig8Passive15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig8(context.Background(), 1) // the heavy instance: one seed per iteration
		sanityPassive(b, s)
	}
}

// sanityEps absorbs round-off when comparing per-seed means of solver
// objectives: an exact optimum may exceed a heuristic's value by float
// noise without being wrong.
const sanityEps = 1e-6

func sanityPassive(b *testing.B, s interface {
	MeanAt(float64, string) float64
}) {
	b.Helper()
	for _, k := range []float64{75, 100} {
		g := s.MeanAt(k, "Greedy algorithm")
		opt := s.MeanAt(k, "ILP")
		if opt > g+sanityEps {
			b.Fatalf("at %g%%: ILP %g above greedy %g", k, opt, g)
		}
	}
}

func BenchmarkFig9Beacons15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sanityBeacons(b, experiments.Fig9(context.Background(), benchSeeds), 15)
	}
}

func BenchmarkFig10Beacons29(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sanityBeacons(b, experiments.Fig10(context.Background(), benchSeeds), 29)
	}
}

func BenchmarkFig11Beacons80(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sanityBeacons(b, experiments.Fig11(context.Background(), 1), 80)
	}
}

func sanityBeacons(b *testing.B, s interface {
	MeanAt(float64, string) float64
}, maxVB int) {
	b.Helper()
	x := float64(maxVB)
	il := s.MeanAt(x, "ILP")
	th := s.MeanAt(x, "Thiran")
	gr := s.MeanAt(x, "Greedy")
	if il > gr+sanityEps || il > th+sanityEps {
		b.Fatalf("|V_B|=%d: ILP %g above greedy %g / thiran %g", maxVB, il, gr, th)
	}
}

func BenchmarkPPMECost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.PPMECost(context.Background(), 1)
	}
}

func BenchmarkPPMEStarDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Dynamic(context.Background(), int64(i), 10, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalCoverage <= 0 {
			b.Fatal("dynamic run collapsed")
		}
	}
}

// fig7Instance builds one Figure 7 instance for the extension benches.
func fig7Instance(seed int64) *Instance {
	cfg := topology.Paper10
	cfg.Seed = seed
	pop := topology.Generate(cfg)
	in, err := traffic.Route(pop, traffic.Demands(pop, traffic.Config{Seed: seed}))
	if err != nil {
		panic(err)
	}
	return in
}

// BenchmarkIncrementalPlacement measures the §4.3 incremental variant:
// re-optimize around two frozen devices.
func BenchmarkIncrementalPlacement(b *testing.B) {
	in := fig7Instance(1)
	base := passive.GreedyLoad(in, 0.8)
	installed := base.Edges
	if len(installed) > 2 {
		installed = installed[:2]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := passive.SolveILP(context.Background(), in, 0.95, passive.ILPOptions{Installed: installed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetedPlacement measures the §4.3 limited-device variant.
func BenchmarkBudgetedPlacement(b *testing.B) {
	in := fig7Instance(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := passive.MaxCoverage(context.Background(), in, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// fig7CoverMIP builds the partial-cover MIP of the Figure 7 instance:
// binary x_e per edge, continuous coverage indicator δ_t per traffic,
// and a k·total volume floor. Shared by the branching, pricing and
// simplex-algorithm ablations.
func fig7CoverMIP(in *Instance, opts mip.Options) *mip.Problem {
	p := mip.NewProblem(lp.Minimize)
	xs := make([]lp.Var, in.G.NumEdges())
	for e := range xs {
		xs[e] = p.AddBinaryVariable("x", 1)
	}
	target := 0.95 * in.TotalVolume()
	ds := make([]lp.Var, len(in.Traffics))
	var cov []lp.Term
	for ti, t := range in.Traffics {
		ds[ti] = p.AddVariable("d", 0, 1, 0)
		terms := []lp.Term{{Var: ds[ti], Coef: -1}}
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: xs[e], Coef: 1})
		}
		p.AddConstraint(lp.GE, 0, terms...)
		cov = append(cov, lp.Term{Var: ds[ti], Coef: t.Volume})
	}
	p.AddConstraint(lp.GE, target, cov...)
	p.SetOptions(opts)
	return p
}

// BenchmarkAblationTree is the root-strengthening before/after: the
// Figure 7 cover MIP solved on the plain tree, with presolve alone,
// and with the full pipeline (presolve + cover/clique cuts +
// reduced-cost fixing + pseudo-cost branching). Besides wall time it
// reports explored nodes per solve, the tree-size trajectory the
// pipeline exists to shrink. The beacon variant runs the same ablation
// on a §6-style vertex-cover ILP (triangulated probe conflicts), where
// root clique cuts close most of the integrality gap outright.
func BenchmarkAblationTree(b *testing.B) {
	variants := []struct {
		name string
		opts mip.Options
	}{
		{"PlainTree", mip.Options{Tree: mip.AlgoPlainTree}},
		{"Presolve", mip.Options{NoCuts: true, NoFixing: true, NoStrongBranch: true, Branching: mip.MostFractional}},
		{"Full", mip.Options{}},
	}
	in := fig7Instance(3)
	for _, v := range variants {
		b.Run("Fig7MIP/"+v.name, func(b *testing.B) {
			nodes := 0
			for i := 0; i < b.N; i++ {
				s, err := fig7CoverMIP(in, v.opts).Solve()
				if err != nil {
					b.Fatal(err)
				}
				nodes += s.Nodes
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		})
	}
	for _, v := range variants {
		b.Run("BeaconILP/"+v.name, func(b *testing.B) {
			nodes := 0
			for i := 0; i < b.N; i++ {
				s, err := beaconStyleILP(v.opts).Solve()
				if err != nil {
					b.Fatal(err)
				}
				nodes += s.Nodes
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		})
	}
}

// beaconStyleILP builds a §6-shaped vertex-cover ILP: probes between
// node pairs of a triangulated random graph, each needing a beacon at
// one extremity. The odd structure leaves the LP relaxation at 1/2
// everywhere, so the plain tree branches heavily while clique cuts
// close the gap at the root.
func beaconStyleILP(opts mip.Options) *mip.Problem {
	rng := rand.New(rand.NewSource(41))
	p := mip.NewProblem(lp.Minimize)
	n := 30
	ys := make([]lp.Var, n)
	for i := range ys {
		ys[i] = p.AddBinaryVariable("y", 1)
	}
	// Triangles over random node triples: pairwise probe constraints.
	for t := 0; t < 40; t++ {
		a, bb, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if a == bb || bb == c || a == c {
			continue
		}
		p.AddConstraint(lp.GE, 1, lp.Term{Var: ys[a], Coef: 1}, lp.Term{Var: ys[bb], Coef: 1})
		p.AddConstraint(lp.GE, 1, lp.Term{Var: ys[bb], Coef: 1}, lp.Term{Var: ys[c], Coef: 1})
		p.AddConstraint(lp.GE, 1, lp.Term{Var: ys[a], Coef: 1}, lp.Term{Var: ys[c], Coef: 1})
	}
	p.SetOptions(opts)
	return p
}

// fig8Instance builds one Figure 8 (15-router POP) instance, the
// cover-search ablation's subject: its k = 95% point is a hard one for
// the branch-and-bound (structural integrality gap; see EXPERIMENTS.md).
func fig8Instance(seed int64) *Instance {
	cfg := topology.Paper15
	cfg.Seed = seed
	pop := topology.Generate(cfg)
	in, err := traffic.Route(pop, traffic.Demands(pop, traffic.Config{Seed: seed}))
	if err != nil {
		panic(err)
	}
	return in
}

// BenchmarkAblationCoverTree gates each layer of the specialized cover
// branch-and-bound on the Figure 8 hard point: the plain tree, then
// kernelization presolve, the Lagrangian/LP dual bounds, the in-search
// dominance reductions, and finally the deterministic parallel subtree
// phase, cumulatively. Every variant runs under the same node budget,
// so besides wall time the devices/op metric shows incumbent quality
// per node spent — the dimension the reductions exist to improve — and
// nodes/op shows how much of the budget each variant actually needed.
func BenchmarkAblationCoverTree(b *testing.B) {
	variants := []struct {
		name string
		opts cover.ExactOptions
	}{
		{"PlainTree", cover.ExactOptions{NoPresolve: true, NoDualBound: true, NoDominance: true, Workers: 1}},
		{"Presolve", cover.ExactOptions{NoDualBound: true, NoDominance: true, Workers: 1}},
		{"PresolveDual", cover.ExactOptions{NoDominance: true, Workers: 1}},
		{"FullSerial", cover.ExactOptions{Workers: 1}},
		{"FullParallel", cover.ExactOptions{Workers: runtime.GOMAXPROCS(0)}},
	}
	in := fig8Instance(0)
	const k = 0.95
	for _, v := range variants {
		opts := v.opts
		opts.MaxNodes = 20_000
		b.Run(v.name, func(b *testing.B) {
			nodes, devices := 0, 0
			for i := 0; i < b.N; i++ {
				pl := passive.ExactCover(context.Background(), in, k, opts)
				if pl.Fraction < k-1e-9 {
					b.Fatalf("%s returned an infeasible cover: %g < %g", v.name, pl.Fraction, k)
				}
				nodes += pl.Stats.Nodes
				devices += pl.Devices()
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
			b.ReportMetric(float64(devices)/float64(b.N), "devices/op")
		})
	}
}

// BenchmarkAblationBranching compares the two branch-and-bound
// branching rules on the Figure 7 MIP.
func BenchmarkAblationBranching(b *testing.B) {
	for _, rule := range []struct {
		name string
		r    mip.BranchRule
	}{{"MostFractional", mip.MostFractional}, {"FirstFractional", mip.FirstFractional}} {
		b.Run(rule.name, func(b *testing.B) {
			in := fig7Instance(3)
			for i := 0; i < b.N; i++ {
				if _, err := fig7CoverMIP(in, mip.Options{Branching: rule.r}).Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPricing compares Dantzig and Devex pricing of the
// sparse revised simplex on the Figure 7 MIP (DESIGN.md §6).
func BenchmarkAblationPricing(b *testing.B) {
	for _, pr := range []struct {
		name string
		p    lp.Pricing
	}{{"Devex", lp.PricingDevex}, {"Dantzig", lp.PricingDantzig}} {
		b.Run(pr.name, func(b *testing.B) {
			in := fig7Instance(3)
			for i := 0; i < b.N; i++ {
				if _, err := fig7CoverMIP(in, mip.Options{Pricing: pr.p}).Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSimplex compares the sparse revised simplex (with
// node warm starts) against the retained dense tableau oracle on the
// Figure 7 MIP — the tentpole's before/after on one instance.
func BenchmarkAblationSimplex(b *testing.B) {
	for _, algo := range []struct {
		name string
		a    lp.Algorithm
	}{{"RevisedSparse", lp.AlgoRevisedSparse}, {"DenseTableau", lp.AlgoDenseTableau}} {
		b.Run(algo.name, func(b *testing.B) {
			in := fig7Instance(3)
			for i := 0; i < b.N; i++ {
				if _, err := fig7CoverMIP(in, mip.Options{Algorithm: algo.a}).Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGreedy compares the paper's load-order greedy with
// the marginal-gain greedy across the Figure 7 sweep.
func BenchmarkAblationGreedy(b *testing.B) {
	in := fig7Instance(4)
	b.Run("LoadOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range experiments.KSweep {
				passive.GreedyLoad(in, k)
			}
		}
	})
	b.Run("MarginalGain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range experiments.KSweep {
				passive.GreedyGain(in, k)
			}
		}
	})
}

// BenchmarkAblationFlowHeuristic compares the MECF min-cost-flow
// rounding against the direct greedy and reports solution quality
// through the exact optimum.
func BenchmarkAblationFlowHeuristic(b *testing.B) {
	in := fig7Instance(5)
	b.Run("FlowHeuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			passive.FlowHeuristic(in, 0.95)
		}
	})
	b.Run("GreedyGain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			passive.GreedyGain(in, 0.95)
		}
	})
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			passive.ExactCover(context.Background(), in, 0.95, cover.ExactOptions{})
		}
	})
}

// BenchmarkAblationEngine is the tentpole's before/after: the Figure 9
// beacon sweep (benchSeeds seeds × 8 sweep points, three solvers per
// cell) run serially, fanned out on the parallel engine, and fanned out
// on a warm memoizing cache (steady state: every cell served from the
// cache). The merged series is byte-identical in all three variants;
// only the clock changes.
func BenchmarkAblationEngine(b *testing.B) {
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sanityBeacons(b, experiments.Fig9On(context.Background(), engine.Serial(), benchSeeds), 15)
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Fresh per-iteration cache, like Serial: the variants differ
			// only in worker count.
			eng := engine.New(engine.Options{Cache: engine.NewCache()})
			sanityBeacons(b, experiments.Fig9On(context.Background(), eng, benchSeeds), 15)
		}
	})
	b.Run("ParallelWarmCache", func(b *testing.B) {
		eng := engine.New(engine.Options{Cache: engine.NewCache()})
		sanityBeacons(b, experiments.Fig9On(context.Background(), eng, benchSeeds), 15) // warm-up, not timed
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sanityBeacons(b, experiments.Fig9On(context.Background(), eng, benchSeeds), 15)
		}
	})
}

// BenchmarkAblationSamplers measures the §5.2 sampling techniques over
// the same mice/elephant trace.
func BenchmarkAblationSamplers(b *testing.B) {
	trace, _, err := simulate.GenerateTrace(simulate.TraceConfig{
		Mice: 2000, Elephants: 20, MicePackets: 4, ElephantPackets: 3000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	mk := map[string]func() sampling.Sampler{
		"Regular":       func() sampling.Sampler { return sampling.NewRegular(100) },
		"Probabilistic": func() sampling.Sampler { return sampling.NewProbabilistic(100, 1) },
		"Geometric":     func() sampling.Sampler { return sampling.NewGeometric(100, 1) },
		"TimeBased":     func() sampling.Sampler { return sampling.NewTimeBased(0.01) },
	}
	for _, name := range []string{"Regular", "Probabilistic", "Geometric", "TimeBased"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := mk[name]()
				st := sampling.CollectTrace(s, trace)
				if st.Total == 0 {
					b.Fatal("sampler captured nothing")
				}
			}
		})
	}
}

// BenchmarkReplayValidation measures the packet-level validation of a
// PPME solution (promised vs achieved coverage).
func BenchmarkReplayValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prom, ach, err := experiments.ReplayCheck(context.Background(), int64(i), 0.9)
		if err != nil {
			b.Fatal(err)
		}
		if ach < prom-0.05 {
			b.Fatalf("replay %g far below promise %g", ach, prom)
		}
	}
}

// BenchmarkMIPSolver measures raw branch-and-bound throughput on random
// set-cover MIPs (the paper's solver substrate).
func BenchmarkMIPSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		p := mip.NewProblem(lp.Minimize)
		vars := make([]lp.Var, 30)
		for j := range vars {
			vars[j] = p.AddBinaryVariable("x", 1+rng.Float64())
		}
		for r := 0; r < 40; r++ {
			var terms []lp.Term
			for j := range vars {
				if rng.Intn(4) == 0 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: 1})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(lp.GE, 1, terms...)
		}
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargePOP150 exercises the paper's §7 outlook: the beacon
// pipeline on a 150-router POP.
func BenchmarkLargePOP150(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sanityBeacons(b, experiments.Large150(context.Background(), 1), 150)
	}
}

// BenchmarkAblationPPMEStar compares the LP-based PPME* re-optimization
// with the §5.4 min-cost-flow formulation (repaired heuristic).
func BenchmarkAblationPPMEStar(b *testing.B) {
	cfg := topology.Config{Routers: 7, InterRouterLinks: 11, Endpoints: 8, Seed: 9}
	pop := topology.Generate(cfg)
	mi, err := traffic.RouteMulti(pop, traffic.Demands(pop, traffic.Config{Seed: 9}), 2)
	if err != nil {
		b.Fatal(err)
	}
	installed := make([]EdgeID, mi.G.NumEdges())
	for e := range installed {
		installed[e] = EdgeID(e)
	}
	b.Run("LP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.SolveRates(context.Background(), mi, installed, sampling.Config{K: 0.9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinCostFlow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.SolveRatesFlow(mi, installed, sampling.Config{K: 0.9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRounding adds the §4.3 randomized-rounding heuristic
// to the PPM(k) algorithm comparison.
func BenchmarkAblationRounding(b *testing.B) {
	in := fig7Instance(6)
	for i := 0; i < b.N; i++ {
		pl, err := passive.RandomizedRounding(context.Background(), in, 0.95, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if pl.Fraction < 0.95-1e-9 {
			b.Fatal("rounding infeasible")
		}
	}
}

// churnResolveChain replays the session benchmark's churn family
// workload: a 20-endpoint churn scenario whose demand matrix is
// re-weighted each step (volumes drawn from [0.8, 1.25], rows kept) —
// the DeltaRescale mutation class under which a Session ships both the
// previous incumbent and the saved root LP basis.
func churnResolveChain(tb testing.TB, steps int) []*Instance {
	tb.Helper()
	s, err := GenerateScenario("churn", 20, 4)
	if err != nil {
		tb.Fatal(err)
	}
	dem := s.Demands
	in, err := RouteSingle(s.POP, traffic.Aggregate(dem))
	if err != nil {
		tb.Fatal(err)
	}
	chain := []*Instance{in}
	for step := 1; step <= steps; step++ {
		mutated, _, err := traffic.ChurnWithDelta(s.POP, dem, traffic.ChurnConfig{
			Seed: s.Seed + int64(step), Drop: 1e-12, Add: 1e-12,
			RescaleLow: 0.8, RescaleHigh: 1.25,
		})
		if err != nil {
			tb.Fatal(err)
		}
		next, err := RouteSingle(s.POP, traffic.Aggregate(mutated))
		if err != nil {
			tb.Fatal(err)
		}
		chain = append(chain, next)
		dem = mutated
	}
	return chain
}

// BenchmarkChurnResolve is the session re-optimization claim (ROADMAP
// item 2, DESIGN.md §10): re-solving a churn-mutated instance warm
// must be ≥10× faster than cold on the churn family, with identical
// answers. Three variants solve steps 1..6 of the replay chain (step 0
// is cold for everyone and excluded):
//
//	cold       no artifacts — the pre-session baseline
//	warm_hint  previous optimum as an incumbent hint only
//	warm_full  hint + saved root LP basis; the warm dual-simplex re-solve
//	           re-derives the reduced-cost set bans, the cover solver's
//	           cutting-plane analog, so this is the "with cuts" ablation
//
// nodes/op, pivots/op and warmstarts/op expose where the speedup comes
// from: the warm basis collapses the root LP re-solve (pivots), which
// dominates the cold wall clock on this instance.
func BenchmarkChurnResolve(b *testing.B) {
	ctx := context.Background()
	const k, steps = 0.95, 6
	chain := churnResolveChain(b, steps)
	// Per-step cold reference solves, outside the timer: answers to
	// check against and the artifacts the warm variants consume.
	type artifacts struct {
		hint  []int
		basis *lp.Basis
	}
	arts := make([]artifacts, len(chain))
	ref := make([]passive.Placement, len(chain))
	for i, in := range chain {
		capt := &cover.Capture{}
		pl := passive.ExactCover(ctx, in, k, cover.ExactOptions{Capture: capt})
		if !pl.Exact {
			b.Fatalf("reference solve %d did not close", i)
		}
		ref[i] = pl
		hint := make([]int, len(pl.Edges))
		for j, e := range pl.Edges {
			hint[j] = int(e)
		}
		arts[i] = artifacts{hint: hint, basis: capt.Basis}
	}
	run := func(b *testing.B, warmOf func(step int) *cover.Warm) {
		var nodes, pivots, warm int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for step := 1; step < len(chain); step++ {
				pl := passive.ExactCover(ctx, chain[step], k, cover.ExactOptions{Warm: warmOf(step)})
				nodes += pl.Stats.Nodes
				pivots += pl.Stats.Pivots
				warm += pl.Stats.WarmStarts
				if !pl.Exact || len(pl.Edges) != len(ref[step].Edges) {
					b.Fatalf("step %d: warm answer diverged (exact=%v devices=%d want %d)",
						step, pl.Exact, len(pl.Edges), len(ref[step].Edges))
				}
			}
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
		b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		b.ReportMetric(float64(warm)/float64(b.N), "warmstarts/op")
	}
	b.Run("cold", func(b *testing.B) {
		run(b, func(int) *cover.Warm { return nil })
	})
	b.Run("warm_hint", func(b *testing.B) {
		run(b, func(step int) *cover.Warm { return &cover.Warm{Hint: arts[step-1].hint} })
	})
	b.Run("warm_full", func(b *testing.B) {
		run(b, func(step int) *cover.Warm {
			return &cover.Warm{Hint: arts[step-1].hint, Basis: arts[step-1].basis}
		})
	})
}
