package repro

import (
	"context"
	"math"
	"testing"
)

// TestFacadeEndToEnd drives the whole pipeline through the public API:
// generate a POP, route traffic, place taps all five ways, place
// sampling devices, re-optimize rates, place beacons all three ways,
// and validate by packet replay.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := POPConfig{Routers: 6, InterRouterLinks: 10, Endpoints: 6, Seed: 7}
	pop := GeneratePOP(cfg)
	demands := GenerateDemands(pop, TrafficConfig{Seed: 7})
	in, err := RouteSingle(pop, demands)
	if err != nil {
		t.Fatal(err)
	}

	var optimal int
	for _, m := range []TapMethod{TapGreedyLoad, TapGreedyGain, TapFlow, TapILP, TapExact} {
		pl, err := PlaceTaps(context.Background(), in, 0.9, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if pl.Fraction < 0.9-1e-9 {
			t.Fatalf("%v: coverage %g < 0.9", m, pl.Fraction)
		}
		if m == TapILP {
			optimal = pl.Devices()
		}
		if m == TapExact && pl.Devices() != optimal {
			t.Fatalf("exact %d != ilp %d", pl.Devices(), optimal)
		}
	}

	mi, err := RouteMulti(pop, demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := PlaceSamplers(context.Background(), mi, SamplingConfig{K: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	re, err := ReoptimizeRates(context.Background(), mi, sol.Edges, SamplingConfig{K: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if re.Fraction < 0.85-1e-6 {
		t.Fatalf("re-optimized coverage %g", re.Fraction)
	}

	ctl, err := NewRateController(context.Background(), mi, sol.Edges, SamplingConfig{K: 0.85}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := ctl.Observe(context.Background(), mi); err != nil || rec {
		t.Fatalf("controller recomputed on unchanged traffic (err=%v)", err)
	}

	promise := PromisedCoverage(mi, re.Rates)
	res, err := Replay(mi, re.Rates, ReplayOptions{Seed: 7, PacketsPerUnit: 150})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fraction-promise) > 0.03 {
		t.Fatalf("replay %g vs promise %g", res.Fraction, promise)
	}

	var cands []NodeID
	for n := 0; n < pop.G.NumNodes(); n++ {
		if pop.IsRouter(NodeID(n)) {
			cands = append(cands, NodeID(n))
		}
	}
	ps, err := ComputeProbes(pop.G, cands)
	if err != nil {
		t.Fatal(err)
	}
	var ilpN int
	for _, m := range []BeaconMethod{BeaconThiran, BeaconGreedy, BeaconILP} {
		pl, err := PlaceBeacons(context.Background(), ps, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := pl.Validate(ps); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if m == BeaconILP {
			ilpN = pl.Devices()
		}
	}
	gr, _ := PlaceBeacons(context.Background(), ps, BeaconGreedy)
	if ilpN > gr.Devices() {
		t.Fatalf("ilp %d worse than greedy %d", ilpN, gr.Devices())
	}
}

func TestMethodStrings(t *testing.T) {
	if TapGreedyLoad.String() == "" || TapILP.String() != "ilp" || TapMethod(42).String() == "" {
		t.Fatal("tap method strings")
	}
	if BeaconThiran.String() != "thiran" || BeaconMethod(42).String() == "" {
		t.Fatal("beacon method strings")
	}
}

func TestUnknownMethodsError(t *testing.T) {
	pop := GeneratePOP(POPConfig{Routers: 4, InterRouterLinks: 5, Endpoints: 3, Seed: 1})
	in, err := RouteSingle(pop, GenerateDemands(pop, TrafficConfig{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceTaps(context.Background(), in, 0.9, TapMethod(99)); err == nil {
		t.Fatal("unknown tap method accepted")
	}
	ps, err := ComputeProbes(pop.G, []NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceBeacons(context.Background(), ps, BeaconMethod(99)); err == nil {
		t.Fatal("unknown beacon method accepted")
	}
}

func TestIncrementalAndBudgetThroughFacade(t *testing.T) {
	pop := GeneratePOP(POPConfig{Routers: 5, InterRouterLinks: 8, Endpoints: 5, Seed: 3})
	in, err := RouteSingle(pop, GenerateDemands(pop, TrafficConfig{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	base, err := PlaceTaps(context.Background(), in, 0.9, TapILP)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := PlaceTapsILP(context.Background(), in, 0.9, ILPOptions{Installed: base.Edges[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Devices() < base.Devices() {
		t.Fatal("incremental beat the optimum")
	}
	mc, err := MaxCoverage(context.Background(), in, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Devices() > 2 {
		t.Fatalf("max-coverage used %d devices with budget 2", mc.Devices())
	}
}

func TestSamplerConstructors(t *testing.T) {
	for _, s := range []Sampler{
		NewTimeBasedSampler(0.5),
		NewRegularSampler(10),
		NewProbabilisticSampler(10, 1),
		NewGeometricSampler(10, 1),
	} {
		s.Sample(Packet{})
		s.Reset()
		if s.Name() == "" {
			t.Fatal("unnamed sampler")
		}
	}
}

func TestRoutingCampaignThroughFacade(t *testing.T) {
	pop := GeneratePOP(POPConfig{Routers: 6, InterRouterLinks: 10, Endpoints: 6, Seed: 11})
	mi, err := RouteMulti(pop, GenerateDemands(pop, TrafficConfig{Seed: 11}), 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := PlaceSamplers(context.Background(), mi, SamplingConfig{K: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rerouted, before, after := RoutingCampaign(mi, sol.Rates)
	if err := rerouted.Validate(); err != nil {
		t.Fatal(err)
	}
	if after < before-1e-9 {
		t.Fatalf("campaign lowered coverage %g -> %g", before, after)
	}
	if before < 0.8-1e-6 {
		t.Fatalf("solved coverage %g below k", before)
	}
}

func TestNewFacadeFunctions(t *testing.T) {
	pop := GeneratePOP(POPConfig{Routers: 6, InterRouterLinks: 10, Endpoints: 6, Seed: 13})
	demands := GenerateDemands(pop, TrafficConfig{Seed: 13})
	in, err := RouteSingle(pop, demands)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := PlaceTapsRounding(context.Background(), in, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Fraction < 0.9-1e-9 {
		t.Fatalf("rounding coverage %g", rr.Fraction)
	}
	mi, err := RouteMulti(pop, demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]EdgeID, mi.G.NumEdges())
	for e := range all {
		all[e] = EdgeID(e)
	}
	fl, err := ReoptimizeRatesFlow(mi, all, SamplingConfig{K: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Fraction < 0.85-1e-6 {
		t.Fatalf("flow rates coverage %g", fl.Fraction)
	}
	var cands []NodeID
	for n := 0; n < pop.G.NumNodes(); n++ {
		if pop.IsRouter(NodeID(n)) {
			cands = append(cands, NodeID(n))
		}
	}
	ps, err := ComputeProbes(pop.G, cands)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceBeacons(context.Background(), ps, BeaconGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BalanceBeaconLoad(ps, pl); err != nil {
		t.Fatal(err)
	}
}
