package repro

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
)

// Runner is the facade over the deterministic parallel scenario engine
// (internal/engine): it schedules batch solves on a bounded worker
// pool, memoizes identical sub-solves behind canonical instance keys,
// and aggregates solver statistics across the batch. The same engine
// underlies the figure reproductions in internal/experiments and
// cmd/repro's -parallel flag; the Portfolio races its members on it
// too, so every concurrent code path in the repository shares one
// scheduling substrate.
//
// A Runner is safe for concurrent use. Results served from the cache
// are shared: treat every *Result from a batch as read-only.
type Runner struct {
	eng *engine.Runner
	// quarantined counts persistent-cache entries that failed envelope
	// verification on load and were moved aside (see persist.go).
	quarantined atomic.Int64
}

// runnerConfig collects the RunnerOption knobs.
type runnerConfig struct {
	workers  int
	cache    bool
	cacheDir string
}

// RunnerOption configures NewRunner.
type RunnerOption func(*runnerConfig)

// WithWorkers bounds the number of concurrent solves; n <= 0 means
// runtime.GOMAXPROCS(0). One worker is the deterministic serial
// baseline (batch results are identical either way — only the clock
// changes).
func WithWorkers(n int) RunnerOption { return func(c *runnerConfig) { c.workers = n } }

// WithoutCache disables solve memoization: every problem in every batch
// is solved from scratch.
func WithoutCache() RunnerOption { return func(c *runnerConfig) { c.cache = false } }

// WithCacheDir persists the solve cache under dir, content-addressed by
// the engine's canonical SHA-256 instance keys: every newly memoized
// result is written through to one JSON file (atomically), and a new
// runner over the same directory starts warm — the restart-surviving
// store placementd serves from. The directory is created if missing;
// when it cannot be created the runner degrades to memory-only
// caching. WithoutCache disables persistence too.
func WithCacheDir(dir string) RunnerOption { return func(c *runnerConfig) { c.cacheDir = dir } }

// NewRunner builds a batch runner; by default GOMAXPROCS workers and a
// memoizing solve cache.
func NewRunner(opts ...RunnerOption) *Runner {
	cfg := runnerConfig{cache: true}
	for _, fn := range opts {
		fn(&cfg)
	}
	r := &Runner{}
	var cache *engine.Cache
	if cfg.cache {
		cache = engine.NewCache()
		if cfg.cacheDir != "" {
			// Best-effort: an unusable directory leaves the cache
			// memory-only rather than failing the runner.
			_ = attachCacheDir(cache, cfg.cacheDir, &r.quarantined)
		}
	}
	r.eng = engine.New(engine.Options{Workers: cfg.workers, Cache: cache})
	return r
}

// Workers returns the runner's concurrency bound.
func (r *Runner) Workers() int { return r.eng.Workers() }

// CacheCounts returns the solve cache's hit and miss counters (both 0
// when the runner was built WithoutCache).
func (r *Runner) CacheCounts() (hits, misses int64) {
	if c := r.eng.Cache(); c != nil {
		return c.Counts()
	}
	return 0, 0
}

// CacheQuarantined returns how many persistent-cache entries failed
// verification on load and were quarantined instead of served (always
// 0 without WithCacheDir).
func (r *Runner) CacheQuarantined() int64 { return r.quarantined.Load() }

// BatchStats returns the aggregated effort counters of every solve the
// runner executed (cache hits do not count twice: memoized solves
// report their effort once, when actually performed).
func (r *Runner) BatchStats() Stats {
	st := r.eng.Stats()
	return Stats{
		Nodes:            st.Nodes,
		Pivots:           st.Pivots,
		Refactorizations: st.Refactorizations,
		DevexResets:      st.DevexResets,
		WarmStarts:       st.WarmStarts,
		CutsAdded:        st.CutsAdded,
		VarsFixed:        st.VarsFixed,
		PresolveRemoved:  st.PresolveRemoved,
		StrongBranches:   st.StrongBranches,
		SubtreeTasks:     st.SubtreeTasks,
		Steals:           st.Steals,
		DominancePrunes:  st.DominancePrunes,
		Degraded:         st.Degraded,
	}
}

// SolveBatch solves every problem with the named registered solver on
// the runner's worker pool and returns the results in input order —
// the order-independent merge: results[i] always belongs to
// problems[i], bit-identical to a serial loop of Solve calls,
// regardless of worker count or completion order.
//
// Identical problems (same canonical instance hash, same options) are
// solved once and served from the cache. Time-bounded solves
// (WithDeadline / WithTimeout) are never cached: their results depend
// on the clock, and a memoized incumbent must not masquerade as a
// fresh solve under a different budget. The first failing problem
// (lowest index, deterministically) aborts the batch.
func (r *Runner) SolveBatch(ctx context.Context, solver string, problems []Problem, opts ...Option) ([]*Result, error) {
	// Validate the whole batch up front: a bad entry should name itself
	// by index here, not surface as a solver type error from deep inside
	// the engine after the problems below it were already solved.
	if solver == "" {
		return nil, fmt.Errorf("repro: SolveBatch: empty solver name (known: %v)", Solvers())
	}
	for i, p := range problems {
		if p == nil {
			return nil, fmt.Errorf("repro: SolveBatch: problem %d is nil", i)
		}
	}
	s, err := LookupSolver(solver)
	if err != nil {
		return nil, err
	}
	o := BuildOptions(opts)
	// The cache must never serve a clock-dependent result: bypass it
	// when the solve is bounded by the batch options OR by a deadline
	// already on the caller's context. Session warm solves get the same
	// treatment — a result produced with injected warm artifacts must
	// never be memoized under (or served from) a cold solve's key (see
	// engine.SessionScope).
	_, ctxDeadline := ctx.Deadline()
	timeBounded := !o.Deadline.IsZero() || o.Timeout > 0 || ctxDeadline || o.sessionWarm()
	return engine.Map(ctx, r.eng, len(problems), func(ctx context.Context, i int) (*Result, error) {
		p := problems[i]
		key := ""
		if !timeBounded {
			// Unknown problem kinds (custom solvers) have no canonical
			// key; they bypass the cache rather than risk a false hit.
			key, _ = engine.Key(solver, p, o.Coverage, o.Budget, o.Installed, o.Gap, o.Seed, o.MaxNodes)
		}
		if key == "" || r.eng.Cache() == nil {
			res, err := solveWithFallback(ctx, s, p, opts)
			if err == nil {
				r.addStats(res)
			}
			return res, err
		}
		// CachedUnlessCanceled hands back (without retaining) a result
		// degraded by the caller's ctx firing mid-solve: a memoized
		// incumbent must never masquerade as a fresh solve for a later,
		// unhurried batch. Fallback-degraded results get the same
		// treatment via WithoutCaching: they are answers for THIS
		// request, not memoized truth under the primary solver's key.
		v, err := r.eng.CachedUnlessCanceled(ctx, key, func() (any, error) {
			res, err := solveWithFallback(ctx, s, p, opts)
			if err == nil {
				r.addStats(res)
			}
			if err == nil && res.Degraded {
				return nil, engine.WithoutCaching(res)
			}
			return res, err
		})
		if err != nil {
			return nil, err
		}
		// Hand each caller its own shallow copy so one batch entry
		// cannot corrupt the memoized result of another.
		cp := *v.(*Result)
		return &cp, nil
	})
}

// addStats folds one solve's counters into the engine aggregate.
func (r *Runner) addStats(res *Result) {
	r.eng.AddStats(core.SolveStats{
		Nodes:            res.Stats.Nodes,
		Pivots:           res.Stats.Pivots,
		Refactorizations: res.Stats.Refactorizations,
		DevexResets:      res.Stats.DevexResets,
		WarmStarts:       res.Stats.WarmStarts,
		CutsAdded:        res.Stats.CutsAdded,
		VarsFixed:        res.Stats.VarsFixed,
		PresolveRemoved:  res.Stats.PresolveRemoved,
		StrongBranches:   res.Stats.StrongBranches,
		SubtreeTasks:     res.Stats.SubtreeTasks,
		Steals:           res.Stats.Steals,
		DominancePrunes:  res.Stats.DominancePrunes,
		Degraded:         res.Stats.Degraded,
	})
}

// SolveBatch is the one-call form of Runner.SolveBatch on a fresh
// default runner (GOMAXPROCS workers, per-call cache):
//
//	results, err := repro.SolveBatch(ctx, "tap/exact", problems,
//	        repro.WithCoverage(0.95))
func SolveBatch(ctx context.Context, solver string, problems []Problem, opts ...Option) ([]*Result, error) {
	return NewRunner().SolveBatch(ctx, solver, problems, opts...)
}
