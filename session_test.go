package repro

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// answerJSON canonicalizes a Result for byte-identity comparison: the
// Stats block (wall clock and effort counters) is zeroed — warmth is
// allowed, and expected, to change how much work the proof took, never
// what the answer is — and so is the placement's embedded effort
// counter block.
func answerJSON(t *testing.T, r *Result) string {
	t.Helper()
	cp := *r
	cp.Stats = Stats{}
	if cp.Taps != nil {
		taps := *cp.Taps
		taps.Stats = TapPlacement{}.Stats
		cp.Taps = &taps
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionResolveEqualsCold is the facade-level resolve==cold lock:
// across a churn replay chain, every Session.Resolve answer must be
// byte-identical to a cold Solve of the same mutated instance.
func TestSessionResolveEqualsCold(t *testing.T) {
	ctx := context.Background()
	for _, family := range []string{"pop", "churn"} {
		s, err := GenerateScenario(family, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		chain, deltas, err := ChurnSteps(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) != 4 || len(deltas) != 3 {
			t.Fatalf("chain %d deltas %d, want 4 and 3", len(chain), len(deltas))
		}
		sess, err := NewSession(SolverTapExact, WithCoverage(0.95))
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range chain {
			warm, err := sess.Resolve(ctx, in)
			if err != nil {
				t.Fatalf("%s step %d: %v", family, i, err)
			}
			cold, err := Solve(ctx, SolverTapExact, in, WithCoverage(0.95))
			if err != nil {
				t.Fatalf("%s step %d cold: %v", family, i, err)
			}
			if w, c := answerJSON(t, warm), answerJSON(t, cold); w != c {
				t.Errorf("%s step %d: warm answer diverged from cold\nwarm: %s\ncold: %s", family, i, w, c)
			}
			if !warm.Optimal {
				t.Errorf("%s step %d: warm solve not optimal", family, i)
			}
		}
		if sess.Resolves() != len(chain) {
			t.Errorf("%s: session counted %d resolves, want %d", family, sess.Resolves(), len(chain))
		}
	}
}

// TestSessionDeltaClassification checks ComputeDelta's classes on
// hand-built mutations of a real instance.
func TestSessionDeltaClassification(t *testing.T) {
	s, err := GenerateScenario("pop", 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Instance()
	if err != nil {
		t.Fatal(err)
	}

	if d := ComputeDelta(base, base); d.Class != DeltaUnchanged {
		t.Fatalf("identical instances classified %v", d.Class)
	}

	// Rescale: same rows, volumes scaled.
	rescaled := *base
	rescaled.Traffics = append([]Traffic(nil), base.Traffics...)
	for i := range rescaled.Traffics {
		rescaled.Traffics[i].Volume *= 1.5
	}
	d := ComputeDelta(base, &rescaled)
	if d.Class != DeltaRescale {
		t.Fatalf("rescaled instance classified %v", d.Class)
	}
	if d.Rescaled != len(base.Traffics) || d.MinFactor < 1.49 || d.MaxFactor > 1.51 {
		t.Fatalf("rescale delta %+v", d)
	}

	// Traffic: a row dropped.
	dropped := *base
	dropped.Traffics = append([]Traffic(nil), base.Traffics[1:]...)
	if d := ComputeDelta(base, &dropped); d.Class != DeltaTraffic || d.RowsRemoved != 1 {
		t.Fatalf("dropped-row delta %+v", d)
	}

	// Topology: a different graph.
	other, err := GenerateScenario("pop", 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	otherIn, err := other.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if d := ComputeDelta(base, otherIn); d.Class != DeltaTopology {
		t.Fatalf("different-POP delta classified %v", d.Class)
	}

	// Unknown: not an *Instance.
	if d := ComputeDelta(base, 42); d.Class != DeltaUnknown {
		t.Fatalf("non-instance delta classified %v", d.Class)
	}
}

// TestResultDiff checks the placement diff on synthetic results.
func TestResultDiff(t *testing.T) {
	prev := &Result{Taps: &TapPlacement{Edges: []EdgeID{1, 2, 3}}}
	cur := &Result{Taps: &TapPlacement{Edges: []EdgeID{2, 3, 5}}}
	d := cur.Diff(prev)
	if len(d.AddedTaps) != 1 || d.AddedTaps[0] != 5 {
		t.Fatalf("added %v, want [5]", d.AddedTaps)
	}
	if len(d.RemovedTaps) != 1 || d.RemovedTaps[0] != 1 {
		t.Fatalf("removed %v, want [1]", d.RemovedTaps)
	}
	if d.Unchanged != 2 || d.Moves() != 2 {
		t.Fatalf("unchanged %d moves %d, want 2 and 2", d.Unchanged, d.Moves())
	}
	// nil prev: everything is new.
	if d := cur.Diff(nil); len(d.AddedTaps) != 3 || d.Unchanged != 0 {
		t.Fatalf("nil-prev diff %+v", d)
	}
}

// TestSessionResolveCancellation: a deadline firing during a warm
// re-solve must surface the best incumbent (no error, provenance in
// the flags), must NOT seed the next warm solve — a clock-dependent
// incumbent restarting the artifact chain would let wall time leak
// into answers — and must not leak goroutines.
func TestSessionResolveCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx := context.Background()
	s, err := GenerateScenario("pop", 19, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Instance()
	if err != nil {
		t.Fatal(err)
	}
	// Same rows, volumes scaled: a DeltaRescale mutation, so the warm
	// resolve ships both the hint and the saved basis.
	mutated := *in
	mutated.Traffics = append([]Traffic(nil), in.Traffics...)
	for i := range mutated.Traffics {
		mutated.Traffics[i].Volume *= 1.1
	}

	sess, err := NewSession(SolverTapExact, WithCoverage(0.93))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Optimal {
		t.Fatalf("cold solve did not close (nodes=%d)", first.Stats.Nodes)
	}

	// An expired context is the deterministic form of a deadline firing
	// mid-resolve: the cover search notices it at its first poll and
	// surfaces the best incumbent (here: the greedy warm start) instead
	// of erroring. A mid-flight timeout takes the same code path but
	// can, on a fast machine, still complete a bound-based optimality
	// proof before the first poll — so the deterministic assertions
	// below use the pre-expired form.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	res, err := sess.Resolve(cctx, &mutated)
	if err != nil {
		t.Fatalf("canceled resolve surfaced an error instead of the incumbent: %v", err)
	}
	if res.Optimal {
		t.Fatal("canceled resolve claims a full optimality proof")
	}
	if res.Taps == nil || len(res.Taps.Edges) == 0 {
		t.Fatal("canceled resolve returned no incumbent placement")
	}
	if d := sess.LastDelta(); d.Class != DeltaRescale {
		t.Fatalf("rescale mutation classified %v", d.Class)
	}
	// The chain must restart cold: a deadline-cut incumbent is
	// clock-dependent and must never become the next solve's artifacts.
	if sess.Previous() != nil {
		t.Fatal("degraded resolve left its result on the artifact chain")
	}
	redo, err := sess.Resolve(ctx, &mutated)
	if err != nil {
		t.Fatal(err)
	}
	if d := sess.LastDelta(); d.Class != DeltaUnknown {
		t.Fatalf("post-degradation resolve classified %v, want a cold restart", d.Class)
	}
	if redo.Stats.WarmStarts != 0 {
		t.Fatalf("post-degradation resolve consumed %d warm artifacts from a degraded solve", redo.Stats.WarmStarts)
	}
	cold, err := Solve(ctx, SolverTapExact, &mutated, WithCoverage(0.93))
	if err != nil {
		t.Fatal(err)
	}
	if w, c := answerJSON(t, redo), answerJSON(t, cold); w != c {
		t.Errorf("post-degradation resolve diverged from cold\nwarm: %s\ncold: %s", w, c)
	}

	// Mid-flight variant: a timeout that fires while the warm re-solve
	// is searching must reset the chain the same way — whatever flag
	// the interrupted incumbent ended up carrying.
	tctx, tcancel := context.WithTimeout(ctx, time.Millisecond)
	defer tcancel()
	if _, err := sess.Resolve(tctx, in); err != nil {
		t.Fatal(err)
	}
	if sess.Previous() != nil {
		t.Fatal("timeout-cut resolve left its result on the artifact chain")
	}

	// Search workers must have wound down with the canceled solves.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedResultNotCached extends the engine's WithoutCaching
// discipline to time-bounded batches: a batch under a deadline (option
// or context) must bypass the cache entirely — its incumbents are
// clock-shaped — so a later unhurried batch on the same runner solves
// fresh and gets the full proof, never a capped incumbent.
func TestDegradedResultNotCached(t *testing.T) {
	ctx := context.Background()
	s, err := GenerateScenario("pop", 19, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Instance()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(WithWorkers(1))

	// Once under a context deadline, once under the option timeout:
	// both forms must leave the cache untouched.
	cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	_, err = r.SolveBatch(cctx, SolverTapExact, []Problem{in}, WithCoverage(0.93))
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SolveBatch(ctx, SolverTapExact, []Problem{in}, WithCoverage(0.93), WithTimeout(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.CacheCounts(); hits+misses != 0 {
		t.Fatalf("time-bounded batches touched the cache (hits=%d misses=%d)", hits, misses)
	}

	full, err := r.SolveBatch(ctx, SolverTapExact, []Problem{in}, WithCoverage(0.93))
	if err != nil {
		t.Fatal(err)
	}
	if !full[0].Optimal {
		t.Fatal("unhurried batch did not close — was a capped incumbent served?")
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 1 {
		t.Fatalf("unhurried batch should be the cache's first miss (hits=%d misses=%d)", hits, misses)
	}
	again, err := r.SolveBatch(ctx, SolverTapExact, []Problem{in}, WithCoverage(0.93))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := r.CacheCounts(); hits != 1 {
		t.Fatalf("identical unhurried batch should hit the cache (hits=%d)", hits)
	}
	if w, c := answerJSON(t, again[0]), answerJSON(t, full[0]); w != c {
		t.Errorf("cache served a different answer\nfirst: %s\nsecond: %s", c, w)
	}
}

// TestSessionWarmActuallyEngages: on an unchanged re-solve the session
// must apply at least one warm artifact (visible in Stats.WarmStarts)
// — otherwise the whole machinery is a no-op and the benchmark's
// speedup claim is vacuous.
func TestSessionWarmActuallyEngages(t *testing.T) {
	ctx := context.Background()
	s, err := GenerateScenario("pop", 18, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := s.Instance()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SolverTapExact, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sess.Resolve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := sess.LastDelta(); d.Class != DeltaUnchanged {
		t.Fatalf("unchanged re-solve classified %v", d.Class)
	}
	if warm.Stats.WarmStarts == 0 {
		t.Fatalf("unchanged re-solve applied no warm artifacts (first nodes=%d warm nodes=%d)",
			first.Stats.Nodes, warm.Stats.Nodes)
	}
	if warm.Stats.Nodes > first.Stats.Nodes {
		t.Errorf("warm re-solve explored more nodes than cold (%d > %d)", warm.Stats.Nodes, first.Stats.Nodes)
	}
}
