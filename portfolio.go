package repro

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
)

// Portfolio races several registered solvers on the same problem and
// returns the best result available when the last one finishes or the
// deadline fires — the classical algorithm-portfolio approach: cheap
// heuristics guarantee an answer within any budget while the exact
// solver keeps improving on it for as long as the deadline allows.
//
// As soon as one member returns a proven-optimal result the others are
// canceled (they return their incumbents, which cannot beat a proven
// optimum). "Best" means: fewest devices, ties broken towards lower
// objective, then towards proven optimality.
type Portfolio struct {
	name    string
	members []string
}

// NewPortfolio builds a portfolio over the named registered solvers.
// Members are resolved at Solve time, so a portfolio may be constructed
// before all its members are registered.
//
// Members must share the minimizing objective of the placement solvers
// (fewest devices / lowest cost): that is what the result comparison
// and the optimal-finisher cancellation assume. Racing maximization
// solvers such as tap/max-coverage is not supported — the comparison
// would pick the worst member.
func NewPortfolio(name string, members ...string) *Portfolio {
	return &Portfolio{name: name, members: append([]string(nil), members...)}
}

// Name implements Solver.
func (p *Portfolio) Name() string { return p.name }

// Members returns the solver names the portfolio races.
func (p *Portfolio) Members() []string { return append([]string(nil), p.members...) }

// Solve implements Solver: it runs every member concurrently under a
// shared context and picks the best result.
func (p *Portfolio) Solve(ctx context.Context, problem Problem, opts ...Option) (*Result, error) {
	if len(p.members) == 0 {
		return nil, fmt.Errorf("%s: empty portfolio", p.name)
	}
	solvers := make([]Solver, len(p.members))
	for i, name := range p.members {
		s, err := LookupSolver(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		solvers[i] = s
	}
	o := BuildOptions(opts)
	ctx, cancel := o.apply(ctx)
	defer cancel()

	start := time.Now()
	type outcome struct {
		res *Result
		err error
	}
	// The race runs on the scenario engine with one worker per member
	// (a portfolio's whole point is concurrent members under a shared
	// deadline); member failures are collected, not fatal, so the task
	// function never errors on its own — but the engine itself can fail
	// a task (fault injection at the engine/map/task point), and that
	// error must not vanish into an empty outcome scan.
	// Map returns outcomes in member order, which keeps the best-result
	// scan below deterministic.
	outcomes, mapErr := engine.Map(ctx, engine.New(engine.Options{Workers: len(solvers)}),
		len(solvers), func(ctx context.Context, i int) (outcome, error) {
			// Deadline options are already on ctx; members receive the
			// remaining (non-deadline) knobs through opts.
			res, err := solvers[i].Solve(ctx, problem, opts...)
			if err == nil && res.Optimal {
				// A proven optimum cannot be beaten: stop the rest.
				cancel()
			}
			return outcome{res, err}, nil
		})
	if mapErr != nil {
		return nil, fmt.Errorf("%s: %w", p.name, mapErr)
	}

	var best *Result
	var errs []error
	stats := Stats{Wall: time.Since(start)}
	for _, oc := range outcomes {
		if oc.err != nil {
			errs = append(errs, oc.err)
			continue
		}
		stats.Nodes += oc.res.Stats.Nodes
		stats.Pivots += oc.res.Stats.Pivots
		stats.Refactorizations += oc.res.Stats.Refactorizations
		stats.DevexResets += oc.res.Stats.DevexResets
		stats.WarmStarts += oc.res.Stats.WarmStarts
		if betterResult(oc.res, best) {
			best = oc.res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%s: all members failed: %w", p.name, errors.Join(errs...))
	}
	out := *best
	out.Stats = stats
	return &out, nil
}

// betterResult reports whether a beats b (b nil means a wins). Fewer
// devices first, then lower objective, then proven optimality.
func betterResult(a, b *Result) bool {
	if b == nil {
		return true
	}
	if a.Devices() != b.Devices() {
		return a.Devices() < b.Devices()
	}
	if a.Objective != b.Objective {
		return a.Objective < b.Objective
	}
	return a.Optimal && !b.Optimal
}
