package repro

import (
	"context"
	"testing"
	"time"
)

func TestSolveBatchMatchesSerialSolves(t *testing.T) {
	var problems []Problem
	for seed := int64(1); seed <= 4; seed++ {
		problems = append(problems, testInstance(t, seed))
	}
	batch, err := SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(problems) {
		t.Fatalf("got %d results for %d problems", len(batch), len(problems))
	}
	for i, p := range problems {
		ref, err := Solve(context.Background(), SolverTapExact, p, WithCoverage(0.9))
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Devices() != ref.Devices() || batch[i].Objective != ref.Objective ||
			batch[i].Optimal != ref.Optimal {
			t.Fatalf("problem %d: batch (%d devices, obj %g) != serial (%d devices, obj %g)",
				i, batch[i].Devices(), batch[i].Objective, ref.Devices(), ref.Objective)
		}
		if batch[i].Solver != SolverTapExact {
			t.Fatalf("problem %d solved by %q", i, batch[i].Solver)
		}
	}
}

func TestSolveBatchSerialParallelIdentical(t *testing.T) {
	var problems []Problem
	for seed := int64(1); seed <= 6; seed++ {
		problems = append(problems, testInstance(t, seed))
	}
	serialR := NewRunner(WithWorkers(1))
	serial, err := serialR.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	parallelR := NewRunner(WithWorkers(8))
	parallel, err := parallelR.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	for i := range problems {
		if serial[i].Devices() != parallel[i].Devices() || serial[i].Objective != parallel[i].Objective {
			t.Fatalf("problem %d: serial %d devices, parallel %d", i, serial[i].Devices(), parallel[i].Devices())
		}
	}
	if s, p := serialR.BatchStats(), parallelR.BatchStats(); s != p {
		t.Fatalf("aggregated stats differ: serial %+v, parallel %+v", s, p)
	}
}

func TestSolveBatchCacheDeduplicates(t *testing.T) {
	shared := testInstance(t, 3)
	rebuilt := testInstance(t, 3) // structurally identical, distinct pointer
	problems := []Problem{shared, shared, rebuilt, shared, testInstance(t, 4)}
	r := NewRunner()
	res, err := r.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheCounts()
	// Seeds 3 and 4 are the only distinct canonical instances: the
	// rebuilt seed-3 copy must hit the cache too.
	if misses != 2 || hits != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", hits, misses)
	}
	for i := 0; i < 4; i++ {
		if res[i].Devices() != res[0].Devices() {
			t.Fatalf("duplicate problem %d got %d devices, first got %d", i, res[i].Devices(), res[0].Devices())
		}
	}
	// The aggregate counts each memoized solve once.
	before := r.BatchStats()
	if _, err := r.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9)); err != nil {
		t.Fatal(err)
	}
	if after := r.BatchStats(); after != before {
		t.Fatalf("cached rerun grew stats: %+v -> %+v", before, after)
	}
}

func TestSolveBatchTimeBoundedBypassesCache(t *testing.T) {
	in := testInstance(t, 5)
	r := NewRunner()
	_, err := r.SolveBatch(context.Background(), SolverTapExact, []Problem{in, in},
		WithCoverage(0.9), WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatalf("time-bounded batch touched the cache: hits/misses = %d/%d", hits, misses)
	}
	// A deadline on the caller's own context is just as clock-dependent:
	// a degraded incumbent from such a run must never be memoized.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := r.SolveBatch(ctx, SolverTapExact, []Problem{in, in}, WithCoverage(0.9)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatalf("ctx-deadline batch touched the cache: hits/misses = %d/%d", hits, misses)
	}
}

func TestSolveBatchWithoutCache(t *testing.T) {
	in := testInstance(t, 6)
	r := NewRunner(WithoutCache(), WithWorkers(2))
	res, err := r.SolveBatch(context.Background(), SolverTapGreedyLoad, []Problem{in, in})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Devices() != res[1].Devices() {
		t.Fatal("uncached duplicate solves disagree")
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatal("WithoutCache runner reported cache traffic")
	}
}

func TestSolveBatchUnknownSolver(t *testing.T) {
	if _, err := SolveBatch(context.Background(), "tap/nope", []Problem{testInstance(t, 1)}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestSolveBatchPropagatesLowestError(t *testing.T) {
	// A beacon problem handed to a tap solver errors; the batch reports
	// the first (lowest-index) failure deterministically.
	bad := Problem("not an instance")
	_, err := SolveBatch(context.Background(), SolverTapExact,
		[]Problem{testInstance(t, 1), bad, bad}, WithCoverage(0.9))
	if err == nil {
		t.Fatal("bad problem accepted")
	}
}
