package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSolveBatchMatchesSerialSolves(t *testing.T) {
	var problems []Problem
	for seed := int64(1); seed <= 4; seed++ {
		problems = append(problems, testInstance(t, seed))
	}
	batch, err := SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(problems) {
		t.Fatalf("got %d results for %d problems", len(batch), len(problems))
	}
	for i, p := range problems {
		ref, err := Solve(context.Background(), SolverTapExact, p, WithCoverage(0.9))
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Devices() != ref.Devices() || batch[i].Objective != ref.Objective ||
			batch[i].Optimal != ref.Optimal {
			t.Fatalf("problem %d: batch (%d devices, obj %g) != serial (%d devices, obj %g)",
				i, batch[i].Devices(), batch[i].Objective, ref.Devices(), ref.Objective)
		}
		if batch[i].Solver != SolverTapExact {
			t.Fatalf("problem %d solved by %q", i, batch[i].Solver)
		}
	}
}

func TestSolveBatchSerialParallelIdentical(t *testing.T) {
	var problems []Problem
	for seed := int64(1); seed <= 6; seed++ {
		problems = append(problems, testInstance(t, seed))
	}
	serialR := NewRunner(WithWorkers(1))
	serial, err := serialR.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	parallelR := NewRunner(WithWorkers(8))
	parallel, err := parallelR.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	for i := range problems {
		if serial[i].Devices() != parallel[i].Devices() || serial[i].Objective != parallel[i].Objective {
			t.Fatalf("problem %d: serial %d devices, parallel %d", i, serial[i].Devices(), parallel[i].Devices())
		}
	}
	if s, p := serialR.BatchStats(), parallelR.BatchStats(); s != p {
		t.Fatalf("aggregated stats differ: serial %+v, parallel %+v", s, p)
	}
}

func TestSolveBatchCacheDeduplicates(t *testing.T) {
	shared := testInstance(t, 3)
	rebuilt := testInstance(t, 3) // structurally identical, distinct pointer
	problems := []Problem{shared, shared, rebuilt, shared, testInstance(t, 4)}
	r := NewRunner()
	res, err := r.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheCounts()
	// Seeds 3 and 4 are the only distinct canonical instances: the
	// rebuilt seed-3 copy must hit the cache too.
	if misses != 2 || hits != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", hits, misses)
	}
	for i := 0; i < 4; i++ {
		if res[i].Devices() != res[0].Devices() {
			t.Fatalf("duplicate problem %d got %d devices, first got %d", i, res[i].Devices(), res[0].Devices())
		}
	}
	// The aggregate counts each memoized solve once.
	before := r.BatchStats()
	if _, err := r.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.9)); err != nil {
		t.Fatal(err)
	}
	if after := r.BatchStats(); after != before {
		t.Fatalf("cached rerun grew stats: %+v -> %+v", before, after)
	}
}

func TestSolveBatchTimeBoundedBypassesCache(t *testing.T) {
	in := testInstance(t, 5)
	r := NewRunner()
	_, err := r.SolveBatch(context.Background(), SolverTapExact, []Problem{in, in},
		WithCoverage(0.9), WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatalf("time-bounded batch touched the cache: hits/misses = %d/%d", hits, misses)
	}
	// A deadline on the caller's own context is just as clock-dependent:
	// a degraded incumbent from such a run must never be memoized.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := r.SolveBatch(ctx, SolverTapExact, []Problem{in, in}, WithCoverage(0.9)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatalf("ctx-deadline batch touched the cache: hits/misses = %d/%d", hits, misses)
	}
}

func TestSolveBatchWithoutCache(t *testing.T) {
	in := testInstance(t, 6)
	r := NewRunner(WithoutCache(), WithWorkers(2))
	res, err := r.SolveBatch(context.Background(), SolverTapGreedyLoad, []Problem{in, in})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Devices() != res[1].Devices() {
		t.Fatal("uncached duplicate solves disagree")
	}
	if hits, misses := r.CacheCounts(); hits != 0 || misses != 0 {
		t.Fatal("WithoutCache runner reported cache traffic")
	}
}

func TestSolveBatchUnknownSolver(t *testing.T) {
	if _, err := SolveBatch(context.Background(), "tap/nope", []Problem{testInstance(t, 1)}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestSolveBatchPropagatesLowestError(t *testing.T) {
	// A beacon problem handed to a tap solver errors; the batch reports
	// the first (lowest-index) failure deterministically.
	bad := Problem("not an instance")
	_, err := SolveBatch(context.Background(), SolverTapExact,
		[]Problem{testInstance(t, 1), bad, bad}, WithCoverage(0.9))
	if err == nil {
		t.Fatal("bad problem accepted")
	}
}

func TestSolveBatchRejectsEmptySolverAndNilProblem(t *testing.T) {
	problems := []Problem{testInstance(t, 1), nil, testInstance(t, 2)}
	if _, err := SolveBatch(context.Background(), "", problems[:1]); err == nil ||
		!strings.Contains(err.Error(), "empty solver name") {
		t.Fatalf("empty solver name: got %v, want an up-front error naming it", err)
	}
	_, err := SolveBatch(context.Background(), SolverTapExact, problems)
	if err == nil || !strings.Contains(err.Error(), "problem 1 is nil") {
		t.Fatalf("nil problem: got %v, want an up-front error carrying index 1", err)
	}
}

func TestSolveBatchCancellationMidBatchReturnsIncumbents(t *testing.T) {
	// A context canceled between problems must not abort the batch: the
	// engine keeps scheduling and exact solvers degrade to their best
	// incumbents, so every problem still reports a (non-optimal) result
	// and no worker goroutine is left behind.
	var problems []Problem
	for seed := int64(1); seed <= 5; seed++ {
		problems = append(problems, testInstance(t, seed))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	name := "test/cancel-after-first"
	if err := RegisterSolver(SolverFunc{SolverName: name, Fn: func(ctx context.Context, p Problem, o Options) (*Result, error) {
		if calls.Add(1) == 2 {
			// Fires after problem 0 completed (single worker runs the
			// batch strictly in order): problems 1.. see a dead context.
			cancel()
		}
		return Solve(ctx, SolverTapExact, p, WithCoverage(o.Coverage))
	}}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	results, err := NewRunner(WithWorkers(1)).SolveBatch(ctx, name, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(problems) {
		t.Fatalf("got %d results for %d problems", len(results), len(problems))
	}
	if !results[0].Optimal {
		t.Fatal("problem 0 solved before cancellation must be optimal")
	}
	for i, res := range results {
		if res == nil || res.Taps == nil {
			t.Fatalf("problem %d: no incumbent after cancellation", i)
		}
	}
	for i, res := range results[2:] {
		if res.Optimal {
			t.Fatalf("problem %d claims optimality under a canceled context", i+2)
		}
	}
	// No leaked workers: engine.Map joins its goroutines before
	// returning; give the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before batch, %d after", before, n)
	}
}

func TestRunnerCacheDirPersistsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	problems := []Problem{testInstance(t, 1), testInstance(t, 2)}

	cold := NewRunner(WithWorkers(1), WithCacheDir(dir))
	first, err := cold.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cold.CacheCounts(); hits != 0 || misses != 2 {
		t.Fatalf("cold runner counts = %d/%d hit/miss, want 0/2", hits, misses)
	}

	// A fresh runner over the same directory must serve both solves from
	// the persisted store: zero misses, identical results.
	warm := NewRunner(WithWorkers(1), WithCacheDir(dir))
	second, err := warm.SolveBatch(context.Background(), SolverTapExact, problems, WithCoverage(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := warm.CacheCounts(); hits != 2 || misses != 0 {
		t.Fatalf("warm runner counts = %d/%d hit/miss, want 2/0 (disk store not loaded?)", hits, misses)
	}
	for i := range problems {
		a, _ := json.Marshal(first[i])
		b, _ := json.Marshal(second[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("problem %d: warm result differs from cold:\ncold %s\nwarm %s", i, a, b)
		}
	}

	// The store is content-addressed by the canonical hex keys and
	// ignores foreign files.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := NewRunner(WithCacheDir(dir))
	if _, err := again.SolveBatch(context.Background(), SolverTapExact, problems[:1], WithCoverage(0.95)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := again.CacheCounts(); hits != 1 || misses != 0 {
		t.Fatalf("counts after junk file = %d/%d hit/miss, want 1/0", hits, misses)
	}
}
