package repro

import (
	"context"
	"errors"
	"fmt"
)

// Graceful-degradation ladder (DESIGN.md §9): a solve configured
// WithFallback never turns one solver's failure into the caller's
// failure while a cheaper registered solver can still produce a
// feasible placement. The ladder activates only on a primary *error* —
// a solver stopped by its deadline WITH an incumbent already degrades
// the paper's way (best-so-far, Optimal == false) and is not a
// failure. Ladder answers carry provenance (Result.Degraded,
// Result.FallbackSolver, Stats.Degraded) so every downstream surface —
// batch aggregates, placementd response JSON, /metrics — can count
// degradation instead of hiding it.

// solveWithFallback runs s and, on error, falls through the
// WithFallback ladder in order, returning the first success stamped
// with degradation provenance. With no ladder (or none left), the
// primary's error — joined with every ladder member's — surfaces.
func solveWithFallback(ctx context.Context, s Solver, problem Problem, opts []Option) (*Result, error) {
	res, err := s.Solve(ctx, problem, opts...)
	o := BuildOptions(opts)
	if err == nil || len(o.Fallback) == 0 {
		return res, err
	}
	errs := []error{err}
	for _, name := range o.Fallback {
		if name == s.Name() {
			// The primary already failed; retrying it is not degrading.
			continue
		}
		fb, lerr := LookupSolver(name)
		if lerr != nil {
			errs = append(errs, lerr)
			continue
		}
		res, ferr := fb.Solve(ctx, problem, opts...)
		if ferr != nil {
			errs = append(errs, fmt.Errorf("fallback %s: %w", name, ferr))
			continue
		}
		res.Solver = s.Name()
		res.Degraded = true
		res.FallbackSolver = name
		res.Stats.Degraded++
		return res, nil
	}
	return nil, fmt.Errorf("repro: %s and its fallback ladder all failed: %w", s.Name(), errors.Join(errs...))
}
