// Package repro is a from-scratch Go implementation of
//
//	Chaudet, Fleury, Guérin Lassous, Rivano, Voge —
//	"Optimal Positioning of Active and Passive Monitoring Devices",
//	CoNEXT 2005.
//
// It covers the complete system of the paper: the Partial Passive
// Monitoring problem PPM(k) with greedy, flow-based and exact MIP
// solvers (§4), sampling-capable devices with the PPME(h,k) MILP, the
// polynomial PPME* rate re-optimization and the dynamic-traffic
// controller (§5), active monitoring with probe computation and beacon
// placement (§6), plus all substrates: POP topology and traffic
// generation, a simplex LP solver, branch-and-bound MIP, min-cost flow,
// set-cover algorithms and a packet-level validation simulator.
//
// This package is the public facade: it re-exports the domain types and
// exposes every algorithm through the context-aware Solver/Result core
// (see solver.go): solvers are looked up by name in a registry, solves
// are bounded by context deadlines and report statistics, and a
// Portfolio races several solvers concurrently. The historical
// method-enum helpers (PlaceTaps, PlaceBeacons) remain as thin wrappers
// over the registry. The examples/ directory shows complete programs;
// DESIGN.md maps every paper section and figure to the implementing
// module.
package repro

import (
	"context"
	"fmt"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/passive"
	"repro/internal/sampling"
	"repro/internal/simulate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Aliases re-exporting the domain model, so the facade is the only
// import applications need.
type (
	// Graph is the POP graph G = (V, E) of §4.1.
	Graph = graph.Graph
	// NodeID and EdgeID identify routers and links.
	NodeID = graph.NodeID
	EdgeID = graph.EdgeID
	// Path is a routed path through the POP.
	Path = graph.Path

	// POP is a generated point of presence (backbone routers, access
	// routers, virtual traffic endpoints — §2, Figure 2).
	POP = topology.POP
	// POPConfig parameterizes POP generation.
	POPConfig = topology.Config

	// Demand is an un-routed traffic request; Traffic and MultiTraffic
	// are its single- and multi-routed forms.
	Demand       = traffic.Demand
	Traffic      = core.Traffic
	MultiTraffic = core.MultiTraffic
	// TrafficConfig parameterizes demand generation (§4.4: non-uniform
	// volumes with preferred pairs).
	TrafficConfig = traffic.Config

	// Instance is a single-routed PPM(k) instance; MultiInstance the
	// multi-routed §5 variant.
	Instance      = core.Instance
	MultiInstance = core.MultiInstance

	// TapPlacement is a passive-monitoring solution (§4).
	TapPlacement = passive.Placement
	// ILPOptions configures the exact MIP solver (formulation choice,
	// incremental placement, device budget).
	ILPOptions = passive.ILPOptions

	// SamplingConfig and SamplingSolution are the §5 PPME types;
	// RateController implements the §5.4 adaptation loop; CostModel
	// carries costi/coste.
	SamplingConfig   = sampling.Config
	SamplingSolution = sampling.Solution
	RateController   = sampling.Controller
	CostModel        = sampling.CostModel

	// Sampler and Packet are the §5.2 sampling techniques' interface.
	Sampler = sampling.Sampler
	Packet  = sampling.Packet

	// ProbeSet and BeaconPlacement are the §6 active-monitoring types.
	ProbeSet        = active.ProbeSet
	Probe           = active.Probe
	BeaconPlacement = active.Placement

	// ReplayOptions and ReplayResult drive the packet-level validation
	// simulator.
	ReplayOptions = simulate.Options
	ReplayResult  = simulate.Result
)

// Paper-instance presets (router/link/traffic counts matching §4.4 and
// §6.2).
var (
	Paper10 = topology.Paper10
	Paper15 = topology.Paper15
	Paper29 = topology.Paper29
	Paper80 = topology.Paper80
)

// GeneratePOP builds a two-level POP topology (§2).
func GeneratePOP(cfg POPConfig) *POP { return topology.Generate(cfg) }

// GenerateDemands draws one demand per ordered endpoint pair with
// non-uniform volumes (§4.4).
func GenerateDemands(pop *POP, cfg TrafficConfig) []Demand { return traffic.Demands(pop, cfg) }

// RouteSingle routes demands on shortest paths into a PPM instance.
func RouteSingle(pop *POP, demands []Demand) (*Instance, error) { return traffic.Route(pop, demands) }

// RouteMulti routes demands over up to maxRoutes load-balanced shortest
// routes into a §5 multi-routed instance.
func RouteMulti(pop *POP, demands []Demand, maxRoutes int) (*MultiInstance, error) {
	return traffic.RouteMulti(pop, demands, maxRoutes)
}

// TapMethod selects a PPM(k) algorithm.
//
// Deprecated: the int enum survives for source compatibility only; new
// code should address solvers by registry name (Solvers lists them) via
// Solve or LookupSolver.
type TapMethod int

const (
	// TapGreedyLoad is the §4.3 baseline greedy (most loaded link
	// first) — the "Greedy algorithm" curve of Figures 7 and 8.
	TapGreedyLoad TapMethod = iota
	// TapGreedyGain is the marginal-gain set-cover greedy.
	TapGreedyGain
	// TapFlow is the Minimum Edge Cost Flow linear-relaxation heuristic.
	TapFlow
	// TapILP is the exact MIP (Linear program 2) — the "ILP" curve.
	TapILP
	// TapExact is the exact combinatorial branch-and-bound via the
	// Theorem 1 set-cover view; same optima as TapILP, faster on large
	// instances.
	TapExact
)

func (m TapMethod) String() string {
	switch m {
	case TapGreedyLoad:
		return "greedy-load"
	case TapGreedyGain:
		return "greedy-gain"
	case TapFlow:
		return "flow-heuristic"
	case TapILP:
		return "ilp"
	case TapExact:
		return "exact"
	}
	return fmt.Sprintf("TapMethod(%d)", int(m))
}

// PlaceTaps solves PPM(k): select links for tap devices so traffics
// carrying at least fraction k of the volume cross a tapped link.
// It delegates to the registered "tap/<method>" solver.
//
// Deprecated: use Solve with a registry name, which also exposes
// deadlines, budgets and solver statistics.
func PlaceTaps(ctx context.Context, in *Instance, k float64, method TapMethod) (TapPlacement, error) {
	res, err := Solve(ctx, "tap/"+method.String(), in, WithCoverage(k))
	if err != nil {
		return TapPlacement{}, err
	}
	return *res.Taps, nil
}

// PlaceTapsILP exposes the full MIP options: formulation choice,
// incremental placement over installed devices, and device budgets
// (§4.3).
func PlaceTapsILP(ctx context.Context, in *Instance, k float64, opts ILPOptions) (TapPlacement, error) {
	return passive.SolveILP(ctx, in, k, opts)
}

// MaxCoverage places at most budget devices (plus installed ones) to
// maximize monitored volume — the paper's expected-gain question.
func MaxCoverage(ctx context.Context, in *Instance, budget int, installed []EdgeID) (TapPlacement, error) {
	return passive.MaxCoverage(ctx, in, budget, installed)
}

// PlaceSamplers solves PPME(h,k) (Linear program 3): device placement
// plus sampling ratios minimizing setup + exploitation cost (§5.3).
func PlaceSamplers(ctx context.Context, in *MultiInstance, cfg SamplingConfig) (*SamplingSolution, error) {
	return sampling.Solve(ctx, in, cfg)
}

// ReoptimizeRates solves PPME*(x,h,k): placement frozen, rates
// re-optimized in polynomial time (§5.4).
func ReoptimizeRates(ctx context.Context, in *MultiInstance, installed []EdgeID, cfg SamplingConfig) (*SamplingSolution, error) {
	return sampling.SolveRates(ctx, in, installed, cfg)
}

// NewRateController builds the §5.4 threshold controller (wait below
// threshold T, recompute PPME* on crossing).
func NewRateController(ctx context.Context, in *MultiInstance, installed []EdgeID, cfg SamplingConfig, threshold float64) (*RateController, error) {
	return sampling.NewController(ctx, in, installed, cfg, threshold)
}

// Samplers (§5.2). N is the sampling period (rate 1/N).
func NewTimeBasedSampler(interval float64) Sampler { return sampling.NewTimeBased(interval) }

// NewRegularSampler samples exactly one frame in every N.
func NewRegularSampler(n int) Sampler { return sampling.NewRegular(n) }

// NewProbabilisticSampler samples each frame with probability 1/N.
func NewProbabilisticSampler(n int, seed int64) Sampler { return sampling.NewProbabilistic(n, seed) }

// NewGeometricSampler samples one frame every X, X geometric with mean N.
func NewGeometricSampler(n int, seed int64) Sampler { return sampling.NewGeometric(n, seed) }

// ComputeProbes builds the probe set Φ covering every link from the
// candidate beacons V_B (first phase of [15], §6.1).
func ComputeProbes(g *Graph, candidates []NodeID) (ProbeSet, error) {
	return active.ComputeProbes(g, candidates)
}

// BeaconMethod selects a beacon-placement algorithm (§6).
//
// Deprecated: the int enum survives for source compatibility only; new
// code should address solvers by registry name ("beacon/thiran",
// "beacon/greedy", "beacon/ilp") via Solve or LookupSolver.
type BeaconMethod int

const (
	// BeaconThiran is the arbitrary-order heuristic of [15].
	BeaconThiran BeaconMethod = iota
	// BeaconGreedy is the paper's improved most-probes-first greedy.
	BeaconGreedy
	// BeaconILP is the exact 0–1 integer program of §6.1.
	BeaconILP
)

func (m BeaconMethod) String() string {
	switch m {
	case BeaconThiran:
		return "thiran"
	case BeaconGreedy:
		return "greedy"
	case BeaconILP:
		return "ilp"
	}
	return fmt.Sprintf("BeaconMethod(%d)", int(m))
}

// PlaceBeacons chooses beacons so every probe of the set has a beacon
// extremity. It delegates to the registered "beacon/<method>" solver.
//
// Deprecated: use Solve with a registry name, which also exposes
// deadlines and solver statistics.
func PlaceBeacons(ctx context.Context, ps ProbeSet, method BeaconMethod) (BeaconPlacement, error) {
	res, err := Solve(ctx, "beacon/"+method.String(), ps)
	if err != nil {
		return BeaconPlacement{}, err
	}
	return *res.Beacons, nil
}

// Replay validates a deployment at packet level: synthetic packets flow
// along every route, devices sample at their assigned rates, and the
// achieved coverage is measured.
func Replay(in *MultiInstance, rates map[EdgeID]float64, opt ReplayOptions) (ReplayResult, error) {
	return simulate.Run(in, rates, opt)
}

// PlaceTapsRounding runs the §4.3 randomized-rounding heuristic: round
// the LP-relaxation of Linear program 2 with boosted probabilities until
// the coverage target holds, then prune.
func PlaceTapsRounding(ctx context.Context, in *Instance, k float64, seed int64) (TapPlacement, error) {
	return passive.RandomizedRounding(ctx, in, k, seed)
}

// ReoptimizeRatesFlow is the §5.4 min-cost-flow formulation of PPME*
// (no LP involved); it does not support per-traffic floors.
func ReoptimizeRatesFlow(in *MultiInstance, installed []EdgeID, cfg SamplingConfig) (*SamplingSolution, error) {
	return sampling.SolveRatesFlow(in, installed, cfg)
}

// BalanceBeaconLoad redistributes probe sending among the placed
// beacons to minimize the maximum per-beacon message count (§6's
// generated-messages objective).
func BalanceBeaconLoad(ps ProbeSet, pl BeaconPlacement) (BeaconPlacement, error) {
	return active.BalanceSenders(ps, pl)
}

// RoutingCampaign implements the §7 measurement-campaign outlook: with
// devices and rates fixed, steer every traffic onto its best-monitored
// candidate route. It returns the re-routed instance and the coverage
// before and after.
func RoutingCampaign(in *MultiInstance, rates map[EdgeID]float64) (*MultiInstance, float64, float64) {
	before, _ := sampling.CampaignGain(in, rates)
	out, after := sampling.Campaign(in, rates)
	return out, before, after
}

// PromisedCoverage is the analytic coverage Σ min(1, Σ_{e∈p} r_e)·v_p/V
// that Replay's marked discipline should reproduce.
func PromisedCoverage(in *MultiInstance, rates map[EdgeID]float64) float64 {
	return simulate.PromisedFraction(in, rates)
}
