package repro

import (
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// ChurnDelta records the mutation a churn step applied (rows dropped
// and added, rescale-factor range) — see traffic.ChurnWithDelta.
type ChurnDelta = traffic.ChurnDelta

// Scenario-family subsystem (internal/scenario): seeded workload
// generators beyond the paper's two Rocketfuel-derived sizes,
// addressed — like solvers — through a string-keyed registry.
type (
	// Scenario is one generated workload: POP + demands + the
	// (family, size, seed) triple that reproduces both. Its Instance
	// and MultiInstance methods route it into solver problems.
	Scenario = scenario.Scenario
	// ScenarioFamily is a named, seeded workload generator.
	ScenarioFamily = scenario.Family
)

// ScenarioFamilies lists the registered scenario families, sorted
// ("barabasi", "churn", "fattree", "metro", "pop", "waxman" built in).
func ScenarioFamilies() []string { return scenario.Families() }

// RegisterScenarioFamily adds a custom workload family to the
// registry.
func RegisterScenarioFamily(f ScenarioFamily) error { return scenario.Register(f) }

// GenerateScenario draws the (family, size, seed) scenario:
//
//	s, err := repro.GenerateScenario("waxman", 40, 7)
//	in, err := s.Instance()
//	res, err := repro.Solve(ctx, "tap/ilp", in, repro.WithCoverage(0.95))
func GenerateScenario(family string, size int, seed int64) (*Scenario, error) {
	return scenario.Generate(family, size, seed)
}

// ScenarioBatch generates one single-routed instance per seed of one
// family and size, as a Problem slice ready for Runner.SolveBatch —
// the batch form the scenario sweeps use:
//
//	problems, err := repro.ScenarioBatch("waxman", 40, []int64{1, 2, 3})
//	results, err := repro.SolveBatch(ctx, "tap/portfolio", problems,
//	        repro.WithCoverage(0.95))
//
// ChurnSteps builds a churn replay chain from a scenario: element 0 is
// the scenario's base instance, element i > 0 is the instance after i
// successive traffic.Churn mutations (drop/add/rescale, seeded from
// the scenario seed — deterministic in (scenario, steps)). deltas[i-1]
// records what mutation produced chain[i]. This is the workload
// Session.Resolve exists for: feed chain[0] to Solve and the rest to
// Resolve, and compare Stats against cold solves of the same chain.
func ChurnSteps(s *Scenario, steps int) (chain []*Instance, deltas []ChurnDelta, err error) {
	dem := s.Demands
	in, err := RouteSingle(s.POP, traffic.Aggregate(dem))
	if err != nil {
		return nil, nil, err
	}
	chain = append(chain, in)
	for step := 1; step <= steps; step++ {
		mutated, delta, err := traffic.ChurnWithDelta(s.POP, dem, traffic.ChurnConfig{Seed: s.Seed + int64(step)})
		if err != nil {
			return nil, nil, err
		}
		in, err := RouteSingle(s.POP, traffic.Aggregate(mutated))
		if err != nil {
			return nil, nil, err
		}
		chain = append(chain, in)
		deltas = append(deltas, delta)
		dem = mutated
	}
	return chain, deltas, nil
}

func ScenarioBatch(family string, size int, seeds []int64) ([]Problem, error) {
	problems := make([]Problem, 0, len(seeds))
	for _, seed := range seeds {
		s, err := GenerateScenario(family, size, seed)
		if err != nil {
			return nil, err
		}
		in, err := s.Instance()
		if err != nil {
			return nil, err
		}
		problems = append(problems, in)
	}
	return problems, nil
}
