package repro

import (
	"repro/internal/scenario"
)

// Scenario-family subsystem (internal/scenario): seeded workload
// generators beyond the paper's two Rocketfuel-derived sizes,
// addressed — like solvers — through a string-keyed registry.
type (
	// Scenario is one generated workload: POP + demands + the
	// (family, size, seed) triple that reproduces both. Its Instance
	// and MultiInstance methods route it into solver problems.
	Scenario = scenario.Scenario
	// ScenarioFamily is a named, seeded workload generator.
	ScenarioFamily = scenario.Family
)

// ScenarioFamilies lists the registered scenario families, sorted
// ("barabasi", "churn", "fattree", "metro", "pop", "waxman" built in).
func ScenarioFamilies() []string { return scenario.Families() }

// RegisterScenarioFamily adds a custom workload family to the
// registry.
func RegisterScenarioFamily(f ScenarioFamily) error { return scenario.Register(f) }

// GenerateScenario draws the (family, size, seed) scenario:
//
//	s, err := repro.GenerateScenario("waxman", 40, 7)
//	in, err := s.Instance()
//	res, err := repro.Solve(ctx, "tap/ilp", in, repro.WithCoverage(0.95))
func GenerateScenario(family string, size int, seed int64) (*Scenario, error) {
	return scenario.Generate(family, size, seed)
}

// ScenarioBatch generates one single-routed instance per seed of one
// family and size, as a Problem slice ready for Runner.SolveBatch —
// the batch form the scenario sweeps use:
//
//	problems, err := repro.ScenarioBatch("waxman", 40, []int64{1, 2, 3})
//	results, err := repro.SolveBatch(ctx, "tap/portfolio", problems,
//	        repro.WithCoverage(0.95))
func ScenarioBatch(family string, size int, seeds []int64) ([]Problem, error) {
	problems := make([]Problem, 0, len(seeds))
	for _, seed := range seeds {
		s, err := GenerateScenario(family, size, seed)
		if err != nil {
			return nil, err
		}
		in, err := s.Instance()
		if err != nil {
			return nil, err
		}
		problems = append(problems, in)
	}
	return problems, nil
}
