package repro

import (
	"context"
	"testing"
)

// TestScenarioBatch drives the facade path: generate a family batch,
// solve it on the batch runner, and check the per-seed results line up
// with one-off solves.
func TestScenarioBatch(t *testing.T) {
	seeds := []int64{1, 2, 3}
	problems, err := ScenarioBatch("metro", 10, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != len(seeds) {
		t.Fatalf("got %d problems, want %d", len(problems), len(seeds))
	}
	ctx := context.Background()
	results, err := SolveBatch(ctx, SolverTapGreedyGain, problems, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range problems {
		one, err := Solve(ctx, SolverTapGreedyGain, p, WithCoverage(0.9))
		if err != nil {
			t.Fatal(err)
		}
		if one.Objective != results[i].Objective {
			t.Errorf("seed %d: batch objective %g, one-off %g", seeds[i], results[i].Objective, one.Objective)
		}
	}
}

// TestScenarioFamiliesExposed pins the facade registry surface.
func TestScenarioFamiliesExposed(t *testing.T) {
	fams := ScenarioFamilies()
	if len(fams) < 5 {
		t.Fatalf("want ≥5 built-in families, got %v", fams)
	}
	s, err := GenerateScenario(fams[0], 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.POP == nil || len(s.Demands) == 0 {
		t.Fatal("scenario missing POP or demands")
	}
	if _, err := GenerateScenario("no-such", 10, 0); err == nil {
		t.Fatal("want error for unknown family")
	}
	dup := ScenarioFamily{
		Name:     fams[0],
		Generate: func(int, int64) (*Scenario, error) { return nil, nil },
	}
	if err := RegisterScenarioFamily(dup); err == nil {
		t.Fatal("want duplicate-registration error")
	}
}
