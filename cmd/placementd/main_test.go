package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL, the stop channel, and the channel run's error
// will arrive on.
func startDaemon(t *testing.T, args ...string) (string, chan os.Signal, chan error, *bytes.Buffer) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var progress bytes.Buffer
	all := append([]string{"-addr", "127.0.0.1:0"}, args...)
	go func() {
		done <- run(all, io.Discard, &progress, func(a net.Addr) { addrCh <- a }, stop)
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), stop, done, &progress
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
	}
	panic("unreachable")
}

func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	base, stop, done, progress := startDaemon(t)

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", probe, resp.StatusCode)
		}
	}

	body := `{"solver":"tap/greedy-gain","family":"waxman","size":16,"seed":1,"coverage":0.9}`
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d: %s", resp.StatusCode, raw)
	}
	var sr struct {
		Result struct {
			Objective float64 `json:"objective"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("solve response: %v", err)
	}
	if sr.Result.Objective <= 0 {
		t.Fatalf("objective = %g, want > 0", sr.Result.Objective)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	out := progress.String()
	if !strings.Contains(out, "listening on") || !strings.Contains(out, "drained") {
		t.Fatalf("progress log missing lifecycle lines:\n%s", out)
	}
}

func TestDaemonCacheDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"solver":"tap/exact","family":"waxman","size":20,"seed":7,"coverage":1}`

	solve := func(base string) []byte {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status = %d: %s", resp.StatusCode, raw)
		}
		return raw
	}
	shutdown := func(stop chan os.Signal, done chan error) {
		t.Helper()
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}

	base, stop, done, _ := startDaemon(t, "-cache-dir", dir)
	cold := solve(base)
	shutdown(stop, done)

	base2, stop2, done2, progress := startDaemon(t, "-cache-dir", dir)
	warm := solve(base2)
	shutdown(stop2, done2)

	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm response differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	if !strings.Contains(progress.String(), "cache 1/0 hit/miss") {
		t.Fatalf("restarted daemon should have served from the persisted cache:\n%s", progress.String())
	}
}

func TestDaemonVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard, nil, nil); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out.String(), "placementd ") {
		t.Fatalf("version output = %q", out.String())
	}
}

func TestDaemonRejectsBadListenAddr(t *testing.T) {
	err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil)
	if err == nil {
		t.Fatal("want listen error for bad address")
	}
}
