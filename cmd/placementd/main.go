// Command placementd is the long-lived placement-as-a-service daemon:
// the internal/service HTTP subsystem on a socket. Clients POST
// topology+traffic problems (or scenario-family triples) to /v1/solve
// and /v1/batch and get placements back as JSON; /metrics serves
// Prometheus text, /healthz liveness, /v1/families the scenario
// registry. With -cache-dir the content-addressed result store
// persists across restarts, so a replaced replica answers repeat
// queries from disk at cache speed.
//
// Usage:
//
//	placementd -addr :8080 -cache-dir /var/cache/placementd
//	placementd -addr 127.0.0.1:0            # ephemeral port, printed on stderr
//	placementd -inflight 16 -queue 256      # admission-control bounds
//	placementd -version
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight and
// queued solves finish (bounded by -drain), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/service"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "placementd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until stop fires or the listener
// fails. notify (optional) receives the bound address — the hook the
// in-process tests use; scripts read the "listening on" stderr line.
func run(args []string, out, progress io.Writer, notify func(net.Addr), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("placementd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
	cacheDir := fs.String("cache-dir", "", "persist the result store here so restarts are warm (empty = memory only)")
	workers := fs.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	inflight := fs.Int("inflight", 0, "max concurrently admitted requests (0 = 2x GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max requests waiting for a slot before 429 shedding (0 = 128)")
	maxTimeout := fs.Duration("max-timeout", time.Minute, "cap on client-requested solve deadlines")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace for in-flight solves")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(out, "placementd")
		return nil
	}

	svc, err := service.New(service.Config{
		CacheDir:    *cacheDir,
		Workers:     *workers,
		MaxInFlight: *inflight,
		MaxQueue:    *queue,
		MaxTimeout:  *maxTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(progress, "placementd: listening on %s\n", ln.Addr())
	if notify != nil {
		notify(ln.Addr())
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		fmt.Fprintf(progress, "placementd: %v, draining (max %v)\n", sig, *drain)
	}
	// Flip the health probes to 503 before closing the listener, so a
	// load balancer stops routing while Shutdown finishes in-flight
	// work.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	hits, misses := svc.Runner().CacheCounts()
	fmt.Fprintf(progress, "placementd: drained, cache %d/%d hit/miss, bye\n", hits, misses)
	return nil
}
