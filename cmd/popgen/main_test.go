package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topology"
)

// runToFile executes run() with stdout redirected to a temp file and
// returns the produced text.
func runToFile(t *testing.T, args ...string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	f.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

func TestMapOutputParsesBack(t *testing.T) {
	out, err := runToFile(t, "-preset", "paper10", "-seed", "3", "-format", "map")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := topology.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("generated map does not parse: %v", err)
	}
	if pop.Routers() != 10 || pop.G.NumEdges() != 27 {
		t.Fatalf("parsed %d routers / %d links, want 10/27", pop.Routers(), pop.G.NumEdges())
	}
}

func TestDOTOutput(t *testing.T) {
	out, err := runToFile(t, "-routers", "6", "-links", "9", "-endpoints", "4", "-format", "dot")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph \"pop\"", "shape=box", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTWithLoads(t *testing.T) {
	out, err := runToFile(t, "-routers", "6", "-links", "9", "-endpoints", "4", "-format", "dot", "-loads")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "penwidth") {
		t.Errorf("load widths missing:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad preset": {"-preset", "nope"},
		"bad format": {"-format", "yaml"},
		"bad flag":   {"-bogus"},
	} {
		if _, err := runToFile(t, args...); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestFamilyMapOutputParsesBack(t *testing.T) {
	for _, fam := range []string{"waxman", "barabasi", "metro", "fattree", "pop"} {
		out, err := runToFile(t, "-family", fam, "-size", "12", "-seed", "7", "-format", "map")
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		pop, err := topology.Read(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: generated map does not parse: %v", fam, err)
		}
		if pop.Routers() != 12 {
			t.Fatalf("%s: parsed %d routers, want 12", fam, pop.Routers())
		}
	}
}

func TestFamilyDOTWithLoads(t *testing.T) {
	out, err := runToFile(t, "-family", "waxman", "-size", "10", "-seed", "1", "-format", "dot", "-loads")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "penwidth") {
		t.Errorf("DOT with -loads missing edge widths:\n%s", out)
	}
}

func TestFamiliesListing(t *testing.T) {
	out, err := runToFile(t, "-families")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"barabasi", "churn", "fattree", "metro", "pop", "waxman"} {
		if !strings.Contains(out, fam) {
			t.Errorf("families listing missing %q:\n%s", fam, out)
		}
	}
}

func TestUnknownFamilyErrors(t *testing.T) {
	if _, err := runToFile(t, "-family", "no-such", "-size", "10"); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runToFile(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out, "popgen ") {
		t.Fatalf("version output = %q", out)
	}
}
