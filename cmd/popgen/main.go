// Command popgen generates POP topologies (§2's two-level architecture,
// or any registered scenario family) and writes them as a
// Rocketfuel-style map or Graphviz DOT, optionally weighting edges by
// generated traffic load as in the paper's Figure 6.
//
// Usage:
//
//	popgen -preset paper10 -format map
//	popgen -routers 20 -links 36 -endpoints 14 -seed 3 -format dot -loads
//	popgen -family waxman -size 40 -seed 7
//	popgen -families
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/graph"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "popgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("popgen", flag.ContinueOnError)
	preset := fs.String("preset", "", "paper10|paper15|paper29|paper80 (overrides size flags)")
	family := fs.String("family", "", "scenario family (-families lists all; overrides -preset and size flags)")
	size := fs.Int("size", 20, "with -family: number of POP routers")
	listFamilies := fs.Bool("families", false, "list registered scenario families and exit")
	routers := fs.Int("routers", 10, "number of POP routers")
	links := fs.Int("links", 15, "inter-router links")
	endpoints := fs.Int("endpoints", 12, "virtual traffic endpoints")
	seed := fs.Int64("seed", 0, "generation seed")
	format := fs.String("format", "map", "output format: map|dot")
	loads := fs.Bool("loads", false, "with -format dot: weight edges by traffic load (Figure 6 style)")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(out, "popgen")
		return nil
	}
	if *listFamilies {
		for _, name := range scenario.Families() {
			f, err := scenario.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %s\n", name, f.Description)
		}
		return nil
	}

	var pop *topology.POP
	// demands are pre-drawn by scenario families; nil means draw the
	// §4.4 preferred-pair matrix on demand for -loads.
	var demands []traffic.Demand
	if *family != "" {
		s, err := scenario.Generate(*family, *size, *seed)
		if err != nil {
			return err
		}
		pop, demands = s.POP, s.Demands
	} else {
		cfg := topology.Config{Routers: *routers, InterRouterLinks: *links, Endpoints: *endpoints}
		switch *preset {
		case "":
		case "paper10":
			cfg = topology.Paper10
		case "paper15":
			cfg = topology.Paper15
		case "paper29":
			cfg = topology.Paper29
		case "paper80":
			cfg = topology.Paper80
		default:
			return fmt.Errorf("unknown preset %q", *preset)
		}
		cfg.Seed = *seed
		pop = topology.Generate(cfg)
	}

	switch *format {
	case "map":
		return topology.Write(out, pop)
	case "dot":
		opt := graph.DOTOptions{
			Name: "pop",
			NodeShape: func(n graph.NodeID) string {
				switch pop.Kind[n] {
				case topology.Backbone:
					return "box"
				case topology.Access:
					return "ellipse"
				default:
					return "point"
				}
			},
		}
		if *loads {
			if demands == nil {
				demands = traffic.Demands(pop, traffic.Config{Seed: *seed})
			}
			in, err := traffic.Route(pop, demands)
			if err != nil {
				return err
			}
			edgeLoads := in.EdgeLoads()
			maxLoad := 0.0
			for _, l := range edgeLoads {
				if l > maxLoad {
					maxLoad = l
				}
			}
			opt.EdgeWidth = func(e graph.Edge) float64 {
				if maxLoad == 0 {
					return 1
				}
				return 0.5 + 4*edgeLoads[e.ID]/maxLoad
			}
		}
		return pop.G.WriteDOT(out, opt)
	}
	return fmt.Errorf("unknown format %q", *format)
}
