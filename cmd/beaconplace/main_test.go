package main

import (
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestRunAllAlgorithms(t *testing.T) {
	out, err := runToString(t, "-preset", "paper15", "-seed", "1", "-method", "all")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"thiran:", "greedy:", "ilp:", "probes", "|V_B| = 15"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The ILP line must claim optimality.
	if !strings.Contains(out, "optimal: true") {
		t.Errorf("ILP not optimal:\n%s", out)
	}
}

func TestRunRestrictedCandidates(t *testing.T) {
	out, err := runToString(t, "-preset", "paper15", "-candidates", "5", "-method", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|V_B| = 5") {
		t.Errorf("candidate restriction ignored:\n%s", out)
	}
}

func TestRunSingleMethods(t *testing.T) {
	for _, m := range []string{"thiran", "greedy", "ilp"} {
		out, err := runToString(t, "-preset", "paper10", "-method", m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(out, m+":") {
			t.Errorf("%s: header missing:\n%s", m, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad preset": {"-preset", "nope"},
		"bad method": {"-method", "nope"},
		"bad flag":   {"-bogus"},
	} {
		if _, err := runToString(t, args...); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runToString(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out, "beaconplace ") {
		t.Fatalf("version output = %q", out)
	}
}
