// Command beaconplace runs the active-monitoring pipeline of §6:
// computes a probe set covering every link from a candidate beacon set,
// then places beacons with the algorithm of [15] (thiran), the paper's
// greedy, or the exact ILP, and prints beacons with their probe loads.
// -timeout bounds each solve; an expired ILP prints its incumbent.
//
// Usage:
//
//	beaconplace -preset paper15 -seed 1 -candidates 10 -method ilp
//	beaconplace -preset paper29 -candidates 29 -method all
//	beaconplace -preset paper80 -method ilp -timeout 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/active"
	"repro/internal/buildinfo"
	"repro/internal/graph"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "beaconplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("beaconplace", flag.ContinueOnError)
	preset := fs.String("preset", "paper15", "paper10|paper15|paper29|paper80")
	seed := fs.Int64("seed", 0, "generation seed")
	nCand := fs.Int("candidates", 0, "size of the candidate set V_B (0 = all routers)")
	method := fs.String("method", "all", "thiran|greedy|ilp|all, or any beacon/* registry name")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per solve (0 = none)")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(out, "beaconplace")
		return nil
	}

	var cfg topology.Config
	switch *preset {
	case "paper10":
		cfg = topology.Paper10
	case "paper15":
		cfg = topology.Paper15
	case "paper29":
		cfg = topology.Paper29
	case "paper80":
		cfg = topology.Paper80
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	pop := topology.Generate(cfg)

	routers := append(append([]graph.NodeID(nil), pop.Backbone...), pop.Access...)
	cands := routers
	if *nCand > 0 && *nCand < len(routers) {
		rng := rand.New(rand.NewSource(*seed))
		perm := rng.Perm(len(routers))
		cands = make([]graph.NodeID, *nCand)
		for i := range cands {
			cands[i] = routers[perm[i]]
		}
	}

	ps, err := active.ComputeProbes(pop.G, cands)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# active monitoring on %d routers / %d links; |V_B| = %d, |Φ| = %d probes\n",
		pop.Routers(), pop.G.NumEdges(), len(cands), len(ps.Probes))

	var names []string
	switch *method {
	case "all":
		names = []string{"beacon/thiran", "beacon/greedy", "beacon/ilp"}
	default:
		name := *method
		if !strings.Contains(name, "/") {
			name = "beacon/" + name
		}
		names = []string{name}
	}

	var opts []repro.Option
	if *timeout > 0 {
		opts = append(opts, repro.WithTimeout(*timeout))
	}
	for _, name := range names {
		res, err := repro.Solve(context.Background(), name, ps, opts...)
		if err != nil {
			return err
		}
		pl := res.Beacons
		if err := pl.Validate(ps); err != nil {
			return fmt.Errorf("%s: invalid placement: %w", name, err)
		}
		load := active.ProbeLoad(*pl)
		fmt.Fprintf(out, "\n%s: %d beacons (optimal: %v, wall %v, nodes %d)\n",
			strings.TrimPrefix(name, "beacon/"), pl.Devices(), res.Optimal,
			res.Stats.Wall.Round(time.Millisecond), res.Stats.Nodes)
		fmt.Fprintf(out, "%-8s %-14s %8s\n", "node", "label", "probes")
		for _, b := range pl.Beacons {
			fmt.Fprintf(out, "%-8d %-14s %8d\n", b, pop.G.Label(b), load[b])
		}
	}
	return nil
}
