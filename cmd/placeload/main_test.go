package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/service"
)

func newDaemon(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoad64ConcurrentNoDrops is the acceptance run: 64 workers, 128
// requests, a queue deep enough that admission control never sheds —
// every request must come back 200, none dropped.
func TestLoad64ConcurrentNoDrops(t *testing.T) {
	ts := newDaemon(t, service.Config{MaxInFlight: 8, MaxQueue: 256})

	rep, err := drive(ts.URL, loadSpec{
		N: 128, C: 64,
		Solver: "tap/greedy-gain", Family: "waxman", Size: 16,
		Seeds: 4, Coverage: 0.9,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", rep.Dropped)
	}
	if rep.ByStatus[200] != 128 {
		t.Fatalf("by_status = %v, want 128 x 200", rep.ByStatus)
	}
	if rep.LatencyMS["p99"] < rep.LatencyMS["p50"] || rep.LatencyMS["max"] < rep.LatencyMS["p99"] {
		t.Fatalf("latency percentiles not monotone: %v", rep.LatencyMS)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %g", rep.Throughput)
	}
}

// TestLoadTinyQueueShedsDeliberately squeezes the same load through a
// one-deep queue: some requests must shed with 429, but every request
// still gets an HTTP answer — ok + shed == n, dropped == 0.
func TestLoadTinyQueueShedsDeliberately(t *testing.T) {
	ts := newDaemon(t, service.Config{MaxInFlight: 1, MaxQueue: 1})

	rep, err := drive(ts.URL, loadSpec{
		N: 96, C: 64,
		Solver: "tap/greedy-gain", Family: "waxman", Size: 16,
		Seeds: 2, Coverage: 0.9,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (shed 429s are responses, not drops)", rep.Dropped)
	}
	ok, shed := rep.ByStatus[200], rep.ByStatus[429]
	if ok+shed != 96 {
		t.Fatalf("200s (%d) + 429s (%d) = %d, want 96; full mix %v", ok, shed, ok+shed, rep.ByStatus)
	}
	if ok == 0 {
		t.Fatalf("no request succeeded: %v", rep.ByStatus)
	}
	if shed == 0 {
		t.Fatalf("queue of 1 under 64 workers shed nothing: %v", rep.ByStatus)
	}
}

// TestLoadRetriesDrainSheds runs the same over-tight queue with the
// retry layer on: shed requests come back, get retried after the
// daemon's Retry-After, and the report shows the retries it cost.
func TestLoadRetriesDrainSheds(t *testing.T) {
	ts := newDaemon(t, service.Config{MaxInFlight: 1, MaxQueue: 1})

	rep, err := drive(ts.URL, loadSpec{
		N: 48, C: 32,
		Solver: "tap/greedy-gain", Family: "waxman", Size: 16,
		Seeds: 2, Coverage: 0.9, Retries: 6,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", rep.Dropped)
	}
	if rep.Retried == 0 {
		t.Fatalf("one-deep queue under 32 workers retried nothing: %+v", rep)
	}
	if ok, shed := rep.ByStatus[200], rep.ByStatus[429]; ok+shed != 48 || ok == 0 {
		t.Fatalf("200s (%d) + final 429s (%d) != 48; mix %v", ok, shed, rep.ByStatus)
	}
}

// deadSolver always fails, so every request it serves is answered by
// the service's fallback ladder — a degraded response placeload must
// count.
type deadSolver struct{ name string }

func (d *deadSolver) Name() string { return d.name }

func (d *deadSolver) Solve(ctx context.Context, problem repro.Problem, opts ...repro.Option) (*repro.Result, error) {
	return nil, errors.New("deliberately dead")
}

func TestLoadCountsDegradedResponses(t *testing.T) {
	if err := repro.RegisterSolver(&deadSolver{name: "tap/placeload-dead"}); err != nil {
		t.Fatal(err)
	}
	ts := newDaemon(t, service.Config{MaxInFlight: 4, MaxQueue: 64})

	rep, err := drive(ts.URL, loadSpec{
		N: 8, C: 4,
		Solver: "tap/placeload-dead", Family: "waxman", Size: 16,
		Seeds: 2, Coverage: 0.9,
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if rep.ByStatus[200] != 8 {
		t.Fatalf("by_status = %v, want 8 x 200 via the fallback ladder", rep.ByStatus)
	}
	if rep.Degraded != 8 {
		t.Fatalf("degraded = %d, want 8", rep.Degraded)
	}
}

func TestRunTextAndJSONOutput(t *testing.T) {
	ts := newDaemon(t, service.Config{MaxInFlight: 4, MaxQueue: 64})

	var text bytes.Buffer
	code, err := run([]string{"-addr", ts.URL, "-n", "8", "-c", "4", "-size", "12"}, &text)
	if err != nil || code != 0 {
		t.Fatalf("run text = (%d, %v), output:\n%s", code, err, text.String())
	}
	if !strings.Contains(text.String(), "HTTP 200") || !strings.Contains(text.String(), "latency ms") {
		t.Fatalf("text report missing sections:\n%s", text.String())
	}

	var js bytes.Buffer
	code, err = run([]string{"-addr", ts.URL, "-n", "8", "-c", "4", "-size", "12", "-json"}, &js)
	if err != nil || code != 0 {
		t.Fatalf("run json = (%d, %v)", code, err)
	}
	var rep report
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("json report: %v\n%s", err, js.String())
	}
	if rep.Requests != 8 || rep.Dropped != 0 {
		t.Fatalf("json report = %+v", rep)
	}
}

func TestRunDroppedRequestsExitNonzero(t *testing.T) {
	// Nothing listens here: every request is a transport error.
	code, err := run([]string{"-addr", "http://127.0.0.1:1", "-n", "4", "-c", "2"}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 when requests drop", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-version"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run -version = (%d, %v)", code, err)
	}
	if !strings.HasPrefix(out.String(), "placeload ") {
		t.Fatalf("version output = %q", out.String())
	}
}

func TestBadFlagsRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"}, {"-c", "-1"}, {"-seeds", "0"},
	} {
		if code, err := run(args, io.Discard); err == nil || code != 2 {
			t.Fatalf("run(%v) = (%d, %v), want usage error", args, code, err)
		}
	}
}
