// Command placeload is a load driver for placementd: it hammers
// /v1/solve with -n requests from -c concurrent workers and reports
// throughput and latency percentiles, plus a count of responses per
// status code. Requests cycle through -seeds distinct scenario seeds,
// so the cache-hit mix is controllable: -seeds 1 measures hot-cache
// service overhead, -seeds n measures cold solves.
//
// Requests go through the repro/client retry layer: shed 429s and
// transient 5xx are retried up to -retries times with exponential
// backoff, honoring the daemon's Retry-After ask, and the report
// counts how many retries the run needed and how many responses were
// answered by a fallback solver (degraded).
//
// Usage:
//
//	placeload -addr http://127.0.0.1:8080 -n 256 -c 64
//	placeload -addr http://127.0.0.1:8080 -family metro -size 30 -seeds 8
//	placeload -addr http://127.0.0.1:8080 -retries 0   # raw, no retrying
//	placeload -version
//
// Exit status is 0 when every request got an HTTP response (shed 429s
// count as responses — they are the daemon's admission control working
// as designed) and 1 when any transport error dropped a request.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/buildinfo"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placeload:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// report is what one load run produces; the test and -json consume it.
type report struct {
	Requests   int                `json:"requests"`
	Dropped    int                `json:"dropped"` // transport failures: no HTTP response after retries
	Retried    int                `json:"retried"` // extra round trips spent on retries
	Degraded   int                `json:"degraded"`
	ByStatus   map[int]int        `json:"by_status"`
	Seconds    float64            `json:"seconds"`
	Throughput float64            `json:"throughput_rps"`
	LatencyMS  map[string]float64 `json:"latency_ms"`
}

// run executes the load and prints the report; it returns the process
// exit code (0 = nothing dropped) so main stays trivial.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("placeload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "placementd base URL")
	n := fs.Int("n", 128, "total requests")
	c := fs.Int("c", 16, "concurrent workers")
	solver := fs.String("solver", "tap/greedy-gain", "solver name sent with every request")
	family := fs.String("family", "waxman", "scenario family")
	size := fs.Int("size", 20, "scenario size")
	seeds := fs.Int("seeds", 4, "distinct scenario seeds to cycle through")
	coverage := fs.Float64("coverage", 0.9, "coverage target")
	timeoutMS := fs.Int("timeout-ms", 0, "per-request solve deadline forwarded to the daemon (0 = none)")
	retries := fs.Int("retries", 2, "retries per request on 429/5xx/transport errors (0 = none)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *version {
		buildinfo.Fprint(out, "placeload")
		return 0, nil
	}
	if *n <= 0 || *c <= 0 || *seeds <= 0 {
		return 2, fmt.Errorf("-n, -c and -seeds must be positive")
	}
	if *retries < 0 {
		return 2, fmt.Errorf("-retries must not be negative")
	}

	rep, err := drive(*addr, loadSpec{
		N: *n, C: *c,
		Solver: *solver, Family: *family, Size: *size,
		Seeds: *seeds, Coverage: *coverage, TimeoutMS: *timeoutMS,
		Retries: *retries,
	})
	if err != nil {
		return 2, err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		printReport(out, rep)
	}
	if rep.Dropped > 0 {
		return 1, nil
	}
	return 0, nil
}

type loadSpec struct {
	N, C      int
	Solver    string
	Family    string
	Size      int
	Seeds     int
	Coverage  float64
	TimeoutMS int
	Retries   int
}

// drive fires spec.N requests from spec.C workers and aggregates the
// outcome. Every worker shares one retrying client so connections are
// reused the way a real client fleet's would be.
func drive(addr string, spec loadSpec) (*report, error) {
	type outcome struct {
		status   int // 0 = transport error after retries
		retries  int
		degraded bool
		latency  time.Duration
	}
	bodies := make([][]byte, spec.Seeds)
	for s := range bodies {
		b, err := json.Marshal(map[string]any{
			"solver":     spec.Solver,
			"family":     spec.Family,
			"size":       spec.Size,
			"seed":       int64(s + 1),
			"coverage":   spec.Coverage,
			"timeout_ms": spec.TimeoutMS,
		})
		if err != nil {
			return nil, err
		}
		bodies[s] = b
	}

	cl := client.New(addr, client.WithRetries(spec.Retries))
	outcomes := make([]outcome, spec.N)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.C; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= spec.N {
					return
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				res, err := cl.Post(context.Background(), "/v1/solve", body)
				if err != nil {
					// Retries exhausted without an HTTP response: all
					// spec.Retries extra attempts were spent.
					outcomes[i] = outcome{status: 0, retries: spec.Retries, latency: time.Since(t0)}
					continue
				}
				outcomes[i] = outcome{
					status:   res.Status,
					retries:  res.Retries,
					degraded: bytes.Contains(res.Body, []byte(`"Degraded":true`)),
					latency:  time.Since(t0),
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Requests:  spec.N,
		ByStatus:  make(map[int]int),
		Seconds:   elapsed.Seconds(),
		LatencyMS: make(map[string]float64),
	}
	latencies := make([]float64, 0, spec.N)
	for _, o := range outcomes {
		rep.Retried += o.retries
		if o.status == 0 {
			rep.Dropped++
			continue
		}
		rep.ByStatus[o.status]++
		if o.degraded {
			rep.Degraded++
		}
		latencies = append(latencies, float64(o.latency.Microseconds())/1000)
	}
	if elapsed > 0 {
		rep.Throughput = float64(spec.N-rep.Dropped) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1}} {
		rep.LatencyMS[p.name] = percentile(latencies, p.q)
	}
	return rep, nil
}

// percentile returns the q-quantile of sorted (nearest-rank); 0 when
// no sample answered.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func printReport(w io.Writer, rep *report) {
	fmt.Fprintf(w, "requests   %d (%d dropped, %d retried round trips, %d degraded)\n",
		rep.Requests, rep.Dropped, rep.Retried, rep.Degraded)
	codes := make([]int, 0, len(rep.ByStatus))
	for c := range rep.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "  HTTP %d  %d\n", c, rep.ByStatus[c])
	}
	fmt.Fprintf(w, "elapsed    %.3fs  (%.1f req/s)\n", rep.Seconds, rep.Throughput)
	fmt.Fprintf(w, "latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		rep.LatencyMS["p50"], rep.LatencyMS["p90"], rep.LatencyMS["p99"], rep.LatencyMS["max"])
}
