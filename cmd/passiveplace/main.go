// Command passiveplace solves the Partial Passive Monitoring problem
// PPM(k) (§4) on a generated or loaded POP and prints the chosen links.
// Solvers are addressed by registry name; -timeout bounds the solve and
// returns the best incumbent found when it fires.
//
// Usage:
//
//	passiveplace -preset paper10 -seed 1 -k 0.95 -method ilp
//	passiveplace -map pop.map -k 1 -method greedy-load
//	passiveplace -family waxman -size 40 -seed 7 -k 0.95 -method portfolio
//	passiveplace -preset paper10 -k 0.9 -method ilp -budget 5
//	passiveplace -preset paper15 -k 1 -method portfolio -timeout 2s
//	passiveplace -solvers
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "passiveplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("passiveplace", flag.ContinueOnError)
	preset := fs.String("preset", "paper10", "paper10|paper15|paper29|paper80")
	family := fs.String("family", "", "generate from a scenario family instead of a preset (overrides -preset; -map wins over both)")
	size := fs.Int("size", 20, "with -family: number of POP routers")
	mapFile := fs.String("map", "", "load topology from a Rocketfuel-style map instead of generating (overrides -preset and -family)")
	seed := fs.Int64("seed", 0, "generation seed (topology, traffic, randomized solvers)")
	k := fs.Float64("k", 1.0, "fraction of traffic to monitor, in (0,1]")
	method := fs.String("method", "ilp", `solver name, with or without the "tap/" prefix (-solvers lists all)`)
	budget := fs.Int("budget", 0, "with an ILP method: maximum number of devices (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the solve; on expiry the best incumbent is printed (0 = none)")
	list := fs.Bool("solvers", false, "list registered solvers and exit")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(out, "passiveplace")
		return nil
	}
	if *list {
		for _, name := range repro.Solvers() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	var pop *topology.POP
	var demands []traffic.Demand
	switch {
	case *mapFile != "":
		f, err := os.Open(*mapFile)
		if err != nil {
			return err
		}
		defer f.Close()
		pop, err = topology.Read(f)
		if err != nil {
			return err
		}
	case *family != "":
		s, err := scenario.Generate(*family, *size, *seed)
		if err != nil {
			return err
		}
		pop, demands = s.POP, s.Demands
	default:
		cfg, err := presetConfig(*preset)
		if err != nil {
			return err
		}
		cfg.Seed = *seed
		pop = topology.Generate(cfg)
	}

	if demands == nil {
		demands = traffic.Demands(pop, traffic.Config{Seed: *seed})
	}
	in, err := traffic.Route(pop, demands)
	if err != nil {
		return err
	}

	opts := []repro.Option{
		repro.WithCoverage(*k),
		repro.WithBudget(*budget),
		repro.WithSeed(*seed),
	}
	if *timeout > 0 {
		opts = append(opts, repro.WithTimeout(*timeout))
	}
	res, err := repro.Solve(context.Background(), solverName(*method), in, opts...)
	if err != nil {
		return err
	}
	pl := res.Taps

	fmt.Fprintf(out, "# PPM(k=%.2f) on %d routers / %d links / %d traffics (method %s)\n",
		*k, pop.Routers(), pop.G.NumEdges(), len(in.Traffics), pl.Method)
	fmt.Fprintf(out, "devices: %d  coverage: %.2f%%  provably-optimal: %v\n",
		pl.Devices(), pl.Fraction*100, res.Optimal)
	fmt.Fprintf(out, "solver: %s  wall: %v  nodes: %d  pivots: %d\n",
		res.Solver, res.Stats.Wall.Round(time.Millisecond), res.Stats.Nodes, res.Stats.Pivots)
	loads := in.EdgeLoads()
	fmt.Fprintf(out, "%-6s %-14s %-14s %12s\n", "link", "from", "to", "load")
	for _, e := range pl.Edges {
		edge := in.G.Edge(e)
		fmt.Fprintf(out, "%-6d %-14s %-14s %12.1f\n",
			e, in.G.Label(edge.U), in.G.Label(edge.V), loads[e])
	}
	return nil
}

// solverName resolves CLI shorthand: names without a family prefix get
// "tap/" prepended, and the historical "flow" spelling maps to the
// flow-heuristic solver.
func solverName(name string) string {
	if name == "flow" {
		name = "flow-heuristic"
	}
	if !strings.Contains(name, "/") {
		name = "tap/" + name
	}
	return name
}

func presetConfig(name string) (topology.Config, error) {
	switch name {
	case "paper10":
		return topology.Paper10, nil
	case "paper15":
		return topology.Paper15, nil
	case "paper29":
		return topology.Paper29, nil
	case "paper80":
		return topology.Paper80, nil
	}
	return topology.Config{}, fmt.Errorf("unknown preset %q", name)
}
