// Command passiveplace solves the Partial Passive Monitoring problem
// PPM(k) (§4) on a generated or loaded POP and prints the chosen links.
//
// Usage:
//
//	passiveplace -preset paper10 -seed 1 -k 0.95 -method ilp
//	passiveplace -map pop.map -k 1 -method greedy-load
//	passiveplace -preset paper10 -k 0.9 -method ilp -budget 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cover"
	"repro/internal/passive"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "passiveplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("passiveplace", flag.ContinueOnError)
	preset := fs.String("preset", "paper10", "paper10|paper15|paper29|paper80")
	mapFile := fs.String("map", "", "load topology from a Rocketfuel-style map instead of generating")
	seed := fs.Int64("seed", 0, "generation seed (topology and traffic)")
	k := fs.Float64("k", 1.0, "fraction of traffic to monitor, in (0,1]")
	method := fs.String("method", "ilp", "greedy-load|greedy-gain|flow|ilp|exact")
	budget := fs.Int("budget", 0, "with -method ilp: maximum number of devices (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pop *topology.POP
	if *mapFile != "" {
		f, err := os.Open(*mapFile)
		if err != nil {
			return err
		}
		defer f.Close()
		pop, err = topology.Parse(f)
		if err != nil {
			return err
		}
	} else {
		cfg, err := presetConfig(*preset)
		if err != nil {
			return err
		}
		cfg.Seed = *seed
		pop = topology.Generate(cfg)
	}

	demands := traffic.Demands(pop, traffic.Config{Seed: *seed})
	in, err := traffic.Route(pop, demands)
	if err != nil {
		return err
	}

	var pl passive.Placement
	switch *method {
	case "greedy-load":
		pl = passive.GreedyLoad(in, *k)
	case "greedy-gain":
		pl = passive.GreedyGain(in, *k)
	case "flow":
		pl = passive.FlowHeuristic(in, *k)
	case "exact":
		pl = passive.ExactCover(in, *k, cover.ExactOptions{})
	case "ilp":
		pl, err = passive.SolveILP(in, *k, passive.ILPOptions{Budget: *budget})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	fmt.Fprintf(out, "# PPM(k=%.2f) on %d routers / %d links / %d traffics (method %s)\n",
		*k, pop.Routers(), pop.G.NumEdges(), len(in.Traffics), pl.Method)
	fmt.Fprintf(out, "devices: %d  coverage: %.2f%%  provably-optimal: %v\n",
		pl.Devices(), pl.Fraction*100, pl.Exact)
	loads := in.EdgeLoads()
	fmt.Fprintf(out, "%-6s %-14s %-14s %12s\n", "link", "from", "to", "load")
	for _, e := range pl.Edges {
		edge := in.G.Edge(e)
		fmt.Fprintf(out, "%-6d %-14s %-14s %12.1f\n",
			e, in.G.Label(edge.U), in.G.Label(edge.V), loads[e])
	}
	return nil
}

func presetConfig(name string) (topology.Config, error) {
	switch name {
	case "paper10":
		return topology.Paper10, nil
	case "paper15":
		return topology.Paper15, nil
	case "paper29":
		return topology.Paper29, nil
	case "paper80":
		return topology.Paper80, nil
	}
	return topology.Config{}, fmt.Errorf("unknown preset %q", name)
}
