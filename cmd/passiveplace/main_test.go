package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestRunDefaultPreset(t *testing.T) {
	out, err := runToString(t, "-k", "0.9", "-method", "exact", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PPM(k=0.90)", "10 routers", "27 links", "132 traffics", "devices:", "coverage:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MIP solves take tens of seconds")
	}
	for _, m := range []string{"greedy-load", "greedy-gain", "flow", "ilp", "exact"} {
		out, err := runToString(t, "-k", "0.85", "-method", m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(out, "devices:") {
			t.Errorf("%s: no device count:\n%s", m, out)
		}
	}
}

func TestRunBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MIP solves take tens of seconds")
	}
	// A generous budget succeeds; budget 1 for 95% coverage fails.
	if _, err := runToString(t, "-k", "0.95", "-method", "ilp", "-budget", "27"); err != nil {
		t.Fatal(err)
	}
	if _, err := runToString(t, "-k", "0.95", "-method", "ilp", "-budget", "1"); err == nil {
		t.Fatal("budget 1 should be infeasible at 95%")
	}
}

func TestRunErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad method": {"-method", "frobnicate"},
		"bad preset": {"-preset", "paper9000"},
		"bad flag":   {"-nonsense"},
		"bad map":    {"-map", "/does/not/exist"},
	} {
		if _, err := runToString(t, args...); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestRunFromMapFile(t *testing.T) {
	// Generate a map with popgen-equivalent code and load it back.
	dir := t.TempDir()
	path := filepath.Join(dir, "pop.map")
	content := `node 0 bb0 backbone
node 1 bb1 backbone
node 2 ar0 access
node 3 c0 virtual
node 4 c1 virtual
link 0 1 9953
link 1 2 2488
link 3 0 622
link 4 2 622
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runToString(t, "-map", path, "-k", "1", "-method", "exact")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 routers") {
		t.Errorf("map not loaded:\n%s", out)
	}
}

func TestPresetConfig(t *testing.T) {
	for _, p := range []string{"paper10", "paper15", "paper29", "paper80"} {
		if _, err := presetConfig(p); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	if _, err := presetConfig("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRunScenarioFamily(t *testing.T) {
	out, err := runToString(t, "-family", "metro", "-size", "12", "-seed", "3", "-k", "0.9", "-method", "greedy-gain")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PPM(k=0.90)", "12 routers", "devices:", "coverage:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownFamilyErrors(t *testing.T) {
	if _, err := runToString(t, "-family", "no-such", "-size", "10"); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runToString(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out, "passiveplace ") {
		t.Fatalf("version output = %q", out)
	}
}
