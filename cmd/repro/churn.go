package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/traffic"
)

// The -churn-steps replay: the session re-optimization path (DESIGN.md
// §10) end to end on the churn family's benchmark workload. Each step
// re-weights the demand matrix (volumes in [0.8, 1.25], rows kept — a
// DeltaRescale mutation) and re-solves twice: warm through a
// repro.Session, cold through repro.Solve. The two answers must agree
// whenever both close; the replay errors out on divergence, so the
// mode doubles as a command-line form of the resolve==cold lock.
//
// Stdout carries only deterministic bytes (delta class, devices,
// moves, effort counters); wall clock and the warm/cold speedup go to
// stderr with the rest of the timing.

const (
	churnReplayK    = 0.95
	churnReplaySize = 20
	churnReplaySeed = 4
)

// churnReplayStats aggregates the replay over steps 1..N (step 0 is
// cold for both sides and excluded, as in BenchmarkChurnResolve).
type churnReplayStats struct {
	ColdWall, WarmWall time.Duration
	Nodes, Pivots      int // warm-side totals
	WarmStarts         int
}

func churnReplay(ctx context.Context, steps int, out, progress io.Writer) (churnReplayStats, error) {
	var st churnReplayStats
	s, err := repro.GenerateScenario("churn", churnReplaySize, churnReplaySeed)
	if err != nil {
		return st, err
	}
	sess, err := repro.NewSession(repro.SolverTapExact, repro.WithCoverage(churnReplayK))
	if err != nil {
		return st, err
	}
	fmt.Fprintf(out, "# session re-optimization: churn-%d seed %d, k=%.2f, %d rescale steps (warm Resolve vs cold Solve)\n",
		churnReplaySize, churnReplaySeed, churnReplayK, steps)
	fmt.Fprintf(out, "%-5s %-10s %-8s %-7s %-6s %-12s %-12s %-10s\n",
		"step", "delta", "optimal", "devices", "moves", "nodes c/w", "pivots c/w", "warmstarts")

	dem := s.Demands
	var prev *repro.Result
	for step := 0; step <= steps; step++ {
		if step > 0 {
			mutated, _, err := traffic.ChurnWithDelta(s.POP, dem, traffic.ChurnConfig{
				Seed: s.Seed + int64(step), Drop: 1e-12, Add: 1e-12,
				RescaleLow: 0.8, RescaleHigh: 1.25,
			})
			if err != nil {
				return st, err
			}
			dem = mutated
		}
		in, err := repro.RouteSingle(s.POP, traffic.Aggregate(dem))
		if err != nil {
			return st, err
		}
		t0 := time.Now()
		warm, err := sess.Resolve(ctx, in)
		if err != nil {
			return st, err
		}
		dw := time.Since(t0)
		t0 = time.Now()
		cold, err := repro.Solve(ctx, repro.SolverTapExact, in, repro.WithCoverage(churnReplayK))
		if err != nil {
			return st, err
		}
		dc := time.Since(t0)
		if warm.Optimal && cold.Optimal {
			if len(warm.Taps.Edges) != len(cold.Taps.Edges) || warm.Taps.Covered != cold.Taps.Covered {
				return st, fmt.Errorf("step %d: warm resolve diverged from cold (%d devices %.4f vs %d devices %.4f)",
					step, len(warm.Taps.Edges), warm.Taps.Covered, len(cold.Taps.Edges), cold.Taps.Covered)
			}
			for i := range warm.Taps.Edges {
				if warm.Taps.Edges[i] != cold.Taps.Edges[i] {
					return st, fmt.Errorf("step %d: warm placement diverged from cold at device %d", step, i)
				}
			}
		}
		diff := warm.Diff(prev)
		fmt.Fprintf(out, "%-5d %-10s %-8v %-7d %-6d %5d/%-6d %5d/%-6d %-10d\n",
			step, sess.LastDelta().Class, warm.Optimal, len(warm.Taps.Edges), diff.Moves(),
			cold.Stats.Nodes, warm.Stats.Nodes, cold.Stats.Pivots, warm.Stats.Pivots, warm.Stats.WarmStarts)
		prev = warm
		if step > 0 {
			st.ColdWall += dc
			st.WarmWall += dw
			st.Nodes += warm.Stats.Nodes
			st.Pivots += warm.Stats.Pivots
			st.WarmStarts += warm.Stats.WarmStarts
		}
	}
	speedup := 0.0
	if st.WarmWall > 0 {
		speedup = float64(st.ColdWall) / float64(st.WarmWall)
	}
	fmt.Fprintf(progress, "repro: churn replay cold %v warm %v (%.1fx) over %d steps, warmstarts=%d\n",
		st.ColdWall, st.WarmWall, speedup, steps, st.WarmStarts)
	return st, nil
}
