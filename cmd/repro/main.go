// Command repro regenerates every figure of the paper's evaluation
// section as text series (see DESIGN.md §3 and EXPERIMENTS.md for the
// paper-versus-measured comparison).
//
// Usage:
//
//	repro -figure fig7            # one figure to stdout
//	repro -figure all -seeds 20   # everything, paper-strength averaging
//	repro -figure fig6 -dot fig6.dot
//	repro -figure fig8 -timeout 30s   # exact solves degrade to incumbents
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	figure := fs.String("figure", "all", "fig6|fig7|fig8|fig9|fig10|fig11|ppme|samplers|large150|dynamic|replay|all")
	seeds := fs.Int("seeds", experiments.DefaultSeeds, "runs per point (the paper uses 20)")
	dotFile := fs.String("dot", "", "with -figure fig6: also write a Graphviz rendering here")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run; expired exact solves report their incumbents (0 = none)")
	benchJSON := fs.String("bench-json", "", "time every figure at -seeds averaging and write the wall-clock JSON report here (e.g. BENCH_figs.json); series output is suppressed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *benchJSON != "" {
		return writeBenchJSON(ctx, *benchJSON, *figure, *seeds, out)
	}

	wants := func(name string) bool { return *figure == "all" || *figure == name }
	printed := false
	emit := func(s *stats.Series) error {
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		return s.Write(out)
	}

	if wants("fig6") {
		var dot io.Writer
		if *dotFile != "" {
			f, err := os.Create(*dotFile)
			if err != nil {
				return err
			}
			defer f.Close()
			dot = f
		}
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		if err := experiments.Fig6(1, out, dot); err != nil {
			return err
		}
	}
	type figFn struct {
		name string
		fn   func(context.Context, int) *stats.Series
	}
	for _, f := range []figFn{
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"fig11", experiments.Fig11},
		{"ppme", experiments.PPMECost},
		{"samplers", func(context.Context, int) *stats.Series { return experiments.SamplerBias(1) }},
		{"large150", experiments.Large150},
	} {
		if !wants(f.name) {
			continue
		}
		if err := emit(f.fn(ctx, *seeds)); err != nil {
			return err
		}
	}
	if wants("dynamic") {
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		fmt.Fprintln(out, "# §5.4: dynamic traffic — PPME* rate adaptation under ±45% drift per round")
		fmt.Fprintf(out, "%-6s %-8s %-12s %-12s %-12s %-12s\n",
			"seed", "rounds", "recomputes", "min cover", "final cover", "reopt time")
		for seed := int64(0); seed < int64(min(*seeds, 5)); seed++ {
			res, err := experiments.Dynamic(ctx, seed, 10, 0.45)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-6d %-8d %-12d %11.2f%% %11.2f%% %12v\n",
				seed, res.Rounds, res.Recomputes, res.MinCoverage*100, res.FinalCoverage*100, res.ReoptTime)
		}
	}
	if wants("replay") {
		if printed {
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out, "# validation: packet replay of PPME solutions (promised vs achieved coverage)")
		fmt.Fprintf(out, "%-6s %-6s %-12s %-12s\n", "seed", "k", "promised", "achieved")
		for seed := int64(0); seed < int64(min(*seeds, 5)); seed++ {
			prom, ach, err := experiments.ReplayCheck(ctx, seed, 0.9)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-6d %-6.2f %11.2f%% %11.2f%%\n", seed, 0.9, prom*100, ach*100)
		}
	}
	if !printed && !wants("dynamic") && !wants("replay") {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// benchReport is the schema of the -bench-json output: one wall-clock
// sample per figure, so the performance trajectory of the reproduction
// is tracked across PRs (CI regenerates it on every push).
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	Seeds       int          `json:"seeds"`
	Figures     []benchEntry `json:"figures"`
}

type benchEntry struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// writeBenchJSON times the selected figures (-figure, default all)
// once at the requested averaging depth and writes the report. Figures
// run sequentially in a fixed order; a canceled ctx degrades exact
// solves to incumbents exactly as in normal runs, which would show up
// as an (honest) speedup, so pair -bench-json with an unbounded run.
func writeBenchJSON(ctx context.Context, path, figure string, seeds int, log io.Writer) error {
	type figFn struct {
		name string
		fn   func() error
	}
	series := func(fn func(context.Context, int) *stats.Series) func() error {
		return func() error { fn(ctx, seeds); return nil }
	}
	figs := []figFn{
		{"fig6", func() error { return experiments.Fig6(1, io.Discard, nil) }},
		{"fig7", series(experiments.Fig7)},
		{"fig8", series(experiments.Fig8)},
		{"fig9", series(experiments.Fig9)},
		{"fig10", series(experiments.Fig10)},
		{"fig11", series(experiments.Fig11)},
		{"ppme", series(experiments.PPMECost)},
		{"samplers", func() error { experiments.SamplerBias(1); return nil }},
		{"large150", series(experiments.Large150)},
		{"dynamic", func() error {
			_, err := experiments.Dynamic(ctx, 1, 10, 0.45)
			return err
		}},
		{"replay", func() error {
			_, _, err := experiments.ReplayCheck(ctx, 1, 0.9)
			return err
		}},
	}
	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Seeds:       seeds,
	}
	matched := false
	for _, f := range figs {
		if figure != "all" && figure != f.name {
			continue
		}
		matched = true
		start := time.Now()
		if err := f.fn(); err != nil {
			return fmt.Errorf("bench %s: %w", f.name, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		report.Figures = append(report.Figures, benchEntry{Name: f.name, WallMS: ms})
		fmt.Fprintf(log, "bench %-10s %10.1f ms\n", f.name, ms)
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", figure)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
