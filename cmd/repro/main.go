// Command repro regenerates every figure of the paper's evaluation
// section as text series (see DESIGN.md §3 and EXPERIMENTS.md for the
// paper-versus-measured comparison).
//
// Usage:
//
//	repro -figure fig7            # one figure to stdout
//	repro -figure all -seeds 20   # everything, paper-strength averaging
//	repro -figure fig6 -dot fig6.dot
//	repro -figure fig8 -timeout 30s   # exact solves degrade to incumbents
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	figure := fs.String("figure", "all", "fig6|fig7|fig8|fig9|fig10|fig11|ppme|samplers|large150|dynamic|replay|all")
	seeds := fs.Int("seeds", experiments.DefaultSeeds, "runs per point (the paper uses 20)")
	dotFile := fs.String("dot", "", "with -figure fig6: also write a Graphviz rendering here")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run; expired exact solves report their incumbents (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	wants := func(name string) bool { return *figure == "all" || *figure == name }
	printed := false
	emit := func(s *stats.Series) error {
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		return s.Write(out)
	}

	if wants("fig6") {
		var dot io.Writer
		if *dotFile != "" {
			f, err := os.Create(*dotFile)
			if err != nil {
				return err
			}
			defer f.Close()
			dot = f
		}
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		if err := experiments.Fig6(1, out, dot); err != nil {
			return err
		}
	}
	type figFn struct {
		name string
		fn   func(context.Context, int) *stats.Series
	}
	for _, f := range []figFn{
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"fig11", experiments.Fig11},
		{"ppme", experiments.PPMECost},
		{"samplers", func(context.Context, int) *stats.Series { return experiments.SamplerBias(1) }},
		{"large150", experiments.Large150},
	} {
		if !wants(f.name) {
			continue
		}
		if err := emit(f.fn(ctx, *seeds)); err != nil {
			return err
		}
	}
	if wants("dynamic") {
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		fmt.Fprintln(out, "# §5.4: dynamic traffic — PPME* rate adaptation under ±45% drift per round")
		fmt.Fprintf(out, "%-6s %-8s %-12s %-12s %-12s %-12s\n",
			"seed", "rounds", "recomputes", "min cover", "final cover", "reopt time")
		for seed := int64(0); seed < int64(min(*seeds, 5)); seed++ {
			res, err := experiments.Dynamic(ctx, seed, 10, 0.45)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-6d %-8d %-12d %11.2f%% %11.2f%% %12v\n",
				seed, res.Rounds, res.Recomputes, res.MinCoverage*100, res.FinalCoverage*100, res.ReoptTime)
		}
	}
	if wants("replay") {
		if printed {
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out, "# validation: packet replay of PPME solutions (promised vs achieved coverage)")
		fmt.Fprintf(out, "%-6s %-6s %-12s %-12s\n", "seed", "k", "promised", "achieved")
		for seed := int64(0); seed < int64(min(*seeds, 5)); seed++ {
			prom, ach, err := experiments.ReplayCheck(ctx, seed, 0.9)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-6d %-6.2f %11.2f%% %11.2f%%\n", seed, 0.9, prom*100, ach*100)
		}
	}
	if !printed && !wants("dynamic") && !wants("replay") {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
