// Command repro regenerates every figure of the paper's evaluation
// section as text series (see DESIGN.md §3 and EXPERIMENTS.md for the
// paper-versus-measured comparison). Figures run on the deterministic
// parallel scenario engine: seed × sweep-point cells fan out on
// -parallel workers and merge in canonical order, so the series are
// byte-identical for any worker count.
//
// Usage:
//
//	repro -figure fig7            # one figure to stdout
//	repro -figure all -seeds 20   # everything, paper-strength averaging
//	repro -figure fig6 -dot fig6.dot
//	repro -figure fig8 -timeout 30s   # exact solves degrade to incumbents
//	repro -figure fig9 -parallel 1    # serial baseline (same bytes)
//
// Per-figure progress/timing lines (wall clock, engine cells, cache
// hits/misses, aggregated solver effort) go to stderr; series go to
// stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	figure := fs.String("figure", "all", "fig6|fig7|fig8|fig9|fig10|fig11|ppme|samplers|large150|dynamic|replay|all")
	seeds := fs.Int("seeds", experiments.DefaultSeeds, "runs per point (the paper uses 20)")
	dotFile := fs.String("dot", "", "with -figure fig6: also write a Graphviz rendering here")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run; expired exact solves report their incumbents (0 = none)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "engine workers per figure (1 = serial; output is byte-identical either way)")
	benchJSON := fs.String("bench-json", "", "time every figure at -seeds averaging and write the wall-clock JSON report here (e.g. BENCH_figs.json); series output is suppressed")
	churnSteps := fs.Int("churn-steps", 0, "replay N rescale churn steps through a warm repro.Session against cold solves (DESIGN.md §10) and exit; errors on any warm/cold divergence")
	version := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(out, "repro")
		return nil
	}
	if *parallel <= 0 {
		// Resolve the engine's "<= 0 means GOMAXPROCS" default up front
		// so progress lines and the bench report record the worker count
		// actually used.
		*parallel = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *benchJSON != "" {
		return writeBenchJSON(ctx, *benchJSON, *figure, *seeds, *parallel, out)
	}
	if *churnSteps > 0 {
		_, err := churnReplay(ctx, *churnSteps, out, progress)
		return err
	}

	wants := func(name string) bool { return *figure == "all" || *figure == name }
	printed := false
	emit := func(s *stats.Series) error {
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		return s.Write(out)
	}
	// timed runs one figure on a fresh engine (so cache and effort
	// counters are per figure) and reports a progress line on stderr.
	timed := func(name string, fn func(eng *engine.Runner) error) error {
		eng := engine.New(engine.Options{Workers: *parallel, Cache: engine.NewCache()})
		start := time.Now()
		if err := fn(eng); err != nil {
			return err
		}
		hits, misses := eng.Cache().Counts()
		st := eng.Stats()
		fmt.Fprintf(progress, "repro: %-8s %8.2fs  workers=%d cells=%d cache=%d/%d hit/miss (%.1f%%)  nodes=%d pivots=%d cuts=%d fixed=%d subtrees=%d steals=%d domprunes=%d\n",
			name, time.Since(start).Seconds(), eng.Workers(), eng.Tasks(), hits, misses, 100*hitRate(hits, misses), st.Nodes, st.Pivots, st.CutsAdded, st.VarsFixed, st.SubtreeTasks, st.Steals, st.DominancePrunes)
		return nil
	}

	if wants("fig6") {
		var dot io.Writer
		if *dotFile != "" {
			//placevet:ignore atomicwrite -- user-named figure artifact, not a cache entry; a torn write is visible, not silently served
			f, err := os.Create(*dotFile)
			if err != nil {
				return err
			}
			defer f.Close()
			dot = f
		}
		if printed {
			fmt.Fprintln(out)
		}
		printed = true
		if err := experiments.Fig6(1, out, dot); err != nil {
			return err
		}
	}
	type figFn struct {
		name string
		fn   func(context.Context, *engine.Runner, int) *stats.Series
	}
	for _, f := range []figFn{
		{"fig7", experiments.Fig7On},
		{"fig8", experiments.Fig8On},
		{"fig9", experiments.Fig9On},
		{"fig10", experiments.Fig10On},
		{"fig11", experiments.Fig11On},
		{"ppme", experiments.PPMECostOn},
		{"samplers", func(ctx context.Context, eng *engine.Runner, _ int) *stats.Series {
			return experiments.SamplerBiasOn(ctx, eng, 1)
		}},
		{"large150", experiments.Large150On},
	} {
		if !wants(f.name) {
			continue
		}
		if err := timed(f.name, func(eng *engine.Runner) error {
			return emit(f.fn(ctx, eng, *seeds))
		}); err != nil {
			return err
		}
	}
	if wants("dynamic") {
		err := timed("dynamic", func(eng *engine.Runner) error {
			results, err := experiments.DynamicBatch(ctx, eng, min(*seeds, 5), 10, 0.45)
			if err != nil {
				return err
			}
			if printed {
				fmt.Fprintln(out)
			}
			printed = true
			// Wall-clock columns belong on stderr with the rest of the
			// timing: stdout carries only deterministic bytes, so
			// -parallel 1 and -parallel 8 (and any two repeat runs)
			// compare equal across every figure.
			fmt.Fprintln(out, "# §5.4: dynamic traffic — PPME* rate adaptation under ±45% drift per round")
			fmt.Fprintf(out, "%-6s %-8s %-12s %-12s %-12s\n",
				"seed", "rounds", "recomputes", "min cover", "final cover")
			var reopt time.Duration
			for seed, res := range results {
				fmt.Fprintf(out, "%-6d %-8d %-12d %11.2f%% %11.2f%%\n",
					seed, res.Rounds, res.Recomputes, res.MinCoverage*100, res.FinalCoverage*100)
				reopt += res.ReoptTime
			}
			fmt.Fprintf(progress, "repro: dynamic reopt time %v across %d seeds\n", reopt, len(results))
			return nil
		})
		if err != nil {
			return err
		}
	}
	if wants("replay") {
		err := timed("replay", func(eng *engine.Runner) error {
			outs, err := experiments.ReplayBatch(ctx, eng, min(*seeds, 5), 0.9)
			if err != nil {
				return err
			}
			if printed {
				fmt.Fprintln(out)
			}
			fmt.Fprintln(out, "# validation: packet replay of PPME solutions (promised vs achieved coverage)")
			fmt.Fprintf(out, "%-6s %-6s %-12s %-12s\n", "seed", "k", "promised", "achieved")
			for _, o := range outs {
				fmt.Fprintf(out, "%-6d %-6.2f %11.2f%% %11.2f%%\n", o.Seed, 0.9, o.Promised*100, o.Achieved*100)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if !printed && !wants("dynamic") && !wants("replay") {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// benchReport is the schema of the -bench-json output: one wall-clock
// sample per figure, so the performance trajectory of the reproduction
// is tracked across PRs (CI regenerates it on every push).
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	Seeds       int          `json:"seeds"`
	Workers     int          `json:"workers"`
	Figures     []benchEntry `json:"figures"`
}

type benchEntry struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	// Solver effort aggregated over the figure's engine: branch-and-
	// bound nodes, simplex pivots, and cutting planes added. They track
	// the tree-size trajectory across PRs alongside the wall clock
	// (dynamic and replay run off-engine and report zeros).
	Nodes  int `json:"nodes"`
	Pivots int `json:"pivots"`
	Cuts   int `json:"cuts"`
	// Parallel branch-and-bound effort: subtree tasks dispatched over
	// the worker pool, tasks stolen off their round-robin home worker
	// (always 0 at -parallel 1), and dominance/symmetry exclusions in
	// the combinatorial cover search.
	SubtreeTasks    int `json:"subtree_tasks"`
	Steals          int `json:"steals"`
	DominancePrunes int `json:"dominance_prunes"`
	// Memo-cache efficacy for the figure's engine: how much of the
	// seed × sweep-point grid collapsed onto already-solved instances.
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Session re-optimization fields, set only on the churn_resolve
	// entry: warm-start count (deterministic), the cold baseline's wall
	// clock, and the warm/cold speedup tracking the ≥10× claim per PR.
	// Like wall_ms, the latter two are clock-shaped — CI's counter diff
	// strips them.
	WarmStarts int     `json:"warm_starts,omitempty"`
	ColdWallMS float64 `json:"cold_wall_ms,omitempty"`
	SpeedupX   float64 `json:"speedup_x,omitempty"`
}

// hitRate is hits/(hits+misses), 0 when the cache saw no lookups.
func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// writeBenchJSON times the selected figures (-figure, default all)
// once at the requested averaging depth on the parallel engine and
// writes the report. Each figure runs on a fresh engine (workers from
// -parallel, per-figure cache), sequentially in a fixed order; a
// canceled ctx degrades exact solves to incumbents exactly as in
// normal runs, which would show up as an (honest) speedup, so pair
// -bench-json with an unbounded run.
func writeBenchJSON(ctx context.Context, path, figure string, seeds, parallel int, log io.Writer) error {
	type figFn struct {
		name string
		fn   func(eng *engine.Runner) error
	}
	series := func(fn func(context.Context, *engine.Runner, int) *stats.Series) func(*engine.Runner) error {
		return func(eng *engine.Runner) error { fn(ctx, eng, seeds); return nil }
	}
	figs := []figFn{
		{"fig6", func(*engine.Runner) error { return experiments.Fig6(1, io.Discard, nil) }},
		{"fig7", series(experiments.Fig7On)},
		{"fig8", series(experiments.Fig8On)},
		{"fig9", series(experiments.Fig9On)},
		{"fig10", series(experiments.Fig10On)},
		{"fig11", series(experiments.Fig11On)},
		{"ppme", series(experiments.PPMECostOn)},
		{"samplers", func(eng *engine.Runner) error { experiments.SamplerBiasOn(ctx, eng, 1); return nil }},
		{"large150", series(experiments.Large150On)},
		// dynamic and replay keep the historical single-seed workload
		// (seed 1, no engine fan-out) so BENCH_figs.json stays
		// comparable across PRs.
		{"dynamic", func(*engine.Runner) error {
			_, err := experiments.Dynamic(ctx, 1, 10, 0.45)
			return err
		}},
		{"replay", func(*engine.Runner) error {
			_, _, err := experiments.ReplayCheck(ctx, 1, 0.9)
			return err
		}},
	}
	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Seeds:       seeds,
		Workers:     parallel,
	}
	matched := false
	for _, f := range figs {
		if figure != "all" && figure != f.name {
			continue
		}
		matched = true
		eng := engine.New(engine.Options{Workers: parallel, Cache: engine.NewCache()})
		start := time.Now()
		if err := f.fn(eng); err != nil {
			return fmt.Errorf("bench %s: %w", f.name, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		st := eng.Stats()
		hits, misses := eng.Cache().Counts()
		report.Figures = append(report.Figures, benchEntry{Name: f.name, WallMS: ms,
			Nodes: st.Nodes, Pivots: st.Pivots, Cuts: st.CutsAdded,
			SubtreeTasks: st.SubtreeTasks, Steals: st.Steals, DominancePrunes: st.DominancePrunes,
			CacheHits: int(hits), CacheMisses: int(misses), CacheHitRate: hitRate(hits, misses)})
		fmt.Fprintf(log, "bench %-10s %10.1f ms  nodes=%d pivots=%d cuts=%d subtrees=%d domprunes=%d cache=%d/%d\n",
			f.name, ms, st.Nodes, st.Pivots, st.CutsAdded, st.SubtreeTasks, st.DominancePrunes, hits, misses)
	}
	// The session re-optimization figure runs off-engine (a Session
	// serializes its own solves): six rescale churn steps, warm Resolve
	// vs cold Solve, per BenchmarkChurnResolve's workload.
	if figure == "all" || figure == "churn_resolve" {
		matched = true
		st, err := churnReplay(ctx, 6, io.Discard, io.Discard)
		if err != nil {
			return fmt.Errorf("bench churn_resolve: %w", err)
		}
		warmMS := float64(st.WarmWall.Microseconds()) / 1000
		coldMS := float64(st.ColdWall.Microseconds()) / 1000
		speedup := 0.0
		if warmMS > 0 {
			speedup = coldMS / warmMS
		}
		report.Figures = append(report.Figures, benchEntry{Name: "churn_resolve",
			WallMS: warmMS, ColdWallMS: coldMS, SpeedupX: speedup,
			Nodes: st.Nodes, Pivots: st.Pivots, WarmStarts: st.WarmStarts})
		fmt.Fprintf(log, "bench %-10s %10.1f ms  cold=%.1f ms (%.1fx)  nodes=%d pivots=%d warmstarts=%d\n",
			"churn_resolve", warmMS, coldMS, speedup, st.Nodes, st.Pivots, st.WarmStarts)
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", figure)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	//placevet:ignore atomicwrite -- bench report for humans/CI diffing, never reloaded as a cache entry
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
