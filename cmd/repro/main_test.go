package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb, progress strings.Builder
	err := run(args, &sb, &progress)
	return sb.String(), err
}

func TestFig6(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "fig6.dot")
	out, err := runToString(t, "-figure", "fig6", "-dot", dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "% of load") {
		t.Errorf("fig6 text wrong:\n%s", out)
	}
	b, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "penwidth") {
		t.Error("fig6 DOT missing load widths")
	}
}

func TestFig7SmallSeeds(t *testing.T) {
	out, err := runToString(t, "-figure", "fig7", "-seeds", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7", "Greedy algorithm", "ILP", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9SmallSeeds(t *testing.T) {
	out, err := runToString(t, "-figure", "fig9", "-seeds", "1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 9", "Thiran", "Greedy", "ILP"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 output missing %q:\n%s", want, out)
		}
	}
}

func TestSamplersFigure(t *testing.T) {
	out, err := runToString(t, "-figure", "samplers")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mice") || !strings.Contains(out, "geometric") {
		t.Errorf("samplers output wrong:\n%s", out)
	}
}

func TestDynamicFigure(t *testing.T) {
	out, err := runToString(t, "-figure", "dynamic", "-seeds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "recomputes") {
		t.Errorf("dynamic output wrong:\n%s", out)
	}
}

func TestReplayFigure(t *testing.T) {
	out, err := runToString(t, "-figure", "replay", "-seeds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "promised") || !strings.Contains(out, "achieved") {
		t.Errorf("replay output wrong:\n%s", out)
	}
}

// TestChurnReplay drives the -churn-steps session replay: the mode
// must verify warm==cold itself (a divergence is an error), report the
// delta class and effort counters on stdout, keep wall clock on
// stderr, and emit deterministic stdout bytes across repeat runs.
func TestChurnReplay(t *testing.T) {
	var out, progress strings.Builder
	if err := run([]string{"-churn-steps", "2"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"session re-optimization", "rescale", "warmstarts"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("churn replay output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(progress.String(), "churn replay cold") {
		t.Errorf("churn replay timing line missing from stderr:\n%s", progress.String())
	}
	if strings.Contains(out.String(), "repro: churn replay") {
		t.Error("wall clock progress line leaked onto stdout")
	}
	var out2, prog2 strings.Builder
	if err := run([]string{"-churn-steps", "2"}, &out2, &prog2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != out.String() {
		t.Fatalf("churn replay stdout not deterministic:\n%s\nvs:\n%s", out.String(), out2.String())
	}
}

// TestParallelFlagByteIdentical is the CLI face of the engine's
// determinism guarantee: -parallel 1 and -parallel 8 emit the same
// bytes on stdout, with progress confined to stderr.
func TestParallelFlagByteIdentical(t *testing.T) {
	var serialOut, serialProg strings.Builder
	if err := run([]string{"-figure", "fig7", "-seeds", "2", "-parallel", "1"}, &serialOut, &serialProg); err != nil {
		t.Fatal(err)
	}
	var parOut, parProg strings.Builder
	if err := run([]string{"-figure", "fig7", "-seeds", "2", "-parallel", "8"}, &parOut, &parProg); err != nil {
		t.Fatal(err)
	}
	if parOut.String() != serialOut.String() {
		t.Fatalf("-parallel 8 output differs from -parallel 1:\n%s\nwant:\n%s", parOut.String(), serialOut.String())
	}
	for _, prog := range []string{serialProg.String(), parProg.String()} {
		if !strings.Contains(prog, "fig7") || !strings.Contains(prog, "workers=") || !strings.Contains(prog, "cache=") {
			t.Errorf("progress line missing engine fields:\n%s", prog)
		}
	}
	if strings.Contains(parOut.String(), "workers=") {
		t.Error("progress leaked onto stdout")
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := runToString(t, "-figure", "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := runToString(t, "-bogusflag"); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runToString(t, "-version")
	if err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out, "repro ") {
		t.Fatalf("version output = %q", out)
	}
}
