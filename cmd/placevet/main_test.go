package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/maporder"
)

func TestProtocolDetection(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"./..."}, false},
		{[]string{"./internal/lp", "./internal/mip"}, false},
		{[]string{"-maporder.packages=*", "./..."}, false},
		{[]string{"/tmp/vet123.cfg"}, true},
		{[]string{"-flags"}, true},
		{[]string{"-V=full"}, true},
		{[]string{"help"}, true},
		{[]string{"help", "detrand"}, true},
	}
	for _, c := range cases {
		if got := protocol(c.args); got != c.want {
			t.Errorf("protocol(%v) = %v, want %v", c.args, got, c.want)
		}
	}
}

// buildSelf compiles the placevet binary once per test run.
func buildSelf(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "placevet")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return exe
}

func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary through go vet")
	}
	exe := buildSelf(t)
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("version", func(t *testing.T) {
		out, err := exec.Command(exe, "-version").CombinedOutput()
		if err != nil {
			t.Fatalf("-version: %v\n%s", err, out)
		}
		if !strings.HasPrefix(string(out), "placevet ") {
			t.Errorf("-version output %q", out)
		}
	})

	t.Run("bad fixture bites", func(t *testing.T) {
		cmd := exec.Command(exe, "./internal/analysis/testdata/selftest")
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("expected non-zero exit on the seeded bad fixture\n%s", out)
		}
		if !strings.Contains(string(out), "ambient math/rand source") {
			t.Errorf("missing detrand diagnostic in output:\n%s", out)
		}
	})

	t.Run("clean package passes", func(t *testing.T) {
		cmd := exec.Command(exe, "./internal/analysis/placevet")
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("expected clean run: %v\n%s", err, out)
		}
	})

	t.Run("analyzer flags pass through", func(t *testing.T) {
		// Widening the maporder gate to every package must keep the
		// waived sites quiet but is accepted as a flag by the go vet
		// round-trip.
		cmd := exec.Command(exe, "-maporder.packages=internal/analysis/nonexistent", "./internal/engine")
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("flag pass-through run failed: %v\n%s", err, out)
		}
	})
}

// The unitchecker validates the analyzer set only on the protocol
// path; validate it in-process too so a malformed analyzer (duplicate
// name, missing doc, requirement cycle) fails fast under -short.
func TestAnalyzersValid(t *testing.T) {
	if err := analysis.Validate([]*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		floatcmp.Analyzer,
		ctxloop.Analyzer,
		atomicwrite.Analyzer,
	}); err != nil {
		t.Fatal(err)
	}
}
