// Command placevet is the repro's own vet: a multichecker over the
// six house-rule analyzers in internal/analysis that keep figures,
// parallel merges, and cached service responses byte-identical, and
// failure injection inside the seeded fault registry (DESIGN.md §8).
//
// Two modes, decided by the argument shape:
//
//   - Package patterns (the human/CI form):
//
//     go run ./cmd/placevet ./...
//
//     re-executes itself through `go vet -vettool=<self> <patterns>`,
//     so package loading, build caching, and fact plumbing are the go
//     command's — placevet needs no go/packages dependency and
//     incremental runs are as fast as go vet's.
//
//   - The unitchecker protocol (-V=full, -flags, foo.cfg), spoken when
//     the go command calls back into the binary for each package unit.
//
// Analyzer flags pass through: e.g.
//
//	go run ./cmd/placevet -maporder.packages='*' ./...
//
// Findings are suppressed one at a time with
// `//placevet:ignore <analyzer> -- reason` waivers; see the package
// docs under internal/analysis.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/faultgate"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/maporder"
	"repro/internal/buildinfo"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-version" || a == "--version" {
			buildinfo.Fprint(os.Stdout, "placevet")
			return
		}
	}

	if protocol(args) {
		unitchecker.Main(
			detrand.Analyzer,
			maporder.Analyzer,
			floatcmp.Analyzer,
			ctxloop.Analyzer,
			atomicwrite.Analyzer,
			faultgate.Analyzer,
		) // never returns
	}

	os.Exit(govet(args))
}

// protocol reports whether the arguments are a unitchecker-protocol
// callback from the go command (or an explicit help request) rather
// than a human invocation with package patterns.
func protocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") ||
			a == "-flags" || strings.HasPrefix(a, "-V=") ||
			a == "help" {
			return true
		}
	}
	return false
}

// govet re-runs the given arguments through `go vet -vettool=<self>`
// and returns the exit code to propagate.
func govet(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "placevet: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "placevet: %v\n", err)
		return 2
	}
	return 0
}
