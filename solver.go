package repro

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cover"
)

// Problem is the instance a Solver consumes. The built-in solvers accept
// *Instance (PPM(k) tap placement, §4), *MultiInstance (PPME sampling
// placement, §5), and ProbeSet or *ProbeSet (beacon placement, §6); a
// solver returns an error for a problem kind it does not understand.
type Problem any

// Solver is the unified solving interface: every algorithm of the paper
// is exposed as a named Solver registered in the package registry.
// Solve must honour ctx — on cancellation or deadline expiry it returns
// the best incumbent found so far (Result.Optimal == false) rather than
// nothing, whenever the algorithm has one.
type Solver interface {
	// Name is the registry key, e.g. "tap/ilp".
	Name() string
	// Solve solves the problem under the context and options.
	Solve(ctx context.Context, problem Problem, opts ...Option) (*Result, error)
}

// Stats reports how hard a solve was.
type Stats struct {
	// Wall is the wall-clock duration of the solve.
	Wall time.Duration
	// Nodes is the number of branch-and-bound nodes explored (0 for
	// pure heuristics).
	Nodes int
	// Pivots is the total simplex iterations across all LP relaxations.
	Pivots int
	// Refactorizations is the total basis LU refactorizations of the
	// sparse revised simplex across all LP relaxations.
	Refactorizations int
	// DevexResets is the total Devex pricing reference-framework
	// resets across all LP relaxations.
	DevexResets int
	// WarmStarts is the number of branch-and-bound nodes whose LP
	// relaxation was warm-started from the parent node's basis.
	WarmStarts int
	// CutsAdded is the number of root cutting planes (lifted cover and
	// clique cuts) added to the MIP relaxation.
	CutsAdded int
	// VarsFixed is the number of variables permanently fixed by
	// reduced-cost fixing.
	VarsFixed int
	// PresolveRemoved is the number of columns and rows the MIP
	// presolve removed before the root solve.
	PresolveRemoved int
	// StrongBranches is the number of strong-branching probe LPs solved
	// to initialize pseudo-cost branching.
	StrongBranches int
	// SubtreeTasks is the number of independent subtree tasks the
	// parallel branch-and-bound dispatched over its worker pool (0 for
	// searches that closed in the serial phases).
	SubtreeTasks int
	// Steals is the number of subtree tasks executed by a worker other
	// than their round-robin home — the load-balancing traffic of the
	// shared task queue. Always 0 for serial solves.
	Steals int
	// DominancePrunes is the number of set exclusions applied by the
	// dominance and symmetry reductions of the combinatorial search.
	DominancePrunes int
	// Degraded counts solves answered by a fallback solver after the
	// primary errored (1 for a single degraded Solve; summed across a
	// batch). See WithFallback.
	Degraded int
}

// Result is the unified outcome of a Solve: the placement for the
// problem family that was solved, plus solver statistics. Exactly one
// of Taps, Sampling, Beacons is non-nil.
type Result struct {
	// Solver is the name of the solver that produced the result (for a
	// portfolio, the winning member).
	Solver string

	// Taps is set by PPM(k) solvers.
	Taps *TapPlacement
	// Sampling is set by PPME solvers.
	Sampling *SamplingSolution
	// Beacons is set by beacon-placement solvers.
	Beacons *BeaconPlacement

	// Objective is the solver's objective value: devices placed for tap
	// and beacon solvers, monitored volume for tap/max-coverage, total
	// cost for sampling solvers.
	Objective float64
	// Bound is the best proven bound on the objective; equal to
	// Objective when Optimal, meaningful otherwise only for exact
	// solvers stopped early. Gap is |Objective − Bound|.
	Bound float64
	Gap   float64
	// Optimal is true when the result is provably optimal — within the
	// configured absolute Gap when one was set (WithGap), exactly
	// otherwise. A canceled or budget-capped exact solve reports its
	// best incumbent with Optimal == false.
	Optimal bool
	// Stats carries the effort counters.
	Stats Stats

	// Degraded is true when the primary solver failed and this result
	// came from a fallback in the WithFallback ladder; FallbackSolver
	// then names the solver that actually answered (Solver keeps the
	// name the caller asked for, so provenance survives downstream
	// routing on the requested solver).
	Degraded       bool
	FallbackSolver string
}

// Devices returns the number of devices (taps, sampling devices, or
// beacons) in whichever placement the result carries.
func (r *Result) Devices() int {
	switch {
	case r.Taps != nil:
		return r.Taps.Devices()
	case r.Sampling != nil:
		return r.Sampling.Devices()
	case r.Beacons != nil:
		return r.Beacons.Devices()
	}
	return 0
}

// Options collects the knobs shared by all solvers. Build one with the
// With* functional options; zero fields mean solver defaults.
type Options struct {
	// Deadline bounds the solve in absolute time; Timeout in relative
	// time. When both are set the earlier one wins. Solvers stopped by
	// either return their best incumbent with Optimal == false.
	Deadline time.Time
	Timeout  time.Duration
	// Coverage is the fraction k of total traffic volume to monitor,
	// in (0,1]. Default 1 (monitor everything).
	Coverage float64
	// Budget caps the number of devices (tap ILP) or is the number of
	// devices to place (tap/max-coverage). 0 = unlimited.
	Budget int
	// Installed lists links already carrying a device (incremental
	// placement, §4.3).
	Installed []EdgeID
	// Gap is the absolute optimality gap for branch-and-bound pruning.
	Gap float64
	// RelGap is the relative optimality gap: pruning uses
	// Gap + RelGap·|incumbent|, so it scales with the objective on
	// large instances. 0 disables it.
	RelGap float64
	// Seed drives randomized solvers (tap/rounding).
	Seed int64
	// MaxNodes caps branch-and-bound nodes (0 = solver default).
	MaxNodes int
	// Fallback is the graceful-degradation ladder: registered solver
	// names tried in order when the primary solve errors (see
	// WithFallback). Results answered by the ladder are stamped
	// Degraded and are never memoized.
	Fallback []string

	// Session-injected warm artifacts (set only by Session, never by a
	// public With* option): warmCover seeds the exact-cover search with
	// the previous solve's cover and root LP basis, captureCover
	// receives the artifacts of this solve for the next Resolve. The
	// fields are unexported on purpose — the warm path is sound only
	// under the Delta validity rules Session enforces, and batch caching
	// keys must never see a warm solve as a cold one (batch.go bypasses
	// the cache whenever they are set).
	warmCover    *cover.Warm
	captureCover *cover.Capture
}

// sessionWarm reports whether session artifacts ride on this solve (the
// cache-bypass trigger in batch.go).
func (o Options) sessionWarm() bool { return o.warmCover != nil || o.captureCover != nil }

// Option mutates Options; see WithDeadline and friends.
type Option func(*Options)

// WithDeadline bounds the solve in absolute time.
func WithDeadline(t time.Time) Option { return func(o *Options) { o.Deadline = t } }

// WithTimeout bounds the solve in relative wall-clock time.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// WithCoverage sets the monitored-volume floor k ∈ (0,1].
func WithCoverage(k float64) Option { return func(o *Options) { o.Coverage = k } }

// WithBudget caps (or, for tap/max-coverage, sets) the device count.
func WithBudget(n int) Option { return func(o *Options) { o.Budget = n } }

// WithInstalled marks links that already carry a device.
func WithInstalled(edges ...EdgeID) Option {
	return func(o *Options) { o.Installed = append([]EdgeID(nil), edges...) }
}

// WithGap sets the absolute optimality gap for exact solvers.
func WithGap(g float64) Option { return func(o *Options) { o.Gap = g } }

// WithRelGap sets the relative optimality gap for exact solvers.
func WithRelGap(g float64) Option { return func(o *Options) { o.RelGap = g } }

// WithSeed seeds randomized solvers.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithMaxNodes caps the branch-and-bound node budget.
func WithMaxNodes(n int) Option { return func(o *Options) { o.MaxNodes = n } }

// WithFallback installs a graceful-degradation ladder: when the
// primary solver returns an error (including a timeout with no
// incumbent to degrade to), Solve and SolveBatch fall through the
// named registered solvers in order and return the first success,
// stamped Degraded with FallbackSolver provenance. When the whole
// ladder fails too, the joined errors surface. Degraded results are
// never cached: once the primary recovers, fresh solves win again.
func WithFallback(solvers ...string) Option {
	return func(o *Options) { o.Fallback = append([]string(nil), solvers...) }
}

// BuildOptions applies opts to the defaults and returns the resulting
// Options (exported so custom Solver implementations can reuse it).
func BuildOptions(opts []Option) Options {
	o := Options{Coverage: 1}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// apply installs the option deadline/timeout onto ctx. The returned
// cancel must always be called.
func (o Options) apply(ctx context.Context) (context.Context, context.CancelFunc) {
	cancel := func() {}
	if !o.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, o.Deadline)
	}
	if o.Timeout > 0 {
		c2 := cancel
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		prev := cancel
		cancel = func() { prev(); c2() }
	}
	return ctx, cancel
}

// ---- registry ----

var solverRegistry = struct {
	sync.RWMutex
	m map[string]Solver
}{m: make(map[string]Solver)}

// RegisterSolver adds s to the package registry under s.Name(). It
// errors on an empty or already-taken name.
func RegisterSolver(s Solver) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("repro: solver with empty name")
	}
	solverRegistry.Lock()
	defer solverRegistry.Unlock()
	if _, dup := solverRegistry.m[name]; dup {
		return fmt.Errorf("repro: solver %q already registered", name)
	}
	solverRegistry.m[name] = s
	return nil
}

func mustRegister(s Solver) {
	if err := RegisterSolver(s); err != nil {
		panic(err)
	}
}

// LookupSolver returns the registered solver by name.
func LookupSolver(name string) (Solver, error) {
	solverRegistry.RLock()
	defer solverRegistry.RUnlock()
	s, ok := solverRegistry.m[name]
	if !ok {
		return nil, fmt.Errorf("repro: unknown solver %q (known: %v)", name, solverNamesLocked())
	}
	return s, nil
}

// Solvers lists all registered solver names, sorted.
func Solvers() []string {
	solverRegistry.RLock()
	defer solverRegistry.RUnlock()
	return solverNamesLocked()
}

func solverNamesLocked() []string {
	names := make([]string, 0, len(solverRegistry.m))
	for n := range solverRegistry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Solve looks up a registered solver by name and runs it — the
// one-call form the CLIs and examples use:
//
//	res, err := repro.Solve(ctx, "tap/ilp", in,
//	        repro.WithCoverage(0.95), repro.WithTimeout(time.Second))
func Solve(ctx context.Context, solver string, problem Problem, opts ...Option) (*Result, error) {
	s, err := LookupSolver(solver)
	if err != nil {
		return nil, err
	}
	return solveWithFallback(ctx, s, problem, opts)
}

// SolverFunc adapts a plain function into a registrable Solver. The
// function receives the already-built Options; the deadline and timeout
// options are installed on ctx before the call.
type SolverFunc struct {
	SolverName string
	Fn         func(ctx context.Context, problem Problem, o Options) (*Result, error)
}

// Name implements Solver.
func (s SolverFunc) Name() string { return s.SolverName }

// Solve implements Solver.
func (s SolverFunc) Solve(ctx context.Context, problem Problem, opts ...Option) (*Result, error) {
	o := BuildOptions(opts)
	ctx, cancel := o.apply(ctx)
	defer cancel()
	start := time.Now()
	res, err := s.Fn(ctx, problem, o)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.SolverName, err)
	}
	res.Solver = s.SolverName
	res.Stats.Wall = time.Since(start)
	return res, nil
}
