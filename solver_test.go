package repro

import (
	"context"
	"strings"
	"testing"
	"time"
)

func testInstance(t *testing.T, seed int64) *Instance {
	t.Helper()
	pop := GeneratePOP(POPConfig{Routers: 6, InterRouterLinks: 10, Endpoints: 6, Seed: seed})
	in, err := RouteSingle(pop, GenerateDemands(pop, TrafficConfig{Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryListsTapSolvers(t *testing.T) {
	names := Solvers()
	taps := 0
	for _, n := range names {
		if strings.HasPrefix(n, "tap/") {
			taps++
		}
	}
	if taps < 5 {
		t.Fatalf("only %d tap solvers registered: %v", taps, names)
	}
	for _, want := range []string{
		"tap/greedy-load", "tap/greedy-gain", "tap/flow-heuristic",
		"tap/ilp", "tap/exact", "tap/portfolio",
		"beacon/thiran", "beacon/greedy", "beacon/ilp",
		"sample/ppme", "sample/rates",
	} {
		if _, err := LookupSolver(want); err != nil {
			t.Errorf("missing built-in solver %q: %v", want, err)
		}
	}
}

func TestRegistryUnknownAndDuplicate(t *testing.T) {
	if _, err := LookupSolver("tap/frobnicate"); err == nil {
		t.Fatal("unknown solver name accepted")
	}
	if _, err := Solve(context.Background(), "no/such", nil); err == nil {
		t.Fatal("Solve accepted unknown solver")
	}
	dup := SolverFunc{SolverName: "tap/ilp"}
	if err := RegisterSolver(dup); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterSolver(SolverFunc{}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestOptionApplication(t *testing.T) {
	deadline := time.Now().Add(time.Hour)
	o := BuildOptions([]Option{
		WithDeadline(deadline),
		WithTimeout(2 * time.Second),
		WithCoverage(0.85),
		WithBudget(4),
		WithInstalled(3, 1),
		WithGap(0.5),
		WithSeed(42),
		WithMaxNodes(1000),
	})
	if !o.Deadline.Equal(deadline) || o.Timeout != 2*time.Second {
		t.Fatalf("deadline/timeout not applied: %+v", o)
	}
	if o.Coverage != 0.85 || o.Budget != 4 || o.Gap != 0.5 || o.Seed != 42 || o.MaxNodes != 1000 {
		t.Fatalf("options not applied: %+v", o)
	}
	if len(o.Installed) != 2 || o.Installed[0] != 3 || o.Installed[1] != 1 {
		t.Fatalf("installed not applied: %+v", o.Installed)
	}
	if def := BuildOptions(nil); def.Coverage != 1 {
		t.Fatalf("default coverage %g, want 1", def.Coverage)
	}
}

func TestSolverRejectsWrongProblemKind(t *testing.T) {
	in := testInstance(t, 5)
	if _, err := Solve(context.Background(), "beacon/greedy", in); err == nil {
		t.Fatal("beacon solver accepted a tap instance")
	}
	if _, err := Solve(context.Background(), "tap/ilp", "nonsense"); err == nil {
		t.Fatal("tap solver accepted a string")
	}
	if _, err := Solve(context.Background(), "tap/ilp", in, WithCoverage(1.5)); err == nil {
		t.Fatal("coverage > 1 accepted")
	}
}

// TestCancelMidSolveReturnsIncumbent is the acceptance test of the
// redesign: cancelling an exact solve returns the best incumbent (at
// worst the greedy warm start) with Optimal == false, instead of an
// error — both for the MIP-based tap/ilp and the combinatorial
// tap/exact.
func TestCancelMidSolveReturnsIncumbent(t *testing.T) {
	in := testInstance(t, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the solver must stop at its first poll

	for _, name := range []string{"tap/ilp", "tap/ilp-lp1", "tap/exact"} {
		res, err := Solve(ctx, name, in, WithCoverage(0.9))
		if err != nil {
			t.Fatalf("%s: canceled solve errored: %v", name, err)
		}
		if res.Optimal {
			t.Fatalf("%s: canceled solve claims optimality", name)
		}
		if res.Taps.Fraction < 0.9-1e-9 {
			t.Fatalf("%s: incumbent coverage %g < 0.9", name, res.Taps.Fraction)
		}
		if res.Devices() == 0 {
			t.Fatalf("%s: empty incumbent", name)
		}
	}

	// The same instance solved without cancellation is proven optimal.
	res, err := Solve(context.Background(), "tap/ilp", in, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("uncanceled ILP not optimal")
	}
	if res.Stats.Nodes == 0 || res.Stats.Pivots == 0 {
		t.Fatalf("missing solver stats: %+v", res.Stats)
	}
	if res.Stats.Wall <= 0 {
		t.Fatal("missing wall time")
	}
}

// TestDeadlineMidBranchAndBound drives a real mid-search cancellation:
// a deadline too short to prove optimality on the 15-router instance
// but long enough to enter branch and bound.
func TestDeadlineMidBranchAndBound(t *testing.T) {
	if testing.Short() {
		t.Skip("15-router instance in -short mode")
	}
	pop := GeneratePOP(Paper15)
	in, err := RouteSingle(pop, GenerateDemands(pop, TrafficConfig{Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), "tap/ilp", in,
		WithCoverage(1.0), WithTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Taps.Fraction < 1.0-1e-9 {
		t.Fatalf("incumbent coverage %g < 1", res.Taps.Fraction)
	}
	// The instance is hard enough that 150ms cannot close it; if the
	// solver somehow proved optimality, the test still holds — what
	// matters is a feasible result either way.
	if !res.Optimal && res.Gap < 0 {
		t.Fatalf("negative gap %g", res.Gap)
	}
}

func TestPortfolioPicksBestOfTwo(t *testing.T) {
	in := testInstance(t, 7)
	const k = 0.9

	greedy, err := Solve(context.Background(), "tap/greedy-load", in, WithCoverage(k))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Solve(context.Background(), "tap/exact", in, WithCoverage(k))
	if err != nil {
		t.Fatal(err)
	}

	pf := NewPortfolio("tap/test-portfolio", "tap/greedy-load", "tap/exact")
	res, err := pf.Solve(context.Background(), in, WithCoverage(k))
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Devices()
	if greedy.Devices() < want {
		want = greedy.Devices()
	}
	if res.Devices() != want {
		t.Fatalf("portfolio picked %d devices, want best-of-two %d", res.Devices(), want)
	}
	if res.Devices() > greedy.Devices() {
		t.Fatal("portfolio worse than its worst member")
	}
	if res.Taps.Fraction < k-1e-9 {
		t.Fatalf("portfolio coverage %g < %g", res.Taps.Fraction, k)
	}
}

func TestPortfolioErrors(t *testing.T) {
	in := testInstance(t, 3)
	if _, err := NewPortfolio("p", "tap/nope").Solve(context.Background(), in); err == nil {
		t.Fatal("portfolio with unknown member accepted")
	}
	if _, err := NewPortfolio("p").Solve(context.Background(), in); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

func TestRegisteredPortfolioUnderDeadline(t *testing.T) {
	in := testInstance(t, 11)
	res, err := Solve(context.Background(), "tap/portfolio", in,
		WithCoverage(0.95), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Taps.Fraction < 0.95-1e-9 {
		t.Fatalf("coverage %g", res.Taps.Fraction)
	}
	if res.Solver == "" {
		t.Fatal("portfolio did not report the winning member")
	}
}

// TestLegacyWrappersDelegate pins the migration contract: the enum
// wrappers produce the same placements as the registry solvers they
// delegate to.
func TestLegacyWrappersDelegate(t *testing.T) {
	in := testInstance(t, 13)
	pl, err := PlaceTaps(context.Background(), in, 0.9, TapILP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), "tap/ilp", in, WithCoverage(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Devices() != res.Devices() {
		t.Fatalf("wrapper %d devices, registry %d", pl.Devices(), res.Devices())
	}
}
