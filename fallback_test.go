package repro

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// flakySolver fails until healed, then delegates to a real solver.
type flakySolver struct {
	name     string
	delegate string
	fails    atomic.Int64 // remaining failures; negative = always fail
	calls    atomic.Int64
}

func (f *flakySolver) Name() string { return f.name }

func (f *flakySolver) Solve(ctx context.Context, problem Problem, opts ...Option) (*Result, error) {
	f.calls.Add(1)
	for {
		n := f.fails.Load()
		if n == 0 {
			return Solve(ctx, f.delegate, problem, opts...)
		}
		if n < 0 || f.fails.CompareAndSwap(n, n-1) {
			return nil, errors.New("injected primary failure")
		}
	}
}

var flakySeq atomic.Int64

// newFlaky registers a fresh flaky solver failing the first fails
// solves (negative = forever) and returns it.
func newFlaky(t *testing.T, fails int64) *flakySolver {
	t.Helper()
	f := &flakySolver{
		name:     fmt.Sprintf("test/flaky-%d", flakySeq.Add(1)),
		delegate: "tap/greedy-gain",
	}
	f.fails.Store(fails)
	if err := RegisterSolver(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSolveFallbackLadder(t *testing.T) {
	in := testInstance(t, 1)
	f := newFlaky(t, -1)

	// Without a ladder the failure surfaces.
	if _, err := Solve(context.Background(), f.name, in); err == nil {
		t.Fatal("primary failure did not surface without a ladder")
	}

	res, err := Solve(context.Background(), f.name, in,
		WithCoverage(0.9), WithFallback("tap/greedy-gain"))
	if err != nil {
		t.Fatalf("ladder solve: %v", err)
	}
	if !res.Degraded {
		t.Fatal("ladder result not stamped Degraded")
	}
	if res.FallbackSolver != "tap/greedy-gain" {
		t.Fatalf("FallbackSolver = %q, want tap/greedy-gain", res.FallbackSolver)
	}
	if res.Solver != f.name {
		t.Fatalf("Solver = %q, want requested %q", res.Solver, f.name)
	}
	if res.Stats.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", res.Stats.Degraded)
	}
	if res.Taps == nil {
		t.Fatal("degraded result carries no placement")
	}
}

func TestSolveFallbackLadderAllFail(t *testing.T) {
	in := testInstance(t, 1)
	f := newFlaky(t, -1)
	f2 := newFlaky(t, -1)
	_, err := Solve(context.Background(), f.name, in,
		WithFallback(f.name, f2.name, "no/such-solver"))
	if err == nil {
		t.Fatal("exhausted ladder returned nil error")
	}
	for _, want := range []string{"injected primary failure", "unknown solver", f2.name} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined ladder error %q does not mention %q", err, want)
		}
	}
}

func TestBatchFallbackDegradedNotCached(t *testing.T) {
	in := testInstance(t, 1)
	f := newFlaky(t, 1) // fail exactly the first solve, then heal
	r := NewRunner(WithWorkers(1))

	res, err := r.SolveBatch(context.Background(), f.name, []Problem{in},
		WithCoverage(0.9), WithFallback("tap/greedy-gain"))
	if err != nil {
		t.Fatalf("degraded batch: %v", err)
	}
	if !res[0].Degraded || res[0].FallbackSolver != "tap/greedy-gain" {
		t.Fatalf("batch result not stamped: %+v", res[0])
	}
	if st := r.BatchStats(); st.Degraded != 1 {
		t.Fatalf("BatchStats.Degraded = %d, want 1", st.Degraded)
	}

	// The primary healed; the degraded answer must NOT have been
	// memoized under the primary's key, so this identical batch
	// re-solves fresh and comes back undegraded.
	res2, err := r.SolveBatch(context.Background(), f.name, []Problem{in},
		WithCoverage(0.9), WithFallback("tap/greedy-gain"))
	if err != nil {
		t.Fatalf("healed batch: %v", err)
	}
	if res2[0].Degraded {
		t.Fatal("healed batch served the memoized degraded result")
	}
	if hits, _ := r.CacheCounts(); hits != 0 {
		t.Fatalf("cache hits = %d, want 0 (degraded result must not be retained)", hits)
	}

	// Now the healthy result IS cached: a third batch hits.
	if _, err := r.SolveBatch(context.Background(), f.name, []Problem{in},
		WithCoverage(0.9), WithFallback("tap/greedy-gain")); err != nil {
		t.Fatal(err)
	}
	if hits, _ := r.CacheCounts(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1 after heal", hits)
	}
}
