// passive-pop reproduces the Figure 7 study end to end: sweep the
// monitored-traffic percentage on a 10-router POP and compare the
// baseline greedy against the exact optimizer, printing the series the
// paper plots. It then demonstrates the two MIP extensions of §4.3
// through the functional options of the Solver API: incremental
// placement over already-installed devices (WithInstalled), and optimal
// placement under a device budget (WithBudget).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()

	pop := repro.GeneratePOP(repro.Paper10)
	demands := repro.GenerateDemands(pop, repro.TrafficConfig{Seed: 3})
	in, err := repro.RouteSingle(pop, demands)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Figure 7 style sweep on one seed (devices needed)")
	fmt.Println("# (each ILP solve bounded to 15s; * marks an unproven incumbent)")
	fmt.Printf("%-12s %-8s %-8s\n", "% monitored", "greedy", "ILP")
	for _, k := range []float64{0.75, 0.80, 0.85, 0.90, 0.95, 1.00} {
		g, err := repro.Solve(ctx, "tap/greedy-load", in, repro.WithCoverage(k))
		if err != nil {
			log.Fatal(err)
		}
		// Deadline-bounded exact solve: on expiry the best incumbent is
		// reported instead of an error, so the sweep always completes.
		opt, err := repro.Solve(ctx, "tap/ilp", in,
			repro.WithCoverage(k), repro.WithTimeout(15*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if !opt.Optimal {
			mark = "*"
		}
		fmt.Printf("%-12.0f %-8d %-7d%s\n", k*100, g.Devices(), opt.Devices(), mark)
	}

	// Incremental placement (§4.3): the operator already installed two
	// devices on the busiest links; where do new ones go?
	busiest, err := repro.Solve(ctx, "tap/greedy-load", in, repro.WithCoverage(0.75))
	if err != nil {
		log.Fatal(err)
	}
	installed := busiest.Taps.Edges
	if len(installed) > 2 {
		installed = installed[:2]
	}
	inc, err := repro.Solve(ctx, "tap/ilp", in,
		repro.WithCoverage(0.95), repro.WithInstalled(installed...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental: %d installed + %d new devices reach 95%% coverage\n",
		len(installed), inc.Devices()-len(installed))

	// Budget variant: what is the best coverage 4 devices can buy?
	mc, err := repro.Solve(ctx, "tap/max-coverage", in, repro.WithBudget(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: 4 devices can monitor at most %.1f%% of the traffic\n",
		mc.Taps.Fraction*100)

	// Expected gain of a 5th device (the paper's provisioning question).
	mc5, err := repro.Solve(ctx, "tap/max-coverage", in,
		repro.WithBudget(1), repro.WithInstalled(mc.Taps.Edges...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a 5th device raises coverage to %.1f%% (+%.1f points)\n",
		mc5.Taps.Fraction*100, (mc5.Taps.Fraction-mc.Taps.Fraction)*100)
}
