// passive-pop reproduces the Figure 7 study end to end: sweep the
// monitored-traffic percentage on a 10-router POP and compare the
// baseline greedy against the exact optimizer, printing the series the
// paper plots. It then demonstrates the two MIP extensions of §4.3:
// incremental placement over already-installed devices, and optimal
// placement under a device budget.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	pop := repro.GeneratePOP(repro.Paper10)
	demands := repro.GenerateDemands(pop, repro.TrafficConfig{Seed: 3})
	in, err := repro.RouteSingle(pop, demands)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Figure 7 style sweep on one seed (devices needed)")
	fmt.Printf("%-12s %-8s %-8s\n", "% monitored", "greedy", "ILP")
	for _, k := range []float64{0.75, 0.80, 0.85, 0.90, 0.95, 1.00} {
		g, err := repro.PlaceTaps(in, k, repro.TapGreedyLoad)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := repro.PlaceTaps(in, k, repro.TapILP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0f %-8d %-8d\n", k*100, g.Devices(), opt.Devices())
	}

	// Incremental placement (§4.3): the operator already installed two
	// devices on the busiest links; where do new ones go?
	busiest, err := repro.PlaceTaps(in, 0.75, repro.TapGreedyLoad)
	if err != nil {
		log.Fatal(err)
	}
	installed := busiest.Edges
	if len(installed) > 2 {
		installed = installed[:2]
	}
	inc, err := repro.PlaceTapsILP(in, 0.95, repro.ILPOptions{Installed: installed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental: %d installed + %d new devices reach 95%% coverage\n",
		len(installed), inc.Devices()-len(installed))

	// Budget variant: what is the best coverage 4 devices can buy?
	mc, err := repro.MaxCoverage(in, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget: 4 devices can monitor at most %.1f%% of the traffic\n", mc.Fraction*100)

	// Expected gain of a 5th device (the paper's provisioning question).
	mc5, err := repro.MaxCoverage(in, 1, mc.Edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a 5th device raises coverage to %.1f%% (+%.1f points)\n",
		mc5.Fraction*100, (mc5.Fraction-mc.Fraction)*100)
}
