// dynamic-sampling demonstrates §5: place sampling-capable devices with
// the PPME(h,k) MILP, validate the promised coverage by packet-level
// replay, then let traffic drift and watch the §5.4 controller keep the
// coverage above threshold by re-optimizing only the sampling rates
// (device positions never move). Every solve is context-bounded.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/traffic"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A compact POP: the PPME MILP is exact but our simplex pays a much
	// higher constant than CPLEX, so §5 experiments use a 7-router POP
	// (the paper prescribes no instance size for §5).
	pop := repro.GeneratePOP(repro.POPConfig{Routers: 7, InterRouterLinks: 11, Endpoints: 8, Seed: 5})
	demands := repro.GenerateDemands(pop, repro.TrafficConfig{Seed: 5})
	mi, err := repro.RouteMulti(pop, demands, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Place devices and rates: cover ≥90% of the total volume and ≥50%
	// of every individual traffic (the h_t floors of LP 3).
	h := make([]float64, len(mi.Traffics))
	for i := range h {
		h[i] = 0.5
	}
	cfg := repro.SamplingConfig{K: 0.9, H: h}
	sol, err := repro.PlaceSamplers(ctx, mi, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPME placed %d devices, setup cost %.1f, exploitation cost %.2f (optimal: %v, %d B&B nodes)\n",
		sol.Devices(), sol.SetupCost, sol.ExploitCost, sol.Exact, sol.Stats.Nodes)
	for _, e := range sol.Edges {
		edge := mi.G.Edge(e)
		fmt.Printf("  link %2d (%s—%s): sampling rate %.2f\n",
			e, mi.G.Label(edge.U), mi.G.Label(edge.V), sol.Rate(e))
	}

	// Validate by packet replay: the marked discipline must achieve the
	// promise within sampling noise.
	promise := repro.PromisedCoverage(mi, sol.Rates)
	res, err := repro.Replay(mi, sol.Rates, repro.ReplayOptions{Seed: 5, PacketsPerUnit: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: promised %.2f%%, achieved %.2f%% over %d packets\n",
		promise*100, res.Fraction*100, res.TotalPackets)

	// Dynamic traffic: drift the matrix and let the controller adapt.
	ctl, err := repro.NewRateController(ctx, mi, sol.Edges, repro.SamplingConfig{K: 0.9}, 0.89)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrifting the traffic matrix ±50% per round (threshold T = 89%):")
	cur := demands
	for round := 1; round <= 8; round++ {
		cur = traffic.Perturb(cur, 0.5, int64(round))
		drifted, err := repro.RouteMulti(pop, cur, 2)
		if err != nil {
			log.Fatal(err)
		}
		before := ctl.AchievedFraction(drifted)
		recomputed, err := ctl.Observe(ctx, drifted)
		if err != nil {
			log.Fatalf("round %d: devices starved, operator must run PPME again: %v", round, err)
		}
		action := "wait"
		if recomputed {
			action = "recompute rates"
		}
		fmt.Printf("  round %d: coverage %.2f%% → %s (now %.2f%%)\n",
			round, before*100, action, ctl.AchievedFraction(drifted)*100)
	}
	fmt.Printf("controller recomputed %d times over %d observations\n",
		ctl.Recomputes, ctl.Observations)
}
