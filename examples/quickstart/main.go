// Quickstart: generate a POP, route traffic through it, and place the
// minimum number of passive monitoring devices to cover 95% of the
// traffic — the paper's headline use case, through the context-aware
// Solver API: solvers are addressed by registry name, every solve is
// deadline-bounded, and results carry solver statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()

	// A 10-router POP as in the paper's Figure 7 instance: 27 links,
	// 12 traffic endpoints → 132 traffics.
	pop := repro.GeneratePOP(repro.Paper10)
	demands := repro.GenerateDemands(pop, repro.TrafficConfig{Seed: 1})
	in, err := repro.RouteSingle(pop, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POP: %d routers, %d links, %d traffics\n",
		pop.Routers(), pop.G.NumEdges(), len(in.Traffics))

	// The paper's comparison: baseline greedy versus the exact MIP.
	// Each solve is bounded by a deadline; an expired exact solve
	// returns its best incumbent with Optimal == false instead of
	// nothing.
	greedy, err := repro.Solve(ctx, "tap/greedy-load", in, repro.WithCoverage(0.95))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := repro.Solve(ctx, "tap/ilp", in,
		repro.WithCoverage(0.95), repro.WithTimeout(30*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("to monitor 95%% of the traffic:\n")
	fmt.Printf("  greedy places %2d devices (coverage %.1f%%)\n",
		greedy.Devices(), greedy.Taps.Fraction*100)
	fmt.Printf("  ILP    places %2d devices (coverage %.1f%%, optimal %v, %d B&B nodes in %v)\n",
		exact.Devices(), exact.Taps.Fraction*100, exact.Optimal,
		exact.Stats.Nodes, exact.Stats.Wall.Round(time.Millisecond))

	// Monitoring everything costs disproportionately more — the paper's
	// "monitor only 95%" advice.
	full, err := repro.Solve(ctx, "tap/ilp", in, repro.WithCoverage(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covering 100%% instead needs %d devices (+%d)\n",
		full.Devices(), full.Devices()-exact.Devices())

	// A portfolio races greedy-gain, the flow heuristic and the ILP
	// concurrently and keeps the best placement at the deadline.
	best, err := repro.Solve(ctx, "tap/portfolio", in,
		repro.WithCoverage(0.95), repro.WithTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portfolio winner: %s with %d devices\n", best.Solver, best.Devices())

	for _, e := range exact.Taps.Edges {
		edge := in.G.Edge(e)
		fmt.Printf("  tap link %2d: %s — %s\n", e, in.G.Label(edge.U), in.G.Label(edge.V))
	}
}
