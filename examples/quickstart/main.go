// Quickstart: generate a POP, route traffic through it, and place the
// minimum number of passive monitoring devices to cover 95% of the
// traffic — the paper's headline use case, in a few lines of the public
// API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 10-router POP as in the paper's Figure 7 instance: 27 links,
	// 12 traffic endpoints → 132 traffics.
	pop := repro.GeneratePOP(repro.Paper10)
	demands := repro.GenerateDemands(pop, repro.TrafficConfig{Seed: 1})
	in, err := repro.RouteSingle(pop, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POP: %d routers, %d links, %d traffics\n",
		pop.Routers(), pop.G.NumEdges(), len(in.Traffics))

	// The paper's comparison: baseline greedy versus the exact MIP.
	greedy, err := repro.PlaceTaps(in, 0.95, repro.TapGreedyLoad)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := repro.PlaceTaps(in, 0.95, repro.TapILP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("to monitor 95%% of the traffic:\n")
	fmt.Printf("  greedy places %2d devices (coverage %.1f%%)\n", greedy.Devices(), greedy.Fraction*100)
	fmt.Printf("  ILP    places %2d devices (coverage %.1f%%)\n", exact.Devices(), exact.Fraction*100)

	// Monitoring everything costs disproportionately more — the paper's
	// "monitor only 95%" advice.
	full, err := repro.PlaceTaps(in, 1.0, repro.TapILP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covering 100%% instead needs %d devices (+%d)\n",
		full.Devices(), full.Devices()-exact.Devices())

	for _, e := range exact.Edges {
		edge := in.G.Edge(e)
		fmt.Printf("  tap link %2d: %s — %s\n", e, in.G.Label(edge.U), in.G.Label(edge.V))
	}
}
