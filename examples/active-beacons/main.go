// active-beacons reproduces the Figure 9 study: compute the probe set Φ
// covering every link of a 15-router POP, then compare the three beacon
// placement algorithms (§6) as the candidate set grows, including the
// per-beacon probe load (message overhead). Solvers are addressed by
// registry name and bounded by a shared deadline.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	// One deadline for the whole study: expired ILP solves degrade to
	// their greedy-warm-started incumbents instead of failing.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	pop := repro.GeneratePOP(repro.Paper15)

	var routers []repro.NodeID
	for n := 0; n < pop.G.NumNodes(); n++ {
		if pop.IsRouter(repro.NodeID(n)) {
			routers = append(routers, repro.NodeID(n))
		}
	}

	fmt.Println("# Figure 9 style sweep on one seed (beacons selected)")
	fmt.Printf("%-6s %-8s %-8s %-8s %-8s\n", "|V_B|", "probes", "thiran", "greedy", "ILP")
	rng := rand.New(rand.NewSource(4))
	for nb := 3; nb <= len(routers); nb += 3 {
		perm := rng.Perm(len(routers))
		cands := make([]repro.NodeID, nb)
		for i := range cands {
			cands[i] = routers[perm[i]]
		}
		ps, err := repro.ComputeProbes(pop.G, cands)
		if err != nil {
			log.Fatal(err)
		}
		counts := make(map[string]int, 3)
		for _, name := range []string{"beacon/thiran", "beacon/greedy", "beacon/ilp"} {
			res, err := repro.Solve(ctx, name, ps)
			if err != nil {
				log.Fatal(err)
			}
			counts[name] = res.Devices()
		}
		fmt.Printf("%-6d %-8d %-8d %-8d %-8d\n", nb, len(ps.Probes),
			counts["beacon/thiran"], counts["beacon/greedy"], counts["beacon/ilp"])
	}

	// Detail view with all candidates: who sends how many probes?
	ps, err := repro.ComputeProbes(pop.G, routers)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Solve(ctx, "beacon/ilp", ps)
	if err != nil {
		log.Fatal(err)
	}
	pl := res.Beacons
	fmt.Printf("\noptimal placement with all %d routers selectable: %d beacons (proven: %v, %v)\n",
		len(routers), pl.Devices(), res.Optimal, res.Stats.Wall.Round(time.Millisecond))
	for i, b := range pl.Beacons {
		n := 0
		for _, s := range pl.Sender {
			if s == b {
				n++
			}
		}
		fmt.Printf("  beacon %d at %s sends %d probes\n", i+1, pop.G.Label(b), n)
	}
}
