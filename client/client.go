// Package client is the placementd client: POSTs with exponential
// backoff, jittered retries, and Retry-After honoring, so a retry
// storm from a fleet of well-behaved clients cannot amplify the very
// overload the daemon's admission control is shedding.
//
// Retries are safe because placementd requests are idempotent by
// construction: a solve request is a pure function of its body (the
// daemon memoizes by canonical instance key), so replaying the same
// bytes can only re-serve the same answer. Each request carries an
// Idempotency-Key header — the SHA-256 of the body — making the
// content-addressing visible to proxies and logs.
//
// Jitter draws from an explicit seeded generator (the repository's
// determinism discipline extends to its clients), so a load driver's
// retry schedule reproduces run-to-run.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client is a placementd client. It is safe for concurrent use; all
// goroutines share the backoff generator under a lock.
type Client struct {
	base      string
	hc        *http.Client
	retries   int
	baseDelay time.Duration
	maxDelay  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient
// semantics on a private client).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable outcome is retried on
// top of the first attempt (default 4; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the exponential backoff's first delay and its cap
// (defaults 50ms and 2s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseDelay, c.maxDelay = base, max }
}

// WithSeed seeds the jitter generator (default 1).
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// New builds a client for the placementd at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:      base,
		hc:        &http.Client{},
		retries:   4,
		baseDelay: 50 * time.Millisecond,
		maxDelay:  2 * time.Second,
		rng:       rand.New(rand.NewSource(1)),
	}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// Outcome is the terminal result of one Post, after retries.
type Outcome struct {
	// Status is the final HTTP status.
	Status int
	// Body is the final response body.
	Body []byte
	// Attempts is how many HTTP round trips were made (>= 1).
	Attempts int
	// Retries is Attempts - 1.
	Retries int
}

// retryable reports whether a status is worth retrying: sheds and
// transient server-side failures, never client errors.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Post sends body to base+path, retrying retryable outcomes (transport
// errors, 429, 5xx) with exponential backoff and jitter. A 429/503
// carrying Retry-After sleeps exactly the server's ask instead of the
// backoff guess. The final response — success or not — comes back as
// an Outcome with a nil error; the error return is reserved for
// transport failure on the last attempt and context cancellation.
func (c *Client) Post(ctx context.Context, path string, body []byte) (*Outcome, error) {
	key := sha256.Sum256(body)
	keyHex := hex.EncodeToString(key[:])
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", keyHex)
		resp, err := c.hc.Do(req)
		var retryAfter time.Duration
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
		} else {
			data, readErr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if readErr != nil {
				lastErr = readErr
			} else if !retryable(resp.StatusCode) || attempt == c.retries {
				return &Outcome{
					Status:   resp.StatusCode,
					Body:     data,
					Attempts: attempt + 1,
					Retries:  attempt,
				}, nil
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
					retryAfter = time.Duration(secs) * time.Second
				}
			}
		}
		if attempt == c.retries {
			return nil, fmt.Errorf("client: %s: %d attempts exhausted: %w", path, attempt+1, lastErr)
		}
		if err := c.sleep(ctx, attempt, retryAfter); err != nil {
			return nil, err
		}
	}
}

// backoffDelay computes one capped exponential delay with jitter in
// [d/2, d) so synchronized clients spread out.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.baseDelay << attempt
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	if half := int64(d / 2); half > 0 {
		c.mu.Lock()
		d = d/2 + time.Duration(c.rng.Int63n(half))
		c.mu.Unlock()
	}
	return d
}

// sleep waits out one backoff step: the server's Retry-After when it
// gave one, otherwise backoffDelay.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := retryAfter
	if d == 0 {
		d = c.backoffDelay(attempt)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
