package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPostSucceedsFirstTry(t *testing.T) {
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	out, err := New(ts.URL).Post(context.Background(), "/v1/solve", []byte(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusOK || out.Attempts != 1 || out.Retries != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if string(out.Body) != `{"ok":true}` {
		t.Fatalf("body = %s", out.Body)
	}
	if len(keys) != 1 || len(keys[0]) != 64 || strings.ToLower(keys[0]) != keys[0] {
		t.Fatalf("Idempotency-Key = %v, want one 64-hex digest", keys)
	}
}

func TestPostRetriesServerErrorsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c := New(ts.URL, WithBackoff(time.Millisecond, 5*time.Millisecond))
	out, err := c.Post(context.Background(), "/v1/solve", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusOK || out.Retries != 2 || out.Attempts != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("Idempotency-Key changed across retries: %v", keys)
		}
	}
}

func TestPostHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		gap = now.Sub(last)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	// Backoff is microseconds, so a ~1s gap can only come from the
	// server's Retry-After ask.
	c := New(ts.URL, WithBackoff(time.Microsecond, time.Microsecond))
	out, err := c.Post(context.Background(), "/v1/solve", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusOK || out.Retries != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	if gap < 900*time.Millisecond {
		t.Fatalf("retry gap = %v, want >= ~1s from Retry-After", gap)
	}
}

func TestPostReturnsFinalRetryableStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "full", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	out, err := c.Post(context.Background(), "/v1/solve", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusServiceUnavailable || out.Attempts != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestPostDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts.Close()

	out, err := New(ts.URL).Post(context.Background(), "/v1/solve", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadRequest || out.Attempts != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestPostTransportErrorExhaustsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every attempt is a transport error

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	out, err := c.Post(context.Background(), "/v1/solve", []byte("body"))
	if err == nil {
		t.Fatalf("want transport error, got %+v", out)
	}
	if !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestPostContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := New(ts.URL, WithBackoff(10*time.Second, 10*time.Second))
	start := time.Now()
	_, err := c.Post(ctx, "/v1/solve", []byte("body"))
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancellation took %v, backoff sleep ignored the context", time.Since(start))
	}
}

func TestBackoffJitterSeededAndCapped(t *testing.T) {
	a := New("http://x", WithSeed(7), WithBackoff(40*time.Millisecond, 200*time.Millisecond))
	b := New("http://x", WithSeed(7), WithBackoff(40*time.Millisecond, 200*time.Millisecond))
	for attempt := 0; attempt < 8; attempt++ {
		da := a.backoffDelay(attempt)
		db := b.backoffDelay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		if da < 20*time.Millisecond || da >= 200*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [base/2, max)", attempt, da)
		}
	}
}
