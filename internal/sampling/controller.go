package sampling

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Controller implements the dynamic-traffic maintenance strategy of
// §5.4:
//
//  1. While Σ δ_p·v_p ≥ T·Σ v_p, wait;
//  2. When the monitored share drops below the tolerance threshold T,
//     recompute PPME*(x,h,k) and update all sampling rates;
//  3. Goto 1.
//
// Device positions never move (migrating a tap requires human
// maintenance); only rates adapt.
type Controller struct {
	installed []graph.EdgeID
	cfg       Config
	threshold float64

	rates  map[graph.EdgeID]float64
	shares []float64 // δ_p from the last re-optimization

	// Recomputes counts how many times the controller had to re-solve
	// PPME*; Observations counts Observe calls.
	Recomputes   int
	Observations int
}

// NewController builds a controller from an initial instance: it solves
// PPME*(installed, h, k) once to set the starting rates. threshold is
// the paper's T and must satisfy 0 < T ≤ cfg.K.
func NewController(ctx context.Context, in *core.MultiInstance, installed []graph.EdgeID, cfg Config, threshold float64) (*Controller, error) {
	if threshold <= 0 || threshold > cfg.K {
		return nil, fmt.Errorf("sampling: threshold %g outside (0, k=%g]", threshold, cfg.K)
	}
	c := &Controller{
		installed: append([]graph.EdgeID(nil), installed...),
		cfg:       cfg,
		threshold: threshold,
	}
	if err := c.reoptimize(ctx, in); err != nil {
		return nil, err
	}
	c.Recomputes = 0 // the initial solve is setup, not an adaptation
	return c, nil
}

// Rates returns the current sampling ratios.
func (c *Controller) Rates() map[graph.EdgeID]float64 {
	out := make(map[graph.EdgeID]float64, len(c.rates))
	for e, r := range c.rates {
		out[e] = r
	}
	return out
}

// AchievedFraction evaluates the coverage the *current* rates achieve on
// the given traffic: δ_p is recomputed as min(1, Σ_{e∈p} r_e) while the
// rates stay fixed — what the deployed devices actually capture after
// the traffic drifted.
func (c *Controller) AchievedFraction(in *core.MultiInstance) float64 {
	covered := 0.0
	for _, fp := range in.Paths() {
		rate := 0.0
		for _, e := range fp.Path.Edges {
			rate += c.rates[e]
		}
		if rate > 1 {
			rate = 1
		}
		covered += rate * fp.Volume
	}
	tv := in.TotalVolume()
	if tv == 0 {
		return 0
	}
	return covered / tv
}

// Observe feeds the controller the current traffic. When the achieved
// coverage is still at or above the threshold it waits (returns false);
// otherwise it re-optimizes the rates with PPME* and returns true. An
// error means even full-rate sampling cannot reach k on the drifted
// traffic (the operator must add devices — back to PPME).
func (c *Controller) Observe(ctx context.Context, in *core.MultiInstance) (recomputed bool, err error) {
	c.Observations++
	if c.AchievedFraction(in) >= c.threshold-1e-12 {
		return false, nil
	}
	if err := c.reoptimize(ctx, in); err != nil {
		return false, err
	}
	c.Recomputes++
	return true, nil
}

func (c *Controller) reoptimize(ctx context.Context, in *core.MultiInstance) error {
	sol, err := SolveRates(ctx, in, c.installed, c.cfg)
	if err != nil {
		return err
	}
	c.rates = sol.Rates
	c.shares = sol.PathShares
	return nil
}
