package sampling

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func multiInstance(seed int64, routes int) *core.MultiInstance {
	cfg := topology.Config{Routers: 5, InterRouterLinks: 8, Endpoints: 5, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	mi, err := traffic.RouteMulti(pop, demands, routes)
	if err != nil {
		panic(err)
	}
	return mi
}

func checkFeasible(t *testing.T, in *core.MultiInstance, s *Solution, cfg Config) {
	t.Helper()
	// δ_p ≤ Σ_{e∈p} r_e and δ, r ∈ [0,1].
	paths := in.Paths()
	for pi, fp := range paths {
		sum := 0.0
		for _, e := range fp.Path.Edges {
			sum += s.Rates[graph.EdgeID(e)]
		}
		if s.PathShares[pi] > sum+1e-6 {
			t.Fatalf("path %d: δ=%g > Σr=%g", pi, s.PathShares[pi], sum)
		}
	}
	for e, r := range s.Rates {
		if r < -1e-9 || r > 1+1e-9 {
			t.Fatalf("rate[%d]=%g outside [0,1]", e, r)
		}
	}
	if s.Fraction < cfg.K-1e-6 {
		t.Fatalf("coverage %g < k=%g", s.Fraction, cfg.K)
	}
	if cfg.H != nil {
		perT := make([]float64, len(in.Traffics))
		for pi, fp := range paths {
			perT[fp.Traffic] += s.PathShares[pi] * fp.Volume
		}
		for ti, tr := range in.Traffics {
			if perT[ti] < cfg.H[ti]*tr.Volume()-1e-6 {
				t.Fatalf("traffic %d floor violated: %g < %g", ti, perT[ti], cfg.H[ti]*tr.Volume())
			}
		}
	}
}

func TestSolveBasic(t *testing.T) {
	in := multiInstance(1, 2)
	cfg := Config{K: 0.9}
	s, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Exact {
		t.Fatal("MILP did not prove optimality")
	}
	if s.Devices() == 0 {
		t.Fatal("no devices placed for k=0.9")
	}
	checkFeasible(t, in, s, cfg)
	if math.Abs(s.Cost-(s.SetupCost+s.ExploitCost)) > 1e-9 {
		t.Fatalf("cost split inconsistent: %g != %g+%g", s.Cost, s.SetupCost, s.ExploitCost)
	}
}

func TestSolveWithPerTrafficFloors(t *testing.T) {
	in := multiInstance(2, 2)
	h := make([]float64, len(in.Traffics))
	for i := range h {
		h[i] = 0.5
	}
	cfg := Config{K: 0.8, H: h}
	s, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, in, s, cfg)
}

func TestSolveFloorsRaiseCost(t *testing.T) {
	in := multiInstance(3, 2)
	base, err := Solve(context.Background(), in, Config{K: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, len(in.Traffics))
	for i := range h {
		h[i] = 0.8
	}
	floored, err := Solve(context.Background(), in, Config{K: 0.8, H: h})
	if err != nil {
		t.Fatal(err)
	}
	if floored.Cost < base.Cost-1e-6 {
		t.Fatalf("adding floors lowered cost: %g < %g", floored.Cost, base.Cost)
	}
}

func TestSolveConfigValidation(t *testing.T) {
	in := multiInstance(4, 1)
	for name, cfg := range map[string]Config{
		"k zero":     {K: 0},
		"k above 1":  {K: 1.2},
		"h len":      {K: 0.9, H: []float64{0.5}},
		"h above k":  {K: 0.5, H: mkH(len(in.Traffics), 0.9)},
		"h negative": {K: 0.9, H: mkH(len(in.Traffics), -0.1)},
	} {
		if _, err := Solve(context.Background(), in, cfg); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func mkH(n int, v float64) []float64 {
	h := make([]float64, n)
	for i := range h {
		h[i] = v
	}
	return h
}

func TestSolveRatesMatchesFixedPlacement(t *testing.T) {
	in := multiInstance(5, 2)
	cfg := Config{K: 0.85}
	full, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-optimizing rates on the placement PPME chose must not cost
	// more (exploitation-wise) than the PPME solution itself.
	rates, err := SolveRates(context.Background(), in, full.Edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, in, rates, cfg)
	if rates.ExploitCost > full.ExploitCost+1e-6 {
		t.Fatalf("PPME* exploitation %g > PPME's %g on the same placement", rates.ExploitCost, full.ExploitCost)
	}
	if rates.SetupCost != 0 {
		t.Fatal("PPME* must report setup cost as sunk")
	}
	// All installed edges are reported, idle ones at rate 0.
	if len(rates.Edges) != len(full.Edges) {
		t.Fatalf("installed set changed: %v vs %v", rates.Edges, full.Edges)
	}
}

func TestSolveRatesInfeasibleWhenStarved(t *testing.T) {
	in := multiInstance(6, 1)
	// A single arbitrary edge usually cannot cover 99.9%.
	few := []graph.EdgeID{0}
	if MaxAchievable(in, few) > 0.99 {
		t.Skip("degenerate topology: one edge covers everything")
	}
	if _, err := SolveRates(context.Background(), in, few, Config{K: 0.999}); err == nil {
		t.Fatal("want infeasibility error")
	}
}

func TestMaxAchievable(t *testing.T) {
	in := multiInstance(7, 2)
	all := make([]graph.EdgeID, in.G.NumEdges())
	for e := range all {
		all[e] = graph.EdgeID(e)
	}
	if f := MaxAchievable(in, all); math.Abs(f-1) > 1e-9 {
		t.Fatalf("all edges achievable = %g, want 1", f)
	}
	if f := MaxAchievable(in, nil); f != 0 {
		t.Fatalf("no edges achievable = %g, want 0", f)
	}
}

// Property: PPME cost is monotone in k, and every solution is feasible.
func TestSolveMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		in := multiInstance(seed, 2)
		prev := 0.0
		for _, k := range []float64{0.5, 0.75, 0.95} {
			cfg := Config{K: k}
			s, err := Solve(context.Background(), in, cfg)
			if err != nil {
				t.Logf("seed %d k=%g: %v", seed, k, err)
				return false
			}
			checkFeasible(t, in, s, cfg)
			if s.Cost < prev-1e-6 {
				t.Logf("seed %d: cost dropped from %g to %g as k rose", seed, prev, s.Cost)
				return false
			}
			prev = s.Cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a single-routed instance with unit install costs and zero
// exploitation cost, PPME degenerates to PPM — same optimal device count
// as the passive ILP.
func TestPPMEDegeneratesToPPM(t *testing.T) {
	in := multiInstance(11, 1)
	cfg := Config{
		K: 0.9,
		Costs: CostModel{
			Install: func(graph.Edge) float64 { return 1 },
			Exploit: func(graph.Edge) float64 { return 0 },
		},
	}
	s, err := Solve(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the passive exact solver on the single-routed view.
	single := &core.Instance{G: in.G}
	for _, mt := range in.Traffics {
		single.Traffics = append(single.Traffics, core.Traffic{
			ID: mt.ID, Path: mt.Routes[0].Path, Volume: mt.Routes[0].Volume,
		})
	}
	// Avoid an import cycle: inline the set-cover optimum via passive's
	// public API is fine — passive does not import sampling.
	opt := passiveOptimum(t, single, 0.9)
	if s.Devices() != opt {
		t.Fatalf("PPME devices %d != PPM optimum %d", s.Devices(), opt)
	}
}

func TestSolveRatesFlowFeasibleAndCheap(t *testing.T) {
	in := multiInstance(31, 2)
	installed := everyEdge(in)
	cfg := Config{K: 0.9}
	lpSol, err := SolveRates(context.Background(), in, installed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := SolveRatesFlow(in, installed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, in, fl, cfg)
	// The repaired flow heuristic can cost more than the LP optimum but
	// never outperform it.
	if fl.ExploitCost < lpSol.ExploitCost-1e-6 {
		t.Fatalf("flow %g beat the LP optimum %g", fl.ExploitCost, lpSol.ExploitCost)
	}
	// And it should stay within a reasonable factor on these instances.
	if fl.ExploitCost > 3*lpSol.ExploitCost+1e-6 {
		t.Fatalf("flow %g far above LP %g", fl.ExploitCost, lpSol.ExploitCost)
	}
}

func TestSolveRatesFlowRejectsFloorsAndStarvation(t *testing.T) {
	in := multiInstance(32, 1)
	if _, err := SolveRatesFlow(in, everyEdge(in), Config{K: 0.9, H: mkH(len(in.Traffics), 0.5)}); err == nil {
		t.Fatal("per-traffic floors accepted")
	}
	few := []graph.EdgeID{0}
	if MaxAchievable(in, few) < 0.99 {
		if _, err := SolveRatesFlow(in, few, Config{K: 0.999}); err == nil {
			t.Fatal("starved install set accepted")
		}
	}
}
