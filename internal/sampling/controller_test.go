package sampling

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// driftSetup returns a POP, its demands, a routed instance and a
// placement able to reach full coverage.
func driftSetup(t *testing.T, seed int64) (*topology.POP, []traffic.Demand, *core.MultiInstance, []int) {
	t.Helper()
	cfg := topology.Config{Routers: 6, InterRouterLinks: 10, Endpoints: 6, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	mi, err := traffic.RouteMulti(pop, demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pop, demands, mi, nil
}

func TestControllerWaitsWhileAboveThreshold(t *testing.T) {
	pop, demands, mi, _ := driftSetup(t, 1)
	// Install on every edge so any k is reachable.
	installed := everyEdge(mi)
	cfg := Config{K: 0.9}
	c, err := NewController(context.Background(), mi, installed, cfg, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if c.AchievedFraction(mi) < 0.9-1e-9 {
		t.Fatalf("initial rates reach %g < k", c.AchievedFraction(mi))
	}
	// Tiny drift: coverage stays above T, no recompute.
	mi2, err := traffic.RouteMulti(pop, traffic.Perturb(demands, 0.01, 99), 2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := c.Observe(context.Background(), mi2)
	if err != nil {
		t.Fatal(err)
	}
	if re || c.Recomputes != 0 {
		t.Fatalf("controller recomputed on negligible drift (achieved %g)", c.AchievedFraction(mi2))
	}
}

func TestControllerRecomputesOnDrift(t *testing.T) {
	pop, demands, mi, _ := driftSetup(t, 2)
	installed := everyEdge(mi)
	cfg := Config{K: 0.9}
	c, err := NewController(context.Background(), mi, installed, cfg, 0.895)
	if err != nil {
		t.Fatal(err)
	}
	// Strong drift: swing volumes so the optimized (minimal) rates no
	// longer cover 89.5%.
	drifted := mi
	recomputed := false
	for round := int64(0); round < 12 && !recomputed; round++ {
		d2 := traffic.Perturb(demands, 0.9, 1000+round)
		var err error
		drifted, err = traffic.RouteMulti(pop, d2, 2)
		if err != nil {
			t.Fatal(err)
		}
		recomputed, err = c.Observe(context.Background(), drifted)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !recomputed {
		t.Skip("perturbations never crossed the threshold on this seed")
	}
	// After recomputation, the new rates must reach k on the new traffic.
	if got := c.AchievedFraction(drifted); got < cfg.K-1e-6 {
		t.Fatalf("post-recompute coverage %g < k=%g", got, cfg.K)
	}
	if c.Recomputes < 1 {
		t.Fatal("recompute counter not incremented")
	}
}

func TestControllerBadThreshold(t *testing.T) {
	_, _, mi, _ := driftSetup(t, 3)
	if _, err := NewController(context.Background(), mi, everyEdge(mi), Config{K: 0.9}, 0.95); err == nil {
		t.Fatal("threshold above k accepted")
	}
	if _, err := NewController(context.Background(), mi, everyEdge(mi), Config{K: 0.9}, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestControllerRatesCopied(t *testing.T) {
	_, _, mi, _ := driftSetup(t, 4)
	c, err := NewController(context.Background(), mi, everyEdge(mi), Config{K: 0.8}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Rates()
	for e := range r {
		r[e] = 42
	}
	for _, v := range c.Rates() {
		if v == 42 {
			t.Fatal("Rates returned internal map")
		}
	}
}

func everyEdge(in *core.MultiInstance) []graph.EdgeID {
	out := make([]graph.EdgeID, in.G.NumEdges())
	for e := range out {
		out[e] = graph.EdgeID(e)
	}
	return out
}
