package sampling

import (
	"math"
	"sort"
)

// TraceStats aggregates a sampled trace per flow.
type TraceStats struct {
	// SampledPackets[flow] counts captured frames per flow.
	SampledPackets map[int]int
	// SampledSYNs counts captured TCP SYN frames.
	SampledSYNs int
	// Total counts all captured frames.
	Total int
}

// CollectTrace runs a sampler over a packet stream and aggregates the
// captured frames.
func CollectTrace(s Sampler, packets []Packet) TraceStats {
	st := TraceStats{SampledPackets: make(map[int]int)}
	for _, p := range packets {
		if !s.Sample(p) {
			continue
		}
		st.Total++
		st.SampledPackets[p.Flow]++
		if p.SYN {
			st.SampledSYNs++
		}
	}
	return st
}

// EstimateFlowCountSYN implements the estimator of Duffield, Lund and
// Thorup [5] cited in §5.2: TCP flows start with a SYN, so the number of
// flows is estimated by the number of sampled SYNs scaled by the inverse
// sampling rate.
func EstimateFlowCountSYN(st TraceStats, rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(st.SampledSYNs) / rate
}

// EstimateFlowSizes scales per-flow sampled counts by the inverse
// sampling rate — the naive estimator whose mice/elephant bias §5.2
// discusses (the Metropolis project observations).
func EstimateFlowSizes(st TraceStats, rate float64) map[int]float64 {
	out := make(map[int]float64, len(st.SampledPackets))
	if rate <= 0 {
		return out
	}
	for f, n := range st.SampledPackets {
		out[f] = float64(n) / rate
	}
	return out
}

// Classification is a mice/elephant split of flows by packet count.
type Classification struct {
	Mice, Elephants []int
}

// Classify splits flows at the given packet-count threshold: flows with
// at least threshold packets are elephants (long flows), the rest mice.
func Classify(sizes map[int]float64, threshold float64) Classification {
	var c Classification
	for f, n := range sizes {
		if n >= threshold {
			c.Elephants = append(c.Elephants, f)
		} else {
			c.Mice = append(c.Mice, f)
		}
	}
	sort.Ints(c.Mice)
	sort.Ints(c.Elephants)
	return c
}

// BiasReport quantifies how sampling distorts flow statistics, the
// §5.2 discussion: with 1-in-1000 sampling most mice are simply never
// seen, while the volume attributed to observed flows is inflated by the
// inverse-rate scaling.
type BiasReport struct {
	// TrueFlows and SeenFlows count flows in the full and sampled trace.
	TrueFlows, SeenFlows int
	// MissedMice counts true mice with zero sampled packets.
	MissedMice int
	// ElephantRecall is the fraction of true elephants classified as
	// elephants from the sampled trace.
	ElephantRecall float64
	// ElephantPrecision is the fraction of sampled-trace elephants that
	// really are elephants.
	ElephantPrecision float64
	// VolumeError is |estimated − true| / true total packet volume.
	VolumeError float64
}

// MeasureBias compares ground-truth per-flow packet counts against the
// estimates from a sampled trace at the given rate and elephant
// threshold.
func MeasureBias(truth map[int]int, st TraceStats, rate, threshold float64) BiasReport {
	rep := BiasReport{TrueFlows: len(truth), SeenFlows: len(st.SampledPackets)}

	trueSizes := make(map[int]float64, len(truth))
	trueTotal := 0.0
	for f, n := range truth {
		trueSizes[f] = float64(n)
		trueTotal += float64(n)
	}
	est := EstimateFlowSizes(st, rate)
	estTotal := 0.0
	for _, v := range est {
		estTotal += v
	}
	if trueTotal > 0 {
		rep.VolumeError = math.Abs(estTotal-trueTotal) / trueTotal
	}

	trueClass := Classify(trueSizes, threshold)
	estClass := Classify(est, threshold)
	isTrueElephant := make(map[int]bool, len(trueClass.Elephants))
	for _, f := range trueClass.Elephants {
		isTrueElephant[f] = true
	}
	for _, f := range trueClass.Mice {
		if st.SampledPackets[f] == 0 {
			rep.MissedMice++
		}
	}
	hit := 0
	for _, f := range estClass.Elephants {
		if isTrueElephant[f] {
			hit++
		}
	}
	if n := len(trueClass.Elephants); n > 0 {
		rep.ElephantRecall = float64(hit) / float64(n)
	}
	if n := len(estClass.Elephants); n > 0 {
		rep.ElephantPrecision = float64(hit) / float64(n)
	}
	return rep
}

// ElephantPosterior implements the Bayesian identification of [14]
// (Mori et al.) cited in §5.2: the probability that a flow with y
// sampled packets (rate r) has at least x packets in the full trace,
// under a flow-size prior given as packet-count frequencies.
//
// prior maps flow size s to its prior probability P(size = s); it need
// not be normalized. The likelihood of observing y samples from a flow
// of size s is Binomial(s, r) at y.
func ElephantPosterior(prior map[int]float64, y int, rate float64, x int) float64 {
	if rate <= 0 || rate > 1 {
		return 0
	}
	num, den := 0.0, 0.0
	for s, p := range prior {
		if p <= 0 || s < y {
			continue
		}
		like := binomialPMF(s, y, rate) * p
		den += like
		if s >= x {
			num += like
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// binomialPMF returns C(n,k) r^k (1-r)^(n-k) computed in log space for
// numerical stability at large n.
func binomialPMF(n, k int, r float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if r <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if r >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lgammaf(n+1) - lgammaf(k+1) - lgammaf(n-k+1) +
		float64(k)*math.Log(r) + float64(n-k)*math.Log1p(-r)
	return math.Exp(lg)
}

func lgammaf(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}
