package sampling

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
)

// SolveRatesFlow is the min-cost-flow formulation of PPME* the paper
// points at in §5.4 ("it is worthy to note that this problem can be
// expressed as a minimum cost flow problem for which efficient
// polynomial time algorithms are available without the need of linear
// programming anymore").
//
// Construction: on the MECF-style graph restricted to installed links,
// routing one unit of flow through w_e corresponds to monitoring one
// unit of volume there; sampling at ratio r_e monitors r_e·load(e)
// units at exploitation cost coste(e)·r_e, i.e. coste(e)/load(e) per
// unit — the arc cost of (S, w_e). The (w_t, T) capacities v_p prevent
// double-counting a path beyond its volume. The flow optimum is a lower
// bound on the LP optimum (the flow may concentrate an edge's budget on
// its cheapest traffics, which per-edge ratios cannot), so the derived
// ratios r_e = flow_e/load(e) are repaired upward by a binary-searched
// uniform boost until the coverage floor holds.
//
// Per-traffic floors (cfg.H) are not supported by the flow model;
// use SolveRates (the LP) when floors matter.
func SolveRatesFlow(in *core.MultiInstance, installed []graph.EdgeID, cfg Config) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	if cfg.H != nil {
		return nil, fmt.Errorf("sampling: SolveRatesFlow does not support per-traffic floors; use SolveRates")
	}
	if MaxAchievable(in, installed) < cfg.K-1e-9 {
		return nil, fmt.Errorf("sampling: installed devices cannot reach k=%g even at full rate", cfg.K)
	}
	costs := cfg.Costs.withDefaults()
	paths := in.Paths()
	m := in.G.NumEdges()

	has := make([]bool, m)
	for _, e := range installed {
		has[e] = true
	}
	// Load per installed edge over the multi-routed paths.
	loads := make([]float64, m)
	for _, fp := range paths {
		for _, e := range fp.Path.Edges {
			loads[e] += fp.Volume
		}
	}

	// Node layout: 0 = S, 1 = T, 2..2+m-1 = w_e, then one per path.
	net := flow.NewNetwork(2 + m + len(paths))
	edgeArc := make([]flow.Arc, m)
	for e := 0; e < m; e++ {
		if !has[e] || loads[e] <= 0 {
			continue
		}
		edge := in.G.Edge(graph.EdgeID(e))
		edgeArc[e] = net.AddArc(0, 2+e, loads[e], costs.Exploit(edge)/loads[e])
	}
	for pi, fp := range paths {
		net.AddArc(2+m+pi, 1, fp.Volume, 0)
		for _, e := range fp.Path.Edges {
			if has[e] && loads[e] > 0 {
				net.AddArc(2+int(e), 2+m+pi, math.Inf(1), 0)
			}
		}
	}
	res := net.MinCostFlow(0, 1, cfg.K*in.TotalVolume())
	if !res.Full {
		return nil, fmt.Errorf("sampling: flow could only route %.3f of the target", res.Sent)
	}

	baseRates := make(map[graph.EdgeID]float64, len(installed))
	for e := 0; e < m; e++ {
		if !has[e] || loads[e] <= 0 {
			continue
		}
		r := net.Flow(edgeArc[e]) / loads[e]
		if r > 1 {
			r = 1
		}
		baseRates[graph.EdgeID(e)] = r
	}

	// Repair: the flow's coverage accounting is optimistic for per-edge
	// ratios; boost all rates by the smallest uniform factor restoring
	// Σ_p min(1, Σ_{e∈p} r_e)·v_p ≥ k·V (factor 1 ≤ β ≤ 1/min-rate; at
	// full rates the floor holds by the MaxAchievable check).
	coverage := func(beta float64) float64 {
		covered := 0.0
		for _, fp := range paths {
			share := 0.0
			for _, e := range fp.Path.Edges {
				r := baseRates[e] * beta
				if has[e] && r > 1 {
					r = 1
				}
				share += r
			}
			if share > 1 {
				share = 1
			}
			covered += share * fp.Volume
		}
		return covered / in.TotalVolume()
	}
	lo, hi := 1.0, 1.0
	for coverage(hi) < cfg.K-1e-12 && hi < 1e9 {
		hi *= 2
	}
	for i := 0; i < 60 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if coverage(mid) >= cfg.K-1e-12 {
			hi = mid
		} else {
			lo = mid
		}
	}
	beta := hi

	sol := &Solution{
		Rates:      make(map[graph.EdgeID]float64, len(installed)),
		PathShares: make([]float64, len(paths)),
		Exact:      false, // heuristic: LP-optimal only when no repair was needed
	}
	sol.Edges = append([]graph.EdgeID(nil), installed...)
	sort.Slice(sol.Edges, func(i, j int) bool { return sol.Edges[i] < sol.Edges[j] })
	for _, e := range sol.Edges {
		r := baseRates[e] * beta
		if r > 1 {
			r = 1
		}
		sol.Rates[e] = r
		sol.ExploitCost += costs.Exploit(in.G.Edge(e)) * r
	}
	for pi, fp := range paths {
		share := 0.0
		for _, e := range fp.Path.Edges {
			share += sol.Rates[e]
		}
		if share > 1 {
			share = 1
		}
		sol.PathShares[pi] = share
		sol.Covered += share * fp.Volume
	}
	sol.Fraction = sol.Covered / in.TotalVolume()
	sol.Cost = sol.ExploitCost
	return sol, nil
}
