package sampling

import (
	"math"
	"math/rand"
	"testing"
)

// stream builds n packets at a constant 1000 pkt/s over `flows` flows,
// round-robin.
func stream(n, flows int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = Packet{
			Time:  float64(i) / 1000,
			Flow:  i % flows,
			Bytes: 1500,
			SYN:   i < flows, // first packet of each flow is its SYN
		}
	}
	return out
}

func countSampled(s Sampler, ps []Packet) int {
	n := 0
	for _, p := range ps {
		if s.Sample(p) {
			n++
		}
	}
	return n
}

func TestRegularExactRate(t *testing.T) {
	s := NewRegular(10)
	got := countSampled(s, stream(1000, 4))
	if got != 100 {
		t.Fatalf("1-in-10 over 1000 packets captured %d, want exactly 100", got)
	}
	if s.Rate() != 0.1 {
		t.Fatalf("rate = %g", s.Rate())
	}
}

func TestRegularReset(t *testing.T) {
	s := NewRegular(3)
	ps := stream(7, 1)
	a := countSampled(s, ps)
	s.Reset()
	b := countSampled(s, ps)
	if a != b {
		t.Fatalf("reset changed behaviour: %d vs %d", a, b)
	}
}

func TestProbabilisticApproximateRate(t *testing.T) {
	s := NewProbabilistic(10, 42)
	got := countSampled(s, stream(100000, 4))
	// Binomial(1e5, 0.1): mean 10000, σ≈95; allow 5σ.
	if got < 9500 || got > 10500 {
		t.Fatalf("probabilistic 1-in-10 captured %d of 100000", got)
	}
}

func TestProbabilisticDeterministicPerSeed(t *testing.T) {
	ps := stream(1000, 2)
	a := countSampled(NewProbabilistic(7, 1), ps)
	b := countSampled(NewProbabilistic(7, 1), ps)
	if a != b {
		t.Fatal("same seed, different captures")
	}
}

func TestProbabilisticRate(t *testing.T) {
	s := NewProbabilisticRate(0.35, 3)
	got := countSampled(s, stream(100000, 4))
	if math.Abs(float64(got)/100000-0.35) > 0.01 {
		t.Fatalf("rate-0.35 sampler captured %d of 100000", got)
	}
	if math.Abs(s.Rate()-0.35) > 1e-12 {
		t.Fatalf("Rate() = %g", s.Rate())
	}
}

func TestGeometricApproximateRate(t *testing.T) {
	s := NewGeometric(10, 42)
	got := countSampled(s, stream(100000, 4))
	if got < 9000 || got > 11000 {
		t.Fatalf("geometric mean-10 captured %d of 100000", got)
	}
	s.Reset()
	again := countSampled(s, stream(100000, 4))
	if got != again {
		t.Fatal("reset not deterministic")
	}
}

func TestTimeBasedCapturesPerInterval(t *testing.T) {
	s := NewTimeBased(0.01) // one capture per 10ms
	// 1 second of packets at 1000 pkt/s → about 100 intervals.
	got := countSampled(s, stream(1000, 4))
	if got < 95 || got > 105 {
		t.Fatalf("time-based captured %d, want ≈100", got)
	}
}

func TestTimeBasedMissesSlowPeriodicFlow(t *testing.T) {
	// §5.2's warning: a flow perfectly synchronized with the sampling
	// interval can dominate the capture. Two flows: flow 0 sends exactly
	// at interval starts, flow 1 sends mid-interval.
	s := NewTimeBased(1.0)
	var ps []Packet
	for i := 0; i < 100; i++ {
		ps = append(ps, Packet{Time: float64(i), Flow: 0})
		ps = append(ps, Packet{Time: float64(i) + 0.5, Flow: 1})
	}
	flow0, flow1 := 0, 0
	for _, p := range ps {
		if s.Sample(p) {
			if p.Flow == 0 {
				flow0++
			} else {
				flow1++
			}
		}
	}
	if flow1 != 0 {
		t.Fatalf("mid-interval flow captured %d times; expected systematic miss", flow1)
	}
	if flow0 < 99 {
		t.Fatalf("interval-aligned flow captured only %d times", flow0)
	}
}

func TestSamplerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"regular 0":    func() { NewRegular(0) },
		"prob 0":       func() { NewProbabilistic(0, 1) },
		"prob rate":    func() { NewProbabilisticRate(1.5, 1) },
		"geometric 0":  func() { NewGeometric(0, 1) },
		"timebased 0":  func() { NewTimeBased(0) },
		"timebased -1": func() { NewTimeBased(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSamplerNames(t *testing.T) {
	for _, s := range []Sampler{NewTimeBased(1), NewRegular(2), NewProbabilistic(2, 1), NewGeometric(2, 1)} {
		if s.Name() == "" {
			t.Fatal("empty sampler name")
		}
	}
}

// elephantTrace builds a trace with many mice (few packets) and a few
// elephants (many packets), shuffled in time.
func elephantTrace(rng *rand.Rand, mice, elephants, micePkts, elephantPkts int) ([]Packet, map[int]int) {
	truth := make(map[int]int)
	var ps []Packet
	flow := 0
	for i := 0; i < mice; i++ {
		truth[flow] = micePkts
		for j := 0; j < micePkts; j++ {
			ps = append(ps, Packet{Flow: flow, SYN: j == 0})
		}
		flow++
	}
	for i := 0; i < elephants; i++ {
		truth[flow] = elephantPkts
		for j := 0; j < elephantPkts; j++ {
			ps = append(ps, Packet{Flow: flow, SYN: j == 0})
		}
		flow++
	}
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	for i := range ps {
		ps[i].Time = float64(i) / 1e6
	}
	return ps, truth
}

func TestMiceElephantBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 1000 mice of 3 packets, 10 elephants of 5000 packets; 1-in-1000
	// sampling as in the Metropolis study quoted in §5.2.
	ps, truth := elephantTrace(rng, 1000, 10, 3, 5000)
	st := CollectTrace(NewProbabilistic(1000, 7), ps)
	rep := MeasureBias(truth, st, 1.0/1000, 1000)
	// Most mice must be entirely missed at this rate.
	if rep.MissedMice < 900 {
		t.Fatalf("missed mice = %d/1000; expected the vast majority", rep.MissedMice)
	}
	// Elephants are large enough to be seen and classified.
	if rep.ElephantRecall < 0.8 {
		t.Fatalf("elephant recall = %g", rep.ElephantRecall)
	}
	if rep.TrueFlows != 1010 || rep.SeenFlows >= rep.TrueFlows {
		t.Fatalf("flows: true %d seen %d", rep.TrueFlows, rep.SeenFlows)
	}
}

func TestSYNFlowCountEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps, truth := elephantTrace(rng, 200, 5, 40, 2000)
	rate := 1.0 / 50
	st := CollectTrace(NewProbabilistic(50, 3), ps)
	est := EstimateFlowCountSYN(st, rate)
	want := float64(len(truth))
	// SYN sampling is binomial with n=205, p=1/50 → mean ≈4.1 flows'
	// SYNs seen; scaled estimate is unbiased but noisy. Accept ±75%.
	if est < want*0.25 || est > want*1.75 {
		t.Fatalf("SYN estimate %g for %g true flows", est, want)
	}
	if EstimateFlowCountSYN(st, 0) != 0 {
		t.Fatal("zero rate must estimate 0")
	}
}

func TestEstimateFlowSizesUnbiasedOnElephants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps, truth := elephantTrace(rng, 0, 5, 0, 10000)
	rate := 1.0 / 100
	st := CollectTrace(NewProbabilistic(100, 13), ps)
	est := EstimateFlowSizes(st, rate)
	for f, true_ := range truth {
		if e := est[f]; math.Abs(e-float64(true_)) > 0.35*float64(true_) {
			t.Fatalf("flow %d: estimate %g vs true %d", f, e, true_)
		}
	}
}

func TestClassify(t *testing.T) {
	c := Classify(map[int]float64{1: 5, 2: 500, 3: 40}, 100)
	if len(c.Elephants) != 1 || c.Elephants[0] != 2 {
		t.Fatalf("elephants = %v", c.Elephants)
	}
	if len(c.Mice) != 2 {
		t.Fatalf("mice = %v", c.Mice)
	}
}

func TestElephantPosterior(t *testing.T) {
	// Prior: flows are size 10 (90%) or size 1000 (10%). Seeing 5
	// sampled packets at rate 1/100 is essentially impossible for a
	// size-10 flow → posterior of being ≥500 must be ≈1.
	prior := map[int]float64{10: 0.9, 1000: 0.1}
	p := ElephantPosterior(prior, 5, 0.01, 500)
	if p < 0.99 {
		t.Fatalf("posterior = %g, want ≈1", p)
	}
	// Seeing 0 packets leans strongly towards the small flow.
	p0 := ElephantPosterior(prior, 0, 0.01, 500)
	if p0 > 0.2 {
		t.Fatalf("posterior with no samples = %g, want small", p0)
	}
	// Degenerate inputs.
	if ElephantPosterior(prior, 3, 0, 500) != 0 {
		t.Fatal("rate 0 must give 0")
	}
	if ElephantPosterior(map[int]float64{}, 3, 0.5, 10) != 0 {
		t.Fatal("empty prior must give 0")
	}
}

func TestBinomialPMF(t *testing.T) {
	// Exhaustive check against direct computation for small n.
	for n := 0; n <= 12; n++ {
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += binomialPMF(n, k, 0.3)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("PMF over n=%d sums to %g", n, sum)
		}
	}
	if binomialPMF(5, 6, 0.5) != 0 || binomialPMF(5, -1, 0.5) != 0 {
		t.Fatal("out-of-range k must give 0")
	}
	if binomialPMF(4, 4, 1) != 1 || binomialPMF(4, 0, 0) != 1 {
		t.Fatal("degenerate rates wrong")
	}
	if binomialPMF(4, 2, 1) != 0 || binomialPMF(4, 2, 0) != 0 {
		t.Fatal("degenerate rates wrong for partial k")
	}
}
