// Package sampling implements §5 of the paper: passive monitoring with
// packet-sampling devices.
//
// It provides the MILP PPME(h,k) (Linear program 3) that places devices
// and assigns sampling ratios minimizing setup plus exploitation cost,
// the polynomial re-optimization PPME*(x,h,k) for dynamic traffic
// (§5.4) together with the threshold controller of that section, the
// four sampling techniques of §5.2 (time-based, 1-in-N regular,
// probabilistic, and probability-distribution-based), and the traffic
// estimators discussed in §5.2 (SYN-count flow estimation [5], Bayesian
// elephant identification [14], mice/elephant bias measurement).
package sampling

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mip"
)

// CostModel gives the two per-link cost functions of §5.3: costi(e), the
// setup cost of installing a tap device on link e, and coste(e), the
// exploitation cost coefficient charged per unit of sampling ratio.
// The paper notes exploitation cost is "generally a nondecreasing
// concave function" of the rate; LP 3 charges it linearly (that is what
// makes the program a MILP rather than [22]'s nonlinear program), so
// coste(e) is the linear coefficient.
type CostModel struct {
	Install func(e graph.Edge) float64
	Exploit func(e graph.Edge) float64
}

// DefaultCosts charges a unit setup cost per device and an exploitation
// coefficient of 0.5 per full-rate device, so setup dominates but rates
// still matter — the regime the paper's discussion assumes.
func DefaultCosts() CostModel {
	return CostModel{
		Install: func(graph.Edge) float64 { return 1 },
		Exploit: func(graph.Edge) float64 { return 0.5 },
	}
}

func (c CostModel) withDefaults() CostModel {
	d := DefaultCosts()
	if c.Install == nil {
		c.Install = d.Install
	}
	if c.Exploit == nil {
		c.Exploit = d.Exploit
	}
	return c
}

// Config parameterizes PPME solves.
type Config struct {
	// K is the global coverage floor: at least K of the total volume
	// must be monitored.
	K float64
	// H holds the per-traffic floors h_t (one entry per traffic of the
	// instance, h_t ∈ [0,1]); nil means no per-traffic floor. The paper
	// notes h_t ≤ k; Validate enforces it.
	H []float64
	// Costs is the cost model; zero value = DefaultCosts.
	Costs CostModel
	// MaxNodes caps the MILP branch-and-bound (0 = default).
	MaxNodes int
	// Gap is the absolute optimality gap for branch-and-bound pruning
	// (0 = solver default).
	Gap float64
	// RelGap is the relative optimality gap (0 = off); see mip.Options.
	RelGap float64
}

func (cfg Config) validate(in *core.MultiInstance) error {
	if cfg.K <= 0 || cfg.K > 1 {
		return fmt.Errorf("sampling: K = %g outside (0,1]", cfg.K)
	}
	if cfg.H != nil {
		if len(cfg.H) != len(in.Traffics) {
			return fmt.Errorf("sampling: %d per-traffic floors for %d traffics", len(cfg.H), len(in.Traffics))
		}
		for t, h := range cfg.H {
			if h < 0 || h > 1 {
				return fmt.Errorf("sampling: h[%d] = %g outside [0,1]", t, h)
			}
			if h > cfg.K+1e-12 {
				return fmt.Errorf("sampling: h[%d] = %g exceeds k = %g (paper requires h_t ≤ k)", t, h, cfg.K)
			}
		}
	}
	return nil
}

// Solution is the result of a PPME or PPME* solve.
type Solution struct {
	// Edges lists links carrying a device (x_e = 1), sorted.
	Edges []graph.EdgeID
	// Rates holds the sampling ratio r_e of every equipped link.
	Rates map[graph.EdgeID]float64
	// PathShares holds δ_p per flattened path (same order as
	// MultiInstance.Paths).
	PathShares []float64
	// SetupCost and ExploitCost split the objective; Cost is their sum.
	SetupCost, ExploitCost, Cost float64
	// Covered is the monitored volume Σ δ_p·v_p; Fraction divides by
	// the total volume.
	Covered, Fraction float64
	// Exact is true when the MILP solved to optimality (always true for
	// the LP-based PPME*); a canceled or node-capped solve reports its
	// incumbent with Exact = false.
	Exact bool
	// Stats carries the solver effort counters.
	Stats core.SolveStats
}

// Devices returns the number of installed devices.
func (s *Solution) Devices() int { return len(s.Edges) }

// Rate returns the sampling ratio assigned to edge e (0 when no device).
func (s *Solution) Rate(e graph.EdgeID) float64 { return s.Rates[e] }

// Solve solves PPME(h,k) — Linear program 3 of §5.3 — exactly: which
// links get a sampling-capable device and at which ratio, minimizing
// setup plus exploitation cost subject to the per-traffic floors h and
// the global floor k. Cancelling ctx mid-solve returns the best
// incumbent found so far with Exact = false (the full-rate warm start
// guarantees one exists).
func Solve(ctx context.Context, in *core.MultiInstance, cfg Config) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	costs := cfg.Costs.withDefaults()
	paths := in.Paths()
	m := in.G.NumEdges()

	p := mip.NewProblem(lp.Minimize)
	xs := make([]lp.Var, m)
	rs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		edge := in.G.Edge(graph.EdgeID(e))
		xs[e] = p.AddBinaryVariable(fmt.Sprintf("x%d", e), costs.Install(edge))
		rs[e] = p.AddVariable(fmt.Sprintf("r%d", e), 0, 1, costs.Exploit(edge))
	}
	ds := make([]lp.Var, len(paths))
	for pi := range paths {
		ds[pi] = p.AddVariable(fmt.Sprintf("d%d", pi), 0, 1, 0)
	}

	buildRows(p.AddConstraint, in, paths, cfg, xs, rs, ds)

	// Warm start: everything installed at full rate is always feasible
	// (δ_p = 1 everywhere); it gives branch-and-bound a finite bound
	// from the first node.
	inc := make([]float64, p.NumVariables())
	for e := 0; e < m; e++ {
		inc[xs[e]] = 1
		inc[rs[e]] = 1
	}
	for pi := range paths {
		inc[ds[pi]] = 1
	}
	p.SetOptions(mip.Options{MaxNodes: cfg.MaxNodes, Gap: cfg.Gap, RelGap: cfg.RelGap, Incumbent: inc})
	sol, err := p.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	exact := true
	switch sol.Status {
	case lp.Optimal:
	case lp.Canceled, lp.IterLimit:
		if sol.X == nil {
			return nil, fmt.Errorf("sampling: PPME solve ended with status %v and no incumbent", sol.Status)
		}
		exact = false
	default:
		return nil, fmt.Errorf("sampling: PPME solve ended with status %v", sol.Status)
	}
	out := extract(in, paths, cfg, costs, xs, rs, ds, sol.X, exact)
	out.Stats = core.SolveStats{Nodes: sol.Nodes, Pivots: sol.Pivots,
		Refactorizations: sol.Refactorizations, DevexResets: sol.DevexResets, WarmStarts: sol.WarmStarts,
		CutsAdded: sol.CutsAdded, VarsFixed: sol.VarsFixed, PresolveRemoved: sol.PresolveRemoved,
		StrongBranches: sol.StrongBranches, Bound: sol.Bound}
	return out, nil
}

// constraintAdder matches both lp.Problem.AddConstraint and
// mip.Problem.AddConstraint.
type constraintAdder func(rel lp.Rel, rhs float64, terms ...lp.Term)

// buildRows adds the LP 3 constraint rows shared by Solve and
// SolveRates:
//
//	Σ_{e∈p} r_e ≥ δ_p                  per path
//	x_e ≥ r_e                          per edge (Solve only; xs nil skips)
//	Σ_{p∈P_t} δ_p v_p ≥ h_t Σ v_p      per traffic with a floor
//	Σ_p δ_p v_p ≥ k Σ_p v_p            global
func buildRows(add constraintAdder, in *core.MultiInstance, paths []core.FlatPath, cfg Config, xs, rs, ds []lp.Var) {
	for pi, fp := range paths {
		terms := make([]lp.Term, 0, fp.Path.Len()+1)
		for _, e := range fp.Path.Edges {
			terms = append(terms, lp.Term{Var: rs[e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: ds[pi], Coef: -1})
		add(lp.GE, 0, terms...)
	}
	if xs != nil {
		for e := range xs {
			add(lp.GE, 0, lp.Term{Var: xs[e], Coef: 1}, lp.Term{Var: rs[e], Coef: -1})
		}
	}
	if cfg.H != nil {
		for ti, t := range in.Traffics {
			if cfg.H[ti] <= 0 {
				continue
			}
			var terms []lp.Term
			for pi, fp := range paths {
				if fp.Traffic == ti {
					terms = append(terms, lp.Term{Var: ds[pi], Coef: fp.Volume})
				}
			}
			add(lp.GE, cfg.H[ti]*t.Volume(), terms...)
		}
	}
	global := make([]lp.Term, len(paths))
	for pi, fp := range paths {
		global[pi] = lp.Term{Var: ds[pi], Coef: fp.Volume}
	}
	add(lp.GE, cfg.K*in.TotalVolume(), global...)
}

// extract converts raw solver values into a Solution.
func extract(in *core.MultiInstance, paths []core.FlatPath, cfg Config, costs CostModel, xs, rs, ds []lp.Var, x []float64, exact bool) *Solution {
	s := &Solution{
		Rates:      make(map[graph.EdgeID]float64),
		PathShares: make([]float64, len(paths)),
		Exact:      exact,
	}
	for e := range rs {
		id := graph.EdgeID(e)
		edge := in.G.Edge(id)
		installed := false
		if xs != nil {
			installed = x[xs[e]] > 0.5
		} else {
			installed = x[rs[e]] > 1e-9
		}
		if !installed {
			continue
		}
		s.Edges = append(s.Edges, id)
		r := x[rs[e]]
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		s.Rates[id] = r
		s.SetupCost += costs.Install(edge)
		s.ExploitCost += costs.Exploit(edge) * r
	}
	sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i] < s.Edges[j] })
	for pi, fp := range paths {
		d := x[ds[pi]]
		if d < 0 {
			d = 0
		}
		if d > 1 {
			d = 1
		}
		s.PathShares[pi] = d
		s.Covered += d * fp.Volume
	}
	if tv := in.TotalVolume(); tv > 0 {
		s.Fraction = s.Covered / tv
	}
	s.Cost = s.SetupCost + s.ExploitCost
	return s
}

// SolveRates solves PPME*(x,h,k) of §5.4: device positions are frozen
// (the installed list), only sampling ratios are re-optimized. With the
// binaries gone the model is a pure LP, solved in polynomial time — the
// operation the paper's dynamic-traffic strategy performs on every
// threshold crossing. It returns an error when the installed devices
// cannot reach the floors even at full rate.
func SolveRates(ctx context.Context, in *core.MultiInstance, installed []graph.EdgeID, cfg Config) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(in); err != nil {
		return nil, err
	}
	costs := cfg.Costs.withDefaults()
	paths := in.Paths()
	m := in.G.NumEdges()
	has := make([]bool, m)
	for _, e := range installed {
		has[e] = true
	}

	p := lp.NewProblem(lp.Minimize)
	rs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		hi := 0.0
		if has[e] {
			hi = 1.0
		}
		// Uninstalled links are fixed at rate 0 (their x_e is a frozen
		// constant 0 in the paper's formulation).
		rs[e] = p.AddVariable(fmt.Sprintf("r%d", e), 0, hi, costs.Exploit(in.G.Edge(graph.EdgeID(e))))
	}
	ds := make([]lp.Var, len(paths))
	for pi := range paths {
		ds[pi] = p.AddVariable(fmt.Sprintf("d%d", pi), 0, 1, 0)
	}
	buildRows(p.AddConstraint, in, paths, cfg, nil, rs, ds)

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("sampling: installed devices cannot reach k=%g even at full rate", cfg.K)
	default:
		return nil, fmt.Errorf("sampling: PPME* solve ended with status %v", sol.Status)
	}
	out := extract(in, paths, cfg, costs, nil, rs, ds, sol.X, true)
	out.Stats.Pivots = sol.Iterations
	out.Stats.Refactorizations = sol.Refactorizations
	out.Stats.DevexResets = sol.DevexResets
	// The installed set is an input for PPME*: report it as-is, with
	// explicit zero rates for devices the optimum leaves idle, and count
	// setup cost as sunk (only exploitation spending is reported).
	out.Edges = append([]graph.EdgeID(nil), installed...)
	sort.Slice(out.Edges, func(i, j int) bool { return out.Edges[i] < out.Edges[j] })
	for _, e := range out.Edges {
		if _, ok := out.Rates[e]; !ok {
			out.Rates[e] = 0
		}
	}
	out.SetupCost = 0
	out.Cost = out.ExploitCost
	return out, nil
}

// MaxAchievable returns the largest global coverage fraction the
// installed devices can reach at full sampling rate — the feasibility
// ceiling of PPME*(x,·,·).
func MaxAchievable(in *core.MultiInstance, installed []graph.EdgeID) float64 {
	has := make([]bool, in.G.NumEdges())
	for _, e := range installed {
		has[e] = true
	}
	covered := 0.0
	for _, fp := range in.Paths() {
		for _, e := range fp.Path.Edges {
			if has[e] {
				covered += fp.Volume
				break
			}
		}
	}
	tv := in.TotalVolume()
	if tv == 0 {
		return 0
	}
	return covered / tv
}
