package sampling

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// Campaign implements the third perspective of the paper's conclusion
// (§7): a measurement campaign where the operator of a POP "can modify
// the routing strategy in order to maximize the monitoring ratio, given
// a set of already installed measurement points".
//
// Each traffic may be steered onto any of its candidate routes (the
// load-balancing alternatives of §5). With device positions and
// sampling rates fixed, route choices are independent across traffics:
// the campaign selects, per traffic, the route with the highest
// monitored share min(1, Σ_{e∈route} r_e).
//
// It returns the re-routed instance (one chosen route per traffic,
// carrying the traffic's full volume) and the resulting coverage
// fraction.
func Campaign(in *core.MultiInstance, rates map[graph.EdgeID]float64) (*core.MultiInstance, float64) {
	out := &core.MultiInstance{G: in.G}
	covered := 0.0
	total := 0.0
	for _, t := range in.Traffics {
		vol := t.Volume()
		total += vol
		best := 0
		bestShare := -1.0
		for ri, r := range t.Routes {
			share := 0.0
			for _, e := range r.Path.Edges {
				share += rates[e]
			}
			if share > 1 {
				share = 1
			}
			// Ties: prefer the cheaper (earlier, shortest-first) route,
			// so the campaign does not degrade routing needlessly.
			if share > bestShare+1e-12 {
				best, bestShare = ri, share
			}
		}
		covered += bestShare * vol
		out.Traffics = append(out.Traffics, core.MultiTraffic{
			ID:  t.ID,
			Src: t.Src,
			Dst: t.Dst,
			Routes: []core.Route{{
				Path:   t.Routes[best].Path.Clone(),
				Volume: vol,
			}},
		})
	}
	if total == 0 {
		return out, 0
	}
	return out, covered / total
}

// CampaignGain compares the coverage of the default routing (volumes
// split over all routes) with the campaign's optimized routing under
// the same devices and rates, returning both fractions.
func CampaignGain(in *core.MultiInstance, rates map[graph.EdgeID]float64) (before, after float64) {
	covered := 0.0
	for _, fp := range in.Paths() {
		share := 0.0
		for _, e := range fp.Path.Edges {
			share += rates[e]
		}
		if share > 1 {
			share = 1
		}
		covered += share * fp.Volume
	}
	if tv := in.TotalVolume(); tv > 0 {
		before = covered / tv
	}
	_, after = Campaign(in, rates)
	return before, after
}
