package sampling

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/passive"
)

// passiveOptimum returns the exact PPM(k) device count via the passive
// package (no import cycle: passive does not depend on sampling).
func passiveOptimum(t *testing.T, in *core.Instance, k float64) int {
	t.Helper()
	pl := passive.ExactCover(context.Background(), in, k, cover.ExactOptions{})
	if !pl.Exact {
		t.Fatal("passive optimum not proven")
	}
	return pl.Devices()
}
