package sampling

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestCampaignPrefersMonitoredRoute(t *testing.T) {
	in := multiInstance(21, 3)
	// Install a single device at full rate on edge 0.
	rates := map[graph.EdgeID]float64{0: 1}
	rerouted, after := Campaign(in, rates)
	if err := rerouted.Validate(); err != nil {
		t.Fatal(err)
	}
	before, after2 := CampaignGain(in, rates)
	if after != after2 {
		t.Fatalf("Campaign and CampaignGain disagree: %g vs %g", after, after2)
	}
	if after < before-1e-9 {
		t.Fatalf("campaign decreased coverage: %g -> %g", before, after)
	}
	// Every traffic keeps its volume and endpoints on exactly one route.
	if len(rerouted.Traffics) != len(in.Traffics) {
		t.Fatal("traffic count changed")
	}
	for i, tr := range rerouted.Traffics {
		if len(tr.Routes) != 1 {
			t.Fatalf("traffic %d has %d routes after campaign", i, len(tr.Routes))
		}
		if tr.Volume() != in.Traffics[i].Volume() {
			t.Fatalf("traffic %d volume changed: %g vs %g", i, tr.Volume(), in.Traffics[i].Volume())
		}
	}
}

// Property: the campaign never lowers coverage and its result is the
// per-traffic maximum over candidate routes.
func TestCampaignProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := multiInstance(seed, 3)
		// Devices on every third edge at mixed rates.
		rates := map[graph.EdgeID]float64{}
		for e := 0; e < in.G.NumEdges(); e += 3 {
			rates[graph.EdgeID(e)] = 0.25 + float64(e%4)*0.25
		}
		before, after := CampaignGain(in, rates)
		if after < before-1e-9 {
			t.Logf("seed %d: coverage dropped %g -> %g", seed, before, after)
			return false
		}
		// Manual per-traffic maximum check.
		want := 0.0
		total := 0.0
		for _, tr := range in.Traffics {
			best := 0.0
			for _, r := range tr.Routes {
				share := 0.0
				for _, e := range r.Path.Edges {
					share += rates[e]
				}
				if share > 1 {
					share = 1
				}
				if share > best {
					best = share
				}
			}
			want += best * tr.Volume()
			total += tr.Volume()
		}
		want /= total
		if diff := want - after; diff > 1e-9 || diff < -1e-9 {
			t.Logf("seed %d: campaign %g != per-traffic max %g", seed, after, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignWithSolvedRates(t *testing.T) {
	in := multiInstance(22, 3)
	sol, err := Solve(context.Background(), in, Config{K: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	before, after := CampaignGain(in, sol.Rates)
	if before < 0.75-1e-6 {
		t.Fatalf("solved coverage %g below k", before)
	}
	if after < before-1e-9 {
		t.Fatal("campaign lost coverage on a solved deployment")
	}
}
