package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Packet is one frame crossing a monitored link, as seen by a tap
// device. Time is in seconds since the start of the trace.
type Packet struct {
	Time float64
	// Flow identifies the flow the packet belongs to (5-tuple stand-in).
	Flow int
	// Bytes is the frame size.
	Bytes int
	// SYN marks a TCP connection-opening segment, used by the
	// SYN-counting estimator of [5].
	SYN bool
}

// Sampler decides, packet by packet, whether a frame is captured. The
// four implementations are the techniques reviewed in §5.2 (after
// Duffield [4]). Samplers are stateful and not safe for concurrent use;
// Reset returns them to their initial state.
type Sampler interface {
	// Sample reports whether the packet is captured. Packets must be
	// offered in non-decreasing Time order.
	Sample(p Packet) bool
	Reset()
	// Rate returns the nominal sampling rate (fraction of packets the
	// sampler aims to keep, 1/N for the count-based techniques).
	Rate() float64
	Name() string
}

// timeBased captures the first frame seen in every interval of width
// `interval` seconds. §5.2 warns it can systematically miss flows that
// are time-synchronized with the interval, especially on slow links.
type timeBased struct {
	interval float64
	nextSlot float64
	started  bool
}

// NewTimeBased returns a time-based sampler capturing one frame per
// `interval` seconds.
func NewTimeBased(interval float64) Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("sampling: non-positive interval %g", interval))
	}
	return &timeBased{interval: interval}
}

func (s *timeBased) Sample(p Packet) bool {
	if !s.started {
		s.started = true
		s.nextSlot = math.Floor(p.Time/s.interval)*s.interval + s.interval
		return true
	}
	if p.Time >= s.nextSlot {
		s.nextSlot = math.Floor(p.Time/s.interval)*s.interval + s.interval
		return true
	}
	return false
}

func (s *timeBased) Reset()        { s.started = false; s.nextSlot = 0 }
func (s *timeBased) Rate() float64 { return math.NaN() } // rate depends on packet arrival rate
func (s *timeBased) Name() string  { return "time-based" }

// regular captures exactly one frame every N frames (periodic
// sampling). §5.2: better than time-based at catching bursts, but still
// biased by periodic traffic.
type regular struct {
	n     int
	count int
}

// NewRegular returns a 1-in-N deterministic sampler.
func NewRegular(n int) Sampler {
	if n < 1 {
		panic(fmt.Sprintf("sampling: N = %d < 1", n))
	}
	return &regular{n: n}
}

func (s *regular) Sample(Packet) bool {
	s.count++
	if s.count == s.n {
		s.count = 0
		return true
	}
	return false
}

func (s *regular) Reset()        { s.count = 0 }
func (s *regular) Rate() float64 { return 1 / float64(s.n) }
func (s *regular) Name() string  { return "regular" }

// probabilistic captures each frame independently with probability 1/N.
type probabilistic struct {
	p    float64
	seed int64
	rng  *rand.Rand
}

// NewProbabilistic returns an independent-coin sampler with capture
// probability 1/n; seed makes traces reproducible.
func NewProbabilistic(n int, seed int64) Sampler {
	if n < 1 {
		panic(fmt.Sprintf("sampling: N = %d < 1", n))
	}
	return &probabilistic{p: 1 / float64(n), seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// NewProbabilisticRate is NewProbabilistic with an arbitrary rate in
// [0,1] — the form the placement solutions use, where a device on link e
// samples at the optimized ratio r_e.
func NewProbabilisticRate(rate float64, seed int64) Sampler {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("sampling: rate %g outside [0,1]", rate))
	}
	return &probabilistic{p: rate, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

func (s *probabilistic) Sample(Packet) bool { return s.rng.Float64() < s.p }
func (s *probabilistic) Reset()             { s.rng = rand.New(rand.NewSource(s.seed)) }
func (s *probabilistic) Rate() float64      { return s.p }
func (s *probabilistic) Name() string       { return "probabilistic" }

// geometric captures one frame every X frames with X geometrically
// distributed with mean N — the "probability distribution-based"
// technique of §5.2.
type geometric struct {
	n    int
	seed int64
	rng  *rand.Rand
	gap  int
}

// NewGeometric returns a distribution-based sampler with mean gap n.
func NewGeometric(n int, seed int64) Sampler {
	if n < 1 {
		panic(fmt.Sprintf("sampling: N = %d < 1", n))
	}
	s := &geometric{n: n, seed: seed, rng: rand.New(rand.NewSource(seed))}
	s.gap = s.draw()
	return s
}

func (s *geometric) draw() int {
	// Geometric with success probability 1/n, support {1, 2, ...}.
	p := 1 / float64(s.n)
	u := s.rng.Float64()
	return 1 + int(math.Log(1-u)/math.Log(1-p))
}

func (s *geometric) Sample(Packet) bool {
	s.gap--
	if s.gap <= 0 {
		s.gap = s.draw()
		return true
	}
	return false
}

func (s *geometric) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.gap = s.draw()
}
func (s *geometric) Rate() float64 { return 1 / float64(s.n) }
func (s *geometric) Name() string  { return "geometric" }
