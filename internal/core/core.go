// Package core defines the shared problem model of the paper (§4.1): a
// POP modelled as a graph G = (V, E) plus a set of traffics, each a
// weighted path (single-routed, §4) or a set of weighted routes between
// one source/destination pair (multi-routed, §5). Every solver package
// (passive, sampling, active) consumes these types.
package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// SolveStats aggregates the effort counters of an exact solver run.
// Every solver package (passive, sampling, active) attaches one to its
// result so the facade can report how hard a solve was and how tight
// the proof is.
type SolveStats struct {
	// Nodes is the number of branch-and-bound nodes explored (0 for
	// pure heuristics).
	Nodes int
	// Pivots is the total simplex iterations across all LP relaxations
	// (0 for combinatorial solvers).
	Pivots int
	// Refactorizations is the total basis LU refactorizations of the
	// sparse revised simplex across all LP relaxations.
	Refactorizations int
	// DevexResets is the total Devex pricing reference-framework
	// resets across all LP relaxations.
	DevexResets int
	// WarmStarts is the number of branch-and-bound nodes whose LP
	// relaxation was warm-started from the parent's basis.
	WarmStarts int
	// CutsAdded is the number of cutting planes (lifted cover and
	// clique cuts) the MIP root separation added.
	CutsAdded int
	// VarsFixed is the number of variables permanently fixed by
	// reduced-cost fixing (MIP root and incumbent improvements, plus
	// the cover solver's reduced-cost set exclusions).
	VarsFixed int
	// PresolveRemoved is the number of columns and rows the MIP
	// presolve removed before the root solve.
	PresolveRemoved int
	// StrongBranches is the number of strong-branching probe LPs solved
	// to initialize pseudo-cost branching.
	StrongBranches int
	// SubtreeTasks is the number of independent subtree tasks the
	// parallel cover branch-and-bound dispatched over its worker pool
	// (0 when the search closed within the serial burn-in).
	SubtreeTasks int
	// Steals is the number of subtree tasks executed by a worker other
	// than the task's round-robin home worker — the load-balancing
	// traffic of the parallel tree search.
	Steals int
	// DominancePrunes is the number of sets the cover search excluded by
	// residual-coverage dominance (in the exclude branch, any set whose
	// residual coverage is contained in the branched set's), separating
	// dominance-pruned from bound-pruned work.
	DominancePrunes int
	// Degraded counts solves answered by a fallback solver after the
	// primary errored (the facade's WithFallback ladder).
	Degraded int
	// Bound is the best proven bound on the objective; it equals the
	// objective at optimality and is meaningful only when Proven or an
	// early-stopped exact search produced it.
	Bound float64
}

// Traffic is a single-routed traffic: the aggregation of all IP flows
// following one path through the POP, with the bandwidth routed along it
// (the paper's (p_t, v_t) pairs).
type Traffic struct {
	ID     int
	Path   graph.Path
	Volume float64
}

// Route is one weighted path of a multi-routed traffic.
type Route struct {
	Path   graph.Path
	Volume float64
}

// MultiTraffic is a §5 traffic: a set of weighted routes between the
// same source and destination (load-balanced routing). Its total volume
// is the sum of route volumes.
type MultiTraffic struct {
	ID       int
	Src, Dst graph.NodeID
	Routes   []Route
}

// Volume returns the total bandwidth of the multi-routed traffic.
func (m MultiTraffic) Volume() float64 {
	v := 0.0
	for _, r := range m.Routes {
		v += r.Volume
	}
	return v
}

// Instance is a single-routed PPM(k) instance: the POP graph and its
// traffics.
type Instance struct {
	G        *graph.Graph
	Traffics []Traffic
}

// TotalVolume returns V = Σ v_t.
func (in *Instance) TotalVolume() float64 {
	v := 0.0
	for _, t := range in.Traffics {
		v += t.Volume
	}
	return v
}

// EdgeLoads returns, per edge, the sum of the volumes of the traffics
// crossing it (the paper's link load).
func (in *Instance) EdgeLoads() []float64 {
	loads := make([]float64, in.G.NumEdges())
	for _, t := range in.Traffics {
		for _, e := range t.Path.Edges {
			loads[e] += t.Volume
		}
	}
	return loads
}

// TrafficsOnEdge returns, per edge e, the indices (into Traffics) of the
// traffics whose path uses e — the paper's π_e sets.
func (in *Instance) TrafficsOnEdge() [][]int {
	onEdge := make([][]int, in.G.NumEdges())
	for ti, t := range in.Traffics {
		for _, e := range t.Path.Edges {
			onEdge[e] = append(onEdge[e], ti)
		}
	}
	return onEdge
}

// Validate checks that every traffic path is consistent with the graph
// and volumes are positive and finite.
func (in *Instance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("core: nil graph")
	}
	for i, t := range in.Traffics {
		if t.Volume <= 0 || math.IsNaN(t.Volume) || math.IsInf(t.Volume, 0) {
			return fmt.Errorf("core: traffic %d has bad volume %g", i, t.Volume)
		}
		if err := t.Path.Validate(in.G); err != nil {
			return fmt.Errorf("core: traffic %d: %w", i, err)
		}
	}
	return nil
}

// MultiInstance is a §5 instance with multi-routed traffics.
type MultiInstance struct {
	G        *graph.Graph
	Traffics []MultiTraffic
}

// TotalVolume returns the total bandwidth over all traffics and routes.
func (in *MultiInstance) TotalVolume() float64 {
	v := 0.0
	for _, t := range in.Traffics {
		v += t.Volume()
	}
	return v
}

// Paths returns all routes of all traffics in a flat list, with each
// entry keeping a reference to its traffic index. The order is the
// paper's P = ∪_t P_t.
func (in *MultiInstance) Paths() []FlatPath {
	var out []FlatPath
	for ti, t := range in.Traffics {
		for ri, r := range t.Routes {
			out = append(out, FlatPath{Traffic: ti, Route: ri, Path: r.Path, Volume: r.Volume})
		}
	}
	return out
}

// FlatPath is one route of one traffic in a flattened MultiInstance.
type FlatPath struct {
	Traffic int
	Route   int
	Path    graph.Path
	Volume  float64
}

// Validate checks route consistency: positive volumes, valid paths, and
// that every route of a traffic joins the traffic's endpoints.
func (in *MultiInstance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("core: nil graph")
	}
	for i, t := range in.Traffics {
		if len(t.Routes) == 0 {
			return fmt.Errorf("core: multi-traffic %d has no routes", i)
		}
		for j, r := range t.Routes {
			if r.Volume <= 0 || math.IsNaN(r.Volume) || math.IsInf(r.Volume, 0) {
				return fmt.Errorf("core: multi-traffic %d route %d has bad volume %g", i, j, r.Volume)
			}
			if err := r.Path.Validate(in.G); err != nil {
				return fmt.Errorf("core: multi-traffic %d route %d: %w", i, j, err)
			}
			if r.Path.Src() != t.Src || r.Path.Dst() != t.Dst {
				return fmt.Errorf("core: multi-traffic %d route %d joins %d-%d, want %d-%d",
					i, j, r.Path.Src(), r.Path.Dst(), t.Src, t.Dst)
			}
		}
	}
	return nil
}

// Single converts a single-routed instance into the multi-routed model
// with one route per traffic, so §5 solvers can run on §4 instances.
func (in *Instance) Single() *MultiInstance {
	mi := &MultiInstance{G: in.G}
	for _, t := range in.Traffics {
		mi.Traffics = append(mi.Traffics, MultiTraffic{
			ID:     t.ID,
			Src:    t.Path.Src(),
			Dst:    t.Path.Dst(),
			Routes: []Route{{Path: t.Path, Volume: t.Volume}},
		})
	}
	return mi
}
