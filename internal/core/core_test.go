package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// buildLine returns a 4-node line graph and a helper to make paths.
func buildLine(t *testing.T) (*graph.Graph, func(from, to graph.NodeID) graph.Path) {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddNode("n")
	}
	for i := 0; i < 3; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 100)
	}
	return g, func(from, to graph.NodeID) graph.Path {
		p, ok := g.ShortestPath(from, to)
		if !ok {
			t.Fatalf("no path %d->%d", from, to)
		}
		return p
	}
}

func TestInstanceAggregates(t *testing.T) {
	g, sp := buildLine(t)
	in := &Instance{G: g, Traffics: []Traffic{
		{ID: 0, Path: sp(0, 3), Volume: 2}, // edges 0,1,2
		{ID: 1, Path: sp(1, 2), Volume: 5}, // edge 1
	}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.TotalVolume() != 7 {
		t.Fatalf("total = %g, want 7", in.TotalVolume())
	}
	loads := in.EdgeLoads()
	want := []float64{2, 7, 2}
	for e, w := range want {
		if loads[e] != w {
			t.Fatalf("load[%d] = %g, want %g", e, loads[e], w)
		}
	}
	onEdge := in.TrafficsOnEdge()
	if len(onEdge[1]) != 2 || len(onEdge[0]) != 1 || onEdge[0][0] != 0 {
		t.Fatalf("traffics on edge = %v", onEdge)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	g, sp := buildLine(t)
	cases := []*Instance{
		{G: nil},
		{G: g, Traffics: []Traffic{{Path: sp(0, 1), Volume: 0}}},
		{G: g, Traffics: []Traffic{{Path: sp(0, 1), Volume: math.NaN()}}},
		{G: g, Traffics: []Traffic{{Path: graph.Path{}, Volume: 1}}},
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestMultiTrafficVolume(t *testing.T) {
	g, sp := buildLine(t)
	mt := MultiTraffic{Src: 0, Dst: 3, Routes: []Route{
		{Path: sp(0, 3), Volume: 3},
		{Path: sp(0, 3), Volume: 2},
	}}
	if mt.Volume() != 5 {
		t.Fatalf("volume = %g, want 5", mt.Volume())
	}
	_ = g
}

func TestMultiInstanceValidate(t *testing.T) {
	g, sp := buildLine(t)
	good := &MultiInstance{G: g, Traffics: []MultiTraffic{
		{Src: 0, Dst: 3, Routes: []Route{{Path: sp(0, 3), Volume: 1}}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*MultiInstance{
		{G: nil},
		{G: g, Traffics: []MultiTraffic{{Src: 0, Dst: 3}}},                                                // no routes
		{G: g, Traffics: []MultiTraffic{{Src: 0, Dst: 3, Routes: []Route{{Path: sp(0, 3), Volume: -1}}}}}, // bad volume
		{G: g, Traffics: []MultiTraffic{{Src: 0, Dst: 2, Routes: []Route{{Path: sp(0, 3), Volume: 1}}}}},  // endpoint mismatch
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSingleConversion(t *testing.T) {
	g, sp := buildLine(t)
	in := &Instance{G: g, Traffics: []Traffic{
		{ID: 7, Path: sp(0, 3), Volume: 4},
	}}
	mi := in.Single()
	if err := mi.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mi.Traffics) != 1 || mi.Traffics[0].ID != 7 || mi.TotalVolume() != 4 {
		t.Fatalf("conversion wrong: %+v", mi.Traffics)
	}
	flat := mi.Paths()
	if len(flat) != 1 || flat[0].Traffic != 0 || flat[0].Volume != 4 {
		t.Fatalf("flat paths wrong: %+v", flat)
	}
}
