package simulate

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func testInstance(seed int64) *core.MultiInstance {
	cfg := topology.Config{Routers: 5, InterRouterLinks: 8, Endpoints: 5, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	mi, err := traffic.RouteMulti(pop, demands, 2)
	if err != nil {
		panic(err)
	}
	return mi
}

func fullRates(in *core.MultiInstance) map[graph.EdgeID]float64 {
	r := make(map[graph.EdgeID]float64)
	for e := 0; e < in.G.NumEdges(); e++ {
		r[graph.EdgeID(e)] = 1
	}
	return r
}

func TestRunFullRateCapturesEverything(t *testing.T) {
	in := testInstance(1)
	res, err := Run(in, fullRates(in), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedPackets != res.TotalPackets {
		t.Fatalf("full-rate capture %d of %d packets", res.CapturedPackets, res.TotalPackets)
	}
	if math.Abs(res.Fraction-1) > 0.02 {
		t.Fatalf("full-rate fraction %g, want ≈1", res.Fraction)
	}
}

func TestRunNoDevicesCapturesNothing(t *testing.T) {
	in := testInstance(2)
	res, err := Run(in, nil, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedPackets != 0 || res.Fraction != 0 {
		t.Fatalf("captured %d packets with no devices", res.CapturedPackets)
	}
}

func TestRunRejectsBadRates(t *testing.T) {
	in := testInstance(3)
	if _, err := Run(in, map[graph.EdgeID]float64{0: 1.5}, Options{}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := Run(in, map[graph.EdgeID]float64{0: -0.1}, Options{}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// The central validation: a PPME* solution's promised coverage is
// achieved by the marked-discipline replay within statistical noise.
func TestMarkedReplayMatchesPromise(t *testing.T) {
	in := testInstance(4)
	installed := make([]graph.EdgeID, 0, in.G.NumEdges())
	for e := 0; e < in.G.NumEdges(); e++ {
		installed = append(installed, graph.EdgeID(e))
	}
	sol, err := sampling.SolveRates(context.Background(), in, installed, sampling.Config{K: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	promise := PromisedFraction(in, sol.Rates)
	if promise < 0.9-1e-6 {
		t.Fatalf("promise %g below k", promise)
	}
	res, err := Run(in, sol.Rates, Options{Seed: 4, PacketsPerUnit: 200, Discipline: Marked})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fraction-promise) > 0.02 {
		t.Fatalf("marked replay %g vs promise %g", res.Fraction, promise)
	}
}

func TestIndependentNeverBeatsMarkedPromise(t *testing.T) {
	in := testInstance(5)
	installed := make([]graph.EdgeID, 0, in.G.NumEdges())
	for e := 0; e < in.G.NumEdges(); e++ {
		installed = append(installed, graph.EdgeID(e))
	}
	sol, err := sampling.SolveRates(context.Background(), in, installed, sampling.Config{K: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	promise := PromisedFraction(in, sol.Rates)
	res, err := Run(in, sol.Rates, Options{Seed: 5, PacketsPerUnit: 200, Discipline: Independent})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction > promise+0.02 {
		t.Fatalf("independent replay %g exceeds marked promise %g", res.Fraction, promise)
	}
}

func TestPerEdgeCapturesConsistent(t *testing.T) {
	in := testInstance(6)
	rates := map[graph.EdgeID]float64{0: 0.5, 1: 0.5}
	res, err := Run(in, rates, Options{Seed: 6, Discipline: Marked})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for e, n := range res.PerEdgeCaptures {
		if rates[e] == 0 {
			t.Fatalf("capture on unequipped edge %d", e)
		}
		sum += n
	}
	// In marked mode every captured packet is captured exactly once.
	if sum != res.CapturedPackets {
		t.Fatalf("per-edge sum %d != captured %d in marked mode", sum, res.CapturedPackets)
	}
}

func TestDisciplineString(t *testing.T) {
	if Marked.String() != "marked" || Independent.String() != "independent" {
		t.Fatal("discipline strings wrong")
	}
	if Discipline(7).String() == "" {
		t.Fatal("unknown discipline empty")
	}
}

// Property: for any sub-unit uniform rate, marked replay fraction tracks
// the analytic promise.
func TestMarkedTracksPromiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(seed)
		r := 0.2 + 0.6*float64(uint64(seed)%5)/5
		rates := make(map[graph.EdgeID]float64)
		for e := 0; e < in.G.NumEdges(); e++ {
			rates[graph.EdgeID(e)] = r
		}
		promise := PromisedFraction(in, rates)
		res, err := Run(in, rates, Options{Seed: seed, PacketsPerUnit: 50, Discipline: Marked})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(res.Fraction-promise) > 0.05 {
			t.Logf("seed %d: replay %g promise %g", seed, res.Fraction, promise)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTrace(t *testing.T) {
	ps, truth, err := GenerateTrace(TraceConfig{Mice: 50, Elephants: 3, MicePackets: 4, ElephantPackets: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 53 {
		t.Fatalf("flows = %d, want 53", len(truth))
	}
	total := 0
	syn := 0
	for _, p := range ps {
		if p.SYN {
			syn++
		}
		total++
	}
	if syn != 53 {
		t.Fatalf("SYNs = %d, want one per flow", syn)
	}
	sum := 0
	for _, n := range truth {
		sum += n
	}
	if sum != total {
		t.Fatalf("truth sums to %d, trace has %d packets", sum, total)
	}
	// Timestamps must be non-decreasing.
	for i := 1; i < len(ps); i++ {
		if ps[i].Time < ps[i-1].Time {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	if _, _, err := GenerateTrace(TraceConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, _, err := GenerateTrace(TraceConfig{Mice: 1, MicePackets: 0}); err == nil {
		t.Fatal("zero mice packets accepted")
	}
	if _, _, err := GenerateTrace(TraceConfig{Elephants: 1, ElephantPackets: -2}); err == nil {
		t.Fatal("negative elephant packets accepted")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a, _, _ := GenerateTrace(TraceConfig{Mice: 10, Elephants: 2, MicePackets: 3, ElephantPackets: 50, Seed: 9})
	b, _, _ := GenerateTrace(TraceConfig{Mice: 10, Elephants: 2, MicePackets: 3, ElephantPackets: 50, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different trace")
		}
	}
}
