package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/sampling"
)

// TraceConfig parameterizes GenerateTrace: a synthetic link-level packet
// trace with the classical mice/elephant flow-size mixture of §5.2.
type TraceConfig struct {
	// Mice and Elephants are flow counts; MicePackets and
	// ElephantPackets their per-flow sizes (means of geometric-ish
	// jitter ±50%).
	Mice, Elephants              int
	MicePackets, ElephantPackets int
	// PacketsPerSecond sets timestamps (default 10000).
	PacketsPerSecond float64
	Seed             int64
}

// GenerateTrace builds a shuffled packet trace plus the ground-truth
// per-flow packet counts. The first packet of every flow carries the
// SYN flag, as the estimator of [5] assumes.
func GenerateTrace(cfg TraceConfig) ([]sampling.Packet, map[int]int, error) {
	if cfg.Mice < 0 || cfg.Elephants < 0 || cfg.Mice+cfg.Elephants == 0 {
		return nil, nil, fmt.Errorf("simulate: need at least one flow")
	}
	if cfg.MicePackets <= 0 && cfg.Mice > 0 {
		return nil, nil, fmt.Errorf("simulate: mice packet count %d", cfg.MicePackets)
	}
	if cfg.ElephantPackets <= 0 && cfg.Elephants > 0 {
		return nil, nil, fmt.Errorf("simulate: elephant packet count %d", cfg.ElephantPackets)
	}
	if cfg.PacketsPerSecond == 0 {
		cfg.PacketsPerSecond = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	truth := make(map[int]int)
	var ps []sampling.Packet
	flow := 0
	emit := func(count int) {
		n := count/2 + rng.Intn(count+1) // jitter around the mean
		if n < 1 {
			n = 1
		}
		truth[flow] = n
		for j := 0; j < n; j++ {
			ps = append(ps, sampling.Packet{Flow: flow, Bytes: 40 + rng.Intn(1460), SYN: j == 0})
		}
		flow++
	}
	for i := 0; i < cfg.Mice; i++ {
		emit(cfg.MicePackets)
	}
	for i := 0; i < cfg.Elephants; i++ {
		emit(cfg.ElephantPackets)
	}
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	for i := range ps {
		ps[i].Time = float64(i) / cfg.PacketsPerSecond
	}
	return ps, truth, nil
}
