// Package simulate validates placements at packet level: it synthesizes
// packet streams for every traffic of an instance, replays them across
// the POP, applies the tap devices' sampling decisions on every
// monitored link, and measures the coverage the deployment actually
// achieves.
//
// The paper's objective Σ δ_p·v_p promises a monitored volume; this
// package checks the promise against two capture disciplines discussed
// in §5.2:
//
//   - Marked: devices coordinate through packet marking, so a packet
//     captured upstream is not re-captured downstream and the capture
//     probability along a path is min(1, Σ r_e) — exactly the δ_p of
//     Linear program 3.
//   - Independent: devices sample independently (capture probability
//     1 − Π(1 − r_e)); as [22] assumes, a flow is counted once however
//     many devices capture it, so achieved coverage can fall below the
//     marked-mode promise.
//
// The replay substitutes for the operational tap hardware (DAG cards,
// splitters) the paper's platform would use — see DESIGN.md §4.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Discipline selects how multiple devices on one path interact.
type Discipline int

const (
	// Marked models packet-marking coordination: capture probability
	// along a path is min(1, Σ r_e).
	Marked Discipline = iota
	// Independent models uncoordinated devices: capture probability is
	// 1 − Π(1 − r_e).
	Independent
)

func (d Discipline) String() string {
	switch d {
	case Marked:
		return "marked"
	case Independent:
		return "independent"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// Options parameterizes a replay.
type Options struct {
	// PacketsPerUnit converts traffic volume into a packet count
	// (default 100). Higher = tighter statistics, slower replay.
	PacketsPerUnit float64
	// Discipline selects the capture model (default Marked).
	Discipline Discipline
	// Seed drives all sampling decisions.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.PacketsPerUnit == 0 {
		o.PacketsPerUnit = 100
	}
	return o
}

// Result reports a replay.
type Result struct {
	// TotalPackets is the number of packets injected.
	TotalPackets int
	// CapturedPackets is the number of distinct packets captured by at
	// least one device.
	CapturedPackets int
	// CapturedVolume converts captured packets back into volume units.
	CapturedVolume float64
	// Fraction is CapturedVolume over the instance volume — to compare
	// against the solver's promised coverage.
	Fraction float64
	// PerEdgeCaptures counts capture events per equipped link (in
	// Independent mode a packet can be captured on several links; each
	// counts here, while CapturedPackets counts it once).
	PerEdgeCaptures map[graph.EdgeID]int
	// PerTrafficFraction is the achieved monitored share per traffic.
	PerTrafficFraction []float64
}

// Run replays a multi-routed instance against the given sampling rates
// (absent edges carry no device, rate 0).
func Run(in *core.MultiInstance, rates map[graph.EdgeID]float64, opt Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	for e, r := range rates {
		if r < 0 || r > 1 {
			return Result{}, fmt.Errorf("simulate: rate[%d] = %g outside [0,1]", e, r)
		}
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	res := Result{
		PerEdgeCaptures:    make(map[graph.EdgeID]int),
		PerTrafficFraction: make([]float64, len(in.Traffics)),
	}
	unitPerPacket := 1 / opt.PacketsPerUnit

	for ti, t := range in.Traffics {
		capturedVol := 0.0
		for _, route := range t.Routes {
			n := int(route.Volume*opt.PacketsPerUnit + 0.5)
			if n == 0 && route.Volume > 0 {
				n = 1
			}
			// Devices present on this route.
			var devEdges []graph.EdgeID
			var devRates []float64
			for _, e := range route.Path.Edges {
				if r := rates[e]; r > 0 {
					devEdges = append(devEdges, e)
					devRates = append(devRates, r)
				}
			}
			for p := 0; p < n; p++ {
				res.TotalPackets++
				captured := false
				switch opt.Discipline {
				case Marked:
					// One uniform draw; device i owns the sub-interval
					// [Σ_{j<i} r_j, Σ_{j≤i} r_j) of [0,1).
					u := rng.Float64()
					acc := 0.0
					for i, r := range devRates {
						if u >= acc && u < acc+r {
							captured = true
							res.PerEdgeCaptures[devEdges[i]]++
							break
						}
						acc += r
					}
				case Independent:
					for i, r := range devRates {
						if rng.Float64() < r {
							res.PerEdgeCaptures[devEdges[i]]++
							captured = true
						}
					}
				default:
					return Result{}, fmt.Errorf("simulate: unknown discipline %v", opt.Discipline)
				}
				if captured {
					res.CapturedPackets++
					capturedVol += unitPerPacket
				}
			}
		}
		if v := t.Volume(); v > 0 {
			res.PerTrafficFraction[ti] = capturedVol / v
		}
		res.CapturedVolume += capturedVol
	}
	if tv := in.TotalVolume(); tv > 0 {
		res.Fraction = res.CapturedVolume / tv
	}
	return res, nil
}

// PromisedFraction computes the coverage Linear program 3's semantics
// promise for the given rates: Σ_p min(1, Σ_{e∈p} r_e)·v_p / V.
func PromisedFraction(in *core.MultiInstance, rates map[graph.EdgeID]float64) float64 {
	covered := 0.0
	for _, fp := range in.Paths() {
		sum := 0.0
		for _, e := range fp.Path.Edges {
			sum += rates[e]
		}
		if sum > 1 {
			sum = 1
		}
		covered += sum * fp.Volume
	}
	tv := in.TotalVolume()
	if tv == 0 {
		return 0
	}
	return covered / tv
}
