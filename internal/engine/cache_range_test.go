package engine

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// TestRangeOrderContract pins the documented Cache.Range contract:
// every retained completed entry is visited exactly once, in an order
// callers must treat as arbitrary. The two consumer styles the repo
// sanctions — commutative aggregation (the /metrics exporter shape)
// and collect-keys-then-sort (anything byte-deterministic) — must
// produce identical output from caches built in different insertion
// orders; anything else is a determinism bug, which is exactly why the
// maporder analyzer's waiver on Range's own loop points here.
func TestRangeOrderContract(t *testing.T) {
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}

	// Build two caches holding identical entries, inserted in opposite
	// orders (map iteration genuinely differs run to run, insertion
	// order is the part we control).
	forward, backward := NewCache(), NewCache()
	for i, k := range keys {
		if !forward.Seed(k, i) {
			t.Fatalf("seed %s", k)
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		if !backward.Seed(keys[i], i) {
			t.Fatalf("seed %s", keys[i])
		}
	}

	// Commutative aggregation: identical regardless of visit order.
	aggregate := func(c *Cache) (count, sum int) {
		c.Range(func(_ string, v any) bool {
			count++
			sum += v.(int)
			return true
		})
		return
	}
	fc, fs := aggregate(forward)
	bc, bs := aggregate(backward)
	if fc != bc || fs != bs || fc != len(keys) {
		t.Errorf("commutative aggregation diverged: forward %d/%d backward %d/%d", fc, fs, bc, bs)
	}

	// Collect-then-sort: byte-identical key lists from both caches.
	emit := func(c *Cache) []string {
		var got []string
		c.Range(func(k string, _ any) bool {
			got = append(got, k)
			return true
		})
		sort.Strings(got)
		return got
	}
	fkeys, bkeys := emit(forward), emit(backward)
	if len(fkeys) != len(keys) || len(bkeys) != len(keys) {
		t.Fatalf("Range visited %d/%d entries, want %d", len(fkeys), len(bkeys), len(keys))
	}
	for i := range fkeys {
		if fkeys[i] != bkeys[i] {
			t.Fatalf("sorted key lists diverge at %d: %q vs %q", i, fkeys[i], bkeys[i])
		}
	}
}

// TestRangeSkipsInFlightAndFailed pins the visibility half of the
// contract: Range exposes only retained completed entries.
func TestRangeSkipsInFlightAndFailed(t *testing.T) {
	c := NewCache()
	c.Seed("done", 1)

	// A failed computation is dropped, so Range must not see it.
	if _, err := c.Do("failed", func() (any, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("expected compute error")
	}

	// An in-flight computation blocks until we release it; keep one
	// parked while Range runs.
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do("inflight", func() (any, error) {
			close(started)
			<-release
			return 2, nil
		})
	}()
	<-started

	var seen []string
	c.Range(func(k string, _ any) bool {
		seen = append(seen, k)
		return true
	})
	close(release)

	if len(seen) != 1 || seen[0] != "done" {
		t.Fatalf("Range saw %v, want only [done]", seen)
	}

	// Early stop: a false return ends the walk after one entry.
	n := 0
	c.Seed("second", 3)
	c.Range(func(string, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d entries, want 1", n)
	}
}
