package engine

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Cache is a memoizing solve cache with single-flight semantics:
// concurrent callers of the same key share one computation, and the
// result is retained for the lifetime of the cache. Values handed out
// are shared, so cached computations must be safe for concurrent
// read-only use (every solver result in this repository is).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	onStore func(key string, value any)

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	done      chan struct{}
	value     any
	err       error
	completed bool
}

// errComputePanicked marks an entry whose computation panicked: waiters
// joined on the flight must retry, not read a zero value.
var errComputePanicked = errors.New("engine: cached computation panicked")

// NewCache builds an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Do returns the memoized value for key, computing it with compute on
// the first call. A computation error is not retained: the next caller
// retries. Duplicate concurrent callers block on the in-flight
// computation and count as hits.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			c.hits.Add(1)
			return e.value, nil
		}
		// The flight we joined failed; retry our own computation.
		return c.retry(key, compute)
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	onStore := c.onStore
	c.mu.Unlock()

	c.misses.Add(1)
	// The deferred block also runs when compute panics: the entry is
	// dropped, marked errored (so joined waiters retry instead of
	// reading a zero value), and the done channel is closed — a panic
	// must never wedge other goroutines blocked on this flight.
	defer func() {
		if !e.completed && e.err == nil {
			e.err = errComputePanicked
		}
		if e.err != nil {
			// Drop failed entries so later callers recompute.
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}()
	e.value, e.err = compute()
	e.completed = true
	if e.err == nil && onStore != nil {
		// Save hook: the entry is being retained; hand it to the
		// persistent store before waiters are released so a crash right
		// after the solve still finds it on disk.
		onStore(key, e.value)
	}
	return e.value, e.err
}

// Seed pre-populates the cache with a completed entry — the load hook a
// persistent store uses to warm the cache at startup. It counts as
// neither hit nor miss, does not fire the OnStore hook, and reports
// whether the entry was installed (false when key is already present,
// completed or in flight).
func (c *Cache) Seed(key string, value any) bool {
	e := &cacheEntry{done: make(chan struct{}), value: value, completed: true}
	close(e.done)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = e
	return true
}

// SetOnStore installs the save hook: fn is called once per newly
// retained entry (after its computation succeeded), on the computing
// goroutine, before waiters are released. Seeded entries, failed
// computations and cancellation-degraded values never fire it. Install
// the hook before the cache is shared; fn must be safe for concurrent
// calls from different keys' computations.
func (c *Cache) SetOnStore(fn func(key string, value any)) {
	c.mu.Lock()
	c.onStore = fn
	c.mu.Unlock()
}

// Range calls fn for every retained completed entry, in unspecified
// order, until fn returns false. In-flight and failed entries are
// skipped; fn must not call back into the cache.
//
// Order is NOT part of the contract and never will be: Range walks the
// underlying map directly, so consecutive calls may visit entries in
// different orders. Callers that fold entries into output must either
// be commutative (counting and summing, as a /metrics-style exporter
// is) or collect keys and sort before emitting (as anything
// byte-deterministic must). The WithCacheDir persistent store does not
// use Range to reload — it reads the directory and Seeds entry by
// entry, so restart warmth is order-independent too. The contract is
// pinned by TestRangeOrderContract.
func (c *Cache) Range(fn func(key string, value any) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//placevet:ignore maporder -- Range's contract is explicitly unspecified order (see doc comment); order-sensitive callers must sort, enforced by TestRangeOrderContract
	for key, e := range c.entries {
		select {
		case <-e.done:
		default:
			continue // still in flight
		}
		if e.err != nil || !e.completed {
			continue
		}
		if !fn(key, e.value) {
			return
		}
	}
}

// retry re-enters Do after joining a failed flight.
func (c *Cache) retry(key string, compute func() (any, error)) (any, error) {
	return c.Do(key, compute)
}

// Counts returns the hit and miss counters. A hit is a Do call served
// from a completed or in-flight computation; a miss is a Do call that
// ran compute itself.
func (c *Cache) Counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of retained entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
