// Package engine is the deterministic parallel scenario runner behind
// the figure reproductions and the facade's batch API. It schedules
// independent solve cells (seed × sweep-point fan-out) on a bounded
// worker pool, returns results in task-index order so any merge over
// them is bit-identical to a serial run, memoizes solves behind a
// canonical instance key (see key.go), and aggregates core.SolveStats
// across the batch.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
)

// Options configures a Runner. The zero value is usable: GOMAXPROCS
// workers and no cache.
type Options struct {
	// Workers bounds the number of concurrent tasks per Map call;
	// <= 0 means runtime.GOMAXPROCS(0). Workers == 1 is the serial
	// baseline: Map degenerates to an in-order loop on the calling
	// goroutine's clock but with identical scheduling semantics, so
	// parallel and serial runs produce byte-identical merges.
	Workers int
	// Cache, when non-nil, memoizes solves keyed by canonical instance
	// hashes. Tasks opt in through Runner.Cached.
	Cache *Cache
}

// Runner is a deterministic parallel scheduler. It is safe for
// concurrent use; Map calls spawn their own bounded goroutine set, so
// nested Map calls (a portfolio inside an experiment cell) cannot
// deadlock on a shared pool.
type Runner struct {
	workers int
	cache   *Cache

	mu    sync.Mutex
	stats core.SolveStats
	tasks int64
}

// New builds a Runner from opts.
func New(opts Options) *Runner {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: w, cache: opts.Cache}
}

// Serial returns a single-worker runner with a fresh memoizing cache —
// the deterministic baseline parallel runs are compared against. It
// memoizes exactly like the default parallel runner (the historical
// serial loops also built each seed's instance once), so serial vs
// parallel comparisons differ only in worker count.
func Serial() *Runner { return New(Options{Workers: 1, Cache: NewCache()}) }

// Workers returns the concurrency bound of the runner.
func (r *Runner) Workers() int { return r.workers }

// Cache returns the runner's solve cache (nil when memoization is off).
func (r *Runner) Cache() *Cache { return r.cache }

// AddStats folds one solve's effort counters into the batch aggregate.
// The Bound field is not aggregated (bounds of unrelated solves do not
// sum); counters are.
func (r *Runner) AddStats(st core.SolveStats) {
	r.mu.Lock()
	r.stats.Nodes += st.Nodes
	r.stats.Pivots += st.Pivots
	r.stats.Refactorizations += st.Refactorizations
	r.stats.DevexResets += st.DevexResets
	r.stats.WarmStarts += st.WarmStarts
	r.stats.CutsAdded += st.CutsAdded
	r.stats.VarsFixed += st.VarsFixed
	r.stats.PresolveRemoved += st.PresolveRemoved
	r.stats.StrongBranches += st.StrongBranches
	r.stats.SubtreeTasks += st.SubtreeTasks
	r.stats.Steals += st.Steals
	r.stats.DominancePrunes += st.DominancePrunes
	r.stats.Degraded += st.Degraded
	r.mu.Unlock()
}

// Stats returns the aggregated core.SolveStats of every solve reported
// through AddStats since the runner was built.
func (r *Runner) Stats() core.SolveStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Tasks returns the number of Map tasks the runner has completed.
func (r *Runner) Tasks() int64 { return atomic.LoadInt64(&r.tasks) }

// Cached memoizes compute under the runner's cache; with no cache it
// just computes (callers relying on memoization for cost parity — e.g.
// one instance build shared by a seed's sweep points — should hand the
// runner a cache). All callers sharing a key receive the same value, so
// cached computations must produce results that are safe for shared
// read-only use. A compute returning WithoutCaching(v) hands v back
// without retaining it.
func (r *Runner) Cached(key string, compute func() (any, error)) (any, error) {
	if r.cache == nil {
		return unwrapUncached(compute())
	}
	return unwrapUncached(r.cache.Do(key, compute))
}

// CachedUnlessCanceled memoizes compute like Cached, except that when
// ctx is canceled or expired by the time compute returns, the value is
// handed back WITHOUT being retained: a solver interrupted by its
// context returns a clock-dependent degraded incumbent, and a memoized
// incumbent must never masquerade as a fresh solve for a later,
// unhurried caller. Use it for every memoized computation that
// consults ctx; Cached is for ctx-independent builds.
func (r *Runner) CachedUnlessCanceled(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	if r.cache == nil {
		return unwrapUncached(compute())
	}
	return unwrapUncached(r.cache.Do(key, func() (any, error) {
		v, err := compute()
		if err == nil && ctx.Err() != nil {
			return nil, &uncachedValue{v}
		}
		return v, err
	}))
}

// WithoutCaching wraps v in the error Cached and CachedUnlessCanceled
// recognize as "return this value to every current waiter, but do not
// retain it": the single-flight semantics hold for the in-flight
// callers, and the next caller with the same key computes fresh. It is
// the mechanism behind both cancellation-degraded solves and
// fallback-degraded results — values that are usable now but must not
// masquerade as authoritative later.
func WithoutCaching(v any) error { return &uncachedValue{v} }

// unwrapUncached converts the WithoutCaching error back into its value.
func unwrapUncached(v any, err error) (any, error) {
	var u *uncachedValue
	if errors.As(err, &u) {
		return u.v, nil
	}
	return v, err
}

// uncachedValue rides the cache's error path so a usable but
// clock-dependent value is returned without being retained.
type uncachedValue struct{ v any }

func (u *uncachedValue) Error() string { return "engine: value returned without caching" }

// Map runs fn(ctx, i) for every i in [0, n) on at most r.Workers()
// concurrent goroutines and returns the results in index order — the
// order-independent merge: whatever order tasks finish in, the caller
// always folds results 0, 1, 2, … exactly as a serial loop would.
//
// On a task error Map skips tasks above the failing index (their
// results would be discarded), still runs every task below it, and
// returns the error of the lowest-indexed failing task — deterministic
// regardless of schedule. A task panic is captured on the worker and
// re-raised on the calling goroutine as a *TaskPanic carrying the
// original value and the worker's stack (lowest panicking index wins
// over a higher-indexed error), so callers can recover exactly as they
// could around the historical serial loops and no worker panic can
// kill the process behind the caller's back. Cancellation of the
// parent ctx does NOT abort scheduling:
// the paper's solvers degrade to their incumbents on an expired
// context, so every cell still reports a (degraded) value and the merged
// series stays complete, exactly like the serial path.
func Map[T any](ctx context.Context, r *Runner, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	res, _, err := mapOn(ctx, r, n, func(ctx context.Context, i, _ int) (T, error) {
		// Inject point: a worker task stalling, erroring, or dying.
		// Deliberately on Map only, not MapTree — Map's callers handle
		// task errors through the documented lowest-failing-index path,
		// while MapTree's tree-search callers fold subtree reports into
		// exactness proofs and must never see a fabricated failure.
		if err := fault.Hit(fault.PointEngineTask).Apply(); err != nil {
			var zero T
			return zero, err
		}
		return fn(ctx, i)
	})
	return res, err
}

// TreeStats reports the scheduling counters of one MapTree call.
type TreeStats struct {
	// Tasks is the number of tasks that completed successfully.
	Tasks int
	// Steals counts tasks executed by a worker other than their
	// round-robin home (task i's home is worker i % workers): the
	// load-balancing traffic of the shared task queue. Always 0 on a
	// single worker.
	Steals int
}

// MapTree is Map for tree-search fan-out: fn additionally receives the
// executing worker's index (0..Workers-1) and the call reports
// scheduling counters — how many subtree tasks completed and how many
// were "stolen" (run by a worker other than the task's round-robin
// home). Ordering, error, panic, and cancellation semantics are
// identical to Map, so merges over the results stay byte-identical for
// any worker count.
func MapTree[T any](ctx context.Context, r *Runner, n int, fn func(ctx context.Context, i, worker int) (T, error)) ([]T, TreeStats, error) {
	return mapOn(ctx, r, n, fn)
}

// mapOn is the shared bounded worker loop behind Map and MapTree.
func mapOn[T any](ctx context.Context, r *Runner, n int, fn func(ctx context.Context, i, worker int) (T, error)) ([]T, TreeStats, error) {
	if n <= 0 {
		return nil, TreeStats{}, nil
	}
	w := r.workers
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	panics := make([]*TaskPanic, n)
	var next, failed, done, stolen atomic.Int64
	failed.Store(int64(n))
	// recordFailure keeps the lowest failing index.
	recordFailure := func(i int) {
		for {
			cur := failed.Load()
			if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > failed.Load() {
					// A lower-indexed task already failed; later results
					// would be discarded anyway.
					continue
				}
				res, err, pan := runTask(ctx, i, worker, fn)
				switch {
				case pan != nil:
					panics[i] = pan
					recordFailure(i)
				case err != nil:
					errs[i] = err
					recordFailure(i)
				default:
					results[i] = res
					done.Add(1)
					if i%w != worker {
						stolen.Add(1)
					}
					atomic.AddInt64(&r.tasks, 1)
				}
			}
		}(k)
	}
	wg.Wait()
	ts := TreeStats{Tasks: int(done.Load()), Steals: int(stolen.Load())}
	if f := failed.Load(); f < int64(n) {
		if p := panics[f]; p != nil {
			panic(p)
		}
		return nil, ts, fmt.Errorf("engine: task %d: %w", f, errs[f])
	}
	return results, ts, nil
}

// TaskPanic is the value Map re-raises when a task panicked on a
// worker goroutine: it preserves the original panic value and the
// worker's stack trace (the caller-side re-panic would otherwise print
// a stack ending at engine.Map, hiding the solver that actually
// crashed). recover() around Map yields a *TaskPanic.
type TaskPanic struct {
	// Task is the index of the panicking task.
	Task int
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (p *TaskPanic) String() string {
	return fmt.Sprintf("engine: task %d panicked: %v\n\nworker goroutine stack:\n%s", p.Task, p.Value, p.Stack)
}

// runTask executes one task, converting a panic into a capturable
// outcome so it can be re-raised on the caller's goroutine.
func runTask[T any](ctx context.Context, i, worker int, fn func(context.Context, int, int) (T, error)) (res T, err error, pan *TaskPanic) {
	defer func() {
		if p := recover(); p != nil {
			pan = &TaskPanic{Task: i, Value: p, Stack: debug.Stack()}
		}
	}()
	res, err = fn(ctx, i, worker)
	return
}
