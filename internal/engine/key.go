package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/graph"
)

// Key canonicalizes one solve into a cache key: a hash of the problem
// instance (structure, not pointer identity — two independently built
// but identical instances collide on purpose), the solver name, and
// every option that influences the answer. Supported problem kinds are
// the three the registry solves — *core.Instance, *core.MultiInstance,
// active.ProbeSet (or *active.ProbeSet) — plus nil for keys over plain
// parameters (e.g. memoizing instance construction from a config).
//
// Key returns an error for an unknown problem kind; callers then bypass
// the cache rather than risk a false hit.
func Key(solver string, problem any, params ...any) (string, error) {
	h := sha256.New()
	writeString(h, solver)
	switch p := problem.(type) {
	case nil:
	case *core.Instance:
		writeString(h, "instance")
		hashGraph(h, p.G)
		writeInt(h, len(p.Traffics))
		for _, t := range p.Traffics {
			writeInt(h, t.ID)
			hashPath(h, t.Path)
			writeFloat(h, t.Volume)
		}
	case *core.MultiInstance:
		writeString(h, "multi")
		hashGraph(h, p.G)
		writeInt(h, len(p.Traffics))
		for _, t := range p.Traffics {
			writeInt(h, t.ID)
			writeInt(h, int(t.Src))
			writeInt(h, int(t.Dst))
			writeInt(h, len(t.Routes))
			for _, r := range t.Routes {
				hashPath(h, r.Path)
				writeFloat(h, r.Volume)
			}
		}
	case active.ProbeSet:
		hashProbeSet(h, p)
	case *active.ProbeSet:
		hashProbeSet(h, *p)
	default:
		return "", fmt.Errorf("engine: no canonical key for %T", problem)
	}
	for _, v := range params {
		// Options are small scalars/slices; their fmt rendering is
		// canonical enough and keeps the key builder independent of
		// every caller's option struct.
		writeString(h, fmt.Sprintf("|%v", v))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// SessionScope is a cache-key marker for warm session solves. A solve
// that consumed another solve's artifacts (a warm start) can answer
// with different effort counters than a cold solve of the same
// instance and options — identical placements, different Stats — so a
// warm result must never be memoized under, or served from, a cold
// solve's key. Callers that do cache warm solves append a SessionScope
// to Key's params; the zero value is reserved for cold solves (the
// facade's batch runner simply bypasses the cache instead, see
// repro.Runner.SolveBatch).
type SessionScope struct {
	// Session identifies the artifact chain (e.g. a UUID minted at
	// session creation).
	Session string
	// Step is the re-solve ordinal within the session: step n's answer
	// depends on the artifacts of step n-1, so two steps of the same
	// session must not collide either.
	Step int
}

// MustKey is Key for problem kinds known to be supported; it panics on
// an unknown kind (a programming error in the caller).
func MustKey(solver string, problem any, params ...any) string {
	k, err := Key(solver, problem, params...)
	if err != nil {
		panic(err)
	}
	return k
}

func hashProbeSet(h hash.Hash, ps active.ProbeSet) {
	writeString(h, "probeset")
	hashGraph(h, ps.G)
	writeInt(h, len(ps.Candidates))
	for _, c := range ps.Candidates {
		writeInt(h, int(c))
	}
	writeInt(h, len(ps.Probes))
	for _, p := range ps.Probes {
		writeInt(h, int(p.U))
		writeInt(h, int(p.V))
		hashPath(h, p.Path)
	}
}

func hashGraph(h hash.Hash, g *graph.Graph) {
	if g == nil {
		writeInt(h, -1)
		return
	}
	writeInt(h, g.NumNodes())
	writeInt(h, g.NumEdges())
	for _, e := range g.Edges() {
		writeInt(h, int(e.U))
		writeInt(h, int(e.V))
		writeFloat(h, e.Capacity)
		writeFloat(h, e.Weight)
	}
}

func hashPath(h hash.Hash, p graph.Path) {
	// Edges determine Nodes on a routed path; hash both anyway so two
	// paths differing only in orientation cannot collide.
	writeInt(h, len(p.Nodes))
	for _, n := range p.Nodes {
		writeInt(h, int(n))
	}
	writeInt(h, len(p.Edges))
	for _, e := range p.Edges {
		writeInt(h, int(e))
	}
}

func writeInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	h.Write(b[:])
}

func writeFloat(h hash.Hash, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func writeString(h hash.Hash, s string) {
	writeInt(h, len(s))
	h.Write([]byte(s))
}
