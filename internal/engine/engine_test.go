package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 200
	fn := func(_ context.Context, i int) (int, error) { return i * i, nil }
	serial, err := Map(context.Background(), Serial(), n, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), New(Options{Workers: 8}), n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != i*i || parallel[i] != i*i {
			t.Fatalf("index %d: serial %d, parallel %d, want %d", i, serial[i], parallel[i], i*i)
		}
	}
}

func TestMapReturnsLowestFailingTask(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		r := New(Options{Workers: workers})
		_, err := Map(context.Background(), r, 100, func(_ context.Context, i int) (int, error) {
			if i == 17 || i == 63 {
				return 0, fmt.Errorf("task says %d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if want := "engine: task 17:"; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
			t.Fatalf("workers=%d: err = %q, want lowest failing task 17", workers, err)
		}
	}
}

func TestMapRunsEveryTaskUnderCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	res, err := Map(ctx, New(Options{Workers: 4}), 50, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		// Solvers degrade to incumbents under a canceled ctx; the
		// engine must still schedule every cell.
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 || len(res) != 50 {
		t.Fatalf("ran %d tasks, got %d results, want 50", ran.Load(), len(res))
	}
}

func TestCacheCounts(t *testing.T) {
	c := NewCache()
	var computed atomic.Int64
	r := New(Options{Workers: 8, Cache: c})
	_, err := Map(context.Background(), r, 64, func(_ context.Context, i int) (any, error) {
		return r.Cached(fmt.Sprintf("key-%d", i%4), func() (any, error) {
			computed.Add(1)
			return i % 4, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Counts()
	if computed.Load() != 4 || misses != 4 {
		t.Fatalf("computed %d (misses %d), want 4 distinct computations", computed.Load(), misses)
	}
	if hits != 60 {
		t.Fatalf("hits = %d, want 60", hits)
	}
	if c.Len() != 4 {
		t.Fatalf("cache retains %d entries, want 4", c.Len())
	}
}

func TestMapRepanicsLowestIndexOnCaller(t *testing.T) {
	for _, workers := range []int{1, 8} {
		got := func() (p any) {
			defer func() { p = recover() }()
			Map(context.Background(), New(Options{Workers: workers}), 40, func(_ context.Context, i int) (int, error) {
				if i == 7 || i == 31 {
					panic(fmt.Sprintf("cell %d exploded", i))
				}
				return i, nil
			})
			return nil
		}()
		// The panic must surface on the calling goroutine (recoverable,
		// exactly like the historical serial loops) and deterministically
		// carry the lowest panicking cell, with the worker's stack.
		tp, ok := got.(*TaskPanic)
		if !ok {
			t.Fatalf("workers=%d: recovered %T %v, want *TaskPanic", workers, got, got)
		}
		if tp.Task != 7 || tp.Value != "cell 7 exploded" {
			t.Fatalf("workers=%d: recovered task %d value %v, want cell 7's panic", workers, tp.Task, tp.Value)
		}
		if len(tp.Stack) == 0 || !strings.Contains(tp.String(), "cell 7 exploded") {
			t.Fatalf("workers=%d: TaskPanic missing worker stack or value: %s", workers, tp)
		}
	}
}

func TestCacheComputePanicDoesNotWedge(t *testing.T) {
	c := NewCache()
	func() {
		defer func() { recover() }()
		c.Do("k", func() (any, error) { panic("boom") })
	}()
	// The panicked entry must be dropped, not left in-flight: a later
	// caller recomputes instead of hanging on the flight's done channel.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.Do("k", func() (any, error) { return 7, nil })
		if err != nil || v.(int) != 7 {
			t.Errorf("recompute after panic: v=%v err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache wedged after compute panic")
	}
}

func TestCachedUnlessCanceledDoesNotRetainDegraded(t *testing.T) {
	r := New(Options{Workers: 2, Cache: NewCache()})
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }
	// Under a canceled ctx the value comes back but is not retained.
	if v, err := r.CachedUnlessCanceled(canceled, "k", compute); err != nil || v.(int) != 1 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if r.Cache().Len() != 0 {
		t.Fatal("degraded value was retained")
	}
	// A later unhurried caller recomputes and the result is memoized.
	if v, err := r.CachedUnlessCanceled(context.Background(), "k", compute); err != nil || v.(int) != 2 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if v, err := r.CachedUnlessCanceled(context.Background(), "k", compute); err != nil || v.(int) != 2 {
		t.Fatalf("memoized v=%v err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestCacheErrorNotRetained(t *testing.T) {
	c := NewCache()
	calls := 0
	_, err := c.Do("k", func() (any, error) { calls++; return nil, errors.New("fail") })
	if err == nil {
		t.Fatal("want error")
	}
	v, err := c.Do("k", func() (any, error) { calls++; return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (failure not memoized)", calls)
	}
}

func TestAddStatsAggregates(t *testing.T) {
	r := New(Options{Workers: 8})
	_, err := Map(context.Background(), r, 100, func(_ context.Context, i int) (any, error) {
		r.AddStats(core.SolveStats{Nodes: 1, Pivots: 2, WarmStarts: 3})
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Nodes != 100 || st.Pivots != 200 || st.WarmStarts != 300 {
		t.Fatalf("aggregated stats = %+v", st)
	}
	if r.Tasks() != 100 {
		t.Fatalf("tasks = %d, want 100", r.Tasks())
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	r := New(Options{Workers: 2})
	res, err := Map(context.Background(), r, 8, func(ctx context.Context, i int) (int, error) {
		inner, err := Map(ctx, r, 4, func(_ context.Context, j int) (int, error) { return j, nil })
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum + i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 6+i {
			t.Fatalf("res[%d] = %d, want %d", i, v, 6+i)
		}
	}
}

// buildInstance constructs the same Figure-7-style instance twice so key
// tests can check structural (not pointer) identity.
func buildInstance(t *testing.T, seed int64) *core.Instance {
	t.Helper()
	cfg := topology.Paper10
	cfg.Seed = seed
	pop := topology.Generate(cfg)
	in, err := traffic.Route(pop, traffic.Demands(pop, traffic.Config{Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestKeyCanonicalOverRebuilds(t *testing.T) {
	a := buildInstance(t, 3)
	b := buildInstance(t, 3)
	if a == b {
		t.Fatal("want two distinct instance pointers")
	}
	ka := MustKey("tap/exact", a, 0.95, 400000)
	kb := MustKey("tap/exact", b, 0.95, 400000)
	if ka != kb {
		t.Fatal("identical instances hash to different keys")
	}
	if kc := MustKey("tap/exact", buildInstance(t, 4), 0.95, 400000); kc == ka {
		t.Fatal("different seeds hash to the same key")
	}
	if kd := MustKey("tap/ilp", a, 0.95, 400000); kd == ka {
		t.Fatal("different solvers hash to the same key")
	}
	if ke := MustKey("tap/exact", a, 0.90, 400000); ke == ka {
		t.Fatal("different options hash to the same key")
	}
}

func TestKeyMultiAndProbeSet(t *testing.T) {
	cfg := topology.Config{Routers: 7, InterRouterLinks: 11, Endpoints: 8, Seed: 5}
	pop := topology.Generate(cfg)
	mi, err := traffic.RouteMulti(pop, traffic.Demands(pop, traffic.Config{Seed: 5}), 2)
	if err != nil {
		t.Fatal(err)
	}
	k1 := MustKey("sample/ppme", mi, 0.9)
	k2 := MustKey("sample/ppme", mi, 0.9)
	if k1 != k2 {
		t.Fatal("multi-instance key not stable")
	}
	if _, err := Key("x", struct{}{}); err == nil {
		t.Fatal("unknown problem kind must not silently share a key")
	}
	if MustKey("x", nil, "cfg", 1) == MustKey("x", nil, "cfg", 2) {
		t.Fatal("nil-problem parameter keys must differ")
	}
}

// TestKeySessionScope: a warm session solve's key must never collide
// with the cold solve of the same instance and options, and distinct
// steps of the same session must not collide with each other — a warm
// result served as cold would break the resolve==cold contract's Stats
// provenance.
func TestKeySessionScope(t *testing.T) {
	in := buildInstance(t, 3)
	cold := MustKey("tap/exact", in, 0.95, 400000)
	warm1 := MustKey("tap/exact", in, 0.95, 400000, SessionScope{Session: "s1", Step: 1})
	warm2 := MustKey("tap/exact", in, 0.95, 400000, SessionScope{Session: "s1", Step: 2})
	other := MustKey("tap/exact", in, 0.95, 400000, SessionScope{Session: "s2", Step: 1})
	if warm1 == cold || warm2 == cold {
		t.Fatal("session-scoped key collides with the cold key")
	}
	if warm1 == warm2 {
		t.Fatal("distinct session steps share a key")
	}
	if warm1 == other {
		t.Fatal("distinct sessions share a key")
	}
	if warm1 != MustKey("tap/exact", in, 0.95, 400000, SessionScope{Session: "s1", Step: 1}) {
		t.Fatal("session-scoped key not stable")
	}
}

func TestCacheSeedAndRange(t *testing.T) {
	c := NewCache()
	if !c.Seed("k1", 41) {
		t.Fatal("seeding an empty cache must install the entry")
	}
	if c.Seed("k1", 99) {
		t.Fatal("seeding an occupied key must be a no-op")
	}
	// A seeded entry is served without running compute and counts as a
	// hit, exactly like a memoized solve.
	v, err := c.Do("k1", func() (any, error) {
		t.Fatal("compute ran for a seeded key")
		return nil, nil
	})
	if err != nil || v.(int) != 41 {
		t.Fatalf("Do(seeded) = %v, %v, want 41", v, err)
	}
	hits, misses := c.Counts()
	if hits != 1 || misses != 0 {
		t.Fatalf("counts = %d/%d hit/miss, want 1/0 (Seed itself counts neither)", hits, misses)
	}
	if _, err := c.Do("k2", func() (any, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	c.Range(func(key string, value any) bool {
		got[key] = value.(int)
		return true
	})
	if len(got) != 2 || got["k1"] != 41 || got["k2"] != 7 {
		t.Fatalf("Range saw %v, want k1:41 k2:7", got)
	}
	// Early termination: fn returning false stops the walk.
	n := 0
	c.Range(func(string, any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range visited %d entries after false, want 1", n)
	}
}

func TestCacheOnStoreHook(t *testing.T) {
	c := NewCache()
	var mu sync.Mutex
	stored := map[string]any{}
	c.SetOnStore(func(key string, value any) {
		mu.Lock()
		stored[key] = value
		mu.Unlock()
	})
	if _, err := c.Do("a", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	// A second Do on the same key is a hit: the hook must not re-fire.
	if _, err := c.Do("a", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("fail", func() (any, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("want compute error")
	}
	c.Seed("seeded", 3)
	ctx, cancel := context.WithCancel(context.Background())
	r := New(Options{Workers: 1, Cache: c})
	if _, err := r.CachedUnlessCanceled(ctx, "degraded", func() (any, error) {
		cancel() // expire the context mid-compute: value must not persist
		return 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || stored["a"] != 1 {
		t.Fatalf("OnStore fired for %v, want exactly {a: 1} (no hits, failures, seeds, degraded values)", stored)
	}
}
