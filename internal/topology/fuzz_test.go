package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead fuzzes the Rocketfuel-style map parser: on ANY input Read
// must return (*POP, nil) or (nil, error) — never panic — and an
// accepted map must round-trip: Write(Read(input)) re-reads to a
// byte-identical serialization. The committed corpus under
// testdata/fuzz/FuzzRead seeds malformed sections, out-of-order and
// non-dense node indices, self-loops and non-finite capacities.
func FuzzRead(f *testing.F) {
	f.Add("node 0 bb0 backbone\nnode 1 ar0 access\nlink 0 1 2488\n")
	f.Add("# comment\n\nnode 0 a virtual\n")
	f.Add("node 1 a backbone\n")                  // non-dense start
	f.Add("node 0 a backbone\nnode 0 b access\n") // duplicate index
	f.Add("node 0 a backbone\nnode 2 b access\n") // gap
	f.Add("link 0 1 100\n")                       // link before nodes
	f.Add("node 0 a backbone\nlink 0 0 10\n")     // self-loop
	f.Add("node 0 a backbone\nnode 1 b access\nlink 0 1 NaN\n")
	f.Add("node 0 a backbone\nnode 1 b access\nlink 0 1 +Inf\n")
	f.Add("node 0 a backbone\nnode 1 b access\nlink 0 1 -5\n")
	f.Add("node 0 a wat\n")                           // unknown kind
	f.Add("frob 1 2 3\n")                             // unknown record
	f.Add("node 0\n")                                 // short node line
	f.Add("link 0 1\n")                               // short link line
	f.Add("node 9999999999999999999999 a backbone\n") // overflow index

	f.Fuzz(func(t *testing.T, input string) {
		pop, err := Read(strings.NewReader(input))
		if err != nil {
			if pop != nil {
				t.Fatalf("Read returned both a POP and error %v", err)
			}
			return
		}
		if pop.G.NumNodes() == 0 {
			t.Fatal("Read accepted an empty map")
		}
		if len(pop.Kind) != pop.G.NumNodes() {
			t.Fatalf("Kind has %d entries for %d nodes", len(pop.Kind), pop.G.NumNodes())
		}
		// Accepted maps round-trip byte-identically.
		var first bytes.Buffer
		if err := Write(&first, pop); err != nil {
			t.Fatalf("Write after accept: %v", err)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of written map: %v\nmap:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, again); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Write→Read→Write not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
		}
	})
}
