// Package topology generates and serializes POP topologies following
// the two-level hierarchical architecture of the paper's §2 / Figure 2:
// backbone (core) routers interconnected among themselves, access
// routers homed onto the backbone, and virtual endpoint nodes standing
// for the customer networks and peering links whose traffic enters and
// leaves the POP (§4.4: "the generated network includes some virtual
// nodes that represent sources and targets of the traffic and that are
// not considered as routers in the POP").
//
// The paper derives its instances from Rocketfuel-inferred ISP maps; we
// substitute a seeded generator tuned to reproduce the paper's instance
// sizes (10 routers / 27 links / 132 traffics; 15 routers / 71 links /
// 1980 traffics), plus a Rocketfuel-style text format for bundling and
// exchanging fixed maps (see DESIGN.md §4).
package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// NodeKind classifies POP nodes.
type NodeKind int

const (
	// Backbone routers connect the POP to other POPs and carry transit.
	Backbone NodeKind = iota
	// Access routers aggregate customer links onto the backbone.
	Access
	// Virtual nodes are traffic endpoints (customers, peers); they are
	// not routers of the POP.
	Virtual
)

func (k NodeKind) String() string {
	switch k {
	case Backbone:
		return "backbone"
	case Access:
		return "access"
	case Virtual:
		return "virtual"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Link capacities in Mb/s for the classes the paper mentions (§3:
// "traffic volume ranges from tens of Mb/s on OC-3 access links to
// 10 Gb/s on OC-192 backbone links").
const (
	OC3   = 155.0
	OC12  = 622.0
	OC48  = 2488.0
	OC192 = 9953.0
)

// POP is a generated point of presence.
type POP struct {
	G *graph.Graph
	// Kind classifies every node of G.
	Kind []NodeKind
	// Backbone, Access and Endpoints list node IDs by class. Endpoints
	// are the virtual sources/targets of traffic.
	Backbone  []graph.NodeID
	Access    []graph.NodeID
	Endpoints []graph.NodeID
}

// Routers returns the number of actual routers (backbone + access).
func (p *POP) Routers() int { return len(p.Backbone) + len(p.Access) }

// IsRouter reports whether n is a backbone or access router.
func (p *POP) IsRouter(n graph.NodeID) bool { return p.Kind[n] != Virtual }

// Config parameterizes Generate. The zero value is invalid; use one of
// the presets (Paper10, Paper15, Paper29, Paper80) or fill in the fields.
type Config struct {
	// Routers is the number of POP routers (backbone + access).
	Routers int
	// BackboneFraction is the share of routers that are backbone
	// routers; default 0.4, minimum 2 routers.
	BackboneFraction float64
	// InterRouterLinks is the number of router-to-router links. It is
	// clamped below at the minimum connected layout (access single-homed
	// plus a backbone ring) and above at the complete layout.
	InterRouterLinks int
	// Endpoints is the number of virtual traffic endpoints; each
	// attaches with one link to a router, so the total link count is
	// InterRouterLinks + Endpoints.
	Endpoints int
	// PeerFraction is the share of endpoints attached to backbone
	// routers (peering links); the rest attach to access routers
	// (customer links). Default 0.25.
	PeerFraction float64
	// Seed drives all random choices; the same Config generates the
	// same POP.
	Seed int64
}

// Presets reproducing the paper's evaluation instances. Endpoint counts
// are chosen so that all ordered endpoint pairs give the paper's traffic
// counts (12·11 = 132, 45·44 = 1980) and total link counts match the
// reported 27 and 71.
var (
	// Paper10 is the Fig 7 instance: 10 routers, 27 links, 132 traffics.
	Paper10 = Config{Routers: 10, InterRouterLinks: 15, Endpoints: 12}
	// Paper15 is the Fig 8 instance: 15 routers, 71 links, 1980 traffics.
	Paper15 = Config{Routers: 15, InterRouterLinks: 26, Endpoints: 45}
	// Paper29 is the Fig 10 instance (29 routers).
	Paper29 = Config{Routers: 29, InterRouterLinks: 52, Endpoints: 40}
	// Paper80 is the Fig 11 instance (80 routers).
	Paper80 = Config{Routers: 80, InterRouterLinks: 150, Endpoints: 60}
)

func (c Config) withDefaults() Config {
	if c.BackboneFraction == 0 {
		c.BackboneFraction = 0.4
	}
	if c.PeerFraction == 0 {
		c.PeerFraction = 0.25
	}
	return c
}

// Generate builds a POP from the configuration. It panics on impossible
// configurations (fewer than 3 routers or fewer than 2 endpoints).
func Generate(cfg Config) *POP {
	return GenerateRand(cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// GenerateRand is Generate drawing every random choice from the given
// rng instead of cfg.Seed (which is ignored). It is the explicit-seed
// entry the scenario families use: callers own the random stream, so
// one seed can deterministically drive a whole topology + traffic
// pipeline.
func GenerateRand(cfg Config, rng *rand.Rand) *POP {
	cfg = cfg.withDefaults()
	if cfg.Routers < 3 {
		panic(fmt.Sprintf("topology: need at least 3 routers, got %d", cfg.Routers))
	}
	if cfg.Endpoints < 2 {
		panic(fmt.Sprintf("topology: need at least 2 endpoints, got %d", cfg.Endpoints))
	}

	nb := int(float64(cfg.Routers)*cfg.BackboneFraction + 0.5)
	if nb < 2 {
		nb = 2
	}
	if nb > cfg.Routers-1 {
		nb = cfg.Routers - 1
	}
	na := cfg.Routers - nb

	g := graph.New()
	pop := &POP{G: g}
	for i := 0; i < nb; i++ {
		n := g.AddNode(fmt.Sprintf("bb%d", i))
		pop.Backbone = append(pop.Backbone, n)
		pop.Kind = append(pop.Kind, Backbone)
	}
	for i := 0; i < na; i++ {
		n := g.AddNode(fmt.Sprintf("ar%d", i))
		pop.Access = append(pop.Access, n)
		pop.Kind = append(pop.Kind, Access)
	}

	// Minimum connected layout: backbone ring + single-homed access.
	type pair struct{ u, v graph.NodeID }
	present := make(map[pair]bool)
	addLink := func(u, v graph.NodeID, capacity float64) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if present[pair{u, v}] {
			return false
		}
		present[pair{u, v}] = true
		g.AddEdge(u, v, capacity)
		return true
	}
	if nb == 2 {
		addLink(pop.Backbone[0], pop.Backbone[1], OC192)
	} else {
		for i := 0; i < nb; i++ {
			addLink(pop.Backbone[i], pop.Backbone[(i+1)%nb], OC192)
		}
	}
	for _, a := range pop.Access {
		b := pop.Backbone[rng.Intn(nb)]
		addLink(a, b, OC48)
	}

	// Extra links up to InterRouterLinks: backbone chords, access
	// dual-homing, or access-access shortcuts.
	maxLinks := cfg.Routers * (cfg.Routers - 1) / 2
	want := cfg.InterRouterLinks
	if want < g.NumEdges() {
		want = g.NumEdges()
	}
	if want > maxLinks {
		want = maxLinks
	}
	for g.NumEdges() < want {
		switch rng.Intn(3) {
		case 0: // backbone chord
			u := pop.Backbone[rng.Intn(nb)]
			v := pop.Backbone[rng.Intn(nb)]
			addLink(u, v, OC192)
		case 1: // extra access uplink
			a := pop.Access[rng.Intn(na)]
			b := pop.Backbone[rng.Intn(nb)]
			addLink(a, b, OC48)
		default: // access-access shortcut
			u := pop.Access[rng.Intn(na)]
			v := pop.Access[rng.Intn(na)]
			addLink(u, v, OC12)
		}
	}

	// Virtual endpoints: peers on backbone routers, customers on access
	// routers, one link each.
	for i := 0; i < cfg.Endpoints; i++ {
		if rng.Float64() < cfg.PeerFraction {
			n := g.AddNode(fmt.Sprintf("peer%d", i))
			pop.Kind = append(pop.Kind, Virtual)
			pop.Endpoints = append(pop.Endpoints, n)
			g.AddEdge(n, pop.Backbone[rng.Intn(nb)], OC48)
		} else {
			n := g.AddNode(fmt.Sprintf("cust%d", i))
			pop.Kind = append(pop.Kind, Virtual)
			pop.Endpoints = append(pop.Endpoints, n)
			g.AddEdge(n, pop.Access[rng.Intn(na)], OC12)
		}
	}
	return pop
}
