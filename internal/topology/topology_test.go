package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGeneratePaper10Shape(t *testing.T) {
	pop := Generate(Paper10)
	if got := pop.Routers(); got != 10 {
		t.Fatalf("routers = %d, want 10", got)
	}
	if got := len(pop.Endpoints); got != 12 {
		t.Fatalf("endpoints = %d, want 12", got)
	}
	// 27 links as in Fig 7's instance: 15 inter-router + 12 endpoint.
	if got := pop.G.NumEdges(); got != 27 {
		t.Fatalf("links = %d, want 27", got)
	}
	if !pop.G.Connected() {
		t.Fatal("generated POP is disconnected")
	}
}

func TestGeneratePaper15Shape(t *testing.T) {
	pop := Generate(Paper15)
	if pop.Routers() != 15 || len(pop.Endpoints) != 45 {
		t.Fatalf("routers=%d endpoints=%d, want 15, 45", pop.Routers(), len(pop.Endpoints))
	}
	if got := pop.G.NumEdges(); got != 71 {
		t.Fatalf("links = %d, want 71 as in Fig 8", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Routers: 12, InterRouterLinks: 20, Endpoints: 9, Seed: 42})
	b := Generate(Config{Routers: 12, InterRouterLinks: 20, Endpoints: 9, Seed: 42})
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed, different size")
	}
	ea, eb := a.G.Edges(), b.G.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := Generate(Config{Routers: 12, InterRouterLinks: 20, Endpoints: 9, Seed: 43})
	different := c.G.NumEdges() != a.G.NumEdges()
	if !different {
		ec := c.G.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				different = true
				break
			}
		}
	}
	if !different {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestGenerateKinds(t *testing.T) {
	pop := Generate(Config{Routers: 8, InterRouterLinks: 12, Endpoints: 6, Seed: 1})
	nb, na, nv := 0, 0, 0
	for n, k := range pop.Kind {
		switch k {
		case Backbone:
			nb++
		case Access:
			na++
		case Virtual:
			nv++
			// Endpoints hang off exactly one link.
			if pop.G.Degree(graph.NodeID(n)) != 1 {
				t.Fatalf("endpoint %d has degree %d", n, pop.G.Degree(graph.NodeID(n)))
			}
			if pop.IsRouter(graph.NodeID(n)) {
				t.Fatalf("endpoint %d claims to be a router", n)
			}
		}
	}
	if nb != len(pop.Backbone) || na != len(pop.Access) || nv != len(pop.Endpoints) {
		t.Fatal("kind lists inconsistent")
	}
	if nb < 2 {
		t.Fatalf("backbone count %d < 2", nb)
	}
}

func TestGenerateClampsLinkCount(t *testing.T) {
	// Requesting more inter-router links than a complete graph allows
	// must clamp, not loop forever.
	pop := Generate(Config{Routers: 4, InterRouterLinks: 1000, Endpoints: 2, Seed: 7})
	inter := pop.G.NumEdges() - len(pop.Endpoints)
	if inter > 4*3/2 {
		t.Fatalf("inter-router links = %d exceeds complete graph", inter)
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"too few routers":   {Routers: 2, Endpoints: 5},
		"too few endpoints": {Routers: 5, Endpoints: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestNodeKindString(t *testing.T) {
	if Backbone.String() != "backbone" || Access.String() != "access" || Virtual.String() != "virtual" {
		t.Fatal("kind strings wrong")
	}
	if NodeKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	pop := Generate(Config{Routers: 9, InterRouterLinks: 14, Endpoints: 7, Seed: 11})
	var sb strings.Builder
	if err := Write(&sb, pop); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumNodes() != pop.G.NumNodes() || back.G.NumEdges() != pop.G.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			back.G.NumNodes(), back.G.NumEdges(), pop.G.NumNodes(), pop.G.NumEdges())
	}
	if len(back.Backbone) != len(pop.Backbone) || len(back.Access) != len(pop.Access) ||
		len(back.Endpoints) != len(pop.Endpoints) {
		t.Fatal("round trip class counts differ")
	}
	ea, eb := pop.G.Edges(), back.G.Edges()
	for i := range ea {
		if ea[i].U != eb[i].U || ea[i].V != eb[i].V || ea[i].Capacity != eb[i].Capacity {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad record":       "frob 1 2 3",
		"node field count": "node 0 x",
		"node bad index":   "node 5 x backbone",
		"node bad kind":    "node 0 x core",
		"link fields":      "node 0 x backbone\nlink 0",
		"link range":       "node 0 x backbone\nlink 0 9 100",
		"link capacity":    "node 0 a backbone\nnode 1 b backbone\nlink 0 1 -5",
		"link not number":  "node 0 a backbone\nnode 1 b backbone\nlink 0 one 5",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nnode 0 a backbone\nnode 1 b access\n# mid\nlink 0 1 155\n"
	pop, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if pop.G.NumNodes() != 2 || pop.G.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes %d edges", pop.G.NumNodes(), pop.G.NumEdges())
	}
}

// Property: any sane configuration yields a connected POP with the
// requested router and endpoint counts.
func TestGenerateAlwaysConnected(t *testing.T) {
	f := func(seed int64) bool {
		r := 3 + int(uint64(seed)%20)
		e := 2 + int(uint64(seed/7)%30)
		links := r + int(uint64(seed/13)%(3*uint64(r)))
		pop := Generate(Config{Routers: r, InterRouterLinks: links, Endpoints: e, Seed: seed})
		return pop.G.Connected() && pop.Routers() == r && len(pop.Endpoints) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
