package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// The text format below is a simplified Rocketfuel-style map: one
// record per line, '#' comments, declared in two sections:
//
//	node <index> <label> <backbone|access|virtual>
//	link <u> <v> <capacity-mbps>
//
// Node indices must be declared densely starting at 0, in order, before
// any link referencing them. The paper's instances come from maps
// inferred by the Rocketfuel tool [21]; this format lets fixed maps be
// checked into the repository and exchanged between the CLI tools.

// Write serializes a POP.
func Write(w io.Writer, pop *POP) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# POP: %d routers, %d endpoints, %d links\n",
		pop.Routers(), len(pop.Endpoints), pop.G.NumEdges())
	for n := 0; n < pop.G.NumNodes(); n++ {
		id := graph.NodeID(n)
		fmt.Fprintf(bw, "node %d %s %s\n", n, pop.G.Label(id), pop.Kind[n])
	}
	for _, e := range pop.G.Edges() {
		fmt.Fprintf(bw, "link %d %d %g\n", e.U, e.V, e.Capacity)
	}
	return bw.Flush()
}

// Parse reads a POP in the format produced by Write.
//
// Deprecated: Parse is the historical name of Read; new code should
// use Read, which pairs with Write.
func Parse(r io.Reader) (*POP, error) { return Read(r) }

// Read parses a POP in the format produced by Write. Malformed input
// returns an error — never a panic: the parser is fuzzed (FuzzRead)
// against malformed sections, out-of-order and non-dense node indices,
// self-loop links and non-finite capacities.
func Read(r io.Reader) (*POP, error) {
	sc := bufio.NewScanner(r)
	g := graph.New()
	pop := &POP{G: g}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: node needs 3 fields", lineNo)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != g.NumNodes() {
				return nil, fmt.Errorf("topology: line %d: node index %q must be the next dense index %d", lineNo, fields[1], g.NumNodes())
			}
			id := g.AddNode(fields[2])
			switch fields[3] {
			case "backbone":
				pop.Kind = append(pop.Kind, Backbone)
				pop.Backbone = append(pop.Backbone, id)
			case "access":
				pop.Kind = append(pop.Kind, Access)
				pop.Access = append(pop.Access, id)
			case "virtual":
				pop.Kind = append(pop.Kind, Virtual)
				pop.Endpoints = append(pop.Endpoints, id)
			default:
				return nil, fmt.Errorf("topology: line %d: unknown node kind %q", lineNo, fields[3])
			}
		case "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: link needs 3 fields", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			cap, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("topology: line %d: bad link fields", lineNo)
			}
			if u < 0 || u >= g.NumNodes() || v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("topology: line %d: link endpoint out of range", lineNo)
			}
			if u == v {
				// graph.AddEdge panics on self-loops; reject them here so
				// the parser returns errors, never panics.
				return nil, fmt.Errorf("topology: line %d: self-loop link on node %d", lineNo, u)
			}
			// The comparison form also rejects NaN (NaN <= 0 is false,
			// but so is NaN > 0).
			if !(cap > 0) || math.IsInf(cap, 0) {
				return nil, fmt.Errorf("topology: line %d: capacity %g not positive and finite", lineNo, cap)
			}
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), cap)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("topology: empty map")
	}
	return pop, nil
}
