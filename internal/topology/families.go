package topology

// Scenario-family generators beyond the paper's two Rocketfuel-derived
// POP sizes. The paper (§4.4) evaluates on instances inferred by the
// Rocketfuel tool [21]; these families open the workloads the ROADMAP
// asks for: geometric (Waxman), power-law (Barabási–Albert), metro
// ring/ladder cores, fat-tree access tiers, and a size-parameterized
// variant of the paper's own two-level POP. Every generator draws all
// randomness from an explicit *rand.Rand — no package-level rand — so
// one seed deterministically reproduces an instance regardless of how
// many generators run concurrently.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// builder accumulates POP nodes and de-duplicated links with the class
// bookkeeping every family shares.
type builder struct {
	pop     *POP
	present map[[2]graph.NodeID]bool
}

func newBuilder() *builder {
	return &builder{pop: &POP{G: graph.New()}, present: make(map[[2]graph.NodeID]bool)}
}

func (b *builder) node(label string, kind NodeKind) graph.NodeID {
	id := b.pop.G.AddNode(label)
	b.pop.Kind = append(b.pop.Kind, kind)
	switch kind {
	case Backbone:
		b.pop.Backbone = append(b.pop.Backbone, id)
	case Access:
		b.pop.Access = append(b.pop.Access, id)
	default:
		b.pop.Endpoints = append(b.pop.Endpoints, id)
	}
	return id
}

// link adds an undirected link once; self-loops and duplicates are
// ignored (reports whether a link was added).
func (b *builder) link(u, v graph.NodeID, capacity float64) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	if b.present[[2]graph.NodeID{u, v}] {
		return false
	}
	b.present[[2]graph.NodeID{u, v}] = true
	b.pop.G.AddEdge(u, v, capacity)
	return true
}

// routerCapacity grades a router-to-router link by the classes of its
// endpoints: backbone–backbone OC-192, backbone–access OC-48,
// access–access OC-12 (§3's link hierarchy).
func (b *builder) routerCapacity(u, v graph.NodeID) float64 {
	switch {
	case b.pop.Kind[u] == Backbone && b.pop.Kind[v] == Backbone:
		return OC192
	case b.pop.Kind[u] == Backbone || b.pop.Kind[v] == Backbone:
		return OC48
	}
	return OC12
}

// attachEndpoints hangs n virtual traffic endpoints off the routers:
// peers (fraction peerFrac) on backbone routers with OC-48 links,
// customers on access routers with OC-12 links. When a class is empty
// the other absorbs its share.
func (b *builder) attachEndpoints(n int, peerFrac float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		if (rng.Float64() < peerFrac && len(b.pop.Backbone) > 0) || len(b.pop.Access) == 0 {
			ep := b.node(fmt.Sprintf("peer%d", i), Virtual)
			b.pop.G.AddEdge(ep, b.pop.Backbone[rng.Intn(len(b.pop.Backbone))], OC48)
		} else {
			ep := b.node(fmt.Sprintf("cust%d", i), Virtual)
			b.pop.G.AddEdge(ep, b.pop.Access[rng.Intn(len(b.pop.Access))], OC12)
		}
	}
}

// connectComponents links disconnected router components until the
// graph is connected, preferring pairs the family's geometry would
// favor when positions are known (nil positions fall back to the
// lowest-ID node of each component).
func (b *builder) connectComponents(pos [][2]float64) {
	g := b.pop.G
	for {
		if g.Connected() {
			return
		}
		reach := g.Reachable(0)
		inMain := make([]bool, g.NumNodes())
		for _, n := range reach {
			inMain[n] = true
		}
		// Closest (main, outside) pair under the family geometry, or the
		// first outside node to the first main node without positions.
		bestU, bestV := graph.NodeID(-1), graph.NodeID(-1)
		bestD := math.Inf(1)
		for v := 0; v < g.NumNodes(); v++ {
			if inMain[v] {
				continue
			}
			for _, u := range reach {
				d := 1.0
				if pos != nil {
					dx := pos[u][0] - pos[v][0]
					dy := pos[u][1] - pos[v][1]
					d = dx*dx + dy*dy
				}
				if d < bestD {
					bestD, bestU, bestV = d, u, graph.NodeID(v)
				}
				if pos == nil {
					break
				}
			}
			if pos == nil {
				break
			}
		}
		b.link(bestU, bestV, b.routerCapacity(bestU, bestV))
	}
}

// backboneCount picks the number of backbone routers for a family of n
// routers: roughly a third, at least 2, leaving at least one access
// router.
func backboneCount(n int, frac float64) int {
	nb := int(float64(n)*frac + 0.5)
	if nb < 2 {
		nb = 2
	}
	if nb > n-1 {
		nb = n - 1
	}
	return nb
}

// Waxman generates a Waxman geometric POP: routers drop uniformly on
// the unit square and each pair is linked with probability
// α·exp(−d/(β·L)) where d is Euclidean distance and L = √2 the square's
// diameter (Waxman's classic random-topology model, the generator
// Rocketfuel-era studies compare against). The first ~30% of routers
// are backbone. Disconnected leftovers are joined along shortest
// geometric distance, endpoints attach per attachEndpoints.
func Waxman(routers, endpoints int, rng *rand.Rand) *POP {
	if routers < 3 || endpoints < 2 {
		panic(fmt.Sprintf("topology: Waxman needs ≥3 routers and ≥2 endpoints, got %d/%d", routers, endpoints))
	}
	const alpha, beta = 0.6, 0.25
	b := newBuilder()
	nb := backboneCount(routers, 0.3)
	pos := make([][2]float64, routers)
	for i := 0; i < routers; i++ {
		kind, label := Access, fmt.Sprintf("ar%d", i-nb)
		if i < nb {
			kind, label = Backbone, fmt.Sprintf("bb%d", i)
		}
		b.node(label, kind)
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	diag := math.Sqrt2
	for u := 0; u < routers; u++ {
		for v := u + 1; v < routers; v++ {
			dx, dy := pos[u][0]-pos[v][0], pos[u][1]-pos[v][1]
			d := math.Sqrt(dx*dx + dy*dy)
			if rng.Float64() < alpha*math.Exp(-d/(beta*diag)) {
				b.link(graph.NodeID(u), graph.NodeID(v), b.routerCapacity(graph.NodeID(u), graph.NodeID(v)))
			}
		}
	}
	b.connectComponents(pos)
	b.attachEndpoints(endpoints, 0.25, rng)
	return b.pop
}

// BarabasiAlbert generates a power-law POP by preferential attachment:
// a 3-router seed clique, then every new router links to 2 distinct
// existing routers chosen proportionally to degree. Early high-degree
// routers become the backbone (the hubs a scale-free ISP core grows),
// and endpoints also attach preferentially, concentrating customer
// links on hubs the way heavy-tailed access distributions do.
func BarabasiAlbert(routers, endpoints int, rng *rand.Rand) *POP {
	if routers < 3 || endpoints < 2 {
		panic(fmt.Sprintf("topology: BarabasiAlbert needs ≥3 routers and ≥2 endpoints, got %d/%d", routers, endpoints))
	}
	b := newBuilder()
	nb := backboneCount(routers, 0.2)
	if nb < 3 {
		nb = 3
	}
	ids := make([]graph.NodeID, 0, routers)
	for i := 0; i < routers; i++ {
		kind, label := Access, fmt.Sprintf("ar%d", i-nb)
		if i < nb {
			kind, label = Backbone, fmt.Sprintf("bb%d", i)
		}
		ids = append(ids, b.node(label, kind))
	}
	// targets lists every router once per incident link, so uniform
	// sampling from it is degree-proportional sampling.
	var targets []graph.NodeID
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			b.link(ids[i], ids[j], b.routerCapacity(ids[i], ids[j]))
			targets = append(targets, ids[i], ids[j])
		}
	}
	for i := 3; i < routers; i++ {
		// Draw 2 distinct degree-proportional targets; a slice (not a
		// map) keeps link IDs in draw order so identical seeds produce
		// byte-identical graphs.
		var attached []graph.NodeID
		for len(attached) < 2 {
			t := targets[rng.Intn(len(targets))]
			if t != ids[i] && (len(attached) == 0 || attached[0] != t) {
				attached = append(attached, t)
			}
		}
		for _, t := range attached {
			b.link(ids[i], t, b.routerCapacity(ids[i], t))
			targets = append(targets, t)
		}
		targets = append(targets, ids[i], ids[i])
	}
	// Endpoints attach preferentially too.
	for i := 0; i < endpoints; i++ {
		t := targets[rng.Intn(len(targets))]
		if b.pop.Kind[t] == Backbone {
			ep := b.node(fmt.Sprintf("peer%d", i), Virtual)
			b.pop.G.AddEdge(ep, t, OC48)
		} else {
			ep := b.node(fmt.Sprintf("cust%d", i), Virtual)
			b.pop.G.AddEdge(ep, t, OC12)
		}
	}
	return b.pop
}

// RingLadder generates a metro-core POP: a backbone ring (the metro
// optical ring), an access rail running parallel to it, and ladder
// rungs homing every access router onto two consecutive backbone
// routers — the dual-homed ring/ladder layout metro aggregation
// networks use. A few random chords model express links.
func RingLadder(routers, endpoints int, rng *rand.Rand) *POP {
	if routers < 4 || endpoints < 2 {
		panic(fmt.Sprintf("topology: RingLadder needs ≥4 routers and ≥2 endpoints, got %d/%d", routers, endpoints))
	}
	b := newBuilder()
	nb := backboneCount(routers, 0.5)
	if nb < 3 {
		nb = 3
	}
	for i := 0; i < nb; i++ {
		b.node(fmt.Sprintf("bb%d", i), Backbone)
	}
	na := routers - nb
	for i := 0; i < na; i++ {
		b.node(fmt.Sprintf("ar%d", i), Access)
	}
	bb, ar := b.pop.Backbone, b.pop.Access
	for i := 0; i < nb; i++ {
		b.link(bb[i], bb[(i+1)%nb], OC192)
	}
	// Access rail + rungs: ar[i] sits "between" bb[i mod nb] and
	// bb[(i+1) mod nb].
	for i := 0; i < na; i++ {
		if na > 1 {
			b.link(ar[i], ar[(i+1)%na], OC12)
		}
		b.link(ar[i], bb[i%nb], OC48)
		b.link(ar[i], bb[(i+1)%nb], OC48)
	}
	// Express chords across the backbone ring.
	for i := 0; i < nb/3; i++ {
		u := bb[rng.Intn(nb)]
		v := bb[rng.Intn(nb)]
		b.link(u, v, OC192)
	}
	b.attachEndpoints(endpoints, 0.3, rng)
	return b.pop
}

// FatTree generates a fat-tree-style access tier: a small core layer
// (backbone), aggregation and edge layers (access) wired in pods —
// every aggregation router uplinks to every core router, every edge
// router dual-homes onto the two aggregation routers of its pod.
// Endpoints attach to edge routers round-robin, so traffic funnels up
// the tiers the way data-center-style access networks load the core.
func FatTree(routers, endpoints int, rng *rand.Rand) *POP {
	if routers < 6 || endpoints < 2 {
		panic(fmt.Sprintf("topology: FatTree needs ≥6 routers and ≥2 endpoints, got %d/%d", routers, endpoints))
	}
	b := newBuilder()
	ncore := routers / 5
	if ncore < 2 {
		ncore = 2
	}
	nagg := (routers - ncore) / 2
	if nagg < 2 {
		nagg = 2
	}
	nedge := routers - ncore - nagg
	for i := 0; i < ncore; i++ {
		b.node(fmt.Sprintf("core%d", i), Backbone)
	}
	var agg, edge []graph.NodeID
	for i := 0; i < nagg; i++ {
		agg = append(agg, b.node(fmt.Sprintf("agg%d", i), Access))
	}
	for i := 0; i < nedge; i++ {
		edge = append(edge, b.node(fmt.Sprintf("edge%d", i), Access))
	}
	for _, a := range agg {
		for _, c := range b.pop.Backbone {
			b.link(a, c, OC192)
		}
	}
	for i, e := range edge {
		b.link(e, agg[i%nagg], OC48)
		b.link(e, agg[(i+1)%nagg], OC48)
	}
	// Endpoints spread across edge routers round-robin with a random
	// starting offset; peers hang off the core.
	off := rng.Intn(nedge)
	for i := 0; i < endpoints; i++ {
		if rng.Float64() < 0.15 {
			ep := b.node(fmt.Sprintf("peer%d", i), Virtual)
			b.pop.G.AddEdge(ep, b.pop.Backbone[rng.Intn(ncore)], OC48)
		} else {
			ep := b.node(fmt.Sprintf("cust%d", i), Virtual)
			b.pop.G.AddEdge(ep, edge[(off+i)%nedge], OC12)
		}
	}
	return b.pop
}

// Scale generates a size-parameterized variant of the paper's two-level
// POP (§2, Figure 2): n routers with the paper's link and endpoint
// densities (links ≈ 1.7·n as in the 10-router/15-link and
// 15-router/26-link instances, endpoints ≈ 1.2·n matching the 12 and
// 45 endpoint counts' lower end), so the paper's figure-suite topology
// extends smoothly to any size.
func Scale(routers int, rng *rand.Rand) *POP {
	endpoints := routers + routers/5
	if endpoints < 4 {
		endpoints = 4
	}
	cfg := Config{
		Routers:          routers,
		InterRouterLinks: routers + (routers*7)/10,
		Endpoints:        endpoints,
	}
	return GenerateRand(cfg, rng)
}
