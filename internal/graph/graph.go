// Package graph provides the network-graph substrate used throughout the
// repository: a compact undirected multigraph with integer node and edge
// identifiers, shortest-path routing (Dijkstra), Yen's k-shortest paths,
// breadth-first reachability and DOT export.
//
// The paper models a POP as a graph G = (V, E) where V is the set of
// routers and E the set of communication links (§4.1). Every higher-level
// package (topology, traffic, passive, active) works on this
// representation.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (router) in a Graph. IDs are dense: a graph
// with n nodes uses IDs 0..n-1.
type NodeID int

// EdgeID identifies an undirected edge (link). IDs are dense: a graph
// with m edges uses IDs 0..m-1.
type EdgeID int

// Edge is an undirected link between two routers with a capacity in
// arbitrary bandwidth units (the paper speaks of OC-3 .. OC-192 links;
// capacities only matter for load reporting, not feasibility).
type Edge struct {
	ID       EdgeID
	U, V     NodeID
	Capacity float64
	// Weight is the routing metric used by shortest-path routing
	// (IGP cost). The paper assumes shortest-path routing inside the
	// POP (§4.4).
	Weight float64
}

// Other returns the endpoint of e opposite to n. It panics if n is not
// an endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d (%d-%d)", n, e.ID, e.U, e.V))
}

// HasEndpoint reports whether n is one of e's endpoints.
func (e Edge) HasEndpoint(n NodeID) bool { return e.U == n || e.V == n }

// Graph is an undirected multigraph with labelled nodes. The zero value
// is an empty graph ready for use.
type Graph struct {
	labels []string
	edges  []Edge
	// adj[n] lists the IDs of the edges incident to n.
	adj [][]EdgeID
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node with the given human-readable label and returns
// its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge appends an undirected edge between u and v with the given
// capacity and unit routing weight, returning its ID. It panics if u or v
// is out of range or u == v (the POP model has no self-loops).
func (g *Graph) AddEdge(u, v NodeID, capacity float64) EdgeID {
	return g.AddWeightedEdge(u, v, capacity, 1)
}

// AddWeightedEdge is AddEdge with an explicit routing weight.
func (g *Graph) AddWeightedEdge(u, v NodeID, capacity, weight float64) EdgeID {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	g.checkNode(u)
	g.checkNode(v)
	if weight <= 0 {
		panic(fmt.Sprintf("graph: non-positive routing weight %g", weight))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, Capacity: capacity, Weight: weight})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id
}

func (g *Graph) checkNode(n NodeID) {
	if n < 0 || int(n) >= len(g.labels) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", n, len(g.labels)))
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Label returns the label of node n.
func (g *Graph) Label(n NodeID) string {
	g.checkNode(n)
	return g.labels[n]
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	if id < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("graph: edge %d out of range [0,%d)", id, len(g.edges)))
	}
	return g.edges[id]
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Incident returns the IDs of the edges incident to n. The returned slice
// must not be modified.
func (g *Graph) Incident(n NodeID) []EdgeID {
	g.checkNode(n)
	return g.adj[n]
}

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.Incident(n)) }

// EdgeBetween returns the minimum-weight edge joining u and v and true,
// or a zero Edge and false when no such edge exists.
func (g *Graph) EdgeBetween(u, v NodeID) (Edge, bool) {
	g.checkNode(u)
	g.checkNode(v)
	best, found := Edge{}, false
	for _, id := range g.adj[u] {
		e := g.edges[id]
		if e.HasEndpoint(v) && (!found || e.Weight < best.Weight) {
			best, found = e, true
		}
	}
	return best, found
}

// Neighbors returns the sorted, de-duplicated IDs of nodes adjacent to n.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(g.adj[n]))
	var out []NodeID
	for _, id := range g.Incident(n) {
		m := g.edges[id].Other(n)
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether the graph is connected (true for the empty
// graph).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	return len(g.Reachable(0)) == n
}

// Reachable returns the set of nodes reachable from src (including src),
// in BFS order.
func (g *Graph) Reachable(src NodeID) []NodeID {
	g.checkNode(src)
	visited := make([]bool, g.NumNodes())
	queue := []NodeID{src}
	visited[src] = true
	var order []NodeID
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, id := range g.adj[n] {
			m := g.edges[id].Other(n)
			if !visited[m] {
				visited[m] = true
				queue = append(queue, m)
			}
		}
	}
	return order
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]string(nil), g.labels...),
		edges:  append([]Edge(nil), g.edges...),
		adj:    make([][]EdgeID, len(g.adj)),
	}
	for i, a := range g.adj {
		c.adj[i] = append([]EdgeID(nil), a...)
	}
	return c
}
