package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls DOT export. The zero value produces a plain graph.
type DOTOptions struct {
	// Name is the graph name; defaults to "G".
	Name string
	// EdgeLabel, when non-nil, returns the label to print on an edge.
	EdgeLabel func(Edge) string
	// EdgeWidth, when non-nil, returns a pen width for an edge; used to
	// render traffic-load figures like the paper's Figure 6 where edge
	// thickness encodes the share of traffic on the link.
	EdgeWidth func(Edge) float64
	// NodeShape, when non-nil, returns the Graphviz shape for a node
	// (e.g. "box" for backbone routers, "ellipse" for access routers).
	NodeShape func(NodeID) string
	// Highlight, when non-nil, reports whether an edge should be drawn
	// emphasized (e.g. a monitored link).
	Highlight func(Edge) bool
}

// WriteDOT renders the graph in Graphviz DOT format.
func (g *Graph) WriteDOT(w io.Writer, opt DOTOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [fontsize=10];\n")
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		shape := ""
		if opt.NodeShape != nil {
			shape = opt.NodeShape(id)
		}
		if shape != "" {
			fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n, g.Label(id), shape)
		} else {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", n, g.Label(id))
		}
	}
	for _, e := range g.edges {
		var attrs []string
		if opt.EdgeLabel != nil {
			if l := opt.EdgeLabel(e); l != "" {
				attrs = append(attrs, fmt.Sprintf("label=%q", l))
			}
		}
		if opt.EdgeWidth != nil {
			attrs = append(attrs, fmt.Sprintf("penwidth=%.2f", opt.EdgeWidth(e)))
		}
		if opt.Highlight != nil && opt.Highlight(e) {
			attrs = append(attrs, "color=red", "style=bold")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  n%d -- n%d [%s];\n", e.U, e.V, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  n%d -- n%d;\n", e.U, e.V)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
