package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// line builds a path graph 0-1-2-...-(n-1) with unit weights.
func line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("node ids = %d,%d, want 0,1", a, b)
	}
	e := g.AddEdge(a, b, 10)
	if e != 0 {
		t.Fatalf("edge id = %d, want 0", e)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("size = %d nodes %d edges, want 2,1", g.NumNodes(), g.NumEdges())
	}
	ed := g.Edge(e)
	if ed.U != a || ed.V != b || ed.Capacity != 10 || ed.Weight != 1 {
		t.Fatalf("edge = %+v", ed)
	}
	if g.Label(a) != "a" || g.Label(b) != "b" {
		t.Fatalf("labels = %q,%q", g.Label(a), g.Label(b))
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 0, U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	if !e.HasEndpoint(3) || !e.HasEndpoint(7) || e.HasEndpoint(5) {
		t.Fatal("HasEndpoint wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestSelfLoopPanics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g.AddEdge(a, a, 1)
}

func TestBadNodePanics(t *testing.T) {
	g := New()
	g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	g.AddEdge(0, 5, 1)
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, 1)
	g.AddEdge(a, c, 1)
	g.AddEdge(a, b, 1) // parallel edge
	if g.Degree(a) != 3 {
		t.Fatalf("deg(a) = %d, want 3", g.Degree(a))
	}
	nb := g.Neighbors(a)
	if len(nb) != 2 || nb[0] != b || nb[1] != c {
		t.Fatalf("neighbors = %v, want [b c]", nb)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddWeightedEdge(a, b, 1, 5)
	cheap := g.AddWeightedEdge(a, b, 1, 2)
	e, ok := g.EdgeBetween(a, b)
	if !ok || e.ID != cheap {
		t.Fatalf("EdgeBetween = %+v ok=%v, want edge %d", e, ok, cheap)
	}
	c := g.AddNode("c")
	if _, ok := g.EdgeBetween(a, c); ok {
		t.Fatal("EdgeBetween found a non-existent edge")
	}
}

func TestConnectedReachable(t *testing.T) {
	g := line(4)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	g.AddNode("isolated")
	if g.Connected() {
		t.Fatal("graph with isolated node should not be connected")
	}
	if got := len(g.Reachable(0)); got != 4 {
		t.Fatalf("reachable from 0 = %d nodes, want 4", got)
	}
	if New().Connected() != true {
		t.Fatal("empty graph should be connected")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	p, ok := g.ShortestPath(0, 4)
	if !ok {
		t.Fatal("no path on a line graph")
	}
	if p.Len() != 4 || p.Cost != 4 {
		t.Fatalf("path len=%d cost=%g, want 4,4", p.Len(), p.Cost)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("invalid path: %v", err)
	}
	if p.Src() != 0 || p.Dst() != 4 {
		t.Fatalf("endpoints = %d,%d", p.Src(), p.Dst())
	}
}

func TestShortestPathPrefersLightEdges(t *testing.T) {
	// Triangle where the direct edge is heavier than the detour.
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddWeightedEdge(a, c, 1, 10)
	g.AddWeightedEdge(a, b, 1, 1)
	g.AddWeightedEdge(b, c, 1, 1)
	p, ok := g.ShortestPath(a, c)
	if !ok || p.Cost != 2 || p.Len() != 2 {
		t.Fatalf("path = %+v ok=%v, want 2-hop cost 2", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if _, ok := g.ShortestPath(a, b); ok {
		t.Fatal("found a path in a disconnected graph")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := line(2)
	p, ok := g.ShortestPath(0, 0)
	if !ok || p.Len() != 0 || p.Cost != 0 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
}

func TestShortestPathsAllDest(t *testing.T) {
	g := line(4)
	ps := g.ShortestPaths(0)
	if len(ps) != 4 {
		t.Fatalf("got %d paths, want 4", len(ps))
	}
	for d, p := range ps {
		if p.Dst() != d {
			t.Fatalf("path to %d ends at %d", d, p.Dst())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("invalid path to %d: %v", d, err)
		}
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Two parallel unit-weight 2-hop routes a-b-d and a-c-d; the route
	// through lower edge IDs must always win.
	build := func() *Graph {
		g := New()
		a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
		g.AddEdge(a, b, 1)
		g.AddEdge(b, d, 1)
		g.AddEdge(a, c, 1)
		g.AddEdge(c, d, 1)
		return g
	}
	g := build()
	p1, _ := g.ShortestPath(0, 3)
	for i := 0; i < 10; i++ {
		p2, _ := build().ShortestPath(0, 3)
		if !equalEdges(p1.Edges, p2.Edges) {
			t.Fatalf("tie-break not deterministic: %v vs %v", p1.Edges, p2.Edges)
		}
	}
}

func TestKShortestPaths(t *testing.T) {
	// Diamond: two disjoint 2-hop routes plus one 3-hop route.
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, d, 1)
	g.AddEdge(a, c, 1)
	g.AddWeightedEdge(c, d, 1, 2)
	g.AddWeightedEdge(b, c, 1, 1)
	ps := g.KShortestPaths(a, d, 5)
	if len(ps) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(ps))
	}
	for i, p := range ps {
		if err := p.Validate(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		if p.Src() != a || p.Dst() != d {
			t.Fatalf("path %d endpoints %d-%d", i, p.Src(), p.Dst())
		}
		if i > 0 && ps[i-1].Cost > p.Cost+1e-9 {
			t.Fatalf("paths not sorted by cost: %g before %g", ps[i-1].Cost, p.Cost)
		}
	}
	// All returned paths must be distinct.
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if equalEdges(ps[i].Edges, ps[j].Edges) {
				t.Fatalf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	g := New()
	nodes := make([]NodeID, 5)
	for i := range nodes {
		nodes[i] = g.AddNode("n")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddWeightedEdge(nodes[i], nodes[j], 1, 1+rng.Float64())
		}
	}
	ps := g.KShortestPaths(nodes[0], nodes[4], 10)
	for _, p := range ps {
		seen := make(map[NodeID]bool)
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("path revisits node %d: %v", n, p.Nodes)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	g := line(3)
	if ps := g.KShortestPaths(0, 2, 0); ps != nil {
		t.Fatal("k=0 should return nil")
	}
	// Line graph has exactly one loopless path.
	if ps := g.KShortestPaths(0, 2, 5); len(ps) != 1 {
		t.Fatalf("line graph: got %d paths, want 1", len(ps))
	}
	g2 := New()
	g2.AddNode("a")
	g2.AddNode("b")
	if ps := g2.KShortestPaths(0, 1, 3); ps != nil {
		t.Fatal("disconnected: want nil")
	}
}

func TestPathUses(t *testing.T) {
	g := line(4)
	p, _ := g.ShortestPath(0, 3)
	for _, e := range p.Edges {
		if !p.Uses(e) {
			t.Fatalf("path should use edge %d", e)
		}
	}
	if p.Uses(EdgeID(99)) {
		t.Fatal("path claims to use a bogus edge")
	}
}

func TestPathValidateErrors(t *testing.T) {
	g := line(3)
	if err := (Path{}).Validate(g); err == nil {
		t.Fatal("empty path should be invalid")
	}
	bad := Path{Nodes: []NodeID{0, 2}, Edges: []EdgeID{0}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("edge/node mismatch should be invalid")
	}
	wrongCost := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{0}, Cost: 42}
	if err := wrongCost.Validate(g); err == nil {
		t.Fatal("wrong cost should be invalid")
	}
}

func TestClone(t *testing.T) {
	g := line(3)
	c := g.Clone()
	c.AddNode("extra")
	c.AddEdge(0, 2, 1)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatal("Clone is not independent of the original")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a, b := g.AddNode("bb1"), g.AddNode("ar1")
	g.AddEdge(a, b, 10)
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Name:      "pop",
		EdgeLabel: func(e Edge) string { return "l" },
		EdgeWidth: func(e Edge) float64 { return 2.5 },
		NodeShape: func(n NodeID) string { return "box" },
		Highlight: func(e Edge) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "pop"`, `label="bb1"`, "shape=box", "penwidth=2.50", "color=red", "n0 -- n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTPlain(t *testing.T) {
	g := line(2)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `graph "G"`) {
		t.Errorf("default name missing:\n%s", sb.String())
	}
}
