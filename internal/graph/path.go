package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Path is a simple path through the graph, stored both as the node
// sequence and the edge sequence (len(Edges) == len(Nodes)-1).
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
	// Cost is the sum of the routing weights of Edges.
	Cost float64
}

// Src returns the first node of the path.
func (p Path) Src() NodeID { return p.Nodes[0] }

// Dst returns the last node of the path.
func (p Path) Dst() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Len returns the number of edges.
func (p Path) Len() int { return len(p.Edges) }

// Uses reports whether the path traverses edge id.
func (p Path) Uses(id EdgeID) bool {
	for _, e := range p.Edges {
		if e == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of p.
func (p Path) Clone() Path {
	return Path{
		Nodes: append([]NodeID(nil), p.Nodes...),
		Edges: append([]EdgeID(nil), p.Edges...),
		Cost:  p.Cost,
	}
}

// Validate checks internal consistency of p against g: the edge sequence
// must connect the node sequence and Cost must equal the weight sum.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if len(p.Edges) != len(p.Nodes)-1 {
		return fmt.Errorf("graph: path has %d nodes but %d edges", len(p.Nodes), len(p.Edges))
	}
	var cost float64
	for i, id := range p.Edges {
		e := g.Edge(id)
		if !e.HasEndpoint(p.Nodes[i]) || e.Other(p.Nodes[i]) != p.Nodes[i+1] {
			return fmt.Errorf("graph: edge %d does not join node %d to node %d", id, p.Nodes[i], p.Nodes[i+1])
		}
		cost += e.Weight
	}
	if math.Abs(cost-p.Cost) > 1e-9 {
		return fmt.Errorf("graph: path cost %g does not match edge weights %g", p.Cost, cost)
	}
	return nil
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-weight path from src to dst and true,
// or a zero Path and false when dst is unreachable. Ties are broken
// deterministically by preferring lower edge IDs, so routing is stable
// across runs with the same topology (the paper's ISP-defined routing
// strategy is deterministic).
func (g *Graph) ShortestPath(src, dst NodeID) (Path, bool) {
	g.checkNode(src)
	g.checkNode(dst)
	dist, via := g.dijkstra(src, nil)
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return g.assemble(src, dst, dist, via), true
}

// ShortestPaths runs Dijkstra once from src and returns, for every
// reachable destination, the shortest path. Unreachable destinations are
// absent from the map.
func (g *Graph) ShortestPaths(src NodeID) map[NodeID]Path {
	g.checkNode(src)
	dist, via := g.dijkstra(src, nil)
	out := make(map[NodeID]Path, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		d := NodeID(n)
		if math.IsInf(dist[d], 1) {
			continue
		}
		out[d] = g.assemble(src, d, dist, via)
	}
	return out
}

// dijkstra computes single-source shortest distances from src, skipping
// edges for which banned returns true (banned may be nil). via[n] is the
// edge used to reach n on the shortest path tree.
func (g *Graph) dijkstra(src NodeID, banned func(EdgeID) bool) (dist []float64, via []EdgeID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	via = make([]EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		via[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, id := range g.adj[u] {
			if banned != nil && banned(id) {
				continue
			}
			e := g.edges[id]
			v := e.Other(u)
			nd := dist[u] + e.Weight
			// Strict improvement, or an equal-cost path reached through a
			// smaller edge ID: keeps tie-breaking deterministic.
			if nd < dist[v]-1e-12 || (math.Abs(nd-dist[v]) <= 1e-12 && via[v] >= 0 && id < via[v]) {
				dist[v] = nd
				via[v] = id
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	return dist, via
}

// assemble rebuilds the path src→dst from the Dijkstra predecessor array.
func (g *Graph) assemble(src, dst NodeID, dist []float64, via []EdgeID) Path {
	var redges []EdgeID
	var rnodes []NodeID
	cur := dst
	rnodes = append(rnodes, cur)
	for cur != src {
		id := via[cur]
		if id < 0 {
			panic(fmt.Sprintf("graph: broken predecessor chain at node %d", cur))
		}
		redges = append(redges, id)
		cur = g.edges[id].Other(cur)
		rnodes = append(rnodes, cur)
	}
	// Reverse in place.
	for i, j := 0, len(redges)-1; i < j; i, j = i+1, j-1 {
		redges[i], redges[j] = redges[j], redges[i]
	}
	for i, j := 0, len(rnodes)-1; i < j; i, j = i+1, j-1 {
		rnodes[i], rnodes[j] = rnodes[j], rnodes[i]
	}
	return Path{Nodes: rnodes, Edges: redges, Cost: dist[dst]}
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// in non-decreasing cost order (Yen's algorithm). It is used to build the
// multi-routed traffics of §5 (load-balancing over several routes).
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each node of the previous path except the last, compute a
		// spur path that deviates there.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]

			bannedEdges := make(map[EdgeID]bool)
			for _, p := range paths {
				if sharesRoot(p, rootNodes) && p.Len() > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			bannedNodes := make(map[NodeID]bool)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				bannedNodes[n] = true
			}
			ban := func(id EdgeID) bool {
				if bannedEdges[id] {
					return true
				}
				e := g.edges[id]
				return bannedNodes[e.U] || bannedNodes[e.V]
			}
			dist, via := g.dijkstra(spurNode, ban)
			if math.IsInf(dist[dst], 1) {
				continue
			}
			spur := g.assemble(spurNode, dst, dist, via)
			total := joinPaths(g, rootNodes, rootEdges, spur)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Extract the cheapest candidate.
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].Cost < candidates[best].Cost {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func sharesRoot(p Path, rootNodes []NodeID) bool {
	if len(p.Nodes) < len(rootNodes) {
		return false
	}
	for i, n := range rootNodes {
		if p.Nodes[i] != n {
			return false
		}
	}
	return true
}

func joinPaths(g *Graph, rootNodes []NodeID, rootEdges []EdgeID, spur Path) Path {
	nodes := append(append([]NodeID(nil), rootNodes...), spur.Nodes[1:]...)
	edges := append(append([]EdgeID(nil), rootEdges...), spur.Edges...)
	var cost float64
	for _, id := range edges {
		cost += g.edges[id].Weight
	}
	return Path{Nodes: nodes, Edges: edges, Cost: cost}
}

func containsPath(ps []Path, p Path) bool {
	for _, q := range ps {
		if equalEdges(q.Edges, p.Edges) {
			return true
		}
	}
	return false
}

func equalEdges(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
