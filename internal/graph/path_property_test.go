package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnected builds a random connected graph with n nodes: a random
// spanning tree plus extra random edges.
func randomConnected(rng *rand.Rand, n, extra int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.AddWeightedEdge(NodeID(i), NodeID(j), 1, 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.AddWeightedEdge(NodeID(u), NodeID(v), 1, 1+rng.Float64()*9)
	}
	return g
}

// Property: Dijkstra distances satisfy the triangle inequality over every
// edge, and every returned path validates.
func TestDijkstraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomConnected(rng, n, rng.Intn(2*n))
		src := NodeID(rng.Intn(n))
		paths := g.ShortestPaths(src)
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		for d, p := range paths {
			dist[d] = p.Cost
			if err := p.Validate(g); err != nil {
				t.Logf("seed %d: invalid path: %v", seed, err)
				return false
			}
		}
		for _, e := range g.Edges() {
			if dist[e.V] > dist[e.U]+e.Weight+1e-9 || dist[e.U] > dist[e.V]+e.Weight+1e-9 {
				t.Logf("seed %d: triangle inequality violated on edge %d", seed, e.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the first path of KShortestPaths equals ShortestPath, costs
// are non-decreasing, and all paths are simple and valid.
func TestKShortestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomConnected(rng, n, n)
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		if src == dst {
			return true
		}
		sp, ok := g.ShortestPath(src, dst)
		if !ok {
			return true
		}
		ks := g.KShortestPaths(src, dst, 4)
		if len(ks) == 0 || math.Abs(ks[0].Cost-sp.Cost) > 1e-9 {
			t.Logf("seed %d: k-shortest first path cost mismatch", seed)
			return false
		}
		prev := 0.0
		for i, p := range ks {
			if err := p.Validate(g); err != nil {
				t.Logf("seed %d: path %d invalid: %v", seed, i, err)
				return false
			}
			if p.Cost < prev-1e-9 {
				t.Logf("seed %d: costs decrease at %d", seed, i)
				return false
			}
			prev = p.Cost
			seen := make(map[NodeID]bool)
			for _, nd := range p.Nodes {
				if seen[nd] {
					t.Logf("seed %d: path %d not simple", seed, i)
					return false
				}
				seen[nd] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reachable from any node of a randomConnected graph covers all
// nodes.
func TestReachableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomConnected(rng, n, 0)
		src := NodeID(rng.Intn(n))
		return len(g.Reachable(src)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
