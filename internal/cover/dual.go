package cover

import (
	"math"
	"sort"

	"repro/internal/lp"
)

// This file implements the Lagrangian dual-ascent lower bound of the
// exact search: a feasible dual solution of the partial-cover LP
//
//	min Σ_S x_S   s.t.  Σ_{S∋e} x_S ≥ δ_e,  Σ_e w_e·δ_e ≥ T,
//	              0 ≤ δ ≤ 1, x ≥ 0
//
// is a pair (y, λ) with y_e, λ ≥ 0 and Σ_{e∈S} y_e ≤ 1 for every set S,
// giving the bound λ·T − Σ_e max(0, λ·w_e − y_e) on the LP optimum and
// hence on the integer one. The same (y, λ) stays feasible at every
// search node: branching only removes sets (packing constraints are
// monotone under set removal) and covering elements only shrinks both
// the remaining target T′ = T − coveredW and the penalty sum. The
// per-node bound is therefore
//
//	⌈ λ·(target − coveredW) − Σ_{e uncovered} φ_e ⌉,  φ_e = max(0, λw_e − y_e)
//
// maintained in O(1) per element flip (include() subtracts φ_e as it
// covers e), with y raised once by deterministic dual ascent at the
// root and λ optimized over the breakpoints of the concave piecewise-
// linear dual objective. Unlike the root LP this costs no pivots, is
// immune to the rootLPRowCap, and prices every node, not just the root.

// dualAscentRounds bounds the alternating λ-sweep / capped-ascent
// iterations; the scheme converges (each round keeps the best pair) and
// the whole loop costs a few instance scans — noise next to one search
// node budget.
const dualAscentRounds = 8

// prepareDualBound builds the frozen (φ, λ) state by alternating two
// exact coordinate steps on the concave dual: given λ, a deterministic
// ascent raises each y_e towards min(coverer slack, λ·w_e) — the cap
// matters: past λ·w_e extra y_e buys nothing, so uncapped ascent (the
// λ-blind first round) burns whole sets on single elements and starves
// the rest, collapsing the λ sweep to 0 on partial covers. Given y, λ
// is optimized exactly over the breakpoints r_e = y_e/w_e. The best
// (y, λ) pair over all rounds is frozen. Deterministic throughout: the
// ascent processes elements fewest-coverers-first (ties by id), and
// the λ sweep breaks ties towards the smaller multiplier.
func (s *exactSearch) prepareDualBound(excluded []bool, covered bitset, coveredW float64) {
	n := s.in.NumElements
	nsets := len(s.in.Sets)
	// Per-element distinct coverer lists over the usable sets.
	seen := newBitset(nsets)
	coverers := make([][]int32, n)
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			coverers[e] = append(coverers[e], int32(si))
		}
	}
	for e := range coverers {
		cs := coverers[e]
		out := cs[:0]
		for i := range seen {
			seen[i] = 0
		}
		for _, si := range cs {
			if !seen.get(int(si)) {
				seen.set(int(si))
				out = append(out, si)
			}
		}
		coverers[e] = out
	}

	// active = uncovered positive-weight elements (the ones that appear
	// in T′ and the penalty sum); the ascent additionally needs a
	// coverer to have a constraint to push against — coverer-less
	// elements keep y = 0, which makes φ_e = λw_e cancel their target
	// contribution exactly (they can never be covered, so the bound
	// must not count on their weight).
	var active, order []int
	for e := 0; e < n; e++ {
		if !covered.get(e) && s.in.weight(e) > 0 {
			active = append(active, e)
			if len(coverers[e]) > 0 {
				order = append(order, e)
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := len(coverers[order[a]]), len(coverers[order[b]])
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	remaining := s.target - coveredW

	y := make([]float64, n)
	slack := make([]float64, nsets)
	// ascent rebuilds y from zero for the given λ cap (0 = uncapped).
	ascent := func(lambda float64) {
		for e := range y {
			y[e] = 0
		}
		for si := range slack {
			slack[si] = 0
			if !excluded[si] {
				slack[si] = 1
			}
		}
		for pass := 0; pass < 2; pass++ {
			for _, e := range order {
				m := math.Inf(1)
				for _, si := range coverers[e] {
					if slack[si] < m {
						m = slack[si]
					}
				}
				if lambda > 0 {
					if room := lambda*s.in.weight(e) - y[e]; room < m {
						m = room
					}
				}
				if m <= 1e-12 {
					continue
				}
				y[e] += m
				for _, si := range coverers[e] {
					slack[si] -= m
				}
			}
		}
	}
	// sweep optimizes λ exactly for the current y: the dual objective
	// D(λ) = λT′ − Σ max(0, λw_e − y_e) is concave piecewise-linear
	// with slope T′ − Σ_{e: r_e < λ} w_e, so its maximum sits at the
	// smallest breakpoint r_e = y_e/w_e whose prefix weight reaches T′
	// (feasibility guarantees the total uncovered weight does).
	bps := make([]struct{ r, w float64 }, 0, len(active))
	sweep := func() (float64, float64) {
		bps = bps[:0]
		for _, e := range active {
			w := s.in.weight(e)
			bps = append(bps, struct{ r, w float64 }{r: y[e] / w, w: w})
		}
		sort.Slice(bps, func(a, b int) bool { return bps[a].r < bps[b].r })
		lambda, acc := 0.0, 0.0
		for _, b := range bps {
			lambda = b.r
			acc += b.w
			if acc >= remaining-1e-9 {
				break
			}
		}
		val := lambda * remaining
		for _, e := range active {
			if p := lambda*s.in.weight(e) - y[e]; p > 0 {
				val -= p
			}
		}
		return lambda, val
	}

	// lam0 is the uniform multiplier: the λ at which the total capped
	// demand Σ λ·w_e·|coverers(e)| equals the total set slack, i.e. the
	// scale where a capped ascent can hand every element its full cap.
	// It anchors the alternation (and re-anchors it whenever a sweep
	// degenerates to 0 — on partial covers the slack allowance swallows
	// every zero-y breakpoint of an ascent that starved the tail).
	demand := 0.0
	liveSets := 0.0
	for si := range slack {
		if !excluded[si] {
			liveSets++
		}
	}
	for _, e := range order {
		demand += s.in.weight(e) * float64(len(coverers[e]))
	}
	lam0 := 0.0
	if demand > 0 {
		lam0 = liveSets / demand
	}

	var bestY []float64
	bestLambda, bestVal := 0.0, 0.0
	lambda := 0.0
	for round := 0; round < dualAscentRounds; round++ {
		ascent(lambda)
		var val float64
		lambda, val = sweep()
		if val > bestVal && lambda > 0 {
			bestVal = val
			bestLambda = lambda
			bestY = append(bestY[:0], y...)
		}
		if lambda <= 0 {
			if lam0 <= 0 {
				break
			}
			// Degenerate sweep: re-anchor at a multiple of the uniform
			// scale (escalating across rounds so repeated degeneracies
			// explore upwards instead of looping).
			lambda = lam0 * float64(int(1)<<uint(round))
		}
	}
	if bestLambda <= 0 || bestVal <= 0 {
		return
	}

	phi := make([]float64, n)
	rootVal := bestLambda * remaining
	du0 := 0.0
	for _, e := range active {
		if p := bestLambda*s.in.weight(e) - bestY[e]; p > 0 {
			phi[e] = p
			du0 += p
		}
	}
	rootVal -= du0
	s.dualPhi, s.dualLambda, s.dualUncov0 = phi, bestLambda, du0
	// rootLB bounds the TOTAL cover size; the dual prices only the
	// residual after presolve, and the forced sets are in every cover.
	if rlb := int(math.Ceil(rootVal-1e-6)) + len(s.forced); rlb > s.rootLB {
		s.rootLB = rlb
	}
	s.haveRootLB = s.rootLB >= 1
}

// Subgradient schedule of strengthenDualBound. The iteration count is
// fixed (determinism: the phase must not depend on wall clock), the
// step size follows the Polyak rule t = α(UB − W)/‖g‖² against the
// incumbent, α halves after subgradPatience non-improving steps, and
// the packing projection + λ-sweep snapshot runs every subgradCheck
// iterations (projection costs about as much as one iteration).
const (
	subgradIters    = 96
	subgradCheck    = 16
	subgradPatience = 12
)

// strengthenDualBound runs a projected-subgradient phase on the
// Lagrangian relaxation that prices the COVERAGE constraints instead
// of the packing ones:
//
//	L(y) = Σ_S min(0, 1 − Σ_{e∈S} y_e) + min{ Σ_e y_e δ_e : Σ w_e δ_e ≥ T′, 0 ≤ δ ≤ 1 }
//
// for y ≥ 0 over the uncovered elements. L(y) lower-bounds the LP
// optimum for EVERY y, the inner minimum is a fractional knapsack
// (fill cheapest ratio y_e/w_e first), and the supergradient is
// δ_e − #{S ∋ e : Σ y > 1}. This climbs much closer to the LP optimum
// than the capped alternation in prepareDualBound, whose ascent order
// is greedy. The climb itself is NOT packing-feasible, so every
// snapshot is projected (divide each y_e by the largest violation of
// a set containing e — the projected vector is feasible for every
// packing row) and swept for the exact λ, yielding a frozen (φ, λ)
// pair in the same O(1)-per-node form as prepareDualBound; the best
// snapshot wins. Runs at the deterministic burn-in boundary only:
// searches that close within the burn-in never pay for it.
func (s *exactSearch) strengthenDualBound(excluded []bool, covered bitset, coveredW float64) {
	n := s.in.NumElements
	nsets := len(s.in.Sets)
	remaining := s.target - coveredW
	if remaining <= 1e-9 {
		return
	}

	// Deduped per-element coverer lists over the usable sets, and the
	// inverse per-set active-element lists (covered elements have no
	// residual constraint, so they carry no multiplier).
	seen := newBitset(nsets)
	coverers := make([][]int32, n)
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			coverers[e] = append(coverers[e], int32(si))
		}
	}
	var active []int32
	for e := 0; e < n; e++ {
		if covered.get(e) || s.in.weight(e) <= 0 {
			continue
		}
		active = append(active, int32(e))
		cs := coverers[e]
		out := cs[:0]
		for i := range seen {
			seen[i] = 0
		}
		for _, si := range cs {
			if !seen.get(int(si)) {
				seen.set(int(si))
				out = append(out, si)
			}
		}
		coverers[e] = out
	}
	if len(active) == 0 {
		return
	}
	setElems := make([][]int32, nsets)
	for _, e := range active {
		for _, si := range coverers[e] {
			setElems[si] = append(setElems[si], e)
		}
	}

	y := make([]float64, n)
	grad := make([]float64, n)
	vset := make([]float64, nsets)
	yp := make([]float64, n)
	type bp struct {
		r, w float64
		e    int32
	}
	bps := make([]bp, len(active))

	// evaluate computes W = L(y) and fills grad with a supergradient.
	evaluate := func() float64 {
		for _, e := range active {
			grad[e] = 0
		}
		W := 0.0
		for si := range setElems {
			es := setElems[si]
			if len(es) == 0 {
				continue
			}
			v := 0.0
			for _, e := range es {
				v += y[e]
			}
			vset[si] = v
			if v > 1 {
				W += 1 - v
				for _, e := range es {
					grad[e]--
				}
			}
		}
		for i, e := range active {
			w := s.in.weight(int(e))
			bps[i] = bp{r: y[e] / w, w: w, e: e}
		}
		sort.Slice(bps, func(a, b int) bool {
			if !lp.ExactEq(bps[a].r, bps[b].r) {
				return bps[a].r < bps[b].r
			}
			return bps[a].e < bps[b].e
		})
		left := remaining
		for _, b := range bps {
			if left <= 1e-9 {
				break
			}
			take := b.w
			if take > left {
				take = left
			}
			frac := take / b.w
			grad[b.e] += frac
			W += b.r * take
			left -= take
		}
		return W
	}

	// snapshot projects y onto the packing polytope, sweeps the exact
	// λ, and returns the frozen-form dual value with its (yp, λ) pair.
	snapshot := func() (float64, float64) {
		for _, e := range active {
			d := 1.0
			for _, si := range coverers[e] {
				if vset[si] > d {
					d = vset[si]
				}
			}
			yp[e] = y[e] / d
		}
		for i, e := range active {
			w := s.in.weight(int(e))
			bps[i] = bp{r: yp[e] / w, w: w, e: e}
		}
		sort.Slice(bps, func(a, b int) bool {
			if !lp.ExactEq(bps[a].r, bps[b].r) {
				return bps[a].r < bps[b].r
			}
			return bps[a].e < bps[b].e
		})
		lambda, acc := 0.0, 0.0
		for _, b := range bps {
			lambda = b.r
			acc += b.w
			if acc >= remaining-1e-9 {
				break
			}
		}
		val := lambda * remaining
		for _, e := range active {
			if p := lambda*s.in.weight(int(e)) - yp[e]; p > 0 {
				val -= p
			}
		}
		return lambda, val
	}

	ub := float64(s.bestLen)
	curVal := 0.0
	if s.dualPhi != nil {
		curVal = s.dualLambda*remaining - s.dualUncov0
	}
	bestVal, bestLambda := curVal, 0.0
	var bestY []float64

	alpha, maxW, stall := 2.0, math.Inf(-1), 0
	for it := 0; it < subgradIters; it++ {
		W := evaluate()
		if W > maxW+1e-9 {
			maxW, stall = W, 0
		} else if stall++; stall >= subgradPatience {
			alpha, stall = alpha/2, 0
		}
		if it%subgradCheck == subgradCheck-1 || it == subgradIters-1 {
			if lambda, val := snapshot(); val > bestVal && lambda > 0 {
				bestVal, bestLambda = val, lambda
				bestY = append(bestY[:0], yp...)
			}
		}
		if W >= ub-1e-9 {
			break // the relaxation already matches the incumbent
		}
		norm := 0.0
		for _, e := range active {
			norm += grad[e] * grad[e]
		}
		if norm <= 1e-18 {
			break
		}
		t := alpha * (ub - W) / norm
		for _, e := range active {
			if v := y[e] + t*grad[e]; v > 0 {
				y[e] = v
			} else {
				y[e] = 0
			}
		}
	}
	// The unprojected Lagrangian value maxW is itself a valid lower
	// bound on the residual LP optimum — the x-term prices packing
	// violations — so the ROOT bound takes it directly (plus the
	// forced sets, which are in every cover); only the per-node
	// frozen form needs the (lossier) projected pair.
	if rlb := int(math.Ceil(maxW-1e-6)) + len(s.forced); rlb > s.rootLB {
		s.rootLB = rlb
		s.haveRootLB = true
	}
	if bestLambda <= 0 || bestVal <= curVal {
		return
	}

	phi := make([]float64, n)
	du0 := 0.0
	for _, e := range active {
		if p := bestLambda*s.in.weight(int(e)) - bestY[e]; p > 0 {
			phi[e] = p
			du0 += p
		}
	}
	s.dualPhi, s.dualLambda, s.dualUncov0 = phi, bestLambda, du0
	rootVal := bestLambda*remaining - du0
	if rlb := int(math.Ceil(rootVal-1e-6)) + len(s.forced); rlb > s.rootLB {
		s.rootLB = rlb
	}
	s.haveRootLB = s.rootLB >= 1
}

// dualLB prices the current node against the frozen root duals.
// dualUncov is the incrementally-maintained Σ φ_e over the still-
// uncovered elements; the 1e-6 slack absorbs its float drift (exactly
// like the LP bound's ceiling).
func (s *exactSearch) dualLB(coveredW, dualUncov float64) int {
	v := s.dualLambda*(s.target-coveredW) - dualUncov
	if v <= 0 {
		return 0
	}
	return int(math.Ceil(v - 1e-6))
}
