package cover

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyFullCoverSimple(t *testing.T) {
	in := Instance{
		NumElements: 4,
		Sets: [][]int{
			{0, 1},    // set 0
			{2},       // set 1
			{3},       // set 2
			{1, 2, 3}, // set 3
		},
	}
	res := Greedy(in)
	if !res.Feasible {
		t.Fatal("feasible instance reported infeasible")
	}
	// Optimal is {0,3}; greedy picks 3 (gain 3) then 0.
	if len(res.Chosen) != 2 {
		t.Fatalf("greedy chose %v, want 2 sets", res.Chosen)
	}
	if res.Covered != 4 {
		t.Fatalf("covered %g, want 4", res.Covered)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	in := Instance{NumElements: 3, Sets: [][]int{{0}, {1}}}
	res := Greedy(in)
	if res.Feasible {
		t.Fatal("element 2 is uncoverable; want infeasible")
	}
}

func TestGreedyPartialStopsEarly(t *testing.T) {
	in := Instance{
		NumElements: 4,
		Weights:     []float64{10, 1, 1, 1},
		Sets:        [][]int{{0}, {1}, {2}, {3}},
	}
	// Target 10 out of 13: one set (the heavy element) is enough.
	res := GreedyPartial(in, 10)
	if len(res.Chosen) != 1 || res.Chosen[0] != 0 {
		t.Fatalf("chosen = %v, want [0]", res.Chosen)
	}
}

func TestGreedyZeroTarget(t *testing.T) {
	in := Instance{NumElements: 2, Sets: [][]int{{0}, {1}}}
	res := GreedyPartial(in, 0)
	if len(res.Chosen) != 0 || !res.Feasible {
		t.Fatalf("zero target should pick nothing: %+v", res)
	}
}

func TestGreedySuboptimalOnPaperCounterexample(t *testing.T) {
	// Figure 3 of the paper: four traffics, two of weight 2 (t0,t1) and
	// two of weight 1 (t2,t3). Links: one carrying {t0,t1} (load 4), two
	// carrying {t0,t2} and {t1,t3} (load 3 each), plus two carrying only
	// {t2} and {t3} (load 1). Greedy takes the load-4 link then the two
	// load-1 links (3 devices); optimal is the two load-3 links.
	in := Instance{
		NumElements: 4,
		Weights:     []float64{2, 2, 1, 1},
		Sets: [][]int{
			{0, 1}, // heavy link, load 4
			{0, 2}, // load 3
			{1, 3}, // load 3
			{2},    // load 1
			{3},    // load 1
		},
	}
	g := Greedy(in)
	if len(g.Chosen) != 3 {
		t.Fatalf("greedy chose %v, want the paper's 3-set trap", g.Chosen)
	}
	ex := Exact(context.Background(), in, in.TotalWeight(), ExactOptions{})
	if !ex.Exact || len(ex.Chosen) != 2 {
		t.Fatalf("exact chose %v (exact=%v), want 2 sets", ex.Chosen, ex.Exact)
	}
}

func TestExactMatchesKnownOptimum(t *testing.T) {
	in := Instance{
		NumElements: 6,
		Sets: [][]int{
			{0, 1, 2}, {3, 4, 5}, {0, 3}, {1, 4}, {2, 5},
		},
	}
	res := Exact(context.Background(), in, 6, ExactOptions{})
	if !res.Exact || len(res.Chosen) != 2 {
		t.Fatalf("exact = %v (%d sets), want 2", res.Chosen, len(res.Chosen))
	}
}

func TestExactInfeasible(t *testing.T) {
	in := Instance{NumElements: 2, Weights: []float64{1, 1}, Sets: [][]int{{0}}}
	res := Exact(context.Background(), in, 2, ExactOptions{})
	if res.Feasible {
		t.Fatal("want infeasible")
	}
}

func TestExactNodeCap(t *testing.T) {
	// Small random sets with no universal fallback: the optimum needs
	// many sets, so a 2-node budget cannot close the search.
	rng := rand.New(rand.NewSource(3))
	in := Instance{NumElements: 40, Sets: make([][]int, 30)}
	for s := range in.Sets {
		for len(in.Sets[s]) < 3 {
			in.Sets[s] = append(in.Sets[s], rng.Intn(40))
		}
	}
	for e := 0; e < 40; e++ {
		in.Sets[e%30] = append(in.Sets[e%30], e) // ensure coverability
	}
	res := Exact(context.Background(), in, in.TotalWeight()*0.9, ExactOptions{MaxNodes: 2})
	if res.Exact {
		t.Fatal("2-node budget cannot prove optimality on a 25-set instance")
	}
	if !res.Feasible || len(res.Chosen) == 0 {
		t.Fatal("capped search must still return the greedy incumbent")
	}
}

func TestValidate(t *testing.T) {
	bad := []Instance{
		{NumElements: -1},
		{NumElements: 2, Weights: []float64{1}},
		{NumElements: 2, Weights: []float64{1, -3}},
		{NumElements: 2, Sets: [][]int{{5}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	ok := Instance{NumElements: 2, Weights: []float64{1, 2}, Sets: [][]int{{0, 1}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestTotalWeight(t *testing.T) {
	unit := Instance{NumElements: 5}
	if unit.TotalWeight() != 5 {
		t.Fatalf("unit total = %g", unit.TotalWeight())
	}
	w := Instance{NumElements: 2, Weights: []float64{1.5, 2.5}}
	if w.TotalWeight() != 4 {
		t.Fatalf("weighted total = %g", w.TotalWeight())
	}
}

func TestGreedyBoundRatio(t *testing.T) {
	if GreedyBoundRatio(1) != 1 || GreedyBoundRatio(2) != 1 {
		t.Fatal("tiny instances must have ratio 1")
	}
	r100 := GreedyBoundRatio(100)
	r1000 := GreedyBoundRatio(1000)
	if r100 <= 1 || r1000 <= r100 {
		t.Fatalf("ratio not growing: %g, %g", r100, r1000)
	}
	// Must stay below the classical H_n bound.
	if r1000 > math.Log(1000)+1 {
		t.Fatalf("ratio %g above harmonic bound", r1000)
	}
}

func randomInstance(rng *rand.Rand, nElem, nSets int) Instance {
	in := Instance{NumElements: nElem, Weights: make([]float64, nElem)}
	for i := range in.Weights {
		in.Weights[i] = 1 + rng.Float64()*9
	}
	in.Sets = make([][]int, nSets)
	for s := range in.Sets {
		size := 1 + rng.Intn(nElem/2+1)
		seen := map[int]bool{}
		for len(in.Sets[s]) < size {
			e := rng.Intn(nElem)
			if !seen[e] {
				seen[e] = true
				in.Sets[s] = append(in.Sets[s], e)
			}
		}
	}
	// Guarantee coverability.
	all := make([]int, nElem)
	for i := range all {
		all[i] = i
	}
	in.Sets = append(in.Sets, all)
	return in
}

// bruteForce finds the true optimal partial cover by enumerating all
// subsets (small instances only).
func bruteForce(in Instance, target float64) int {
	n := len(in.Sets)
	best := math.MaxInt32
	for mask := 0; mask < 1<<n; mask++ {
		cnt := 0
		covered := make([]bool, in.NumElements)
		for s := 0; s < n; s++ {
			if mask&(1<<s) != 0 {
				cnt++
				for _, e := range in.Sets[s] {
					covered[e] = true
				}
			}
		}
		if cnt >= best {
			continue
		}
		w := 0.0
		for e, c := range covered {
			if c {
				w += in.weight(e)
			}
		}
		if w >= target-1e-12 {
			best = cnt
		}
	}
	return best
}

// Property: the exact branch-and-bound matches brute force on random
// small instances at several coverage targets.
func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nElem := 2 + rng.Intn(10)
		nSets := 1 + rng.Intn(9)
		in := randomInstance(rng, nElem, nSets)
		for _, k := range []float64{0.5, 0.8, 0.95, 1.0} {
			target := in.TotalWeight() * k
			want := bruteForce(in, target)
			got := Exact(context.Background(), in, target, ExactOptions{})
			if !got.Exact {
				t.Logf("seed %d k=%g: node cap hit on a tiny instance", seed, k)
				return false
			}
			if len(got.Chosen) != want {
				t.Logf("seed %d k=%g: exact=%d brute=%d", seed, k, len(got.Chosen), want)
				return false
			}
			if got.Covered < target-1e-9 {
				t.Logf("seed %d k=%g: covered %g < target %g", seed, k, got.Covered, target)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy is never better than exact and always within the
// Slavík ratio of it.
func TestGreedyWithinBoundOfExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 3+rng.Intn(12), 2+rng.Intn(10))
		target := in.TotalWeight() * (0.6 + 0.4*rng.Float64())
		g := GreedyPartial(in, target)
		ex := Exact(context.Background(), in, target, ExactOptions{})
		if !g.Feasible || !ex.Feasible {
			return true
		}
		if len(g.Chosen) < len(ex.Chosen) {
			t.Logf("seed %d: greedy %d beats exact %d", seed, len(g.Chosen), len(ex.Chosen))
			return false
		}
		ratio := GreedyBoundRatio(in.NumElements) + 1 // partial cover pays +1 (Slavík)
		if float64(len(g.Chosen)) > ratio*float64(len(ex.Chosen))+1e-9 {
			t.Logf("seed %d: greedy %d > %g × exact %d", seed, len(g.Chosen), ratio, len(ex.Chosen))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
