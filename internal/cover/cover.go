// Package cover implements Minimum Set Cover and Minimum Partial
// (weighted) Cover: the greedy approximation the paper's Theorem 1 maps
// Passive Monitoring onto, and an exact combinatorial branch-and-bound
// used as a scalable alternative to the MIP on large instances.
//
// Terminology follows §4.2 of the paper: items (elements) are traffics,
// sets are links; choosing a set covers all elements it contains, and
// PPM(k) asks for the fewest sets covering elements of total weight at
// least k times the whole.
package cover

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/lp"
)

// Instance is a (partial) set cover instance. Elements are 0..NumElements-1.
type Instance struct {
	NumElements int
	// Weights holds one weight per element; nil means unit weights.
	Weights []float64
	// Sets lists, for each set, the elements it covers. Element ids out
	// of range are rejected by Validate.
	Sets [][]int
}

// Validate checks index ranges and weight consistency.
func (in Instance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("cover: negative element count %d", in.NumElements)
	}
	if in.Weights != nil && len(in.Weights) != in.NumElements {
		return fmt.Errorf("cover: %d weights for %d elements", len(in.Weights), in.NumElements)
	}
	for i, w := range in.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("cover: element %d has bad weight %g", i, w)
		}
	}
	for si, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("cover: set %d references element %d out of range [0,%d)", si, e, in.NumElements)
			}
		}
	}
	return nil
}

// weight returns the weight of element e.
func (in Instance) weight(e int) float64 {
	if in.Weights == nil {
		return 1
	}
	return in.Weights[e]
}

// TotalWeight returns the sum of all element weights (the paper's V).
func (in Instance) TotalWeight() float64 {
	if in.Weights == nil {
		return float64(in.NumElements)
	}
	t := 0.0
	for _, w := range in.Weights {
		t += w
	}
	return t
}

// bitset is a fixed-size bitmap over elements.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) unset(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }

// subsetOf reports whether every bit of b is also set in other.
func (b bitset) subsetOf(other bitset) bool {
	for i, w := range b {
		if w&^other[i] != 0 {
			return false
		}
	}
	return true
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Result is the outcome of a cover computation.
type Result struct {
	// Chosen lists the selected set indices in selection order.
	Chosen []int
	// Covered is the total weight of the covered elements.
	Covered float64
	// Feasible is false when even choosing every set cannot reach the
	// target.
	Feasible bool
	// Exact is true when the result is provably optimal.
	Exact bool
	// Nodes counts branch-and-bound nodes (exact solver only).
	Nodes int
	// SetsBanned counts the sets permanently excluded by the root LP's
	// reduced-cost fixing (exact solver only).
	SetsBanned int
}

// GreedyPartial runs the classical greedy for Minimum Partial Cover: it
// repeatedly selects the set with the largest uncovered weight until the
// covered weight reaches target. This is the (ln|D| − ln ln|D| + Θ(1))-
// approximation the paper cites from Slavík [19, 20].
func GreedyPartial(in Instance, target float64) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	covered := newBitset(in.NumElements)
	res := Result{Feasible: true}
	used := make([]bool, len(in.Sets))
	for res.Covered < target-1e-12 {
		best, bestGain := -1, 0.0
		for si, s := range in.Sets {
			if used[si] {
				continue
			}
			gain := 0.0
			for _, e := range s {
				if !covered.get(e) {
					gain += in.weight(e)
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			res.Feasible = false
			return res
		}
		used[best] = true
		res.Chosen = append(res.Chosen, best)
		for _, e := range in.Sets[best] {
			if !covered.get(e) {
				covered.set(e)
				res.Covered += in.weight(e)
			}
		}
	}
	return res
}

// Greedy runs GreedyPartial with the full total weight as target, i.e.
// the classical greedy for Minimum Set Cover.
func Greedy(in Instance) Result {
	return GreedyPartial(in, in.TotalWeight())
}

// GreedyBoundRatio returns the Slavík approximation guarantee
// ln n − ln ln n + Θ(1) for instance size n (clamped below at 1), used
// for reporting how far greedy can be from optimal.
func GreedyBoundRatio(n int) float64 {
	if n < 3 {
		return 1
	}
	r := math.Log(float64(n)) - math.Log(math.Log(float64(n))) + 0.78
	if r < 1 {
		return 1
	}
	return r
}

// ExactOptions tunes the exact branch-and-bound.
type ExactOptions struct {
	// MaxNodes caps the search; 0 means 5,000,000. When exceeded the
	// best incumbent is returned with Exact=false.
	MaxNodes int
}

// Exact solves Minimum Partial Cover exactly with branch and bound:
// depth-first search that always branches on the set with the largest
// residual coverage (include first, giving a greedy dive for early
// incumbents) and prunes with an optimistic fractional bound that counts
// the largest residual coverages ignoring overlaps.
//
// Before searching it applies the classical set-cover reductions:
// dominated sets (element set contained in another's) are excluded
// always; for full covers, dominated elements (covering-set list
// containing another element's) are dropped and sets covering some
// element exclusively are forced in.
//
// When ctx fires mid-search the best incumbent found so far (at worst
// the greedy warm start) is returned with Exact = false.
func Exact(ctx context.Context, in Instance, target float64, opts ExactOptions) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 5_000_000
	}
	// Start from the greedy incumbent: it bounds the search depth.
	greedy := GreedyPartial(in, target)
	if !greedy.Feasible {
		return Result{Feasible: false, Exact: true}
	}
	if target <= 1e-12 {
		return Result{Feasible: true, Exact: true}
	}
	if ctx.Err() != nil {
		// Canceled before the search started: the greedy warm start is
		// the incumbent.
		greedy.Exact = false
		return greedy
	}

	fullCover := target >= in.TotalWeight()-1e-9
	// Merge elements with identical covering sets (their coverage always
	// moves together, so one weighted representative suffices at any k).
	searchIn, searchTarget := mergeSignatures(in, target)

	s := &exactSearch{
		ctx:     ctx,
		in:      searchIn,
		target:  searchTarget,
		best:    append([]int(nil), greedy.Chosen...),
		bestLen: len(greedy.Chosen),
		maxN:    opts.MaxNodes,
	}
	excluded := excludeDominatedSets(searchIn)
	covered := newBitset(searchIn.NumElements)
	var forced []int
	if fullCover {
		reduced, reducedTarget := dropDominatedElements(searchIn, excluded)
		s.in, s.target = reduced, reducedTarget
		forced = forceUniqueCoverers(reduced, excluded, covered)
		s.prepareDisjointBound(excluded, covered)
	}
	coveredW := 0.0
	for e := 0; e < s.in.NumElements; e++ {
		if covered.get(e) {
			coveredW += s.in.weight(e)
		}
	}
	s.prepareGains(covered, excluded)
	s.rootExcluded, s.forced = excluded, forced
	s.search(covered, coveredW, forced)

	res := Result{
		Chosen:   s.best,
		Feasible: true,
		Exact:    !s.capped,
		Nodes:    s.nodes,
	}
	for _, b := range s.banned {
		if b {
			res.SetsBanned++
		}
	}
	final := newBitset(in.NumElements)
	for _, si := range s.best {
		for _, e := range in.Sets[si] {
			if !final.get(e) {
				final.set(e)
				res.Covered += in.weight(e)
			}
		}
	}
	return res
}

// excludeDominatedSets marks sets whose element set is contained in
// another set's (ties broken towards lower indices). Dropping them is
// sound for any (partial) cover: the dominating set can always replace
// the dominated one without losing coverage.
func excludeDominatedSets(in Instance) []bool {
	n := len(in.Sets)
	excluded := make([]bool, n)
	masks := make([]bitset, n)
	for i, s := range in.Sets {
		masks[i] = newBitset(in.NumElements)
		for _, e := range s {
			masks[i].set(e)
		}
	}
	for i := 0; i < n; i++ {
		if excluded[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || excluded[j] {
				continue
			}
			if masks[i].subsetOf(masks[j]) {
				// Equal sets: keep the lower index only.
				if masks[j].subsetOf(masks[i]) && i < j {
					continue
				}
				excluded[i] = true
				break
			}
		}
	}
	return excluded
}

// dropDominatedElements (full cover only) removes elements whose
// covering-set list contains another element's: any full cover covers
// the contained element through one of its sets, which also covers the
// dominating one. Removal is simulated by zeroing the dominated
// elements' weights and shrinking the target to the remaining total —
// reaching the new target then requires covering exactly the remaining
// elements, and dominance implies the dropped ones come along for free.
func dropDominatedElements(in Instance, excluded []bool) (Instance, float64) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	drop := make([]bool, in.NumElements)
	for u := 0; u < in.NumElements; u++ {
		if drop[u] {
			continue
		}
		for v := 0; v < in.NumElements; v++ {
			if u == v || drop[v] {
				continue
			}
			if coverers[v].subsetOf(coverers[u]) {
				if coverers[u].subsetOf(coverers[v]) && u < v {
					continue // equal: keep the lower index
				}
				drop[u] = true
				break
			}
		}
	}
	weights := make([]float64, in.NumElements)
	target := 0.0
	for e := 0; e < in.NumElements; e++ {
		if drop[e] {
			continue
		}
		weights[e] = in.weight(e)
		target += weights[e]
	}
	return Instance{NumElements: in.NumElements, Weights: weights, Sets: in.Sets}, target
}

// forceUniqueCoverers (full cover only) repeatedly includes sets that
// are the sole remaining coverer of some element, marking the elements
// they cover. Returns the forced set indices.
func forceUniqueCoverers(in Instance, excluded []bool, covered bitset) []int {
	coverers := make([][]int, in.NumElements)
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e] = append(coverers[e], si)
		}
	}
	var forced []int
	inForced := make([]bool, len(in.Sets))
	for changed := true; changed; {
		changed = false
		for e := 0; e < in.NumElements; e++ {
			if covered.get(e) || lp.StructZero(in.weight(e)) {
				continue // dropped or already-covered elements force nothing
			}
			if len(coverers[e]) == 1 {
				si := coverers[e][0]
				if !inForced[si] {
					inForced[si] = true
					forced = append(forced, si)
					for _, e2 := range in.Sets[si] {
						covered.set(e2)
					}
					changed = true
				}
			}
		}
	}
	return forced
}

type exactSearch struct {
	ctx     context.Context
	in      Instance
	target  float64
	best    []int
	bestLen int
	nodes   int
	maxN    int
	capped  bool

	// Root LP strengthening state (the set-cover face of the MIP
	// pipeline, see DESIGN.md §4). The LP is lazy: only a search that
	// passes coverLPTrigger nodes pays for the solve (lpTried). lpZ is
	// the relaxation objective, lpDj the per-set reduced costs (nil
	// when the LP was skipped or failed), rootLB = ceil(lpZ) the
	// global lower bound, banned the sets excluded by reduced cost
	// against the current incumbent, and doneOptimal flips when the
	// incumbent meets rootLB (the rest of the tree cannot improve and
	// the search stops, still exact).
	lpTried      bool
	lpZ          float64
	lpDj         []float64
	rootLB       int
	banned       []bool
	doneOptimal  bool
	rootExcluded []bool
	forced       []int

	// Disjoint-elements bound state (full covers only): per-element
	// covering-set bitmaps in a processing order of increasing coverer
	// count. Elements pairwise sharing no covering set each require a
	// distinct set, so the size of such a family lower-bounds the
	// remaining cover.
	elemCoverers []bitset
	elemOrder    []int
	disjointUsed bitset  // scratch family-coverer union
	permPos      []int32 // element → elemOrder position (-1 = untracked)
	permCovered  bitset  // covered, permuted into elemOrder positions

	// Incremental residual-gain state: gains[si] is the uncovered
	// weight of set si, updated in place as include branches flip
	// elements (and restored exactly on backtrack via the undo stacks)
	// instead of being recomputed from every set at every node.
	gains    []float64
	elemSets [][]int32 // per element: root-non-excluded sets covering it
	undoT    []int32   // undo stack: touched set ids…
	undoG    []float64 // …and their prior gains
	flip     []int32   // undo stack: elements newly covered
	scratch  []float64 // lower-bound selection buffer
}

// prepareGains builds the per-element coverer lists and the initial
// residual gains (everything after the root reductions and forced
// inclusions).
func (s *exactSearch) prepareGains(covered bitset, excluded []bool) {
	n := s.in.NumElements
	s.elemSets = make([][]int32, n)
	s.gains = make([]float64, len(s.in.Sets))
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		g := 0.0
		for _, e := range set {
			s.elemSets[e] = append(s.elemSets[e], int32(si))
			if !covered.get(e) {
				g += s.in.weight(e)
			}
		}
		s.gains[si] = g
	}
}

// prepareDisjointBound precomputes the per-element covering-set bitmaps
// over non-excluded sets and a fewest-coverers-first element order.
// covered seeds the permuted mirror with the already-covered elements
// (forced unique coverers).
func (s *exactSearch) prepareDisjointBound(excluded []bool, covered bitset) {
	n := s.in.NumElements
	s.elemCoverers = make([]bitset, n)
	counts := make([]int, n)
	for e := 0; e < n; e++ {
		s.elemCoverers[e] = newBitset(len(s.in.Sets))
	}
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			s.elemCoverers[e].set(si)
			counts[e]++
		}
	}
	for e := 0; e < n; e++ {
		if s.in.weight(e) > 0 && counts[e] > 0 {
			s.elemOrder = append(s.elemOrder, e)
		}
	}
	sort.Slice(s.elemOrder, func(a, b int) bool { return counts[s.elemOrder[a]] < counts[s.elemOrder[b]] })
	s.disjointUsed = newBitset(len(s.in.Sets))
	// Mirror of `covered` permuted into elemOrder positions, maintained
	// by include()'s flip/undo, so the bound scan skips covered
	// elements a word at a time instead of probing them one by one.
	s.permPos = make([]int32, n)
	for e := range s.permPos {
		s.permPos[e] = -1
	}
	for pi, e := range s.elemOrder {
		s.permPos[e] = int32(pi)
	}
	s.permCovered = newBitset(len(s.elemOrder))
	for pi, e := range s.elemOrder {
		if covered.get(e) {
			s.permCovered.set(pi)
		}
	}
}

// disjointBound greedily builds a family of uncovered elements whose
// covering sets are pairwise disjoint; its size is a valid lower bound
// on the number of additional sets (each chosen set covers at most one
// family member). Using the root covering sets is conservative under
// branching exclusions, hence still valid. The build stops as soon as
// the bound reaches `enough` (the caller prunes at that point, so a
// sharper value is never needed).
func (s *exactSearch) disjointBound(enough int) int {
	if s.elemOrder == nil || enough <= 0 {
		return 0
	}
	used := s.disjointUsed
	for i := range used {
		used[i] = 0
	}
	bound := 0
	// Scan uncovered elements word-wise through the permuted mirror:
	// the element order is identical to the historical per-element
	// probe, so the bound value (and hence the tree) never changes.
	n := len(s.elemOrder)
	for wi, w := range s.permCovered {
		free := ^w
		if base := wi * 64; base+64 > n {
			free &= (1 << uint(n-base)) - 1
		}
		for free != 0 {
			bit := bits.TrailingZeros64(free)
			free &= free - 1
			e := s.elemOrder[wi*64+bit]
			conflict := false
			ec := s.elemCoverers[e]
			for i, cw := range ec {
				if cw&used[i] != 0 {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for i, cw := range ec {
				used[i] |= cw
			}
			bound++
			if bound >= enough {
				return bound
			}
		}
	}
	return bound
}

// rootLPRowCap skips the root LP on instances whose relaxation would
// have more element rows than this: on the paper's large partial-cover
// instances the covering LP is both degenerate (tens of thousands of
// pivots) and weak (a structural integrality gap), so it cannot pay
// for itself. coverLPTrigger makes the LP lazy — only searches that
// already burned that many nodes buy the bound.
const rootLPRowCap = 300

// coverLPTrigger is a var only so the test suite can force the lazy LP
// on tiny searches; production code never writes it.
var coverLPTrigger = 2048

// isBanned reports whether reduced-cost fixing excluded the set.
func (s *exactSearch) isBanned(si int) bool {
	return s.banned != nil && s.banned[si]
}

// refreshBans re-applies the reduced-cost exclusion test against the
// current incumbent: a cover containing set si costs at least
// lpZ + dj_si, so when that exceeds bestLen−1 no improving cover uses
// si. Bans only grow as the incumbent improves.
func (s *exactSearch) refreshBans() {
	cut := float64(s.bestLen-1) + 1e-6
	for si, dj := range s.lpDj {
		if !s.banned[si] && s.lpZ+dj > cut {
			s.banned[si] = true
		}
	}
}

// rootLP solves the LP relaxation of the (reduced) partial-cover
// instance: min Σ x_s subject to δ_e ≤ Σ_{s∋e} x_s, Σ w_e·δ_e ≥ target,
// x over the non-excluded sets (forced sets pinned to 1). It returns
// the objective and the per-set reduced costs for reduced-cost fixing;
// ok is false when the LP was canceled or failed (the search then just
// runs unstrenghtened).
func rootLP(ctx context.Context, in Instance, target float64, excluded []bool, forced []int) (z float64, dj []float64, ok bool) {
	rows := 0
	for e := 0; e < in.NumElements; e++ {
		if !lp.StructZero(in.weight(e)) {
			rows++
		}
	}
	if rows > rootLPRowCap {
		return 0, nil, false
	}
	p := lp.NewProblem(lp.Minimize)
	p.SetExtractDuals(true)
	xs := make([]lp.Var, len(in.Sets))
	isForced := make([]bool, len(in.Sets))
	for _, si := range forced {
		isForced[si] = true
	}
	for si := range in.Sets {
		lo, hi := 0.0, 1.0
		switch {
		case excluded[si]:
			hi = 0
		case isForced[si]:
			lo = 1
		}
		xs[si] = p.AddVariable("x", lo, hi, 1)
	}
	coverers := make([][]int32, in.NumElements)
	for si, set := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			coverers[e] = append(coverers[e], int32(si))
		}
	}
	var covTerms []lp.Term
	for e := 0; e < in.NumElements; e++ {
		w := in.weight(e)
		if lp.StructZero(w) {
			continue
		}
		d := p.AddVariable("d", 0, 1, 0)
		covTerms = append(covTerms, lp.Term{Var: d, Coef: w})
		terms := make([]lp.Term, 0, len(coverers[e])+1)
		terms = append(terms, lp.Term{Var: d, Coef: -1})
		prev := int32(-1)
		for _, si := range coverers[e] {
			if si != prev { // a set may list an element twice
				terms = append(terms, lp.Term{Var: xs[si], Coef: 1})
			}
			prev = si
		}
		p.AddConstraint(lp.GE, 0, terms...)
	}
	p.AddConstraint(lp.GE, target, covTerms...)
	sol, err := p.SolveContext(ctx)
	if err != nil || sol.Status != lp.Optimal || sol.ReducedCosts == nil {
		return 0, nil, false
	}
	dj = make([]float64, len(in.Sets))
	for si := range in.Sets {
		dj[si] = sol.ReducedCosts[xs[si]]
	}
	return sol.Objective, dj, true
}

// mergeSignatures collapses elements covered by exactly the same sets
// into one element of summed weight. Sound for any coverage target:
// merged elements are covered or uncovered together.
func mergeSignatures(in Instance, target float64) (Instance, float64) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	rep := make(map[string]int, in.NumElements) // signature → new element id
	newID := make([]int, in.NumElements)
	var weights []float64
	for e := 0; e < in.NumElements; e++ {
		key := fmt.Sprint(coverers[e])
		id, ok := rep[key]
		if !ok {
			id = len(weights)
			rep[key] = id
			weights = append(weights, 0)
		}
		newID[e] = id
		weights[id] += in.weight(e)
	}
	if len(weights) == in.NumElements {
		return in, target // nothing merged
	}
	sets := make([][]int, len(in.Sets))
	for si, s := range in.Sets {
		seen := make(map[int]bool, len(s))
		for _, e := range s {
			id := newID[e]
			if !seen[id] {
				seen[id] = true
				sets[si] = append(sets[si], id)
			}
		}
	}
	return Instance{NumElements: len(weights), Weights: weights, Sets: sets}, target
}

// boundAndBranch fuses the two per-node scans over the residual gains:
// it returns the additive lower bound on the number of additional sets
// needed to cover `remaining` weight (pretending sets never overlap —
// optimistic, hence valid) and the branching set (largest residual
// gain; -1 when none is usable). Selection stops at maxUseful — the
// caller's prune test needs nothing sharper. Cheap one-pass outcomes
// (one set suffices / the target is unreachable) skip the selection
// entirely; otherwise the top gains are extracted by repeated maxima
// when few are needed and by one descending insertion sort when many
// are.
func (s *exactSearch) boundAndBranch(remaining float64, maxUseful int) (int, int) {
	buf := s.scratch[:0]
	branch := -1
	g1, sum := 0.0, 0.0
	if s.banned == nil {
		for si, g := range s.gains {
			if g > 0 {
				buf = append(buf, g)
				sum += g
				if g > g1 {
					g1 = g
					branch = si
				}
			}
		}
	} else {
		for si, g := range s.gains {
			if g > 0 && !s.banned[si] {
				buf = append(buf, g)
				sum += g
				if g > g1 {
					g1 = g
					branch = si
				}
			}
		}
	}
	s.scratch = buf
	switch {
	case remaining <= 1e-12:
		return 0, branch
	case remaining <= g1:
		return 1, branch
	case sum < remaining-1e-12:
		// Tolerance matches the incumbent acceptance test: a node whose
		// total residual gain is within float drift of the target is
		// still completable, not infeasible.
		return math.MaxInt32, branch
	case maxUseful <= 2:
		// Two sets never suffice here (remaining > g1 rules out one,
		// and the caller prunes at maxUseful anyway).
		return 2, branch
	}
	if cheap := int(math.Ceil(remaining/g1 - 1e-12)); cheap >= maxUseful {
		// O(1) ceiling bound: every gain is at most g1, so at least
		// remaining/g1 more sets are needed — already enough to prune.
		return maxUseful, branch
	}
	if maxUseful*4 < len(buf) {
		// Few selections needed: repeated max extraction is cheaper
		// than sorting the whole candidate list.
		need := 0
		for {
			if need >= maxUseful {
				return maxUseful, branch
			}
			mi := 0
			for i := 1; i < len(buf); i++ {
				if buf[i] > buf[mi] {
					mi = i
				}
			}
			remaining -= buf[mi]
			need++
			if remaining <= 1e-12 {
				return need, branch
			}
			buf[mi] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
		}
	}
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] < v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	need := 0
	for _, g := range buf {
		if need >= maxUseful {
			return maxUseful, branch
		}
		remaining -= g
		need++
		if remaining <= 1e-12 {
			return need, branch
		}
	}
	return math.MaxInt32, branch
}

func (s *exactSearch) search(covered bitset, coveredW float64, chosen []int) {
	if s.capped || s.doneOptimal {
		return
	}
	s.nodes++
	if s.nodes > s.maxN {
		s.capped = true
		return
	}
	// Poll the context every 1024 nodes; a fired context stops the
	// search exactly like an exhausted node budget (incumbent kept).
	if s.nodes&1023 == 0 && s.ctx.Err() != nil {
		s.capped = true
		return
	}
	// Lazy root-LP strengthening: a search that proved nontrivial pays
	// one LP solve for a global lower bound (stop as soon as any
	// incumbent meets it, proven optimal) and reduced-cost set bans.
	if !s.lpTried && s.nodes >= coverLPTrigger {
		s.lpTried = true
		if z, dj, ok := rootLP(s.ctx, s.in, s.target, s.rootExcluded, s.forced); ok {
			s.lpZ, s.lpDj = z, dj
			s.rootLB = int(math.Ceil(z - 1e-6))
			s.banned = make([]bool, len(s.in.Sets))
			s.refreshBans()
			if s.bestLen <= s.rootLB {
				s.doneOptimal = true
				return
			}
		}
	}
	if coveredW >= s.target-1e-12 {
		if len(chosen) < s.bestLen {
			s.bestLen = len(chosen)
			s.best = append([]int(nil), chosen...)
			if s.lpDj != nil {
				// An incumbent at the LP bound is proven optimal: stop
				// the whole search. Otherwise tighten the reduced-cost
				// exclusions against the improved cutoff.
				if s.bestLen <= s.rootLB {
					s.doneOptimal = true
					return
				}
				s.refreshBans()
			}
		}
		return
	}
	if len(chosen)+1 >= s.bestLen {
		// The target is not reached, so any completion adds at least one
		// more set and cannot improve on the incumbent.
		return
	}

	// One fused pass yields the additive bound and the branching set
	// (largest residual gain).
	lb, branch := s.boundAndBranch(s.target-coveredW, s.bestLen-len(chosen))
	if len(chosen)+lb >= s.bestLen {
		return
	}
	// The disjoint-family bound is the costlier one: only consult it on
	// nodes the additive bound failed to prune, and only until it
	// reaches pruning strength.
	if s.elemOrder != nil {
		if db := s.disjointBound(s.bestLen - len(chosen)); len(chosen)+db >= s.bestLen {
			return
		}
	}
	if branch < 0 {
		return // nothing left to add
	}
	// Include branch first: mimics the greedy and finds incumbents fast.
	s.include(covered, coveredW, chosen, branch)
	// Exclude branch: zeroing the set's residual gain removes it from
	// the bound, the branch selection and the feasibility sum in one
	// store (root-excluded sets already sit at gain 0 the same way).
	// Nested includes only ever decrement the gain and their undo
	// stacks restore it exactly, so the final restore is exact too.
	saved := s.gains[branch]
	s.gains[branch] = 0
	s.search(covered, coveredW, chosen)
	s.gains[branch] = saved
}

// include descends into the branch that takes set si. covered and the
// residual gains are updated in place and restored exactly afterwards
// (prior gain values are re-installed from the undo stack in reverse,
// so backtracking never accumulates float drift).
func (s *exactSearch) include(covered bitset, coveredW float64, chosen []int, si int) {
	markT, markF := len(s.undoT), len(s.flip)
	w := coveredW
	for _, e := range s.in.Sets[si] {
		if covered.get(e) {
			continue
		}
		covered.set(e)
		if s.permPos != nil {
			if p := s.permPos[e]; p >= 0 {
				s.permCovered.set(int(p))
			}
		}
		s.flip = append(s.flip, int32(e))
		we := s.in.weight(e)
		w += we
		for _, t := range s.elemSets[e] {
			s.undoT = append(s.undoT, t)
			s.undoG = append(s.undoG, s.gains[t])
			s.gains[t] -= we
		}
	}
	s.search(covered, w, append(chosen, si))
	for i := len(s.undoT) - 1; i >= markT; i-- {
		s.gains[s.undoT[i]] = s.undoG[i]
	}
	s.undoT = s.undoT[:markT]
	s.undoG = s.undoG[:markT]
	for i := len(s.flip) - 1; i >= markF; i-- {
		e := int(s.flip[i])
		covered.unset(e)
		if s.permPos != nil {
			if p := s.permPos[e]; p >= 0 {
				s.permCovered.unset(int(p))
			}
		}
	}
	s.flip = s.flip[:markF]
}
