// Package cover implements Minimum Set Cover and Minimum Partial
// (weighted) Cover: the greedy approximation the paper's Theorem 1 maps
// Passive Monitoring onto, and an exact combinatorial branch-and-bound
// used as a scalable alternative to the MIP on large instances.
//
// Terminology follows §4.2 of the paper: items (elements) are traffics,
// sets are links; choosing a set covers all elements it contains, and
// PPM(k) asks for the fewest sets covering elements of total weight at
// least k times the whole.
package cover

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/lp"
)

// Instance is a (partial) set cover instance. Elements are 0..NumElements-1.
type Instance struct {
	NumElements int
	// Weights holds one weight per element; nil means unit weights.
	Weights []float64
	// Sets lists, for each set, the elements it covers. Element ids out
	// of range are rejected by Validate.
	Sets [][]int
}

// Validate checks index ranges and weight consistency.
func (in Instance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("cover: negative element count %d", in.NumElements)
	}
	if in.Weights != nil && len(in.Weights) != in.NumElements {
		return fmt.Errorf("cover: %d weights for %d elements", len(in.Weights), in.NumElements)
	}
	for i, w := range in.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("cover: element %d has bad weight %g", i, w)
		}
	}
	for si, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("cover: set %d references element %d out of range [0,%d)", si, e, in.NumElements)
			}
		}
	}
	return nil
}

// weight returns the weight of element e.
func (in Instance) weight(e int) float64 {
	if in.Weights == nil {
		return 1
	}
	return in.Weights[e]
}

// TotalWeight returns the sum of all element weights (the paper's V).
func (in Instance) TotalWeight() float64 {
	if in.Weights == nil {
		return float64(in.NumElements)
	}
	t := 0.0
	for _, w := range in.Weights {
		t += w
	}
	return t
}

// coverTol is the feasibility tolerance on accumulated covered weight:
// absolute near zero, relative at scale. Covered weight is a float sum
// whose order differs between the greedy, the search, and the caller's
// target computation, so it drifts by O(n·ulp·total) — on a
// 2000-element instance with total weight ~10⁴ that is ~1e-9, and a
// fixed absolute 1e-12 would misreport a complete cover of a
// large-volume instance as infeasible. 1e-9 relative matches the
// feasibility check callers apply to the returned fraction.
func coverTol(target float64) float64 { return 1e-9 * (1 + math.Abs(target)) }

// bitset is a fixed-size bitmap over elements.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) unset(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }

// subsetOf reports whether every bit of b is also set in other.
func (b bitset) subsetOf(other bitset) bool {
	for i, w := range b {
		if w&^other[i] != 0 {
			return false
		}
	}
	return true
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Result is the outcome of a cover computation.
type Result struct {
	// Chosen lists the selected set indices in selection order.
	Chosen []int
	// Covered is the total weight of the covered elements.
	Covered float64
	// Feasible is false when even choosing every set cannot reach the
	// target.
	Feasible bool
	// Exact is true when the result is provably optimal.
	Exact bool
	// Nodes counts branch-and-bound nodes (exact solver only). With
	// Workers > 1 the total is schedule-dependent for subtrees the
	// shared incumbent aborted early; at Workers <= 1 it is exactly
	// reproducible.
	Nodes int
	// SetsBanned counts the sets permanently excluded by the root LP's
	// reduced-cost fixing (exact solver only).
	SetsBanned int
	// SubtreeTasks is the number of frontier subtree tasks dispatched
	// over the worker pool (0 when the search closed in the serial
	// burn-in). The frontier is worker-count independent.
	SubtreeTasks int
	// Steals counts subtree tasks executed by a worker other than their
	// round-robin home worker (always 0 for serial searches).
	Steals int
	// DominancePrunes counts the sets excluded by in-search residual
	// dominance (exclude branches drop every candidate whose residual
	// coverage the branched set contains), distinguishing dominance-
	// pruned from bound-pruned work. Schedule-dependent like Nodes when
	// Workers > 1.
	DominancePrunes int
	// Pivots is the total simplex iterations of the root LP solves
	// (0 when the LP was skipped).
	Pivots int
	// WarmStarts counts the warm artifacts the solve applied: an
	// adopted incumbent hint and a root LP completed on a seeded basis
	// each count one. Always 0 for cold solves.
	WarmStarts int
}

// GreedyPartial runs the classical greedy for Minimum Partial Cover: it
// repeatedly selects the set with the largest uncovered weight until the
// covered weight reaches target. This is the (ln|D| − ln ln|D| + Θ(1))-
// approximation the paper cites from Slavík [19, 20].
func GreedyPartial(in Instance, target float64) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	covered := newBitset(in.NumElements)
	res := Result{Feasible: true}
	used := make([]bool, len(in.Sets))
	tol := coverTol(target)
	for res.Covered < target-tol {
		best, bestGain := -1, 0.0
		for si, s := range in.Sets {
			if used[si] {
				continue
			}
			gain := 0.0
			for _, e := range s {
				if !covered.get(e) {
					gain += in.weight(e)
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			res.Feasible = false
			return res
		}
		used[best] = true
		res.Chosen = append(res.Chosen, best)
		for _, e := range in.Sets[best] {
			if !covered.get(e) {
				covered.set(e)
				res.Covered += in.weight(e)
			}
		}
	}
	return res
}

// Greedy runs GreedyPartial with the full total weight as target, i.e.
// the classical greedy for Minimum Set Cover.
func Greedy(in Instance) Result {
	return GreedyPartial(in, in.TotalWeight())
}

// GreedyBoundRatio returns the Slavík approximation guarantee
// ln n − ln ln n + Θ(1) for instance size n (clamped below at 1), used
// for reporting how far greedy can be from optimal.
func GreedyBoundRatio(n int) float64 {
	if n < 3 {
		return 1
	}
	r := math.Log(float64(n)) - math.Log(math.Log(float64(n))) + 0.78
	if r < 1 {
		return 1
	}
	return r
}

// ExactOptions tunes the exact branch-and-bound.
type ExactOptions struct {
	// MaxNodes caps the search; 0 means 5,000,000. When exceeded the
	// best incumbent is returned with Exact=false. Parallel searches
	// split the remaining budget evenly across subtree tasks (with a
	// small per-task floor), so the total stays comparable.
	MaxNodes int
	// Workers bounds the subtree-task worker pool of the parallel
	// phase; <= 1 runs the identical algorithm serially (the oracle:
	// the returned cover is byte-identical for any worker count).
	Workers int
	// NoPresolve disables the kernelization presolve (signature
	// merging, dominated sets/elements, forced unique coverers).
	// Ablation and oracle-test knob; production leaves it false.
	NoPresolve bool
	// NoDualBound disables the per-node Lagrangian dual-ascent bound.
	NoDualBound bool
	// NoDominance disables the in-search exclude-branch dominance
	// reductions (including the symmetry break on residual-identical
	// sets).
	NoDominance bool
	// Warm carries artifacts from a previous solve of a related
	// instance (nil = cold solve). Artifacts are revalidated against
	// THIS instance before use, so a stale Warm can only cost time,
	// never correctness — and never the answer: the returned cover is
	// byte-identical to a cold solve's whenever both prove optimality
	// (see the reconstruction phase in Exact).
	Warm *Warm
	// Capture, when non-nil, receives artifacts of this solve for a
	// future warm re-solve. Capturing never changes the solve itself.
	Capture *Capture
}

// Warm is the artifact bundle a warm solve may reuse.
type Warm struct {
	// Hint is a candidate cover (set indices) from a previous solve of
	// a related instance. It is feasibility-checked against this
	// instance and adopted as the starting incumbent only when valid
	// and strictly shorter than the greedy warm start.
	Hint []int
	// Basis seeds the root LP via lp.SolveContextFrom. A basis whose
	// shape no longer matches (the mutation changed the LP dimensions)
	// falls back to a cold LP solve inside the lp package.
	Basis *lp.Basis
}

// Capture receives artifacts of a solve for reuse by a later warm one.
type Capture struct {
	// Basis is the final root LP basis (nil when the LP never ran).
	Basis *lp.Basis
}

// Exact solves Minimum Partial Cover exactly with branch and bound:
// depth-first search that always branches on the set with the largest
// residual coverage (include first, giving a greedy dive for early
// incumbents) and prunes with an optimistic fractional bound, a frozen
// Lagrangian dual-ascent bound, and (full covers) a disjoint-family
// bound.
//
// Before searching it runs a kernelization fixpoint: dominated sets
// (residual coverage contained in another's) are excluded, and for
// full covers dominated elements are dropped and unique-coverer sets
// forced in, iterating until nothing changes. In-search, every exclude
// branch also drops the candidates the branched set residually
// dominates (which breaks the symmetry on interchangeable columns:
// only the lowest-index permutation of residual-identical sets is
// explored).
//
// The search itself runs in four deterministic phases (DESIGN.md §4a):
// a serial burn-in with a fixed node budget closes easy instances
// outright; a surviving search pays one root LP for reduced-cost set
// bans; the tree is then expanded serially to a fixed-depth frontier
// of independent subtree tasks; and the tasks run on opts.Workers
// workers with a shared atomic incumbent used only for whole-subtree
// aborts. The merged result is chosen by (cover size, task index), so
// the returned cover is byte-identical for any worker count — one
// worker is the oracle the parallel runs are compared against.
//
// When ctx fires mid-search the best incumbent found so far by any
// phase or worker (at worst the greedy warm start) is returned with
// Exact = false.
func Exact(ctx context.Context, in Instance, target float64, opts ExactOptions) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 5_000_000
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// Start from the greedy incumbent: it bounds the search depth.
	greedy := GreedyPartial(in, target)
	if !greedy.Feasible {
		return Result{Feasible: false, Exact: true}
	}
	if target <= 1e-12 {
		return Result{Feasible: true, Exact: true}
	}
	if ctx.Err() != nil {
		// Canceled before the search started: the greedy warm start is
		// the incumbent.
		greedy.Exact = false
		return greedy
	}

	fullCover := target >= in.TotalWeight()-1e-9
	searchIn, searchTarget := in, target
	if !opts.NoPresolve {
		// Merge elements with identical covering sets (their coverage
		// always moves together, so one weighted representative
		// suffices at any k).
		searchIn, searchTarget = mergeSignatures(in, target)
	}

	s := &exactSearch{
		ctx:           ctx,
		in:            searchIn,
		target:        searchTarget,
		tol:           coverTol(searchTarget),
		best:          append([]int(nil), greedy.Chosen...),
		bestLen:       len(greedy.Chosen),
		frontierDepth: -1,
	}
	excluded := make([]bool, len(searchIn.Sets))
	covered := newBitset(searchIn.NumElements)
	var forced []int
	if !opts.NoPresolve {
		forced = s.presolve(excluded, covered, fullCover)
	}
	if fullCover {
		s.prepareDisjointBound(excluded, covered)
	}
	coveredW := 0.0
	for e := 0; e < s.in.NumElements; e++ {
		if covered.get(e) {
			coveredW += s.in.weight(e)
		}
	}
	s.rootExcluded, s.forced = excluded, forced
	s.capture = opts.Capture
	s.prepareGains(covered, excluded, !opts.NoDominance)
	if !opts.NoDualBound {
		s.prepareDualBound(excluded, covered, coveredW)
	}
	// The reconstruction phase needs dual state that depends on the
	// instance only; strengthenDualBound tightens (φ, λ) against the
	// evolving incumbent, so the pre-search values are frozen here.
	basePhi, baseLambda, baseUncov0 := s.dualPhi, s.dualLambda, s.dualUncov0

	// Warm injection (value phase only): a previous solve's artifacts
	// may shortcut the optimality proof, but the final answer never
	// depends on them — only the proven optimum value flows into the
	// reconstruction below, and a capped warm solve reports Exact=false
	// exactly like a capped cold one.
	proven := false
	if w := opts.Warm; w != nil {
		if hw, ok := hintCovered(in, w.Hint); ok && hw >= target-coverTol(target) && len(w.Hint) < s.bestLen {
			s.best = append([]int(nil), w.Hint...)
			s.bestLen = len(w.Hint)
			s.warmStarts++
		}
		if s.haveRootLB && s.bestLen <= s.rootLB {
			proven = true // the dual root bound already meets the hint
		}
		// Eager root LP — ONLY when the saved basis fits this instance's
		// relaxation exactly, so the solve is a cheap dual repair whose
		// bound can prove the hint optimal on the spot and skip every
		// value phase. Warmth must never pay work the cold control flow
		// would skip (most cold solves close in the serial burn-in with
		// no LP at all), so a shape mismatch does NOT fall back to a
		// cold LP here: the basis just waits for the phase-2 decision
		// point the cold flow reaches anyway.
		if !proven && w.Basis != nil {
			if p, xs := buildRootLP(s.in, s.target, excluded, forced); w.Basis.Fits(p) {
				if z, dj, sol, ok := solveRootLP(s.ctx, p, xs, w.Basis); ok {
					s.lpTried = true
					s.noteRootLP(z, dj, sol)
					if s.bestLen <= s.rootLB {
						proven = true
					}
				}
			}
		}
		s.seedBasis = w.Basis
	}
	if !proven {
		s.runValuePhases(opts, workers, excluded, covered, coveredW, forced)
	}
	if s.capped || s.ctx.Err() != nil {
		// Capped or canceled: the best incumbent with Exact=false, the
		// historical behaviour, byte-identical to the pre-session solver
		// for cold solves.
		return s.resultOn(in)
	}

	// Value phase proved optimality: opt is a property of the instance
	// alone, however the proof was reached.
	opt := s.bestLen
	if opt >= len(greedy.Chosen) {
		// The greedy cover is itself optimal. The search only ever
		// adopts strictly shorter covers, so s.best IS greedy.Chosen:
		// already canonical, no reconstruction needed.
		return s.resultOn(in)
	}

	// Reconstruction phase: re-derive the RETURNED cover from
	// (instance, opt) alone, so the answer is identical whether the
	// proof above ran cold or warm. The fresh serial search uses only
	// instance-deterministic pruning state (presolve, residual gains,
	// disjoint families, the pre-search dual pair — never LP reduced-
	// cost bans, whose values depend on the basis the simplex happened
	// to end on) with the proven optimum as a perfect bound: the first
	// accepted cover has exactly opt sets and stops the search.
	r := &exactSearch{
		ctx:     ctx,
		in:      s.in,
		target:  s.target,
		tol:     s.tol,
		best:    append([]int(nil), greedy.Chosen...),
		bestLen: opt + 1,
		maxN:    opts.MaxNodes,

		rootLB:       opt,
		haveRootLB:   true,
		rootExcluded: s.rootExcluded,
		forced:       s.forced,

		dualPhi:    basePhi,
		dualLambda: baseLambda,
		dualUncov0: baseUncov0,

		setMasks:     s.setMasks,
		elemCoverers: s.elemCoverers,
		elemOrder:    s.elemOrder,
		permPos:      s.permPos,
		permCovered:  s.permCovered,
		disjointUsed: s.disjointUsed,
		gains:        s.gains,
		elemSets:     s.elemSets,

		frontierDepth: -1,
	}
	r.search(covered, coveredW, baseUncov0, forced)
	if r.doneOptimal {
		res := r.resultOn(in)
		res.Nodes += s.nodes
		res.DominancePrunes += s.domPrunes
		res.SubtreeTasks = s.subtreeTasks
		res.Steals = s.steals
		res.Pivots = s.pivots
		res.WarmStarts = s.warmStarts
		res.SetsBanned = countBans(s.banned)
		return res
	}
	if ctx.Err() != nil {
		// Canceled mid-reconstruction: degrade to the value phase's
		// incumbent — an optimal cover, conservatively reported
		// Exact=false like every canceled search.
		s.capped = true
		res := s.resultOn(in)
		res.Nodes += r.nodes
		res.DominancePrunes += r.domPrunes
		return res
	}
	// The reconstruction exhausted its own node budget before accepting
	// a cover (pathological: its pruning bound is perfect). Fall back to
	// the greedy cover — deterministic on both the cold and warm path —
	// and report Exact=false: the optimum value was proven but the
	// canonical witness was not reproduced within budget.
	g := greedy
	g.Exact = false
	g.Nodes = s.nodes + r.nodes
	g.DominancePrunes = s.domPrunes + r.domPrunes
	g.SubtreeTasks = s.subtreeTasks
	g.Steals = s.steals
	g.Pivots = s.pivots
	g.WarmStarts = s.warmStarts
	g.SetsBanned = countBans(s.banned)
	return g
}

// runValuePhases runs the four historical search phases (DESIGN.md §4a)
// that prove the optimum value (or exhaust the budget): serial burn-in,
// root LP strengthening, frontier expansion, parallel subtrees. On
// return either s.capped (budget/cancel) or optimality is proven with
// s.bestLen the optimum. A warm caller may have already paid the root
// LP (s.lpTried); the phase-2 decision point then skips it.
func (s *exactSearch) runValuePhases(opts ExactOptions, workers int, excluded []bool, covered bitset, coveredW float64, forced []int) {
	// Phase 1 — serial burn-in: the strengthened serial search with a
	// fixed node budget. Most instances close here; the budget (not a
	// wall clock) keeps the phase boundary deterministic. An eager warm
	// caller arrives with the root LP already paid (s.lpTried) and its
	// bans active, so its burn-in searches a tighter tree.
	burnIn := coverLPTrigger
	if burnIn > opts.MaxNodes {
		burnIn = opts.MaxNodes
	}
	s.maxN = burnIn
	s.search(covered, coveredW, s.dualUncov0, forced)
	if !s.capped || s.ctx.Err() != nil || burnIn >= opts.MaxNodes {
		// Closed, canceled, or the real node budget is exhausted.
		return
	}

	// Phase 2 — root strengthening at a deterministic decision point:
	// a search that survived the burn-in pays one LP solve for a global
	// lower bound and reduced-cost set bans. The bans are frozen
	// against the burn-in incumbent before any parallelism starts, so
	// they cannot leak schedule timing into branch selection.
	s.capped = false
	if !s.lpTried {
		s.lpTried = true
		if z, dj, sol, ok := rootLP(s.ctx, s.in, s.target, excluded, forced, s.seedBasis); ok {
			s.noteRootLP(z, dj, sol)
		}
	}
	if s.lpDj != nil && s.bestLen <= s.rootLB {
		return // the incumbent meets the LP bound
	}
	if !opts.NoDualBound && s.lpDj == nil {
		// Same decision point, for the instances the LP row cap turned
		// away: a subgradient climb replaces the cheap alternation duals
		// with a near-LP-strength frozen (φ, λ) pair. When the LP DID
		// solve, its optimum dominates every Lagrangian value, so the
		// climb could only waste the time it costs.
		s.strengthenDualBound(excluded, covered, coveredW)
		if s.bestLen <= s.rootLB {
			return
		}
	}

	// Phase 3 — frontier expansion: re-walk the tree serially, cutting
	// it at a fixed depth into independent subtree tasks. The frontier
	// depends only on deterministic state (never on worker count), and
	// a second, deeper pass splits further when the first one yields
	// too few tasks to balance.
	s.maxN = opts.MaxNodes
	for _, d := range []int{frontierDepth, frontierDepth + 4} {
		s.tasks, s.frontierDepth, s.depth = nil, d, 0
		s.search(covered, coveredW, s.dualUncov0, forced)
		if s.capped || s.doneOptimal || s.ctx.Err() != nil || len(s.tasks) >= frontierMinTasks {
			break
		}
	}
	s.frontierDepth = -1
	if len(s.tasks) == 0 || s.capped || s.doneOptimal || s.ctx.Err() != nil {
		// The depth-limited walk closed (or capped) the search itself.
		return
	}

	// Phase 4 — parallel subtree search with deterministic merge.
	s.runSubtrees(workers, opts.MaxNodes)
}

// noteRootLP installs a successful root LP's artifacts: objective bound,
// reduced-cost bans, effort counters, and the captured basis.
func (s *exactSearch) noteRootLP(z float64, dj []float64, sol *lp.Solution) {
	s.lpZ, s.lpDj = z, dj
	s.pivots += sol.Iterations
	if sol.Warm {
		s.warmStarts++
	}
	if s.capture != nil {
		s.capture.Basis = sol.Basis()
	}
	if rlb := int(math.Ceil(z - 1e-6)); rlb > s.rootLB {
		s.rootLB = rlb
	}
	s.haveRootLB = s.rootLB >= 1
	s.banned = make([]bool, len(s.in.Sets))
	s.refreshBans()
}

// hintCovered validates a warm cover hint against the instance: every
// index in range, and returns the total weight the hinted sets cover.
func hintCovered(in Instance, hint []int) (float64, bool) {
	if len(hint) == 0 {
		return 0, false
	}
	covered := newBitset(in.NumElements)
	w := 0.0
	for _, si := range hint {
		if si < 0 || si >= len(in.Sets) {
			return 0, false
		}
		for _, e := range in.Sets[si] {
			if !covered.get(e) {
				covered.set(e)
				w += in.weight(e)
			}
		}
	}
	return w, true
}

// lpRowsOK reports whether the instance is small enough for a cold root
// LP (rootLPRowCap); a seeded basis bypasses the cap, since the warm
// solve is expected to finish in a handful of dual pivots.
func lpRowsOK(in Instance) bool {
	rows := 0
	for e := 0; e < in.NumElements; e++ {
		if !lp.StructZero(in.weight(e)) {
			rows++
		}
	}
	return rows <= rootLPRowCap
}

// countBans counts the sets excluded by reduced-cost fixing.
func countBans(banned []bool) int {
	n := 0
	for _, b := range banned {
		if b {
			n++
		}
	}
	return n
}

// frontierDepth is the branching depth at which the tree is cut into
// subtree tasks; frontierMinTasks is the task count under which a
// second, deeper expansion pass is attempted. Both are worker-count
// independent: the frontier (and hence the merge) must not change with
// parallelism.
const (
	frontierDepth    = 6
	frontierMinTasks = 16
	minTaskBudget    = 2048
)

// presolve runs the kernelization fixpoint over the classical set-cover
// reductions: dominated sets are excluded (always), and for full covers
// dominated elements are dropped and unique-coverer sets forced in,
// until a round changes nothing. Each rule can enable the others —
// forcing a set covers elements, which shrinks residual coverages,
// which creates new dominations — so a single pass (the historical
// behaviour) leaves kernel left on the table. excluded and covered are
// mutated in place; s.in/s.target are rebound as elements drop; the
// forced set indices are returned in deterministic discovery order.
func (s *exactSearch) presolve(excluded []bool, covered bitset, fullCover bool) []int {
	var forced []int
	inForced := make([]bool, len(s.in.Sets))
	for {
		changed := excludeDominatedSets(s.in, excluded, covered)
		if fullCover {
			if reduced, reducedTarget, ch := dropDominatedElements(s.in, excluded, covered); ch {
				s.in, s.target = reduced, reducedTarget
				changed = true
			}
			if forceUniqueCoverers(s.in, excluded, covered, inForced, &forced) {
				changed = true
			}
		}
		if !changed {
			return forced
		}
	}
}

// excludeDominatedSets marks sets whose residual coverage (positive-
// weight, not-yet-covered elements) is contained in another set's (ties
// broken towards lower indices). Dropping them is sound for any
// (partial) cover: the dominating set can always replace the dominated
// one without losing covered weight. Reports whether any new set was
// excluded.
func excludeDominatedSets(in Instance, excluded []bool, covered bitset) bool {
	n := len(in.Sets)
	masks := make([]bitset, n)
	for i, s := range in.Sets {
		if excluded[i] {
			continue
		}
		masks[i] = newBitset(in.NumElements)
		for _, e := range s {
			if !covered.get(e) && in.weight(e) > 0 {
				masks[i].set(e)
			}
		}
	}
	changed := false
	for i := 0; i < n; i++ {
		if excluded[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || excluded[j] || masks[j] == nil {
				continue
			}
			if masks[i].subsetOf(masks[j]) {
				// Equal sets: keep the lower index only.
				if masks[j].subsetOf(masks[i]) && i < j {
					continue
				}
				excluded[i] = true
				changed = true
				break
			}
		}
	}
	return changed
}

// dropDominatedElements (full cover only) removes elements whose
// covering-set list contains another element's: any full cover covers
// the contained element through one of its sets, which also covers the
// dominating one. Removal is simulated by zeroing the dominated
// elements' weights and shrinking the target to the remaining total —
// reaching the new target then requires covering exactly the remaining
// elements, and dominance implies the dropped ones come along for free.
// Both sides of the rule are restricted to still-uncovered positive-
// weight elements: the argument needs the dominator to be an element
// the search is still obligated to cover through a LIVE set — an
// already-covered element owes nothing (its forced coverer may itself
// be excluded, leaving it an empty coverer list that would vacuously
// "dominate" everything). Reports whether the call dropped any element
// that still had positive weight (so the presolve fixpoint can iterate
// to quiescence).
func dropDominatedElements(in Instance, excluded []bool, covered bitset) (Instance, float64, bool) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	live := func(e int) bool { return !covered.get(e) && !lp.StructZero(in.weight(e)) }
	drop := make([]bool, in.NumElements)
	for u := 0; u < in.NumElements; u++ {
		if drop[u] || !live(u) {
			continue
		}
		for v := 0; v < in.NumElements; v++ {
			if u == v || drop[v] || !live(v) {
				continue
			}
			if coverers[v].subsetOf(coverers[u]) {
				if coverers[u].subsetOf(coverers[v]) && u < v {
					continue // equal: keep the lower index
				}
				drop[u] = true
				break
			}
		}
	}
	weights := make([]float64, in.NumElements)
	target := 0.0
	changed := false
	for e := 0; e < in.NumElements; e++ {
		if drop[e] {
			if !lp.StructZero(in.weight(e)) {
				changed = true
			}
			continue
		}
		weights[e] = in.weight(e)
		target += weights[e]
	}
	return Instance{NumElements: in.NumElements, Weights: weights, Sets: in.Sets}, target, changed
}

// forceUniqueCoverers (full cover only) repeatedly includes sets that
// are the sole remaining coverer of some element, marking the elements
// they cover. Newly forced indices are appended to *forced (inForced
// carries the already-forced flags across presolve rounds); reports
// whether anything new was forced.
func forceUniqueCoverers(in Instance, excluded []bool, covered bitset, inForced []bool, forced *[]int) bool {
	coverers := make([][]int, in.NumElements)
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e] = append(coverers[e], si)
		}
	}
	any := false
	for changed := true; changed; {
		changed = false
		for e := 0; e < in.NumElements; e++ {
			if covered.get(e) || lp.StructZero(in.weight(e)) {
				continue // dropped or already-covered elements force nothing
			}
			if len(coverers[e]) == 1 {
				si := coverers[e][0]
				if !inForced[si] {
					inForced[si] = true
					*forced = append(*forced, si)
					for _, e2 := range in.Sets[si] {
						covered.set(e2)
					}
					changed = true
					any = true
				}
			}
		}
	}
	return any
}

type exactSearch struct {
	ctx     context.Context
	in      Instance
	target  float64
	tol     float64 // coverTol(target), shared by every phase and task
	best    []int
	bestLen int
	nodes   int
	maxN    int
	capped  bool

	// Root LP strengthening state (the set-cover face of the MIP
	// pipeline, see DESIGN.md §4). The LP is paid at most once, at the
	// deterministic burn-in → parallel phase boundary (lpTried). lpZ is
	// the relaxation objective, lpDj the per-set reduced costs (nil
	// when the LP was skipped or failed), rootLB the best global lower
	// bound (ceil of the LP objective or the root dual-ascent value,
	// haveRootLB when meaningful), banned the sets excluded by reduced
	// cost against the current incumbent, and doneOptimal flips when
	// the incumbent meets rootLB (the rest of the tree cannot improve
	// and the search stops, still exact).
	lpTried      bool
	lpZ          float64
	lpDj         []float64
	rootLB       int
	haveRootLB   bool
	banned       []bool
	doneOptimal  bool
	rootExcluded []bool
	forced       []int

	// Frozen root dual-ascent bound state (dual.go): dualPhi[e] is the
	// per-element penalty max(0, λ·w_e − y_e) of a feasible dual (y, λ)
	// of the partial-cover LP, dualLambda the multiplier, dualUncov0
	// the penalty sum over the root's uncovered elements. The per-node
	// bound is ⌈λ·(target − coveredW) − Σ_{e uncovered} dualPhi[e]⌉,
	// maintained in O(1) per covered element. nil dualPhi = bound off.
	dualPhi    []float64
	dualLambda float64
	dualUncov0 float64

	// In-search dominance state: setMasks[si] is set si's positive-
	// weight element bitmap (nil = dominance off or set root-excluded);
	// domPrunes counts the sets the exclude-branch dominance rule
	// dropped.
	setMasks  []bitset
	domPrunes int

	// Frontier expansion state: with frontierDepth >= 0 the search
	// stops descending at that branching depth and snapshots the node
	// as an independent subtree task instead (parallel.go). depth is
	// the current branching depth; tasks collects the frontier in DFS
	// (= task index) order.
	frontierDepth int
	depth         int
	tasks         []*coverTask

	// Parallel subtree coordination (task clones only): pubG is the
	// shared atomic incumbent length — improvements are published
	// immediately, but it is read ONLY for the whole-subtree abort
	// taskLB > pubG (any solution in this subtree is provably no
	// better than a published one, so dropping the subtree cannot
	// change the deterministic merge; see DESIGN.md §4a). aborted
	// unwinds the task like capped but without voiding exactness.
	pubG    *atomicMin
	taskLB  int
	aborted bool

	// Counters reported by the parallel phase (root search only).
	subtreeTasks int
	steals       int

	// Root LP effort and warm-artifact counters (root search only), and
	// the caller's capture sink for the final root LP basis. seedBasis
	// warm-starts the phase-2 root LP when a previous solve shipped one.
	pivots     int
	warmStarts int
	capture    *Capture
	seedBasis  *lp.Basis

	// Disjoint-elements bound state (full covers only): per-element
	// covering-set bitmaps in a processing order of increasing coverer
	// count. Elements pairwise sharing no covering set each require a
	// distinct set, so the size of such a family lower-bounds the
	// remaining cover.
	elemCoverers []bitset
	elemOrder    []int
	disjointUsed bitset  // scratch family-coverer union
	permPos      []int32 // element → elemOrder position (-1 = untracked)
	permCovered  bitset  // covered, permuted into elemOrder positions

	// Incremental residual-gain state: gains[si] is the uncovered
	// weight of set si, updated in place as include branches flip
	// elements (and restored exactly on backtrack via the undo stacks)
	// instead of being recomputed from every set at every node.
	gains    []float64
	elemSets [][]int32 // per element: root-non-excluded sets covering it
	undoT    []int32   // undo stack: touched set ids…
	undoG    []float64 // …and their prior gains
	flip     []int32   // undo stack: elements newly covered
	scratch  []float64 // lower-bound selection buffer
}

// prepareGains builds the per-element coverer lists and the initial
// residual gains (everything after the root reductions and forced
// inclusions). With masks it also builds the per-set positive-weight
// element bitmaps the in-search dominance rule tests containment on.
func (s *exactSearch) prepareGains(covered bitset, excluded []bool, masks bool) {
	n := s.in.NumElements
	s.elemSets = make([][]int32, n)
	s.gains = make([]float64, len(s.in.Sets))
	if masks {
		s.setMasks = make([]bitset, len(s.in.Sets))
	}
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		var m bitset
		if masks {
			m = newBitset(n)
			s.setMasks[si] = m
		}
		g := 0.0
		for _, e := range set {
			s.elemSets[e] = append(s.elemSets[e], int32(si))
			if !covered.get(e) {
				g += s.in.weight(e)
			}
			if m != nil && s.in.weight(e) > 0 {
				m.set(e)
			}
		}
		s.gains[si] = g
	}
}

// prepareDisjointBound precomputes the per-element covering-set bitmaps
// over non-excluded sets and a fewest-coverers-first element order.
// covered seeds the permuted mirror with the already-covered elements
// (forced unique coverers).
func (s *exactSearch) prepareDisjointBound(excluded []bool, covered bitset) {
	n := s.in.NumElements
	s.elemCoverers = make([]bitset, n)
	counts := make([]int, n)
	for e := 0; e < n; e++ {
		s.elemCoverers[e] = newBitset(len(s.in.Sets))
	}
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			s.elemCoverers[e].set(si)
			counts[e]++
		}
	}
	for e := 0; e < n; e++ {
		if s.in.weight(e) > 0 && counts[e] > 0 {
			s.elemOrder = append(s.elemOrder, e)
		}
	}
	sort.Slice(s.elemOrder, func(a, b int) bool { return counts[s.elemOrder[a]] < counts[s.elemOrder[b]] })
	s.disjointUsed = newBitset(len(s.in.Sets))
	// Mirror of `covered` permuted into elemOrder positions, maintained
	// by include()'s flip/undo, so the bound scan skips covered
	// elements a word at a time instead of probing them one by one.
	s.permPos = make([]int32, n)
	for e := range s.permPos {
		s.permPos[e] = -1
	}
	for pi, e := range s.elemOrder {
		s.permPos[e] = int32(pi)
	}
	s.permCovered = newBitset(len(s.elemOrder))
	for pi, e := range s.elemOrder {
		if covered.get(e) {
			s.permCovered.set(pi)
		}
	}
}

// disjointBound greedily builds a family of uncovered elements whose
// covering sets are pairwise disjoint; its size is a valid lower bound
// on the number of additional sets (each chosen set covers at most one
// family member). Using the root covering sets is conservative under
// branching exclusions, hence still valid. The build stops as soon as
// the bound reaches `enough` (the caller prunes at that point, so a
// sharper value is never needed).
func (s *exactSearch) disjointBound(enough int) int {
	if s.elemOrder == nil || enough <= 0 {
		return 0
	}
	used := s.disjointUsed
	for i := range used {
		used[i] = 0
	}
	bound := 0
	// Scan uncovered elements word-wise through the permuted mirror:
	// the element order is identical to the historical per-element
	// probe, so the bound value (and hence the tree) never changes.
	n := len(s.elemOrder)
	for wi, w := range s.permCovered {
		free := ^w
		if base := wi * 64; base+64 > n {
			free &= (1 << uint(n-base)) - 1
		}
		for free != 0 {
			bit := bits.TrailingZeros64(free)
			free &= free - 1
			e := s.elemOrder[wi*64+bit]
			conflict := false
			ec := s.elemCoverers[e]
			for i, cw := range ec {
				if cw&used[i] != 0 {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for i, cw := range ec {
				used[i] |= cw
			}
			bound++
			if bound >= enough {
				return bound
			}
		}
	}
	return bound
}

// rootLPRowCap skips the root LP on instances whose relaxation would
// have more element rows than this: on the paper's large partial-cover
// instances the covering LP is both degenerate (tens of thousands of
// pivots) and weak (a structural integrality gap), so it cannot pay
// for itself. coverLPTrigger keeps the LP lazy — only searches that
// survive that many serial burn-in nodes buy the bound.
const rootLPRowCap = 300

// coverLPTrigger is the serial burn-in node budget: searches that close
// within it never pay for the root LP, the frontier expansion, or the
// parallel machinery. A var only so the test suite can force the
// strengthened phases on tiny searches (or disable them); production
// code never writes it.
var coverLPTrigger = 2048

// isBanned reports whether reduced-cost fixing excluded the set.
func (s *exactSearch) isBanned(si int) bool {
	return s.banned != nil && s.banned[si]
}

// refreshBans re-applies the reduced-cost exclusion test against the
// current incumbent: a cover containing set si costs at least
// lpZ + dj_si, so when that exceeds bestLen−1 no improving cover uses
// si. Bans only grow as the incumbent improves.
func (s *exactSearch) refreshBans() {
	cut := float64(s.bestLen-1) + 1e-6
	for si, dj := range s.lpDj {
		if !s.banned[si] && s.lpZ+dj > cut {
			s.banned[si] = true
		}
	}
}

// rootLP solves the LP relaxation of the (reduced) partial-cover
// instance: min Σ x_s subject to δ_e ≤ Σ_{s∋e} x_s, Σ w_e·δ_e ≥ target,
// x over the non-excluded sets (forced sets pinned to 1). It returns
// the objective, the per-set reduced costs for reduced-cost fixing, and
// the lp solution (effort counters, final basis); ok is false when the
// LP was canceled or failed (the search then just runs unstrenghtened).
// A non-nil seed warm-starts the simplex from a previous solve's basis;
// a shape mismatch falls back to a cold solve inside lp.
func rootLP(ctx context.Context, in Instance, target float64, excluded []bool, forced []int, seed *lp.Basis) (z float64, dj []float64, lpSol *lp.Solution, ok bool) {
	if seed == nil && !lpRowsOK(in) {
		return 0, nil, nil, false
	}
	p, xs := buildRootLP(in, target, excluded, forced)
	return solveRootLP(ctx, p, xs, seed)
}

// buildRootLP constructs the root relaxation without solving it, so the
// eager warm path can shape-check a saved basis against the problem it
// would actually seed before committing to any simplex work.
func buildRootLP(in Instance, target float64, excluded []bool, forced []int) (*lp.Problem, []lp.Var) {
	p := lp.NewProblem(lp.Minimize)
	p.SetExtractDuals(true)
	xs := make([]lp.Var, len(in.Sets))
	isForced := make([]bool, len(in.Sets))
	for _, si := range forced {
		isForced[si] = true
	}
	for si := range in.Sets {
		lo, hi := 0.0, 1.0
		switch {
		case excluded[si]:
			hi = 0
		case isForced[si]:
			lo = 1
		}
		xs[si] = p.AddVariable("x", lo, hi, 1)
	}
	coverers := make([][]int32, in.NumElements)
	for si, set := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			coverers[e] = append(coverers[e], int32(si))
		}
	}
	var covTerms []lp.Term
	for e := 0; e < in.NumElements; e++ {
		w := in.weight(e)
		if lp.StructZero(w) {
			continue
		}
		d := p.AddVariable("d", 0, 1, 0)
		covTerms = append(covTerms, lp.Term{Var: d, Coef: w})
		terms := make([]lp.Term, 0, len(coverers[e])+1)
		terms = append(terms, lp.Term{Var: d, Coef: -1})
		prev := int32(-1)
		for _, si := range coverers[e] {
			if si != prev { // a set may list an element twice
				terms = append(terms, lp.Term{Var: xs[si], Coef: 1})
			}
			prev = si
		}
		p.AddConstraint(lp.GE, 0, terms...)
	}
	p.AddConstraint(lp.GE, target, covTerms...)
	return p, xs
}

// solveRootLP solves a built root relaxation (optionally warm-seeded)
// and extracts the per-set reduced costs.
func solveRootLP(ctx context.Context, p *lp.Problem, xs []lp.Var, seed *lp.Basis) (z float64, dj []float64, lpSol *lp.Solution, ok bool) {
	sol, err := p.SolveContextFrom(ctx, seed)
	if err != nil || sol.Status != lp.Optimal || sol.ReducedCosts == nil {
		return 0, nil, nil, false
	}
	dj = make([]float64, len(xs))
	for si := range xs {
		dj[si] = sol.ReducedCosts[xs[si]]
	}
	return sol.Objective, dj, sol, true
}

// mergeSignatures collapses elements covered by exactly the same sets
// into one element of summed weight. Sound for any coverage target:
// merged elements are covered or uncovered together.
func mergeSignatures(in Instance, target float64) (Instance, float64) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	rep := make(map[string]int, in.NumElements) // signature → new element id
	newID := make([]int, in.NumElements)
	var weights []float64
	for e := 0; e < in.NumElements; e++ {
		key := fmt.Sprint(coverers[e])
		id, ok := rep[key]
		if !ok {
			id = len(weights)
			rep[key] = id
			weights = append(weights, 0)
		}
		newID[e] = id
		weights[id] += in.weight(e)
	}
	if len(weights) == in.NumElements {
		return in, target // nothing merged
	}
	sets := make([][]int, len(in.Sets))
	for si, s := range in.Sets {
		seen := make(map[int]bool, len(s))
		for _, e := range s {
			id := newID[e]
			if !seen[id] {
				seen[id] = true
				sets[si] = append(sets[si], id)
			}
		}
	}
	return Instance{NumElements: len(weights), Weights: weights, Sets: sets}, target
}

// boundAndBranch fuses the two per-node scans over the residual gains:
// it returns the additive lower bound on the number of additional sets
// needed to cover `remaining` weight (pretending sets never overlap —
// optimistic, hence valid) and the branching set (largest residual
// gain; -1 when none is usable). Selection stops at maxUseful — the
// caller's prune test needs nothing sharper — so the scan keeps only
// the maxUseful largest gains in one descending insertion buffer
// (inserts trigger only on gains beating the buffer's minimum, so the
// common cost is the plain scan, not maxUseful extraction passes).
func (s *exactSearch) boundAndBranch(remaining float64, maxUseful int) (int, int) {
	k := maxUseful
	if k < 1 {
		k = 1
	}
	buf := s.scratch[:0]
	banned := s.banned
	branch := -1
	g1, sum := 0.0, 0.0
	for si, g := range s.gains {
		if g <= 0 || (banned != nil && banned[si]) {
			continue
		}
		sum += g
		if g > g1 {
			g1 = g
			branch = si
		}
		if n := len(buf); n < k {
			buf = append(buf, g)
			j := n
			for j > 0 && buf[j-1] < g {
				buf[j] = buf[j-1]
				j--
			}
			buf[j] = g
		} else if g > buf[k-1] {
			j := k - 1
			for j > 0 && buf[j-1] < g {
				buf[j] = buf[j-1]
				j--
			}
			buf[j] = g
		}
	}
	s.scratch = buf
	switch {
	case remaining <= s.tol:
		return 0, branch
	case remaining <= g1:
		return 1, branch
	case sum < remaining-s.tol:
		// Tolerance matches the incumbent acceptance test: a node whose
		// total residual gain is within float drift of the target is
		// still completable, not infeasible.
		return math.MaxInt32, branch
	case maxUseful <= 2:
		// Two sets never suffice here (remaining > g1 rules out one,
		// and the caller prunes at maxUseful anyway).
		return 2, branch
	}
	if cheap := int(math.Ceil(remaining/g1 - 1e-12)); cheap >= maxUseful {
		// O(1) ceiling bound: every gain is at most g1, so at least
		// remaining/g1 more sets are needed — already enough to prune.
		return maxUseful, branch
	}
	need := 0
	for _, g := range buf {
		remaining -= g
		need++
		if remaining <= s.tol {
			return need, branch
		}
	}
	// The maxUseful largest gains (or every positive gain) do not reach
	// the target: at least len(buf) more sets are needed.
	return len(buf), branch
}

func (s *exactSearch) search(covered bitset, coveredW, dualUncov float64, chosen []int) {
	if s.capped || s.doneOptimal || s.aborted {
		return
	}
	s.nodes++
	if s.nodes > s.maxN {
		s.capped = true
		return
	}
	// Poll the context every 1024 nodes; a fired context stops the
	// search exactly like an exhausted node budget (incumbent kept).
	// Subtree tasks also poll the shared incumbent here: when this
	// task's static root bound proves it cannot beat a published cover,
	// the whole subtree is dropped (a proof, not a cap — the merge is
	// unchanged because everything in here loses it anyway).
	if s.nodes&1023 == 0 {
		if s.ctx.Err() != nil {
			s.capped = true
			return
		}
		if s.pubG != nil && int64(s.taskLB) > s.pubG.load() {
			s.aborted = true
			return
		}
	}
	if coveredW >= s.target-s.tol {
		if len(chosen) < s.bestLen {
			s.bestLen = len(chosen)
			s.best = append([]int(nil), chosen...)
			if s.pubG != nil {
				// Publish immediately so sibling subtrees can abort.
				s.pubG.publish(int64(s.bestLen))
			}
			if s.haveRootLB && s.bestLen <= s.rootLB {
				// An incumbent at the root bound is proven optimal:
				// stop the whole (sub)search.
				s.doneOptimal = true
				return
			}
			if s.lpDj != nil {
				// Tighten the reduced-cost exclusions against the
				// improved cutoff (task-local: bans derive only from
				// this search's own deterministic incumbent).
				s.refreshBans()
			}
		}
		return
	}
	if len(chosen)+1 >= s.bestLen {
		// The target is not reached, so any completion adds at least one
		// more set and cannot improve on the incumbent.
		return
	}

	// One fused pass yields the additive bound and the branching set
	// (largest residual gain).
	lb, branch := s.boundAndBranch(s.target-coveredW, s.bestLen-len(chosen))
	if len(chosen)+lb >= s.bestLen {
		return
	}
	// The Lagrangian dual-ascent bound is O(1) per node: the frozen
	// root duals priced against the remaining target.
	if s.dualPhi != nil {
		if dlb := s.dualLB(coveredW, dualUncov); dlb > lb {
			lb = dlb
			if len(chosen)+lb >= s.bestLen {
				return
			}
		}
	}
	// The disjoint-family bound is the costlier one: only consult it on
	// nodes the cheap bounds failed to prune, and only until it
	// reaches pruning strength.
	if s.elemOrder != nil {
		if db := s.disjointBound(s.bestLen - len(chosen)); db > lb {
			lb = db
			if len(chosen)+lb >= s.bestLen {
				return
			}
		}
	}
	if branch < 0 {
		return // nothing left to add
	}
	// Frontier cut: instead of descending, snapshot this node as an
	// independent subtree task. lb is the sharpest bound the node was
	// scanned with — the task's static abort certificate.
	if s.frontierDepth >= 0 && s.depth >= s.frontierDepth {
		s.snapshotTask(covered, coveredW, dualUncov, chosen, len(chosen)+lb)
		return
	}
	// Include branch first: mimics the greedy and finds incumbents fast.
	s.include(covered, coveredW, dualUncov, chosen, branch)
	// Exclude branch: zeroing the set's residual gain removes it from
	// the bound, the branch selection and the feasibility sum in one
	// store (root-excluded sets already sit at gain 0 the same way).
	// Nested includes only ever decrement the gain and their undo
	// stacks restore it exactly, so the final restore is exact too.
	// Dominance rides along: once the branched set is out, any
	// candidate whose residual coverage it contains can be swapped for
	// it, so those are excluded too (and restored from the same undo
	// stack). Residual-identical sets are the symmetry case: only the
	// branch-first permutation survives.
	markT := len(s.undoT)
	s.undoT = append(s.undoT, int32(branch))
	s.undoG = append(s.undoG, s.gains[branch])
	s.gains[branch] = 0
	if s.setMasks != nil {
		s.excludeDominatedBy(branch, covered)
	}
	s.depth++
	s.search(covered, coveredW, dualUncov, chosen)
	s.depth--
	for i := len(s.undoT) - 1; i >= markT; i-- {
		s.gains[s.undoT[i]] = s.undoG[i]
	}
	s.undoT = s.undoT[:markT]
	s.undoG = s.undoG[:markT]
}

// excludeDominatedBy zeroes the gain of every live candidate set whose
// residual coverage is contained in branch's: in the branch-excluded
// subtree any cover using such a set can swap it for branch without
// losing covered weight or cardinality, and that cover lives in the
// include subtree, which was searched first. The undo entries ride the
// caller's mark.
func (s *exactSearch) excludeDominatedBy(branch int, covered bitset) {
	bm := s.setMasks[branch]
	for sj := range s.gains {
		if s.gains[sj] <= 0 || sj == branch || s.isBanned(sj) {
			continue
		}
		jm := s.setMasks[sj]
		if jm == nil {
			continue
		}
		dominated := true
		for wi, wv := range jm {
			if wv&^covered[wi]&^bm[wi] != 0 {
				dominated = false
				break
			}
		}
		if dominated {
			s.undoT = append(s.undoT, int32(sj))
			s.undoG = append(s.undoG, s.gains[sj])
			s.gains[sj] = 0
			s.domPrunes++
		}
	}
}

// include descends into the branch that takes set si. covered and the
// residual gains are updated in place and restored exactly afterwards
// (prior gain values are re-installed from the undo stack in reverse,
// so backtracking never accumulates float drift).
func (s *exactSearch) include(covered bitset, coveredW, dualUncov float64, chosen []int, si int) {
	markT, markF := len(s.undoT), len(s.flip)
	w, du := coveredW, dualUncov
	for _, e := range s.in.Sets[si] {
		if covered.get(e) {
			continue
		}
		covered.set(e)
		if s.permPos != nil {
			if p := s.permPos[e]; p >= 0 {
				s.permCovered.set(int(p))
			}
		}
		s.flip = append(s.flip, int32(e))
		we := s.in.weight(e)
		w += we
		if s.dualPhi != nil {
			du -= s.dualPhi[e]
		}
		for _, t := range s.elemSets[e] {
			s.undoT = append(s.undoT, t)
			s.undoG = append(s.undoG, s.gains[t])
			s.gains[t] -= we
		}
	}
	s.depth++
	s.search(covered, w, du, append(chosen, si))
	s.depth--
	for i := len(s.undoT) - 1; i >= markT; i-- {
		s.gains[s.undoT[i]] = s.undoG[i]
	}
	s.undoT = s.undoT[:markT]
	s.undoG = s.undoG[:markT]
	for i := len(s.flip) - 1; i >= markF; i-- {
		e := int(s.flip[i])
		covered.unset(e)
		if s.permPos != nil {
			if p := s.permPos[e]; p >= 0 {
				s.permCovered.unset(int(p))
			}
		}
	}
	s.flip = s.flip[:markF]
}
