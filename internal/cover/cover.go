// Package cover implements Minimum Set Cover and Minimum Partial
// (weighted) Cover: the greedy approximation the paper's Theorem 1 maps
// Passive Monitoring onto, and an exact combinatorial branch-and-bound
// used as a scalable alternative to the MIP on large instances.
//
// Terminology follows §4.2 of the paper: items (elements) are traffics,
// sets are links; choosing a set covers all elements it contains, and
// PPM(k) asks for the fewest sets covering elements of total weight at
// least k times the whole.
package cover

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Instance is a (partial) set cover instance. Elements are 0..NumElements-1.
type Instance struct {
	NumElements int
	// Weights holds one weight per element; nil means unit weights.
	Weights []float64
	// Sets lists, for each set, the elements it covers. Element ids out
	// of range are rejected by Validate.
	Sets [][]int
}

// Validate checks index ranges and weight consistency.
func (in Instance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("cover: negative element count %d", in.NumElements)
	}
	if in.Weights != nil && len(in.Weights) != in.NumElements {
		return fmt.Errorf("cover: %d weights for %d elements", len(in.Weights), in.NumElements)
	}
	for i, w := range in.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("cover: element %d has bad weight %g", i, w)
		}
	}
	for si, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("cover: set %d references element %d out of range [0,%d)", si, e, in.NumElements)
			}
		}
	}
	return nil
}

// weight returns the weight of element e.
func (in Instance) weight(e int) float64 {
	if in.Weights == nil {
		return 1
	}
	return in.Weights[e]
}

// TotalWeight returns the sum of all element weights (the paper's V).
func (in Instance) TotalWeight() float64 {
	if in.Weights == nil {
		return float64(in.NumElements)
	}
	t := 0.0
	for _, w := range in.Weights {
		t += w
	}
	return t
}

// bitset is a fixed-size bitmap over elements.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) unset(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }

// subsetOf reports whether every bit of b is also set in other.
func (b bitset) subsetOf(other bitset) bool {
	for i, w := range b {
		if w&^other[i] != 0 {
			return false
		}
	}
	return true
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Result is the outcome of a cover computation.
type Result struct {
	// Chosen lists the selected set indices in selection order.
	Chosen []int
	// Covered is the total weight of the covered elements.
	Covered float64
	// Feasible is false when even choosing every set cannot reach the
	// target.
	Feasible bool
	// Exact is true when the result is provably optimal.
	Exact bool
	// Nodes counts branch-and-bound nodes (exact solver only).
	Nodes int
}

// GreedyPartial runs the classical greedy for Minimum Partial Cover: it
// repeatedly selects the set with the largest uncovered weight until the
// covered weight reaches target. This is the (ln|D| − ln ln|D| + Θ(1))-
// approximation the paper cites from Slavík [19, 20].
func GreedyPartial(in Instance, target float64) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	covered := newBitset(in.NumElements)
	res := Result{Feasible: true}
	used := make([]bool, len(in.Sets))
	for res.Covered < target-1e-12 {
		best, bestGain := -1, 0.0
		for si, s := range in.Sets {
			if used[si] {
				continue
			}
			gain := 0.0
			for _, e := range s {
				if !covered.get(e) {
					gain += in.weight(e)
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			res.Feasible = false
			return res
		}
		used[best] = true
		res.Chosen = append(res.Chosen, best)
		for _, e := range in.Sets[best] {
			if !covered.get(e) {
				covered.set(e)
				res.Covered += in.weight(e)
			}
		}
	}
	return res
}

// Greedy runs GreedyPartial with the full total weight as target, i.e.
// the classical greedy for Minimum Set Cover.
func Greedy(in Instance) Result {
	return GreedyPartial(in, in.TotalWeight())
}

// GreedyBoundRatio returns the Slavík approximation guarantee
// ln n − ln ln n + Θ(1) for instance size n (clamped below at 1), used
// for reporting how far greedy can be from optimal.
func GreedyBoundRatio(n int) float64 {
	if n < 3 {
		return 1
	}
	r := math.Log(float64(n)) - math.Log(math.Log(float64(n))) + 0.78
	if r < 1 {
		return 1
	}
	return r
}

// ExactOptions tunes the exact branch-and-bound.
type ExactOptions struct {
	// MaxNodes caps the search; 0 means 5,000,000. When exceeded the
	// best incumbent is returned with Exact=false.
	MaxNodes int
}

// Exact solves Minimum Partial Cover exactly with branch and bound:
// depth-first search that always branches on the set with the largest
// residual coverage (include first, giving a greedy dive for early
// incumbents) and prunes with an optimistic fractional bound that counts
// the largest residual coverages ignoring overlaps.
//
// Before searching it applies the classical set-cover reductions:
// dominated sets (element set contained in another's) are excluded
// always; for full covers, dominated elements (covering-set list
// containing another element's) are dropped and sets covering some
// element exclusively are forced in.
//
// When ctx fires mid-search the best incumbent found so far (at worst
// the greedy warm start) is returned with Exact = false.
func Exact(ctx context.Context, in Instance, target float64, opts ExactOptions) Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 5_000_000
	}
	// Start from the greedy incumbent: it bounds the search depth.
	greedy := GreedyPartial(in, target)
	if !greedy.Feasible {
		return Result{Feasible: false, Exact: true}
	}
	if target <= 1e-12 {
		return Result{Feasible: true, Exact: true}
	}
	if ctx.Err() != nil {
		// Canceled before the search started: the greedy warm start is
		// the incumbent.
		greedy.Exact = false
		return greedy
	}

	fullCover := target >= in.TotalWeight()-1e-9
	// Merge elements with identical covering sets (their coverage always
	// moves together, so one weighted representative suffices at any k).
	searchIn, searchTarget := mergeSignatures(in, target)

	s := &exactSearch{
		ctx:     ctx,
		in:      searchIn,
		target:  searchTarget,
		best:    append([]int(nil), greedy.Chosen...),
		bestLen: len(greedy.Chosen),
		maxN:    opts.MaxNodes,
	}
	excluded := excludeDominatedSets(searchIn)
	covered := newBitset(searchIn.NumElements)
	var forced []int
	if fullCover {
		reduced, reducedTarget := dropDominatedElements(searchIn, excluded)
		s.in, s.target = reduced, reducedTarget
		forced = forceUniqueCoverers(reduced, excluded, covered)
		s.prepareDisjointBound(excluded)
	}
	coveredW := 0.0
	for e := 0; e < s.in.NumElements; e++ {
		if covered.get(e) {
			coveredW += s.in.weight(e)
		}
	}
	s.prepareGains(covered, excluded)
	s.search(covered, coveredW, forced, excluded)

	res := Result{
		Chosen:   s.best,
		Feasible: true,
		Exact:    !s.capped,
		Nodes:    s.nodes,
	}
	final := newBitset(in.NumElements)
	for _, si := range s.best {
		for _, e := range in.Sets[si] {
			if !final.get(e) {
				final.set(e)
				res.Covered += in.weight(e)
			}
		}
	}
	return res
}

// excludeDominatedSets marks sets whose element set is contained in
// another set's (ties broken towards lower indices). Dropping them is
// sound for any (partial) cover: the dominating set can always replace
// the dominated one without losing coverage.
func excludeDominatedSets(in Instance) []bool {
	n := len(in.Sets)
	excluded := make([]bool, n)
	masks := make([]bitset, n)
	for i, s := range in.Sets {
		masks[i] = newBitset(in.NumElements)
		for _, e := range s {
			masks[i].set(e)
		}
	}
	for i := 0; i < n; i++ {
		if excluded[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || excluded[j] {
				continue
			}
			if masks[i].subsetOf(masks[j]) {
				// Equal sets: keep the lower index only.
				if masks[j].subsetOf(masks[i]) && i < j {
					continue
				}
				excluded[i] = true
				break
			}
		}
	}
	return excluded
}

// dropDominatedElements (full cover only) removes elements whose
// covering-set list contains another element's: any full cover covers
// the contained element through one of its sets, which also covers the
// dominating one. Removal is simulated by zeroing the dominated
// elements' weights and shrinking the target to the remaining total —
// reaching the new target then requires covering exactly the remaining
// elements, and dominance implies the dropped ones come along for free.
func dropDominatedElements(in Instance, excluded []bool) (Instance, float64) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	drop := make([]bool, in.NumElements)
	for u := 0; u < in.NumElements; u++ {
		if drop[u] {
			continue
		}
		for v := 0; v < in.NumElements; v++ {
			if u == v || drop[v] {
				continue
			}
			if coverers[v].subsetOf(coverers[u]) {
				if coverers[u].subsetOf(coverers[v]) && u < v {
					continue // equal: keep the lower index
				}
				drop[u] = true
				break
			}
		}
	}
	weights := make([]float64, in.NumElements)
	target := 0.0
	for e := 0; e < in.NumElements; e++ {
		if drop[e] {
			continue
		}
		weights[e] = in.weight(e)
		target += weights[e]
	}
	return Instance{NumElements: in.NumElements, Weights: weights, Sets: in.Sets}, target
}

// forceUniqueCoverers (full cover only) repeatedly includes sets that
// are the sole remaining coverer of some element, marking the elements
// they cover. Returns the forced set indices.
func forceUniqueCoverers(in Instance, excluded []bool, covered bitset) []int {
	coverers := make([][]int, in.NumElements)
	for si, s := range in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range s {
			coverers[e] = append(coverers[e], si)
		}
	}
	var forced []int
	inForced := make([]bool, len(in.Sets))
	for changed := true; changed; {
		changed = false
		for e := 0; e < in.NumElements; e++ {
			if covered.get(e) || in.weight(e) == 0 {
				continue // dropped or already-covered elements force nothing
			}
			if len(coverers[e]) == 1 {
				si := coverers[e][0]
				if !inForced[si] {
					inForced[si] = true
					forced = append(forced, si)
					for _, e2 := range in.Sets[si] {
						covered.set(e2)
					}
					changed = true
				}
			}
		}
	}
	return forced
}

type exactSearch struct {
	ctx     context.Context
	in      Instance
	target  float64
	best    []int
	bestLen int
	nodes   int
	maxN    int
	capped  bool

	// Disjoint-elements bound state (full covers only): per-element
	// covering-set bitmaps in a processing order of increasing coverer
	// count. Elements pairwise sharing no covering set each require a
	// distinct set, so the size of such a family lower-bounds the
	// remaining cover.
	elemCoverers []bitset
	elemOrder    []int

	// Incremental residual-gain state: gains[si] is the uncovered
	// weight of set si, updated in place as include branches flip
	// elements (and restored exactly on backtrack via the undo stacks)
	// instead of being recomputed from every set at every node.
	gains    []float64
	elemSets [][]int32 // per element: root-non-excluded sets covering it
	undoT    []int32   // undo stack: touched set ids…
	undoG    []float64 // …and their prior gains
	flip     []int32   // undo stack: elements newly covered
	scratch  []float64 // lower-bound selection buffer
}

// prepareGains builds the per-element coverer lists and the initial
// residual gains (everything after the root reductions and forced
// inclusions).
func (s *exactSearch) prepareGains(covered bitset, excluded []bool) {
	n := s.in.NumElements
	s.elemSets = make([][]int32, n)
	s.gains = make([]float64, len(s.in.Sets))
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		g := 0.0
		for _, e := range set {
			s.elemSets[e] = append(s.elemSets[e], int32(si))
			if !covered.get(e) {
				g += s.in.weight(e)
			}
		}
		s.gains[si] = g
	}
}

// prepareDisjointBound precomputes the per-element covering-set bitmaps
// over non-excluded sets and a fewest-coverers-first element order.
func (s *exactSearch) prepareDisjointBound(excluded []bool) {
	n := s.in.NumElements
	s.elemCoverers = make([]bitset, n)
	counts := make([]int, n)
	for e := 0; e < n; e++ {
		s.elemCoverers[e] = newBitset(len(s.in.Sets))
	}
	for si, set := range s.in.Sets {
		if excluded[si] {
			continue
		}
		for _, e := range set {
			s.elemCoverers[e].set(si)
			counts[e]++
		}
	}
	for e := 0; e < n; e++ {
		if s.in.weight(e) > 0 && counts[e] > 0 {
			s.elemOrder = append(s.elemOrder, e)
		}
	}
	sort.Slice(s.elemOrder, func(a, b int) bool { return counts[s.elemOrder[a]] < counts[s.elemOrder[b]] })
}

// disjointBound greedily builds a family of uncovered elements whose
// covering sets are pairwise disjoint; its size is a valid lower bound
// on the number of additional sets (each chosen set covers at most one
// family member). Using the root covering sets is conservative under
// branching exclusions, hence still valid.
func (s *exactSearch) disjointBound(covered bitset) int {
	if s.elemOrder == nil {
		return 0
	}
	used := newBitset(len(s.in.Sets))
	bound := 0
	for _, e := range s.elemOrder {
		if covered.get(e) {
			continue
		}
		conflict := false
		ec := s.elemCoverers[e]
		for i, w := range ec {
			if w&used[i] != 0 {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for i, w := range ec {
			used[i] |= w
		}
		bound++
	}
	return bound
}

// mergeSignatures collapses elements covered by exactly the same sets
// into one element of summed weight. Sound for any coverage target:
// merged elements are covered or uncovered together.
func mergeSignatures(in Instance, target float64) (Instance, float64) {
	coverers := make([]bitset, in.NumElements)
	for e := range coverers {
		coverers[e] = newBitset(len(in.Sets))
	}
	for si, s := range in.Sets {
		for _, e := range s {
			coverers[e].set(si)
		}
	}
	rep := make(map[string]int, in.NumElements) // signature → new element id
	newID := make([]int, in.NumElements)
	var weights []float64
	for e := 0; e < in.NumElements; e++ {
		key := fmt.Sprint(coverers[e])
		id, ok := rep[key]
		if !ok {
			id = len(weights)
			rep[key] = id
			weights = append(weights, 0)
		}
		newID[e] = id
		weights[id] += in.weight(e)
	}
	if len(weights) == in.NumElements {
		return in, target // nothing merged
	}
	sets := make([][]int, len(in.Sets))
	for si, s := range in.Sets {
		seen := make(map[int]bool, len(s))
		for _, e := range s {
			id := newID[e]
			if !seen[id] {
				seen[id] = true
				sets[si] = append(sets[si], id)
			}
		}
	}
	return Instance{NumElements: len(weights), Weights: weights, Sets: sets}, target
}

// lowerBound returns the minimum number of additional sets needed to
// cover `remaining` weight, pretending sets never overlap (optimistic,
// hence a valid bound). Selection stops at maxUseful — the caller's
// prune test needs nothing sharper — so the common case extracts a few
// maxima instead of sorting every gain.
func (s *exactSearch) lowerBound(remaining float64, maxUseful int, excluded []bool) int {
	if remaining <= 1e-12 {
		return 0
	}
	buf := s.scratch[:0]
	for si, g := range s.gains {
		if g > 0 && !excluded[si] {
			buf = append(buf, g)
		}
	}
	s.scratch = buf
	need := 0
	for {
		if len(buf) == 0 {
			return math.MaxInt32 // cannot reach the target at all
		}
		if need >= maxUseful {
			// At least maxUseful more sets are required; that already
			// prunes, so stop selecting.
			return maxUseful
		}
		mi := 0
		for i := 1; i < len(buf); i++ {
			if buf[i] > buf[mi] {
				mi = i
			}
		}
		remaining -= buf[mi]
		need++
		if remaining <= 1e-12 {
			return need
		}
		buf[mi] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
	}
}

func (s *exactSearch) search(covered bitset, coveredW float64, chosen []int, excluded []bool) {
	if s.capped {
		return
	}
	s.nodes++
	if s.nodes > s.maxN {
		s.capped = true
		return
	}
	// Poll the context every 1024 nodes; a fired context stops the
	// search exactly like an exhausted node budget (incumbent kept).
	if s.nodes&1023 == 0 && s.ctx.Err() != nil {
		s.capped = true
		return
	}
	if coveredW >= s.target-1e-12 {
		if len(chosen) < s.bestLen {
			s.bestLen = len(chosen)
			s.best = append([]int(nil), chosen...)
		}
		return
	}
	if len(chosen)+1 >= s.bestLen {
		// The target is not reached, so any completion adds at least one
		// more set and cannot improve on the incumbent.
		return
	}

	lb := s.lowerBound(s.target-coveredW, s.bestLen-len(chosen), excluded)
	if len(chosen)+lb >= s.bestLen {
		return
	}
	// The disjoint-family bound is the costlier one: only consult it on
	// nodes the additive bound failed to prune.
	if db := s.disjointBound(covered); db > lb {
		if len(chosen)+db >= s.bestLen {
			return
		}
	}
	// Branch on the set with the largest residual gain.
	branch := -1
	bg := 0.0
	for si, g := range s.gains {
		if !excluded[si] && g > bg {
			bg, branch = g, si
		}
	}
	if branch < 0 {
		return // nothing left to add
	}
	// Include branch first: mimics the greedy and finds incumbents fast.
	s.include(covered, coveredW, chosen, excluded, branch)
	// Exclude branch.
	excluded[branch] = true
	s.search(covered, coveredW, chosen, excluded)
	excluded[branch] = false
}

// include descends into the branch that takes set si. covered and the
// residual gains are updated in place and restored exactly afterwards
// (prior gain values are re-installed from the undo stack in reverse,
// so backtracking never accumulates float drift).
func (s *exactSearch) include(covered bitset, coveredW float64, chosen []int, excluded []bool, si int) {
	markT, markF := len(s.undoT), len(s.flip)
	w := coveredW
	for _, e := range s.in.Sets[si] {
		if covered.get(e) {
			continue
		}
		covered.set(e)
		s.flip = append(s.flip, int32(e))
		we := s.in.weight(e)
		w += we
		for _, t := range s.elemSets[e] {
			s.undoT = append(s.undoT, t)
			s.undoG = append(s.undoG, s.gains[t])
			s.gains[t] -= we
		}
	}
	s.search(covered, w, append(chosen, si), excluded)
	for i := len(s.undoT) - 1; i >= markT; i-- {
		s.gains[s.undoT[i]] = s.undoG[i]
	}
	s.undoT = s.undoT[:markT]
	s.undoG = s.undoG[:markT]
	for i := len(s.flip) - 1; i >= markF; i-- {
		covered.unset(int(s.flip[i]))
	}
	s.flip = s.flip[:markF]
}
