package cover

import (
	"context"
	"sync/atomic"

	"repro/internal/engine"
)

// This file implements the parallel phase of Exact: the serial frontier
// expansion snapshots independent subtree tasks, engine.MapTree fans
// them out over a bounded worker pool, and the results merge by
// (cover size, task index). Determinism discipline (DESIGN.md §4a):
// every task searches against ONLY its own deterministic state — local
// incumbent seeded from the serial phases, task-local reduced-cost
// bans, task-local node budget — so each task's report is independent
// of scheduling. The shared atomic incumbent is written eagerly but
// read solely for the whole-subtree abort taskLB > G, which can only
// drop subtrees whose every solution provably loses the merge. A task
// that would win the merge (lowest index reporting the final minimum
// L*) has taskLB ≤ L* ≤ G at all times, so it can never abort: the
// merged cover is byte-identical for any worker count and schedule.

// coverTask is one frontier node: the deterministic snapshot of the
// mutable search state at a fixed branching depth.
type coverTask struct {
	covered     bitset
	permCovered bitset
	coveredW    float64
	dualUncov   float64
	chosen      []int
	gains       []float64
	// lb is the sharpest static bound computed at the snapshot node:
	// every cover in this subtree has at least lb sets. It is the
	// task's abort certificate against the shared incumbent.
	lb int
}

// snapshotTask clones the mutable search state into an independent
// subtree task. Called in DFS order, so the slice index doubles as the
// deterministic merge tie-break.
func (s *exactSearch) snapshotTask(covered bitset, coveredW, dualUncov float64, chosen []int, lb int) {
	t := &coverTask{
		covered:   covered.clone(),
		coveredW:  coveredW,
		dualUncov: dualUncov,
		chosen:    append([]int(nil), chosen...),
		gains:     append([]float64(nil), s.gains...),
		lb:        lb,
	}
	if s.permCovered != nil {
		t.permCovered = s.permCovered.clone()
	}
	s.tasks = append(s.tasks, t)
}

// atomicMin is the shared incumbent length: publish keeps the minimum.
type atomicMin struct{ v atomic.Int64 }

func (m *atomicMin) load() int64 { return m.v.Load() }

func (m *atomicMin) publish(n int64) {
	for {
		cur := m.v.Load()
		if n >= cur || m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// taskSearch runs one subtree task to completion (or its budget, or an
// abort) on a clone of the root search that shares every immutable
// structure and owns every mutable one.
func (s *exactSearch) taskSearch(t *coverTask, budget int, g *atomicMin) *exactSearch {
	c := &exactSearch{
		ctx:     s.ctx,
		in:      s.in,
		target:  s.target,
		tol:     s.tol,
		best:    s.best,
		bestLen: s.bestLen,
		maxN:    budget,

		lpTried:      true,
		lpZ:          s.lpZ,
		lpDj:         s.lpDj,
		rootLB:       s.rootLB,
		haveRootLB:   s.haveRootLB,
		rootExcluded: s.rootExcluded,
		forced:       s.forced,

		elemCoverers: s.elemCoverers,
		elemOrder:    s.elemOrder,
		permPos:      s.permPos,
		permCovered:  t.permCovered,
		elemSets:     s.elemSets,
		setMasks:     s.setMasks,

		dualPhi:    s.dualPhi,
		dualLambda: s.dualLambda,

		gains: t.gains,

		frontierDepth: -1,
		pubG:          g,
		taskLB:        t.lb,
	}
	if s.banned != nil {
		// Bans tighten against the task's own incumbent improvements;
		// a task-local copy keeps that evolution schedule-independent.
		c.banned = append([]bool(nil), s.banned...)
	}
	if s.elemOrder != nil {
		c.disjointUsed = newBitset(len(s.in.Sets))
	}
	c.search(t.covered, t.coveredW, t.dualUncov, t.chosen)
	return c
}

// subtreeOut is one task's deterministic report.
type subtreeOut struct {
	chosen   []int
	length   int
	improved bool
	capped   bool
	nodes    int
	domPrune int
}

// runSubtrees dispatches the frontier over a workers-bounded pool and
// folds the reports back into s by (length, task index).
func (s *exactSearch) runSubtrees(workers, maxNodes int) {
	tasks := s.tasks
	s.tasks = nil
	s.subtreeTasks = len(tasks)
	// Static per-task node budgets: an even share of the remaining
	// global budget, raised to a small floor so no task is dispatched
	// with a useless sliver — but cumulatively clamped so the floor
	// cannot multiply the caller's MaxNodes by the task count. Late
	// tasks past the clamp get zero budget and report capped without
	// running, exactly like the subtrees a serial search with the same
	// budget would never reach. All quantities are static, so budgets
	// are identical for any worker count.
	remaining := maxNodes - s.nodes
	if remaining < 0 {
		remaining = 0
	}
	share := remaining / len(tasks)
	if share < minTaskBudget {
		share = minTaskBudget
	}
	budgets := make([]int, len(tasks))
	for i := range budgets {
		b := share
		if left := remaining - i*share; left < b {
			b = left
		}
		if b < 0 {
			b = 0
		}
		budgets[i] = b
	}
	var g atomicMin
	g.v.Store(int64(s.bestLen))
	seedLen := s.bestLen

	eng := engine.New(engine.Options{Workers: workers})
	outs, ts, _ := engine.MapTree(s.ctx, eng, len(tasks), func(_ context.Context, i, _ int) (subtreeOut, error) {
		t := tasks[i]
		if budgets[i] == 0 {
			// Out of global node budget before this task's slot: it is
			// deterministically unexplored, exactly like a subtree a
			// serial search with the same MaxNodes never reached.
			return subtreeOut{length: seedLen, capped: true}, nil
		}
		if s.ctx.Err() != nil {
			// Canceled before this task started: the serial incumbent
			// (or a sibling's report) stands.
			return subtreeOut{}, nil
		}
		if int64(t.lb) > g.load() {
			// Whole-subtree abort at dispatch: nothing in here can beat
			// an already-published cover, even on ties.
			return subtreeOut{}, nil
		}
		c := s.taskSearch(t, budgets[i], &g)
		o := subtreeOut{
			length:   c.bestLen,
			nodes:    c.nodes,
			domPrune: c.domPrunes,
		}
		if !c.aborted {
			o.capped = c.capped
			if c.bestLen < seedLen {
				// Mid-task aborts void the report: an aborted task's
				// partial incumbent is timing-dependent, and the abort
				// certificate already proves it loses the merge.
				o.improved, o.chosen = true, c.best
			}
		}
		return o, nil
	})

	s.steals = ts.Steals
	for _, o := range outs {
		s.nodes += o.nodes
		s.domPrunes += o.domPrune
		if o.improved && o.length < s.bestLen {
			s.bestLen, s.best = o.length, o.chosen
		}
	}
	// Exactness: a capped subtree only voids the proof if it could
	// still hold something better than the merged cover. (Whether a
	// hopeless subtree capped or aborted first is schedule noise; this
	// test is schedule-independent because tasks that matter — those
	// with lb ≤ merged length — can never abort.)
	for i, o := range outs {
		if o.capped && tasks[i].lb < s.bestLen {
			s.capped = true
		}
	}
	if s.ctx.Err() != nil {
		s.capped = true
	}
}

// resultOn assembles the Result, re-expanding the chosen sets on the
// original (pre-merge, pre-presolve) instance.
func (s *exactSearch) resultOn(orig Instance) Result {
	res := Result{
		Chosen:          s.best,
		Feasible:        true,
		Exact:           !s.capped,
		Nodes:           s.nodes,
		SubtreeTasks:    s.subtreeTasks,
		Steals:          s.steals,
		DominancePrunes: s.domPrunes,
		Pivots:          s.pivots,
		WarmStarts:      s.warmStarts,
	}
	for _, b := range s.banned {
		if b {
			res.SetsBanned++
		}
	}
	final := newBitset(orig.NumElements)
	for _, si := range s.best {
		for _, e := range orig.Sets[si] {
			if !final.get(e) {
				final.set(e)
				res.Covered += orig.weight(e)
			}
		}
	}
	return res
}
