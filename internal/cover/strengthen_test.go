package cover

import (
	"context"
	"math/rand"
	"testing"
)

// randomWeighted draws a random weighted partial-cover instance small
// enough for the root LP but with real overlap structure.
func randomWeighted(seed int64) (Instance, float64) {
	rng := rand.New(rand.NewSource(seed))
	ne := 20 + rng.Intn(40)
	ns := 8 + rng.Intn(14)
	in := Instance{NumElements: ne, Weights: make([]float64, ne), Sets: make([][]int, ns)}
	for e := range in.Weights {
		in.Weights[e] = 1 + rng.Float64()*9
	}
	for si := range in.Sets {
		k := 1 + rng.Intn(6)
		for j := 0; j < k; j++ {
			in.Sets[si] = append(in.Sets[si], rng.Intn(ne))
		}
	}
	frac := 0.5 + rng.Float64()*0.5
	return in, frac * in.TotalWeight()
}

// TestRootLPNeverExcisesOptimum forces the lazy root LP on from the
// first node and checks, over a random instance family, that the LP
// bound and the reduced-cost set bans never change the proven-optimal
// cover size relative to the LP-free search.
func TestRootLPNeverExcisesOptimum(t *testing.T) {
	oldTrigger := coverLPTrigger
	defer func() { coverLPTrigger = oldTrigger }()
	banned := 0
	for seed := int64(0); seed < 150; seed++ {
		in, target := randomWeighted(seed)

		coverLPTrigger = 1 << 30 // LP off
		plain := Exact(context.Background(), in, target, ExactOptions{})

		coverLPTrigger = 1 // LP on from the first node
		lp := Exact(context.Background(), in, target, ExactOptions{})

		if plain.Feasible != lp.Feasible {
			t.Fatalf("seed %d: feasibility differs: %v vs %v", seed, plain.Feasible, lp.Feasible)
		}
		if !plain.Feasible {
			continue
		}
		if !plain.Exact || !lp.Exact {
			t.Fatalf("seed %d: searches did not complete: %v vs %v", seed, plain.Exact, lp.Exact)
		}
		if len(plain.Chosen) != len(lp.Chosen) {
			t.Fatalf("seed %d: LP strengthening changed the optimum: %d vs %d sets",
				seed, len(plain.Chosen), len(lp.Chosen))
		}
		if lp.Covered < target-1e-9 {
			t.Fatalf("seed %d: strengthened cover misses the target: %g < %g", seed, lp.Covered, target)
		}
		banned += lp.SetsBanned
	}
	if banned == 0 {
		t.Fatal("reduced-cost set bans never engaged across the whole family")
	}
}
