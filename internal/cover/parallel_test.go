package cover

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// forceParallelPhases drops the serial burn-in budget to one node so
// every search reaches the frontier expansion and the subtree pool,
// restoring the production trigger when the test ends.
func forceParallelPhases(t *testing.T) {
	t.Helper()
	old := coverLPTrigger
	coverLPTrigger = 1
	t.Cleanup(func() { coverLPTrigger = old })
}

// sameResult compares the deterministic fields of two Results. Nodes,
// Steals and DominancePrunes are deliberately NOT compared: with
// Workers > 1 they depend on how early the shared incumbent aborted
// hopeless subtrees, which is schedule noise by design.
func sameResult(t *testing.T, tag string, a, b Result) {
	t.Helper()
	if a.Feasible != b.Feasible || a.Exact != b.Exact {
		t.Fatalf("%s: flags differ: feasible %v vs %v, exact %v vs %v",
			tag, a.Feasible, b.Feasible, a.Exact, b.Exact)
	}
	if a.Covered != b.Covered {
		t.Fatalf("%s: covered weight differs: %v vs %v", tag, a.Covered, b.Covered)
	}
	if len(a.Chosen) != len(b.Chosen) {
		t.Fatalf("%s: cover size differs: %d vs %d", tag, len(a.Chosen), len(b.Chosen))
	}
	for i := range a.Chosen {
		if a.Chosen[i] != b.Chosen[i] {
			t.Fatalf("%s: chosen sets differ at %d: %v vs %v", tag, i, a.Chosen, b.Chosen)
		}
	}
}

// TestParallelByteIdentity is the determinism oracle of the parallel
// branch-and-bound: for every instance of the random family, the
// Workers=1 serial search and the Workers∈{2,8} parallel searches must
// return byte-identical covers — same sets in the same order, same
// flags — both with an ample node budget and with a small budget that
// forces the capped path through the static per-task budget split.
func TestParallelByteIdentity(t *testing.T) {
	forceParallelPhases(t)
	tasks, capped := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		in, target := randomWeighted(seed)
		for _, maxNodes := range []int{0, 900} {
			serial := Exact(context.Background(), in, target, ExactOptions{MaxNodes: maxNodes, Workers: 1})
			for _, w := range []int{2, 8} {
				par := Exact(context.Background(), in, target, ExactOptions{MaxNodes: maxNodes, Workers: w})
				sameResult(t, tagOf(seed, maxNodes, w), serial, par)
				tasks += par.SubtreeTasks
				if !par.Exact && par.Feasible {
					capped++
				}
			}
		}
	}
	// The oracle is vacuous unless the family actually reaches the
	// parallel dispatch and the budget-capped path.
	if tasks == 0 {
		t.Fatal("no instance dispatched subtree tasks — the parallel phase never ran")
	}
	if capped == 0 {
		t.Fatal("no instance capped — the static per-task budget split never engaged")
	}
}

func tagOf(seed int64, maxNodes, workers int) string {
	return "seed=" + itoa(int(seed)) + " maxNodes=" + itoa(maxNodes) + " workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestReductionsPreserveOptimum is the soundness property suite for
// the set-cover reductions: on 160 seeded random instances, the fully
// strengthened search (presolve kernelization, dominance and symmetry
// breaking, Lagrangian duals) must prove the same optimal cover size
// as the plain tree with every reduction disabled.
func TestReductionsPreserveOptimum(t *testing.T) {
	for seed := int64(0); seed < 160; seed++ {
		in, target := randomWeighted(seed)
		plain := Exact(context.Background(), in, target, ExactOptions{
			NoPresolve: true, NoDualBound: true, NoDominance: true,
		})
		full := Exact(context.Background(), in, target, ExactOptions{})
		if plain.Feasible != full.Feasible {
			t.Fatalf("seed %d: feasibility differs: %v vs %v", seed, plain.Feasible, full.Feasible)
		}
		if !plain.Feasible {
			continue
		}
		if !plain.Exact || !full.Exact {
			t.Fatalf("seed %d: searches did not complete: %v vs %v", seed, plain.Exact, full.Exact)
		}
		if len(plain.Chosen) != len(full.Chosen) {
			t.Fatalf("seed %d: reductions changed the optimum: %d vs %d sets",
				seed, len(plain.Chosen), len(full.Chosen))
		}
		if full.Covered < target-1e-9 {
			t.Fatalf("seed %d: strengthened cover misses the target: %g < %g", seed, full.Covered, target)
		}
	}
}

// TestCancellationKeepsIncumbent cancels a parallel search mid-flight
// and checks the contract: the best incumbent found so far comes back
// feasible with Exact=false, and the subtree worker pool does not leak
// goroutines.
func TestCancellationKeepsIncumbent(t *testing.T) {
	forceParallelPhases(t)
	before := runtime.NumGoroutine()

	in, target := randomWeighted(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the parallel phase dispatches
	res := Exact(ctx, in, target, ExactOptions{Workers: 8})
	if !res.Feasible {
		t.Fatal("canceled search lost the greedy warm-start incumbent")
	}
	if res.Exact {
		t.Fatal("canceled search claimed a proof")
	}
	if res.Covered < target-1e-9 {
		t.Fatalf("canceled search returned an infeasible cover: %g < %g", res.Covered, target)
	}

	// Mid-search deadline: large instance, tight clock.
	big, bigTarget := randomWeighted(11)
	dctx, dcancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer dcancel()
	res = Exact(dctx, big, bigTarget, ExactOptions{Workers: 8})
	if !res.Feasible {
		t.Fatal("deadline search lost its incumbent")
	}
	if res.Covered < bigTarget-1e-9 {
		t.Fatalf("deadline search returned an infeasible cover: %g < %g", res.Covered, bigTarget)
	}

	// The MapTree pool joins before runSubtrees returns, so no workers
	// may outlive the calls above (allow the runtime a moment to retire
	// exiting goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
