package cover

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// churnInstance builds a covering instance with no universal set: every
// set covers a handful of elements, every element lands in at least one
// set, so a high-coverage target needs a multi-set cover and the search
// tree is non-trivial.
func churnInstance(rng *rand.Rand, nElem, nSets, setSize int) Instance {
	in := Instance{NumElements: nElem}
	in.Weights = make([]float64, nElem)
	for e := 0; e < nElem; e++ {
		in.Weights[e] = 1 + rng.Float64()*9
	}
	in.Sets = make([][]int, nSets)
	for i := range in.Sets {
		seen := map[int]bool{}
		for len(seen) < setSize {
			seen[rng.Intn(nElem)] = true
		}
		//placevet:ignore maporder -- collected set is sorted immediately below
		for e := range seen {
			in.Sets[i] = append(in.Sets[i], e)
		}
		sortInts(in.Sets[i])
	}
	for e := 0; e < nElem; e++ {
		si := rng.Intn(nSets)
		if !containsInt(in.Sets[si], e) {
			in.Sets[si] = append(in.Sets[si], e)
			sortInts(in.Sets[si])
		}
	}
	return in
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func containsInt(a []int, v int) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// mutateWeights returns a copy of in with every element weight rescaled
// by a seeded per-element factor in [0.5, 2) — the cover-level shape of
// a traffic churn rescale step (the set structure is untouched).
func mutateWeights(in Instance, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	out := Instance{NumElements: in.NumElements, Sets: in.Sets}
	out.Weights = make([]float64, in.NumElements)
	for e := 0; e < in.NumElements; e++ {
		out.Weights[e] = in.weight(e) * (0.5 + 1.5*rng.Float64())
	}
	return out
}

// answerOf strips the effort counters: the warm==cold contract is on
// the answer (cover, coverage, flags), while Nodes/Pivots/etc. reflect
// how much work the proof needed, which warm starts exist to shrink.
func answerOf(r Result) Result {
	r.Nodes, r.Pivots, r.WarmStarts = 0, 0, 0
	r.SetsBanned, r.SubtreeTasks, r.Steals, r.DominancePrunes = 0, 0, 0, 0
	return r
}

// TestWarmResolveMatchesCold is the cover-level resolve==cold lock: on
// rescaled mutations of random instances, a warm solve carrying the
// previous cover and root LP basis must return byte-identical answers
// to a cold solve of the mutated instance.
func TestWarmResolveMatchesCold(t *testing.T) {
	old := coverLPTrigger
	coverLPTrigger = 1 // force the LP decision point so bases exist
	t.Cleanup(func() { coverLPTrigger = old })

	ctx := context.Background()
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := churnInstance(rng, 30, 18, 4)
		target := base.TotalWeight() * 0.92

		cap0 := &Capture{}
		prev := Exact(ctx, base, target, ExactOptions{Capture: cap0})
		if !prev.Feasible || !prev.Exact {
			t.Fatalf("seed %d: base solve not exact (feasible=%v)", seed, prev.Feasible)
		}

		mut := mutateWeights(base, seed+100)
		mutTarget := mut.TotalWeight() * 0.92
		cold := Exact(ctx, mut, mutTarget, ExactOptions{})
		warm := Exact(ctx, mut, mutTarget, ExactOptions{
			Warm: &Warm{Hint: prev.Chosen, Basis: cap0.Basis},
		})
		if !reflect.DeepEqual(answerOf(cold), answerOf(warm)) {
			t.Errorf("seed %d: warm answer diverged\ncold: %+v\nwarm: %+v", seed, cold, warm)
		}
	}
}

// TestWarmStaleArtifactsIgnored feeds garbage warm artifacts: indices
// out of range and an infeasible hint. The solve must survive them and
// still match cold byte-for-byte.
func TestWarmStaleArtifactsIgnored(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	in := churnInstance(rng, 24, 14, 4)
	target := in.TotalWeight() * 0.9
	cold := Exact(ctx, in, target, ExactOptions{})
	//placevet:ignore maporder -- test table; cases are independent
	for name, hint := range map[string][]int{
		"out-of-range": {0, len(in.Sets) + 3},
		"negative":     {-1, 0},
		"infeasible":   {0},
		"empty":        {},
	} {
		warm := Exact(ctx, in, target, ExactOptions{Warm: &Warm{Hint: hint}})
		if !reflect.DeepEqual(answerOf(cold), answerOf(warm)) {
			t.Errorf("%s hint changed the answer: cold %v warm %v", name, cold.Chosen, warm.Chosen)
		}
		if warm.WarmStarts != 0 {
			t.Errorf("%s hint counted as a warm start", name)
		}
	}
}

// TestWarmAlternateOptimumCanonical: a warm hint that is a DIFFERENT
// optimal cover (found by permuting set order) must not leak into the
// answer — the reconstruction phase re-derives the canonical cover from
// the instance alone.
func TestWarmAlternateOptimumCanonical(t *testing.T) {
	ctx := context.Background()
	// Two disjoint optimal covers of the same 4 elements: {0,1} and
	// {2,3}. Greedy (largest gain, lowest index) picks sets 0 and 1, so
	// hinting {2,3} offers an equally-long alternate optimum.
	in := Instance{
		NumElements: 4,
		Sets:        [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}},
	}
	target := in.TotalWeight()
	cold := Exact(ctx, in, target, ExactOptions{})
	warm := Exact(ctx, in, target, ExactOptions{Warm: &Warm{Hint: []int{2, 3}}})
	if !reflect.DeepEqual(answerOf(cold), answerOf(warm)) {
		t.Fatalf("alternate-optimum hint leaked into the answer: cold %v warm %v", cold.Chosen, warm.Chosen)
	}
}

// TestWarmCaptureBasis: the capture sink receives the root LP basis
// when the LP runs, and a subsequent warm solve actually applies it
// (WarmStarts > 0 on at least one seed).
func TestWarmCaptureBasis(t *testing.T) {
	old := coverLPTrigger
	coverLPTrigger = 1
	t.Cleanup(func() { coverLPTrigger = old })

	ctx := context.Background()
	warmApplied := 0
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := churnInstance(rng, 30, 18, 4)
		target := in.TotalWeight() * 0.92
		cap0 := &Capture{}
		prev := Exact(ctx, in, target, ExactOptions{Capture: cap0})
		if cap0.Basis == nil {
			continue // burn-in closed before the LP decision point
		}
		mut := mutateWeights(in, seed+50)
		warm := Exact(ctx, mut, mut.TotalWeight()*0.92, ExactOptions{
			Warm: &Warm{Hint: prev.Chosen, Basis: cap0.Basis},
		})
		warmApplied += warm.WarmStarts
	}
	if warmApplied == 0 {
		t.Fatal("no seed applied any warm artifact — the warm path never engaged")
	}
}
