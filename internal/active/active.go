// Package active implements §6 of the paper: active monitoring with
// beacons and probes.
//
// An active probing system has candidate beacon locations V_B ⊆ V. Each
// beacon sends probe packets along IP routes; a probe covers the links
// of its path, and the probe between ϕ_u and ϕ_v is the same whichever
// endpoint sends it. Following the two-phase approach of Nguyen &
// Thiran [15] that the paper improves: first compute an optimal set of
// probes Φ covering every link, then choose which candidate nodes
// actually become beacons so every probe of Φ has a beacon endpoint.
//
// The package provides the probe-set computation and the paper's three
// placement algorithms: the arbitrary-order greedy of [15]
// (PlaceThiran), the improved most-probes-first greedy the paper
// proposes (PlaceGreedy), and the exact 0–1 ILP of §6.1 (PlaceILP).
package active

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mip"
)

// Probe is a measurement path. U and V are its extremities; at least
// one of them must be a beacon for the probe to be sent (the probe
// U→V equals the probe V→U, §6.1).
type Probe struct {
	U, V graph.NodeID
	Path graph.Path
}

// ProbeSet is the probe collection Φ together with the graph it covers.
type ProbeSet struct {
	G      *graph.Graph
	Probes []Probe
	// Candidates is V_B, the nodes allowed to host beacons.
	Candidates []graph.NodeID
}

// CoversAllEdges reports whether every edge of the graph lies on at
// least one probe path.
func (ps ProbeSet) CoversAllEdges() bool {
	covered := make([]bool, ps.G.NumEdges())
	for _, p := range ps.Probes {
		for _, e := range p.Path.Edges {
			covered[e] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// ComputeProbes builds a small probe set covering every link, the
// first phase of [15] (the cited polynomial algorithm lives in that
// paper; we reconstruct it as a greedy link cover, which preserves the
// input the placement phase consumes — see DESIGN.md §4).
//
// Candidate probes are, for every candidate beacon u and every link
// e = (a,b): the shortest path u⇝a extended across e (probes follow IP
// routing to the near end of the link, then cross it). The greedy then
// keeps probes covering the most uncovered links. Every returned probe
// has an endpoint in V_B, so the subsequent placement is always
// feasible. An error is reported when some link is unreachable from
// every candidate.
func ComputeProbes(g *graph.Graph, candidates []graph.NodeID) (ProbeSet, error) {
	return ComputeProbesTrees(g, candidates, g.ShortestPaths)
}

// ComputeProbesTrees is ComputeProbes with the shortest-path trees
// supplied by treeOf instead of computed inline. Sweep drivers that
// re-probe overlapping candidate sets on the same topology (the Figure
// 9–11 |V_B| sweeps re-draw candidates from one router pool per seed)
// pass a memoizing provider so each router's tree is computed once per
// seed instead of once per sweep point. The trees are only read and
// their paths cloned before use, so a provider may serve the same tree
// to concurrent callers.
func ComputeProbesTrees(g *graph.Graph, candidates []graph.NodeID, treeOf func(graph.NodeID) map[graph.NodeID]graph.Path) (ProbeSet, error) {
	if len(candidates) == 0 {
		return ProbeSet{}, fmt.Errorf("active: no candidate beacons")
	}
	seen := make(map[graph.NodeID]bool, len(candidates))
	for _, c := range candidates {
		if seen[c] {
			return ProbeSet{}, fmt.Errorf("active: duplicate candidate %d", c)
		}
		seen[c] = true
	}

	// Candidate probes between beacon pairs (both extremities in V_B):
	// the probes of [15] run between measurement points, and they are
	// what gives the placement phase freedom (either extremity can be
	// the sender). Extend-across probes to a link's far end are added
	// only as a fallback for links no pair path crosses.
	var pairProbes []Probe
	trees := make(map[graph.NodeID]map[graph.NodeID]graph.Path, len(candidates))
	for _, u := range candidates {
		trees[u] = treeOf(u)
	}
	for i, u := range candidates {
		for _, v := range candidates[i+1:] {
			if p, ok := trees[u][v]; ok && p.Len() > 0 {
				pairProbes = append(pairProbes, Probe{U: u, V: v, Path: p.Clone()})
			}
		}
	}
	pairProbes = dedupeProbes(pairProbes)
	// Extend-across fallback probes are generated lazily: on the
	// paper's instances the beacon-pair paths almost always cover every
	// link, so the candidates×edges fallback sweep (and its path
	// clones) would be pure waste in the common case.
	fallbacks := func() []Probe {
		var fall []Probe
		for _, u := range candidates {
			for _, e := range g.Edges() {
				if p, ok := extendAcross(g, trees[u], u, e); ok {
					fall = append(fall, p)
				}
			}
		}
		return dedupeProbes(fall)
	}

	// Greedy link cover in two passes: beacon-pair probes first, then
	// fallback probes for whatever remains uncoverable by pair paths.
	// Gains are maintained incrementally (edge → probes index,
	// decremented as edges become covered) instead of rescanning every
	// probe path each round — the historical scan dominated the Figure
	// 10/11 and §7 large-POP wall time.
	covered := make([]bool, g.NumEdges())
	remaining := g.NumEdges()
	var chosen []Probe
	for pass := 0; pass < 2 && remaining > 0; pass++ {
		cand := pairProbes
		if pass == 1 {
			cand = fallbacks()
		}
		onEdge := make([][]int32, g.NumEdges())
		gain := make([]int, len(cand))
		for i, p := range cand {
			for _, e := range p.Path.Edges {
				if !covered[e] {
					gain[i]++
					onEdge[e] = append(onEdge[e], int32(i))
				}
			}
		}
		for remaining > 0 {
			best, bestGain := -1, 0
			for i, gn := range gain {
				if gn > bestGain {
					best, bestGain = i, gn
				}
			}
			if best < 0 {
				break // this pass can add nothing more
			}
			for _, e := range cand[best].Path.Edges {
				if !covered[e] {
					covered[e] = true
					remaining--
					for _, pi := range onEdge[e] {
						gain[pi]--
					}
				}
			}
			chosen = append(chosen, cand[best])
		}
	}
	if remaining > 0 {
		return ProbeSet{}, fmt.Errorf("active: %d links unreachable from any candidate beacon", remaining)
	}
	return ProbeSet{G: g, Probes: chosen, Candidates: append([]graph.NodeID(nil), candidates...)}, nil
}

// extendAcross returns the probe from u that crosses edge e at its far
// end: shortest path u⇝(nearest endpoint of e) plus e itself. It fails
// when e's endpoints are unreachable or the extension would revisit a
// node (non-simple path).
func extendAcross(g *graph.Graph, paths map[graph.NodeID]graph.Path, u graph.NodeID, e graph.Edge) (Probe, bool) {
	pa, oka := paths[e.U]
	pb, okb := paths[e.V]
	if !oka && !okb {
		return Probe{}, false
	}
	// If the shortest path to the far endpoint already uses e, it is a
	// probe crossing e all by itself.
	if okb && pb.Uses(e.ID) {
		return Probe{U: u, V: e.V, Path: pb.Clone()}, true
	}
	if oka && pa.Uses(e.ID) {
		return Probe{U: u, V: e.U, Path: pa.Clone()}, true
	}
	// Otherwise extend the shorter reach across e.
	try := func(base graph.Path, from, to graph.NodeID) (Probe, bool) {
		for _, n := range base.Nodes {
			if n == to {
				return Probe{}, false // would revisit `to`
			}
		}
		p := base.Clone()
		p.Nodes = append(p.Nodes, to)
		p.Edges = append(p.Edges, e.ID)
		p.Cost += e.Weight
		return Probe{U: u, V: to, Path: p}, true
	}
	if oka && okb {
		if pa.Cost <= pb.Cost {
			if p, ok := try(pa, e.U, e.V); ok {
				return p, true
			}
			return try(pb, e.V, e.U)
		}
		if p, ok := try(pb, e.V, e.U); ok {
			return p, true
		}
		return try(pa, e.U, e.V)
	}
	if oka {
		return try(pa, e.U, e.V)
	}
	return try(pb, e.V, e.U)
}

func dedupeProbes(probes []Probe) []Probe {
	seen := make(map[string]bool, len(probes))
	var out []Probe
	var buf []byte
	for _, p := range probes {
		buf = buf[:0]
		for _, e := range p.Path.Edges {
			buf = append(buf, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			out = append(out, p)
		}
	}
	return out
}

// Placement is the outcome of a beacon-placement algorithm.
type Placement struct {
	// Beacons lists the selected beacon nodes, sorted.
	Beacons []graph.NodeID
	// Sender assigns every probe (by index into the ProbeSet) the
	// beacon that emits it.
	Sender []graph.NodeID
	// Exact is true when the placement is provably optimal; a canceled
	// exact solve reports its incumbent with Exact = false.
	Exact  bool
	Method string
	// Stats carries the solver effort counters (zero for the greedy
	// placements).
	Stats core.SolveStats
}

// Devices returns the number of beacons (the y-axis of Figures 9–11).
func (p Placement) Devices() int { return len(p.Beacons) }

// Validate checks that every probe has its sender among the beacons and
// at one of its extremities, and that beacons are candidates.
func (p Placement) Validate(ps ProbeSet) error {
	isBeacon := make(map[graph.NodeID]bool, len(p.Beacons))
	isCand := make(map[graph.NodeID]bool, len(ps.Candidates))
	for _, c := range ps.Candidates {
		isCand[c] = true
	}
	for _, b := range p.Beacons {
		if !isCand[b] {
			return fmt.Errorf("active: beacon %d is not a candidate", b)
		}
		isBeacon[b] = true
	}
	if len(p.Sender) != len(ps.Probes) {
		return fmt.Errorf("active: %d senders for %d probes", len(p.Sender), len(ps.Probes))
	}
	for i, pr := range ps.Probes {
		s := p.Sender[i]
		if !isBeacon[s] {
			return fmt.Errorf("active: probe %d sent by non-beacon %d", i, s)
		}
		if s != pr.U && s != pr.V {
			return fmt.Errorf("active: probe %d sender %d is not an extremity", i, s)
		}
	}
	return nil
}

// sendable returns, per candidate, the probe indices it could send.
func sendable(ps ProbeSet) map[graph.NodeID][]int {
	isCand := make(map[graph.NodeID]bool, len(ps.Candidates))
	for _, c := range ps.Candidates {
		isCand[c] = true
	}
	out := make(map[graph.NodeID][]int, len(ps.Candidates))
	for i, p := range ps.Probes {
		if isCand[p.U] {
			out[p.U] = append(out[p.U], i)
		}
		if p.V != p.U && isCand[p.V] {
			out[p.V] = append(out[p.V], i)
		}
	}
	return out
}

func finishPlacement(ps ProbeSet, beacons map[graph.NodeID]bool, exact bool, method string) (Placement, error) {
	pl := Placement{Exact: exact, Method: method}
	for b := range beacons {
		pl.Beacons = append(pl.Beacons, b)
	}
	sort.Slice(pl.Beacons, func(i, j int) bool { return pl.Beacons[i] < pl.Beacons[j] })
	pl.Sender = make([]graph.NodeID, len(ps.Probes))
	for i, p := range ps.Probes {
		switch {
		case beacons[p.U]:
			pl.Sender[i] = p.U
		case beacons[p.V]:
			pl.Sender[i] = p.V
		default:
			return Placement{}, fmt.Errorf("active: %s: probe %d has no beacon endpoint", method, i)
		}
	}
	return pl, nil
}

// PlaceThiran is the placement heuristic of [15] as the paper describes
// it: "they first select a beacon, remove the set of probes that can be
// sent with this beacon, and so on" — candidates are taken in arbitrary
// (index) order, without looking at how many probes each can send.
func PlaceThiran(ps ProbeSet) (Placement, error) {
	can := sendable(ps)
	unsent := len(ps.Probes)
	covered := make([]bool, len(ps.Probes))
	beacons := make(map[graph.NodeID]bool)
	order := append([]graph.NodeID(nil), ps.Candidates...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, c := range order {
		if unsent == 0 {
			break
		}
		gain := 0
		for _, i := range can[c] {
			if !covered[i] {
				gain++
			}
		}
		if gain == 0 {
			continue
		}
		beacons[c] = true
		for _, i := range can[c] {
			if !covered[i] {
				covered[i] = true
				unsent--
			}
		}
	}
	if unsent > 0 {
		return Placement{}, fmt.Errorf("active: thiran: %d probes unassignable", unsent)
	}
	return finishPlacement(ps, beacons, false, "thiran")
}

// PlaceGreedy is the paper's improved greedy: always select next the
// candidate that can send the greatest number of still-unsent probes.
func PlaceGreedy(ps ProbeSet) (Placement, error) {
	can := sendable(ps)
	unsent := len(ps.Probes)
	covered := make([]bool, len(ps.Probes))
	beacons := make(map[graph.NodeID]bool)
	for unsent > 0 {
		var best graph.NodeID = -1
		bestGain := 0
		for _, c := range ps.Candidates {
			if beacons[c] {
				continue
			}
			gain := 0
			for _, i := range can[c] {
				if !covered[i] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && (best < 0 || c < best)) {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			return Placement{}, fmt.Errorf("active: greedy: %d probes unassignable", unsent)
		}
		beacons[best] = true
		for _, i := range can[best] {
			if !covered[i] {
				covered[i] = true
				unsent--
			}
		}
	}
	return finishPlacement(ps, beacons, false, "greedy")
}

// PlaceILP solves the paper's 0–1 integer program (§6.1) exactly:
//
//	min Σ y_i   s.t.  y_i = 0 ∀i ∉ V_B,  y_{ϕu} + y_{ϕv} ≥ 1 ∀ϕ ∈ Φ
//
// It is a vertex cover restricted to the candidate set, solved with the
// branch-and-bound of internal/mip (CPLEX in the paper). Cancelling ctx
// mid-solve returns the greedy-warm-started incumbent with Exact =
// false.
func PlaceILP(ctx context.Context, ps ProbeSet) (Placement, error) {
	return PlaceILPOpts(ctx, ps, ILPOptions{})
}

// ILPOptions tunes PlaceILPOpts.
type ILPOptions struct {
	// MaxNodes caps branch-and-bound nodes (0 = solver default).
	MaxNodes int
	// Gap is the absolute optimality gap for pruning (0 = default).
	Gap float64
	// RelGap is the relative optimality gap (0 = off); see mip.Options.
	RelGap float64
}

// PlaceILPOpts is PlaceILP with explicit branch-and-bound knobs.
func PlaceILPOpts(ctx context.Context, ps ProbeSet, opts ILPOptions) (Placement, error) {
	p := mip.NewProblem(lp.Minimize)
	ys := make(map[graph.NodeID]lp.Var, ps.G.NumNodes())
	isCand := make(map[graph.NodeID]bool, len(ps.Candidates))
	for _, c := range ps.Candidates {
		isCand[c] = true
	}
	// Only variables that appear in constraints are materialized;
	// non-candidate extremities are the fixed-to-zero y_i of the paper.
	varOf := func(n graph.NodeID) (lp.Var, bool) {
		if !isCand[n] {
			return 0, false
		}
		v, ok := ys[n]
		if !ok {
			v = p.AddBinaryVariable(fmt.Sprintf("y%d", n), 1)
			ys[n] = v
		}
		return v, true
	}
	for i, pr := range ps.Probes {
		var terms []lp.Term
		if v, ok := varOf(pr.U); ok {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		if pr.V != pr.U {
			if v, ok := varOf(pr.V); ok {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
		if len(terms) == 0 {
			return Placement{}, fmt.Errorf("active: ilp: probe %d has no candidate extremity", i)
		}
		p.AddConstraint(lp.GE, 1, terms...)
	}
	if len(ys) == 0 {
		// No probes at all: nothing to place.
		return finishPlacement(ps, map[graph.NodeID]bool{}, true, "ilp")
	}
	// Warm start from the greedy placement.
	mo := mip.Options{MaxNodes: opts.MaxNodes, Gap: opts.Gap, RelGap: opts.RelGap}
	if gr, err := PlaceGreedy(ps); err == nil {
		inc := make([]float64, p.NumVariables())
		for _, b := range gr.Beacons {
			if v, ok := ys[b]; ok {
				inc[v] = 1
			}
		}
		mo.Incumbent = inc
	}
	p.SetOptions(mo)
	sol, err := p.SolveContext(ctx)
	if err != nil {
		return Placement{}, err
	}
	exact := true
	switch sol.Status {
	case lp.Optimal:
	case lp.Canceled, lp.IterLimit:
		if sol.X == nil {
			return Placement{}, fmt.Errorf("active: ilp: solver status %v and no incumbent", sol.Status)
		}
		exact = false
	default:
		return Placement{}, fmt.Errorf("active: ilp: solver status %v", sol.Status)
	}
	beacons := make(map[graph.NodeID]bool)
	for n, v := range ys {
		if sol.Value(v) > 0.5 {
			beacons[n] = true
		}
	}
	pl, err := finishPlacement(ps, beacons, exact, "ilp")
	if err != nil {
		return Placement{}, err
	}
	pl.Stats = core.SolveStats{Nodes: sol.Nodes, Pivots: sol.Pivots,
		Refactorizations: sol.Refactorizations, DevexResets: sol.DevexResets, WarmStarts: sol.WarmStarts,
		CutsAdded: sol.CutsAdded, VarsFixed: sol.VarsFixed, PresolveRemoved: sol.PresolveRemoved,
		StrongBranches: sol.StrongBranches, Bound: sol.Bound}
	return pl, nil
}

// ProbeLoad returns, per beacon, how many probes it sends under the
// placement — the message-overhead view the paper's objective of
// "optimizing both the number of devices and the number of generated
// messages" cares about.
func ProbeLoad(pl Placement) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(pl.Beacons))
	for _, b := range pl.Beacons {
		out[b] = 0
	}
	for _, s := range pl.Sender {
		out[s]++
	}
	return out
}

// BalanceSenders reassigns probes among the placement's beacons to
// minimize the maximum per-beacon probe count (the total message count
// is fixed at |Φ|, so balancing the sending load is the remaining §6
// overhead lever). Probes with both extremities on beacons are the
// degrees of freedom; the assignment is an exchange argument: repeatedly
// move a flexible probe from the most loaded beacon to its other
// extremity while that strictly lowers the maximum.
func BalanceSenders(ps ProbeSet, pl Placement) (Placement, error) {
	if err := pl.Validate(ps); err != nil {
		return Placement{}, err
	}
	out := pl
	out.Sender = append([]graph.NodeID(nil), pl.Sender...)
	isBeacon := make(map[graph.NodeID]bool, len(pl.Beacons))
	for _, b := range pl.Beacons {
		isBeacon[b] = true
	}
	load := ProbeLoad(out)
	for {
		moved := false
		// Find the currently most loaded beacon.
		var top graph.NodeID = -1
		for b, l := range load {
			if top < 0 || l > load[top] || (l == load[top] && b < top) {
				top = b
			}
		}
		if top < 0 {
			break
		}
		for i, pr := range ps.Probes {
			if out.Sender[i] != top {
				continue
			}
			other := pr.U
			if other == top {
				other = pr.V
			}
			if other == top || !isBeacon[other] {
				continue
			}
			if load[other]+1 < load[top] {
				out.Sender[i] = other
				load[top]--
				load[other]++
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return out, nil
}

// MaxProbeLoad returns the largest per-beacon probe count.
func MaxProbeLoad(pl Placement) int {
	max := 0
	for _, l := range ProbeLoad(pl) {
		if l > max {
			max = l
		}
	}
	return max
}
