package active

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("n")
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 100)
	}
	return g
}

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestComputeProbesCoversAllEdges(t *testing.T) {
	g := pathGraph(5)
	ps, err := ComputeProbes(g, allNodes(g))
	if err != nil {
		t.Fatal(err)
	}
	if !ps.CoversAllEdges() {
		t.Fatal("probe set does not cover every link")
	}
	// A path graph is covered by the single end-to-end probe.
	if len(ps.Probes) != 1 {
		t.Fatalf("probes = %d, want 1 on a path graph", len(ps.Probes))
	}
	for _, p := range ps.Probes {
		if err := p.Path.Validate(g); err != nil {
			t.Fatal(err)
		}
		if p.Path.Src() != p.U || p.Path.Dst() != p.V {
			t.Fatal("probe endpoints inconsistent with its path")
		}
	}
}

func TestComputeProbesRestrictedCandidates(t *testing.T) {
	g := pathGraph(5)
	// Only the middle node may host beacons; probes still must cover
	// both sides.
	ps, err := ComputeProbes(g, []graph.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.CoversAllEdges() {
		t.Fatal("restricted candidates: links uncovered")
	}
	for i, p := range ps.Probes {
		if p.U != 2 && p.V != 2 {
			t.Fatalf("probe %d has no candidate extremity", i)
		}
	}
}

func TestComputeProbesErrors(t *testing.T) {
	g := pathGraph(3)
	if _, err := ComputeProbes(g, nil); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := ComputeProbes(g, []graph.NodeID{0, 0}); err == nil {
		t.Fatal("duplicate candidates accepted")
	}
	// Disconnected component: link unreachable from the candidate.
	g2 := pathGraph(3)
	a := g2.AddNode("x")
	b := g2.AddNode("y")
	g2.AddEdge(a, b, 100)
	if _, err := ComputeProbes(g2, []graph.NodeID{0}); err == nil {
		t.Fatal("unreachable link not reported")
	}
}

func TestPlacementAlgorithmsOnStar(t *testing.T) {
	// Star: center 0, leaves 1..5. All shortest paths go through the
	// center; a single beacon at the center sends every probe.
	g := graph.New()
	c := g.AddNode("center")
	for i := 0; i < 5; i++ {
		l := g.AddNode("leaf")
		g.AddEdge(c, l, 100)
	}
	ps, err := ComputeProbes(g, allNodes(g))
	if err != nil {
		t.Fatal(err)
	}
	ilp, err := PlaceILP(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := ilp.Validate(ps); err != nil {
		t.Fatal(err)
	}
	greedy, err := PlaceGreedy(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(ps); err != nil {
		t.Fatal(err)
	}
	thiran, err := PlaceThiran(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := thiran.Validate(ps); err != nil {
		t.Fatal(err)
	}
	if !ilp.Exact {
		t.Fatal("ILP not exact")
	}
	if ilp.Devices() > greedy.Devices() || greedy.Devices() > thiran.Devices() {
		t.Fatalf("ordering violated: ilp %d, greedy %d, thiran %d",
			ilp.Devices(), greedy.Devices(), thiran.Devices())
	}
}

func TestProbeLoad(t *testing.T) {
	g := pathGraph(4)
	ps, err := ComputeProbes(g, allNodes(g))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceGreedy(ps)
	if err != nil {
		t.Fatal(err)
	}
	load := ProbeLoad(pl)
	total := 0
	for _, n := range load {
		total += n
	}
	if total != len(ps.Probes) {
		t.Fatalf("probe loads sum to %d, want %d", total, len(ps.Probes))
	}
}

// bruteBeacons enumerates candidate subsets for the true optimum.
func bruteBeacons(ps ProbeSet) int {
	n := len(ps.Candidates)
	best := math.MaxInt32
	for mask := 0; mask < 1<<n; mask++ {
		cnt := 0
		sel := make(map[graph.NodeID]bool)
		for i, c := range ps.Candidates {
			if mask&(1<<i) != 0 {
				sel[c] = true
				cnt++
			}
		}
		if cnt >= best {
			continue
		}
		ok := true
		for _, p := range ps.Probes {
			if !sel[p.U] && !sel[p.V] {
				ok = false
				break
			}
		}
		if ok {
			best = cnt
		}
	}
	return best
}

// popProbeSet builds a probe set on a small generated POP with the
// first `nb` routers as candidates (endpoints excluded, as the paper
// places beacons on routers).
func popProbeSet(t testing.TB, seed int64, routers, nb int) ProbeSet {
	cfg := topology.Config{Routers: routers, InterRouterLinks: routers * 2, Endpoints: 4, Seed: seed}
	pop := topology.Generate(cfg)
	var cands []graph.NodeID
	for n := 0; n < pop.G.NumNodes() && len(cands) < nb; n++ {
		if pop.IsRouter(graph.NodeID(n)) {
			cands = append(cands, graph.NodeID(n))
		}
	}
	ps, err := ComputeProbes(pop.G, cands)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// Property: ILP matches brute force and the algorithm ordering
// ILP ≤ greedy ≤ (feasible) holds on random POPs.
func TestILPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		routers := 5 + int(uint64(seed)%5)
		nb := 3 + int(uint64(seed/7)%uint64(routers-2))
		ps := popProbeSet(t, seed, routers, nb)
		want := bruteBeacons(ps)
		if want == math.MaxInt32 {
			return true // infeasible probe set (cannot happen by construction)
		}
		ilp, err := PlaceILP(context.Background(), ps)
		if err != nil {
			t.Logf("seed %d: ilp: %v", seed, err)
			return false
		}
		if ilp.Devices() != want {
			t.Logf("seed %d: ilp %d != brute %d", seed, ilp.Devices(), want)
			return false
		}
		greedy, err := PlaceGreedy(ps)
		if err != nil {
			t.Logf("seed %d: greedy: %v", seed, err)
			return false
		}
		thiran, err := PlaceThiran(ps)
		if err != nil {
			t.Logf("seed %d: thiran: %v", seed, err)
			return false
		}
		if err := ilp.Validate(ps); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := greedy.Validate(ps); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := thiran.Validate(ps); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ilp.Devices() <= greedy.Devices() && ilp.Devices() <= thiran.Devices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: probe sets cover all edges on arbitrary connected POPs.
func TestComputeProbesProperty(t *testing.T) {
	f := func(seed int64) bool {
		routers := 4 + int(uint64(seed)%10)
		ps := popProbeSet(t, seed, routers, routers)
		if !ps.CoversAllEdges() {
			t.Logf("seed %d: uncovered edges", seed)
			return false
		}
		for _, p := range ps.Probes {
			if err := p.Path.Validate(ps.G); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementValidateErrors(t *testing.T) {
	g := pathGraph(3)
	ps, err := ComputeProbes(g, allNodes(g))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceILP(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	bad := pl
	bad.Beacons = []graph.NodeID{99}
	if err := bad.Validate(ps); err == nil {
		t.Fatal("non-candidate beacon accepted")
	}
	bad2 := pl
	bad2.Sender = nil
	if err := bad2.Validate(ps); err == nil {
		t.Fatal("missing senders accepted")
	}
}

func TestBalanceSendersNeverWorsens(t *testing.T) {
	ps := popProbeSet(t, 3, 10, 10)
	pl, err := PlaceILP(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := BalanceSenders(ps, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := bal.Validate(ps); err != nil {
		t.Fatal(err)
	}
	if MaxProbeLoad(bal) > MaxProbeLoad(pl) {
		t.Fatalf("balancing raised max load: %d -> %d", MaxProbeLoad(pl), MaxProbeLoad(bal))
	}
	// Same beacons, same total probes.
	if len(bal.Beacons) != len(pl.Beacons) {
		t.Fatal("balancing changed the beacon set")
	}
	tot := 0
	for _, l := range ProbeLoad(bal) {
		tot += l
	}
	if tot != len(ps.Probes) {
		t.Fatalf("probe total changed: %d vs %d", tot, len(ps.Probes))
	}
}

func TestBalanceSendersRejectsInvalid(t *testing.T) {
	ps := popProbeSet(t, 4, 8, 8)
	pl, err := PlaceGreedy(ps)
	if err != nil {
		t.Fatal(err)
	}
	bad := pl
	bad.Sender = nil
	if _, err := BalanceSenders(ps, bad); err == nil {
		t.Fatal("invalid placement accepted")
	}
}

// Property: balancing is stable (idempotent) and keeps validity.
func TestBalanceSendersProperty(t *testing.T) {
	f := func(seed int64) bool {
		routers := 5 + int(uint64(seed)%8)
		ps := popProbeSet(t, seed, routers, routers)
		pl, err := PlaceGreedy(ps)
		if err != nil {
			return false
		}
		b1, err := BalanceSenders(ps, pl)
		if err != nil {
			return false
		}
		b2, err := BalanceSenders(ps, b1)
		if err != nil {
			return false
		}
		return MaxProbeLoad(b1) <= MaxProbeLoad(pl) && MaxProbeLoad(b2) == MaxProbeLoad(b1) &&
			b1.Validate(ps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
