package mip

import (
	"math"
	"sort"

	"repro/internal/lp"
)

// This file implements pseudo-cost branching: per-variable, per-direction
// estimates of how much the LP bound degrades per unit of enforced
// integrality, initialized by strong-branching probes on the root's most
// fractional candidates and updated from the observed bound movement of
// every solved child node. The branching score is the classic product
// rule max(pc⁻·f, ε) · max(pc⁺·(1−f), ε).

const (
	// strongBranchCandidates caps the root strong-branching probes: the
	// candidates closest to one half each get a floor and a ceil LP.
	strongBranchCandidates = 8
	// strongBranchTrigger is the node count at which the lazy probes
	// fire: searches that finish earlier never pay for them, searches
	// that grow past it amortize the 2×strongBranchCandidates LPs over
	// the remaining tree.
	strongBranchTrigger = 64
	// infeasiblePenalty is the per-unit degradation recorded when a
	// strong-branching child is infeasible (branching there prunes a
	// whole side, which is as good as a huge bound movement).
	infeasiblePenalty = 1e10
	// pseudoEps floors the product-rule factors so zero-degradation
	// directions still differentiate by fractionality.
	pseudoEps = 1e-12
)

// pseudoCosts holds the per-variable degradation estimates.
type pseudoCosts struct {
	dnSum, upSum []float64
	dnCnt, upCnt []int
	totDn, totUp float64
	nDn, nUp     int
}

func newPseudoCosts(n int) *pseudoCosts {
	return &pseudoCosts{
		dnSum: make([]float64, n),
		upSum: make([]float64, n),
		dnCnt: make([]int, n),
		upCnt: make([]int, n),
	}
}

// observe records a bound degradation deg caused by branching variable
// j in the given direction off a parent fractionality frac.
func (pc *pseudoCosts) observe(j int, up bool, deg, frac float64) {
	denom := frac
	if up {
		denom = 1 - frac
	}
	if denom < 1e-6 {
		denom = 1e-6
	}
	pc.observeUnit(j, up, deg/denom)
}

// observeUnit records an already-normalized per-unit degradation.
func (pc *pseudoCosts) observeUnit(j int, up bool, perUnit float64) {
	if up {
		pc.upSum[j] += perUnit
		pc.upCnt[j]++
		pc.totUp += perUnit
		pc.nUp++
	} else {
		pc.dnSum[j] += perUnit
		pc.dnCnt[j]++
		pc.totDn += perUnit
		pc.nDn++
	}
}

// est returns the per-unit degradation estimate for (j, direction),
// falling back to the global average, then to 1, when unobserved.
func (pc *pseudoCosts) est(j int, up bool) float64 {
	if up {
		if pc.upCnt[j] > 0 {
			return pc.upSum[j] / float64(pc.upCnt[j])
		}
		if pc.nUp > 0 {
			return pc.totUp / float64(pc.nUp)
		}
	} else {
		if pc.dnCnt[j] > 0 {
			return pc.dnSum[j] / float64(pc.dnCnt[j])
		}
		if pc.nDn > 0 {
			return pc.totDn / float64(pc.nDn)
		}
	}
	return 1
}

// score is the product rule over both directions.
func (pc *pseudoCosts) score(j int, frac float64) float64 {
	dn := pc.est(j, false) * frac
	up := pc.est(j, true) * (1 - frac)
	return math.Max(dn, pseudoEps) * math.Max(up, pseudoEps)
}

// strongBranchInit seeds the pseudo-cost table by solving the floor and
// ceil child LPs of the root's most fractional integer candidates, warm
// started from the root basis.
func (s *search) strongBranchInit(rootSol *lp.Solution) {
	p := s.p
	type cand struct {
		j    int
		frac float64
	}
	var cands []cand
	for j, isInt := range p.integer {
		if !isInt {
			continue
		}
		f := rootSol.X[j] - math.Floor(rootSol.X[j])
		if f < s.opts.IntTol || f > 1-s.opts.IntTol {
			continue
		}
		cands = append(cands, cand{j, f})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		da := math.Abs(cands[a].frac - 0.5)
		db := math.Abs(cands[b].frac - 0.5)
		if !lp.ExactEq(da, db) {
			return da < db
		}
		return cands[a].j < cands[b].j
	})
	if len(cands) > strongBranchCandidates {
		cands = cands[:strongBranchCandidates]
	}
	basis := rootSol.Basis()
	for _, c := range cands {
		if s.ctx.Err() != nil {
			return
		}
		v := lp.Var(c.j)
		lo, hi := p.lp.Bounds(v)
		x := rootSol.X[c.j]
		// With non-integral user bounds a rounded probe range can be
		// empty, exactly as in pushChildren; such a direction is simply
		// an infeasible child.
		if dn := math.Floor(x); dn >= lo {
			p.lp.SetBounds(v, lo, dn)
			s.strongProbe(c.j, false, c.frac, rootSol.Objective, basis)
		} else {
			s.pc.observeUnit(c.j, false, infeasiblePenalty)
		}
		if up := math.Ceil(x); up <= hi {
			p.lp.SetBounds(v, up, hi)
			s.strongProbe(c.j, true, c.frac, rootSol.Objective, basis)
		} else {
			s.pc.observeUnit(c.j, true, infeasiblePenalty)
		}
		p.lp.SetBounds(v, lo, hi)
	}
}

// strongProbe solves one child LP and feeds the pseudo-cost table.
func (s *search) strongProbe(j int, up bool, frac, rootObj float64, basis *lp.Basis) {
	sol, err := s.p.lp.SolveContextFrom(s.ctx, basis)
	if err != nil {
		return
	}
	s.addEffort(sol)
	s.strongBranches++
	switch sol.Status {
	case lp.Optimal:
		s.pc.observe(j, up, s.worsen(sol.Objective, rootObj), frac)
	case lp.Infeasible:
		s.pc.observeUnit(j, up, infeasiblePenalty)
	}
}
