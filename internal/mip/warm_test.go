package mip

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// TestWarmArtifactsPreserveValue is the value-preservation property of
// the cross-solve warm-start plumbing: capturing cuts, pseudo-costs
// and the incumbent from a solve and seeding all three into a fresh
// solve of the SAME instance must not change feasibility status or the
// optimal objective. Across the suite every artifact kind must engage
// at least once (cuts captured, seeds accepted, pseudo observations
// recorded), so the property is not vacuously green.
func TestWarmArtifactsPreserveValue(t *testing.T) {
	cutsCaptured, seedsAccepted, pseudoObs := 0, 0, 0
	for seed := int64(0); seed < 200; seed++ {
		cold := buildRandomMIP(seed, Options{CaptureCuts: true, CapturePseudo: true})
		cs, err := cold.Solve()
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		cutsCaptured += len(cs.Cuts)
		pseudoObs += cs.Pseudo.Observations()

		warm := buildRandomMIP(seed, Options{
			SeedCuts:   cs.Cuts,
			SeedPseudo: cs.Pseudo,
			Incumbent:  cs.X,
		})
		ws, err := warm.Solve()
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		seedsAccepted += ws.CutsSeeded
		if ws.Status != cs.Status {
			t.Fatalf("seed %d: status %v (warm) vs %v (cold)", seed, ws.Status, cs.Status)
		}
		if cs.Status != lp.Optimal {
			continue
		}
		if math.Abs(ws.Objective-cs.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective %g (warm) vs %g (cold)", seed, ws.Objective, cs.Objective)
		}
		if len(ws.X) != warm.NumVariables() {
			t.Fatalf("seed %d: warm solution has %d values for %d variables", seed, len(ws.X), warm.NumVariables())
		}
		if obj, feasible := warm.lp.Evaluate(ws.X); !feasible || math.Abs(obj-ws.Objective) > 1e-6 {
			t.Fatalf("seed %d: warm solution infeasible or off-objective (feasible=%v obj=%g want %g)",
				seed, feasible, obj, ws.Objective)
		}
		// Captured cuts live in the caller's variable space.
		for _, c := range cs.Cuts {
			for _, tm := range c.Terms {
				if int(tm.Var) < 0 || int(tm.Var) >= cold.NumVariables() {
					t.Fatalf("seed %d: captured cut references variable %d of %d", seed, tm.Var, cold.NumVariables())
				}
			}
		}
	}
	if cutsCaptured == 0 {
		t.Fatal("no solve captured any cut: the capture plumbing never engaged")
	}
	if seedsAccepted == 0 {
		t.Fatal("no warm solve accepted a seeded cut: the injection plumbing never engaged")
	}
	if pseudoObs == 0 {
		t.Fatal("no solve captured pseudo-cost observations")
	}
}

// TestSeedCutsRollbackOnGarbage: a seeded cut that makes the root LP
// infeasible must be rolled back wholesale — the solve proceeds cold
// and still returns the true optimum, reporting zero accepted seeds.
func TestSeedCutsRollbackOnGarbage(t *testing.T) {
	build := func(o Options) (*Problem, []lp.Var) {
		p := NewProblem(lp.Maximize)
		xs := make([]lp.Var, 4)
		for j := range xs {
			xs[j] = p.AddBinaryVariable("x", float64(4+j))
		}
		p.AddConstraint(lp.LE, 5,
			lp.Term{Var: xs[0], Coef: 2}, lp.Term{Var: xs[1], Coef: 3},
			lp.Term{Var: xs[2], Coef: 4}, lp.Term{Var: xs[3], Coef: 5})
		p.SetOptions(o)
		return p, xs
	}
	ref, _ := build(Options{})
	want, err := ref.Solve()
	if err != nil || want.Status != lp.Optimal {
		t.Fatalf("reference solve: %v status %v", err, want.Status)
	}
	p, xs := build(Options{})
	garbage := []Cut{{RHS: -5, Terms: []lp.Term{{Var: xs[0], Coef: 1}, {Var: xs[1], Coef: 1}}}}
	o := Options{SeedCuts: garbage}
	p.SetOptions(o)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || math.Abs(sol.Objective-want.Objective) > 1e-9 {
		t.Fatalf("garbage seed corrupted the solve: status %v objective %g want %g",
			sol.Status, sol.Objective, want.Objective)
	}
	if sol.CutsSeeded != 0 {
		t.Fatalf("CutsSeeded = %d after a rolled-back seed batch, want 0", sol.CutsSeeded)
	}
}

// hardKnapsack builds a subset-sum-flavored knapsack whose tree search
// runs long enough to trigger the lazy strong-branching probes.
func hardKnapsack(o Options) *Problem {
	p := NewProblem(lp.Maximize)
	total := 0.0
	var terms []lp.Term
	for j := 0; j < 13; j++ {
		w := float64(2*j + 3)
		total += w
		v := p.AddBinaryVariable("x", w)
		terms = append(terms, lp.Term{Var: v, Coef: w})
	}
	// Capacity just under half the total and unreachable exactly, so
	// the relaxation stays fractional deep into the tree.
	p.AddConstraint(lp.LE, math.Floor(total/2)-0.5, terms...)
	o.NoCuts = true // keep the tree honest: no root cuts closing the gap
	p.SetOptions(o)
	return p
}

// TestSeedPseudoStandsInForStrongBranching: when a seeded pseudo-cost
// table carries real observations, the warm solve must skip the root
// strong-branching probes entirely (they only approximate what the
// seed already knows) and still land on the cold objective.
func TestSeedPseudoStandsInForStrongBranching(t *testing.T) {
	cold := hardKnapsack(Options{CapturePseudo: true})
	cs, err := cold.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Status != lp.Optimal {
		t.Fatalf("cold status %v", cs.Status)
	}
	if cs.StrongBranches == 0 {
		t.Skip("instance closed before the strong-branching trigger; probe-skip not observable")
	}
	if cs.Pseudo.Observations() == 0 {
		t.Fatal("cold solve recorded no pseudo-cost observations to seed")
	}
	warm := hardKnapsack(Options{SeedPseudo: cs.Pseudo})
	ws, err := warm.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Status != lp.Optimal || math.Abs(ws.Objective-cs.Objective) > 1e-9 {
		t.Fatalf("warm solve diverged: status %v objective %g want %g", ws.Status, ws.Objective, cs.Objective)
	}
	if ws.StrongBranches != 0 {
		t.Fatalf("warm solve ran %d strong-branching probes despite a seeded table", ws.StrongBranches)
	}
}

// TestWarmSeedsPrune: on the hard knapsack, seeding the full artifact
// set (incumbent + pseudo-costs) must not expand the tree — the point
// of carrying artifacts is to prune, and a warm solve exploring more
// nodes than cold would mean the plumbing misfires.
func TestWarmSeedsPrune(t *testing.T) {
	cold := hardKnapsack(Options{CapturePseudo: true})
	cs, err := cold.Solve()
	if err != nil || cs.Status != lp.Optimal {
		t.Fatalf("cold: %v status %v", err, cs.Status)
	}
	warm := hardKnapsack(Options{SeedPseudo: cs.Pseudo, Incumbent: cs.X})
	ws, err := warm.Solve()
	if err != nil || ws.Status != lp.Optimal {
		t.Fatalf("warm: %v status %v", err, ws.Status)
	}
	if math.Abs(ws.Objective-cs.Objective) > 1e-9 {
		t.Fatalf("objective %g warm vs %g cold", ws.Objective, cs.Objective)
	}
	if ws.Nodes > cs.Nodes {
		t.Fatalf("warm solve explored more nodes than cold (%d > %d)", ws.Nodes, cs.Nodes)
	}
}
