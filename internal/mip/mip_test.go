package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func tm(v lp.Var, c float64) lp.Term { return lp.Term{Var: v, Coef: c} }

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: behaves exactly like the LP.
	p := NewProblem(lp.Maximize)
	x := p.AddVariable("x", 0, 4, 3)
	y := p.AddVariable("y", 0, 6, 5)
	p.AddConstraint(lp.LE, 18, tm(x, 3), tm(y, 2))
	s := solveOrDie(t, p)
	if s.Status != lp.Optimal || !almostEq(s.Objective, 36, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 36", s.Status, s.Objective)
	}
}

func TestBinaryKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 5 → b + c? (4+2=6 > 5);
	// a+c: 3+2=5 → 17; b alone 13; a alone 10; c alone 7. Optimal 17.
	p := NewProblem(lp.Maximize)
	a := p.AddBinaryVariable("a", 10)
	b := p.AddBinaryVariable("b", 13)
	c := p.AddBinaryVariable("c", 7)
	p.AddConstraint(lp.LE, 5, tm(a, 3), tm(b, 4), tm(c, 2))
	s := solveOrDie(t, p)
	if s.Status != lp.Optimal || !almostEq(s.Objective, 17, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 17", s.Status, s.Objective)
	}
	if !almostEq(s.Value(a), 1, 1e-9) || !almostEq(s.Value(b), 0, 1e-9) || !almostEq(s.Value(c), 1, 1e-9) {
		t.Fatalf("solution = %v, want a=c=1", s.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer → x = 3 (LP gives 3.5).
	p := NewProblem(lp.Maximize)
	x := p.AddIntegerVariable("x", 0, 100, 1)
	p.AddConstraint(lp.LE, 7, tm(x, 2))
	s := solveOrDie(t, p)
	if !almostEq(s.Objective, 3, 1e-9) {
		t.Fatalf("obj=%g, want 3", s.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	p := NewProblem(lp.Minimize)
	x := p.AddBinaryVariable("x", 1)
	y := p.AddBinaryVariable("y", 1)
	// x + y >= 3 cannot hold with binaries.
	p.AddConstraint(lp.GE, 3, tm(x, 1), tm(y, 1))
	s := solveOrDie(t, p)
	if s.Status != lp.Infeasible {
		t.Fatalf("status=%v, want infeasible", s.Status)
	}
}

func triangleCover(opts Options) *Problem {
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 1)
	c := p.AddBinaryVariable("c", 1)
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(b, 1))
	p.AddConstraint(lp.GE, 1, tm(b, 1), tm(c, 1))
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(c, 1))
	p.SetOptions(opts)
	return p
}

func TestIntegralityGapInstance(t *testing.T) {
	// Vertex cover on a triangle: LP relaxation gives 1.5 (all halves),
	// the ILP must pay 2 — exercises real branching on the plain tree.
	s := solveOrDie(t, triangleCover(Options{Tree: AlgoPlainTree}))
	if s.Status != lp.Optimal || !almostEq(s.Objective, 2, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 2", s.Status, s.Objective)
	}
	if s.Nodes < 2 {
		t.Fatalf("nodes=%d; triangle cover should require branching on the plain tree", s.Nodes)
	}
}

func TestCliqueCutClosesTriangleAtRoot(t *testing.T) {
	// The strengthened default separates the triangle clique cut
	// y_a + y_b + y_c >= 2 at the root and never branches at all.
	s := solveOrDie(t, triangleCover(Options{}))
	if s.Status != lp.Optimal || !almostEq(s.Objective, 2, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 2", s.Status, s.Objective)
	}
	if s.CutsAdded == 0 {
		t.Fatalf("no cuts separated on the triangle: %+v", s)
	}
	if s.Nodes != 1 {
		t.Fatalf("nodes=%d; the clique cut should close the root", s.Nodes)
	}
}

func TestFixVariable(t *testing.T) {
	// Incremental placement: fixing a variable to 1 keeps it in every
	// solution, as for already-installed monitors (§4.3).
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 1)
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(b, 1))
	p.FixVariable(a, 1)
	s := solveOrDie(t, p)
	if !almostEq(s.Value(a), 1, 1e-9) || !almostEq(s.Objective, 1, 1e-6) {
		t.Fatalf("a=%g obj=%g, want 1,1", s.Value(a), s.Objective)
	}
}

func TestSolveIsRepeatable(t *testing.T) {
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 2)
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(b, 1))
	s1 := solveOrDie(t, p)
	s2 := solveOrDie(t, p) // bounds must be restored after the 1st solve
	if s1.Objective != s2.Objective || s1.Status != s2.Status {
		t.Fatalf("resolve differs: %+v vs %+v", s1, s2)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 2x + y, x binary, y continuous; x + y >= 1.5 → x=1,y=0.5? obj
	// 2.5; or x=0,y=1.5 → 1.5. Optimal 1.5.
	p := NewProblem(lp.Minimize)
	x := p.AddBinaryVariable("x", 2)
	y := p.AddVariable("y", 0, lp.Inf, 1)
	p.AddConstraint(lp.GE, 1.5, tm(x, 1), tm(y, 1))
	s := solveOrDie(t, p)
	if !almostEq(s.Objective, 1.5, 1e-6) || !almostEq(s.Value(x), 0, 1e-9) {
		t.Fatalf("obj=%g x=%g, want 1.5, 0", s.Objective, s.Value(x))
	}
}

func TestEmptyProblem(t *testing.T) {
	if _, err := NewProblem(lp.Minimize).Solve(); err != ErrNoVariables {
		t.Fatalf("err=%v, want ErrNoVariables", err)
	}
}

func TestMaxNodesEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewProblem(lp.Maximize)
	terms := make([]lp.Term, 25)
	for i := range terms {
		v := p.AddBinaryVariable("x", 1+rng.Float64())
		terms[i] = tm(v, 1+rng.Float64()*3)
	}
	p.AddConstraint(lp.LE, 20, terms...)
	p.SetOptions(Options{MaxNodes: 3})
	s := solveOrDie(t, p)
	if s.Nodes > 3 {
		t.Fatalf("explored %d nodes with MaxNodes=3", s.Nodes)
	}
	if s.Status == lp.Optimal && s.Nodes >= 3 {
		t.Fatalf("claimed optimality after early stop")
	}
}

// bruteForceBinary enumerates all assignments of the binary variables
// and returns the best feasible objective, or NaN when infeasible.
type bRow struct {
	coefs []float64
	rel   lp.Rel
	rhs   float64
}

func bruteForceBinary(n int, cost []float64, rows []bRow, maximize bool) float64 {
	best := math.NaN()
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for _, r := range rows {
			lhs := 0.0
			for j := range x {
				lhs += r.coefs[j] * x[j]
			}
			switch r.rel {
			case lp.LE:
				ok = ok && lhs <= r.rhs+1e-9
			case lp.GE:
				ok = ok && lhs >= r.rhs-1e-9
			case lp.EQ:
				ok = ok && math.Abs(lhs-r.rhs) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j := range x {
			obj += cost[j] * x[j]
		}
		if math.IsNaN(best) || (maximize && obj > best) || (!maximize && obj < best) {
			best = obj
		}
	}
	return best
}

// Property: branch and bound matches exhaustive enumeration on random
// small binary programs, both senses, all relation kinds.
func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(6)
		maximize := rng.Intn(2) == 0
		sense := lp.Minimize
		if maximize {
			sense = lp.Maximize
		}
		p := NewProblem(sense)
		cost := make([]float64, n)
		vars := make([]lp.Var, n)
		for j := 0; j < n; j++ {
			cost[j] = math.Round(rng.Float64()*20 - 10)
			vars[j] = p.AddBinaryVariable("x", cost[j])
		}
		rows := make([]bRow, m)
		for i := 0; i < m; i++ {
			coefs := make([]float64, n)
			terms := make([]lp.Term, n)
			for j := 0; j < n; j++ {
				coefs[j] = math.Round(rng.Float64()*10 - 5)
				terms[j] = tm(vars[j], coefs[j])
			}
			rel := lp.Rel(rng.Intn(2)) // LE or EQ-free mix; add GE via negation below
			if rng.Intn(2) == 0 {
				rel = lp.GE
			}
			rhs := math.Round(rng.Float64()*12 - 4)
			rows[i] = bRow{coefs, rel, rhs}
			p.AddConstraint(rel, rhs, terms...)
		}
		want := bruteForceBinary(n, cost, rows, maximize)
		s, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.IsNaN(want) {
			if s.Status != lp.Infeasible {
				t.Logf("seed %d: want infeasible, got %v obj=%g", seed, s.Status, s.Objective)
				return false
			}
			return true
		}
		if s.Status != lp.Optimal {
			t.Logf("seed %d: want optimal %g, got %v", seed, want, s.Status)
			return false
		}
		if !almostEq(s.Objective, want, 1e-5) {
			t.Logf("seed %d: mip=%g brute=%g", seed, s.Objective, want)
			return false
		}
		// Integer variables must be exactly integral.
		for j := range cost {
			if s.X[j] != 0 && s.X[j] != 1 {
				t.Logf("seed %d: x[%d]=%g not binary", seed, j, s.X[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: both branching rules find the same optimum.
func TestBranchingRulesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		build := func(rule BranchRule) *Problem {
			r := rand.New(rand.NewSource(seed))
			p := NewProblem(lp.Maximize)
			terms := make([]lp.Term, n)
			for j := 0; j < n; j++ {
				v := p.AddBinaryVariable("x", 1+r.Float64()*9)
				terms[j] = tm(v, 1+r.Float64()*5)
			}
			p.AddConstraint(lp.LE, float64(n), terms...)
			p.SetOptions(Options{Branching: rule})
			return p
		}
		_ = rng
		s1, err1 := build(MostFractional).Solve()
		s2, err2 := build(FirstFractional).Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(s1.Objective, s2.Objective, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmStartIncumbent(t *testing.T) {
	// Vertex cover on a triangle with a known feasible cover {a,b}.
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 1)
	c := p.AddBinaryVariable("c", 1)
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(b, 1))
	p.AddConstraint(lp.GE, 1, tm(b, 1), tm(c, 1))
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(c, 1))
	p.SetOptions(Options{Incumbent: []float64{1, 1, 0}})
	s := solveOrDie(t, p)
	if s.Status != lp.Optimal || !almostEq(s.Objective, 2, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 2", s.Status, s.Objective)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 1)
	p.AddConstraint(lp.GE, 1, tm(a, 1), tm(b, 1))
	// Violates the constraint: must be ignored, not believed.
	p.SetOptions(Options{Incumbent: []float64{0, 0}})
	s := solveOrDie(t, p)
	if s.Status != lp.Optimal || !almostEq(s.Objective, 1, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 1", s.Status, s.Objective)
	}
}

func TestWarmStartFractionalIgnored(t *testing.T) {
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	p.AddConstraint(lp.GE, 1, tm(a, 1))
	p.SetOptions(Options{Incumbent: []float64{0.5}})
	s := solveOrDie(t, p)
	if !almostEq(s.Objective, 1, 1e-6) {
		t.Fatalf("obj=%g, want 1", s.Objective)
	}
}

// Property: warm-started solves agree with cold solves.
func TestWarmStartAgreesWithCold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		build := func() (*Problem, []lp.Var) {
			r := rand.New(rand.NewSource(seed))
			p := NewProblem(lp.Minimize)
			vars := make([]lp.Var, n)
			for j := 0; j < n; j++ {
				vars[j] = p.AddBinaryVariable("x", 1+r.Float64()*4)
			}
			for i := 0; i < n; i++ {
				terms := []lp.Term{tm(vars[i], 1), tm(vars[(i+1)%n], 1)}
				p.AddConstraint(lp.GE, 1, terms...)
			}
			return p, vars
		}
		cold, _ := build()
		cs, err := cold.Solve()
		if err != nil || cs.Status != lp.Optimal {
			return false
		}
		warm, _ := build()
		all := make([]float64, n)
		for j := range all {
			all[j] = 1 // everything selected is always feasible here
		}
		warm.SetOptions(Options{Incumbent: all})
		ws, err := warm.Solve()
		if err != nil || ws.Status != lp.Optimal {
			return false
		}
		return almostEq(cs.Objective, ws.Objective, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveContextCanceledKeepsIncumbent: a canceled context stops the
// search but returns the warm-start incumbent with Status Canceled.
func TestSolveContextCanceledKeepsIncumbent(t *testing.T) {
	p := NewProblem(lp.Minimize)
	n := 12
	vars := make([]lp.Var, n)
	for j := range vars {
		vars[j] = p.AddBinaryVariable("x", 1)
	}
	for i := 0; i < n; i++ {
		p.AddConstraint(lp.GE, 1, tm(vars[i], 1), tm(vars[(i+1)%n], 1))
	}
	all := make([]float64, n)
	for j := range all {
		all[j] = 1
	}
	p.SetOptions(Options{Incumbent: all})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := p.SolveContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Canceled {
		t.Fatalf("status %v, want Canceled", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("incumbent discarded on cancellation")
	}
	if sol.Objective != float64(n) {
		t.Fatalf("objective %g, want the warm start %d", sol.Objective, n)
	}

	// The same problem without cancellation is solved to optimality and
	// reports effort counters.
	opt, err := p.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Status != lp.Optimal || opt.Objective > sol.Objective {
		t.Fatalf("optimal solve: %+v", opt)
	}
	if opt.Pivots == 0 || opt.Nodes == 0 {
		t.Fatalf("missing effort counters: %+v", opt)
	}
	if opt.Bound != opt.Objective {
		t.Fatalf("bound %g != objective %g at optimality", opt.Bound, opt.Objective)
	}
}

// countdownCtx reports itself canceled after a fixed number of Err()
// polls, which lands the cancellation deterministically inside the
// branch-and-bound loop (after the root relaxation solved).
type countdownCtx struct {
	context.Context
	calls     *int
	fireAfter int
}

func (c countdownCtx) Err() error {
	*c.calls++
	if *c.calls > c.fireAfter {
		return context.Canceled
	}
	return nil
}

// TestCancellationMidSearchCountsPivots: a context firing mid-search
// must not lose the pivot counters of the nodes already solved (or of
// the node being interrupted) — the regression companion of
// TestSolveContextCanceledKeepsIncumbent, which cancels before any
// node is explored.
func TestCancellationMidSearchCountsPivots(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(lp.Minimize)
		n := 13 // an odd ring: the cover relaxation is fractional, forcing branching
		vars := make([]lp.Var, n)
		for j := range vars {
			vars[j] = p.AddBinaryVariable("x", 1)
		}
		for i := 0; i < n; i++ {
			p.AddConstraint(lp.GE, 1, tm(vars[i], 1), tm(vars[(i+1)%n], 1))
		}
		all := make([]float64, n)
		for j := range all {
			all[j] = 1
		}
		p.SetOptions(Options{Incumbent: all})
		return p
	}
	// Reference run: how many nodes/pivots the full solve needs.
	full := solveOrDie(t, build())
	if full.Status != lp.Optimal || full.Nodes < 2 || full.Pivots == 0 {
		t.Fatalf("reference solve too easy for this test: %+v", full)
	}

	// Fire the cancellation a few polls in: the root relaxation
	// completes and the search dies at a later node boundary or inside
	// a later relaxation.
	calls := 0
	ctx := countdownCtx{Context: context.Background(), calls: &calls, fireAfter: 3}
	sol, err := build().SolveContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Canceled {
		t.Fatalf("status %v, want Canceled", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("incumbent discarded on mid-search cancellation")
	}
	if sol.Pivots == 0 {
		t.Fatal("interrupted search lost its pivot count")
	}
	if sol.Nodes == 0 {
		t.Fatal("interrupted search lost its node count")
	}
}

// TestWarmStartCountersSurface: solving a branchy MIP on the sparse
// path reports warm-started nodes and refactorizations, and the dense
// ablation path reports neither but agrees on the optimum.
func TestWarmStartCountersSurface(t *testing.T) {
	build := func(algo lp.Algorithm) *Problem {
		rng := rand.New(rand.NewSource(17))
		p := NewProblem(lp.Minimize)
		n := 14
		vars := make([]lp.Var, n)
		for j := range vars {
			vars[j] = p.AddBinaryVariable("x", 1+rng.Float64())
		}
		for i := 0; i < 2*n; i++ {
			var terms []lp.Term
			for j := range vars {
				if rng.Intn(3) == 0 {
					terms = append(terms, tm(vars[j], 1))
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(lp.GE, 1, terms...)
		}
		p.SetOptions(Options{Algorithm: algo})
		return p
	}
	sp := solveOrDie(t, build(lp.AlgoRevisedSparse))
	dn := solveOrDie(t, build(lp.AlgoDenseTableau))
	if sp.Status != lp.Optimal || dn.Status != lp.Optimal {
		t.Fatalf("statuses: sparse=%v dense=%v", sp.Status, dn.Status)
	}
	if !almostEq(sp.Objective, dn.Objective, 1e-6) {
		t.Fatalf("objectives differ: sparse=%g dense=%g", sp.Objective, dn.Objective)
	}
	if sp.Nodes > 1 && sp.WarmStarts == 0 {
		t.Fatalf("sparse branchy solve used no warm starts: %+v", sp)
	}
	if sp.Refactorizations == 0 {
		t.Fatalf("sparse solve reported no refactorizations: %+v", sp)
	}
	if dn.WarmStarts != 0 || dn.Refactorizations != 0 {
		t.Fatalf("dense solve reported revised-simplex counters: %+v", dn)
	}
}
