package mip

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/scenario"
)

// buildLP2 constructs the paper's Linear program 2 (PPM(k), §4.3) from
// a routed instance: binary x_e per link, continuous δ_t per traffic,
// Σ_{e∈p_t} x_e ≥ δ_t, Σ v_t·δ_t ≥ k·V, minimizing Σ x_e. It mirrors
// internal/passive's formulation without the warm-start incumbent, so
// the tree search is exercised from a cold start.
func buildLP2(in *core.Instance, k float64, opts Options) *Problem {
	p := NewProblem(lp.Minimize)
	m := in.G.NumEdges()
	xs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		xs[e] = p.AddBinaryVariable(fmt.Sprintf("x%d", e), 1)
	}
	ds := make([]lp.Var, len(in.Traffics))
	for ti := range in.Traffics {
		ds[ti] = p.AddVariable(fmt.Sprintf("d%d", ti), 0, 1, 0)
	}
	for ti, t := range in.Traffics {
		terms := make([]lp.Term, 0, t.Path.Len()+1)
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: xs[e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: ds[ti], Coef: -1})
		p.AddConstraint(lp.GE, 0, terms...)
	}
	cov := make([]lp.Term, len(in.Traffics))
	for ti, t := range in.Traffics {
		cov[ti] = lp.Term{Var: ds[ti], Coef: t.Volume}
	}
	p.AddConstraint(lp.GE, k*in.TotalVolume(), cov...)
	p.SetOptions(opts)
	return p
}

// TestStrengthenedMatchesPlainTreeOnScenarioMIPs extends the PR 4
// oracle suite beyond figure-shaped instances: on small MIPs built
// from every scenario family, the default root-strengthened pipeline
// (presolve + cuts + reduced-cost fixing + pseudo-cost branching) must
// agree with the AlgoPlainTree oracle on the optimal objective, and
// its solution must be full-length and feasible in the caller's
// variable space.
func TestStrengthenedMatchesPlainTreeOnScenarioMIPs(t *testing.T) {
	seedsPerFamily := int64(5)
	if testing.Short() {
		seedsPerFamily = 2
	}
	for _, fam := range scenario.Families() {
		f, err := scenario.Lookup(fam)
		if err != nil {
			t.Fatal(err)
		}
		size := f.MinSize + 2
		for seed := int64(0); seed < seedsPerFamily; seed++ {
			s, err := scenario.Generate(fam, size, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			in, err := s.Instance()
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			for _, k := range []float64{0.8, 1} {
				strong := buildLP2(in, k, Options{})
				plain := buildLP2(in, k, Options{Tree: AlgoPlainTree})
				ss, err := strong.Solve()
				if err != nil {
					t.Fatalf("%s/%d k=%g strengthened: %v", fam, seed, k, err)
				}
				ps, err := plain.Solve()
				if err != nil {
					t.Fatalf("%s/%d k=%g plain: %v", fam, seed, k, err)
				}
				if ss.Status != lp.Optimal || ps.Status != lp.Optimal {
					t.Fatalf("%s/%d k=%g: status strengthened=%v plain=%v", fam, seed, k, ss.Status, ps.Status)
				}
				if math.Abs(ss.Objective-ps.Objective) > 1e-6 {
					t.Fatalf("%s/%d k=%g: strengthened %g ≠ plain %g", fam, seed, k, ss.Objective, ps.Objective)
				}
				if len(ss.X) != strong.NumVariables() {
					t.Fatalf("%s/%d k=%g: postsolve returned %d values for %d variables", fam, seed, k, len(ss.X), strong.NumVariables())
				}
				// The strengthened solution must evaluate feasible (and to
				// its own objective) on a fresh, untouched copy of the
				// problem.
				check := buildLP2(in, k, Options{})
				obj, feas := check.lp.Evaluate(ss.X)
				if !feas {
					t.Fatalf("%s/%d k=%g: strengthened solution infeasible on the original problem", fam, seed, k)
				}
				if math.Abs(obj-ss.Objective) > 1e-6 {
					t.Fatalf("%s/%d k=%g: solution evaluates to %g, solver reported %g", fam, seed, k, obj, ss.Objective)
				}
			}
		}
	}
}
