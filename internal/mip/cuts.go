package mip

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

// This file implements the root cutting planes of the strengthened
// pipeline: clique cuts separated from a binary-literal conflict graph
// and lifted cover cuts separated from the knapsack-style ≤ rows every
// placement formulation of the paper emits. Cuts are added to the
// (reduced, solver-owned) relaxation at the root only, so all node
// bases share one shape and child warm starts keep working.

const (
	// cutRoundCap bounds the cuts added per separation round.
	cutRoundCap = 32
	// cutMinViolation is the minimum LP violation worth a cut.
	cutMinViolation = 1e-4
	// conflictRowBinCap skips conflict extraction on rows with more
	// active binaries than this (wide rows rarely produce pairwise
	// conflicts that survive the activity precheck).
	conflictRowBinCap = 64
	// cliqueSeedCap bounds the greedy clique growing starts per round.
	cliqueSeedCap = 24
)

// cutRow is one ≤ cutting plane in the solver's variable space.
type cutRow struct {
	terms []lp.Term
	rhs   float64
}

// leForm is one constraint in Σ coefs·x ≤ rhs orientation (EQ rows
// contribute both directions).
type leForm struct {
	vars  []int
	coefs []float64
	rhs   float64
}

// separator holds the per-solve separation state: the normalized rows,
// the literal conflict graph, and the signatures of cuts already added.
type separator struct {
	p     *Problem
	forms []leForm
	isBin []bool

	edges     map[uint64]struct{}
	neighbors [][]int32 // literal → sorted distinct neighbor literals
	seen      map[string]bool
}

// literal encoding: 2j is "x_j = 1", 2j+1 is "x_j = 0".
func litOf(j int, pos bool) int32 {
	if pos {
		return int32(2 * j)
	}
	return int32(2*j + 1)
}

func litVar(l int32) int { return int(l) / 2 }

func litPos(l int32) bool { return l%2 == 0 }

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// newSeparator normalizes the problem rows and builds the conflict
// graph once; separation rounds then only rescan for violations.
func newSeparator(p *Problem) *separator {
	s := &separator{
		p:     p,
		edges: make(map[uint64]struct{}),
		seen:  make(map[string]bool),
	}
	s.isBin = make([]bool, p.lp.NumVariables())
	for j, isInt := range p.integer {
		lo, hi := p.lp.Bounds(lp.Var(j))
		s.isBin[j] = isInt && lp.StructZero(lo) && lp.ExactEq(hi, 1)
	}
	for _, r := range normalizeRows(p, p.lp.NumConstraints()) {
		s.forms = append(s.forms, leForm{vars: r.vars, coefs: r.coefs, rhs: r.rhs})
		if r.rel == lp.EQ {
			neg := leForm{vars: r.vars, coefs: make([]float64, len(r.coefs)), rhs: -r.rhs}
			for k, c := range r.coefs {
				neg.coefs[k] = -c
			}
			s.forms = append(s.forms, neg)
		}
	}
	s.buildConflicts()
	return s
}

// buildConflicts derives pairwise binary-literal conflicts from each ≤
// form via the activity argument: literals l1, l2 conflict when the
// row's minimum activity plus both literals' activation increases
// exceeds the rhs — then l1 and l2 cannot both hold in any feasible
// point, globally.
func (s *separator) buildConflicts() {
	p := s.p
	for _, f := range s.forms {
		minAct := 0.0
		ok := true
		var bins []int // indices into f.vars
		for k, j := range f.vars {
			a := f.coefs[k]
			lo, hi := p.lp.Bounds(lp.Var(j))
			if a > 0 {
				minAct += a * lo
			} else {
				if math.IsInf(hi, 1) {
					ok = false
					break
				}
				minAct += a * hi
			}
			if s.isBin[j] {
				bins = append(bins, k)
			}
		}
		if !ok || len(bins) < 2 || len(bins) > conflictRowBinCap {
			continue
		}
		// inc(l) = activation increase of setting the literal true.
		inc := func(k int, pos bool) float64 {
			a := f.coefs[k]
			if pos {
				return math.Max(a, 0)
			}
			return math.Max(-a, 0)
		}
		// Precheck: if even the two largest increases cannot violate
		// the row, no pair can.
		top1, top2 := 0.0, 0.0
		for _, k := range bins {
			for _, pos := range [2]bool{true, false} {
				v := inc(k, pos)
				if v > top1 {
					top1, top2 = v, top1
				} else if v > top2 {
					top2 = v
				}
			}
		}
		if minAct+top1+top2 <= f.rhs+epsRowFeas {
			continue
		}
		for a := 0; a < len(bins); a++ {
			for b := a + 1; b < len(bins); b++ {
				ka, kb := bins[a], bins[b]
				for _, pa := range [2]bool{true, false} {
					ia := inc(ka, pa)
					if ia <= 0 {
						continue
					}
					for _, pb := range [2]bool{true, false} {
						ib := inc(kb, pb)
						if ib <= 0 {
							continue
						}
						if minAct+ia+ib > f.rhs+epsRowFeas {
							s.addEdge(litOf(f.vars[ka], pa), litOf(f.vars[kb], pb))
						}
					}
				}
			}
		}
	}
	// Sort and dedupe the adjacency lists for deterministic growing.
	for l := range s.neighbors {
		ns := s.neighbors[l]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		w := 0
		for i, v := range ns {
			if i == 0 || v != ns[i-1] {
				ns[w] = v
				w++
			}
		}
		s.neighbors[l] = ns[:w]
	}
}

func (s *separator) addEdge(a, b int32) {
	k := edgeKey(a, b)
	if _, dup := s.edges[k]; dup {
		return
	}
	s.edges[k] = struct{}{}
	need := int(math.Max(float64(a), float64(b))) + 1
	for len(s.neighbors) < need {
		s.neighbors = append(s.neighbors, nil)
	}
	s.neighbors[a] = append(s.neighbors[a], b)
	s.neighbors[b] = append(s.neighbors[b], a)
}

func (s *separator) adjacent(a, b int32) bool {
	_, ok := s.edges[edgeKey(a, b)]
	return ok
}

// separate returns violated cuts for the fractional point x, capped per
// round and deduplicated across the whole solve.
func (s *separator) separate(x []float64) []cutRow {
	var cuts []cutRow
	cuts = s.cliqueCuts(x, cuts)
	if len(cuts) < cutRoundCap {
		cuts = s.coverCuts(x, cuts)
	}
	if len(cuts) > cutRoundCap {
		cuts = cuts[:cutRoundCap]
	}
	return cuts
}

// litVal is the LP value of a literal.
func litVal(x []float64, l int32) float64 {
	if litPos(l) {
		return x[litVar(l)]
	}
	return 1 - x[litVar(l)]
}

// cliqueCuts grows cliques in the conflict graph around high-valued
// literals; a clique Q with Σ val > 1 yields the violated valid
// inequality Σ_{l∈Q} l ≤ 1.
func (s *separator) cliqueCuts(x []float64, cuts []cutRow) []cutRow {
	if len(s.edges) == 0 {
		return cuts
	}
	var cand []int32
	for l := range s.neighbors {
		if len(s.neighbors[l]) > 0 && litVal(x, int32(l)) > 0.05 {
			cand = append(cand, int32(l))
		}
	}
	if len(cand) < 3 {
		return cuts
	}
	sort.SliceStable(cand, func(a, b int) bool {
		va, vb := litVal(x, cand[a]), litVal(x, cand[b])
		if !lp.ExactEq(va, vb) {
			return va > vb
		}
		return cand[a] < cand[b]
	})
	seeds := len(cand)
	if seeds > cliqueSeedCap {
		seeds = cliqueSeedCap
	}
	var clique []int32
	for si := 0; si < seeds && len(cuts) < cutRoundCap; si++ {
		seed := cand[si]
		clique = append(clique[:0], seed)
		sum := litVal(x, seed)
		for _, l := range cand {
			if l == seed {
				continue
			}
			ok := true
			for _, m := range clique {
				if litVar(l) == litVar(m) || !s.adjacent(l, m) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, l)
				sum += litVal(x, l)
			}
		}
		if len(clique) < 3 || sum <= 1+cutMinViolation {
			continue
		}
		if c, ok := s.emitLiteralCut(clique, 1); ok {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// emitLiteralCut converts Σ literals ≤ maxTrue into a cutRow over the
// problem variables, deduplicating by signature.
func (s *separator) emitLiteralCut(lits []int32, maxTrue int) (cutRow, bool) {
	sorted := append([]int32(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sig := fmt.Sprintf("%v|%d", sorted, maxTrue)
	if s.seen[sig] {
		return cutRow{}, false
	}
	s.seen[sig] = true
	rhs := float64(maxTrue)
	terms := make([]lp.Term, 0, len(sorted))
	for _, l := range sorted {
		if litPos(l) {
			terms = append(terms, lp.Term{Var: lp.Var(litVar(l)), Coef: 1})
		} else {
			terms = append(terms, lp.Term{Var: lp.Var(litVar(l)), Coef: -1})
			rhs-- // (1 - x) ≤ … moves the constant to the rhs
		}
	}
	return cutRow{terms: terms, rhs: rhs}, true
}

// coverCuts separates lifted cover inequalities from the binary
// knapsack relaxation of each ≤ form: complementing negative
// coefficients yields Σ ā z ≤ b̄ over literals z; a cover C (Σ_{C} ā >
// b̄) gives Σ_{C} z ≤ |C|−1, extended by every literal at least as
// heavy as the heaviest cover member.
func (s *separator) coverCuts(x []float64, cuts []cutRow) []cutRow {
	p := s.p
	type item struct {
		k    int // index into f.vars
		lit  int32
		w    float64 // complemented weight ā
		zval float64 // LP value of the literal
	}
	for _, f := range s.forms {
		if len(cuts) >= cutRoundCap {
			break
		}
		// Fold non-binary terms at their minimum contribution.
		base := f.rhs
		ok := true
		var items []item
		wsumAll := 0.0
		for k, j := range f.vars {
			a := f.coefs[k]
			if lp.StructZero(a) {
				continue
			}
			if !s.isBin[j] {
				lo, hi := p.lp.Bounds(lp.Var(j))
				if a > 0 {
					base -= a * lo
				} else {
					if math.IsInf(hi, 1) {
						ok = false
						break
					}
					base -= a * hi
				}
				continue
			}
			it := item{k: k, w: math.Abs(a)}
			if a > 0 {
				it.lit = litOf(j, true)
				it.zval = x[j]
			} else {
				it.lit = litOf(j, false)
				it.zval = 1 - x[j]
				base -= a // a·x = a − a·z̄ with ā = −a
			}
			items = append(items, it)
			wsumAll += it.w
		}
		if !ok || len(items) < 2 || wsumAll <= base+1e-9 {
			continue
		}
		// Greedy cover: cheapest (1−z)/ā first until the weight spills.
		order := make([]int, len(items))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra := (1 - items[order[a]].zval) / items[order[a]].w
			rb := (1 - items[order[b]].zval) / items[order[b]].w
			if !lp.ExactEq(ra, rb) {
				return ra < rb
			}
			return items[order[a]].lit < items[order[b]].lit
		})
		var cover []int
		wsum := 0.0
		for _, i := range order {
			cover = append(cover, i)
			wsum += items[i].w
			if wsum > base+1e-9 {
				break
			}
		}
		if wsum <= base+1e-9 {
			continue
		}
		// Minimalize: drop the least fractional members while the
		// cover still overflows.
		sort.SliceStable(cover, func(a, b int) bool {
			if !lp.ExactEq(items[cover[a]].zval, items[cover[b]].zval) {
				return items[cover[a]].zval < items[cover[b]].zval
			}
			return items[cover[a]].lit < items[cover[b]].lit
		})
		w := 0
		for _, i := range cover {
			if wsum-items[i].w > base+1e-9 {
				wsum -= items[i].w
				continue
			}
			cover[w] = i
			w++
		}
		cover = cover[:w]
		if len(cover) < 2 {
			continue
		}
		viol := 1.0 - float64(len(cover))
		amax := 0.0
		for _, i := range cover {
			viol += items[i].zval
			if items[i].w > amax {
				amax = items[i].w
			}
		}
		if viol <= cutMinViolation {
			continue
		}
		// Simple lifting: every item at least as heavy as the cover's
		// heaviest joins with coefficient 1.
		lits := make([]int32, 0, len(cover))
		inCover := make(map[int]bool, len(cover))
		for _, i := range cover {
			inCover[i] = true
			lits = append(lits, items[i].lit)
		}
		for i := range items {
			if !inCover[i] && items[i].w >= amax-1e-12 {
				lits = append(lits, items[i].lit)
			}
		}
		if c, okc := s.emitLiteralCut(lits, len(cover)-1); okc {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// cutLoop runs root separation rounds: separate against the current
// root point, add the cuts, re-solve cold (the row shape changed), and
// repeat until no violated cut remains or the round budget is spent.
// Rows added by failed re-solves are rolled back so the tree only ever
// sees relaxations the simplex handled cleanly.
func (s *search) cutLoop(rootSol *lp.Solution) *lp.Solution {
	p := s.p
	sep := newSeparator(p)
	for round := 0; round < s.opts.CutRounds; round++ {
		if s.ctx.Err() != nil {
			s.interrupted = lp.Canceled
			return rootSol
		}
		cuts := sep.separate(rootSol.X)
		if len(cuts) == 0 {
			break
		}
		mark := p.lp.NumConstraints()
		for _, c := range cuts {
			p.lp.AddConstraint(lp.LE, c.rhs, c.terms...)
		}
		ns, err := p.lp.SolveContext(s.ctx)
		if err != nil {
			p.lp.TruncateConstraints(mark)
			break
		}
		s.addEffort(ns)
		if ns.Status != lp.Optimal {
			p.lp.TruncateConstraints(mark)
			if ns.Status == lp.Canceled || ns.Status == lp.IterLimit {
				s.interrupted = ns.Status
			}
			return rootSol
		}
		s.cutsAdded += len(cuts)
		if s.opts.CaptureCuts {
			s.capturedCuts = append(s.capturedCuts, cutRowsToCuts(cuts)...)
		}
		rootSol = ns
		s.bestBound = ns.Objective
	}
	return rootSol
}
