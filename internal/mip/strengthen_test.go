package mip

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// buildRandomMIP draws a random mixed binary/continuous program with
// fixed variables, empty columns, duplicate rows and all relation
// kinds, so presolve has something to chew on. The same seed always
// produces the same instance.
func buildRandomMIP(seed int64, opts Options) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(9)
	m := 1 + rng.Intn(6)
	maximize := rng.Intn(2) == 0
	sense := lp.Minimize
	if maximize {
		sense = lp.Maximize
	}
	p := NewProblem(sense)
	vars := make([]lp.Var, 0, n+3)
	for j := 0; j < n; j++ {
		cost := math.Round(rng.Float64()*20 - 10)
		if rng.Intn(4) == 0 {
			// Bounded continuous variable in the mix.
			vars = append(vars, p.AddVariable("c", 0, 1+rng.Float64()*2, cost))
		} else {
			vars = append(vars, p.AddBinaryVariable("x", cost))
		}
	}
	for i := 0; i < m; i++ {
		terms := make([]lp.Term, 0, n)
		for _, v := range vars {
			if c := math.Round(rng.Float64()*10 - 5); c != 0 {
				terms = append(terms, lp.Term{Var: v, Coef: c})
			}
		}
		if len(terms) == 0 {
			continue
		}
		rel := lp.LE
		switch rng.Intn(3) {
		case 1:
			rel = lp.GE
		case 2:
			if rng.Intn(3) == 0 { // EQ rows sparingly: most should be feasible
				rel = lp.EQ
			}
		}
		rhs := math.Round(rng.Float64()*14 - 3)
		p.AddConstraint(rel, rhs, terms...)
		if rng.Intn(5) == 0 {
			p.AddConstraint(rel, rhs, terms...) // duplicate row for presolve
		}
	}
	// Presolve fodder: a fixed binary and an empty column.
	fv := p.AddBinaryVariable("fixed", 1)
	p.FixVariable(fv, float64(rng.Intn(2)))
	p.AddVariable("empty", 0, 3, math.Round(rng.Float64()*4-2))
	p.SetOptions(opts)
	return p
}

// TestStrengthenedMatchesPlainTree is the core property suite of the
// root-strengthening pipeline: on 200 random instances the default
// (presolve + cuts + reduced-cost fixing + pseudo-cost branching)
// solver and the AlgoPlainTree oracle must agree on feasibility and on
// the optimal objective to 1e-6, and the strengthened solution vector
// must be full-length and feasible in the caller's variable space
// (presolve's postsolve at work).
func TestStrengthenedMatchesPlainTree(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		strong := buildRandomMIP(seed, Options{})
		plain := buildRandomMIP(seed, Options{Tree: AlgoPlainTree})
		ss, err := strong.Solve()
		if err != nil {
			t.Fatalf("seed %d: strengthened: %v", seed, err)
		}
		ps, err := plain.Solve()
		if err != nil {
			t.Fatalf("seed %d: plain: %v", seed, err)
		}
		if ss.Status != ps.Status {
			t.Fatalf("seed %d: status %v (strengthened) vs %v (plain)", seed, ss.Status, ps.Status)
		}
		if ss.Status != lp.Optimal {
			continue
		}
		if math.Abs(ss.Objective-ps.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective %g (strengthened) vs %g (plain)", seed, ss.Objective, ps.Objective)
		}
		if len(ss.X) != strong.NumVariables() {
			t.Fatalf("seed %d: postsolve returned %d values for %d variables", seed, len(ss.X), strong.NumVariables())
		}
		if obj, feasible := strong.lp.Evaluate(ss.X); !feasible || math.Abs(obj-ss.Objective) > 1e-6 {
			t.Fatalf("seed %d: postsolved solution infeasible or off-objective (feasible=%v obj=%g want %g)",
				seed, feasible, obj, ss.Objective)
		}
	}
}

// TestReducedCostFixingNeverExcisesOptimum compares the default solver
// against the same pipeline with fixing disabled on instances carrying
// a (deliberately weak) warm-start incumbent, so the fixing machinery
// actually engages. Objectives must match exactly; across the suite at
// least one solve must report fixed variables, proving the machinery
// ran at all.
func TestReducedCostFixingNeverExcisesOptimum(t *testing.T) {
	engaged := 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		build := func(opts Options) *Problem {
			r := rand.New(rand.NewSource(seed))
			p := NewProblem(lp.Minimize)
			vars := make([]lp.Var, n)
			for j := range vars {
				vars[j] = p.AddBinaryVariable("x", 1+math.Round(r.Float64()*5))
			}
			for i := 0; i < 2*n; i++ {
				var terms []lp.Term
				for j := range vars {
					if r.Intn(3) == 0 {
						terms = append(terms, lp.Term{Var: vars[j], Coef: 1})
					}
				}
				if len(terms) == 0 {
					continue
				}
				p.AddConstraint(lp.GE, 1, terms...)
			}
			// All-ones is always feasible for a covering program: a
			// valid but weak incumbent that leaves the gap wide open.
			inc := make([]float64, n)
			for j := range inc {
				inc[j] = 1
			}
			opts.Incumbent = inc
			p.SetOptions(opts)
			return p
		}
		_ = rng
		with, err := build(Options{}).Solve()
		if err != nil {
			t.Fatalf("seed %d: with fixing: %v", seed, err)
		}
		without, err := build(Options{NoFixing: true}).Solve()
		if err != nil {
			t.Fatalf("seed %d: without fixing: %v", seed, err)
		}
		if with.Status != without.Status {
			t.Fatalf("seed %d: status %v (fixing) vs %v (no fixing)", seed, with.Status, without.Status)
		}
		if with.Status == lp.Optimal && math.Abs(with.Objective-without.Objective) > 1e-6 {
			t.Fatalf("seed %d: fixing changed the optimum: %g vs %g", seed, with.Objective, without.Objective)
		}
		if with.VarsFixed > 0 {
			engaged++
		}
	}
	if engaged == 0 {
		t.Fatal("reduced-cost fixing never engaged across the whole suite")
	}
}

// TestPresolveCountersSurface checks that an instance presolve can
// shrink reports the removal and still restores the full solution.
func TestPresolveCountersSurface(t *testing.T) {
	p := NewProblem(lp.Minimize)
	a := p.AddBinaryVariable("a", 1)
	b := p.AddBinaryVariable("b", 2)
	fixed := p.AddBinaryVariable("f", 5)
	p.FixVariable(fixed, 1)
	p.AddVariable("empty", 0, 4, 3) // appears in no row: fixed at 0
	p.AddConstraint(lp.GE, 1, lp.Term{Var: a, Coef: 1}, lp.Term{Var: b, Coef: 1})
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || !almostEq(s.Objective, 6, 1e-9) { // a=1 + fixed=1·5
		t.Fatalf("status=%v obj=%g, want optimal 6", s.Status, s.Objective)
	}
	if s.PresolveRemoved == 0 {
		t.Fatalf("presolve removed nothing: %+v", s)
	}
	if len(s.X) != 4 || !almostEq(s.X[2], 1, 1e-9) || !almostEq(s.X[3], 0, 1e-9) {
		t.Fatalf("postsolve vector wrong: %v", s.X)
	}
}

// TestRelativeGapPruning is the regression test of the RelGap option:
// on a large-objective instance an absolute-only gap keeps proving to
// optimality, while a relative gap prunes once the incumbent is within
// RelGap·|incumbent| and reports the slackened bound.
func TestRelativeGapPruning(t *testing.T) {
	build := func(opts Options) *Problem {
		rng := rand.New(rand.NewSource(11))
		p := NewProblem(lp.Maximize)
		terms := make([]lp.Term, 20)
		for i := range terms {
			v := p.AddBinaryVariable("x", 1e6*(1+rng.Float64()))
			terms[i] = lp.Term{Var: v, Coef: 1 + rng.Float64()*3}
		}
		p.AddConstraint(lp.LE, 18, terms...)
		p.SetOptions(opts)
		return p
	}
	exact, err := build(Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != lp.Optimal {
		t.Fatalf("exact solve: %v", exact.Status)
	}
	rel, err := build(Options{RelGap: 1e-3}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Status != lp.Optimal {
		t.Fatalf("relgap solve: %v", rel.Status)
	}
	// The returned incumbent must be within the relative gap of the
	// true optimum…
	if rel.Objective < exact.Objective*(1-1e-3)-1e-6 {
		t.Fatalf("relgap solution %g below tolerance of optimum %g", rel.Objective, exact.Objective)
	}
	// …and the proven bound must reflect the slack instead of claiming
	// exact optimality.
	wantBound := rel.Objective + 1e-9 + 1e-3*math.Abs(rel.Objective)
	if math.Abs(rel.Bound-wantBound) > 1e-6*math.Abs(wantBound) {
		t.Fatalf("relgap bound %g, want %g", rel.Bound, wantBound)
	}
	// The relative gap must actually prune: same instance, fewer or
	// equal nodes (strictly fewer would be flaky to assert on every
	// machine, but it must never explore more).
	if rel.Nodes > exact.Nodes {
		t.Fatalf("relgap explored more nodes (%d) than the exact solve (%d)", rel.Nodes, exact.Nodes)
	}
}

// TestNodeQueuePopReleasesSlot guards the fix for the completed-node
// retention leak: Pop must nil the vacated backing-array slot so the
// queue does not keep dead nodes (and their delta chains and basis
// snapshots) alive for the rest of the search.
func TestNodeQueuePopReleasesSlot(t *testing.T) {
	q := &nodeQueue{}
	for i := 0; i < 4; i++ {
		q.Push(&node{relax: float64(i)})
	}
	it := q.Pop()
	if it == nil {
		t.Fatal("Pop returned nil node")
	}
	backing := q.items[:cap(q.items)]
	if backing[len(q.items)] != nil {
		t.Fatal("Pop left the vacated slot populated; completed nodes stay reachable")
	}
}

// TestStrengthenedCountersFlow checks the new counters reach the
// Solution: presolve removals on a reducible instance, and lazy
// strong-branching probes once some tree in a random family exceeds
// the trigger.
func TestStrengthenedCountersFlow(t *testing.T) {
	build := func(seed int64, n int, opts Options) *Problem {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem(lp.Minimize)
		vars := make([]lp.Var, n)
		for j := range vars {
			vars[j] = p.AddBinaryVariable("x", 1+rng.Float64())
		}
		for i := 0; i < 3*n; i++ {
			var terms []lp.Term
			for j := range vars {
				if rng.Intn(4) == 0 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: 1})
				}
			}
			if len(terms) < 2 {
				continue
			}
			p.AddConstraint(lp.GE, 1, terms...)
		}
		p.SetOptions(opts)
		return p
	}
	s, err := build(23, 24, Options{}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if s.PresolveRemoved == 0 {
		t.Fatalf("presolve removed nothing on a reducible covering instance: %+v", s)
	}
	ps, err := build(23, 24, Options{Tree: AlgoPlainTree}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Objective, ps.Objective, 1e-6) {
		t.Fatalf("objectives differ: %g vs plain %g", s.Objective, ps.Objective)
	}
	// Find an instance whose strengthened tree passes the lazy trigger
	// and confirm the probes fired and were counted.
	for seed := int64(0); seed < 80; seed++ {
		s, err := build(seed, 34, Options{}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Nodes > strongBranchTrigger+1 {
			if s.StrongBranches == 0 {
				t.Fatalf("seed %d: %d-node tree never strong-branched: %+v", seed, s.Nodes, s)
			}
			return
		}
	}
	t.Skip("no instance in the family exceeded the strong-branch trigger")
}
