package mip

import "repro/internal/lp"

// This file implements cross-solve warm-start artifacts: cutting planes
// and pseudo-cost tables captured from one solve and re-seeded into a
// later one. Together with Options.Incumbent (a prior solution as the
// starting bound) and the per-node basis warm starts the tree already
// performs, these are the re-optimization artifacts a session layer
// carries across churn steps.
//
// Validity contract: a seeded cut must be a valid inequality for the
// problem it is seeded into. Captured cuts are guaranteed valid only
// for the EXACT problem they were captured from — presolve fixes
// variables deterministically, so the original-space round trip is
// exact on an identical model — and for mutations that provably
// preserve them (identical constraint matrix). A mutation that changes
// constraint coefficients (e.g. a traffic rescale reweighting knapsack
// rows) can make a captured cover cut slice off feasible points, which
// silently corrupts the answer; such solves must re-separate from
// scratch. Pseudo-cost seeds and incumbents are heuristic (they steer
// branching and pruning, never the feasible set), so stale seeds cost
// time, not correctness — but an incumbent is re-validated before use
// and dropped when infeasible.

// Cut is one ≤ cutting plane in the caller's (original) variable
// space: Σ Terms ≤ RHS. Solution.Cuts returns the root cuts of a solve
// in this form when Options.CaptureCuts is set; Options.SeedCuts
// injects them into a later solve.
type Cut struct {
	Terms []lp.Term
	RHS   float64
}

// PseudoSnapshot is a portable copy of the pseudo-cost branching state
// in the caller's variable space: per-variable, per-direction sums and
// observation counts of the normalized bound degradations (the global
// averages are recomputed from the sums on seeding). Captured via
// Options.CapturePseudo, re-seeded via Options.SeedPseudo.
type PseudoSnapshot struct {
	DownSum, UpSum []float64
	DownN, UpN     []int
}

// Observations reports the total number of recorded branching
// observations (both directions).
func (s *PseudoSnapshot) Observations() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, c := range s.DownN {
		n += c
	}
	for _, c := range s.UpN {
		n += c
	}
	return n
}

// snapshot deep-copies the live pseudo-cost table (reduced space; the
// caller lifts it to the original space).
func (pc *pseudoCosts) snapshot() *PseudoSnapshot {
	n := len(pc.dnSum)
	s := &PseudoSnapshot{
		DownSum: make([]float64, n),
		UpSum:   make([]float64, n),
		DownN:   make([]int, n),
		UpN:     make([]int, n),
	}
	copy(s.DownSum, pc.dnSum)
	copy(s.UpSum, pc.upSum)
	copy(s.DownN, pc.dnCnt)
	copy(s.UpN, pc.upCnt)
	return s
}

// seed loads a snapshot into a fresh pseudo-cost table and rebuilds the
// global averages from the per-variable sums. It reports whether any
// observation was loaded; a shape mismatch loads nothing.
func (pc *pseudoCosts) seed(snap *PseudoSnapshot) bool {
	n := len(pc.dnSum)
	if snap == nil || len(snap.DownSum) != n || len(snap.UpSum) != n ||
		len(snap.DownN) != n || len(snap.UpN) != n {
		return false
	}
	any := false
	for j := 0; j < n; j++ {
		pc.dnSum[j], pc.upSum[j] = snap.DownSum[j], snap.UpSum[j]
		pc.dnCnt[j], pc.upCnt[j] = snap.DownN[j], snap.UpN[j]
		pc.totDn += snap.DownSum[j]
		pc.totUp += snap.UpSum[j]
		pc.nDn += snap.DownN[j]
		pc.nUp += snap.UpN[j]
		if snap.DownN[j] > 0 || snap.UpN[j] > 0 {
			any = true
		}
	}
	return any
}

// projectCuts maps original-space seed cuts onto the presolved model:
// terms on kept variables are reindexed, terms on presolve-fixed
// variables fold into the RHS at their fixed value (exact when the
// seeds came from the same model — presolve is deterministic). A cut
// whose terms all fold away is dropped, which is always sound.
func projectCuts(cuts []Cut, pre *presolveState) []Cut {
	if len(cuts) == 0 {
		return nil
	}
	out := make([]Cut, 0, len(cuts))
	for _, c := range cuts {
		rc := Cut{RHS: c.RHS, Terms: make([]lp.Term, 0, len(c.Terms))}
		ok := true
		for _, t := range c.Terms {
			j := int(t.Var)
			if j < 0 || j >= len(pre.mapTo) {
				ok = false
				break
			}
			if k := pre.mapTo[j]; k >= 0 {
				rc.Terms = append(rc.Terms, lp.Term{Var: lp.Var(k), Coef: t.Coef})
			} else {
				rc.RHS -= t.Coef * pre.fixedVal[j]
			}
		}
		if ok && len(rc.Terms) > 0 {
			out = append(out, rc)
		}
	}
	return out
}

// liftCuts maps captured reduced-space cuts back into the original
// variable space via the postsolve map.
func liftCuts(cuts []Cut, pre *presolveState) []Cut {
	out := make([]Cut, len(cuts))
	for i, c := range cuts {
		lc := Cut{RHS: c.RHS, Terms: make([]lp.Term, len(c.Terms))}
		for k, t := range c.Terms {
			lc.Terms[k] = lp.Term{Var: lp.Var(pre.keep[int(t.Var)]), Coef: t.Coef}
		}
		out[i] = lc
	}
	return out
}

// projectPseudo maps an original-space pseudo-cost snapshot onto the
// kept variables. A shape mismatch (snapshot from a different model)
// yields nil and the seed is ignored.
func projectPseudo(snap *PseudoSnapshot, pre *presolveState, origVars int) *PseudoSnapshot {
	if snap == nil || len(snap.DownSum) != origVars || len(snap.UpSum) != origVars ||
		len(snap.DownN) != origVars || len(snap.UpN) != origVars {
		return nil
	}
	n := len(pre.keep)
	out := &PseudoSnapshot{
		DownSum: make([]float64, n),
		UpSum:   make([]float64, n),
		DownN:   make([]int, n),
		UpN:     make([]int, n),
	}
	for k, j := range pre.keep {
		out.DownSum[k], out.UpSum[k] = snap.DownSum[j], snap.UpSum[j]
		out.DownN[k], out.UpN[k] = snap.DownN[j], snap.UpN[j]
	}
	return out
}

// liftPseudo expands a reduced-space snapshot into the original
// variable space (presolve-removed variables keep zero observations).
func liftPseudo(snap *PseudoSnapshot, pre *presolveState) *PseudoSnapshot {
	out := &PseudoSnapshot{
		DownSum: make([]float64, pre.origVars),
		UpSum:   make([]float64, pre.origVars),
		DownN:   make([]int, pre.origVars),
		UpN:     make([]int, pre.origVars),
	}
	for k, j := range pre.keep {
		out.DownSum[j], out.UpSum[j] = snap.DownSum[k], snap.UpSum[k]
		out.DownN[j], out.UpN[j] = snap.DownN[k], snap.UpN[k]
	}
	return out
}

// cutRowsToCuts converts freshly separated cut rows into the exported
// form, deep-copying terms (the rows' slices are owned by the LP after
// AddConstraint).
func cutRowsToCuts(rows []cutRow) []Cut {
	out := make([]Cut, len(rows))
	for i, r := range rows {
		terms := make([]lp.Term, len(r.terms))
		copy(terms, r.terms)
		out[i] = Cut{Terms: terms, RHS: r.rhs}
	}
	return out
}

// copyCuts deep-copies a cut slice so captured seeds never alias the
// caller's.
func copyCuts(cuts []Cut) []Cut {
	out := make([]Cut, len(cuts))
	for i, c := range cuts {
		terms := make([]lp.Term, len(c.Terms))
		copy(terms, c.Terms)
		out[i] = Cut{Terms: terms, RHS: c.RHS}
	}
	return out
}

// injectSeedCuts adds the caller's seed cuts (already projected into
// the solver's reduced space) to the root relaxation with the same
// add / re-solve / roll-back discipline as the separation rounds: a
// re-solve that fails or goes infeasible removes every seeded row, so
// a bad seed costs one LP and never corrupts the search. Runs before
// separation so the separator's rounds see (and deduplicate against)
// the seeded relaxation point.
func (s *search) injectSeedCuts(rootSol *lp.Solution) *lp.Solution {
	p := s.p
	if s.ctx.Err() != nil {
		s.interrupted = lp.Canceled
		return rootSol
	}
	mark := p.lp.NumConstraints()
	for _, c := range s.opts.SeedCuts {
		p.lp.AddConstraint(lp.LE, c.RHS, c.Terms...)
	}
	ns, err := p.lp.SolveContext(s.ctx)
	if err != nil {
		p.lp.TruncateConstraints(mark)
		return rootSol
	}
	s.addEffort(ns)
	if ns.Status != lp.Optimal {
		p.lp.TruncateConstraints(mark)
		if ns.Status == lp.Canceled || ns.Status == lp.IterLimit {
			s.interrupted = ns.Status
		}
		return rootSol
	}
	s.cutsSeeded = len(s.opts.SeedCuts)
	if s.opts.CaptureCuts {
		s.capturedCuts = append(s.capturedCuts, copyCuts(s.opts.SeedCuts)...)
	}
	s.bestBound = ns.Objective
	return ns
}

// attachWarm adds the captured warm-start artifacts to a finished
// Solution (reduced space; solveStrengthened lifts them).
func (s *search) attachWarm(sol *Solution) *Solution {
	sol.CutsSeeded = s.cutsSeeded
	if s.opts.CaptureCuts && len(s.capturedCuts) > 0 {
		sol.Cuts = s.capturedCuts
	}
	if s.opts.CapturePseudo && s.pc != nil {
		sol.Pseudo = s.pc.snapshot()
	}
	return sol
}
