// Package mip implements a branch-and-bound Mixed Integer Programming
// solver over the simplex of internal/lp. It is the stand-in for the
// CPLEX 0–1 MIP solver the paper uses (§4.4, §6.2): exact on the paper's
// instance sizes, returning provably optimal solutions.
//
// The solver supports arbitrary mixes of continuous and integer
// variables, which covers every formulation of the paper: the pure 0–1
// beacon-placement ILP (§6.1), the mixed programs LP 1 / LP 2 for
// PPM(k) (§4.3), and the MILP PPME(h,k) of §5.3.
package mip

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// Problem is a mixed integer program: an lp.Problem plus integrality
// marks on a subset of variables.
type Problem struct {
	lp      *lp.Problem
	sense   lp.Sense
	integer []bool
	opts    Options
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes. 0 means the default
	// (200000). When exceeded, Solve returns the incumbent with
	// Status = IterLimit when one exists, Infeasible otherwise.
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Gap is the absolute optimality gap for pruning (default 1e-9;
	// with the paper's unit device costs an absolute gap of 1-1e-6
	// would also be valid, but we keep the conservative default).
	Gap float64
	// Branching selects the branching-variable rule.
	Branching BranchRule
	// Incumbent, when non-nil, warm-starts the search with a known
	// feasible solution (e.g. a greedy heuristic's): subtrees that
	// cannot beat it are pruned immediately. It must be feasible and
	// integral on the integer variables; otherwise it is ignored.
	Incumbent []float64
	// Algorithm selects the LP relaxation solver. The default sparse
	// revised simplex (lp.AlgoRevisedSparse) also enables basis
	// warm-starting of child nodes; the dense tableau
	// (lp.AlgoDenseTableau) solves every node cold and is retained for
	// the ablation study.
	Algorithm lp.Algorithm
	// Pricing selects the revised simplex pricing rule.
	Pricing lp.Pricing
}

// BranchRule selects which fractional variable to branch on.
type BranchRule int

const (
	// MostFractional branches on the variable whose fractional part is
	// closest to 1/2 (default).
	MostFractional BranchRule = iota
	// FirstFractional branches on the lowest-index fractional variable
	// (kept for the ablation study, see DESIGN.md §6).
	FirstFractional
)

// Status mirrors lp.Status for MIP outcomes.
type Status = lp.Status

// Solution is the result of a MIP solve.
type Solution struct {
	// Status is lp.Optimal when the incumbent is proven optimal,
	// lp.IterLimit when the node budget stopped the search, and
	// lp.Canceled when the context fired; in the latter two cases X
	// holds the best incumbent found so far (nil when none exists).
	Status    lp.Status
	Objective float64
	// X is indexed by lp.Var; integer variables are exactly integral
	// (rounded from within IntTol).
	X []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Pivots is the total simplex iterations across all node
	// relaxations, including iterations of interrupted nodes and of
	// warm-start attempts that fell back to a cold solve.
	Pivots int
	// Bound is the best proven bound on the optimum (equals Objective
	// at optimality, tighter than Objective only on early stop).
	Bound float64
	// Refactorizations is the total basis LU refactorizations across
	// all node relaxations (0 with the dense tableau).
	Refactorizations int
	// DevexResets is the total Devex reference-framework resets across
	// all node relaxations.
	DevexResets int
	// WarmStarts counts the child nodes whose relaxation was solved
	// from the parent's basis instead of a cold phase-1 start.
	WarmStarts int
}

// Value returns the solved value of v.
func (s *Solution) Value(v lp.Var) float64 { return s.X[v] }

// NewProblem returns an empty MIP with the given sense.
func NewProblem(sense lp.Sense) *Problem {
	return &Problem{lp: lp.NewProblem(sense), sense: sense}
}

// SetOptions replaces the solver options.
func (p *Problem) SetOptions(o Options) { p.opts = o }

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lower, upper, cost float64) lp.Var {
	v := p.lp.AddVariable(name, lower, upper, cost)
	p.integer = append(p.integer, false)
	return v
}

// AddIntegerVariable adds a general integer variable with the given
// bounds.
func (p *Problem) AddIntegerVariable(name string, lower, upper, cost float64) lp.Var {
	v := p.lp.AddVariable(name, lower, upper, cost)
	p.integer = append(p.integer, true)
	return v
}

// AddBinaryVariable adds a 0–1 variable, the workhorse of the paper's
// placement formulations (x_e, y_i).
func (p *Problem) AddBinaryVariable(name string, cost float64) lp.Var {
	return p.AddIntegerVariable(name, 0, 1, cost)
}

// AddConstraint forwards to the underlying LP.
func (p *Problem) AddConstraint(rel lp.Rel, rhs float64, terms ...lp.Term) {
	p.lp.AddConstraint(rel, rhs, terms...)
}

// FixVariable pins a variable to a constant value. The paper's
// incremental-placement variant (§4.3) fixes the x_e of already-installed
// devices to 1 this way.
func (p *Problem) FixVariable(v lp.Var, value float64) {
	p.lp.SetBounds(v, value, value)
}

// Bounds returns the current bounds of v.
func (p *Problem) Bounds(v lp.Var) (float64, float64) { return p.lp.Bounds(v) }

// NumVariables returns the number of variables.
func (p *Problem) NumVariables() int { return p.lp.NumVariables() }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return p.lp.NumConstraints() }

// node is one branch-and-bound subproblem: a set of tightened bounds
// plus the parent's optimal basis, which warm-starts the child's LP
// relaxation (dual-simplex restoration instead of a cold phase 1).
type node struct {
	bounds map[lp.Var][2]float64
	relax  float64 // LP relaxation objective of the parent (priority)
	depth  int
	basis  *lp.Basis
}

// nodeQueue is a best-first priority queue ordered by relaxation bound.
type nodeQueue struct {
	items []*node
	min   bool // true when lower relaxation bounds are better (Minimize)
}

func (q *nodeQueue) Len() int { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.items[i].relax < q.items[j].relax
	}
	return q.items[i].relax > q.items[j].relax
}
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// ErrNoVariables is returned for an empty problem.
var ErrNoVariables = errors.New("mip: problem has no variables")

// Solve runs branch and bound and returns the best integer-feasible
// solution found together with its optimality status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveContext(context.Background())
}

// SolveContext runs branch and bound under a context. When ctx fires
// mid-search the best incumbent found so far is returned with
// Status = lp.Canceled instead of being discarded, so deadline-bounded
// callers still receive a feasible (if unproven) solution.
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	if p.lp.NumVariables() == 0 {
		return nil, ErrNoVariables
	}
	opts := p.opts
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 200000
	}
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	if opts.Gap == 0 {
		opts.Gap = 1e-9
	}

	// Remember original bounds so the Problem is reusable after Solve.
	orig := make([][2]float64, p.lp.NumVariables())
	for v := range orig {
		lo, hi := p.lp.Bounds(lp.Var(v))
		orig[v] = [2]float64{lo, hi}
	}
	defer func() {
		for v, b := range orig {
			p.lp.SetBounds(lp.Var(v), b[0], b[1])
		}
	}()

	better := func(a, b float64) bool {
		if p.sense == lp.Minimize {
			return a < b
		}
		return a > b
	}
	worst := math.Inf(1)
	if p.sense == lp.Maximize {
		worst = math.Inf(-1)
	}

	p.lp.SetAlgorithm(opts.Algorithm)
	p.lp.SetPricing(opts.Pricing)

	var incumbent []float64
	incObj := worst
	bestBound := -worst // trivial bound until the root relaxation solves
	nodes := 0
	pivots := 0
	refactors := 0
	devexResets := 0
	warmStarts := 0
	// interrupted records why the search stopped before exhausting the
	// tree: lp.Canceled (context fired) or lp.IterLimit (a node
	// relaxation ran out of simplex iterations). lp.Optimal means no
	// interruption.
	interrupted := lp.Optimal

	if opts.Incumbent != nil {
		if obj, ok := p.evaluateIncumbent(opts.Incumbent); ok {
			incumbent = roundIntegers(opts.Incumbent, p.integer)
			incObj = obj
		}
	}

	q := &nodeQueue{min: p.sense == lp.Minimize}
	heap.Push(q, &node{relax: -worst})

	for q.Len() > 0 {
		if nodes >= opts.MaxNodes {
			break
		}
		if ctx.Err() != nil {
			interrupted = lp.Canceled
			break
		}
		nd := heap.Pop(q).(*node)
		// Bound-based pruning against the incumbent.
		if incumbent != nil && !better(nd.relax, incObj+pruneSlack(p.sense, opts.Gap)) && nd.depth > 0 {
			continue
		}
		nodes++

		// Apply node bounds on top of the originals.
		for v, b := range orig {
			p.lp.SetBounds(lp.Var(v), b[0], b[1])
		}
		for v, b := range nd.bounds {
			p.lp.SetBounds(v, b[0], b[1])
		}

		sol, err := p.lp.SolveContextFrom(ctx, nd.basis)
		if err != nil {
			return nil, fmt.Errorf("mip: node relaxation: %w", err)
		}
		pivots += sol.Iterations
		refactors += sol.Refactorizations
		devexResets += sol.DevexResets
		if sol.Warm {
			warmStarts++
		}
		if sol.Status == lp.Canceled || sol.Status == lp.IterLimit {
			// The node's subtree was not explored: push it back so its
			// relaxation stays part of the reported open bound, and keep
			// whatever incumbent exists instead of discarding it.
			interrupted = sol.Status
			heap.Push(q, nd)
			break
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MIP is
			// unbounded or needs bounds we cannot infer.
			if nd.depth == 0 {
				return &Solution{Status: lp.Unbounded, Nodes: nodes, Pivots: pivots,
					Refactorizations: refactors, DevexResets: devexResets, WarmStarts: warmStarts}, nil
			}
			continue
		}
		if nd.depth == 0 {
			bestBound = sol.Objective
		}
		if incumbent != nil && !better(sol.Objective, incObj+pruneSlack(p.sense, opts.Gap)) {
			continue
		}

		branchVar := p.pickBranch(sol.X, opts)
		if branchVar < 0 {
			// Integer feasible.
			if incumbent == nil || better(sol.Objective, incObj) {
				incumbent = roundIntegers(sol.X, p.integer)
				incObj = sol.Objective
			}
			continue
		}

		val := sol.X[branchVar]
		lo, hi := p.lp.Bounds(branchVar)
		// With non-integral user bounds a rounded child range can be
		// empty; such a child is simply infeasible and not enqueued.
		if dn := math.Floor(val); dn >= lo {
			down := childBounds(nd.bounds, branchVar, lo, dn)
			heap.Push(q, &node{bounds: down, relax: sol.Objective, depth: nd.depth + 1, basis: sol.Basis()})
		}
		if up := math.Ceil(val); up <= hi {
			upb := childBounds(nd.bounds, branchVar, up, hi)
			heap.Push(q, &node{bounds: upb, relax: sol.Objective, depth: nd.depth + 1, basis: sol.Basis()})
		}
	}

	// On an early stop the best-first queue's top relaxation is the best
	// still-open bound; combine it with the proven root bound, and never
	// claim a bound beyond the incumbent's own value.
	if q.Len() > 0 {
		open := q.items[0].relax
		if better(bestBound, open) {
			bestBound = open
		}
		if incumbent != nil && better(incObj, bestBound) {
			bestBound = incObj
		}
	}
	if incumbent == nil {
		st := lp.Infeasible
		switch {
		case interrupted != lp.Optimal:
			st = interrupted
		case nodes >= opts.MaxNodes:
			st = lp.IterLimit
		}
		return &Solution{Status: st, Nodes: nodes, Pivots: pivots,
			Refactorizations: refactors, DevexResets: devexResets, WarmStarts: warmStarts}, nil
	}
	st := lp.Optimal
	switch {
	case interrupted != lp.Optimal:
		// Even with an empty queue the interrupted node may hide better
		// solutions, so an interrupted search never claims optimality.
		st = interrupted
	case q.Len() > 0 && nodes >= opts.MaxNodes:
		st = lp.IterLimit
	default:
		// The tree is exhausted: the incumbent is optimal within the
		// pruning gap, so with a caller-set gap the proven bound is
		// incObj − Gap (minimize). Under the near-zero conservative
		// default this is optimality proper and Bound = Objective.
		bestBound = incObj
		if p.opts.Gap > 0 {
			bestBound = incObj + pruneSlack(p.sense, p.opts.Gap)
		}
	}
	return &Solution{Status: st, Objective: incObj, X: incumbent, Nodes: nodes, Pivots: pivots, Bound: bestBound,
		Refactorizations: refactors, DevexResets: devexResets, WarmStarts: warmStarts}, nil
}

// evaluateIncumbent validates a warm-start solution: feasible for the
// LP and integral on integer variables.
func (p *Problem) evaluateIncumbent(x []float64) (float64, bool) {
	if len(x) != p.lp.NumVariables() {
		return 0, false
	}
	for j, isInt := range p.integer {
		if isInt && math.Abs(x[j]-math.Round(x[j])) > 1e-6 {
			return 0, false
		}
	}
	return p.lp.Evaluate(x)
}

// pruneSlack converts the absolute gap into a signed slack for the
// "not better than incumbent" test.
func pruneSlack(sense lp.Sense, gap float64) float64 {
	if sense == lp.Minimize {
		return -gap
	}
	return gap
}

// pickBranch returns the integer variable to branch on, or -1 when x is
// integer feasible.
func (p *Problem) pickBranch(x []float64, opts Options) lp.Var {
	best := lp.Var(-1)
	bestScore := -1.0
	for j, isInt := range p.integer {
		if !isInt {
			continue
		}
		frac := x[j] - math.Floor(x[j])
		if frac < opts.IntTol || frac > 1-opts.IntTol {
			continue
		}
		if opts.Branching == FirstFractional {
			return lp.Var(j)
		}
		score := math.Min(frac, 1-frac)
		if score > bestScore {
			bestScore = score
			best = lp.Var(j)
		}
	}
	return best
}

func childBounds(parent map[lp.Var][2]float64, v lp.Var, lo, hi float64) map[lp.Var][2]float64 {
	b := make(map[lp.Var][2]float64, len(parent)+1)
	for k, x := range parent {
		b[k] = x
	}
	b[v] = [2]float64{lo, hi}
	return b
}

func roundIntegers(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}
