// Package mip implements a branch-and-bound Mixed Integer Programming
// solver over the simplex of internal/lp. It is the stand-in for the
// CPLEX 0–1 MIP solver the paper uses (§4.4, §6.2): exact on the paper's
// instance sizes, returning provably optimal solutions.
//
// The solver supports arbitrary mixes of continuous and integer
// variables, which covers every formulation of the paper: the pure 0–1
// beacon-placement ILP (§6.1), the mixed programs LP 1 / LP 2 for
// PPM(k) (§4.3), and the MILP PPME(h,k) of §5.3.
//
// By default the search runs root-strengthened (AlgoRootStrengthened):
// a presolve pass shrinks the instance behind a postsolve map, lifted
// cover and clique cuts tighten the root relaxation, reduced-cost
// fixing pins binaries the root duals prove out, and branching is
// pseudo-cost driven (initialized by strong-branching probes at the
// root). AlgoPlainTree retains the naive tree as the test oracle; see
// DESIGN.md §4.
package mip

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// Problem is a mixed integer program: an lp.Problem plus integrality
// marks on a subset of variables.
type Problem struct {
	lp      *lp.Problem
	sense   lp.Sense
	integer []bool
	opts    Options
}

// TreeAlgo selects the branch-and-bound pipeline.
type TreeAlgo int

const (
	// AlgoRootStrengthened (default) runs presolve, root cutting
	// planes, reduced-cost fixing and pseudo-cost branching around the
	// tree search. It requires the sparse revised simplex; with
	// lp.AlgoDenseTableau selected the solver falls back to the plain
	// tree (the dense oracle exposes no duals).
	AlgoRootStrengthened TreeAlgo = iota
	// AlgoPlainTree is the naive best-first tree (no presolve, no
	// cuts, no fixing, fractionality-driven branching), kept as the
	// test oracle and ablation baseline.
	AlgoPlainTree
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes. 0 means the default
	// (200000). When exceeded, Solve returns the incumbent with
	// Status = IterLimit when one exists, Infeasible otherwise.
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Gap is the absolute optimality gap for pruning (default 1e-9;
	// with the paper's unit device costs an absolute gap of 1-1e-6
	// would also be valid, but we keep the conservative default).
	Gap float64
	// RelGap is the relative optimality gap for pruning: subtrees
	// within Gap + RelGap·|incumbent| of the incumbent are cut. The
	// default 0 keeps pruning purely absolute; large-objective
	// instances should set it so pruning scales with the objective.
	RelGap float64
	// Branching selects the branching-variable rule. The PseudoCost
	// default degrades to MostFractional on the plain tree (pseudo-cost
	// state lives in the strengthened pipeline).
	Branching BranchRule
	// Incumbent, when non-nil, warm-starts the search with a known
	// feasible solution (e.g. a greedy heuristic's): subtrees that
	// cannot beat it are pruned immediately. It must be feasible and
	// integral on the integer variables; otherwise it is ignored.
	Incumbent []float64
	// Algorithm selects the LP relaxation solver. The default sparse
	// revised simplex (lp.AlgoRevisedSparse) also enables basis
	// warm-starting of child nodes; the dense tableau
	// (lp.AlgoDenseTableau) solves every node cold and is retained for
	// the ablation study (it forces Tree = AlgoPlainTree).
	Algorithm lp.Algorithm
	// Pricing selects the revised simplex pricing rule.
	Pricing lp.Pricing
	// Tree selects the search pipeline (default AlgoRootStrengthened).
	Tree TreeAlgo
	// NoPresolve, NoCuts, NoFixing and NoStrongBranch switch off
	// individual stages of the root-strengthened pipeline — the
	// ablation knobs of BenchmarkAblationTree.
	NoPresolve     bool
	NoCuts         bool
	NoFixing       bool
	NoStrongBranch bool
	// CutRounds caps the root cutting-plane rounds (0 = default 8).
	CutRounds int
	// SeedCuts warm-starts the root relaxation with cutting planes
	// captured from a previous solve (Solution.Cuts, original variable
	// space). Seeds must be valid inequalities for THIS problem — see
	// the contract in warm.go; an identical model is always safe. Bad
	// seeds that break the root LP are rolled back wholesale. Ignored
	// on the plain tree.
	SeedCuts []Cut
	// CaptureCuts records the root cuts (seeded + separated) of this
	// solve in Solution.Cuts for reuse by a later solve.
	CaptureCuts bool
	// SeedPseudo warm-starts pseudo-cost branching with a table
	// captured from a previous solve (Solution.Pseudo). A non-empty
	// seed also stands in for the strong-branching probes. Heuristic
	// only: stale estimates cost nodes, never correctness. Ignored
	// unless Branching is PseudoCost on the strengthened tree.
	SeedPseudo *PseudoSnapshot
	// CapturePseudo records the final pseudo-cost table in
	// Solution.Pseudo.
	CapturePseudo bool
}

// BranchRule selects which fractional variable to branch on.
type BranchRule int

const (
	// PseudoCost branches on the variable with the largest estimated
	// objective degradation product (down × up), estimates initialized
	// from strong-branching probes at the root and updated from the
	// observed bound movement of every solved child (default).
	PseudoCost BranchRule = iota
	// MostFractional branches on the variable whose fractional part is
	// closest to 1/2 (the pre-pseudo-cost default, still the plain
	// tree's rule).
	MostFractional
	// FirstFractional branches on the lowest-index fractional variable
	// (kept for the ablation study, see DESIGN.md §6).
	FirstFractional
)

// Status mirrors lp.Status for MIP outcomes.
type Status = lp.Status

// Solution is the result of a MIP solve.
type Solution struct {
	// Status is lp.Optimal when the incumbent is proven optimal,
	// lp.IterLimit when the node budget stopped the search, and
	// lp.Canceled when the context fired; in the latter two cases X
	// holds the best incumbent found so far (nil when none exists).
	Status    lp.Status
	Objective float64
	// X is indexed by lp.Var; integer variables are exactly integral
	// (rounded from within IntTol). Presolve is invisible here: X is
	// always full-length in the caller's variable space.
	X []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Pivots is the total simplex iterations across all LP solves:
	// node relaxations (including interrupted nodes and warm-start
	// attempts that fell back to a cold solve), root cutting-plane
	// re-solves, and strong-branching probes.
	Pivots int
	// Bound is the best proven bound on the optimum (equals Objective
	// at optimality, tighter than Objective only on early stop).
	Bound float64
	// Refactorizations is the total basis LU refactorizations across
	// all LP solves (0 with the dense tableau).
	Refactorizations int
	// DevexResets is the total Devex reference-framework resets across
	// all LP solves.
	DevexResets int
	// WarmStarts counts the child nodes whose relaxation was solved
	// from the parent's basis instead of a cold phase-1 start.
	WarmStarts int
	// CutsAdded counts the lifted cover and clique cutting planes the
	// root separation added to the relaxation.
	CutsAdded int
	// VarsFixed counts the integer variables permanently fixed by
	// reduced-cost fixing (after the root LP and on every incumbent
	// improvement).
	VarsFixed int
	// PresolveRemoved counts the columns and rows presolve removed
	// before the root solve.
	PresolveRemoved int
	// StrongBranches counts the strong-branching probe LPs solved to
	// initialize the pseudo-cost estimates.
	StrongBranches int
	// CutsSeeded counts the caller-provided cuts (Options.SeedCuts)
	// accepted into the root relaxation (0 when the seed batch was
	// rolled back or none was given).
	CutsSeeded int
	// Cuts holds the root cutting planes of this solve in the original
	// variable space when Options.CaptureCuts is set (nil otherwise).
	Cuts []Cut
	// Pseudo holds the final pseudo-cost table in the original
	// variable space when Options.CapturePseudo is set (nil otherwise).
	Pseudo *PseudoSnapshot
}

// Value returns the solved value of v.
func (s *Solution) Value(v lp.Var) float64 { return s.X[v] }

// NewProblem returns an empty MIP with the given sense.
func NewProblem(sense lp.Sense) *Problem {
	return &Problem{lp: lp.NewProblem(sense), sense: sense}
}

// SetOptions replaces the solver options.
func (p *Problem) SetOptions(o Options) { p.opts = o }

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lower, upper, cost float64) lp.Var {
	v := p.lp.AddVariable(name, lower, upper, cost)
	p.integer = append(p.integer, false)
	return v
}

// AddIntegerVariable adds a general integer variable with the given
// bounds.
func (p *Problem) AddIntegerVariable(name string, lower, upper, cost float64) lp.Var {
	v := p.lp.AddVariable(name, lower, upper, cost)
	p.integer = append(p.integer, true)
	return v
}

// AddBinaryVariable adds a 0–1 variable, the workhorse of the paper's
// placement formulations (x_e, y_i).
func (p *Problem) AddBinaryVariable(name string, cost float64) lp.Var {
	return p.AddIntegerVariable(name, 0, 1, cost)
}

// AddConstraint forwards to the underlying LP.
func (p *Problem) AddConstraint(rel lp.Rel, rhs float64, terms ...lp.Term) {
	p.lp.AddConstraint(rel, rhs, terms...)
}

// FixVariable pins a variable to a constant value. The paper's
// incremental-placement variant (§4.3) fixes the x_e of already-installed
// devices to 1 this way.
func (p *Problem) FixVariable(v lp.Var, value float64) {
	p.lp.SetBounds(v, value, value)
}

// Bounds returns the current bounds of v.
func (p *Problem) Bounds(v lp.Var) (float64, float64) { return p.lp.Bounds(v) }

// NumVariables returns the number of variables.
func (p *Problem) NumVariables() int { return p.lp.NumVariables() }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return p.lp.NumConstraints() }

// node is one branch-and-bound subproblem. Instead of a per-node bounds
// map, each node records the single branch delta that created it plus a
// parent pointer: applying a node's bounds walks the chain root-ward and
// replays the deltas leaf-most-last. A million-node search therefore
// allocates no maps, only fixed-size nodes.
type node struct {
	parent    *node
	branchVar lp.Var // -1 for the root
	lo, hi    float64
	relax     float64 // LP relaxation objective of the parent (priority)
	depth     int
	basis     *lp.Basis
	up        bool    // true when this is the ceil-side child
	frac      float64 // fractional part of branchVar in the parent LP
}

// nodeQueue is a best-first priority queue ordered by relaxation bound.
type nodeQueue struct {
	items []*node
	min   bool // true when lower relaxation bounds are better (Minimize)
}

func (q *nodeQueue) Len() int { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.items[i].relax < q.items[j].relax
	}
	return q.items[i].relax > q.items[j].relax
}
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	// Nil out the vacated slot: the backing array must not retain
	// completed nodes (and their basis snapshots / delta chains) for
	// the rest of the search.
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// ErrNoVariables is returned for an empty problem.
var ErrNoVariables = errors.New("mip: problem has no variables")

// Solve runs branch and bound and returns the best integer-feasible
// solution found together with its optimality status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveContext(context.Background())
}

// SolveContext runs branch and bound under a context. When ctx fires
// mid-search the best incumbent found so far is returned with
// Status = lp.Canceled instead of being discarded, so deadline-bounded
// callers still receive a feasible (if unproven) solution.
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	if p.lp.NumVariables() == 0 {
		return nil, ErrNoVariables
	}
	opts := p.opts
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 200000
	}
	if lp.StructZero(opts.IntTol) {
		opts.IntTol = 1e-6
	}
	if lp.StructZero(opts.Gap) {
		opts.Gap = 1e-9
	}
	if opts.CutRounds == 0 {
		opts.CutRounds = 8
	}
	if opts.Tree == AlgoPlainTree || opts.Algorithm == lp.AlgoDenseTableau {
		return p.solveTree(ctx, opts, nil)
	}
	return p.solveStrengthened(ctx, opts)
}

// solveStrengthened presolves the instance, runs the strengthened tree
// on the reduced problem, and postsolves the answer back into the
// caller's variable space.
func (p *Problem) solveStrengthened(ctx context.Context, opts Options) (*Solution, error) {
	pre := presolveProblem(p, opts)
	if pre.infeasible {
		return &Solution{Status: lp.Infeasible, PresolveRemoved: pre.removed}, nil
	}
	if pre.unbounded {
		return &Solution{Status: lp.Unbounded, PresolveRemoved: pre.removed}, nil
	}
	if pre.red.lp.NumVariables() == 0 {
		// Presolve fixed everything: the instance is solved outright.
		x := pre.restore(nil)
		return &Solution{Status: lp.Optimal, Objective: pre.constant, X: x,
			Bound: pre.constant, PresolveRemoved: pre.removed}, nil
	}
	red := pre.red
	// The reduced problem inherits the caller's raw options: the final
	// bound reporting distinguishes explicitly-set gaps from defaults
	// through Problem.opts.
	red.opts = p.opts
	ropts := opts
	if inc := opts.Incumbent; inc != nil && len(inc) == p.lp.NumVariables() {
		ropts.Incumbent = pre.project(inc)
	} else {
		ropts.Incumbent = nil
	}
	// Warm-start artifacts cross the presolve boundary in the original
	// variable space: seeds are projected onto the kept variables here,
	// captures are lifted back below.
	ropts.SeedCuts = projectCuts(opts.SeedCuts, pre)
	ropts.SeedPseudo = projectPseudo(opts.SeedPseudo, pre, p.lp.NumVariables())
	sol, err := red.solveTree(ctx, ropts, pre)
	if err != nil {
		return nil, err
	}
	if sol.X != nil {
		sol.X = pre.restore(sol.X)
		sol.Objective += pre.constant
		sol.Bound += pre.constant
	}
	if sol.Cuts != nil {
		sol.Cuts = liftCuts(sol.Cuts, pre)
	}
	if sol.Pseudo != nil {
		sol.Pseudo = liftPseudo(sol.Pseudo, pre)
	}
	sol.PresolveRemoved = pre.removed
	return sol, nil
}

// solveTree is the shared branch-and-bound engine. With pre == nil it
// is the plain tree (the historical algorithm over chain nodes); with a
// presolve state it runs the root-strengthening pipeline — cutting
// planes, reduced-cost fixing, strong-branching-initialized pseudo-cost
// branching — before and during the search.
func (p *Problem) solveTree(ctx context.Context, opts Options, pre *presolveState) (*Solution, error) {
	// Remember original bounds so the Problem is reusable after Solve.
	orig := make([][2]float64, p.lp.NumVariables())
	for v := range orig {
		lo, hi := p.lp.Bounds(lp.Var(v))
		orig[v] = [2]float64{lo, hi}
	}
	defer func() {
		for v, b := range orig {
			p.lp.SetBounds(lp.Var(v), b[0], b[1])
		}
	}()

	p.lp.SetAlgorithm(opts.Algorithm)
	p.lp.SetPricing(opts.Pricing)

	s := &search{
		p:    p,
		ctx:  ctx,
		opts: opts,
	}
	// base starts as a copy of orig; reduced-cost fixing tightens it.
	s.base = make([][2]float64, len(orig))
	copy(s.base, orig)
	s.worst = math.Inf(1)
	if p.sense == lp.Maximize {
		s.worst = math.Inf(-1)
	}
	s.incObj = s.worst
	s.bestBound = -s.worst // trivial bound until the root relaxation solves
	s.interrupted = lp.Optimal

	if opts.Incumbent != nil {
		if obj, ok := p.evaluateIncumbent(opts.Incumbent); ok {
			s.incumbent = roundIntegers(opts.Incumbent, p.integer)
			s.incObj = obj
		}
	}

	s.q = &nodeQueue{min: p.sense == lp.Minimize}

	if ctx.Err() != nil {
		s.interrupted = lp.Canceled
		return s.finish(), nil
	}
	if done, err := s.root(pre); done || err != nil {
		if err != nil {
			return nil, err
		}
		return s.finish(), nil
	}

	for s.q.Len() > 0 {
		if s.nodes >= opts.MaxNodes {
			break
		}
		if ctx.Err() != nil {
			s.interrupted = lp.Canceled
			break
		}
		// Strong branching is lazy: only a tree that proved nontrivial
		// pays for root probes (small searches finish before the
		// threshold and skip the 2×strongBranchCandidates LPs).
		if s.pc != nil && !s.probed && !opts.NoStrongBranch && s.nodes >= strongBranchTrigger {
			s.probed = true
			s.applyBase()
			s.strongBranchInit(s.rootSol)
		}
		nd := heap.Pop(s.q).(*node)
		// Bound-based pruning against the incumbent.
		if s.incumbent != nil && !s.better(nd.relax, s.incObj+s.pruneSlack()) {
			continue
		}
		// Apply node bounds (base overlaid with the branch-delta
		// chain); a chain made empty by later reduced-cost fixing
		// prunes the node outright.
		if !s.applyNodeBounds(nd) {
			continue
		}
		s.nodes++

		sol, err := p.lp.SolveContextFrom(ctx, nd.basis)
		if err != nil {
			return nil, fmt.Errorf("mip: node relaxation: %w", err)
		}
		s.addEffort(sol)
		if sol.Warm {
			s.warmStarts++
		}
		if sol.Status == lp.Canceled || sol.Status == lp.IterLimit {
			// The node's subtree was not explored: push it back so its
			// relaxation stays part of the reported open bound, and keep
			// whatever incumbent exists instead of discarding it.
			s.interrupted = sol.Status
			heap.Push(s.q, nd)
			break
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// Unbounded below the (bounded) root: numerically impossible
			// for the paper's models; treat as exhausted.
			continue
		}
		if s.pc != nil && nd.branchVar >= 0 {
			s.pc.observe(int(nd.branchVar), nd.up, s.worsen(sol.Objective, nd.relax), nd.frac)
		}
		if s.incumbent != nil && !s.better(sol.Objective, s.incObj+s.pruneSlack()) {
			continue
		}

		branchVar := p.pickBranch(sol.X, opts, s.pc)
		if branchVar < 0 {
			// Integer feasible.
			s.foundIncumbent(sol.X, sol.Objective)
			continue
		}
		s.pushChildren(nd, branchVar, sol)
	}
	return s.finish(), nil
}

// search carries the state of one branch-and-bound run.
type search struct {
	p    *Problem
	ctx  context.Context
	opts Options
	q    *nodeQueue

	base  [][2]float64 // root bounds, tightened by reduced-cost fixing
	worst float64

	incumbent []float64
	incObj    float64
	bestBound float64

	nodes, pivots, refactors, devexResets, warmStarts int
	cutsAdded, varsFixed, strongBranches              int
	// interrupted records why the search stopped before exhausting the
	// tree: lp.Canceled (context fired) or lp.IterLimit (node budget or
	// a capped node relaxation). lp.Optimal means no interruption.
	interrupted   lp.Status
	rootUnbounded bool

	// rootSol is retained for the lazy strong-branching probes; probed
	// flips once they have run.
	rootSol *lp.Solution
	probed  bool

	pc *pseudoCosts

	// Reduced-cost fixing state from the final root LP (min-form).
	rootDj   []float64
	rootMin  float64
	rootSide []int8 // 1 = nonbasic at lower, 2 = at upper
	fixedVar []bool

	// Warm-start artifact capture (reduced space until the presolve
	// lift in solveStrengthened).
	capturedCuts []Cut
	cutsSeeded   int

	chainBuf []*node
}

func (s *search) better(a, b float64) bool {
	if s.p.sense == lp.Minimize {
		return a < b
	}
	return a > b
}

// worsen returns how much child degrades over parent in the worsening
// direction (always >= 0 up to LP noise).
func (s *search) worsen(child, parent float64) float64 {
	d := child - parent
	if s.p.sense == lp.Maximize {
		d = -d
	}
	if d < 0 {
		return 0
	}
	return d
}

// gapSlack is the total pruning slack: the absolute gap plus the
// relative gap scaled by the incumbent magnitude.
func (s *search) gapSlack() float64 {
	g := s.opts.Gap
	if s.opts.RelGap > 0 && s.incumbent != nil {
		g += s.opts.RelGap * math.Abs(s.incObj)
	}
	return g
}

// pruneSlack converts the gap into a signed slack for the "not better
// than incumbent" test.
func (s *search) pruneSlack() float64 {
	if s.p.sense == lp.Minimize {
		return -s.gapSlack()
	}
	return s.gapSlack()
}

func (s *search) addEffort(sol *lp.Solution) {
	s.pivots += sol.Iterations
	s.refactors += sol.Refactorizations
	s.devexResets += sol.DevexResets
}

// minForm converts a user-sense objective value to minimization form.
func (s *search) minForm(v float64) float64 {
	if s.p.sense == lp.Maximize {
		return -v
	}
	return v
}

// applyBase installs the root bounds on every variable.
func (s *search) applyBase() {
	for v, b := range s.base {
		s.p.lp.SetBounds(lp.Var(v), b[0], b[1])
	}
}

// applyNodeBounds installs base plus the node's branch-delta chain
// (leaf-most delta wins, each intersected with base). It reports false
// when a delta is emptied by later reduced-cost fixing — the node's
// subtree then holds no improving solution and is pruned.
func (s *search) applyNodeBounds(nd *node) bool {
	s.applyBase()
	s.chainBuf = s.chainBuf[:0]
	for c := nd; c != nil && c.branchVar >= 0; c = c.parent {
		s.chainBuf = append(s.chainBuf, c)
	}
	for i := len(s.chainBuf) - 1; i >= 0; i-- {
		c := s.chainBuf[i]
		lo, hi := c.lo, c.hi
		b := s.base[c.branchVar]
		if lo < b[0] {
			lo = b[0]
		}
		if hi > b[1] {
			hi = b[1]
		}
		if lo > hi {
			return false
		}
		s.p.lp.SetBounds(c.branchVar, lo, hi)
	}
	return true
}

// foundIncumbent installs a better integer-feasible point and re-runs
// reduced-cost fixing against the improved cutoff.
func (s *search) foundIncumbent(x []float64, obj float64) {
	if s.incumbent != nil && !s.better(obj, s.incObj) {
		return
	}
	s.incumbent = roundIntegers(x, s.p.integer)
	s.incObj = obj
	s.reducedCostFix()
}

// pushChildren enqueues the floor/ceil children of branching on v.
func (s *search) pushChildren(nd *node, v lp.Var, sol *lp.Solution) {
	val := sol.X[v]
	lo, hi := s.p.lp.Bounds(v)
	frac := val - math.Floor(val)
	// With non-integral user bounds a rounded child range can be
	// empty; such a child is simply infeasible and not enqueued.
	if dn := math.Floor(val); dn >= lo {
		heap.Push(s.q, &node{parent: nd, branchVar: v, lo: lo, hi: dn,
			relax: sol.Objective, depth: nd.depth + 1, basis: sol.Basis(), up: false, frac: frac})
	}
	if up := math.Ceil(val); up <= hi {
		heap.Push(s.q, &node{parent: nd, branchVar: v, lo: up, hi: hi,
			relax: sol.Objective, depth: nd.depth + 1, basis: sol.Basis(), up: true, frac: frac})
	}
}

// root solves the root relaxation and, on the strengthened path, runs
// the cutting-plane loop, reduced-cost fixing and strong-branching
// pseudo-cost initialization. It returns done == true when the search
// is already decided (infeasible, unbounded, interrupted, integral
// root, or root bound dominated by the incumbent).
func (s *search) root(pre *presolveState) (done bool, err error) {
	p, opts := s.p, s.opts
	strengthen := pre != nil
	wantDuals := strengthen && !opts.NoFixing
	if wantDuals {
		p.lp.SetExtractDuals(true)
		defer p.lp.SetExtractDuals(false)
	}

	s.nodes++
	sol, err := p.lp.SolveContext(s.ctx)
	if err != nil {
		return false, fmt.Errorf("mip: root relaxation: %w", err)
	}
	s.addEffort(sol)
	switch sol.Status {
	case lp.Canceled, lp.IterLimit:
		s.interrupted = sol.Status
		return true, nil
	case lp.Infeasible:
		return true, nil
	case lp.Unbounded:
		s.rootUnbounded = true
		return true, nil
	}
	s.bestBound = sol.Objective

	if s.incumbent != nil && !s.better(sol.Objective, s.incObj+s.pruneSlack()) {
		// The incumbent already matches the root bound: exhausted.
		return true, nil
	}

	if strengthen && len(opts.SeedCuts) > 0 {
		sol = s.injectSeedCuts(sol)
		if s.interrupted != lp.Optimal {
			return true, nil
		}
	}
	if strengthen && !opts.NoCuts {
		sol = s.cutLoop(sol)
		if s.interrupted != lp.Optimal {
			return true, nil
		}
	}
	if wantDuals && sol.ReducedCosts != nil {
		s.captureRootDuals(sol)
		s.reducedCostFix()
	}

	branchVar := p.pickBranch(sol.X, opts, nil)
	if branchVar < 0 {
		s.foundIncumbent(sol.X, sol.Objective)
		return true, nil
	}
	if strengthen && opts.Branching == PseudoCost {
		// Pseudo-cost state; strong-branching initialization is lazy
		// (triggered by the tree loop at strongBranchTrigger nodes) so
		// small searches never pay for the probes.
		s.pc = newPseudoCosts(p.lp.NumVariables())
		if s.pc.seed(opts.SeedPseudo) {
			// A seeded table stands in for the strong-branching probes:
			// the estimates it carries came from real branching history,
			// which is exactly what the probes approximate.
			s.probed = true
		}
		s.rootSol = sol
		branchVar = p.pickBranch(sol.X, opts, s.pc)
		if branchVar < 0 {
			// Unreachable in practice (the LP point did not change),
			// but stay safe.
			s.foundIncumbent(sol.X, sol.Objective)
			return true, nil
		}
	}
	rootNode := &node{branchVar: -1, relax: sol.Objective}
	s.pushChildren(rootNode, branchVar, sol)
	return false, nil
}

// captureRootDuals stores the min-form reduced costs and bound sides of
// the final root LP for (repeated) reduced-cost fixing.
func (s *search) captureRootDuals(sol *lp.Solution) {
	n := s.p.lp.NumVariables()
	s.rootDj = make([]float64, n)
	s.rootSide = make([]int8, n)
	s.fixedVar = make([]bool, n)
	s.rootMin = s.minForm(sol.Objective)
	for j := 0; j < n; j++ {
		dj := sol.ReducedCosts[j]
		if s.p.sense == lp.Maximize {
			dj = -dj
		}
		s.rootDj[j] = dj
		lo, hi := s.base[j][0], s.base[j][1]
		x := sol.X[j]
		switch {
		case x <= lo+1e-7:
			s.rootSide[j] = 1
		case !math.IsInf(hi, 1) && x >= hi-1e-7:
			s.rootSide[j] = 2
		}
	}
}

// reducedCostFix permanently fixes integer variables whose root reduced
// cost proves that moving them off their root bound cannot beat the
// incumbent cutoff. The test mirrors the tree's pruning rule exactly,
// so fixing can drop alternate optima but never the objective value.
func (s *search) reducedCostFix() {
	if s.rootDj == nil || s.incumbent == nil || s.opts.NoFixing {
		return
	}
	cutoff := s.minForm(s.incObj) - s.gapSlack()
	for j, isInt := range s.p.integer {
		if !isInt || s.fixedVar[j] {
			continue
		}
		lo, hi := s.base[j][0], s.base[j][1]
		if hi-lo < 1-1e-9 {
			continue
		}
		dj := s.rootDj[j]
		switch s.rootSide[j] {
		case 1: // nonbasic at lower; moving up one unit costs dj
			if dj > epsFix && s.rootMin+dj >= cutoff {
				s.base[j] = [2]float64{lo, lo}
				s.fixedVar[j] = true
				s.varsFixed++
			}
		case 2: // nonbasic at upper; moving down one unit costs -dj
			if dj < -epsFix && s.rootMin-dj >= cutoff {
				s.base[j] = [2]float64{hi, hi}
				s.fixedVar[j] = true
				s.varsFixed++
			}
		}
	}
}

// epsFix is the minimum reduced-cost magnitude considered for fixing.
const epsFix = 1e-9

// finish assembles the Solution exactly as the historical tree did.
func (s *search) finish() *Solution {
	if s.rootUnbounded {
		return s.attachWarm(&Solution{Status: lp.Unbounded, Nodes: s.nodes, Pivots: s.pivots,
			Refactorizations: s.refactors, DevexResets: s.devexResets, WarmStarts: s.warmStarts,
			CutsAdded: s.cutsAdded, VarsFixed: s.varsFixed, StrongBranches: s.strongBranches})
	}
	// On an early stop the best-first queue's top relaxation is the best
	// still-open bound; combine it with the proven root bound, and never
	// claim a bound beyond the incumbent's own value.
	if s.q.Len() > 0 {
		open := s.q.items[0].relax
		if s.better(s.bestBound, open) {
			s.bestBound = open
		}
		if s.incumbent != nil && s.better(s.incObj, s.bestBound) {
			s.bestBound = s.incObj
		}
	}
	if s.incumbent == nil {
		st := lp.Infeasible
		switch {
		case s.interrupted != lp.Optimal:
			st = s.interrupted
		case s.nodes >= s.opts.MaxNodes:
			st = lp.IterLimit
		}
		return s.attachWarm(&Solution{Status: st, Nodes: s.nodes, Pivots: s.pivots,
			Refactorizations: s.refactors, DevexResets: s.devexResets, WarmStarts: s.warmStarts,
			CutsAdded: s.cutsAdded, VarsFixed: s.varsFixed, StrongBranches: s.strongBranches})
	}
	st := lp.Optimal
	switch {
	case s.interrupted != lp.Optimal:
		// Even with an empty queue the interrupted node may hide better
		// solutions, so an interrupted search never claims optimality.
		st = s.interrupted
	case s.q.Len() > 0 && s.nodes >= s.opts.MaxNodes:
		st = lp.IterLimit
	default:
		// The tree is exhausted: the incumbent is optimal within the
		// pruning gap, so with a caller-set gap the proven bound is
		// incObj − slack (minimize). Under the near-zero conservative
		// default this is optimality proper and Bound = Objective.
		s.bestBound = s.incObj
		if s.p.opts.Gap > 0 || s.p.opts.RelGap > 0 {
			s.bestBound = s.incObj + s.pruneSlack()
		}
	}
	return s.attachWarm(&Solution{Status: st, Objective: s.incObj, X: s.incumbent, Nodes: s.nodes,
		Pivots: s.pivots, Bound: s.bestBound,
		Refactorizations: s.refactors, DevexResets: s.devexResets, WarmStarts: s.warmStarts,
		CutsAdded: s.cutsAdded, VarsFixed: s.varsFixed, StrongBranches: s.strongBranches})
}

// evaluateIncumbent validates a warm-start solution: feasible for the
// LP and integral on integer variables.
func (p *Problem) evaluateIncumbent(x []float64) (float64, bool) {
	if len(x) != p.lp.NumVariables() {
		return 0, false
	}
	for j, isInt := range p.integer {
		if isInt && math.Abs(x[j]-math.Round(x[j])) > 1e-6 {
			return 0, false
		}
	}
	return p.lp.Evaluate(x)
}

// pickBranch returns the integer variable to branch on, or -1 when x is
// integer feasible. pc drives pseudo-cost scoring and may be nil, in
// which case PseudoCost degrades to MostFractional.
func (p *Problem) pickBranch(x []float64, opts Options, pc *pseudoCosts) lp.Var {
	rule := opts.Branching
	if rule == PseudoCost && pc == nil {
		rule = MostFractional
	}
	best := lp.Var(-1)
	bestScore := -1.0
	for j, isInt := range p.integer {
		if !isInt {
			continue
		}
		frac := x[j] - math.Floor(x[j])
		if frac < opts.IntTol || frac > 1-opts.IntTol {
			continue
		}
		var score float64
		switch rule {
		case FirstFractional:
			return lp.Var(j)
		case MostFractional:
			score = math.Min(frac, 1-frac)
		case PseudoCost:
			score = pc.score(j, frac)
		}
		if score > bestScore {
			bestScore = score
			best = lp.Var(j)
		}
	}
	return best
}

func roundIntegers(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}
