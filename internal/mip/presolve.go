package mip

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

// This file implements the presolve pass of the root-strengthened
// pipeline: before the root LP ever runs, fixed and empty columns are
// removed, singleton rows become bounds, dominated and duplicate rows
// are dropped, integer bounds are rounded, and row-activity arguments
// tighten binary bounds. A postsolve map restores the original variable
// space, so every caller sees full-length solution vectors regardless
// of how much was removed.

const (
	epsPre = 1e-9
	// preMaxPasses bounds the fixpoint iteration.
	preMaxPasses = 8
	// preDomRowCap disables the O(m²) row-domination pass on very wide
	// models; everything else in presolve is near-linear.
	preDomRowCap = 3000
)

// prow is a normalized constraint: GE rows are negated into LE, terms
// are accumulated per variable, and substituted (fixed) variables fold
// into rhs.
type prow struct {
	vars  []int
	coefs []float64
	rel   lp.Rel // LE or EQ
	rhs   float64
	dead  bool
}

// presolveState maps between the caller's variable space and the
// reduced problem solved by the strengthened tree.
type presolveState struct {
	origVars   int
	keep       []int     // reduced index → original variable
	mapTo      []int     // original variable → reduced index, -1 if removed
	fixedVal   []float64 // value of removed variables
	constant   float64   // objective contribution of removed variables
	removed    int       // columns + rows removed
	infeasible bool
	unbounded  bool
	red        *Problem
}

// restore expands a reduced-space solution vector into the original
// variable space (xRed may be nil only when no variables were kept).
func (ps *presolveState) restore(xRed []float64) []float64 {
	full := make([]float64, ps.origVars)
	for j := range full {
		if k := ps.mapTo[j]; k >= 0 {
			full[j] = xRed[k]
		} else {
			full[j] = ps.fixedVal[j]
		}
	}
	return full
}

// project maps an original-space point onto the kept variables (used to
// translate warm-start incumbents; feasibility is re-validated by the
// tree, so optimality-based presolve fixes can only drop, not corrupt,
// a warm start).
func (ps *presolveState) project(x []float64) []float64 {
	out := make([]float64, len(ps.keep))
	for k, j := range ps.keep {
		out[k] = x[j]
	}
	return out
}

// normalizeRows converts the first nRows constraints of p.lp into prow
// form: per-variable accumulated coefficients, GE negated into LE.
func normalizeRows(p *Problem, nRows int) []*prow {
	n := p.lp.NumVariables()
	idx := make([]int, n)
	for j := range idx {
		idx[j] = -1
	}
	rows := make([]*prow, 0, nRows)
	for i := 0; i < nRows; i++ {
		rel, rhs, terms := p.lp.ConstraintRow(i)
		r := &prow{rel: rel, rhs: rhs}
		for _, t := range terms {
			j := int(t.Var)
			if k := idx[j]; k >= 0 {
				r.coefs[k] += t.Coef
			} else {
				idx[j] = len(r.vars)
				r.vars = append(r.vars, j)
				r.coefs = append(r.coefs, t.Coef)
			}
		}
		for _, j := range r.vars {
			idx[j] = -1
		}
		// Drop exact zero coefficients produced by cancellation.
		w := 0
		for k := range r.vars {
			if !lp.StructZero(r.coefs[k]) {
				r.vars[w], r.coefs[w] = r.vars[k], r.coefs[k]
				w++
			}
		}
		r.vars, r.coefs = r.vars[:w], r.coefs[:w]
		if rel == lp.GE {
			r.rel = lp.LE
			r.rhs = -r.rhs
			for k := range r.coefs {
				r.coefs[k] = -r.coefs[k]
			}
		}
		rows = append(rows, r)
	}
	return rows
}

// presolver is the working state of one presolve run.
type presolver struct {
	p        *Problem
	lo, hi   []float64
	fixed    []bool
	fixedVal []float64
	rows     []*prow
	colRows  [][]int32 // variable → indices of rows containing it
	st       *presolveState
	minCost  []float64 // sense-adjusted (minimization) objective costs
}

// presolveProblem reduces p behind a postsolve map. With opts.NoPresolve
// it still builds the identity mapping (cuts and fixing run on a clone
// of the model either way, keeping the caller's Problem untouched).
func presolveProblem(p *Problem, opts Options) *presolveState {
	n := p.lp.NumVariables()
	ps := &presolveState{origVars: n}
	pr := &presolver{
		p:        p,
		lo:       make([]float64, n),
		hi:       make([]float64, n),
		fixed:    make([]bool, n),
		fixedVal: make([]float64, n),
		rows:     normalizeRows(p, p.lp.NumConstraints()),
		st:       ps,
		minCost:  make([]float64, n),
	}
	for j := 0; j < n; j++ {
		pr.lo[j], pr.hi[j] = p.lp.Bounds(lp.Var(j))
		c := p.lp.Cost(lp.Var(j))
		if p.sense == lp.Maximize {
			c = -c
		}
		pr.minCost[j] = c
	}
	pr.buildColRows()

	if !opts.NoPresolve {
		pr.run()
	}
	if ps.infeasible || ps.unbounded {
		return ps
	}
	pr.build()
	return ps
}

func (pr *presolver) buildColRows() {
	pr.colRows = make([][]int32, len(pr.lo))
	for i, r := range pr.rows {
		for _, j := range r.vars {
			pr.colRows[j] = append(pr.colRows[j], int32(i))
		}
	}
}

// fix pins variable j to v and substitutes it out of every row.
func (pr *presolver) fix(j int, v float64) bool {
	if v < pr.lo[j]-1e-6 || v > pr.hi[j]+1e-6 {
		pr.st.infeasible = true
		return false
	}
	pr.fixed[j] = true
	pr.fixedVal[j] = v
	pr.lo[j], pr.hi[j] = v, v
	for _, ri := range pr.colRows[j] {
		r := pr.rows[ri]
		if r.dead {
			continue
		}
		for k, vj := range r.vars {
			if vj == j && !lp.StructZero(r.coefs[k]) {
				r.rhs -= r.coefs[k] * v
				r.coefs[k] = 0
			}
		}
	}
	return true
}

// roundIntBounds snaps integer variable bounds to integers; a crossed
// range is infeasible.
func (pr *presolver) roundIntBounds() bool {
	changed := false
	for j, isInt := range pr.p.integer {
		if !isInt || pr.fixed[j] {
			continue
		}
		nlo := math.Ceil(pr.lo[j] - 1e-9)
		nhi := pr.hi[j]
		if !math.IsInf(nhi, 1) {
			nhi = math.Floor(nhi + 1e-9)
		}
		if nlo > pr.lo[j]+epsPre || nhi < pr.hi[j]-epsPre {
			changed = true
		}
		pr.lo[j], pr.hi[j] = nlo, nhi
		if nlo > nhi+epsPre {
			pr.st.infeasible = true
			return changed
		}
	}
	return changed
}

// activity returns the minimum and maximum of Σ coefs·x over the live
// variables' boxes, together with the live variable count.
func (pr *presolver) activity(r *prow) (minAct, maxAct float64, live int) {
	for k, j := range r.vars {
		a := r.coefs[k]
		if lp.StructZero(a) || pr.fixed[j] {
			continue
		}
		live++
		if a > 0 {
			minAct += a * pr.lo[j]
			maxAct += a * pr.hi[j] // +inf propagates
		} else {
			minAct += a * pr.hi[j] // -inf propagates
			maxAct += a * pr.lo[j]
		}
	}
	return minAct, maxAct, live
}

// run iterates the reductions to a fixpoint (bounded by preMaxPasses).
func (pr *presolver) run() {
	if pr.roundIntBounds(); pr.st.infeasible {
		return
	}
	for pass := 0; pass < preMaxPasses; pass++ {
		changed := false
		// Detect newly fixed columns (bounds collapsed).
		for j := range pr.lo {
			if !pr.fixed[j] && pr.hi[j]-pr.lo[j] <= epsPre {
				if !pr.fix(j, pr.lo[j]) {
					return
				}
				changed = true
			}
		}
		for _, r := range pr.rows {
			if r.dead {
				continue
			}
			if pr.reduceRow(r) {
				changed = true
			}
			if pr.st.infeasible {
				return
			}
		}
		if pr.roundIntBounds() {
			changed = true
		}
		if pr.st.infeasible {
			return
		}
		if !changed {
			break
		}
	}
	pr.dropDuplicateRows()
	if pr.st.infeasible {
		return
	}
	pr.dropDominatedRows()
	pr.removeEmptyColumns()
}

// reduceRow applies empty/singleton/redundancy handling plus
// activity-based binary tightening to one row. It reports whether
// anything changed.
func (pr *presolver) reduceRow(r *prow) bool {
	minAct, maxAct, live := pr.activity(r)
	switch live {
	case 0:
		switch r.rel {
		case lp.LE:
			if r.rhs < -epsRowFeas {
				pr.st.infeasible = true
				return false
			}
		case lp.EQ:
			if math.Abs(r.rhs) > epsRowFeas {
				pr.st.infeasible = true
				return false
			}
		}
		r.dead = true
		pr.st.removed++
		return true
	case 1:
		// Singleton row → bound, then the row dies.
		for k, j := range r.vars {
			a := r.coefs[k]
			if lp.StructZero(a) || pr.fixed[j] {
				continue
			}
			bound := r.rhs / a
			switch {
			case r.rel == lp.EQ:
				if pr.p.integer[j] {
					// An integer pinned to a non-integral value is an
					// infeasibility the activity arguments cannot see.
					if math.Abs(bound-math.Round(bound)) > 1e-6 {
						pr.st.infeasible = true
						return false
					}
					bound = math.Round(bound)
				}
				if bound < pr.lo[j]-1e-6 || bound > pr.hi[j]+1e-6 {
					pr.st.infeasible = true
					return false
				}
				if !pr.fix(j, clamp(bound, pr.lo[j], pr.hi[j])) {
					return false
				}
			case a > 0:
				if bound < pr.hi[j] {
					pr.hi[j] = bound
				}
			default:
				if bound > pr.lo[j] {
					pr.lo[j] = bound
				}
			}
			if pr.lo[j] > pr.hi[j]+1e-9 {
				pr.st.infeasible = true
				return false
			}
		}
		r.dead = true
		pr.st.removed++
		return true
	}
	switch r.rel {
	case lp.LE:
		if minAct > r.rhs+epsRowFeas {
			pr.st.infeasible = true
			return false
		}
		if maxAct <= r.rhs+epsRowFeas {
			// Redundant: satisfied by every point in the box.
			r.dead = true
			pr.st.removed++
			return true
		}
	case lp.EQ:
		if minAct > r.rhs+epsRowFeas || maxAct < r.rhs-epsRowFeas {
			pr.st.infeasible = true
			return false
		}
	}
	return pr.tightenBinaries(r, minAct, maxAct)
}

// tightenBinaries applies the activity argument to every live binary of
// the row: a binary whose 0 or 1 setting already violates the row's
// achievable activity range is fixed the other way.
func (pr *presolver) tightenBinaries(r *prow, minAct, maxAct float64) bool {
	changed := false
	for k, j := range r.vars {
		a := r.coefs[k]
		if lp.StructZero(a) || pr.fixed[j] || !pr.p.integer[j] || !lp.StructZero(pr.lo[j]) || !lp.ExactEq(pr.hi[j], 1) {
			continue
		}
		// minAct counts min(0, a) for this binary; setting x_j = s
		// contributes a·s instead.
		minContrib := math.Min(a, 0)
		if !math.IsInf(minAct, -1) {
			if minAct-minContrib+a > r.rhs+epsRowFeas { // x_j = 1 impossible
				if !pr.fix(j, 0) {
					return changed
				}
				changed = true
				minAct, maxAct, _ = pr.activity(r)
				continue
			}
			if minAct-minContrib > r.rhs+epsRowFeas { // x_j = 0 impossible
				if !pr.fix(j, 1) {
					return changed
				}
				changed = true
				minAct, maxAct, _ = pr.activity(r)
				continue
			}
		}
		if r.rel == lp.EQ && !math.IsInf(maxAct, 1) {
			maxContrib := math.Max(a, 0)
			if maxAct-maxContrib+a < r.rhs-epsRowFeas { // x_j = 1 cannot reach rhs
				if !pr.fix(j, 0) {
					return changed
				}
				changed = true
				minAct, maxAct, _ = pr.activity(r)
				continue
			}
			if maxAct-maxContrib < r.rhs-epsRowFeas { // x_j = 0 cannot reach rhs
				if !pr.fix(j, 1) {
					return changed
				}
				changed = true
				minAct, maxAct, _ = pr.activity(r)
			}
		}
	}
	return changed
}

// liveEntries returns the live (variable, coefficient) pairs of a row
// sorted by variable index.
func (pr *presolver) liveEntries(r *prow) ([]int, []float64) {
	var vars []int
	var coefs []float64
	for k, j := range r.vars {
		if !lp.StructZero(r.coefs[k]) && !pr.fixed[j] {
			vars = append(vars, j)
			coefs = append(coefs, r.coefs[k])
		}
	}
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vars[order[a]] < vars[order[b]] })
	sv := make([]int, len(vars))
	sc := make([]float64, len(vars))
	for i, o := range order {
		sv[i], sc[i] = vars[o], coefs[o]
	}
	return sv, sc
}

// dropDuplicateRows removes rows with identical live terms, keeping the
// tightest rhs (LE: smallest; EQ with differing rhs is infeasible).
func (pr *presolver) dropDuplicateRows() {
	seen := make(map[string]*prow, len(pr.rows))
	for _, r := range pr.rows {
		if r.dead {
			continue
		}
		vars, coefs := pr.liveEntries(r)
		key := fmt.Sprintf("%v|%v|%v", r.rel, vars, coefs)
		first, dup := seen[key]
		if !dup {
			seen[key] = r
			continue
		}
		switch r.rel {
		case lp.LE:
			if r.rhs < first.rhs {
				first.rhs = r.rhs
			}
		case lp.EQ:
			if math.Abs(r.rhs-first.rhs) > epsRowFeas {
				pr.st.infeasible = true
				return
			}
		}
		r.dead = true
		pr.st.removed++
	}
}

// dropDominatedRows removes LE rows implied by another LE row: row A is
// dominated by B when every coefficient of B is ≥ A's (missing terms
// count as 0), B's rhs is ≤ A's, and every variable where they differ
// has a nonnegative lower bound (so Σ aᵢxᵢ ≤ Σ bᵢxᵢ ≤ rhs_B ≤ rhs_A).
func (pr *presolver) dropDominatedRows() {
	var cand []*prow
	for _, r := range pr.rows {
		if !r.dead && r.rel == lp.LE {
			cand = append(cand, r)
		}
	}
	if len(cand) < 2 || len(cand) > preDomRowCap {
		return
	}
	type entry struct {
		vars  []int
		coefs []float64
	}
	entries := make([]entry, len(cand))
	for i, r := range cand {
		entries[i].vars, entries[i].coefs = pr.liveEntries(r)
	}
	coefOf := func(e entry, j int) (float64, bool) {
		k := sort.SearchInts(e.vars, j)
		if k < len(e.vars) && e.vars[k] == j {
			return e.coefs[k], true
		}
		return 0, false
	}
	dominates := func(b, a int) bool { // does cand[b] imply cand[a]?
		if cand[b].rhs > cand[a].rhs+epsPre {
			return false
		}
		// Every variable of either row must satisfy bCoef ≥ aCoef, and
		// wherever they differ the variable must be nonnegative.
		check := func(j int, ac, bc float64) bool {
			if bc < ac-epsPre {
				return false
			}
			if math.Abs(bc-ac) > epsPre && pr.lo[j] < -epsPre {
				return false
			}
			return true
		}
		for k, j := range entries[a].vars {
			bc, _ := coefOf(entries[b], j)
			if !check(j, entries[a].coefs[k], bc) {
				return false
			}
		}
		for k, j := range entries[b].vars {
			if _, in := coefOf(entries[a], j); in {
				continue
			}
			if !check(j, 0, entries[b].coefs[k]) {
				return false
			}
		}
		return true
	}
	for a := range cand {
		if cand[a].dead {
			continue
		}
		for b := range cand {
			if a == b || cand[b].dead {
				continue
			}
			if dominates(b, a) {
				// Symmetric pairs (mutual domination) keep the lower index.
				if dominates(a, b) && a < b {
					continue
				}
				cand[a].dead = true
				pr.st.removed++
				break
			}
		}
	}
}

// removeEmptyColumns fixes variables that appear in no live row at
// their objective-preferred bound.
func (pr *presolver) removeEmptyColumns() {
	inRow := make([]bool, len(pr.lo))
	for _, r := range pr.rows {
		if r.dead {
			continue
		}
		for k, j := range r.vars {
			if !lp.StructZero(r.coefs[k]) && !pr.fixed[j] {
				inRow[j] = true
			}
		}
	}
	for j := range pr.lo {
		if pr.fixed[j] || inRow[j] {
			continue
		}
		c := pr.minCost[j]
		switch {
		case c >= 0:
			if !pr.fix(j, pr.lo[j]) {
				return
			}
		default:
			if math.IsInf(pr.hi[j], 1) {
				pr.st.unbounded = true
				return
			}
			if !pr.fix(j, pr.hi[j]) {
				return
			}
		}
	}
}

// build assembles the reduced Problem and the postsolve maps.
func (pr *presolver) build() {
	st := pr.st
	n := len(pr.lo)
	st.mapTo = make([]int, n)
	st.fixedVal = make([]float64, n)
	red := NewProblem(pr.p.sense)
	for j := 0; j < n; j++ {
		if pr.fixed[j] {
			st.mapTo[j] = -1
			st.fixedVal[j] = pr.fixedVal[j]
			st.constant += pr.p.lp.Cost(lp.Var(j)) * pr.fixedVal[j]
			st.removed++
			continue
		}
		st.mapTo[j] = len(st.keep)
		st.keep = append(st.keep, j)
		name := pr.p.lp.VarName(lp.Var(j))
		if pr.p.integer[j] {
			red.AddIntegerVariable(name, pr.lo[j], pr.hi[j], pr.p.lp.Cost(lp.Var(j)))
		} else {
			red.AddVariable(name, pr.lo[j], pr.hi[j], pr.p.lp.Cost(lp.Var(j)))
		}
	}
	for _, r := range pr.rows {
		if r.dead {
			continue
		}
		var terms []lp.Term
		for k, j := range r.vars {
			if !lp.StructZero(r.coefs[k]) && !pr.fixed[j] {
				terms = append(terms, lp.Term{Var: lp.Var(st.mapTo[j]), Coef: r.coefs[k]})
			}
		}
		red.AddConstraint(r.rel, r.rhs, terms...)
	}
	st.red = red
}

// epsRowFeas is the row-violation tolerance presolve shares with the
// LP's Evaluate (kept equal so presolve never declares a point the LP
// accepts infeasible).
const epsRowFeas = 1e-6

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
