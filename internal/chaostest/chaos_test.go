package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/passive"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/traffic"
)

var (
	faultSeed     = flag.Int64("fault-seed", 0, "run the chaos storm under this single fault seed instead of the built-in pair")
	chaosRequests = flag.Int("chaos-requests", 1000, "requests per chaos storm seed")
)

// flakySolver fails every third call, so the service's fallback
// ladder and degraded-response provenance are continuously exercised
// during the storm.
type flakySolver struct{ calls atomic.Int64 }

const flakyName = "tap/chaos-flaky"

func (f *flakySolver) Name() string { return flakyName }

func (f *flakySolver) Solve(ctx context.Context, problem repro.Problem, opts ...repro.Option) (*repro.Result, error) {
	if f.calls.Add(1)%3 == 0 {
		return nil, errors.New("chaos: flaky primary failure")
	}
	return repro.Solve(ctx, repro.SolverTapGreedyGain, problem, opts...)
}

var registerFlaky sync.Once

func needFlaky(t *testing.T) {
	t.Helper()
	registerFlaky.Do(func() {
		if err := repro.RegisterSolver(&flakySolver{}); err != nil {
			panic(err)
		}
	})
}

// chaosReq is one request shape of the storm mix; its instance is the
// replay-verification oracle.
type chaosReq struct {
	solver   string
	family   string
	size     int
	seed     int64
	coverage float64
}

func (r chaosReq) body() []byte {
	b, err := json.Marshal(map[string]any{
		"solver": r.solver, "family": r.family, "size": r.size,
		"seed": r.seed, "coverage": r.coverage,
	})
	if err != nil {
		panic(err)
	}
	return b
}

// stormMix cycles heuristic, exact, flaky and MIP solvers over two
// families, two sizes and three scenario seeds, so the storm reaches
// the greedy path, the parallel branch-and-bound, the fallback
// ladder, and the LP warm-start machinery its lp/factor fault targets.
func stormMix() []chaosReq {
	var mix []chaosReq
	for _, solver := range []string{repro.SolverTapGreedyGain, repro.SolverTapExact, flakyName} {
		for _, family := range []string{"waxman", "metro"} {
			for _, size := range []int{16, 20} {
				for seed := int64(1); seed <= 3; seed++ {
					mix = append(mix, chaosReq{solver, family, size, seed, 0.9})
				}
			}
		}
	}
	mix = append(mix, chaosReq{repro.SolverTapILP, "waxman", 16, 1, 0.9})
	return mix
}

// instances builds the replay oracle once per request shape.
func instances(t *testing.T, mix []chaosReq) map[string]*core.Instance {
	t.Helper()
	byTriple := make(map[string]*core.Instance)
	for _, r := range mix {
		key := fmt.Sprintf("%s/%d/%d", r.family, r.size, r.seed)
		if _, ok := byTriple[key]; ok {
			continue
		}
		sc, err := scenario.Generate(r.family, r.size, r.seed)
		if err != nil {
			t.Fatal(err)
		}
		in, err := traffic.Route(sc.POP, sc.Demands)
		if err != nil {
			t.Fatal(err)
		}
		byTriple[key] = in
	}
	return byTriple
}

// verifyFeasible replays a 200 response against the independently
// regenerated instance: the placement must meet the coverage target,
// and the claimed fraction must match the replayed one.
func verifyFeasible(t *testing.T, oracle map[string]*core.Instance, req chaosReq, body []byte) {
	t.Helper()
	var sr struct {
		Result *repro.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.Result == nil {
		t.Fatalf("200 body does not decode as a solve response: %v\n%s", err, body)
	}
	res := sr.Result
	if res.Taps == nil {
		t.Fatalf("solver %s answered 200 without a tap placement:\n%s", req.solver, body)
	}
	if res.Degraded && res.FallbackSolver == "" {
		t.Fatalf("degraded response without fallback provenance:\n%s", body)
	}
	in := oracle[fmt.Sprintf("%s/%d/%d", req.family, req.size, req.seed)]
	_, frac := passive.Coverage(in, res.Taps.Edges)
	if frac+1e-9 < req.coverage {
		t.Fatalf("placement replay-verifies to %.4f coverage, below the %.2f target:\n%s", frac, req.coverage, body)
	}
	if math.Abs(frac-res.Taps.Fraction) > 1e-9 {
		t.Fatalf("claimed coverage fraction %.6f differs from replayed %.6f:\n%s", res.Taps.Fraction, frac, body)
	}
}

// metric scrapes one un-labeled sample from /metrics.
func metric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s not exposed", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return v
}

// TestChaosStorm is the harness's main event: >= 1000 requests per
// seed against an in-process placementd while seeded faults panic,
// fail, delay and corrupt underneath it.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm takes seconds; run without -short")
	}
	seeds := []int64{1, 2}
	if *faultSeed != 0 {
		seeds = []int64{*faultSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { storm(t, seed) })
	}
}

func storm(t *testing.T, seed int64) {
	needFlaky(t)
	dir := t.TempDir()
	cfg := service.Config{CacheDir: dir, Workers: 4, MaxInFlight: 8, MaxQueue: 256}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mix := stormMix()
	oracle := instances(t, mix)

	reg := fault.NewRegistry(seed)
	reg.Set(fault.PointHandler, fault.Schedule{P: 0.01, Panic: true})
	reg.Add(fault.PointHandler, fault.Schedule{P: 0.02, Err: errors.New("chaos: injected handler error")})
	reg.Add(fault.PointHandler, fault.Schedule{P: 0.05, Delay: time.Millisecond})
	reg.Set(fault.PointEngineTask, fault.Schedule{P: 0.03, Err: errors.New("chaos: injected task error")})
	reg.Set(fault.PointCacheStore, fault.Schedule{Every: 3, Corrupt: true})
	reg.Set(fault.PointLPFactor, fault.Schedule{P: 0.5})
	fault.Activate(reg)
	defer fault.Deactivate()

	n := *chaosRequests
	cl := client.New(ts.URL,
		client.WithRetries(3),
		client.WithBackoff(time.Millisecond, 20*time.Millisecond),
		client.WithSeed(seed))

	type outcome struct {
		status int // -1 = no HTTP response at all
		body   []byte
	}
	outcomes := make([]outcome, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out, err := cl.Post(context.Background(), "/v1/solve", mix[i%len(mix)].body())
				if err != nil {
					outcomes[i] = outcome{status: -1, body: []byte(err.Error())}
					continue
				}
				outcomes[i] = outcome{status: out.Status, body: out.Body}
			}
		}()
	}
	wg.Wait()
	fault.Deactivate()

	counts := map[int]int{}
	degraded := 0
	for i, o := range outcomes {
		counts[o.status]++
		req := mix[i%len(mix)]
		switch o.status {
		case -1:
			t.Fatalf("request %d got no HTTP response — the in-process daemon dropped it: %s", i, o.body)
		case http.StatusOK:
			verifyFeasible(t, oracle, req, o.body)
			if bytes.Contains(o.body, []byte(`"Degraded":true`)) {
				degraded++
			}
		case http.StatusTooManyRequests, http.StatusInternalServerError:
			var er struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(o.body, &er); err != nil || er.Error == "" {
				t.Fatalf("request %d: malformed %d body:\n%s", i, o.status, o.body)
			}
		default:
			t.Fatalf("request %d: unexpected status %d:\n%s", i, o.status, o.body)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	if degraded == 0 {
		t.Fatal("flaky primary produced no degraded 200s; the fallback ladder never ran")
	}
	t.Logf("storm seed=%d: %d requests, status mix %v, %d degraded", seed, n, counts, degraded)

	// Every injected panic was recovered into the incident counter —
	// none killed the daemon (the test process is still here to ask).
	panicsFired := reg.FiredAt(fault.PointHandler, 0)
	if v := metric(t, ts.URL, "placementd_panics_total"); int64(v) != panicsFired {
		t.Fatalf("panics_total = %g, want %d (one per fired panic schedule)", v, panicsFired)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("daemon unhealthy after the storm: %d", code)
	}

	// Torn cache writes quarantine on reload instead of being served:
	// a fresh daemon over the same directory moves every corrupt entry
	// aside and re-solves correctly.
	torn := reg.FiredAt(fault.PointCacheStore, 0)
	if torn == 0 {
		t.Fatalf("no torn cache writes fired; the store schedule is dead")
	}
	s2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if q := s2.Runner().CacheQuarantined(); q != torn {
		t.Fatalf("reload quarantined %d entries, want %d (one per torn write)", q, torn)
	}
	if v := metric(t, ts2.URL, "placementd_cache_quarantined_total"); int64(v) != torn {
		t.Fatalf("cache_quarantined_total = %g, want %d", v, torn)
	}
	verify := client.New(ts2.URL)
	for _, req := range mix {
		out, err := verify.Post(context.Background(), "/v1/solve", req.body())
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != http.StatusOK {
			t.Fatalf("fault-free re-solve of %s %s/%d/%d = %d:\n%s",
				req.solver, req.family, req.size, req.seed, out.Status, out.Body)
		}
		verifyFeasible(t, oracle, req, out.Body)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// blockSolver parks in the single worker slot until released, so the
// shed test pins the admission gate deterministically instead of
// racing a blast against a fast solve. The gate channels are swapped
// per test run (registration is process-global and permanent).
type blockSolver struct{}

const blockName = "tap/chaos-block"

var blockGate struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

func (blockSolver) Name() string { return blockName }

func (blockSolver) Solve(ctx context.Context, problem repro.Problem, opts ...repro.Option) (*repro.Result, error) {
	blockGate.mu.Lock()
	started, release := blockGate.started, blockGate.release
	blockGate.mu.Unlock()
	select {
	case <-started:
	default:
		close(started)
	}
	select {
	case <-release:
		return repro.Solve(ctx, repro.SolverTapGreedyGain, problem, opts...)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

var registerBlock sync.Once

// needBlock registers the blocking solver and arms fresh gate
// channels, returning (started, release) for this run.
func needBlock(t *testing.T) (<-chan struct{}, chan struct{}) {
	t.Helper()
	registerBlock.Do(func() {
		if err := repro.RegisterSolver(blockSolver{}); err != nil {
			panic(err)
		}
	})
	started := make(chan struct{})
	release := make(chan struct{})
	blockGate.mu.Lock()
	blockGate.started, blockGate.release = started, release
	blockGate.mu.Unlock()
	return started, release
}

// TestShedsWellFormedAndDrainFlipsProbes pins the one worker slot
// with a blocking solve, blasts the over-tight admission gate raw
// (no retries), and checks the outcome split is exact — one request
// rides the one-deep queue to a 200, every other one is a well-formed
// 429 — then drains and checks the probes turn 503.
func TestShedsWellFormedAndDrainFlipsProbes(t *testing.T) {
	started, release := needBlock(t)
	s, err := service.New(service.Config{Workers: 1, MaxInFlight: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		status     int
		retryAfter string
		body       []byte
	}
	post := func(body []byte) reply {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return reply{status: -1, body: []byte(err.Error())}
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return reply{resp.StatusCode, resp.Header.Get("Retry-After"), data}
	}

	blockerDone := make(chan reply, 1)
	go func() {
		blockerDone <- post(chaosReq{blockName, "waxman", 16, 1, 0.9}.body())
	}()
	<-started // the blocker now owns the only in-flight slot

	body := chaosReq{repro.SolverTapGreedyGain, "waxman", 16, 1, 0.9}.body()
	const blast = 32
	replies := make([]reply, blast)
	var wg sync.WaitGroup
	for i := 0; i < blast; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = post(body)
		}(i)
	}
	// With the slot pinned, exactly one blast request parks in the
	// one-deep queue and the other 31 shed immediately; wait for the
	// sheds to land before releasing the blocker.
	for deadline := time.Now().Add(10 * time.Second); metric(t, ts.URL, "placementd_requests_shed_total") < blast-1; {
		if time.Now().After(deadline) {
			t.Fatalf("sheds never reached %d", blast-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	if r := <-blockerDone; r.status != http.StatusOK {
		t.Fatalf("blocking request finished %d:\n%s", r.status, r.body)
	}

	shed, ok := 0, 0
	for i, r := range replies {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Fatalf("429 %d without Retry-After", i)
			}
			var er struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(r.body, &er); err != nil || er.Error == "" {
				t.Fatalf("malformed 429 body: %s", r.body)
			}
		default:
			t.Fatalf("blast reply %d: status %d:\n%s", i, r.status, r.body)
		}
	}
	if ok != 1 || shed != blast-1 {
		t.Fatalf("blast split %d ok / %d shed, want exactly 1 / %d", ok, shed, blast-1)
	}

	s.BeginDrain()
	for _, probe := range []string{"/healthz", "/readyz"} {
		code, body := get(t, ts.URL+probe)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("%s while draining = %d %q, want 503 draining", probe, code, body)
		}
	}
}

// identityMix covers the three placement families (taps, exact taps,
// beacons) whose responses must not depend on the worker count.
func identityMix() []chaosReq {
	var mix []chaosReq
	for _, solver := range []string{repro.SolverTapGreedyGain, repro.SolverTapExact, repro.SolverBeaconGreedy} {
		for _, family := range []string{"waxman", "metro"} {
			for seed := int64(1); seed <= 2; seed++ {
				mix = append(mix, chaosReq{solver, family, 16, seed, 0.9})
			}
		}
	}
	return mix
}

// normalize strips the effort counters, which are schedule noise
// across worker counts by design (internal/cover/parallel_test.go
// documents why), keeping the placement, objective, bound and flags —
// the bytes the determinism contract covers.
func normalize(t *testing.T, body []byte) []byte {
	t.Helper()
	var sr struct {
		Result *repro.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.Result == nil {
		t.Fatalf("response does not decode as a solve response: %v\n%s", err, body)
	}
	res := sr.Result
	res.Stats = repro.Stats{Degraded: res.Stats.Degraded}
	if res.Taps != nil {
		res.Taps.Stats = core.SolveStats{Degraded: res.Taps.Stats.Degraded}
	}
	if res.Beacons != nil {
		res.Beacons.Stats = core.SolveStats{Degraded: res.Beacons.Stats.Degraded}
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFaultsDisabledByteIdenticalAcrossWorkerCounts is the
// fair-weather determinism gate: with no fault registry active, a
// 1-worker and an 8-worker daemon must answer every request of the
// identity mix with byte-identical placements.
func TestFaultsDisabledByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if fault.Enabled() {
		t.Fatal("fault registry active at test start; determinism run must be fault-free")
	}
	byWorkers := make(map[int][][]byte)
	mix := identityMix()
	for _, workers := range []int{1, 8} {
		s, err := service.New(service.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		cl := client.New(ts.URL)
		for _, req := range mix {
			out, err := cl.Post(context.Background(), "/v1/solve", req.body())
			if err != nil {
				t.Fatal(err)
			}
			if out.Status != http.StatusOK {
				t.Fatalf("workers=%d %s %s/%d = %d:\n%s", workers, req.solver, req.family, req.seed, out.Status, out.Body)
			}
			byWorkers[workers] = append(byWorkers[workers], normalize(t, out.Body))
		}
		ts.Close()
	}
	for i, req := range mix {
		if a, b := byWorkers[1][i], byWorkers[8][i]; !bytes.Equal(a, b) {
			t.Fatalf("%s %s/%d differs between 1 and 8 workers:\n1: %s\n8: %s", req.solver, req.family, req.seed, a, b)
		}
	}
}
