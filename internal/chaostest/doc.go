// Package chaostest is the fault-injection chaos harness of the
// repository (DESIGN.md §9): it runs an in-process placementd under
// seeded internal/fault schedules — handler panics, injected errors
// and latency, engine task failures, torn cache writes, simulated LP
// factorization failures — and asserts the robustness invariants that
// must hold no matter what fires:
//
//   - the daemon never dies: every request gets an HTTP response, and
//     every injected panic is recovered into a counted 500;
//   - every 200 replay-verifies: the returned placement is re-checked
//     feasible against a freshly generated instance;
//   - degraded answers carry provenance (Degraded + FallbackSolver);
//   - sheds are well-formed (429 with Retry-After and a JSON error
//     body; 503 with "draining" on the probes once draining);
//   - torn cache writes are quarantined on reload, never served;
//   - with faults disabled, responses are byte-identical across
//     worker counts (the determinism contract is not a fair-weather
//     property).
//
// The storm seeds are fixed so CI failures reproduce exactly; run a
// different schedule with
//
//	go test ./internal/chaostest -fault-seed=7
//
// and scale the load with -chaos-requests (default 1000 per seed).
package chaostest
