// Package selftest is the seeded placevet self-test fixture: a package
// that deliberately violates the detrand house rule. CI runs placevet
// against this directory and asserts a non-zero exit, proving the
// blocking job actually bites. It lives under testdata/ so ./...
// wildcards (build, test, placevet's own clean run) never match it.
package selftest

import "math/rand"

// Draw violates detrand: it draws from the ambient source.
func Draw() int {
	return rand.Intn(6)
}
