package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analyzertest.Run(t, floatcmp.Analyzer, "testdata/src/floatcmp", "example.com/internal/lp")
}

// The same sources under an ungated import path produce no findings.
func TestFloatcmpGating(t *testing.T) {
	diags := analyzertest.RunCollect(t, floatcmp.Analyzer, "testdata/src/floatcmp", "example.com/internal/topology")
	if len(diags) != 0 {
		t.Errorf("gated analyzer reported outside its packages: %+v", diags)
	}
}
