// Package floatcmp defines the placevet analyzer that polices exact
// floating-point comparison in the numerical packages. PR 2 hoisted
// every tolerance into internal/lp/tol.go precisely because scattered
// `x == y` on floats encodes an implicit tolerance of zero — correct
// only by accident, and the first thing to drift when the simplex or
// branch-and-bound substrate changes. New comparisons must route
// through the tol.go epsilons.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `forbid exact float ==/!= in the numerical packages

Flags ==/!= between floating-point expressions in the packages named by
-packages (default internal/lp, internal/mip, internal/cover), outside
tol.go — the one file allowed to define what "equal" means. Compare
through the tol.go helpers/epsilons instead. _test.go files are exempt:
determinism tests compare floats exactly on purpose.`

// Analyzer is the floatcmp analyzer.
const name = "floatcmp"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// packages gates the analyzer to the numerical substrate.
var packages = placevet.PkgList{Suffixes: []string{
	"internal/lp",
	"internal/mip",
	"internal/cover",
}}

func init() {
	Analyzer.Flags.Var(&packages, "packages",
		"comma-separated package path suffixes to check (\"*\" for all)")
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	if !placevet.PkgMatch(pass.Pkg.Path(), packages.Suffixes) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.BinaryExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if placevet.InTestFile(pass.Fset, be.Pos()) {
			return
		}
		if placevet.FileBase(pass.Fset, be.Pos()) == "tol.go" {
			return // the file that defines "equal"
		}
		if !isFloat(pass.TypesInfo, be.X) || !isFloat(pass.TypesInfo, be.Y) {
			return
		}
		waivers.Report(pass, be.OpPos, name,
			"exact %s on floating-point values encodes a zero tolerance; compare via the internal/lp/tol.go epsilons (or waive with //placevet:ignore floatcmp -- reason)",
			be.Op)
	})
	return nil, nil
}

// isFloat reports whether the expression has floating-point type
// (after unwrapping named types). Untyped float constants count: they
// only appear in comparisons against typed floats.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
