package floatcmptest

func eq(x, y float64) bool {
	return x == y // want `exact == on floating-point values encodes a zero tolerance`
}

func ne(x float32) bool {
	return x != 0 // want `exact != on floating-point values encodes a zero tolerance`
}

type price float64

func namedFloat(a, b price) bool {
	return a == b // want `exact == on floating-point values`
}

// ints compare exactly by nature.
func ints(a, b int) bool {
	return a == b
}

// ordering comparisons are not equality; the epsilons govern ==/!=.
func less(x, y float64) bool {
	return x < y
}

func waived(x, y float64) bool {
	//placevet:ignore floatcmp -- bit-exact propagation check, zero tolerance intended
	return x == y
}
