package floatcmptest

// tol.go is the one file allowed to define what "equal" means.

const eps = 1e-9

// Eq is the tolerance-based comparison the rest of the package must use.
func Eq(a, b float64) bool {
	d := a - b
	return d < eps && -d < eps
}

// ExactEq is permitted here and only here.
func ExactEq(a, b float64) bool {
	return a == b
}
