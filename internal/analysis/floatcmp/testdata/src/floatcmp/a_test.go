package floatcmptest

// Determinism tests compare floats exactly on purpose; _test.go files
// are exempt.
func exactCheck(got, want float64) bool {
	return got == want
}
