// Package faultgate defines the placevet analyzer that keeps failure
// injection honest. PR 9 introduced internal/fault: every simulated
// failure — a corrupt cache entry, a stalling worker, a panicking
// handler — fires from a seeded, named inject point, so a chaos run
// reproduces exactly from its seed and a production binary with no
// registry activated pays one atomic load. An ad-hoc failure branch
// gated on an environment variable or on testing.Testing() undoes
// both properties: it is invisible to the fault registry's accounting,
// unreproducible (nothing records that the switch was set), and it
// ships a secret behavior toggle in the production binary.
package faultgate

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `forbid ad-hoc failure switches outside the fault registry

Flags calls to os.Getenv, os.LookupEnv and testing.Testing in non-test
files of the fault-disciplined packages named by -packages (default:
the repro root package, internal/engine, internal/lp and
internal/service). Simulated failures in those packages must fire from
a named internal/fault inject point, where they are seeded,
deterministic, counted, and free when disabled — not from environment
sniffing or am-I-under-test branches.`

const name = "faultgate"

// Analyzer is the faultgate analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// packages gates the analyzer to the packages wired with fault inject
// points.
var packages = placevet.PkgList{Suffixes: []string{
	"repro",
	"internal/engine",
	"internal/lp",
	"internal/service",
}}

func init() {
	Analyzer.Flags.Var(&packages, "packages",
		"comma-separated package path suffixes to check (\"*\" for all)")
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	if !placevet.PkgMatch(pass.Pkg.Path(), packages.Suffixes) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if placevet.InTestFile(pass.Fset, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		switch {
		case placevet.IsPkgFunc(pass.TypesInfo, call.Fun, "os", "Getenv", "LookupEnv"):
			fn := placevet.PkgFuncOf(pass.TypesInfo, call.Fun)
			waivers.Report(pass, call.Pos(), name,
				"os.%s in a fault-disciplined package is an ad-hoc behavior switch; route simulated failures through a named internal/fault inject point",
				fn.Name())
		case placevet.IsPkgFunc(pass.TypesInfo, call.Fun, "testing", "Testing"):
			waivers.Report(pass, call.Pos(), name,
				"testing.Testing in a fault-disciplined package hides an am-I-under-test branch; route simulated failures through a named internal/fault inject point")
		}
	})
	return nil, nil
}
