package faultgatetest

import (
	"os"
	"testing"
)

// flagged: an env-var failure switch is unseeded, uncounted, and ships
// in the production binary.
func corruptIfEnvSet(data []byte) []byte {
	if os.Getenv("REPRO_CORRUPT_CACHE") != "" { // want `os\.Getenv in a fault-disciplined package is an ad-hoc behavior switch`
		data[0] ^= 0x40
	}
	return data
}

// flagged: ditto for LookupEnv.
func stallIfEnvSet() bool {
	_, ok := os.LookupEnv("REPRO_STALL_WORKER") // want `os\.LookupEnv in a fault-disciplined package`
	return ok
}

// flagged: am-I-under-test branches hide behavior divergence.
func failUnderTest() bool {
	return testing.Testing() // want `testing\.Testing in a fault-disciplined package hides an am-I-under-test branch`
}

// sanctioned: reading configuration through os.Environ-free APIs, and
// plain os file calls, are not failure switches.
func writeTemp(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "x*")
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// waived: a documented operational knob, not failure injection.
func cacheRoot() string {
	//placevet:ignore faultgate -- deployment-selected cache root, documented in README; not a failure switch
	return os.Getenv("REPRO_CACHE_ROOT")
}
