package faultgate_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/faultgate"
)

func TestFaultgate(t *testing.T) {
	// "internal/engine" is on the default gate list.
	analyzertest.Run(t, faultgate.Analyzer, "testdata/src/faultgate", "example.com/internal/engine")
}

// The same sources under an ungated import path produce no findings.
func TestFaultgateGating(t *testing.T) {
	diags := analyzertest.RunCollect(t, faultgate.Analyzer, "testdata/src/faultgate", "example.com/internal/topology")
	if len(diags) != 0 {
		t.Errorf("gated analyzer reported outside its packages: %+v", diags)
	}
}
