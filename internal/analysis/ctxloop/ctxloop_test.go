package ctxloop_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analyzertest.Run(t, ctxloop.Analyzer, "testdata/src/ctxloop", "example.com/ctxlooptest")
}
