// Package ctxloop defines the placevet analyzer that enforces the
// cancellation contract from PR 1: every solver accepts a
// context.Context and, on cancellation, returns its best incumbent —
// which is only possible if the node/pivot loops actually look at the
// context. A function that takes a ctx and then spins an unbounded loop
// without consulting it silently converts "cancel" into "hang".
package ctxloop

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `require unbounded loops in ctx-taking functions to honor the ctx

Flags for-loops without a bounded three-clause header (for {} and
for cond {}) inside functions that take a context.Context, when the
loop body neither checks ctx.Err()/ctx.Done()/ctx.Deadline() nor passes
the context on to a callee that can. Range loops and counted loops are
considered bounded. _test.go files are exempt.`

// Analyzer is the ctxloop analyzer.
const name = "ctxloop"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		}
		if body == nil || placevet.InTestFile(pass.Fset, n.Pos()) {
			return
		}
		if !takesContext(pass.TypesInfo, ftype) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // a literal is judged by its own visit
			}
			fs, ok := n.(*ast.ForStmt)
			if !ok || !unbounded(fs) {
				return true
			}
			// The condition is re-evaluated every iteration, so a
			// `for step(ctx) { ... }` work loop delegates its check there.
			if fs.Cond != nil && honorsContext(pass.TypesInfo, fs.Cond) {
				return true
			}
			if honorsContext(pass.TypesInfo, fs.Body) {
				return true
			}
			waivers.Report(pass, fs.Pos(), name,
				"unbounded loop in a context-taking function never checks ctx.Err()/ctx.Done(); cancellation cannot return an incumbent from here")
			return true
		})
	})
	return nil, nil
}

// takesContext reports whether the function type has a parameter of
// type context.Context.
func takesContext(info *types.Info, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContext(tv.Type) {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// unbounded reports whether the for statement has no structural bound:
// `for {}` or a condition-only `for cond {}` (the classic node/pivot
// work loop). A three-clause `for i := 0; i < n; i++ {}` is treated as
// bounded.
func unbounded(fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return true
	}
	return fs.Init == nil && fs.Post == nil
}

// honorsContext reports whether the loop body (or condition) consults
// a context.Context: a method call Err/Done/Deadline/Value on a
// ctx-typed receiver, or any call that passes a ctx-typed argument
// along (delegating the check to the callee, whose own loops this
// analyzer polices in turn).
func honorsContext(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok && isContext(tv.Type) {
				switch sel.Sel.Name {
				case "Err", "Done", "Deadline", "Value":
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isContext(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
