package ctxlooptest

import "context"

// flagged: the node loop can spin past a cancel forever.
func spin(ctx context.Context, work func() bool) {
	for work() { // want `unbounded loop in a context-taking function never checks ctx\.Err`
	}
}

// flagged: `for {}` without a ctx check inside.
func forever(ctx context.Context, step func()) {
	for { // want `unbounded loop in a context-taking function`
		step()
	}
}

// sanctioned: checks ctx.Err each iteration (the solver contract —
// return the incumbent on cancellation).
func nodes(ctx context.Context, work func() bool) error {
	for work() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// sanctioned: select on ctx.Done.
func pump(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// sanctioned: delegates the ctx to the callee each iteration; the
// callee's own loops are policed in turn.
func delegate(ctx context.Context, step func(context.Context) bool) {
	for step(ctx) {
	}
}

// sanctioned: three-clause counted loops are bounded.
func counted(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// sanctioned: range loops are bounded.
func ranged(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// no ctx parameter: not this analyzer's contract.
func noCtx(work func() bool) {
	for work() {
	}
}

// waived.
func waived(ctx context.Context, work func() bool) {
	//placevet:ignore ctxloop -- drains an already-closed queue; bounded in practice
	for work() {
	}
}
