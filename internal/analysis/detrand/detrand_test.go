package detrand_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/src/detrand", "example.com/detrandtest")
}

// A waiver without a " -- reason" is itself a finding and does not
// suppress the original one. (Tested via RunCollect: the malformed
// directive's diagnostic lands inside a comment, where a // want
// expectation cannot sit.)
func TestDetrandMalformedWaiver(t *testing.T) {
	diags := analyzertest.RunCollect(t, detrand.Analyzer, "testdata/src/malformed", "example.com/malformed")
	var missingReason, stillFlagged bool
	for _, d := range diags {
		if strings.Contains(d.Message, "missing a reason") {
			missingReason = true
		}
		if strings.Contains(d.Message, "ambient math/rand source") {
			stillFlagged = true
		}
	}
	if !missingReason {
		t.Errorf("malformed waiver not reported; diags: %+v", diags)
	}
	if !stillFlagged {
		t.Errorf("malformed waiver suppressed the finding; diags: %+v", diags)
	}
}
