package malformed

import "math/rand"

func draw() int {
	//placevet:ignore detrand
	return rand.Int()
}
