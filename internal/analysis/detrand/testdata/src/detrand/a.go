package detrandtest

import "math/rand"

var global = rand.New(rand.NewSource(1)) // want `package-level \*?rand\.Rand var "global" is shared rand state`

var source rand.Source // want `package-level rand\.Source var "source" is shared rand state`

func draw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the ambient math/rand source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the ambient`
}

func indirect() func() float64 {
	return rand.Float64 // want `rand\.Float64 draws from the ambient`
}

// sanctioned: explicit state threaded by argument.
func sanctioned(r *rand.Rand) int {
	var local *rand.Rand // local rand state is fine: it must be fed from an arg or constructor
	local = r
	return local.Intn(10)
}

// sanctioned: constructors build explicit state.
func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func waived() int {
	//placevet:ignore detrand -- harness demo: exploratory draw, not on a result path
	return rand.Int()
}

func waivedTrailing() int {
	return rand.Int() //placevet:ignore detrand -- harness demo: trailing-form waiver
}
