package detrandtest

import "math/rand"

// _test.go files are exempt: fuzz corpora and test fixtures may use the
// ambient source.
func fixture() int {
	return rand.Intn(100)
}
