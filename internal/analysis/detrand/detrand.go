// Package detrand defines the placevet analyzer that bans ambient
// randomness. Every random draw in the repro must come from a seeded
// *rand.Rand threaded by argument (the PR 5 audit rule): the global
// math/rand source is process-wide mutable state, so a draw from it
// depends on everything else the process did first — the exact property
// that makes figures and cached responses stop being byte-identical.
package detrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `forbid the ambient math/rand source outside tests

Flags uses of math/rand (and math/rand/v2) package-level functions that
draw from the global source (rand.Intn, rand.Float64, rand.Shuffle,
rand.Seed, ...) and package-level variables holding rand state
(*rand.Rand, rand.Source). Constructors (rand.New, rand.NewSource,
rand.NewZipf, rand.NewPCG, rand.NewChaCha8) are allowed: a seeded
*rand.Rand threaded by argument is the only sanctioned form. _test.go
files are exempt.`

// Analyzer is the detrand analyzer.
const name = "detrand"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// randPkgs are the package paths whose ambient state is banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// constructors are the package-level functions of math/rand that build
// explicit generator state instead of drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes the *rand.Rand it will draw from
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.SelectorExpr)(nil),
		(*ast.GenDecl)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if placevet.InTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkUse(pass, waivers, n)
		case *ast.GenDecl:
			checkVarDecl(pass, waivers, n)
		}
	})
	return nil, nil
}

// checkUse flags any use (call or function value) of a math/rand
// package-level function that is not an explicit-state constructor.
func checkUse(pass *analysis.Pass, waivers *placevet.Waivers, sel *ast.SelectorExpr) {
	fn := placevet.PkgFuncOf(pass.TypesInfo, sel)
	if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
		return
	}
	if constructors[fn.Name()] {
		return
	}
	waivers.Report(pass, sel.Pos(), name,
		"%s.%s draws from the ambient math/rand source; thread a seeded *rand.Rand by argument instead",
		fn.Pkg().Name(), fn.Name())
}

// checkVarDecl flags package-level variables whose type carries rand
// state: *rand.Rand, rand.Rand, or anything implementing rand.Source
// declared as such. Local variables are fine — they are necessarily fed
// from an argument or a constructor the other half of this analyzer
// polices.
func checkVarDecl(pass *analysis.Pass, waivers *placevet.Waivers, decl *ast.GenDecl) {
	if decl.Tok.String() != "var" {
		return
	}
	// Only package-level declarations: a GenDecl whose parent is the
	// file itself. The inspector visits declarations inside function
	// bodies too (as DeclStmt children), so check the scope instead:
	// package-level names are found in the package scope.
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, id := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok || obj.Parent() != pass.Pkg.Scope() {
				continue // not package-level
			}
			if tn := randStateType(obj.Type()); tn != "" {
				waivers.Report(pass, id.Pos(), name,
					"package-level %s var %q is shared rand state; thread a seeded *rand.Rand by argument instead",
					tn, id.Name)
			}
		}
	}
}

// randStateType returns a printable name when t is (a pointer to) a
// named type of math/rand — *rand.Rand, rand.Rand, rand.Source, ... —
// and "" otherwise.
func randStateType(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !randPkgs[obj.Pkg().Path()] {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
