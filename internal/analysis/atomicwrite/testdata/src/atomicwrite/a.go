package atomicwritetest

import "os"

// flagged: a direct write can be torn by a crash.
func dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile without os\.Rename in the same function bypasses the temp\+rename idiom`
}

// flagged: ditto for Create.
func create(path string) error {
	f, err := os.Create(path) // want `os\.Create without os\.Rename in the same function`
	if err != nil {
		return err
	}
	return f.Close()
}

// sanctioned: the temp+rename idiom from repro.WithCacheDir.
func atomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), name)
}

// sanctioned: os.Create of a temp path renamed into place later in the
// same function.
func atomicCreate(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// waived.
func debugDump(path string, data []byte) error {
	//placevet:ignore atomicwrite -- operator debug dump, never read back as a cache entry
	return os.WriteFile(path, data, 0o644)
}
