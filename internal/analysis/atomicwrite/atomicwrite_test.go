package atomicwrite_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/atomicwrite"
)

func TestAtomicwrite(t *testing.T) {
	// "internal/service" is on the default gate list.
	analyzertest.Run(t, atomicwrite.Analyzer, "testdata/src/atomicwrite", "example.com/internal/service")
}

// The same sources under an ungated import path produce no findings.
func TestAtomicwriteGating(t *testing.T) {
	diags := analyzertest.RunCollect(t, atomicwrite.Analyzer, "testdata/src/atomicwrite", "example.com/internal/topology")
	if len(diags) != 0 {
		t.Errorf("gated analyzer reported outside its packages: %+v", diags)
	}
}
