// Package atomicwrite defines the placevet analyzer that protects the
// persistent result store's crash-safety. PR 6 made repro.WithCacheDir
// content-address every result to <sha256>.json written via temp +
// rename, so a crash mid-write can never leave a half-written entry
// under a valid cache key (corrupt entries would be silently skipped on
// reload — losing warmth — or worse, a torn-but-valid JSON would serve
// a wrong cached placement). A direct os.WriteFile/os.Create in the
// store-owning packages bypasses that idiom.
package atomicwrite

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `require temp+rename writes in the cache-store packages

Flags calls to os.WriteFile and os.Create in the packages named by
-packages (default: the repro root package and internal/service, the
owners of the persistent result cache) unless the enclosing function
also calls os.Rename — the signature of the sanctioned
os.CreateTemp + write + os.Rename idiom from repro.WithCacheDir.
_test.go files are exempt.`

// Analyzer is the atomicwrite analyzer.
const name = "atomicwrite"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// packages gates the analyzer to the owners of the persistent store.
var packages = placevet.PkgList{Suffixes: []string{
	"repro",
	"internal/service",
}}

func init() {
	Analyzer.Flags.Var(&packages, "packages",
		"comma-separated package path suffixes to check (\"*\" for all)")
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	if !placevet.PkgMatch(pass.Pkg.Path(), packages.Suffixes) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil || placevet.InTestFile(pass.Fset, n.Pos()) {
			return
		}
		// The idiom test is per-function: a function that renames is
		// assumed to be (part of) an atomic writer, so its Create of
		// the temp file is sanctioned.
		if callsRename(pass, body) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // judged by its own visit
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if placevet.IsPkgFunc(pass.TypesInfo, call.Fun, "os", "WriteFile", "Create") {
				fn := placevet.PkgFuncOf(pass.TypesInfo, call.Fun)
				waivers.Report(pass, call.Pos(), name,
					"os.%s without os.Rename in the same function bypasses the temp+rename idiom of the persistent store; write a temp file and rename it into place",
					fn.Name())
			}
			return true
		})
	})
	return nil, nil
}

// callsRename reports whether the function body contains a call to
// os.Rename (directly, not in a nested function literal — a literal is
// its own atomic-writer candidate).
func callsRename(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok &&
			placevet.IsPkgFunc(pass.TypesInfo, call.Fun, "os", "Rename") {
			found = true
			return false
		}
		return true
	})
	return found
}
