// Package maporder defines the placevet analyzer that polices map
// iteration in the deterministic packages. Go randomizes map iteration
// order on purpose; any `for range m` on a result path therefore
// produces run-to-run different output unless the keys are sorted
// first. PR 3 made parallel merges byte-identical to serial and PR 6
// made cached service responses byte-identical across restarts — one
// unsorted map walk in lp/mip/cover/engine/scenario/experiments/service
// undoes both.
package maporder

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/placevet"
)

const doc = `forbid unsorted map iteration in the deterministic packages

Flags every for-range over a map in the packages named by -packages
(default: the repro's determinism-critical packages), except the one
sanctioned idiom: a key-collection loop (body is exactly
"keys = append(keys, k)") whose slice is later passed to sort.* or
slices.Sort* in the same function. Anything else needs a
//placevet:ignore maporder -- reason waiver (e.g. a commutative
reduction over ints).`

// Analyzer is the maporder analyzer.
const name = "maporder"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// packages gates the analyzer to the determinism-critical packages.
// The service package is included whole: its response paths are the
// reason, and its non-response paths are few enough to waive.
var packages = placevet.PkgList{Suffixes: []string{
	"internal/lp",
	"internal/mip",
	"internal/cover",
	"internal/engine",
	"internal/scenario",
	"internal/experiments",
	"internal/service",
}}

func init() {
	Analyzer.Flags.Var(&packages, "packages",
		"comma-separated package path suffixes to check (\"*\" for all)")
}

func run(pass *analysis.Pass) (any, error) {
	waivers := placevet.ParseWaivers(pass)
	waivers.ReportMalformed(pass, name)
	if !placevet.PkgMatch(pass.Pkg.Path(), packages.Suffixes) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Walk function bodies so each range statement can be judged with
	// its enclosing function in view (the sorted-collection idiom needs
	// the "later sort call" check).
	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested literal: judged by its own visit
			}
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapRange(pass.TypesInfo, rs) {
				return true
			}
			if collectsSortedKeys(pass.TypesInfo, rs, body) {
				return true
			}
			waivers.Report(pass, rs.Pos(), name,
				"map iteration order is nondeterministic here; collect and sort the keys first (or waive with //placevet:ignore maporder -- reason)")
			return true
		})
	})
	return nil, nil
}

// isMapRange reports whether the range expression is a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectsSortedKeys recognizes the sanctioned idiom:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)   // or sort.Strings/sort.Ints/slices.Sort...
//
// The loop must not use the map value, its body must be exactly one
// append of the key into a slice variable, and that variable must later
// (within the same function body) be the first argument of a call into
// package sort or slices. Append order into the slice is irrelevant
// once the slice is sorted, which is what makes this one idiom safe.
func collectsSortedKeys(info *types.Info, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if rs.Value != nil && !isBlank(rs.Value) {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || info.ObjectOf(arg0) != info.ObjectOf(dst) {
		return false
	}
	// The appended element must mention the key variable (k itself, or
	// a projection like m2key(k)); a constant append would be a
	// different — and still nondeterministic-length-only — loop.
	usesKey := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == info.ObjectOf(keyID) {
			usesKey = true
		}
		return true
	})
	if !usesKey {
		return false
	}
	return sortedAfter(info, fnBody, rs, info.ObjectOf(dst))
}

// sortedAfter reports whether, after the range statement, the function
// body contains a call sort.X(dst, ...) or slices.X(dst, ...).
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, dst types.Object) bool {
	if dst == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := placevet.PkgFuncOf(info, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.ObjectOf(arg0) == dst {
			found = true
			return false
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
