package mapordertest

import (
	"sort"
)

// sanctioned: collect keys, sort, then iterate the slice.
func emitSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanctioned: sort.Slice counts too.
func emitSortSlice(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// flagged: result order depends on map iteration.
func emitUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// flagged: float accumulation order changes the rounded sum.
func sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

// waived: integer count is order-free.
func count(m map[string]int) int {
	n := 0
	//placevet:ignore maporder -- commutative integer count, order cannot leak
	for range m {
		n++
	}
	return n
}
