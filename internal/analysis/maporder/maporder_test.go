package maporder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	// The suffix "internal/engine" is on the default gate list.
	analyzertest.Run(t, maporder.Analyzer, "testdata/src/maporder", "example.com/internal/engine")
}

// The same sources under an ungated import path produce no findings.
func TestMaporderGating(t *testing.T) {
	diags := analyzertest.RunCollect(t, maporder.Analyzer, "testdata/src/maporder", "example.com/internal/nondeterministic")
	if len(diags) != 0 {
		t.Errorf("gated analyzer reported outside its packages: %+v", diags)
	}
}
