// Package placevet holds the machinery shared by the repro's custom
// analyzers (internal/analysis/*): the waiver-directive parser and the
// package-gating helpers. The analyzers encode house rules that keep
// figures, parallel merges, and cached service responses byte-identical
// (see DESIGN.md §8); placevet is the glue that lets a human overrule
// one finding at a time, with a recorded reason, instead of disabling a
// rule wholesale.
//
// # Waiver syntax
//
// A finding is waived by a comment on the flagged line, or on the line
// directly above it:
//
//	//placevet:ignore maporder -- histogram buckets, order folded by sort below
//	//placevet:ignore detrand,floatcmp -- exploratory tool, not on a result path
//
// The reason after " -- " is mandatory: a waiver without one is itself
// reported by every analyzer it names. Analyzer names are
// comma-separated; an unknown name is harmless (it waives nothing).
package placevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directivePrefix introduces a waiver comment. The "//placevet:" shape
// follows the convention of //go: and //lint: directives: no space
// after the slashes, so gofmt leaves it alone and it cannot be mistaken
// for prose.
const directivePrefix = "//placevet:ignore"

// reasonSep separates the analyzer list from the mandatory reason.
const reasonSep = " -- "

// A Waiver is one parsed //placevet:ignore directive.
type Waiver struct {
	Pos       token.Pos // position of the comment
	Line      int       // line the comment sits on
	File      string    // filename the comment sits in
	Analyzers []string  // names the directive waives
	Reason    string    // text after " -- "; empty means malformed
}

// Waivers indexes every //placevet:ignore directive of one package by
// file and line.
type Waivers struct {
	byFile map[string][]Waiver
}

// ParseWaivers scans the comments of every file in the pass and returns
// the directive index. Analyzers call it once at the top of their run
// function.
func ParseWaivers(pass *analysis.Pass) *Waivers {
	w := &Waivers{byFile: make(map[string][]Waiver)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				var names, reason string
				if i := strings.Index(rest, reasonSep); i >= 0 {
					names, reason = rest[:i], strings.TrimSpace(rest[i+len(reasonSep):])
				} else {
					names = rest
				}
				wv := Waiver{
					Pos:    c.Pos(),
					Reason: reason,
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						wv.Analyzers = append(wv.Analyzers, n)
					}
				}
				p := pass.Fset.Position(c.Pos())
				wv.Line, wv.File = p.Line, p.Filename
				w.byFile[wv.File] = append(w.byFile[wv.File], wv)
			}
		}
	}
	return w
}

// names reports whether the waiver mentions analyzer.
func (wv *Waiver) names(analyzer string) bool {
	for _, n := range wv.Analyzers {
		if n == analyzer {
			return true
		}
	}
	return false
}

// at returns the well-formed waiver for analyzer covering line, if any.
// A directive covers its own line (trailing comment) and the line below
// it (comment-above form).
func (w *Waivers) at(file string, line int, analyzer string) *Waiver {
	for i := range w.byFile[file] {
		wv := &w.byFile[file][i]
		if wv.Reason == "" || !wv.names(analyzer) {
			continue
		}
		if wv.Line == line || wv.Line == line-1 {
			return wv
		}
	}
	return nil
}

// Waived reports whether a finding of analyzer at pos is covered by a
// well-formed waiver.
func (w *Waivers) Waived(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	return w.at(p.Filename, p.Line, analyzer) != nil
}

// ReportMalformed emits a diagnostic for every directive that names
// analyzer but carries no " -- reason". Each analyzer polices its own
// name so a malformed waiver is reported exactly by the checks it tried
// to silence.
func (w *Waivers) ReportMalformed(pass *analysis.Pass, analyzer string) {
	for _, ws := range w.byFile {
		for _, wv := range ws {
			if wv.Reason == "" && wv.names(analyzer) {
				pass.Reportf(wv.Pos, "placevet:ignore %s waiver is missing a reason (use %q)", analyzer, "//placevet:ignore "+analyzer+" -- why")
			}
		}
	}
}

// Report emits the diagnostic unless a waiver covers it.
func (w *Waivers) Report(pass *analysis.Pass, pos token.Pos, analyzer, format string, args ...any) {
	if w.Waived(pass.Fset, pos, analyzer) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// PkgMatch reports whether the package import path matches any of the
// given path suffixes on "/" boundaries: "internal/lp" matches
// "repro/internal/lp" but not "repro/internal/lp2". An empty suffix
// list matches nothing; the single suffix "*" matches everything.
func PkgMatch(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if s == "*" {
			return true
		}
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// PkgList is a comma-separated list of package-path suffixes, usable as
// a flag.Value so each gated analyzer exposes a -<name>.packages flag.
type PkgList struct {
	Suffixes []string
}

// String implements flag.Value.
func (p *PkgList) String() string { return strings.Join(p.Suffixes, ",") }

// Set implements flag.Value.
func (p *PkgList) Set(s string) error {
	p.Suffixes = nil
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			p.Suffixes = append(p.Suffixes, part)
		}
	}
	return nil
}

// InTestFile reports whether pos sits in a _test.go file. Several house
// rules apply only to production code: tests may use package-level rand
// for fuzz corpora and compare floats exactly when asserting
// byte-determinism.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// FileBase returns the basename of the file containing pos, for rules
// scoped to a single file (floatcmp exempts tol.go).
func FileBase(fset *token.FileSet, pos token.Pos) string {
	name := fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// IsPkgFunc reports whether the expression (after stripping parens) is
// a use of the named package-level function of pkg — e.g.
// IsPkgFunc(info, expr, "math/rand", "Intn"). Methods never match:
// their *types.Func has a receiver.
func IsPkgFunc(info *types.Info, expr ast.Expr, pkgPath string, names ...string) bool {
	fn := pkgFuncOf(info, expr)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// PkgFuncOf returns the package-level *types.Func an expression refers
// to, or nil when the expression is not a direct use of one (method
// values and calls, locals, and type conversions all return nil).
func PkgFuncOf(info *types.Info, expr ast.Expr) *types.Func {
	return pkgFuncOf(info, expr)
}

func pkgFuncOf(info *types.Info, expr ast.Expr) *types.Func {
	expr = ast.Unparen(expr)
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
