package placevet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const waiverSrc = `package w

func a() {
	//placevet:ignore maporder -- bucket histogram, folded by sort below
	x := 1
	_ = x
}

func b() {
	y := 2 //placevet:ignore detrand,floatcmp -- trailing two-name waiver
	_ = y
}

func c() {
	//placevet:ignore ctxloop
	z := 3
	_ = z
}
`

// posAtLine returns some position on the given 1-based line of the file.
func posAtLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestParseWaivers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", waiverSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
	w := ParseWaivers(pass)

	// Comment-above form covers the line below the directive (line 5).
	if !w.Waived(fset, posAtLine(fset, 5), "maporder") {
		t.Error("comment-above waiver did not cover the next line")
	}
	// It does not cover unrelated analyzers.
	if w.Waived(fset, posAtLine(fset, 5), "detrand") {
		t.Error("waiver leaked to an analyzer it does not name")
	}
	// Trailing form covers its own line (line 10), for both names.
	if !w.Waived(fset, posAtLine(fset, 10), "detrand") || !w.Waived(fset, posAtLine(fset, 10), "floatcmp") {
		t.Error("trailing two-name waiver did not cover its line")
	}
	// A reason-less directive waives nothing.
	if w.Waived(fset, posAtLine(fset, 16), "ctxloop") {
		t.Error("malformed (reason-less) waiver suppressed a finding")
	}
}

func TestPkgMatch(t *testing.T) {
	cases := []struct {
		path string
		sufs []string
		want bool
	}{
		{"repro/internal/lp", []string{"internal/lp"}, true},
		{"repro/internal/lp2", []string{"internal/lp"}, false},
		{"internal/lp", []string{"internal/lp"}, true},
		{"repro", []string{"repro"}, true},
		{"other/repro", []string{"repro"}, true},
		{"reprox", []string{"repro"}, false},
		{"anything", []string{"*"}, true},
		{"anything", nil, false},
	}
	for _, c := range cases {
		if got := PkgMatch(c.path, c.sufs); got != c.want {
			t.Errorf("PkgMatch(%q, %v) = %v, want %v", c.path, c.sufs, got, c.want)
		}
	}
}

func TestPkgListFlag(t *testing.T) {
	var p PkgList
	if err := p.Set(" a/b , c ,"); err != nil {
		t.Fatal(err)
	}
	if len(p.Suffixes) != 2 || p.Suffixes[0] != "a/b" || p.Suffixes[1] != "c" {
		t.Errorf("Set parsed to %v", p.Suffixes)
	}
	if s := p.String(); s != "a/b,c" {
		t.Errorf("String() = %q", s)
	}
}
