// Package analyzertest is the repro's stand-in for
// golang.org/x/tools/go/analysis/analysistest, which is not vendored
// with the Go toolchain (it depends on go/packages). It loads one
// testdata package from a directory, type-checks it against the
// standard library via the source importer (offline: GOROOT source is
// always present), runs an analyzer and its Requires closure, and
// matches the diagnostics against analysistest-style expectations:
//
//	m[k] = v // want `regexp`
//
// A `// want` comment names, in order, one regexp (back- or
// double-quoted) per diagnostic expected on that line. Lines without a
// want comment must produce no diagnostics.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Diagnostic is one reported finding, flattened for assertions.
type Diagnostic struct {
	File    string // basename of the file
	Line    int
	Message string
}

// Run loads the package rooted at dir, presents it under the import
// path pkgpath (gated analyzers match on path suffixes, so tests pick
// paths like "example.com/internal/lp"), runs a, and matches
// diagnostics against the // want comments in the sources.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgpath string) {
	t.Helper()
	diags, fset, files := load(t, a, dir, pkgpath)
	check(t, fset, files, diags)
}

// RunCollect is Run without want-comment matching: it returns the raw
// diagnostics for custom assertions (e.g. malformed-waiver reporting,
// whose position is inside a comment where no second comment can sit).
func RunCollect(t *testing.T, a *analysis.Analyzer, dir, pkgpath string) []Diagnostic {
	t.Helper()
	diags, _, _ := load(t, a, dir, pkgpath)
	return diags
}

func load(t *testing.T, a *analysis.Analyzer, dir, pkgpath string) ([]Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no Go files under %s: %v", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}

	var diags []Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(an *analysis.Analyzer, report func(analysis.Diagnostic)) any
	exec = func(an *analysis.Analyzer, report func(analysis.Diagnostic)) any {
		if r, ok := results[an]; ok {
			return r
		}
		resultOf := make(map[*analysis.Analyzer]any)
		for _, req := range an.Requires {
			resultOf[req] = exec(req, func(analysis.Diagnostic) {})
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report:     report,
			ReadFile:   os.ReadFile,
		}
		r, err := an.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", an.Name, err)
		}
		results[an] = r
		return r
	}
	exec(a, func(d analysis.Diagnostic) {
		p := fset.Position(d.Pos)
		diags = append(diags, Diagnostic{
			File:    filepath.Base(p.Filename),
			Line:    p.Line,
			Message: d.Message,
		})
	})
	return diags, fset, files
}

// wantRx extracts the quoted regexps of a // want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// check matches diagnostics against // want expectations, line by line.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				k := key{filepath.Base(p.Filename), p.Line}
				for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	matched := make(map[key]int)
	for _, d := range diags {
		k := key{d.File, d.Line}
		ws := wants[k]
		i := matched[k]
		if i >= len(ws) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.File, d.Line, d.Message)
			continue
		}
		if !ws[i].MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", d.File, d.Line, d.Message, ws[i])
		}
		matched[k]++
	}
	for k, ws := range wants {
		if got := matched[k]; got < len(ws) {
			t.Errorf("%s:%d: %d expected diagnostic(s) not reported (next want: %q)", k.file, k.line, len(ws)-got, ws[got])
		}
	}
}
