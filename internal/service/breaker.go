package service

import (
	"sync"
	"time"
)

// Per-solver circuit breaker (DESIGN.md §9). A solver that fails
// consecutively — errors, or answers only through its fallback ladder —
// is probably broken in a way that retrying per-request just burns
// worker slots on; after threshold consecutive failures the breaker
// opens and requests for that solver fall straight to the degradation
// ladder without touching the primary. After cooldown one request is
// let through as a half-open probe: success closes the breaker, failure
// re-opens it for another cooldown.
//
// States:
//
//	closed    — normal operation; failures counted, successes reset.
//	open      — primary skipped entirely; ladder serves. Entered from
//	            closed after threshold consecutive failures, or from
//	            half-open on a failed probe (both count as a trip).
//	half-open — cooldown expired; exactly one in-flight probe decides.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    int64
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// allow reports whether the primary solver may be tried. While open it
// returns false until cooldown has passed; then it admits exactly one
// caller as the half-open probe (everyone else keeps falling to the
// ladder until the probe reports).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success reports a primary solve that answered without degradation.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.failures = 0
	b.probing = false
}

// failure reports a primary failure (error or ladder-served answer).
// now stamps the re-open time when the breaker trips.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = stateOpen
		b.openedAt = now
		b.probing = false
		b.trips++
	case stateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = stateOpen
			b.openedAt = now
			b.failures = 0
			b.trips++
		}
	}
}

// isOpen reports whether the breaker currently refuses the primary
// (open and still cooling down).
func (b *breaker) isOpen(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stateOpen && now.Sub(b.openedAt) < b.cooldown
}

// breakerSet is the per-solver breaker map.
type breakerSet struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

// get returns (creating if needed) the named solver's breaker.
func (s *breakerSet) get(solver string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[solver]
	if !ok {
		b = &breaker{threshold: s.threshold, cooldown: s.cooldown}
		s.m[solver] = b
	}
	return b
}

// Trips returns the total number of open transitions across all
// solvers; Open counts breakers currently refusing their primary.
func (s *breakerSet) Trips() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	//placevet:ignore maporder -- integer sum over all values; order-independent
	for _, b := range s.m {
		b.mu.Lock()
		n += b.trips
		b.mu.Unlock()
	}
	return n
}

func (s *breakerSet) Open(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	//placevet:ignore maporder -- counting a predicate over all values; order-independent
	for _, b := range s.m {
		if b.isOpen(now) {
			n++
		}
	}
	return n
}
