package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed is returned by acquire when both the in-flight slots and the
// waiting queue are full; the handler maps it to 429 Too Many Requests.
var errShed = errors.New("service: at capacity")

// admission is the daemon's load gate: at most maxInFlight solves run
// concurrently, at most maxQueue requests wait for a slot, and
// everything beyond that is shed immediately with 429 — a full queue
// must fail fast, not build an unbounded backlog whose every entry
// times out. A batch request occupies one slot regardless of size (the
// runner's worker pool bounds its internal parallelism).
type admission struct {
	inflight chan struct{}
	maxQueue int64
	queued   atomic.Int64
	shed     atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{inflight: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire blocks until an in-flight slot is free and returns its
// release func. It fails with errShed when the wait queue is full, and
// with ctx.Err() when the client gives up while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.inflight <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.inflight <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.inflight }

// InFlight returns the number of requests currently holding a slot.
func (a *admission) InFlight() int { return len(a.inflight) }

// QueueDepth returns the number of requests waiting for a slot.
func (a *admission) QueueDepth() int64 { return a.queued.Load() }

// Shed returns the number of requests rejected at the gate.
func (a *admission) Shed() int64 { return a.shed.Load() }
