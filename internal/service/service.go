// Package service is placement-as-a-service: the long-lived HTTP
// subsystem behind cmd/placementd. Clients POST a problem — a
// scenario-family triple or an inline topology plus traffic matrix —
// to /v1/solve (one problem) or /v1/batch (many problems, solved once
// per distinct instance on the batch engine), and get placements back
// as JSON. The server fronts one shared repro.Runner, so every
// request benefits from the engine's single-flight memo cache; built
// with a cache directory, the content-addressed result store persists
// across restarts and the first request after a restart is already
// warm.
//
// Admission control bounds the damage of overload: MaxInFlight solves
// run concurrently, MaxQueue requests wait, everything beyond is shed
// with 429 and a Retry-After. Per-request deadlines (timeout_ms) map
// to repro.WithTimeout, capped at MaxTimeout. /metrics exports
// Prometheus text (latency histogram, solver effort counters, queue
// depth, cache hit rate), /healthz answers liveness probes, /readyz
// answers routability (503 once draining), and /v1/families lists the
// scenario registry.
//
// Failure is a first-class input (DESIGN.md §9): a panic anywhere
// below the mux is recovered into a 500 and an incident counter, a
// failing primary solver degrades through a per-prefix fallback ladder
// instead of erroring, and a per-solver circuit breaker skips a
// persistently failing primary entirely until a half-open probe
// succeeds. Degraded responses are stamped in the JSON and counted in
// /metrics — the service never silently substitutes a cheaper answer.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/fault"
	"repro/internal/scenario"
)

// Config parameterizes New. The zero value is a usable in-memory
// server with defaults scaled to the host.
type Config struct {
	// CacheDir, when non-empty, persists the result store there
	// (created if missing) so restarts are warm.
	CacheDir string
	// Workers bounds the runner's concurrent solves; <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxInFlight bounds concurrently admitted requests; <= 0 means
	// 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; <= 0
	// means 128. Requests beyond MaxInFlight+MaxQueue are shed with
	// 429.
	MaxQueue int
	// MaxTimeout caps client-requested solve deadlines; <= 0 means
	// 1 minute.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies; <= 0 means 16 MiB.
	MaxBodyBytes int64
	// BreakerThreshold is the number of consecutive primary-solver
	// failures that trips that solver's circuit breaker; <= 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses the primary
	// before admitting a half-open probe; <= 0 means 10s.
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// Server is the placement service. Build it with New, mount
// Handler() on an http.Server, and let http.Server.Shutdown drain it:
// in-flight solves finish (they are not canceled by listener close),
// queued requests complete, and the persistent store is already
// written through, so SIGTERM loses nothing.
type Server struct {
	cfg      Config
	runner   *repro.Runner
	adm      *admission
	metrics  *metrics
	breakers *breakerSet
	mux      *http.ServeMux
	// draining flips once at SIGTERM (BeginDrain): /healthz and
	// /readyz turn 503 so load balancers stop routing while in-flight
	// work finishes.
	draining atomic.Bool
}

// New builds the service. A configured cache directory is created
// eagerly so a misconfigured path fails at startup, not at the first
// solve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ropts := []repro.RunnerOption{repro.WithWorkers(cfg.Workers)}
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		ropts = append(ropts, repro.WithCacheDir(cfg.CacheDir))
	}
	s := &Server{
		cfg:      cfg,
		runner:   repro.NewRunner(ropts...),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		metrics:  newMetrics(),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/families", s.handleFamilies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler: the route mux wrapped in
// panic recovery, so no handler bug (or injected chaos panic) can kill
// the daemon process or leave a request without a response.
func (s *Server) Handler() http.Handler { return s.recover(s.mux) }

// BeginDrain marks the server as draining: liveness stays truthful
// (the process is up) but /healthz and /readyz answer 503 so load
// balancers stop routing new work before http.Server.Shutdown finishes
// the in-flight requests. Draining is one-way.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// recover is the outermost middleware: a panicking handler becomes a
// 500 with the uniform JSON error body (when no bytes were written
// yet) and an incident counter tick — never a crashed process, and
// never a half-written 200. http.ErrAbortHandler keeps its stdlib
// meaning and is re-raised.
func (s *Server) recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity upstream too
				panic(p)
			}
			s.metrics.panics.Add(1)
			if !sw.wrote {
				s.writeError(sw, r.URL.Path, http.StatusInternalServerError,
					fmt.Sprintf("internal panic: %v", p))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter tracks whether a response has started, so the recovery
// middleware knows if a 500 can still be written whole.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Runner exposes the shared batch runner (the load driver's tests and
// cmd/placementd's shutdown logging read its cache counters).
func (s *Server) Runner() *repro.Runner { return s.runner }

// decode parses one JSON body strictly: unknown fields are rejected so
// a typoed option fails loudly instead of silently solving with
// defaults.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, endpoint string, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/solve"
	var req SolveRequest
	if !s.decode(w, r, endpoint, &req) {
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = repro.SolverTapExact
	}
	problem, err := req.ProblemSpec.build(solver)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := req.OptionsSpec.options(s.cfg.MaxTimeout)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	results, ok := s.solve(w, r, endpoint, solver, []repro.Problem{problem}, opts)
	if !ok {
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, SolveResponse{Result: results[0]})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/batch"
	var req BatchRequest
	if !s.decode(w, r, endpoint, &req) {
		return
	}
	if len(req.Problems) == 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, "batch has no problems")
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = repro.SolverTapExact
	}
	problems := make([]repro.Problem, len(req.Problems))
	for i, spec := range req.Problems {
		p, err := spec.build(solver)
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("problem %d: %v", i, err))
			return
		}
		problems[i] = p
	}
	opts, err := req.OptionsSpec.options(s.cfg.MaxTimeout)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	results, ok := s.solve(w, r, endpoint, solver, problems, opts)
	if !ok {
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, BatchResponse{Results: results})
}

// fallbackLadder returns the degradation ladder for a requested
// solver: the cheaper registered solvers of the same problem family,
// in preference order. Solvers with no cheaper feasible stand-in (the
// ladder bases themselves, the maximizing tap/max-coverage whose
// objective the minimizers cannot substitute, and sample/* where a
// different solver answers a different question) get none.
func fallbackLadder(solver string) []string {
	switch {
	case solver == repro.SolverTapMaxCover,
		solver == repro.SolverTapGreedyGain,
		solver == repro.SolverBeaconGreedy:
		return nil
	case strings.HasPrefix(solver, "tap/"):
		return []string{repro.SolverTapGreedyGain}
	case strings.HasPrefix(solver, "beacon/"):
		return []string{repro.SolverBeaconGreedy}
	}
	return nil
}

// solve runs one admitted batch on the shared runner. It owns the
// admission gate, the degradation ladder, the per-solver circuit
// breaker, and the error-to-status mapping; on a false return the
// response has already been written.
func (s *Server) solve(w http.ResponseWriter, r *http.Request, endpoint, solver string, problems []repro.Problem, opts []repro.Option) ([]*repro.Result, bool) {
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", "1")
			s.writeError(w, endpoint, http.StatusTooManyRequests,
				fmt.Sprintf("at capacity (%d in flight, %d queued); retry", s.cfg.MaxInFlight, s.cfg.MaxQueue))
		} else {
			// The client hung up while queued; nobody reads the reply.
			s.writeError(w, endpoint, statusClientClosedRequest, "client canceled while queued")
		}
		return nil, false
	}
	defer release()
	// Inject point: a slow, failing, or crashing handler. A panic here
	// is recovered by the middleware into a 500; an error maps to 500
	// like any handler failure.
	if err := fault.Hit(fault.PointHandler).Apply(); err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, fmt.Sprintf("handler fault: %v", err))
		return nil, false
	}

	ladder := fallbackLadder(solver)
	br := s.breakers.get(solver)
	if len(ladder) > 0 && !br.allow(time.Now()) {
		// Breaker open: skip the broken primary entirely and solve on
		// the ladder, stamping provenance as if the primary had failed
		// per-request (which, threshold times in a row, it just did).
		start := time.Now()
		results, err := s.runner.SolveBatch(r.Context(), ladder[0], problems, append(opts, repro.WithFallback(ladder[1:]...))...)
		s.metrics.solve.observe(time.Since(start))
		if err != nil {
			s.writeError(w, endpoint, http.StatusInternalServerError,
				fmt.Sprintf("primary %s circuit open; ladder failed too: %v", solver, err))
			return nil, false
		}
		for _, res := range results {
			// Results are per-request copies (SolveBatch contract), so
			// stamping cannot corrupt cached entries.
			if res.FallbackSolver == "" {
				res.FallbackSolver = res.Solver
			}
			res.Solver = solver
			res.Degraded = true
			s.metrics.degraded.Add(1)
		}
		return results, true
	}

	start := time.Now()
	results, err := s.runner.SolveBatch(r.Context(), solver, problems, append(opts, repro.WithFallback(ladder...))...)
	s.metrics.solve.observe(time.Since(start))
	if err != nil {
		// Unknown solver names and problem/solver kind mismatches are
		// client errors; anything else is the solver's own failure —
		// and only the latter counts against the breaker.
		code := http.StatusInternalServerError
		if _, lookupErr := repro.LookupSolver(solver); lookupErr != nil {
			code = http.StatusBadRequest
		} else {
			br.failure(time.Now())
		}
		s.writeError(w, endpoint, code, err.Error())
		return nil, false
	}
	degraded := false
	for _, res := range results {
		if res.Degraded {
			degraded = true
			s.metrics.degraded.Add(1)
		}
	}
	// A ladder-served answer is a primary failure in the breaker's
	// books even though the client got a 200.
	if degraded {
		br.failure(time.Now())
	} else {
		br.success()
	}
	return results, true
}

// statusClientClosedRequest is nginx's non-standard 499 — the request
// died with the client, and the status only exists for the metrics.
const statusClientClosedRequest = 499

func (s *Server) handleFamilies(w http.ResponseWriter, _ *http.Request) {
	const endpoint = "/v1/families"
	resp := FamiliesResponse{Solvers: repro.Solvers()}
	for _, name := range scenario.Families() {
		f, err := scenario.Lookup(name)
		if err != nil {
			continue
		}
		resp.Families = append(resp.Families, FamilyInfo{
			Name: f.Name, Description: f.Description, MinSize: f.MinSize,
		})
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.probe(w, "/healthz")
}

// handleReadyz is the routability probe load balancers watch: it is
// identical to /healthz today (both 503 while draining), but exists as
// its own endpoint so liveness and readiness can diverge without
// clients re-pointing.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.probe(w, "/readyz")
}

func (s *Server) probe(w http.ResponseWriter, endpoint string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		s.metrics.request(endpoint, http.StatusServiceUnavailable)
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	s.metrics.request(endpoint, http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.request("/metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	hits, misses := s.runner.CacheCounts()
	st := s.runner.BatchStats()
	counters := []gauge{
		{"placementd_requests_shed_total", "Requests rejected at the admission gate with 429.",
			func() float64 { return float64(s.adm.Shed()) }},
		{"placementd_cache_hits_total", "Solves served from the result cache.",
			func() float64 { return float64(hits) }},
		{"placementd_cache_misses_total", "Solves computed fresh.",
			func() float64 { return float64(misses) }},
		{"placementd_solver_nodes_total", "Branch-and-bound nodes explored across all solves.",
			func() float64 { return float64(st.Nodes) }},
		{"placementd_solver_pivots_total", "Simplex pivots across all solves.",
			func() float64 { return float64(st.Pivots) }},
		{"placementd_solver_cuts_total", "Root cutting planes added across all solves.",
			func() float64 { return float64(st.CutsAdded) }},
		{"placementd_solver_warm_starts_total", "Warm-started branch-and-bound nodes across all solves.",
			func() float64 { return float64(st.WarmStarts) }},
		{"placementd_solver_vars_fixed_total", "Variables fixed by reduced-cost fixing across all solves.",
			func() float64 { return float64(st.VarsFixed) }},
		{"placementd_solver_subtree_tasks_total", "Parallel branch-and-bound subtree tasks dispatched across all solves.",
			func() float64 { return float64(st.SubtreeTasks) }},
		{"placementd_solver_steals_total", "Subtree tasks run by a worker other than their round-robin home.",
			func() float64 { return float64(st.Steals) }},
		{"placementd_solver_dominance_prunes_total", "Sets excluded by dominance/symmetry reductions across all solves.",
			func() float64 { return float64(st.DominancePrunes) }},
		{"placementd_degraded_responses_total", "Responses answered by a fallback solver instead of the requested primary.",
			func() float64 { return float64(s.metrics.degraded.Load()) }},
		{"placementd_degraded_solves_total", "Solves the facade's fallback ladder answered after a primary error.",
			func() float64 { return float64(st.Degraded) }},
		{"placementd_panics_total", "Handler panics recovered into 500 responses.",
			func() float64 { return float64(s.metrics.panics.Load()) }},
		{"placementd_cache_quarantined_total", "Persistent cache entries that failed verification and were quarantined.",
			func() float64 { return float64(s.runner.CacheQuarantined()) }},
		{"placementd_breaker_trips_total", "Circuit-breaker open transitions across all solvers.",
			func() float64 { return float64(s.breakers.Trips()) }},
	}
	gauges := []gauge{
		{"placementd_inflight", "Requests currently holding an in-flight slot.",
			func() float64 { return float64(s.adm.InFlight()) }},
		{"placementd_queue_depth", "Requests waiting for an in-flight slot.",
			func() float64 { return float64(s.adm.QueueDepth()) }},
		{"placementd_workers", "Solver worker pool size.",
			func() float64 { return float64(s.runner.Workers()) }},
		{"placementd_breaker_open", "Circuit breakers currently refusing their primary solver.",
			func() float64 { return float64(s.breakers.Open(time.Now())) }},
		{"placementd_cache_hit_ratio", "Hits / (hits + misses) since start; 0 when idle.",
			func() float64 {
				if hits+misses == 0 {
					return 0
				}
				return float64(hits) / float64(hits+misses)
			}},
	}
	s.metrics.write(w, buildinfo.Version(), counters, gauges)
}

// writeJSON encodes one response body and counts the request. Bodies
// are marshaled before any byte is written, so a response is either a
// complete JSON document or an error status — never a torn body.
func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	s.metrics.request(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError sends the uniform JSON error body and counts the request.
func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, msg string) {
	s.metrics.request(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorResponse{Error: msg})
	w.Write(append(data, '\n'))
}
