// Package service is placement-as-a-service: the long-lived HTTP
// subsystem behind cmd/placementd. Clients POST a problem — a
// scenario-family triple or an inline topology plus traffic matrix —
// to /v1/solve (one problem) or /v1/batch (many problems, solved once
// per distinct instance on the batch engine), and get placements back
// as JSON. The server fronts one shared repro.Runner, so every
// request benefits from the engine's single-flight memo cache; built
// with a cache directory, the content-addressed result store persists
// across restarts and the first request after a restart is already
// warm.
//
// Admission control bounds the damage of overload: MaxInFlight solves
// run concurrently, MaxQueue requests wait, everything beyond is shed
// with 429 and a Retry-After. Per-request deadlines (timeout_ms) map
// to repro.WithTimeout, capped at MaxTimeout. /metrics exports
// Prometheus text (latency histogram, solver effort counters, queue
// depth, cache hit rate), /healthz answers liveness probes, and
// /v1/families lists the scenario registry.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/scenario"
)

// Config parameterizes New. The zero value is a usable in-memory
// server with defaults scaled to the host.
type Config struct {
	// CacheDir, when non-empty, persists the result store there
	// (created if missing) so restarts are warm.
	CacheDir string
	// Workers bounds the runner's concurrent solves; <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxInFlight bounds concurrently admitted requests; <= 0 means
	// 2×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; <= 0
	// means 128. Requests beyond MaxInFlight+MaxQueue are shed with
	// 429.
	MaxQueue int
	// MaxTimeout caps client-requested solve deadlines; <= 0 means
	// 1 minute.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies; <= 0 means 16 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// Server is the placement service. Build it with New, mount
// Handler() on an http.Server, and let http.Server.Shutdown drain it:
// in-flight solves finish (they are not canceled by listener close),
// queued requests complete, and the persistent store is already
// written through, so SIGTERM loses nothing.
type Server struct {
	cfg     Config
	runner  *repro.Runner
	adm     *admission
	metrics *metrics
	mux     *http.ServeMux
}

// New builds the service. A configured cache directory is created
// eagerly so a misconfigured path fails at startup, not at the first
// solve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ropts := []repro.RunnerOption{repro.WithWorkers(cfg.Workers)}
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		ropts = append(ropts, repro.WithCacheDir(cfg.CacheDir))
	}
	s := &Server{
		cfg:     cfg,
		runner:  repro.NewRunner(ropts...),
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		metrics: newMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/families", s.handleFamilies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Runner exposes the shared batch runner (the load driver's tests and
// cmd/placementd's shutdown logging read its cache counters).
func (s *Server) Runner() *repro.Runner { return s.runner }

// decode parses one JSON body strictly: unknown fields are rejected so
// a typoed option fails loudly instead of silently solving with
// defaults.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, endpoint string, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/solve"
	var req SolveRequest
	if !s.decode(w, r, endpoint, &req) {
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = repro.SolverTapExact
	}
	problem, err := req.ProblemSpec.build(solver)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := req.OptionsSpec.options(s.cfg.MaxTimeout)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	results, ok := s.solve(w, r, endpoint, solver, []repro.Problem{problem}, opts)
	if !ok {
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, SolveResponse{Result: results[0]})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/batch"
	var req BatchRequest
	if !s.decode(w, r, endpoint, &req) {
		return
	}
	if len(req.Problems) == 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, "batch has no problems")
		return
	}
	solver := req.Solver
	if solver == "" {
		solver = repro.SolverTapExact
	}
	problems := make([]repro.Problem, len(req.Problems))
	for i, spec := range req.Problems {
		p, err := spec.build(solver)
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, fmt.Sprintf("problem %d: %v", i, err))
			return
		}
		problems[i] = p
	}
	opts, err := req.OptionsSpec.options(s.cfg.MaxTimeout)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err.Error())
		return
	}
	results, ok := s.solve(w, r, endpoint, solver, problems, opts)
	if !ok {
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, BatchResponse{Results: results})
}

// solve runs one admitted batch on the shared runner. It owns the
// admission gate and the error-to-status mapping; on a false return
// the response has already been written.
func (s *Server) solve(w http.ResponseWriter, r *http.Request, endpoint, solver string, problems []repro.Problem, opts []repro.Option) ([]*repro.Result, bool) {
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", "1")
			s.writeError(w, endpoint, http.StatusTooManyRequests,
				fmt.Sprintf("at capacity (%d in flight, %d queued); retry", s.cfg.MaxInFlight, s.cfg.MaxQueue))
		} else {
			// The client hung up while queued; nobody reads the reply.
			s.writeError(w, endpoint, statusClientClosedRequest, "client canceled while queued")
		}
		return nil, false
	}
	defer release()
	start := time.Now()
	results, err := s.runner.SolveBatch(r.Context(), solver, problems, opts...)
	s.metrics.solve.observe(time.Since(start))
	if err != nil {
		// Unknown solver names and problem/solver kind mismatches are
		// client errors; anything else is the solver's own failure.
		code := http.StatusInternalServerError
		if _, lookupErr := repro.LookupSolver(solver); lookupErr != nil {
			code = http.StatusBadRequest
		}
		s.writeError(w, endpoint, code, err.Error())
		return nil, false
	}
	return results, true
}

// statusClientClosedRequest is nginx's non-standard 499 — the request
// died with the client, and the status only exists for the metrics.
const statusClientClosedRequest = 499

func (s *Server) handleFamilies(w http.ResponseWriter, _ *http.Request) {
	const endpoint = "/v1/families"
	resp := FamiliesResponse{Solvers: repro.Solvers()}
	for _, name := range scenario.Families() {
		f, err := scenario.Lookup(name)
		if err != nil {
			continue
		}
		resp.Families = append(resp.Families, FamilyInfo{
			Name: f.Name, Description: f.Description, MinSize: f.MinSize,
		})
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.metrics.request("/healthz", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.request("/metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	hits, misses := s.runner.CacheCounts()
	st := s.runner.BatchStats()
	counters := []gauge{
		{"placementd_requests_shed_total", "Requests rejected at the admission gate with 429.",
			func() float64 { return float64(s.adm.Shed()) }},
		{"placementd_cache_hits_total", "Solves served from the result cache.",
			func() float64 { return float64(hits) }},
		{"placementd_cache_misses_total", "Solves computed fresh.",
			func() float64 { return float64(misses) }},
		{"placementd_solver_nodes_total", "Branch-and-bound nodes explored across all solves.",
			func() float64 { return float64(st.Nodes) }},
		{"placementd_solver_pivots_total", "Simplex pivots across all solves.",
			func() float64 { return float64(st.Pivots) }},
		{"placementd_solver_cuts_total", "Root cutting planes added across all solves.",
			func() float64 { return float64(st.CutsAdded) }},
		{"placementd_solver_warm_starts_total", "Warm-started branch-and-bound nodes across all solves.",
			func() float64 { return float64(st.WarmStarts) }},
		{"placementd_solver_vars_fixed_total", "Variables fixed by reduced-cost fixing across all solves.",
			func() float64 { return float64(st.VarsFixed) }},
		{"placementd_solver_subtree_tasks_total", "Parallel branch-and-bound subtree tasks dispatched across all solves.",
			func() float64 { return float64(st.SubtreeTasks) }},
		{"placementd_solver_steals_total", "Subtree tasks run by a worker other than their round-robin home.",
			func() float64 { return float64(st.Steals) }},
		{"placementd_solver_dominance_prunes_total", "Sets excluded by dominance/symmetry reductions across all solves.",
			func() float64 { return float64(st.DominancePrunes) }},
	}
	gauges := []gauge{
		{"placementd_inflight", "Requests currently holding an in-flight slot.",
			func() float64 { return float64(s.adm.InFlight()) }},
		{"placementd_queue_depth", "Requests waiting for an in-flight slot.",
			func() float64 { return float64(s.adm.QueueDepth()) }},
		{"placementd_workers", "Solver worker pool size.",
			func() float64 { return float64(s.runner.Workers()) }},
		{"placementd_cache_hit_ratio", "Hits / (hits + misses) since start; 0 when idle.",
			func() float64 {
				if hits+misses == 0 {
					return 0
				}
				return float64(hits) / float64(hits+misses)
			}},
	}
	s.metrics.write(w, buildinfo.Version(), counters, gauges)
}

// writeJSON encodes one response body and counts the request. Bodies
// are marshaled before any byte is written, so a response is either a
// complete JSON document or an error status — never a torn body.
func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	s.metrics.request(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError sends the uniform JSON error body and counts the request.
func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, msg string) {
	s.metrics.request(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorResponse{Error: msg})
	w.Write(append(data, '\n'))
}
