package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/fault"
)

// brokenSolver is a registrable tap solver that fails until healed,
// counting its calls — the probe the breaker tests watch.
type brokenSolver struct {
	name   string
	broken atomic.Bool
	calls  atomic.Int64
}

func (b *brokenSolver) Name() string { return b.name }

func (b *brokenSolver) Solve(ctx context.Context, problem repro.Problem, opts ...repro.Option) (*repro.Result, error) {
	b.calls.Add(1)
	if b.broken.Load() {
		return nil, errors.New("injected solver failure")
	}
	return repro.Solve(ctx, repro.SolverTapGreedyGain, problem, opts...)
}

var brokenSeq atomic.Int64

func newBroken(t *testing.T) *brokenSolver {
	t.Helper()
	b := &brokenSolver{name: fmt.Sprintf("tap/broken-%d", brokenSeq.Add(1))}
	b.broken.Store(true)
	if err := repro.RegisterSolver(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// newServerPair builds the Server (for direct method access) and an
// httptest front end over its Handler.
func newServerPair(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

const solveBody = `{"solver":"%s","family":"waxman","size":16,"seed":1,"coverage":0.9}`

func TestProbesFlipTo503WhileDraining(t *testing.T) {
	s, ts := newServerPair(t, Config{})
	for _, probe := range []string{"/healthz", "/readyz"} {
		if code, body := getStatus(t, ts.URL+probe); code != http.StatusOK {
			t.Fatalf("%s before drain = %d: %s", probe, code, body)
		}
	}
	s.BeginDrain()
	for _, probe := range []string{"/healthz", "/readyz"} {
		code, body := getStatus(t, ts.URL+probe)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining = %d, want 503", probe, code)
		}
		if !strings.Contains(body, "draining") {
			t.Fatalf("%s body = %q, want draining", probe, body)
		}
	}
	// Draining refuses probes, not work: an in-flight-style solve must
	// still complete (Shutdown, not the service, ends request serving).
	code, body := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, "tap/greedy-gain"))
	if code != http.StatusOK {
		t.Fatalf("solve while draining = %d: %s", code, body)
	}
}

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func TestPanicRecoveredInto500(t *testing.T) {
	_, ts := newServerPair(t, Config{})
	reg := fault.NewRegistry(1)
	reg.Set(fault.PointHandler, fault.Schedule{Every: 1, Limit: 1, Panic: true})
	fault.Activate(reg)
	defer fault.Deactivate()

	code, body := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, "tap/greedy-gain"))
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500: %s", code, body)
	}
	if !strings.Contains(string(body), "internal panic") {
		t.Fatalf("500 body = %s, want the uniform panic error", body)
	}
	if v := metricValue(t, ts, "placementd_panics_total"); v != 1 {
		t.Fatalf("panics_total = %g, want 1", v)
	}
	// The process (and server) survived: the next request works.
	if code, body := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, "tap/greedy-gain")); code != http.StatusOK {
		t.Fatalf("request after recovered panic = %d: %s", code, body)
	}
}

func TestHandlerFaultErrorMapsTo500(t *testing.T) {
	_, ts := newServerPair(t, Config{})
	reg := fault.NewRegistry(1)
	reg.Set(fault.PointHandler, fault.Schedule{Every: 1, Limit: 1, Err: errors.New("synthetic handler failure")})
	fault.Activate(reg)
	defer fault.Deactivate()
	code, body := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, "tap/greedy-gain"))
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "handler fault") {
		t.Fatalf("injected handler error = %d: %s", code, body)
	}
}

func TestDegradedResponseStampedAndCounted(t *testing.T) {
	b := newBroken(t)
	_, ts := newServerPair(t, Config{})

	code, body := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, b.name))
	if code != http.StatusOK {
		t.Fatalf("degraded solve = %d: %s", code, body)
	}
	s := string(body)
	for _, want := range []string{`"Degraded":true`, `"FallbackSolver":"tap/greedy-gain"`, fmt.Sprintf(`"Solver":%q`, b.name)} {
		if !strings.Contains(s, want) {
			t.Fatalf("degraded response missing %s:\n%s", want, s)
		}
	}
	if v := metricValue(t, ts, "placementd_degraded_responses_total"); v != 1 {
		t.Fatalf("degraded_responses_total = %g, want 1", v)
	}
	if v := metricValue(t, ts, "placementd_degraded_solves_total"); v != 1 {
		t.Fatalf("degraded_solves_total = %g, want 1", v)
	}
}

func TestBreakerTripsProbesAndRecloses(t *testing.T) {
	b := newBroken(t)
	_, ts := newServerPair(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	body := fmt.Sprintf(solveBody, b.name)

	// Two ladder-served failures trip the breaker...
	for i := 0; i < 2; i++ {
		if code, resp := postJSON(t, ts.URL+"/v1/solve", body); code != http.StatusOK {
			t.Fatalf("degraded solve %d = %d: %s", i, code, resp)
		}
	}
	if got := b.calls.Load(); got != 2 {
		t.Fatalf("primary calls after trip = %d, want 2", got)
	}
	if v := metricValue(t, ts, "placementd_breaker_trips_total"); v != 1 {
		t.Fatalf("breaker_trips_total = %g, want 1", v)
	}
	if v := metricValue(t, ts, "placementd_breaker_open"); v != 1 {
		t.Fatalf("breaker_open = %g, want 1", v)
	}

	// ...so the next request skips the primary entirely and is still a
	// well-formed degraded 200.
	code, resp := postJSON(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK || !strings.Contains(string(resp), `"Degraded":true`) {
		t.Fatalf("breaker-open solve = %d: %s", code, resp)
	}
	if got := b.calls.Load(); got != 2 {
		t.Fatalf("open breaker let the primary be called (%d calls, want 2)", got)
	}

	// After cooldown, one half-open probe reaches the healed primary
	// and the breaker closes: undegraded answers resume.
	b.broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	code, resp = postJSON(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("probe solve = %d: %s", code, resp)
	}
	if strings.Contains(string(resp), `"Degraded":true`) {
		t.Fatalf("healed probe still degraded: %s", resp)
	}
	if got := b.calls.Load(); got != 3 {
		t.Fatalf("primary calls after probe = %d, want 3", got)
	}
	if v := metricValue(t, ts, "placementd_breaker_open"); v != 0 {
		t.Fatalf("breaker_open after heal = %g, want 0", v)
	}
}

func TestClientErrorsDoNotTripBreaker(t *testing.T) {
	_, ts := newServerPair(t, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	for i := 0; i < 3; i++ {
		code, _ := postJSON(t, ts.URL+"/v1/solve", fmt.Sprintf(solveBody, "tap/no-such-solver"))
		if code != http.StatusBadRequest {
			t.Fatalf("unknown solver = %d, want 400", code)
		}
	}
	if v := metricValue(t, ts, "placementd_breaker_trips_total"); v != 0 {
		t.Fatalf("breaker_trips_total after 400s = %g, want 0", v)
	}
}
