package service

import (
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/active"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ProblemSpec names one solver problem in a request, in one of two
// forms: a scenario-family triple (family, size, seed — resolved
// through the scenario registry, so identical triples hash to
// identical cache keys on every replica) or an inline topology (the
// Rocketfuel-style map text of internal/topology) plus an explicit
// demand list. Exactly one form must be used.
type ProblemSpec struct {
	// Scenario-named form.
	Family string `json:"family,omitempty"`
	Size   int    `json:"size,omitempty"`
	Seed   int64  `json:"seed,omitempty"`

	// Inline form.
	Topology string       `json:"topology,omitempty"`
	Demands  []DemandSpec `json:"demands,omitempty"`

	// MaxRoutes bounds the load-balanced routes per demand for
	// sample/* solvers (default 2; ignored elsewhere).
	MaxRoutes int `json:"max_routes,omitempty"`
}

// DemandSpec is one un-routed traffic request of an inline problem.
type DemandSpec struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Volume float64 `json:"volume"`
}

// OptionsSpec carries the solver options of a request; zero fields mean
// solver defaults. TimeoutMS maps to repro.WithTimeout, capped by the
// server's MaxTimeout — note that time-bounded solves deliberately
// bypass the result cache (a memoized incumbent must not masquerade as
// a fresh solve under a different budget), so only deadline-free
// requests are served from and persisted to the store.
type OptionsSpec struct {
	Coverage   float64 `json:"coverage,omitempty"`
	Budget     int     `json:"budget,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
	RelGap     float64 `json:"rel_gap,omitempty"`
	SolverSeed int64   `json:"solver_seed,omitempty"`
	MaxNodes   int     `json:"max_nodes,omitempty"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
}

// SolveRequest is the body of POST /v1/solve: one problem, one solver.
type SolveRequest struct {
	// Solver is a registry name ("tap/exact", "beacon/ilp",
	// "sample/ppme", …); default "tap/exact".
	Solver string `json:"solver,omitempty"`
	ProblemSpec
	OptionsSpec
}

// BatchRequest is the body of POST /v1/batch: many problems, one
// solver, shared options. The batch rides Runner.SolveBatch, so
// identical problems across the batch (and across requests) are solved
// once and served from the cache.
type BatchRequest struct {
	Solver   string        `json:"solver,omitempty"`
	Problems []ProblemSpec `json:"problems"`
	OptionsSpec
}

// SolveResponse is the body of a successful /v1/solve reply.
type SolveResponse struct {
	Result *repro.Result `json:"result"`
}

// BatchResponse is the body of a successful /v1/batch reply; results
// are in problem order.
type BatchResponse struct {
	Results []*repro.Result `json:"results"`
}

// FamilyInfo describes one registered scenario family in /v1/families.
type FamilyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	MinSize     int    `json:"min_size"`
}

// FamiliesResponse is the body of GET /v1/families.
type FamiliesResponse struct {
	Families []FamilyInfo `json:"families"`
	Solvers  []string     `json:"solvers"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// build turns the spec into the problem value the named solver
// consumes: *Instance for tap/*, *MultiInstance for sample/*, ProbeSet
// for beacon/* (probes over every router as a candidate).
func (p ProblemSpec) build(solver string) (repro.Problem, error) {
	var pop *topology.POP
	var demands []traffic.Demand
	switch {
	case p.Family != "" && p.Topology != "":
		return nil, fmt.Errorf("problem has both a family and an inline topology; use one")
	case p.Family != "":
		sc, err := scenario.Generate(p.Family, p.Size, p.Seed)
		if err != nil {
			return nil, err
		}
		pop, demands = sc.POP, sc.Demands
	case p.Topology != "":
		var err error
		pop, err = topology.Read(strings.NewReader(p.Topology))
		if err != nil {
			return nil, err
		}
		for i, d := range p.Demands {
			if d.Src < 0 || d.Src >= pop.G.NumNodes() || d.Dst < 0 || d.Dst >= pop.G.NumNodes() {
				return nil, fmt.Errorf("demand %d endpoints %d-%d outside the %d-node topology", i, d.Src, d.Dst, pop.G.NumNodes())
			}
			demands = append(demands, traffic.Demand{
				Src: repro.NodeID(d.Src), Dst: repro.NodeID(d.Dst), Volume: d.Volume,
			})
		}
	default:
		return nil, fmt.Errorf("problem needs either a scenario family or an inline topology")
	}

	switch {
	case strings.HasPrefix(solver, "beacon/"):
		cands := make([]repro.NodeID, 0, pop.Routers())
		cands = append(cands, pop.Backbone...)
		cands = append(cands, pop.Access...)
		return active.ComputeProbes(pop.G, cands)
	case strings.HasPrefix(solver, "sample/"):
		if len(demands) == 0 {
			return nil, fmt.Errorf("inline topology needs a non-empty demand list")
		}
		mr := p.MaxRoutes
		if mr <= 0 {
			mr = 2
		}
		return traffic.RouteMulti(pop, demands, mr)
	default:
		if len(demands) == 0 {
			return nil, fmt.Errorf("inline topology needs a non-empty demand list")
		}
		return traffic.Route(pop, demands)
	}
}

// options translates the spec into facade options, capping the
// client's deadline at maxTimeout (0 = no cap).
func (o OptionsSpec) options(maxTimeout time.Duration) ([]repro.Option, error) {
	var opts []repro.Option
	if o.Coverage != 0 {
		if o.Coverage < 0 || o.Coverage > 1 {
			return nil, fmt.Errorf("coverage %g outside (0,1]", o.Coverage)
		}
		opts = append(opts, repro.WithCoverage(o.Coverage))
	}
	if o.Budget > 0 {
		opts = append(opts, repro.WithBudget(o.Budget))
	}
	if o.Gap > 0 {
		opts = append(opts, repro.WithGap(o.Gap))
	}
	if o.RelGap > 0 {
		opts = append(opts, repro.WithRelGap(o.RelGap))
	}
	if o.SolverSeed != 0 {
		opts = append(opts, repro.WithSeed(o.SolverSeed))
	}
	if o.MaxNodes > 0 {
		opts = append(opts, repro.WithMaxNodes(o.MaxNodes))
	}
	if o.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d is negative", o.TimeoutMS)
	}
	if o.TimeoutMS > 0 {
		d := time.Duration(o.TimeoutMS) * time.Millisecond
		if maxTimeout > 0 && d > maxTimeout {
			d = maxTimeout
		}
		opts = append(opts, repro.WithTimeout(d))
	}
	return opts, nil
}
