package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is placementd's instrumentation: a handful of counters and
// one latency histogram, exported in the Prometheus text exposition
// format by Server's /metrics handler. No client library — the format
// is a few lines of text, and the stdlib-only constraint of the
// repository extends to the daemon.
type metrics struct {
	started time.Time

	mu       sync.Mutex
	requests map[requestKey]*atomic.Int64

	solve solveHistogram

	// degraded counts responses answered by a fallback solver;
	// panics counts handler panics recovered into 500s.
	degraded atomic.Int64
	panics   atomic.Int64
}

// requestKey labels the requests_total counter.
type requestKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{started: time.Now(), requests: make(map[requestKey]*atomic.Int64)}
}

// request counts one finished HTTP request by endpoint and status.
func (m *metrics) request(endpoint string, code int) {
	k := requestKey{endpoint, code}
	m.mu.Lock()
	c, ok := m.requests[k]
	if !ok {
		c = new(atomic.Int64)
		m.requests[k] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// solveBuckets are the histogram's upper bounds in seconds: sub-ms
// cache hits through multi-second exact solves.
var solveBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// solveHistogram is a fixed-bucket latency histogram with atomic
// counters (one extra bucket for +Inf) and a CAS-accumulated sum.
type solveHistogram struct {
	counts  [len(solveBuckets) + 1]atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// observe records one solve duration.
func (h *solveHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(solveBuckets[:], s)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + s)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// gauge is one scrape-time sampled value.
type gauge struct {
	name, help string
	value      func() float64
}

// write renders the full exposition. Scrape-time values (queue depth,
// cache counters, aggregated solver effort) come in through gauges and
// counters so the metrics block stays decoupled from Server.
func (m *metrics) write(w io.Writer, version string, counters []gauge, gauges []gauge) {
	fmt.Fprintf(w, "# HELP placementd_build_info Build identity of the running daemon.\n")
	fmt.Fprintf(w, "# TYPE placementd_build_info gauge\n")
	fmt.Fprintf(w, "placementd_build_info{version=%q} 1\n", version)

	fmt.Fprintf(w, "# HELP placementd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE placementd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "placementd_uptime_seconds %g\n", time.Since(m.started).Seconds())

	fmt.Fprintf(w, "# HELP placementd_requests_total Finished HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE placementd_requests_total counter\n")
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		fmt.Fprintf(w, "placementd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, c.Load())
	}

	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", c.name, c.help, c.name, c.name, c.value())
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value())
	}

	fmt.Fprintf(w, "# HELP placementd_solve_duration_seconds Wall-clock latency of solve and batch requests (admission to response).\n")
	fmt.Fprintf(w, "# TYPE placementd_solve_duration_seconds histogram\n")
	cum := int64(0)
	for i, le := range solveBuckets {
		cum += m.solve.counts[i].Load()
		fmt.Fprintf(w, "placementd_solve_duration_seconds_bucket{le=%q} %d\n", formatFloat(le), cum)
	}
	cum += m.solve.counts[len(solveBuckets)].Load()
	fmt.Fprintf(w, "placementd_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "placementd_solve_duration_seconds_sum %g\n", math.Float64frombits(m.solve.sumBits.Load()))
	fmt.Fprintf(w, "placementd_solve_duration_seconds_count %d\n", m.solve.count.Load())
}

// formatFloat renders a bucket bound the way Prometheus conventions
// expect ("0.005", not "5e-03").
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
