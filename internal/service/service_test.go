package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/topology"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// metricValue scrapes one un-labeled (or exactly-spelled) metric from
// a /metrics exposition.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE.+-]+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, data)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSolveScenarioCacheHitByteIdentical(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"solver":"tap/exact","family":"waxman","size":20,"seed":3,"coverage":0.95}`

	code, first := postJSON(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", code, first)
	}
	if h := metricValue(t, ts, "placementd_cache_hits_total"); h != 0 {
		t.Fatalf("cache hits after first solve = %g, want 0", h)
	}
	if m := metricValue(t, ts, "placementd_cache_misses_total"); m != 1 {
		t.Fatalf("cache misses after first solve = %g, want 1", m)
	}

	code, second := postJSON(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("second solve: status %d: %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from fresh response:\nfirst  %s\nsecond %s", first, second)
	}
	if h := metricValue(t, ts, "placementd_cache_hits_total"); h != 1 {
		t.Fatalf("cache hits after identical solve = %g, want 1", h)
	}
	if r := metricValue(t, ts, "placementd_cache_hit_ratio"); r != 0.5 {
		t.Fatalf("cache hit ratio = %g, want 0.5", r)
	}

	var out SolveResponse
	if err := json.Unmarshal(first, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Taps == nil || !out.Result.Optimal {
		t.Fatalf("solve response carries no optimal tap placement: %s", first)
	}
}

func TestBatchDeduplicatesAndOrders(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"solver":"tap/exact","coverage":0.9,"problems":[
		{"family":"waxman","size":16,"seed":1},
		{"family":"waxman","size":16,"seed":2},
		{"family":"waxman","size":16,"seed":1}]}`
	code, data := postJSON(t, ts.URL+"/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	a, _ := json.Marshal(out.Results[0])
	c, _ := json.Marshal(out.Results[2])
	if !bytes.Equal(a, c) {
		t.Fatal("identical problems in one batch returned different results")
	}
	// Two distinct instances: the duplicate must ride the memo cache.
	if m := metricValue(t, ts, "placementd_cache_misses_total"); m != 2 {
		t.Fatalf("cache misses = %g, want 2 (duplicate problem solved twice?)", m)
	}
	if h := metricValue(t, ts, "placementd_cache_hits_total"); h != 1 {
		t.Fatalf("cache hits = %g, want 1", h)
	}
}

func TestInlineTopologySolve(t *testing.T) {
	// Round an actual POP through the map format so the inline form is
	// exercised end to end.
	pop := topology.Generate(topology.Config{Routers: 6, InterRouterLinks: 9, Endpoints: 5, Seed: 7})
	var buf bytes.Buffer
	if err := topology.Write(&buf, pop); err != nil {
		t.Fatal(err)
	}
	demands := []map[string]any{}
	eps := pop.Endpoints
	for i := 0; i < len(eps)-1; i++ {
		demands = append(demands, map[string]any{"src": int(eps[i]), "dst": int(eps[i+1]), "volume": 5.0 + float64(i)})
	}
	req, _ := json.Marshal(map[string]any{
		"solver":   "tap/greedy-gain",
		"topology": buf.String(),
		"demands":  demands,
	})
	ts := newTestServer(t, Config{})
	code, data := postJSON(t, ts.URL+"/v1/solve", string(req))
	if code != http.StatusOK {
		t.Fatalf("inline solve: status %d: %s", code, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Taps == nil || out.Result.Taps.Fraction < 1-1e-9 {
		t.Fatalf("inline solve returned %s", data)
	}

	// Beacon solvers need no demands: probes come from the topology.
	req, _ = json.Marshal(map[string]any{"solver": "beacon/greedy", "topology": buf.String()})
	code, data = postJSON(t, ts.URL+"/v1/solve", string(req))
	if code != http.StatusOK {
		t.Fatalf("beacon solve: status %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Beacons == nil || out.Result.Devices() == 0 {
		t.Fatalf("beacon solve returned %s", data)
	}
}

func TestBadRequestsAreClientErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	//placevet:ignore maporder -- test table; each case is independent of execution order
	for name, body := range map[string]string{
		"no problem":       `{"solver":"tap/exact"}`,
		"both forms":       `{"family":"waxman","size":10,"topology":"node 0 r backbone\n"}`,
		"unknown family":   `{"family":"nope","size":10}`,
		"unknown solver":   `{"solver":"tap/nope","family":"waxman","size":10}`,
		"unknown field":    `{"familly":"waxman","size":10}`,
		"bad coverage":     `{"family":"waxman","size":10,"coverage":1.5}`,
		"negative timeout": `{"family":"waxman","size":10,"timeout_ms":-5}`,
		"malformed json":   `{`,
	} {
		code, data := postJSON(t, ts.URL+"/v1/solve", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", name, data)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/batch", `{"solver":"tap/exact","problems":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
}

func TestFamiliesAndHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/families")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out FamiliesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, f := range out.Families {
		families[f.Name] = f.MinSize > 0
	}
	for _, want := range []string{"waxman", "barabasi", "metro", "fattree", "churn", "pop"} {
		if !families[want] {
			t.Errorf("families response missing %q (got %v)", want, out.Families)
		}
	}
	solvers := strings.Join(out.Solvers, " ")
	if !strings.Contains(solvers, "tap/exact") || !strings.Contains(solvers, "beacon/ilp") {
		t.Errorf("solvers listing incomplete: %v", out.Solvers)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", hr.StatusCode, body)
	}
}

// slowGate lets the admission tests hold solves open deterministically:
// the registered solver blocks until the test releases it.
var slowGate = struct {
	sync.Mutex
	ch map[string]chan struct{}
}{ch: make(map[string]chan struct{})}

func init() {
	err := repro.RegisterSolver(repro.SolverFunc{SolverName: "test/slow", Fn: func(ctx context.Context, p repro.Problem, o repro.Options) (*repro.Result, error) {
		slowGate.Lock()
		ch := slowGate.ch["gate"]
		slowGate.Unlock()
		if ch != nil {
			select {
			case <-ch:
			case <-time.After(10 * time.Second):
			}
		}
		return repro.Solve(ctx, repro.SolverTapGreedyGain, p, repro.WithCoverage(o.Coverage))
	}})
	if err != nil {
		panic(err)
	}
}

func TestAdmissionControlShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	slowGate.Lock()
	slowGate.ch["gate"] = gate
	slowGate.Unlock()
	defer func() {
		slowGate.Lock()
		slowGate.ch["gate"] = nil
		slowGate.Unlock()
	}()

	ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	body := `{"solver":"test/slow","family":"waxman","size":12,"seed":9}`

	type reply struct {
		code int
		data []byte
	}
	results := make(chan reply, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data := postJSON(t, ts.URL+"/v1/solve", body)
			results <- reply{code, data}
		}()
		// Stagger so the roles are deterministic: first in flight,
		// second queued, third shed.
		time.Sleep(150 * time.Millisecond)
	}
	// The third request must already have been answered 429 while the
	// gate is still closed.
	r := <-results
	if r.code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d (%s), want 429", r.code, r.data)
	}
	if shed := metricValue(t, ts, "placementd_requests_shed_total"); shed != 1 {
		t.Fatalf("shed counter = %g, want 1", shed)
	}
	if q := metricValue(t, ts, "placementd_queue_depth"); q != 1 {
		t.Fatalf("queue depth = %g, want 1", q)
	}
	close(gate)
	wg.Wait()
	close(results)
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("admitted request: status %d (%s), want 200", r.code, r.data)
		}
	}
}

func TestPersistentCacheSurvivesRestartAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("cold solve takes ~150ms; skipped in -short")
	}
	dir := t.TempDir()
	// tap/ilp on this instance takes ~140ms cold; a warm hit is a cache
	// lookup plus JSON, well over 10x faster even on a noisy runner.
	body := `{"solver":"tap/ilp","family":"waxman","size":30,"seed":1,"coverage":0.95}`

	ts1 := newTestServer(t, Config{CacheDir: dir})
	coldStart := time.Now()
	code, first := postJSON(t, ts1.URL+"/v1/solve", body)
	cold := time.Since(coldStart)
	if code != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", code, first)
	}
	ts1.Close() // the kill: nothing of the first process survives but the dir

	ts2 := newTestServer(t, Config{CacheDir: dir})
	warmStart := time.Now()
	code, second := postJSON(t, ts2.URL+"/v1/solve", body)
	warm := time.Since(warmStart)
	if code != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("restarted server returned different bytes:\ncold %s\nwarm %s", first, second)
	}
	if h := metricValue(t, ts2, "placementd_cache_hits_total"); h != 1 {
		t.Fatalf("warm server cache hits = %g, want 1 (disk store not loaded?)", h)
	}
	if m := metricValue(t, ts2, "placementd_cache_misses_total"); m != 0 {
		t.Fatalf("warm server cache misses = %g, want 0", m)
	}
	if warm*10 > cold {
		t.Fatalf("warm solve %v not >=10x faster than cold %v", warm, cold)
	}
	t.Logf("cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}

func TestGracefulDrainFinishesInFlightSolves(t *testing.T) {
	gate := make(chan struct{})
	slowGate.Lock()
	slowGate.ch["gate"] = gate
	slowGate.Unlock()
	defer func() {
		slowGate.Lock()
		slowGate.ch["gate"] = nil
		slowGate.Unlock()
	}()

	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	// Not deferred-closed: Shutdown below is the close.

	type reply struct {
		code int
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"solver":"test/slow","family":"waxman","size":12,"seed":4}`))
		if err != nil {
			done <- reply{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- reply{resp.StatusCode, nil}
	}()

	// Wait until the request holds its in-flight slot, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.adm.InFlight() == 0 {
		t.Fatal("solve never reached the admission gate")
	}
	shutdownDone := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Config.Shutdown(ctx)
		close(shutdownDone)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown close the listener
	close(gate)

	r := <-done
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight solve during drain: code %d err %v, want 200", r.code, r.err)
	}
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight solve finished")
	}
}

func TestTimeoutRequestStillAnswers(t *testing.T) {
	ts := newTestServer(t, Config{MaxTimeout: 50 * time.Millisecond})
	// A time-bounded request on a hard instance must degrade to an
	// incumbent, not hang or error; and it must not poison the cache.
	body := `{"solver":"tap/ilp","family":"waxman","size":30,"seed":1,"coverage":0.95,"timeout_ms":60000}`
	code, data := postJSON(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("bounded solve: status %d: %s", code, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Taps == nil {
		t.Fatalf("bounded solve returned no placement: %s", data)
	}
	// Time-bounded solves bypass the cache entirely.
	if h, m := metricValue(t, ts, "placementd_cache_hits_total"), metricValue(t, ts, "placementd_cache_misses_total"); h != 0 || m != 0 {
		t.Fatalf("bounded solve touched the cache: %g/%g hit/miss", h, m)
	}
}

func TestMetricsHistogramCounts(t *testing.T) {
	ts := newTestServer(t, Config{})
	for seed := 1; seed <= 3; seed++ {
		body := fmt.Sprintf(`{"solver":"tap/exact","family":"waxman","size":14,"seed":%d}`, seed)
		if code, data := postJSON(t, ts.URL+"/v1/solve", body); code != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", seed, code, data)
		}
	}
	if n := metricValue(t, ts, "placementd_solve_duration_seconds_count"); n != 3 {
		t.Fatalf("histogram count = %g, want 3", n)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), `placementd_solve_duration_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket must equal count:\n%s", data)
	}
	if !strings.Contains(string(data), `placementd_requests_total{endpoint="/v1/solve",code="200"} 3`) {
		t.Fatalf("requests_total missing solve successes:\n%s", data)
	}
	if v := metricValue(t, ts, "placementd_solver_nodes_total"); v <= 0 {
		t.Fatalf("solver nodes counter = %g, want > 0 after exact solves", v)
	}
}
