package lp

import (
	"context"
	"math"
)

// This file drives the sparse revised simplex: the cold two-phase path
// and the warm path that seeds a saved Basis and restores primal
// feasibility with a bounded dual simplex. The branch-and-bound MIP
// re-solves a child node after tightening one variable's bounds; the
// parent's optimal basis stays dual feasible under that change, so a
// few dual pivots typically replace a full phase 1.

// solveRevised runs the revised simplex, warm-started from seed when
// possible. The second return value is false when the warm path could
// not produce a trustworthy answer (singular seed basis, numerical
// trouble, an iteration-capped dual restoration, or a warm
// infeasibility claim, which is always re-verified cold); the caller
// then re-solves cold.
func (p *Problem) solveRevised(ctx context.Context, seed *Basis) (*Solution, bool) {
	rv := newRevised(p)
	rv.ctx = ctx

	if seed != nil {
		if !rv.seedBasis(seed) {
			return nil, false
		}
		return rv.finishWarm(p)
	}

	st := rv.phase1()
	if st == Optimal {
		st = rv.phase2()
	}
	if st != Optimal {
		return rv.failed(st), true
	}
	return rv.optimalSolution(p, true), true
}

// failed packages a non-optimal outcome.
func (rv *revised) failed(st Status) *Solution {
	return &Solution{Status: st, Iterations: rv.iters, Refactorizations: rv.factors, DevexResets: rv.resets}
}

// optimalSolution extracts x, computes the user-sense objective, and
// attaches the basis snapshot.
func (rv *revised) optimalSolution(p *Problem, snap bool) *Solution {
	x := rv.extract()
	obj := 0.0
	for j, c := range p.cost {
		obj += c * x[j]
	}
	sol := &Solution{
		Status:           Optimal,
		Objective:        obj,
		X:                x,
		Iterations:       rv.iters,
		Refactorizations: rv.factors,
		DevexResets:      rv.resets,
	}
	if snap {
		sol.basis = rv.snapshot()
	}
	if p.extractDuals {
		sol.Duals, sol.ReducedCosts = rv.extractDuals(p)
	}
	return sol
}

// extractDuals recomputes y = c_B·B⁻¹ and the structural reduced costs
// d_j = c_j − y·a_j from the final basis, converted into the problem's
// own sense. A fresh BTRAN (rather than the incrementally maintained
// rv.dj) keeps the values drift-free: reduced-cost fixing prunes
// variables permanently, so it must not act on stale numbers.
func (rv *revised) extractDuals(p *Problem) (duals, reduced []float64) {
	y := make([]float64, rv.m)
	for i := range y {
		y[i] = rv.cost[rv.basis[i]]
	}
	rv.btran(y)
	dj := make([]float64, rv.nStruct)
	for j := 0; j < rv.nStruct; j++ {
		d := rv.cost[j]
		rows, vals := rv.cols.col(j)
		for t, i := range rows {
			if !StructZero(y[i]) {
				d -= y[i] * vals[t]
			}
		}
		dj[j] = d
	}
	if p.sense == Maximize {
		for i := range y {
			y[i] = -y[i]
		}
		for j := range dj {
			dj[j] = -dj[j]
		}
	}
	return y, dj
}

// seedBasis installs a saved basis: statuses are sanitized against the
// current bounds, artificials are locked at zero (a warm solve never
// reruns phase 1), the basis is refactorized, and the basic values are
// recomputed as x_B = B⁻¹(b − N·x_N). Returns false when the snapshot
// does not fit this problem or the seeded basis is singular.
func (rv *revised) seedBasis(seed *Basis) bool {
	if seed.m != rv.m || seed.n != rv.n {
		return false
	}
	for j := 0; j < rv.n; j++ {
		st := seed.status[j]
		if st == atUpper && math.IsInf(rv.upper[j], 1) {
			st = atLower
		}
		rv.status[j] = st
	}
	for i, j := range seed.cols {
		if j < 0 || j >= rv.n {
			return false
		}
		rv.basis[i] = j
		rv.status[j] = basic
	}
	rv.lockArtificials()
	if !rv.refactorize() {
		return false
	}
	x := rv.sAlpha
	copy(x, rv.rhs)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			continue
		}
		if xj := rv.nonbasicValue(j); !StructZero(xj) {
			rows, vals := rv.cols.col(j)
			for t, i := range rows {
				x[i] -= vals[t] * xj
			}
		}
	}
	rv.ftran(x)
	copy(rv.xB, x)
	return true
}

// finishWarm restores primal feasibility with the dual simplex when
// needed, then runs the primal phase 2 as cleanup (it terminates
// immediately when the dual pass already reached optimality).
func (rv *revised) finishWarm(p *Problem) (*Solution, bool) {
	if !rv.primalFeasible() {
		switch st := rv.dualSimplex(); st {
		case Canceled:
			return rv.failed(Canceled), true
		case Infeasible, IterLimit:
			// Infeasibility claims from the warm path are re-verified by
			// a cold solve, as is a capped dual restoration. The spent
			// effort is returned so the caller can account for it.
			return rv.failed(st), false
		}
	}
	st := rv.phase2()
	switch st {
	case Optimal:
		sol := rv.optimalSolution(p, true)
		if _, feas := p.Evaluate(sol.X); !feas {
			return sol, false // drifted: re-solve cold
		}
		return sol, true
	case Unbounded:
		// A primal-feasible basis with an unbounded ray is a sound
		// unboundedness proof even from a warm start.
		return rv.failed(Unbounded), true
	default:
		return rv.failed(st), true
	}
}

// primalFeasible reports whether every basic value is inside its bounds.
func (rv *revised) primalFeasible() bool {
	for i, k := range rv.basis {
		if rv.xB[i] < rv.lower[k]-epsFeas || rv.xB[i] > rv.upper[k]+epsFeas {
			return false
		}
	}
	return true
}

// dualSimplex drives the most-violated basic variable to its bound each
// iteration, choosing the entering column by the bounded dual ratio
// test (so dual feasibility — the primal optimality condition — is
// preserved). It stops Optimal when primal feasible, Infeasible when a
// violated row has no eligible column, IterLimit when capped.
func (rv *revised) dualSimplex() Status {
	rv.computeDj(rv.cost)
	capIters := 5*rv.m + 100
	for d := 0; ; d++ {
		if d >= capIters || rv.iters >= rv.maxIter {
			return IterLimit
		}
		if rv.iters&63 == 0 && rv.ctx != nil && rv.ctx.Err() != nil {
			return Canceled
		}

		// Leaving row: the basic variable farthest outside its bounds.
		r, sigma, worst := -1, 0.0, epsFeas
		for i := 0; i < rv.m; i++ {
			k := rv.basis[i]
			if v := rv.lower[k] - rv.xB[i]; v > worst {
				r, sigma, worst = i, -1, v
			}
			if !math.IsInf(rv.upper[k], 1) {
				if v := rv.xB[i] - rv.upper[k]; v > worst {
					r, sigma, worst = i, +1, v
				}
			}
		}
		if r < 0 {
			return Optimal
		}
		rv.iters++
		if !rv.djOK {
			rv.computeDj(rv.cost)
		}

		// Entering column: minimum dual ratio |d_j|/|α_rj| among columns
		// whose movement pushes x_B[r] toward the violated bound.
		arj := rv.computePivotRow(r)
		enter, dir := -1, 0
		bestRatio, bestPiv := math.Inf(1), 0.0
		for j := 0; j < rv.n; j++ {
			if rv.status[j] == basic || rv.upper[j]-rv.lower[j] <= epsFeas {
				continue
			}
			dj := +1
			if rv.status[j] == atUpper {
				dj = -1
			}
			a := arj[j]
			if float64(dj)*a*sigma <= epsPiv {
				continue
			}
			ratio := math.Abs(rv.dj[j]) / math.Abs(a)
			take := enter < 0 || ratio < bestRatio-epsCost ||
				(ratio <= bestRatio+epsCost && math.Abs(a) > bestPiv)
			if take {
				if ratio < bestRatio {
					bestRatio = ratio
				}
				enter, dir, bestPiv = j, dj, math.Abs(a)
			}
		}
		if enter < 0 {
			return Infeasible
		}

		alpha := rv.sAlpha
		rv.loadColumn(enter, alpha)
		rv.ftran(alpha)
		if math.Abs(alpha[r]) <= epsPiv {
			if !rv.refactorize() {
				return IterLimit
			}
			rv.computeDj(rv.cost)
			continue
		}
		k := rv.basis[r]
		beta, leaveTo := rv.lower[k], atLower
		if sigma > 0 {
			beta, leaveTo = rv.upper[k], atUpper
		}
		step := (rv.xB[r] - beta) / (float64(dir) * alpha[r])
		if step < 0 {
			step = 0
		}
		if !rv.applyPivot(r, enter, step, dir, alpha, leaveTo, arj) {
			return IterLimit
		}
	}
}
