package lp

import (
	"context"
	"math"
)

// This file implements the sparse revised simplex: the constraint matrix
// is stored column-major in compressed sparse form, the basis inverse is
// an LU factorization refreshed periodically plus a product-form eta
// file, pricing is Devex (approximate steepest edge) with the same Bland
// anti-cycling fallback as the dense tableau, and FTRAN/BTRAN replace
// the dense per-pivot tableau update. warm.go adds the bounded dual
// simplex that restores primal feasibility when a solve is warm-started
// from a saved Basis (the branch-and-bound case, where only one
// variable's bounds moved between solves).

// maxEtas is the eta-file length that triggers a refactorization.
const maxEtas = 100

// csc is a compressed sparse column matrix.
type csc struct {
	colPtr []int32
	rowIdx []int32
	val    []float64
}

func (a *csc) col(j int) ([]int32, []float64) {
	lo, hi := a.colPtr[j], a.colPtr[j+1]
	return a.rowIdx[lo:hi], a.val[lo:hi]
}

// eta is one product-form update of the basis inverse: after a pivot on
// row r with FTRAN'd entering column alpha, B' = B·E with E equal to
// identity except column r = alpha.
type eta struct {
	r   int32
	idx []int32 // nonzero rows of alpha, excluding r
	val []float64
	piv float64 // alpha[r]
}

// revised is the working state of the sparse revised simplex.
type revised struct {
	m, n int

	cols csc       // standard-form columns: struct | slack | artificial
	rhs  []float64 // b

	status []colStatus
	lower  []float64
	upper  []float64
	cost   []float64 // phase-2 costs (sense-adjusted)

	basis []int // column basic in each row
	xB    []float64

	nStruct int
	artBase int

	// Basis inverse: sparse LU of the basis (triangular peeling plus a
	// dense bump, see lu.go), refreshed every maxEtas pivots, plus the
	// eta file accumulated since.
	lu      luFactor
	etas    []eta
	factors int // Refactorizations counter

	// Devex reference-framework weights.
	pricing Pricing
	weight  []float64
	resets  int // DevexResets counter

	// Reduced costs, maintained incrementally between refactorizations
	// and recomputed from scratch whenever djOK is false.
	dj   []float64
	djOK bool

	iters   int
	maxIter int
	ctx     context.Context

	bland      int
	blandLimit int

	// Scratch vectors (no allocation in the pivot loop).
	sAlpha []float64 // FTRAN'd entering column, length m
	sRho   []float64 // BTRAN'd unit vector, length m
	sWork  []float64 // LU substitution scratch, length m
	sArj   []float64 // pivot row over nonbasic columns, length n
}

// newRevised converts a Problem into the same standard form the dense
// tableau uses: min c·x s.t. Ax = b, l ≤ x ≤ u, slacks for inequality
// rows, one artificial per row. The artificial's coefficient is ±1,
// chosen so its initial value (the row residual with every other column
// at its bound) is nonnegative.
func newRevised(p *Problem) *revised {
	m := len(p.rows)
	nStruct := len(p.names)
	nSlack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack + m
	rv := &revised{
		m:          m,
		n:          n,
		nStruct:    nStruct,
		artBase:    nStruct + nSlack,
		rhs:        make([]float64, m),
		status:     make([]colStatus, n),
		lower:      make([]float64, n),
		upper:      make([]float64, n),
		cost:       make([]float64, n),
		basis:      make([]int, m),
		xB:         make([]float64, m),
		weight:     make([]float64, n),
		dj:         make([]float64, n),
		maxIter:    p.maxIter,
		blandLimit: 60,
		pricing:    p.pricing,
		sAlpha:     make([]float64, m),
		sRho:       make([]float64, m),
		sWork:      make([]float64, m),
		sArj:       make([]float64, n),
	}
	if rv.maxIter == 0 {
		rv.maxIter = 200*(m+n) + 5000
	}

	for j := 0; j < nStruct; j++ {
		rv.lower[j] = p.lower[j]
		rv.upper[j] = p.upper[j]
		c := p.cost[j]
		if p.sense == Maximize {
			c = -c
		}
		rv.cost[j] = c
	}
	for j := nStruct; j < n; j++ {
		rv.lower[j] = 0
		rv.upper[j] = Inf
	}
	for j := 0; j < rv.artBase; j++ {
		rv.status[j] = atLower
	}
	for j := range rv.weight {
		rv.weight[j] = 1
	}

	// Build the CSC matrix: structural columns (terms gathered per
	// column, duplicates accumulated), then slack singletons, then
	// artificial singletons signed by the row residual.
	colEntries := make([][]int32, nStruct)
	colVals := make([][]float64, nStruct)
	for i, r := range p.rows {
		rv.rhs[i] = r.rhs
		for _, t := range r.terms {
			j := int(t.Var)
			k := len(colEntries[j])
			if k > 0 && colEntries[j][k-1] == int32(i) {
				colVals[j][k-1] += t.Coef
			} else {
				colEntries[j] = append(colEntries[j], int32(i))
				colVals[j] = append(colVals[j], t.Coef)
			}
		}
	}
	nnz := nSlack + m
	for j := range colEntries {
		nnz += len(colEntries[j])
	}
	rv.cols.colPtr = make([]int32, n+1)
	rv.cols.rowIdx = make([]int32, 0, nnz)
	rv.cols.val = make([]float64, 0, nnz)
	push := func(j int, rows []int32, vals []float64) {
		rv.cols.colPtr[j] = int32(len(rv.cols.rowIdx))
		rv.cols.rowIdx = append(rv.cols.rowIdx, rows...)
		rv.cols.val = append(rv.cols.val, vals...)
	}
	for j := 0; j < nStruct; j++ {
		push(j, colEntries[j], colVals[j])
	}
	slack := nStruct
	for i, r := range p.rows {
		switch r.rel {
		case LE:
			push(slack, []int32{int32(i)}, []float64{1})
			slack++
		case GE:
			push(slack, []int32{int32(i)}, []float64{-1})
			slack++
		}
	}
	// Close the last slack column so the residual pass below can read
	// every non-artificial column (the first artificial push rewrites
	// this same colPtr entry with the same value).
	rv.cols.colPtr[rv.artBase] = int32(len(rv.cols.rowIdx))
	resid := make([]float64, m)
	copy(resid, rv.rhs)
	for j := 0; j < rv.artBase; j++ {
		if xj := rv.lower[j]; !StructZero(xj) {
			rows, vals := rv.cols.col(j)
			for k, i := range rows {
				resid[i] -= vals[k] * xj
			}
		}
	}
	for i := 0; i < m; i++ {
		sign := 1.0
		if resid[i] < 0 {
			sign = -1
		}
		art := rv.artBase + i
		push(art, []int32{int32(i)}, []float64{sign})
		rv.basis[i] = art
		rv.status[art] = basic
		rv.xB[i] = math.Abs(resid[i])
	}
	rv.cols.colPtr[n] = int32(len(rv.cols.rowIdx))
	return rv
}

// ---- basis inverse: LU + eta file ----

// refactorize computes a fresh sparse LU of the current basis (see
// lu.go) and clears the eta file. It returns false when the basis is
// numerically singular.
func (rv *revised) refactorize() bool {
	if !rv.lu.factor(&rv.cols, rv.basis) {
		return false
	}
	rv.etas = rv.etas[:0]
	rv.factors++
	rv.djOK = false
	return true
}

// ftran solves B·x = a in place: x arrives as a dense copy of a and
// leaves as B⁻¹a.
func (rv *revised) ftran(x []float64) {
	rv.lu.ftran(x)
	// Apply the eta file in order.
	for e := range rv.etas {
		et := &rv.etas[e]
		xr := x[et.r] / et.piv
		if !StructZero(xr) {
			for t, i := range et.idx {
				x[i] -= et.val[t] * xr
			}
		}
		x[et.r] = xr
	}
}

// btran solves y·B = c in place: y arrives as a dense copy of c and
// leaves as cB⁻¹.
func (rv *revised) btran(y []float64) {
	// Apply the eta file in reverse (row-vector form).
	for e := len(rv.etas) - 1; e >= 0; e-- {
		et := &rv.etas[e]
		s := y[et.r]
		for t, i := range et.idx {
			if !StructZero(y[i]) {
				s -= et.val[t] * y[i]
			}
		}
		y[et.r] = s / et.piv
	}
	rv.lu.btran(y)
}

// appendEta records the pivot (row r, FTRAN'd column alpha) in the eta
// file, refactorizing when the file is full. It returns false on a
// singular refactorization.
func (rv *revised) appendEta(r int, alpha []float64) bool {
	if len(rv.etas) >= maxEtas {
		return rv.refactorize()
	}
	et := eta{r: int32(r), piv: alpha[r]}
	for i, v := range alpha {
		if i != r && math.Abs(v) > epsDrop {
			et.idx = append(et.idx, int32(i))
			et.val = append(et.val, v)
		}
	}
	rv.etas = append(rv.etas, et)
	return true
}

// ---- pricing and pivoting ----

// nonbasicValue returns the current value of nonbasic column j.
func (rv *revised) nonbasicValue(j int) float64 {
	if rv.status[j] == atUpper {
		return rv.upper[j]
	}
	return rv.lower[j]
}

// computeDj recomputes every reduced cost d_j = c_j − y·a_j from
// scratch (one BTRAN plus one pass over the nonzeros).
func (rv *revised) computeDj(c []float64) {
	y := rv.sRho
	for i := 0; i < rv.m; i++ {
		y[i] = c[rv.basis[i]]
	}
	rv.btran(y)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			rv.dj[j] = 0
			continue
		}
		d := c[j]
		rows, vals := rv.cols.col(j)
		for t, i := range rows {
			if !StructZero(y[i]) {
				d -= y[i] * vals[t]
			}
		}
		rv.dj[j] = d
	}
	rv.djOK = true
}

// resetDevex restores the reference framework (all weights 1).
func (rv *revised) resetDevex() {
	for j := range rv.weight {
		rv.weight[j] = 1
	}
	rv.resets++
}

// chooseEntering returns the entering column and movement direction
// (+1 from lower bound, −1 from upper), or (−1, 0) at optimality. The
// reduced costs in rv.dj must be current.
func (rv *revised) chooseEntering() (int, int) {
	useBland := rv.bland > rv.blandLimit
	enter, dir := -1, 0
	best := 0.0
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic || rv.upper[j]-rv.lower[j] <= epsFeas {
			continue
		}
		d := rv.dj[j]
		var viol float64
		var dj int
		if rv.status[j] == atLower && d < -epsCost {
			viol, dj = -d, +1
		} else if rv.status[j] == atUpper && d > epsCost {
			viol, dj = d, -1
		} else {
			continue
		}
		if useBland {
			return j, dj
		}
		score := viol
		if rv.pricing == PricingDevex {
			score = viol * viol / rv.weight[j]
		}
		if score > best {
			best = score
			enter, dir = j, dj
		}
	}
	return enter, dir
}

// ratioTest computes how far the entering variable can move using the
// FTRAN'd column alpha. The logic mirrors the dense tableau's.
func (rv *revised) ratioTest(enter, dir int, alpha []float64) (leaveRow int, step float64, flip bool) {
	limit := math.Inf(1)
	if !math.IsInf(rv.upper[enter], 1) {
		limit = rv.upper[enter] - rv.lower[enter]
	}
	useBland := rv.bland > rv.blandLimit
	leaveRow = -1
	best := math.Inf(1)
	bestPiv := 0.0
	for i := 0; i < rv.m; i++ {
		delta := float64(dir) * alpha[i]
		if math.Abs(delta) <= epsPiv {
			continue
		}
		k := rv.basis[i]
		var ratio float64
		if delta > 0 {
			ratio = (rv.xB[i] - rv.lower[k]) / delta
		} else {
			if math.IsInf(rv.upper[k], 1) {
				continue
			}
			ratio = (rv.upper[k] - rv.xB[i]) / -delta
		}
		if ratio < 0 {
			ratio = 0
		}
		piv := math.Abs(alpha[i])
		take := false
		switch {
		case leaveRow < 0 || ratio < best-epsFeas:
			take = true
		case ratio <= best+epsFeas:
			if useBland {
				take = k < rv.basis[leaveRow]
			} else {
				take = piv > bestPiv
			}
		}
		if take {
			if ratio < best {
				best = ratio
			}
			leaveRow = i
			bestPiv = piv
		}
	}
	switch {
	case leaveRow < 0 && math.IsInf(limit, 1):
		return -1, 0, false
	case leaveRow < 0 || best > limit:
		return -1, limit, true
	}
	return leaveRow, best, false
}

// boundFlip moves the entering variable across its range without a
// basis change.
func (rv *revised) boundFlip(enter, dir int, step float64, alpha []float64) {
	for i := 0; i < rv.m; i++ {
		rv.xB[i] -= float64(dir) * step * alpha[i]
	}
	if rv.status[enter] == atLower {
		rv.status[enter] = atUpper
	} else {
		rv.status[enter] = atLower
	}
}

// computePivotRow fills rv.sArj with the pivot row α_rj = ρ·a_j over
// nonbasic columns (ρ = B⁻ᵀe_r) and returns it. Entries for basic
// columns are left stale and must not be read.
func (rv *revised) computePivotRow(r int) []float64 {
	rho := rv.sRho
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	rv.btran(rho)
	arj := rv.sArj
	for j := 0; j < rv.n; j++ {
		if rv.status[j] == basic {
			continue
		}
		rows, vals := rv.cols.col(j)
		s := 0.0
		for t, i := range rows {
			if !StructZero(rho[i]) {
				s += rho[i] * vals[t]
			}
		}
		arj[j] = s
	}
	return arj
}

// applyPivot performs the basis change: column enter (moved by step in
// direction dir, FTRAN'd as alpha) replaces the variable basic in row
// r, which leaves to bound leaveTo. arj must hold the pivot row from
// computePivotRow; it drives the incremental reduced-cost and Devex
// updates. Returns false on a failed refactorization.
func (rv *revised) applyPivot(r, enter int, step float64, dir int, alpha []float64, leaveTo colStatus, arj []float64) bool {
	leave := rv.basis[r]
	enterVal := rv.nonbasicValue(enter) + float64(dir)*step
	for i := 0; i < rv.m; i++ {
		if i != r {
			rv.xB[i] -= float64(dir) * step * alpha[i]
		}
	}
	if leaveTo == atUpper && math.IsInf(rv.upper[leave], 1) {
		leaveTo = atLower
	}
	rv.status[leave] = leaveTo

	dEnter := rv.dj[enter]
	pivA := alpha[r]
	ratio := dEnter / pivA
	devex := rv.pricing == PricingDevex
	wScale := rv.weight[enter] / (pivA * pivA)
	maxW := 0.0
	for j := 0; j < rv.n; j++ {
		// leave was basic when arj was computed, so its entry is stale;
		// its reduced cost and weight are set explicitly below.
		if rv.status[j] == basic || j == enter || j == leave {
			continue
		}
		a := arj[j]
		if !StructZero(a) {
			rv.dj[j] -= ratio * a
			if devex {
				if w := a * a * wScale; w > rv.weight[j] {
					rv.weight[j] = w
				}
			}
		}
		if devex && rv.weight[j] > maxW {
			maxW = rv.weight[j]
		}
	}
	rv.dj[leave] = -ratio
	rv.dj[enter] = 0
	if devex {
		rv.weight[leave] = math.Max(wScale, 1)
		if maxW > devexMaxWeight {
			rv.resetDevex()
		}
	}

	rv.basis[r] = enter
	rv.status[enter] = basic
	rv.xB[r] = enterVal
	return rv.appendEta(r, alpha)
}

// loadColumn writes column j of A densely into dst.
func (rv *revised) loadColumn(j int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	rows, vals := rv.cols.col(j)
	for t, i := range rows {
		dst[i] = vals[t]
	}
}

// optimize runs primal revised simplex iterations with cost vector c
// until optimality, unboundedness, or a budget.
func (rv *revised) optimize(c []float64) Status {
	rv.computeDj(c)
	for {
		if rv.iters >= rv.maxIter {
			return IterLimit
		}
		// Poll the context every 64 pivots, as the dense path does.
		if rv.iters&63 == 0 && rv.ctx != nil && rv.ctx.Err() != nil {
			return Canceled
		}
		rv.iters++
		if !rv.djOK {
			rv.computeDj(c)
		}
		enter, dir := rv.chooseEntering()
		if enter < 0 {
			return Optimal
		}
		alpha := rv.sAlpha
		rv.loadColumn(enter, alpha)
		rv.ftran(alpha)
		leaveRow, step, flip := rv.ratioTest(enter, dir, alpha)
		if leaveRow < 0 && !flip {
			return Unbounded
		}
		if step < epsFeas {
			rv.bland++
			if rv.bland == rv.blandLimit+1 {
				// Entering Bland mode: refresh the reduced costs so the
				// anti-cycling scan runs on drift-free values.
				rv.computeDj(c)
			}
		} else {
			rv.bland = 0
		}
		if flip {
			rv.boundFlip(enter, dir, step, alpha)
			continue
		}
		if math.Abs(alpha[leaveRow]) <= epsPiv {
			// The FTRAN'd pivot is numerically void; refresh the
			// factorization and reduced costs and retry.
			if !rv.refactorize() {
				return IterLimit
			}
			continue
		}
		leaveTo := atUpper
		if float64(dir)*alpha[leaveRow] > 0 {
			leaveTo = atLower
		}
		arj := rv.computePivotRow(leaveRow)
		if !rv.applyPivot(leaveRow, enter, step, dir, alpha, leaveTo, arj) {
			return IterLimit
		}
	}
}

// phase1 finds a feasible basis by minimizing the artificial sum.
func (rv *revised) phase1() Status {
	if !rv.refactorize() {
		return IterLimit
	}
	c := make([]float64, rv.n)
	for j := rv.artBase; j < rv.n; j++ {
		c[j] = 1
	}
	st := rv.optimize(c)
	if st == IterLimit || st == Canceled {
		return st
	}
	artSum := 0.0
	for i, b := range rv.basis {
		if b >= rv.artBase {
			artSum += math.Abs(rv.xB[i])
		}
	}
	for j := rv.artBase; j < rv.n; j++ {
		if rv.status[j] != basic {
			artSum += rv.nonbasicValue(j)
		}
	}
	if artSum > epsArt {
		return Infeasible
	}
	rv.evictArtificials()
	rv.lockArtificials()
	return Optimal
}

// lockArtificials clamps every artificial to zero for phase 2.
func (rv *revised) lockArtificials() {
	for j := rv.artBase; j < rv.n; j++ {
		rv.upper[j] = 0
		if rv.status[j] == atUpper {
			rv.status[j] = atLower
		}
	}
}

// evictArtificials pivots basic artificials (at value ~0) out of the
// basis where a usable pivot exists, mirroring the dense path. Rows
// with no pivot are linearly dependent; their artificial stays basic at
// zero, harmless once clamped.
func (rv *revised) evictArtificials() {
	for r := 0; r < rv.m; r++ {
		if rv.basis[r] < rv.artBase {
			continue
		}
		arj := rv.computePivotRow(r)
		pivCol := -1
		best := epsPiv
		for j := 0; j < rv.artBase; j++ {
			if rv.status[j] == basic {
				continue
			}
			if a := math.Abs(arj[j]); a > best {
				best = a
				pivCol = j
			}
		}
		if pivCol < 0 {
			continue
		}
		alpha := rv.sAlpha
		rv.loadColumn(pivCol, alpha)
		rv.ftran(alpha)
		if math.Abs(alpha[r]) <= epsPiv {
			continue
		}
		if !rv.applyPivot(r, pivCol, 0, +1, alpha, atLower, arj) {
			return
		}
	}
}

// phase2 minimizes the real objective from a feasible basis.
func (rv *revised) phase2() Status {
	return rv.optimize(rv.cost)
}

// extract returns the structural variable values, clamped into bounds.
func (rv *revised) extract() []float64 {
	x := make([]float64, rv.nStruct)
	for j := 0; j < rv.nStruct; j++ {
		x[j] = rv.nonbasicValue(j)
	}
	for i, b := range rv.basis {
		if b < rv.nStruct {
			x[b] = rv.xB[i]
		}
	}
	for j := range x {
		if x[j] < rv.lower[j] {
			x[j] = rv.lower[j]
		}
		if x[j] > rv.upper[j] {
			x[j] = rv.upper[j]
		}
	}
	return x
}

// snapshot captures the basis for later warm starts.
func (rv *revised) snapshot() *Basis {
	b := &Basis{
		cols:   make([]int, rv.m),
		status: make([]colStatus, rv.n),
		m:      rv.m,
		n:      rv.n,
	}
	copy(b.cols, rv.basis)
	copy(b.status, rv.status)
	return b
}
