package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a random bounded LP with mixed LE/GE/EQ rows, finite
// and infinite upper bounds, negative lower bounds, and no feasibility
// guarantee — infeasible and unbounded instances are part of the draw.
func randomLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(12)
	m := 1 + rng.Intn(14)
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	vars := make([]Var, n)
	for j := 0; j < n; j++ {
		lo := 0.0
		if rng.Intn(4) == 0 {
			lo = -1 - rng.Float64()*4
		}
		up := lo + 1 + rng.Float64()*9
		if rng.Intn(3) == 0 {
			up = Inf
		}
		vars[j] = p.AddVariable("x", lo, up, math.Round(rng.Float64()*20-10)/2)
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) != 0 {
				terms = append(terms, Term{vars[j], math.Round(rng.Float64()*8-4) / 2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{vars[rng.Intn(n)], 1})
		}
		rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
		p.AddConstraint(rel, math.Round(rng.Float64()*20-6)/2, terms...)
	}
	return p
}

// TestSparseDenseAgreeProperty checks the tentpole invariant: the
// sparse revised simplex and the dense tableau oracle agree on status
// and objective (±1e-6) across ~200 random LPs covering every row
// relation, upper-bounded variables, and infeasible/unbounded draws.
func TestSparseDenseAgreeProperty(t *testing.T) {
	statuses := make(map[Status]int)
	for seed := int64(0); seed < 200; seed++ {
		sparse := randomLP(seed)
		sparse.SetAlgorithm(AlgoRevisedSparse)
		dense := randomLP(seed)
		dense.SetAlgorithm(AlgoDenseTableau)
		ss, err := sparse.Solve()
		if err != nil {
			t.Fatalf("seed %d: sparse: %v", seed, err)
		}
		ds, err := dense.Solve()
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		statuses[ss.Status]++
		if ss.Status != ds.Status {
			t.Errorf("seed %d: status sparse=%v dense=%v", seed, ss.Status, ds.Status)
			continue
		}
		if ss.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(ds.Objective))
		if math.Abs(ss.Objective-ds.Objective) > tol {
			t.Errorf("seed %d: objective sparse=%g dense=%g", seed, ss.Objective, ds.Objective)
		}
		// The sparse solution must satisfy the problem it solved.
		if _, feas := sparse.Evaluate(ss.X); !feas {
			t.Errorf("seed %d: sparse solution infeasible", seed)
		}
	}
	// The draw must actually cover all three outcomes, or the test
	// proves less than it claims.
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if statuses[st] == 0 {
			t.Fatalf("no %v instance among the draws: %v", st, statuses)
		}
	}
}

// TestSparseDenseAgreeUpperBounded focuses the agreement property on
// fully boxed variables (every bound finite), where bound flips carry
// most of the work.
func TestSparseDenseAgreeUpperBounded(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		n := 2 + rng.Intn(8)
		build := func() *Problem {
			r := rand.New(rand.NewSource(seed))
			p := NewProblem(Minimize)
			for j := 0; j < n; j++ {
				p.AddVariable("x", 0, 1+r.Float64()*3, r.Float64()*10-5)
			}
			for i := 0; i < n+2; i++ {
				terms := make([]Term, n)
				for j := 0; j < n; j++ {
					terms[j] = Term{Var(j), r.Float64()*2 - 1}
				}
				p.AddConstraint(LE, r.Float64()*4, terms...)
			}
			return p
		}
		sp, dn := build(), build()
		dn.SetAlgorithm(AlgoDenseTableau)
		ss, _ := sp.Solve()
		ds, _ := dn.Solve()
		if ss.Status != ds.Status {
			t.Fatalf("seed %d: status sparse=%v dense=%v", seed, ss.Status, ds.Status)
		}
		if ss.Status == Optimal && !almostEq(ss.Objective, ds.Objective, 1e-6*(1+math.Abs(ds.Objective))) {
			t.Fatalf("seed %d: objective sparse=%g dense=%g", seed, ss.Objective, ds.Objective)
		}
	}
}

// TestBealeCycling solves Beale's classic cycling LP — Dantzig pricing
// stalls on degenerate pivots until the Bland fallback engages — under
// both algorithms and both pricing rules.
func TestBealeCycling(t *testing.T) {
	build := func(algo Algorithm, pr Pricing) *Problem {
		p := NewProblem(Minimize)
		x1 := p.AddVariable("x1", 0, Inf, -0.75)
		x2 := p.AddVariable("x2", 0, Inf, 150)
		x3 := p.AddVariable("x3", 0, Inf, -0.02)
		x4 := p.AddVariable("x4", 0, Inf, 6)
		p.AddConstraint(LE, 0, Term{x1, 0.25}, Term{x2, -60}, Term{x3, -0.04}, Term{x4, 9})
		p.AddConstraint(LE, 0, Term{x1, 0.5}, Term{x2, -90}, Term{x3, -0.02}, Term{x4, 3})
		p.AddConstraint(LE, 1, Term{x3, 1})
		p.SetAlgorithm(algo)
		p.SetPricing(pr)
		return p
	}
	for _, tc := range []struct {
		name string
		algo Algorithm
		pr   Pricing
	}{
		{"sparse/devex", AlgoRevisedSparse, PricingDevex},
		{"sparse/dantzig", AlgoRevisedSparse, PricingDantzig},
		{"dense", AlgoDenseTableau, PricingDantzig},
	} {
		s, err := build(tc.algo, tc.pr).Solve()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if s.Status != Optimal || !almostEq(s.Objective, -0.05, 1e-9) {
			t.Fatalf("%s: status=%v obj=%g, want optimal -0.05", tc.name, s.Status, s.Objective)
		}
	}
}

// TestPricingRulesAgree checks Devex and Dantzig reach the same
// optimum on random instances (iteration counts may differ).
func TestPricingRulesAgree(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		devex := randomLP(seed)
		dantzig := randomLP(seed)
		dantzig.SetPricing(PricingDantzig)
		sv, _ := devex.Solve()
		sd, _ := dantzig.Solve()
		if sv.Status != sd.Status {
			t.Fatalf("seed %d: status devex=%v dantzig=%v", seed, sv.Status, sd.Status)
		}
		if sv.Status == Optimal && !almostEq(sv.Objective, sd.Objective, 1e-6*(1+math.Abs(sd.Objective))) {
			t.Fatalf("seed %d: objective devex=%g dantzig=%g", seed, sv.Objective, sd.Objective)
		}
	}
}

// TestWarmStartAgreesWithCold re-solves random LPs after a
// branch-style bound tightening, once cold and once warm-started from
// the parent basis, and requires identical statuses and objectives.
// This is the contract the branch-and-bound MIP relies on.
func TestWarmStartAgreesWithCold(t *testing.T) {
	warmUsed := 0
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		build := func() *Problem {
			r := rand.New(rand.NewSource(seed))
			p := NewProblem(Minimize)
			n := 3 + r.Intn(8)
			for j := 0; j < n; j++ {
				p.AddVariable("x", 0, 1, r.Float64()*4-2)
			}
			for i := 0; i < n; i++ {
				var terms []Term
				for j := 0; j < n; j++ {
					if r.Intn(2) == 0 {
						terms = append(terms, Term{Var(j), 1 + r.Float64()})
					}
				}
				if len(terms) == 0 {
					terms = append(terms, Term{Var(i % n), 1})
				}
				p.AddConstraint(GE, r.Float64()*2, terms...)
			}
			return p
		}
		parent := build()
		ps, err := parent.Solve()
		if err != nil || ps.Status != Optimal {
			continue // infeasible draws carry no basis to warm from
		}
		basis := ps.Basis()
		if basis == nil {
			t.Fatalf("seed %d: optimal sparse solve returned no basis", seed)
		}
		// Branch: pin one variable to 0 or 1.
		v := Var(rng.Intn(parent.NumVariables()))
		side := float64(rng.Intn(2))
		parent.SetBounds(v, side, side)

		warm, err := parent.SolveContextFrom(context.Background(), basis)
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		cold := build()
		cold.SetBounds(v, side, side)
		cs, err := cold.Solve()
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		if warm.Status != cs.Status {
			t.Fatalf("seed %d: status warm=%v cold=%v", seed, warm.Status, cs.Status)
		}
		if warm.Status == Optimal && !almostEq(warm.Objective, cs.Objective, 1e-6*(1+math.Abs(cs.Objective))) {
			t.Fatalf("seed %d: objective warm=%g cold=%g", seed, warm.Objective, cs.Objective)
		}
		if warm.Warm {
			warmUsed++
		}
	}
	if warmUsed == 0 {
		t.Fatal("warm path never engaged across 150 seeds")
	}
}

// TestWarmStartShapeMismatchFallsBack: a basis from a different problem
// shape must be ignored, not trusted.
func TestWarmStartShapeMismatchFallsBack(t *testing.T) {
	small := NewProblem(Minimize)
	small.AddVariable("x", 0, 1, 1)
	small.AddConstraint(GE, 1, Term{Var(0), 1})
	ss, err := small.Solve()
	if err != nil || ss.Status != Optimal {
		t.Fatalf("small solve: %v %+v", err, ss)
	}
	big := NewProblem(Minimize)
	x := big.AddVariable("x", 0, 5, 1)
	y := big.AddVariable("y", 0, 5, 2)
	big.AddConstraint(GE, 3, Term{x, 1}, Term{y, 1})
	bs, err := big.SolveContextFrom(context.Background(), ss.Basis())
	if err != nil || bs.Status != Optimal || !almostEq(bs.Objective, 3, 1e-6) {
		t.Fatalf("mismatched warm solve: %v %+v", err, bs)
	}
	if bs.Warm {
		t.Fatal("shape-mismatched basis must not count as a warm start")
	}
}

// TestRevisedCountersReported: the sparse path reports refactorization
// work; the dense path reports none.
func TestRevisedCountersReported(t *testing.T) {
	build := func(a Algorithm) *Problem {
		rng := rand.New(rand.NewSource(11))
		p := NewProblem(Minimize)
		n := 40
		for j := 0; j < n; j++ {
			p.AddVariable("x", 0, Inf, 1+rng.Float64())
		}
		for i := 0; i < 2*n; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					terms = append(terms, Term{Var(j), 1 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(GE, 1+rng.Float64()*5, terms...)
		}
		p.SetAlgorithm(a)
		return p
	}
	sp, err := build(AlgoRevisedSparse).Solve()
	if err != nil || sp.Status != Optimal {
		t.Fatalf("sparse: %v %+v", err, sp)
	}
	if sp.Refactorizations == 0 {
		t.Fatal("sparse solve reported no refactorizations")
	}
	dn, err := build(AlgoDenseTableau).Solve()
	if err != nil || dn.Status != Optimal {
		t.Fatalf("dense: %v %+v", err, dn)
	}
	if dn.Refactorizations != 0 || dn.DevexResets != 0 {
		t.Fatalf("dense solve reported revised-simplex counters: %+v", dn)
	}
	if !almostEq(sp.Objective, dn.Objective, 1e-6*(1+math.Abs(dn.Objective))) {
		t.Fatalf("objectives differ: sparse=%g dense=%g", sp.Objective, dn.Objective)
	}
}
