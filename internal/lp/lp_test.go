package lp

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleMin(t *testing.T) {
	// min x + y s.t. x + y >= 2, x >= 0, y >= 0 → obj 2.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint(GE, 2, Term{x, 1}, Term{y, 1})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, 2, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 2", s.Status, s.Objective)
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → obj 36 (x=2,y=6).
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 3)
	y := p.AddVariable("y", 0, Inf, 5)
	p.AddConstraint(LE, 4, Term{x, 1})
	p.AddConstraint(LE, 12, Term{y, 2})
	p.AddConstraint(LE, 18, Term{x, 3}, Term{y, 2})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, 36, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 36", s.Status, s.Objective)
	}
	if !almostEq(s.Value(x), 2, 1e-6) || !almostEq(s.Value(y), 6, 1e-6) {
		t.Fatalf("x=%g y=%g, want 2,6", s.Value(x), s.Value(y))
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj 24.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 2)
	y := p.AddVariable("y", 0, Inf, 3)
	p.AddConstraint(EQ, 10, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 2, Term{x, 1}, Term{y, -1})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, 24, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 24", s.Status, s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	p.AddConstraint(GE, 5, Term{x, 1})
	p.AddConstraint(LE, 3, Term{x, 1})
	s := solveOrDie(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", s.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, 1, 1)
	y := p.AddVariable("y", 0, 1, 1)
	p.AddConstraint(GE, 3, Term{x, 1}, Term{y, 1})
	s := solveOrDie(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint(GE, 1, Term{x, 1}, Term{y, 1})
	s := solveOrDie(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded", s.Status)
	}
}

func TestBoxOnlyNoConstraints(t *testing.T) {
	// min -x - 2y with 0 <= x <= 3, 0 <= y <= 4: x=3, y=4, obj -11.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, 3, -1)
	y := p.AddVariable("y", 0, 4, -2)
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, -11, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal -11", s.Status, s.Objective)
	}
	_ = x
	_ = y
}

func TestNegativeLowerBound(t *testing.T) {
	// min x with -5 <= x <= 5, x >= -3 → x = -3.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", -5, 5, 1)
	p.AddConstraint(GE, -3, Term{x, 1})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Value(x), -3, 1e-6) {
		t.Fatalf("status=%v x=%g, want optimal -3", s.Status, s.Value(x))
	}
}

func TestFixedVariable(t *testing.T) {
	// A variable fixed by its bounds participates as a constant.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 2, 2, 0)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint(GE, 5, Term{x, 1}, Term{y, 1})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Value(y), 3, 1e-6) {
		t.Fatalf("status=%v y=%g, want optimal 3", s.Status, s.Value(y))
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// x + x >= 4 must behave as 2x >= 4.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	p.AddConstraint(GE, 4, Term{x, 1}, Term{x, 1})
	s := solveOrDie(t, p)
	if !almostEq(s.Value(x), 2, 1e-6) {
		t.Fatalf("x=%g, want 2", s.Value(x))
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate corner: several constraints meet at the optimum.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 10)
	y := p.AddVariable("y", 0, Inf, -57)
	z := p.AddVariable("z", 0, Inf, -9)
	w := p.AddVariable("w", 0, Inf, -24)
	p.AddConstraint(LE, 0, Term{x, 0.5}, Term{y, -5.5}, Term{z, -2.5}, Term{w, 9})
	p.AddConstraint(LE, 0, Term{x, 0.5}, Term{y, -1.5}, Term{z, -0.5}, Term{w, 1})
	p.AddConstraint(LE, 1, Term{x, 1})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, 1, 1e-5) {
		t.Fatalf("status=%v obj=%g, want optimal 1", s.Status, s.Objective)
	}
}

func TestSetBoundsResolve(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, 1, -1)
	y := p.AddVariable("y", 0, 1, -1)
	p.AddConstraint(LE, 1.5, Term{x, 1}, Term{y, 1})
	s := solveOrDie(t, p)
	if !almostEq(s.Objective, -1.5, 1e-6) {
		t.Fatalf("first solve obj=%g, want -1.5", s.Objective)
	}
	// Fix x to 0 as branch-and-bound would and re-solve.
	p.SetBounds(x, 0, 0)
	s = solveOrDie(t, p)
	if !almostEq(s.Objective, -1, 1e-6) || !almostEq(s.Value(y), 1, 1e-6) {
		t.Fatalf("second solve obj=%g y=%g, want -1, 1", s.Objective, s.Value(y))
	}
}

func TestEmptyProblem(t *testing.T) {
	if _, err := NewProblem(Minimize).Solve(); err != ErrNoVariables {
		t.Fatalf("err=%v, want ErrNoVariables", err)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows exercise the redundant-row handling in
	// the artificial eviction step.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint(EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 8, Term{x, 2}, Term{y, 2})
	s := solveOrDie(t, p)
	if s.Status != Optimal || !almostEq(s.Objective, 4, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 4", s.Status, s.Objective)
	}
}

func TestVarAccessors(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("flow", 1, 7, 3)
	if p.VarName(x) != "flow" {
		t.Fatalf("name=%q", p.VarName(x))
	}
	lo, hi := p.Bounds(x)
	if lo != 1 || hi != 7 {
		t.Fatalf("bounds=[%g,%g]", lo, hi)
	}
	p.SetCost(x, -2)
	s := solveOrDie(t, p)
	if !almostEq(s.Value(x), 7, 1e-9) {
		t.Fatalf("x=%g, want upper bound 7", s.Value(x))
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Fatal("counts wrong")
	}
}

func TestBadVariablePanics(t *testing.T) {
	p := NewProblem(Minimize)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on empty bound range")
		}
	}()
	p.AddVariable("x", 3, 1, 0)
}

func TestBadTermPanics(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVariable("x", 0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unknown variable in constraint")
		}
	}()
	p.AddConstraint(LE, 1, Term{Var(5), 1})
}

func TestStatusAndRelStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration limit" {
		t.Fatal("Status strings wrong")
	}
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Fatal("Rel strings wrong")
	}
	if Status(42).String() == "" || Rel(42).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}

// Fractional knapsack: max Σ v·x, Σ w·x <= W, 0 <= x <= 1. The greedy
// by value density is provably optimal, giving an independent reference.
func TestFractionalKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		v := make([]float64, n)
		w := make([]float64, n)
		var totW float64
		for i := 0; i < n; i++ {
			v[i] = 1 + rng.Float64()*9
			w[i] = 1 + rng.Float64()*9
			totW += w[i]
		}
		W := totW * (0.2 + 0.6*rng.Float64())

		// Greedy reference.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return v[idx[a]]/w[idx[a]] > v[idx[b]]/w[idx[b]] })
		remain, want := W, 0.0
		for _, i := range idx {
			take := math.Min(1, remain/w[i])
			if take <= 0 {
				break
			}
			want += take * v[i]
			remain -= take * w[i]
		}

		p := NewProblem(Maximize)
		terms := make([]Term, n)
		for i := 0; i < n; i++ {
			x := p.AddVariable("x", 0, 1, v[i])
			terms[i] = Term{x, w[i]}
		}
		p.AddConstraint(LE, W, terms...)
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			t.Logf("seed %d: solve failed: %v %v", seed, err, s)
			return false
		}
		if !almostEq(s.Objective, want, 1e-5*(1+want)) {
			t.Logf("seed %d: lp=%g greedy=%g", seed, s.Objective, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Random feasible LPs: build constraints around a known feasible point so
// feasibility is guaranteed, then verify the returned solution satisfies
// every constraint and has an objective no worse than the seed point.
func TestRandomFeasibleLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(10)
		x0 := make([]float64, n)
		ub := make([]float64, n)
		cost := make([]float64, n)
		for j := 0; j < n; j++ {
			ub[j] = 1 + rng.Float64()*9
			x0[j] = rng.Float64() * ub[j]
			cost[j] = rng.Float64()*10 - 5
		}
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddVariable("x", 0, ub[j], cost[j])
		}
		type crow struct {
			coefs []float64
			rel   Rel
			rhs   float64
		}
		var crows []crow
		for i := 0; i < m; i++ {
			coefs := make([]float64, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				coefs[j] = rng.Float64()*4 - 2
				lhs += coefs[j] * x0[j]
			}
			var rel Rel
			var rhs float64
			switch rng.Intn(3) {
			case 0:
				rel, rhs = LE, lhs+rng.Float64()*3
			case 1:
				rel, rhs = GE, lhs-rng.Float64()*3
			default:
				rel, rhs = EQ, lhs
			}
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[j], coefs[j]}
			}
			p.AddConstraint(rel, rhs, terms...)
			crows = append(crows, crow{coefs, rel, rhs})
		}
		s, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if s.Status != Optimal {
			t.Logf("seed %d: status %v on a feasible instance", seed, s.Status)
			return false
		}
		// Check feasibility of the answer.
		for i, r := range crows {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += r.coefs[j] * s.X[j]
			}
			switch r.rel {
			case LE:
				if lhs > r.rhs+1e-5 {
					t.Logf("seed %d: row %d violated: %g > %g", seed, i, lhs, r.rhs)
					return false
				}
			case GE:
				if lhs < r.rhs-1e-5 {
					t.Logf("seed %d: row %d violated: %g < %g", seed, i, lhs, r.rhs)
					return false
				}
			case EQ:
				if math.Abs(lhs-r.rhs) > 1e-5 {
					t.Logf("seed %d: row %d violated: %g != %g", seed, i, lhs, r.rhs)
					return false
				}
			}
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-6 || s.X[j] > ub[j]+1e-6 {
				t.Logf("seed %d: x[%d]=%g outside [0,%g]", seed, j, s.X[j], ub[j])
				return false
			}
		}
		// Optimality sanity: no worse than the known feasible point.
		obj0 := 0.0
		for j := 0; j < n; j++ {
			obj0 += cost[j] * x0[j]
		}
		if s.Objective > obj0+1e-5*(1+math.Abs(obj0)) {
			t.Logf("seed %d: objective %g worse than feasible point %g", seed, s.Objective, obj0)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: solving the identical problem twice must give the same
// objective and iteration count.
func TestSolveDeterministic(t *testing.T) {
	build := func() *Problem {
		rng := rand.New(rand.NewSource(99))
		p := NewProblem(Minimize)
		vars := make([]Var, 6)
		for j := range vars {
			vars[j] = p.AddVariable("x", 0, 5, rng.Float64()*4-2)
		}
		for i := 0; i < 8; i++ {
			terms := make([]Term, len(vars))
			for j := range vars {
				terms[j] = Term{vars[j], rng.Float64()*2 - 1}
			}
			p.AddConstraint(LE, rng.Float64()*5, terms...)
		}
		return p
	}
	s1 := solveOrDie(t, build())
	s2 := solveOrDie(t, build())
	if s1.Status != s2.Status || s1.Iterations != s2.Iterations || !almostEq(s1.Objective, s2.Objective, 1e-12) {
		t.Fatalf("non-deterministic solve: %+v vs %+v", s1, s2)
	}
}

// TestSolveContextCanceled: a canceled context interrupts the pivot
// loop with a Canceled status instead of spinning to optimality.
func TestSolveContextCanceled(t *testing.T) {
	p := NewProblem(Minimize)
	n := 40
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = p.AddVariable("x", 0, Inf, 1+float64(j%7))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2*n; i++ {
		var terms []Term
		for j := range vars {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{Var: vars[j], Coef: 1 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(GE, 1+rng.Float64()*5, terms...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := p.SolveContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Canceled {
		t.Fatalf("status %v, want Canceled", sol.Status)
	}
	// And the background context still solves to optimality.
	opt, err := p.SolveContext(context.Background())
	if err != nil || opt.Status != Optimal {
		t.Fatalf("background solve: %v %+v", err, opt)
	}
}
