package lp

// Numerical tolerances, hoisted into one place so the sparse revised
// simplex and the dense tableau oracle cannot drift apart. The paper's
// instances are small and well scaled (unit costs, traffic volumes
// normalized by the generator), so fixed tolerances are adequate.
const (
	// epsCost is the reduced-cost optimality (dual feasibility)
	// tolerance.
	epsCost = 1e-7
	// epsPiv is the minimum admissible pivot magnitude.
	epsPiv = 1e-9
	// epsFeas is the feasibility tolerance on variable values.
	epsFeas = 1e-7
	// epsArt is the phase-1 threshold on the residual artificial sum
	// below which the basis counts as feasible.
	epsArt = 1e-6
	// epsRow is the constraint-violation tolerance used when validating
	// a caller-provided point (Problem.Evaluate).
	epsRow = 1e-6
	// epsDrop discards eta-file entries smaller than this in magnitude.
	epsDrop = 1e-12
	// devexMaxWeight is the Devex reference-weight blow-up threshold:
	// when any weight exceeds it the reference framework is reset.
	devexMaxWeight = 1e7
)

// The two helpers below are the sanctioned forms of *exact* float
// comparison. The placevet floatcmp analyzer flags bare ==/!= on
// floats everywhere in lp/mip/cover except this file, so every exact
// comparison in the numerical substrate is either one of these calls —
// stating its intent — or an explicitly waived site.

// StructZero reports whether a stored value is a structural (exact)
// zero: a sparse-matrix entry that was never written, a multiplier
// whose update can be skipped entirely, or an option field left at its
// zero sentinel. The test is exact by design — replacing it with a
// tolerance would *drop* small nonzero updates and change results.
func StructZero(x float64) bool { return x == 0 }

// ExactEq reports whether two floats are bit-comparable equal. Its one
// legitimate use is deterministic tie-breaking in comparators (equal
// sort keys must fall through to an index comparison on every machine
// the same way) and exact-bound detection (a binary variable has
// bounds exactly 0 and 1 by construction).
func ExactEq(a, b float64) bool { return a == b }
