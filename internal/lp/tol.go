package lp

// Numerical tolerances, hoisted into one place so the sparse revised
// simplex and the dense tableau oracle cannot drift apart. The paper's
// instances are small and well scaled (unit costs, traffic volumes
// normalized by the generator), so fixed tolerances are adequate.
const (
	// epsCost is the reduced-cost optimality (dual feasibility)
	// tolerance.
	epsCost = 1e-7
	// epsPiv is the minimum admissible pivot magnitude.
	epsPiv = 1e-9
	// epsFeas is the feasibility tolerance on variable values.
	epsFeas = 1e-7
	// epsArt is the phase-1 threshold on the residual artificial sum
	// below which the basis counts as feasible.
	epsArt = 1e-6
	// epsRow is the constraint-violation tolerance used when validating
	// a caller-provided point (Problem.Evaluate).
	epsRow = 1e-6
	// epsDrop discards eta-file entries smaller than this in magnitude.
	epsDrop = 1e-12
	// devexMaxWeight is the Devex reference-weight blow-up threshold:
	// when any weight exceeds it the reference framework is reset.
	devexMaxWeight = 1e7
)
