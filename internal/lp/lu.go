package lp

// This file implements the sparse basis factorization of the revised
// simplex: B (permuted) = L·U with L and U stored as sparse
// position-space columns. The factorization peels triangular structure
// first — front positions from column singletons, back positions from
// row singletons — and factors only the remaining "bump" densely with
// partial pivoting. Simplex bases of the paper's set-cover-style LPs
// are almost entirely peelable (slacks, artificials and coverage
// columns are singletons or near-singletons), so refactorization costs
// ~O(nnz + bump³) instead of the dense O(m³), and FTRAN/BTRAN become
// sparse column sweeps instead of dense triangular substitutions. That
// is what lets the MIP and cover solvers afford root LPs with
// thousands of rows.

// luEntry is one off-diagonal nonzero of L or U in position space.
type luEntry struct {
	pos int32
	val float64
}

// luFactor is a sparse LU factorization of a basis matrix.
type luFactor struct {
	m       int
	rowPos  []int32 // original row → position
	posRow  []int32 // position → original row
	slotPos []int32 // basis slot → position
	posSlot []int32 // position → basis slot

	lCol [][]luEntry // below-diagonal column entries of L (unit diag)
	uCol [][]luEntry // above-diagonal column entries of U
	diag []float64   // U diagonal (pivots), position space

	work []float64 // scratch, length m

	// factorization scratch (reused across refactorizations)
	rowCnt, colCnt []int32
	rowAlive       []bool
	colAlive       []bool
	rowEnt         [][]luEntry // row → (slot, val) of basis entries
	colEnt         [][]luEntry // slot → (row, val)
	stack          []int32
	bumpRows       []int32
	bumpCols       []int32
	dense          []float64 // bump block, nb × (nb + nBack)
	denseRow       []int32   // dense row index → original row
}

// factor (re)computes the factorization of the basis given by slots:
// column k of the basis is cols column basis[k]. It returns false when
// the basis is numerically singular.
func (f *luFactor) factor(cols *csc, basis []int) bool {
	m := len(basis)
	f.m = m
	f.ensure(m)
	// Gather basis columns and the row-wise transpose.
	for i := 0; i < m; i++ {
		f.rowEnt[i] = f.rowEnt[i][:0]
		f.rowCnt[i] = 0
		f.colCnt[i] = 0
		f.rowAlive[i] = true
		f.colAlive[i] = true
		f.rowPos[i] = -1
		f.slotPos[i] = -1
		f.lCol[i] = f.lCol[i][:0]
		f.uCol[i] = f.uCol[i][:0]
		f.diag[i] = 0
	}
	for k, j := range basis {
		rows, vals := cols.col(j)
		ent := f.colEnt[k][:0]
		for t, i := range rows {
			if StructZero(vals[t]) {
				continue
			}
			ent = append(ent, luEntry{pos: i, val: vals[t]})
		}
		f.colEnt[k] = ent
		f.colCnt[k] = int32(len(ent))
		for _, e := range ent {
			f.rowEnt[e.pos] = append(f.rowEnt[e.pos], luEntry{pos: int32(k), val: e.val})
		}
	}
	for i := 0; i < m; i++ {
		f.rowCnt[i] = int32(len(f.rowEnt[i]))
		if f.rowCnt[i] == 0 {
			return false // empty row: structurally singular
		}
	}
	for k := 0; k < m; k++ {
		if f.colCnt[k] == 0 {
			return false
		}
	}

	front, back := int32(0), int32(m-1)
	// Peel column singletons to the front and row singletons to the
	// back until neither remains. A singleton whose entry is too small
	// to pivot on is left for the bump's partial pivoting.
	for {
		progressed := false
		// Column singletons.
		f.stack = f.stack[:0]
		for k := 0; k < m; k++ {
			if f.colAlive[k] && f.colCnt[k] == 1 {
				f.stack = append(f.stack, int32(k))
			}
		}
		for len(f.stack) > 0 {
			k := f.stack[len(f.stack)-1]
			f.stack = f.stack[:len(f.stack)-1]
			if !f.colAlive[k] || f.colCnt[k] != 1 {
				continue
			}
			var piv luEntry
			found := false
			for _, e := range f.colEnt[k] {
				if f.rowAlive[e.pos] {
					piv = e
					found = true
					break
				}
			}
			if !found || abs(piv.val) < epsPiv {
				continue // leave for the bump
			}
			pos := front
			front++
			f.place(pos, piv.pos, k, piv.val)
			progressed = true
			for _, re := range f.rowEnt[piv.pos] {
				if c2 := re.pos; f.colAlive[c2] {
					f.colCnt[c2]--
					if f.colCnt[c2] == 1 {
						f.stack = append(f.stack, c2)
					}
				}
			}
			f.rowAlive[piv.pos] = false
			f.colAlive[k] = false
		}
		// Row singletons.
		f.stack = f.stack[:0]
		for i := 0; i < m; i++ {
			if f.rowAlive[i] && f.rowCnt[i] == 1 {
				f.stack = append(f.stack, int32(i))
			}
		}
		rowProgress := false
		for len(f.stack) > 0 {
			i := f.stack[len(f.stack)-1]
			f.stack = f.stack[:len(f.stack)-1]
			if !f.rowAlive[i] || f.rowCnt[i] != 1 {
				continue
			}
			var piv luEntry
			found := false
			for _, e := range f.rowEnt[i] {
				if f.colAlive[e.pos] {
					piv = e
					found = true
					break
				}
			}
			if !found || abs(piv.val) < epsPiv {
				continue
			}
			pos := back
			back--
			f.place(pos, i, piv.pos, piv.val)
			rowProgress = true
			for _, ce := range f.colEnt[piv.pos] {
				if r2 := ce.pos; f.rowAlive[r2] {
					f.rowCnt[r2]--
					if f.rowCnt[r2] == 1 {
						f.stack = append(f.stack, r2)
					}
				}
			}
			f.rowAlive[i] = false
			f.colAlive[piv.pos] = false
		}
		if !progressed && !rowProgress {
			break
		}
	}

	// Bump: everything still alive, positions front..back.
	f.bumpRows = f.bumpRows[:0]
	f.bumpCols = f.bumpCols[:0]
	for i := 0; i < m; i++ {
		if f.rowAlive[i] {
			f.bumpRows = append(f.bumpRows, int32(i))
		}
	}
	for k := 0; k < m; k++ {
		if f.colAlive[k] {
			f.bumpCols = append(f.bumpCols, int32(k))
		}
	}
	nb := len(f.bumpCols)
	if nb != len(f.bumpRows) || int32(front)+int32(nb) != back+1 {
		return false // should not happen; bail out safely
	}
	if nb > 0 {
		if !f.factorBump(front, nb) {
			return false
		}
	}
	// Assemble U from the untouched (front and back row) entries.
	// rowAlive is still true exactly for the bump rows here (peeling
	// cleared it for every placed row and factorBump never writes it).
	for i := 0; i < m; i++ {
		if f.rowAlive[i] {
			continue // bump rows: entries come from the eliminated block
		}
		pk := f.rowPos[i]
		for _, e := range f.rowEnt[i] {
			pj := f.slotPos[e.pos]
			if pj > pk {
				f.uCol[pj] = append(f.uCol[pj], luEntry{pos: pk, val: e.val})
			}
		}
	}
	return true
}

// place assigns (row, slot) to a peeled pivot position.
func (f *luFactor) place(pos, row, slot int32, piv float64) {
	f.rowPos[row] = pos
	f.posRow[pos] = row
	f.slotPos[slot] = pos
	f.posSlot[pos] = slot
	f.diag[pos] = piv
}

// factorBump densely factors the bump block (bump rows × bump columns,
// extended by the bump rows' entries in back columns, which the row
// operations also transform) with partial pivoting.
func (f *luFactor) factorBump(front int32, nb int) bool {
	m := f.m
	nBack := m - int(front) - nb
	width := nb + nBack
	if cap(f.dense) < nb*width {
		f.dense = make([]float64, nb*width)
	}
	d := f.dense[:nb*width]
	for i := range d {
		d[i] = 0
	}
	if cap(f.denseRow) < nb {
		f.denseRow = make([]int32, nb)
	}
	f.denseRow = f.denseRow[:nb]
	// Column position of bump col j is front+j; of back block column
	// nb+t it is front+nb+t.
	colOf := make([]int32, m) // slot → dense column or -1
	for k := range colOf {
		colOf[k] = -1
	}
	for j, k := range f.bumpCols {
		colOf[k] = int32(j)
	}
	for t := 0; t < nBack; t++ {
		colOf[f.posSlot[int(front)+nb+t]] = int32(nb + t)
	}
	for bi, r := range f.bumpRows {
		f.denseRow[bi] = r
		row := d[bi*width : (bi+1)*width]
		for _, e := range f.rowEnt[r] {
			if c := colOf[e.pos]; c >= 0 {
				row[c] += e.val
			}
		}
	}
	for k := 0; k < nb; k++ {
		p, best := k, abs(d[k*width+k])
		for i := k + 1; i < nb; i++ {
			if a := abs(d[i*width+k]); a > best {
				p, best = i, a
			}
		}
		if best < epsPiv {
			return false
		}
		if p != k {
			for j := 0; j < width; j++ {
				d[p*width+j], d[k*width+j] = d[k*width+j], d[p*width+j]
			}
			f.denseRow[p], f.denseRow[k] = f.denseRow[k], f.denseRow[p]
		}
		piv := d[k*width+k]
		for i := k + 1; i < nb; i++ {
			mult := d[i*width+k] / piv
			if StructZero(mult) {
				continue
			}
			d[i*width+k] = mult
			ri, rk := d[i*width:(i+1)*width], d[k*width:(k+1)*width]
			for j := k + 1; j < width; j++ {
				ri[j] -= mult * rk[j]
			}
		}
	}
	// Install positions and the sparse L/U columns of the bump.
	for k := 0; k < nb; k++ {
		pos := front + int32(k)
		f.place(pos, f.denseRow[k], f.bumpCols[k], d[k*width+k])
	}
	for k := 0; k < nb; k++ {
		pos := int(front) + k
		// L below-diagonal entries of bump column k.
		for i := k + 1; i < nb; i++ {
			if v := d[i*width+k]; !StructZero(v) {
				f.lCol[pos] = append(f.lCol[pos], luEntry{pos: front + int32(i), val: v})
			}
		}
		// U above-diagonal bump entries of column k.
		for i := 0; i < k; i++ {
			if v := d[i*width+k]; !StructZero(v) {
				f.uCol[pos] = append(f.uCol[pos], luEntry{pos: front + int32(i), val: v})
			}
		}
	}
	// Bump rows × back columns: post-elimination U entries.
	for t := 0; t < nBack; t++ {
		pos := int(front) + nb + t
		for i := 0; i < nb; i++ {
			if v := d[i*width+nb+t]; !StructZero(v) {
				f.uCol[pos] = append(f.uCol[pos], luEntry{pos: front + int32(i), val: v})
			}
		}
	}
	return true
}

// ftran solves B·x = a in place (a and x in row/slot space: on entry
// x[i] is the rhs component of row i, on exit x[k] is the value of
// basis slot k).
func (f *luFactor) ftran(x []float64) {
	m := f.m
	w := f.work
	for pos := 0; pos < m; pos++ {
		w[pos] = x[f.posRow[pos]]
	}
	// L solve (unit diagonal, sparse columns).
	for k := 0; k < m; k++ {
		xk := w[k]
		if StructZero(xk) {
			continue
		}
		for _, e := range f.lCol[k] {
			w[e.pos] -= e.val * xk
		}
	}
	// U solve, backward column sweep.
	for k := m - 1; k >= 0; k-- {
		xk := w[k] / f.diag[k]
		w[k] = xk
		if StructZero(xk) {
			continue
		}
		for _, e := range f.uCol[k] {
			w[e.pos] -= e.val * xk
		}
	}
	for s := 0; s < m; s++ {
		x[s] = w[f.slotPos[s]]
	}
}

// btran solves y·B = c in place (c in slot space on entry, y in row
// space on exit).
func (f *luFactor) btran(y []float64) {
	m := f.m
	w := f.work
	// v·U = c·Q: forward column sweep.
	for k := 0; k < m; k++ {
		s := y[f.posSlot[k]]
		for _, e := range f.uCol[k] {
			if !StructZero(w[e.pos]) {
				s -= e.val * w[e.pos]
			}
		}
		w[k] = s / f.diag[k]
	}
	// u·L = v: backward (unit diagonal).
	for k := m - 1; k >= 0; k-- {
		s := w[k]
		for _, e := range f.lCol[k] {
			if !StructZero(w[e.pos]) {
				s -= e.val * w[e.pos]
			}
		}
		w[k] = s
	}
	for pos := 0; pos < m; pos++ {
		y[f.posRow[pos]] = w[pos]
	}
}

// ensure sizes the reusable buffers for an m-row basis.
func (f *luFactor) ensure(m int) {
	if cap(f.rowPos) >= m {
		f.rowPos = f.rowPos[:m]
		f.posRow = f.posRow[:m]
		f.slotPos = f.slotPos[:m]
		f.posSlot = f.posSlot[:m]
		f.diag = f.diag[:m]
		f.work = f.work[:m]
		f.rowCnt = f.rowCnt[:m]
		f.colCnt = f.colCnt[:m]
		f.rowAlive = f.rowAlive[:m]
		f.colAlive = f.colAlive[:m]
		f.lCol = f.lCol[:m]
		f.uCol = f.uCol[:m]
		f.rowEnt = f.rowEnt[:m]
		f.colEnt = f.colEnt[:m]
		return
	}
	f.rowPos = make([]int32, m)
	f.posRow = make([]int32, m)
	f.slotPos = make([]int32, m)
	f.posSlot = make([]int32, m)
	f.diag = make([]float64, m)
	f.work = make([]float64, m)
	f.rowCnt = make([]int32, m)
	f.colCnt = make([]int32, m)
	f.rowAlive = make([]bool, m)
	f.colAlive = make([]bool, m)
	f.lCol = make([][]luEntry, m)
	f.uCol = make([][]luEntry, m)
	f.rowEnt = make([][]luEntry, m)
	f.colEnt = make([][]luEntry, m)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
