// Package lp implements a self-contained linear-programming solver. The
// default algorithm is a sparse revised simplex: the constraint matrix is
// stored column-major in compressed sparse form, the basis inverse is
// maintained as a sparse LU factorization (triangular peeling plus a
// dense bump, see lu.go) with a product-form eta file (periodically
// refactorized), pricing is Devex with a Bland anti-cycling fallback,
// and warm starts from a saved Basis restore feasibility with a bounded
// dual simplex. Optimal solves can expose row duals and reduced costs
// (SetExtractDuals) for the MIP layer's reduced-cost fixing. A dense
// two-phase tableau simplex is retained as the reference oracle
// (AlgoDenseTableau) for property tests and ablations.
//
// The paper solves its placement formulations with CPLEX; this package is
// the from-scratch substitute (see DESIGN.md §4). Every solve is
// deterministic and reproducible.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
)

// Sense is the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is a ≤ constraint.
	LE Rel = iota
	// EQ is an = constraint.
	EQ
	// GE is a ≥ constraint.
	GE
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can improve without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
	// Canceled means the solve was interrupted by its context before
	// reaching a proven outcome.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Algorithm selects the simplex implementation.
type Algorithm int

const (
	// AlgoRevisedSparse is the sparse revised simplex (default).
	AlgoRevisedSparse Algorithm = iota
	// AlgoDenseTableau is the dense tableau simplex, retained as the
	// test oracle and ablation baseline.
	AlgoDenseTableau
)

// Pricing selects the entering-variable rule of the revised simplex.
// The dense tableau always prices with Dantzig's rule.
type Pricing int

const (
	// PricingDevex is approximate steepest-edge pricing (default).
	PricingDevex Pricing = iota
	// PricingDantzig is most-negative-reduced-cost pricing, retained
	// for the ablation study.
	PricingDantzig
)

// Var identifies a decision variable within a Problem.
type Var int

// Term is one coefficient of a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Inf is the bound used for unbounded-above variables.
var Inf = math.Inf(1)

// Problem is a linear program under construction. Create one with
// NewProblem, add variables and constraints, then call Solve.
type Problem struct {
	sense        Sense
	names        []string
	lower        []float64
	upper        []float64
	cost         []float64
	rows         []row
	maxIter      int
	algo         Algorithm
	pricing      Pricing
	extractDuals bool
}

type row struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// SetMaxIterations overrides the simplex iteration budget (default:
// 200·(rows+cols)+5000, which is generous for the paper's instances).
func (p *Problem) SetMaxIterations(n int) { p.maxIter = n }

// SetAlgorithm selects the simplex implementation (default
// AlgoRevisedSparse).
func (p *Problem) SetAlgorithm(a Algorithm) { p.algo = a }

// SetPricing selects the revised simplex pricing rule (default
// PricingDevex).
func (p *Problem) SetPricing(pr Pricing) { p.pricing = pr }

// AddVariable adds a decision variable with bounds [lower, upper] and the
// given objective coefficient, returning its handle. lower must be finite
// and not exceed upper; upper may be lp.Inf.
func (p *Problem) AddVariable(name string, lower, upper, cost float64) Var {
	if math.IsInf(lower, 0) || math.IsNaN(lower) {
		panic(fmt.Sprintf("lp: variable %q has non-finite lower bound %g", name, lower))
	}
	if lower > upper {
		panic(fmt.Sprintf("lp: variable %q has empty bound range [%g,%g]", name, lower, upper))
	}
	p.names = append(p.names, name)
	p.lower = append(p.lower, lower)
	p.upper = append(p.upper, upper)
	p.cost = append(p.cost, cost)
	return Var(len(p.names) - 1)
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// VarName returns the name given to v at creation.
func (p *Problem) VarName(v Var) string { return p.names[v] }

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v Var) (lower, upper float64) { return p.lower[v], p.upper[v] }

// SetBounds replaces the bounds of v. It is used by the branch-and-bound
// MIP solver to fix or restrict integer variables between solves.
func (p *Problem) SetBounds(v Var, lower, upper float64) {
	if math.IsInf(lower, 0) || math.IsNaN(lower) || lower > upper {
		panic(fmt.Sprintf("lp: bad bounds [%g,%g] for %q", lower, upper, p.names[v]))
	}
	p.lower[v] = lower
	p.upper[v] = upper
}

// SetCost replaces the objective coefficient of v.
func (p *Problem) SetCost(v Var, cost float64) { p.cost[v] = cost }

// Cost returns the objective coefficient of v.
func (p *Problem) Cost(v Var) float64 { return p.cost[v] }

// Sense returns the optimization direction the problem was created with.
func (p *Problem) Sense() Sense { return p.sense }

// ConstraintRow returns constraint i as (relation, rhs, terms). The
// returned term slice is the problem's own storage and must not be
// modified; duplicate variables may appear and are additive. It exists
// so the MIP layer can presolve and separate cutting planes without a
// private copy of the model.
func (p *Problem) ConstraintRow(i int) (Rel, float64, []Term) {
	r := p.rows[i]
	return r.rel, r.rhs, r.terms
}

// TruncateConstraints drops every constraint with index >= n. The MIP
// root-strengthening loop uses it to roll back cutting planes whose
// re-solve ran into trouble; n must not exceed NumConstraints.
func (p *Problem) TruncateConstraints(n int) {
	if n < 0 || n > len(p.rows) {
		panic(fmt.Sprintf("lp: truncate to %d of %d rows", n, len(p.rows)))
	}
	p.rows = p.rows[:n]
}

// SetExtractDuals toggles extraction of row duals and structural
// reduced costs into Solution.Duals / Solution.ReducedCosts on optimal
// revised-simplex solves. It is off by default: the branch-and-bound
// MIP only needs them at the root, and extraction costs one extra
// BTRAN plus a pass over the matrix per solve.
func (p *Problem) SetExtractDuals(on bool) { p.extractDuals = on }

// AddConstraint adds the linear constraint Σ terms rel rhs. Terms
// referencing the same variable are accumulated.
func (p *Problem) AddConstraint(rel Rel, rhs float64, terms ...Term) {
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, row{terms: cp, rel: rel, rhs: rhs})
}

// Solution is the result of a successful or failed solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds one value per variable, indexed by Var. It is nil unless
	// Status is Optimal.
	X []float64
	// Iterations is the total simplex iterations over both phases
	// (primal and, on warm starts, dual).
	Iterations int
	// Refactorizations counts basis LU refactorizations of the revised
	// simplex (0 on the dense path).
	Refactorizations int
	// DevexResets counts Devex reference-framework resets (0 on the
	// dense path or under Dantzig pricing).
	DevexResets int
	// Warm reports that the solve completed on the warm-started path
	// (dual-simplex restoration from a seeded basis, no phase 1).
	Warm bool
	// Duals holds one dual multiplier per constraint row and
	// ReducedCosts one reduced cost per structural variable, both in the
	// problem's own sense (for Maximize they are the negated
	// minimization-form values). They are filled only on Optimal solves
	// of the revised simplex with SetExtractDuals(true); the dense
	// oracle never extracts them. The branch-and-bound MIP reads them at
	// the root for reduced-cost variable fixing.
	Duals        []float64
	ReducedCosts []float64

	basis *Basis
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// Basis returns a snapshot of the optimal basis, or nil when the solve
// did not end Optimal on the revised simplex. The snapshot can seed a
// later solve of the same problem shape via SolveContextFrom — the
// branch-and-bound MIP warm-starts child nodes this way.
func (s *Solution) Basis() *Basis { return s.basis }

// Basis is an opaque snapshot of a simplex basis: which standard-form
// column is basic in each row and the bound status of every column. It
// is only meaningful for a Problem with the same variables and
// constraints (bounds may differ).
type Basis struct {
	cols   []int
	status []colStatus
	m, n   int
}

// Fits reports whether the basis snapshot matches p's standard form —
// the precondition for SolveContextFrom's warm path to engage rather
// than discard the seed. SolveContextFrom already degrades to a cold
// solve on mismatch; Fits is for callers deciding whether to pay for an
// OPTIONAL solve at all: an LP worth running only when it will be a
// cheap warm repair must be skipped, not solved cold, on mismatch.
func (b *Basis) Fits(p *Problem) bool {
	if b == nil {
		return false
	}
	m := len(p.rows)
	nSlack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	return b.m == m && b.n == len(p.names)+nSlack+m
}

// ErrNoVariables is returned when Solve is called on an empty problem.
var ErrNoVariables = errors.New("lp: problem has no variables")

// Evaluate returns the objective value of x and whether x satisfies all
// constraints and bounds within tolerance. It is used by branch-and-bound
// warm starts to validate caller-provided incumbents.
func (p *Problem) Evaluate(x []float64) (objective float64, feasible bool) {
	if len(x) != len(p.names) {
		return 0, false
	}
	for j := range x {
		if x[j] < p.lower[j]-epsFeas || x[j] > p.upper[j]+epsFeas {
			return 0, false
		}
		objective += p.cost[j] * x[j]
	}
	for _, r := range p.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		switch r.rel {
		case LE:
			if lhs > r.rhs+epsRow {
				return 0, false
			}
		case GE:
			if lhs < r.rhs-epsRow {
				return 0, false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > epsRow {
				return 0, false
			}
		}
	}
	return objective, true
}

// Solve runs the two-phase simplex and returns the solution. The Problem
// is not modified and may be solved again (e.g. after SetBounds).
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveContext(context.Background())
}

// SolveContext is Solve under a context: the pivot loop polls ctx and
// returns a Canceled solution when it fires, so long simplex runs can be
// deadline-bounded by callers (the branch-and-bound MIP in particular).
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	return p.SolveContextFrom(ctx, nil)
}

// SolveContextFrom is SolveContext warm-started from a saved Basis. A
// nil (or shape-mismatched) basis solves cold. A usable basis skips
// phase 1: primal feasibility is restored with a bounded dual simplex
// (the seed is dual feasible when it comes from an optimal solve of the
// same problem with different bounds, the branch-and-bound case) and the
// solve falls back to a cold start whenever the warm path runs into
// numerical trouble. The dense tableau has no warm start; it ignores
// basis.
func (p *Problem) SolveContextFrom(ctx context.Context, basis *Basis) (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrNoVariables
	}
	if p.algo == AlgoDenseTableau {
		return p.solveDense(ctx), nil
	}
	var spentIters, spentFactors, spentResets int
	if basis != nil {
		// Inject point: a numerically unusable factorization of the warm
		// basis. Firing discards the basis, forcing the very cold-start
		// fallback a real singular seed would take — same answer, colder
		// clock — so chaos runs exercise the fallback without fabricating
		// wrong numerics.
		if fault.Hit(fault.PointLPFactor).Fire {
			basis = nil
		}
	}
	if basis != nil {
		sol, ok := p.solveRevised(ctx, basis)
		if ok {
			sol.Warm = true
			return sol, nil
		}
		// Warm start failed (singular seed, numerical trouble, or an
		// unverified infeasibility claim): solve cold, but keep the
		// attempt's effort in the counters so callers account for it.
		if sol != nil {
			spentIters, spentFactors, spentResets = sol.Iterations, sol.Refactorizations, sol.DevexResets
		}
	}
	sol, _ := p.solveRevised(ctx, nil)
	sol.Iterations += spentIters
	sol.Refactorizations += spentFactors
	sol.DevexResets += spentResets
	return sol, nil
}

// solveDense runs the retained dense tableau simplex (the oracle).
func (p *Problem) solveDense(ctx context.Context) *Solution {
	t := newTableau(p)
	t.ctx = ctx
	st := t.phase1()
	if st == Infeasible {
		return &Solution{Status: Infeasible, Iterations: t.iters}
	}
	if st == IterLimit || st == Canceled {
		return &Solution{Status: st, Iterations: t.iters}
	}
	st = t.phase2()
	switch st {
	case Unbounded, IterLimit, Canceled:
		return &Solution{Status: st, Iterations: t.iters}
	}
	x := t.extract()
	obj := 0.0
	for j, c := range p.cost {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iterations: t.iters}
}
