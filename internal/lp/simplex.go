package lp

import (
	"context"
	"math"
)

// Numerical tolerances live in tol.go, shared with the sparse revised
// simplex so the two implementations cannot drift apart.

// column status in the tableau
type colStatus int8

const (
	atLower colStatus = iota
	atUpper
	basic
)

// tableau is the working state of the bounded-variable primal simplex.
// It maintains the dense current tableau T = B⁻¹A and the basic variable
// values explicitly, updating both on every pivot.
type tableau struct {
	m, n int // rows, total columns (struct + slack + artificial)

	t     [][]float64 // m×n current tableau
	xB    []float64   // values of basic variables, per row
	basis []int       // column basic in each row

	status []colStatus // per column
	lower  []float64
	upper  []float64
	cost   []float64 // phase-2 internal costs (sense-adjusted)

	nStruct int // structural variables (the user's)
	nArt    int // artificial variables
	artBase int // first artificial column index

	iters   int
	maxIter int
	ctx     context.Context // nil means never canceled

	// bland activates Bland's anti-cycling rule after a run of
	// degenerate pivots.
	bland      int // consecutive degenerate pivots
	blandLimit int
}

// newTableau converts a Problem into simplex standard form:
// minimize c·x subject to Ax = b, l ≤ x ≤ u, with slack variables for
// inequality rows and one artificial variable per row forming the
// initial basis.
func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	nStruct := len(p.names)

	nSlack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack + m // m artificials
	tb := &tableau{
		m:          m,
		n:          n,
		nStruct:    nStruct,
		nArt:       m,
		artBase:    nStruct + nSlack,
		t:          make([][]float64, m),
		xB:         make([]float64, m),
		basis:      make([]int, m),
		status:     make([]colStatus, n),
		lower:      make([]float64, n),
		upper:      make([]float64, n),
		cost:       make([]float64, n),
		maxIter:    p.maxIter,
		blandLimit: 60,
	}
	if tb.maxIter == 0 {
		tb.maxIter = 200*(m+n) + 5000
	}

	for j := 0; j < nStruct; j++ {
		tb.lower[j] = p.lower[j]
		tb.upper[j] = p.upper[j]
		c := p.cost[j]
		if p.sense == Maximize {
			c = -c
		}
		tb.cost[j] = c
	}
	for j := nStruct; j < n; j++ {
		tb.lower[j] = 0
		tb.upper[j] = Inf
	}

	// Nonbasic structural and slack variables start at their lower
	// bound (always finite per the Problem API).
	for j := 0; j < tb.artBase; j++ {
		tb.status[j] = atLower
	}

	// Build rows; slack sign encodes the relation.
	slack := nStruct
	for i, r := range p.rows {
		rowv := make([]float64, n)
		for _, term := range r.terms {
			rowv[term.Var] += term.Coef
		}
		switch r.rel {
		case LE:
			rowv[slack] = 1
			slack++
		case GE:
			rowv[slack] = -1
			slack++
		}
		// Residual with all non-artificial variables at their bounds.
		resid := r.rhs
		for j := 0; j < tb.artBase; j++ {
			resid -= rowv[j] * tb.lower[j]
		}
		// Negate rows with negative residual so the artificial basis is
		// the identity and the stored tableau really is B⁻¹A.
		if resid < 0 {
			for j := range rowv {
				rowv[j] = -rowv[j]
			}
			resid = -resid
		}
		art := tb.artBase + i
		rowv[art] = 1
		tb.t[i] = rowv
		tb.basis[i] = art
		tb.status[art] = basic
		tb.xB[i] = resid
	}
	return tb
}

// nonbasicValue returns the current value of nonbasic column j.
func (tb *tableau) nonbasicValue(j int) float64 {
	if tb.status[j] == atUpper {
		return tb.upper[j]
	}
	return tb.lower[j]
}

// phase1 minimizes the sum of artificial variables. It returns Optimal
// when a feasible basis was found, Infeasible or IterLimit otherwise.
func (tb *tableau) phase1() Status {
	c := make([]float64, tb.n)
	for j := tb.artBase; j < tb.n; j++ {
		c[j] = 1
	}
	st := tb.optimize(c)
	if st == IterLimit || st == Canceled {
		return st
	}
	// Phase-1 objective = sum of artificial values.
	artSum := 0.0
	for i, b := range tb.basis {
		if b >= tb.artBase {
			artSum += tb.xB[i]
		}
	}
	for j := tb.artBase; j < tb.n; j++ {
		if tb.status[j] != basic {
			artSum += tb.nonbasicValue(j)
		}
	}
	if artSum > epsArt {
		return Infeasible
	}
	tb.evictArtificials()
	// Lock artificials at zero for phase 2.
	for j := tb.artBase; j < tb.n; j++ {
		tb.upper[j] = 0
		if tb.status[j] == atUpper {
			tb.status[j] = atLower
		}
	}
	return Optimal
}

// evictArtificials pivots basic artificial variables (necessarily at
// value ~0) out of the basis where a usable pivot exists. Rows where no
// structural or slack pivot exists are linearly dependent; their
// artificial stays basic at zero, which is harmless once its upper bound
// is clamped.
func (tb *tableau) evictArtificials() {
	for i := 0; i < tb.m; i++ {
		if tb.basis[i] < tb.artBase {
			continue
		}
		pivCol := -1
		best := epsPiv
		for j := 0; j < tb.artBase; j++ {
			if tb.status[j] == basic {
				continue
			}
			if a := math.Abs(tb.t[i][j]); a > best {
				best = a
				pivCol = j
			}
		}
		if pivCol >= 0 {
			tb.pivot(i, pivCol, 0, +1)
		}
	}
}

// phase2 minimizes the real objective starting from the feasible basis
// produced by phase1.
func (tb *tableau) phase2() Status {
	return tb.optimize(tb.cost)
}

// optimize runs primal simplex iterations with cost vector c until
// optimality, unboundedness or the iteration budget.
func (tb *tableau) optimize(c []float64) Status {
	y := make([]float64, tb.m)
	for {
		if tb.iters >= tb.maxIter {
			return IterLimit
		}
		// Poll the context every 64 pivots: cheap against the O(m·n)
		// pricing work of each iteration, responsive enough for deadlines.
		if tb.iters&63 == 0 && tb.ctx != nil && tb.ctx.Err() != nil {
			return Canceled
		}
		tb.iters++

		for i := range y {
			y[i] = c[tb.basis[i]]
		}
		enter, dir := tb.chooseEntering(c, y)
		if enter < 0 {
			return Optimal
		}
		leaveRow, step, flip := tb.ratioTest(enter, dir)
		if leaveRow < 0 && !flip {
			return Unbounded
		}
		if step < epsFeas {
			tb.bland++
		} else {
			tb.bland = 0
		}
		if flip {
			tb.boundFlip(enter, dir, step)
			continue
		}
		tb.pivot(leaveRow, enter, step, dir)
	}
}

// chooseEntering returns the entering column and its movement direction
// (+1 when increasing from the lower bound, -1 when decreasing from the
// upper bound), or (-1, 0) at optimality. It uses Dantzig pricing and
// falls back to Bland's rule after a run of degenerate pivots.
func (tb *tableau) chooseEntering(c, y []float64) (int, int) {
	useBland := tb.bland > tb.blandLimit
	enter, dir := -1, 0
	bestViol := epsCost
	for j := 0; j < tb.n; j++ {
		if tb.status[j] == basic {
			continue
		}
		if tb.upper[j]-tb.lower[j] <= epsFeas {
			continue // fixed variable can never move
		}
		// Reduced cost d_j = c_j - y·T_j.
		d := c[j]
		for i := 0; i < tb.m; i++ {
			if !StructZero(y[i]) {
				d -= y[i] * tb.t[i][j]
			}
		}
		var viol float64
		var dj int
		if tb.status[j] == atLower && d < -epsCost {
			viol, dj = -d, +1
		} else if tb.status[j] == atUpper && d > epsCost {
			viol, dj = d, -1
		} else {
			continue
		}
		if useBland {
			return j, dj
		}
		if viol > bestViol {
			bestViol = viol
			enter, dir = j, dj
		}
	}
	return enter, dir
}

// ratioTest computes how far the entering variable can move. It returns
// the leaving row (or -1), the step length, and whether the move is a
// bound flip of the entering variable itself.
func (tb *tableau) ratioTest(enter, dir int) (leaveRow int, step float64, flip bool) {
	// Movement allowed by the entering variable's own opposite bound.
	limit := math.Inf(1)
	if !math.IsInf(tb.upper[enter], 1) {
		limit = tb.upper[enter] - tb.lower[enter]
	}
	useBland := tb.bland > tb.blandLimit
	leaveRow = -1
	best := math.Inf(1)
	bestPiv := 0.0
	for i := 0; i < tb.m; i++ {
		delta := float64(dir) * tb.t[i][enter]
		if math.Abs(delta) <= epsPiv {
			continue
		}
		k := tb.basis[i]
		var ratio float64
		if delta > 0 {
			// Basic variable decreases towards its lower bound.
			ratio = (tb.xB[i] - tb.lower[k]) / delta
		} else {
			// Basic variable increases towards its upper bound.
			if math.IsInf(tb.upper[k], 1) {
				continue
			}
			ratio = (tb.upper[k] - tb.xB[i]) / -delta
		}
		if ratio < 0 {
			ratio = 0
		}
		piv := math.Abs(tb.t[i][enter])
		take := false
		switch {
		case leaveRow < 0 || ratio < best-epsFeas:
			take = true
		case ratio <= best+epsFeas:
			// Tie: prefer the numerically larger pivot, or the
			// smallest variable index under Bland's rule.
			if useBland {
				take = k < tb.basis[leaveRow]
			} else {
				take = piv > bestPiv
			}
		}
		if take {
			if ratio < best {
				best = ratio
			}
			leaveRow = i
			bestPiv = piv
		}
	}
	switch {
	case leaveRow < 0 && math.IsInf(limit, 1):
		return -1, 0, false // unbounded
	case leaveRow < 0 || best > limit:
		return -1, limit, true // entering variable flips bound
	}
	return leaveRow, best, false
}

// boundFlip moves the entering variable across its range without a basis
// change, updating the basic values it affects.
func (tb *tableau) boundFlip(enter, dir int, step float64) {
	for i := 0; i < tb.m; i++ {
		tb.xB[i] -= float64(dir) * step * tb.t[i][enter]
	}
	if tb.status[enter] == atLower {
		tb.status[enter] = atUpper
	} else {
		tb.status[enter] = atLower
	}
}

// pivot makes column enter basic in row r after the entering variable
// moved by step in direction dir, and updates the dense tableau.
func (tb *tableau) pivot(r, enter int, step float64, dir int) {
	leave := tb.basis[r]
	delta := float64(dir) * tb.t[r][enter]

	enterVal := tb.nonbasicValue(enter) + float64(dir)*step
	for i := 0; i < tb.m; i++ {
		if i != r {
			tb.xB[i] -= float64(dir) * step * tb.t[i][enter]
		}
	}
	// The leaving variable exits at the bound it ran into.
	if delta > 0 {
		tb.status[leave] = atLower
	} else {
		tb.status[leave] = atUpper
	}
	tb.basis[r] = enter
	tb.status[enter] = basic
	tb.xB[r] = enterVal

	// Gaussian elimination on the tableau.
	piv := tb.t[r][enter]
	rowR := tb.t[r]
	inv := 1 / piv
	for j := 0; j < tb.n; j++ {
		rowR[j] *= inv
	}
	rowR[enter] = 1
	for i := 0; i < tb.m; i++ {
		if i == r {
			continue
		}
		f := tb.t[i][enter]
		if StructZero(f) {
			continue
		}
		rowI := tb.t[i]
		for j := 0; j < tb.n; j++ {
			rowI[j] -= f * rowR[j]
		}
		rowI[enter] = 0
	}
}

// extract returns the structural variable values of the current basis,
// clamped into their bounds to absorb round-off.
func (tb *tableau) extract() []float64 {
	x := make([]float64, tb.nStruct)
	for j := 0; j < tb.nStruct; j++ {
		x[j] = tb.nonbasicValue(j)
	}
	for i, b := range tb.basis {
		if b < tb.nStruct {
			x[b] = tb.xB[i]
		}
	}
	for j := range x {
		if x[j] < tb.lower[j] {
			x[j] = tb.lower[j]
		}
		if x[j] > tb.upper[j] {
			x[j] = tb.upper[j]
		}
	}
	return x
}
