// Package stats provides the small experiment harness used by the
// figure-reproduction benchmarks: multi-seed runs (the paper averages
// every point over 20 simulations), summary statistics and plain-text
// series tables mirroring the paper's plots.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min and Max return the extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Series is one experiment sweep: for every x value (e.g. the monitored
// percentage of Figures 7–8, or |V_B| of Figures 9–11), a named set of
// per-seed samples per algorithm.
type Series struct {
	// Title and XLabel/YLabel describe the figure being reproduced.
	Title, XLabel, YLabel string
	// Columns are algorithm names, in display order.
	Columns []string
	points  []seriesPoint
}

type seriesPoint struct {
	x       float64
	samples map[string][]float64
}

// NewSeries creates an empty series with the given algorithm columns.
func NewSeries(title, xlabel, ylabel string, columns ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Columns: columns}
}

// Add records one sample of one algorithm at an x position.
func (s *Series) Add(x float64, column string, value float64) {
	known := false
	for _, c := range s.Columns {
		if c == column {
			known = true
			break
		}
	}
	if !known {
		panic(fmt.Sprintf("stats: unknown column %q", column))
	}
	for i := range s.points {
		if s.points[i].x == x {
			s.points[i].samples[column] = append(s.points[i].samples[column], value)
			return
		}
	}
	s.points = append(s.points, seriesPoint{
		x:       x,
		samples: map[string][]float64{column: {value}},
	})
}

// MeanAt returns the mean of a column at x (NaN when absent) — used by
// tests and EXPERIMENTS.md generation.
func (s *Series) MeanAt(x float64, column string) float64 {
	for _, p := range s.points {
		if p.x == x {
			if xs, ok := p.samples[column]; ok {
				return Mean(xs)
			}
		}
	}
	return math.NaN()
}

// Xs returns the sorted x positions.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.points))
	for i, p := range s.points {
		xs[i] = p.x
	}
	sort.Float64s(xs)
	return xs
}

// Write renders the series as an aligned text table: one row per x, one
// mean±std pair per algorithm — the textual equivalent of the paper's
// plots.
func (s *Series) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Title)
	fmt.Fprintf(&b, "# y: %s, averaged over per-point samples (mean ± std)\n", s.YLabel)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	pts := append([]seriesPoint(nil), s.points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12g", p.x)
		for _, c := range s.Columns {
			xs, ok := p.samples[c]
			if !ok || len(xs) == 0 {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			fmt.Fprintf(&b, " %11.2f ± %4.2f", Mean(xs), StdDev(xs))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
