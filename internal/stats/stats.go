// Package stats provides the small experiment harness used by the
// figure-reproduction benchmarks: multi-seed runs (the paper averages
// every point over 20 simulations), summary statistics and plain-text
// series tables mirroring the paper's plots.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min and Max return the extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Series is one experiment sweep: for every x value (e.g. the monitored
// percentage of Figures 7–8, or |V_B| of Figures 9–11), a named set of
// per-seed samples per algorithm.
//
// Every sample carries a rank — its position in the canonical serial
// order of the experiment (the engine uses the task index). All summary
// statistics are computed over the rank-sorted sample sequence, so
// merging partial series in ANY order produces bit-identical tables:
// accumulation is order-independent as long as ranks are.
type Series struct {
	// Title and XLabel/YLabel describe the figure being reproduced.
	Title, XLabel, YLabel string
	// Columns are algorithm names, in display order.
	Columns []string
	points  []seriesPoint
	// seq numbers plain Add calls so a serially built series is its own
	// canonical order.
	seq int
}

type seriesPoint struct {
	x       float64
	samples map[string][]sample
}

// sample is one ranked observation of one column.
type sample struct {
	rank  int
	value float64
}

// Sample is one ranked observation, the unit the engine's scenario
// cells return: Rank is the sample's position in the canonical serial
// sweep order. Schedulers stamp it (the experiments' runSweep assigns
// each cell's task index); cells producing samples leave it zero.
type Sample struct {
	Rank   int
	X      float64
	Column string
	Value  float64
}

// NewSeries creates an empty series with the given algorithm columns.
func NewSeries(title, xlabel, ylabel string, columns ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Columns: columns}
}

// Add records one sample of one algorithm at an x position, ranked
// after every sample already in the series (serial accumulation).
func (s *Series) Add(x float64, column string, value float64) {
	s.AddRanked(s.seq, x, column, value)
}

// AddRanked records one sample with an explicit rank. Use distinct
// ranks across concurrently produced samples (e.g. the engine task
// index): evaluation sorts samples by rank, which is what makes Merge
// order-independent. Samples with equal ranks keep insertion order.
func (s *Series) AddRanked(rank int, x float64, column string, value float64) {
	known := false
	for _, c := range s.Columns {
		if c == column {
			known = true
			break
		}
	}
	if !known {
		panic(fmt.Sprintf("stats: unknown column %q", column))
	}
	if rank >= s.seq {
		s.seq = rank + 1
	}
	for i := range s.points {
		if s.points[i].x == x {
			s.points[i].samples[column] = insertByRank(s.points[i].samples[column], sample{rank, value})
			return
		}
	}
	s.points = append(s.points, seriesPoint{
		x:       x,
		samples: map[string][]sample{column: {{rank, value}}},
	})
}

// insertByRank keeps a column's samples rank-sorted on insert (after
// any equal ranks, preserving insertion order), so evaluation never
// re-sorts. Serial accumulation appends in increasing rank, making the
// common case O(1).
func insertByRank(ss []sample, sm sample) []sample {
	i := len(ss)
	for i > 0 && ss[i-1].rank > sm.rank {
		i--
	}
	ss = append(ss, sample{})
	copy(ss[i+1:], ss[i:])
	ss[i] = sm
	return ss
}

// AddSamples records a batch of ranked samples.
func (s *Series) AddSamples(samples ...Sample) {
	for _, sm := range samples {
		s.AddRanked(sm.Rank, sm.X, sm.Column, sm.Value)
	}
}

// Merge folds the samples of every other series into s. The others must
// have the same column set. Merging is order-independent: as long as the
// partial series were built with disjoint (or globally meaningful)
// ranks, any merge order yields a bit-identical table, because all
// statistics are computed over rank-sorted samples.
func (s *Series) Merge(others ...*Series) error {
	for _, o := range others {
		if len(o.Columns) != len(s.Columns) {
			return fmt.Errorf("stats: merging series with %d columns into %d", len(o.Columns), len(s.Columns))
		}
		for i, c := range o.Columns {
			if s.Columns[i] != c {
				return fmt.Errorf("stats: column mismatch %q vs %q", c, s.Columns[i])
			}
		}
		for _, p := range o.points {
			for _, c := range o.Columns {
				for _, sm := range p.samples[c] {
					s.AddRanked(sm.rank, p.x, c, sm.value)
				}
			}
		}
	}
	return nil
}

// valuesAt returns the rank-ordered values of a column at a point
// (samples are kept rank-sorted on insert).
func (p seriesPoint) valuesAt(column string) []float64 {
	ss, ok := p.samples[column]
	if !ok || len(ss) == 0 {
		return nil
	}
	out := make([]float64, len(ss))
	for i, sm := range ss {
		out[i] = sm.value
	}
	return out
}

// MeanAt returns the mean of a column at x (NaN when absent) — used by
// tests and EXPERIMENTS.md generation.
func (s *Series) MeanAt(x float64, column string) float64 {
	for _, p := range s.points {
		if p.x == x {
			if xs := p.valuesAt(column); xs != nil {
				return Mean(xs)
			}
		}
	}
	return math.NaN()
}

// Xs returns the sorted x positions.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.points))
	for i, p := range s.points {
		xs[i] = p.x
	}
	sort.Float64s(xs)
	return xs
}

// Write renders the series as an aligned text table: one row per x, one
// mean±std pair per algorithm — the textual equivalent of the paper's
// plots.
func (s *Series) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Title)
	fmt.Fprintf(&b, "# y: %s, averaged over per-point samples (mean ± std)\n", s.YLabel)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	pts := append([]seriesPoint(nil), s.points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12g", p.x)
		for _, c := range s.Columns {
			xs := p.valuesAt(c)
			if len(xs) == 0 {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			fmt.Fprintf(&b, " %11.2f ± %4.2f", Mean(xs), StdDev(xs))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
