package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %g, want 5", Mean(xs))
	}
	// Sample std of this classic set is ≈2.138.
	if math.Abs(StdDev(xs)-2.138) > 0.01 {
		t.Fatalf("std = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases wrong")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if math.Abs(CI95(xs)-want) > 1e-12 {
		t.Fatalf("ci = %g, want %g", CI95(xs), want)
	}
	if CI95([]float64{3}) != 0 {
		t.Fatal("singleton CI must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty extrema wrong")
	}
}

func TestSeriesAddAndMeanAt(t *testing.T) {
	s := NewSeries("fig", "x", "y", "greedy", "ilp")
	s.Add(75, "greedy", 4)
	s.Add(75, "greedy", 6)
	s.Add(75, "ilp", 3)
	s.Add(80, "ilp", 4)
	if got := s.MeanAt(75, "greedy"); got != 5 {
		t.Fatalf("mean = %g, want 5", got)
	}
	if got := s.MeanAt(75, "ilp"); got != 3 {
		t.Fatalf("mean = %g, want 3", got)
	}
	if !math.IsNaN(s.MeanAt(99, "ilp")) || !math.IsNaN(s.MeanAt(80, "greedy")) {
		t.Fatal("absent points must be NaN")
	}
	xs := s.Xs()
	if len(xs) != 2 || xs[0] != 75 || xs[1] != 80 {
		t.Fatalf("xs = %v", xs)
	}
}

func TestSeriesUnknownColumnPanics(t *testing.T) {
	s := NewSeries("fig", "x", "y", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column accepted")
		}
	}()
	s.Add(1, "b", 2)
}

func TestSeriesWrite(t *testing.T) {
	s := NewSeries("Figure 7", "% monitored", "devices", "greedy", "ilp")
	s.Add(90, "greedy", 10)
	s.Add(90, "greedy", 12)
	s.Add(90, "ilp", 6)
	s.Add(75, "ilp", 4)
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 7", "greedy", "ilp", "11.00", "75", "90"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rows must be sorted by x: 75 before 90.
	if strings.Index(out, "75") > strings.Index(out, "90") {
		t.Errorf("rows not sorted:\n%s", out)
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not rendered:\n%s", out)
	}
}

// Property: Mean is within [Min, Max] and StdDev is non-negative.
func TestSummaryProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip pathological magnitudes where the sum itself
			// overflows; the harness only ever aggregates device counts
			// and fractions.
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
