package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %g, want 5", Mean(xs))
	}
	// Sample std of this classic set is ≈2.138.
	if math.Abs(StdDev(xs)-2.138) > 0.01 {
		t.Fatalf("std = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases wrong")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if math.Abs(CI95(xs)-want) > 1e-12 {
		t.Fatalf("ci = %g, want %g", CI95(xs), want)
	}
	if CI95([]float64{3}) != 0 {
		t.Fatal("singleton CI must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty extrema wrong")
	}
}

func TestSeriesAddAndMeanAt(t *testing.T) {
	s := NewSeries("fig", "x", "y", "greedy", "ilp")
	s.Add(75, "greedy", 4)
	s.Add(75, "greedy", 6)
	s.Add(75, "ilp", 3)
	s.Add(80, "ilp", 4)
	if got := s.MeanAt(75, "greedy"); got != 5 {
		t.Fatalf("mean = %g, want 5", got)
	}
	if got := s.MeanAt(75, "ilp"); got != 3 {
		t.Fatalf("mean = %g, want 3", got)
	}
	if !math.IsNaN(s.MeanAt(99, "ilp")) || !math.IsNaN(s.MeanAt(80, "greedy")) {
		t.Fatal("absent points must be NaN")
	}
	xs := s.Xs()
	if len(xs) != 2 || xs[0] != 75 || xs[1] != 80 {
		t.Fatalf("xs = %v", xs)
	}
}

func TestSeriesUnknownColumnPanics(t *testing.T) {
	s := NewSeries("fig", "x", "y", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column accepted")
		}
	}()
	s.Add(1, "b", 2)
}

func TestSeriesWrite(t *testing.T) {
	s := NewSeries("Figure 7", "% monitored", "devices", "greedy", "ilp")
	s.Add(90, "greedy", 10)
	s.Add(90, "greedy", 12)
	s.Add(90, "ilp", 6)
	s.Add(75, "ilp", 4)
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 7", "greedy", "ilp", "11.00", "75", "90"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rows must be sorted by x: 75 before 90.
	if strings.Index(out, "75") > strings.Index(out, "90") {
		t.Errorf("rows not sorted:\n%s", out)
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing cell not rendered:\n%s", out)
	}
}

// writeString renders a series or fails the test.
func writeString(t *testing.T, s *Series) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSeriesMergeOrderIndependent(t *testing.T) {
	// Values chosen so a naive append-order mean would differ in the
	// last bit between orders (floating-point addition is not
	// associative); rank-sorted evaluation must erase the difference.
	build := func() *Series { return NewSeries("fig", "x", "y", "a", "b") }
	mk := func(ranks []int) *Series {
		s := build()
		for _, r := range ranks {
			s.AddRanked(r, 10, "a", 0.1*float64(r+1))
			s.AddRanked(r, 10, "b", 1e16/float64(r+3))
			s.AddRanked(r, 20, "a", float64(r)*0.3)
		}
		return s
	}
	// The canonical serial series: all ranks in order in one series.
	serial := mk([]int{0, 1, 2, 3, 4, 5})
	// Two partial series with interleaved ranks, merged in both orders.
	evens, odds := mk([]int{0, 2, 4}), mk([]int{1, 3, 5})
	ab := build()
	if err := ab.Merge(evens, odds); err != nil {
		t.Fatal(err)
	}
	ba := build()
	if err := ba.Merge(odds, evens); err != nil {
		t.Fatal(err)
	}
	want := writeString(t, serial)
	if got := writeString(t, ab); got != want {
		t.Fatalf("evens+odds differs from serial:\n%s\nwant:\n%s", got, want)
	}
	if got := writeString(t, ba); got != want {
		t.Fatalf("odds+evens differs from serial:\n%s\nwant:\n%s", got, want)
	}
	if serial.MeanAt(10, "a") != ab.MeanAt(10, "a") || serial.MeanAt(10, "b") != ba.MeanAt(10, "b") {
		t.Fatal("means depend on merge order")
	}
}

func TestSeriesMergeColumnMismatch(t *testing.T) {
	s := NewSeries("fig", "x", "y", "a", "b")
	if err := s.Merge(NewSeries("fig", "x", "y", "a")); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
	if err := s.Merge(NewSeries("fig", "x", "y", "a", "c")); err == nil {
		t.Fatal("column-name mismatch accepted")
	}
}

func TestAddSamplesRanked(t *testing.T) {
	s := NewSeries("fig", "x", "y", "a")
	s.AddSamples(
		Sample{Rank: 2, X: 1, Column: "a", Value: 30},
		Sample{Rank: 0, X: 1, Column: "a", Value: 10},
		Sample{Rank: 1, X: 1, Column: "a", Value: 20},
	)
	o := NewSeries("fig", "x", "y", "a")
	o.Add(1, "a", 10)
	o.Add(1, "a", 20)
	o.Add(1, "a", 30)
	if writeString(t, s) != writeString(t, o) {
		t.Fatal("ranked adds differ from serial adds")
	}
	// Plain Add after ranked adds must rank after everything seen.
	s.Add(1, "a", 40)
	if got := s.MeanAt(1, "a"); got != 25 {
		t.Fatalf("mean = %g, want 25", got)
	}
}

// Property: Mean is within [Min, Max] and StdDev is non-negative.
func TestSummaryProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip pathological magnitudes where the sum itself
			// overflows; the harness only ever aggregates device counts
			// and fractions.
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
