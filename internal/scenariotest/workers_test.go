package scenariotest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lp"
	"repro/internal/passive"
	"repro/internal/scenario"
	"repro/internal/traffic"

	"repro/internal/cover"
)

// rescaleChain replays a rescale-dominant churn chain: per step, demand
// volumes are reweighted in [0.8, 1.25] while the demand set (and so
// the LP's row structure) is preserved, which is the mutation class
// under which the session's saved basis remains shippable.
func rescaleChain(s *scenario.Scenario, steps int) ([]*core.Instance, error) {
	dem := s.Demands
	in, err := traffic.Route(s.POP, traffic.Aggregate(dem))
	if err != nil {
		return nil, err
	}
	chain := []*core.Instance{in}
	for step := 1; step <= steps; step++ {
		mutated, _, err := traffic.ChurnWithDelta(s.POP, dem, traffic.ChurnConfig{
			Seed: s.Seed + int64(step), Drop: 1e-12, Add: 1e-12,
			RescaleLow: 0.8, RescaleHigh: 1.25,
		})
		if err != nil {
			return nil, err
		}
		in, err := traffic.Route(s.POP, traffic.Aggregate(mutated))
		if err != nil {
			return nil, err
		}
		chain = append(chain, in)
		dem = mutated
	}
	return chain, nil
}

// TestExactCoverWorkerIdentity extends the cross-solver harness with
// the determinism oracle of the parallel branch-and-bound: on every
// scenario family, the exact cover search must return byte-identical
// placements for Workers ∈ {1, 2, 8} — same edges in the same order,
// same covered volume, same optimality flag — both under an ample node
// budget and under a tight budget that exhausts the serial burn-in and
// forces the capped parallel path.
func TestExactCoverWorkerIdentity(t *testing.T) {
	fams := scenario.Families()
	sizes := []int{12, 16}
	seeds := []int64{3, 8}
	// Short mode keeps size 16: every size-12 instance closes inside
	// the serial burn-in, which would trip the vacuity guard below.
	if testing.Short() {
		sizes = []int{16}
		seeds = []int64{3}
	}
	type cell struct {
		fam      string
		size     int
		seed     int64
		maxNodes int
	}
	var cells []cell
	for _, fam := range fams {
		for _, size := range sizes {
			for _, seed := range seeds {
				// 50k closes most instances (identity on the proof
				// path); 2600 leaves ~550 nodes past the serial burn-in,
				// so hard instances dispatch budget-capped subtree tasks.
				for _, maxNodes := range []int{50_000, 2600} {
					cells = append(cells, cell{fam, size, seed, maxNodes})
				}
			}
		}
	}

	const k = 0.97
	ctx := context.Background()
	tasks, err := engine.Map(ctx, engine.New(engine.Options{}), len(cells), func(ctx context.Context, i int) (int, error) {
		c := cells[i]
		size := c.size
		if f, _ := scenario.Lookup(c.fam); size < f.MinSize {
			size = f.MinSize
		}
		s, err := scenario.Generate(c.fam, size, c.seed)
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: %w", c.fam, size, c.seed, err)
		}
		in, err := s.Instance()
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: %w", c.fam, size, c.seed, err)
		}

		serial := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: c.maxNodes, Workers: 1})
		dispatched := 0
		for _, w := range []int{2, 8} {
			par := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: c.maxNodes, Workers: w})
			tag := fmt.Sprintf("%s/size=%d/seed=%d/maxNodes=%d/workers=%d", c.fam, size, c.seed, c.maxNodes, w)
			if par.Exact != serial.Exact {
				t.Errorf("%s: exact flag %v, serial says %v", tag, par.Exact, serial.Exact)
			}
			if par.Covered != serial.Covered {
				t.Errorf("%s: covered %v, serial %v", tag, par.Covered, serial.Covered)
			}
			if len(par.Edges) != len(serial.Edges) {
				t.Errorf("%s: %d devices, serial %d", tag, len(par.Edges), len(serial.Edges))
				continue
			}
			for j := range par.Edges {
				if par.Edges[j] != serial.Edges[j] {
					t.Errorf("%s: edges differ at %d: %v vs %v", tag, j, par.Edges, serial.Edges)
					break
				}
			}
			dispatched += par.Stats.SubtreeTasks
		}
		return dispatched, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	total := 0
	for _, n := range tasks {
		total += n
	}
	// The oracle is vacuous if every instance closes inside the serial
	// burn-in: the sweep must push at least some searches into the
	// parallel phase.
	if total == 0 {
		t.Fatal("no scenario instance dispatched subtree tasks — the parallel phase never ran")
	}
}

// TestWarmResolveWorkerIdentity extends the determinism oracle to warm
// re-solves: replaying each family's churn chain, a solve seeded with
// the previous step's artifacts (incumbent hint + root LP basis, what
// Session.Resolve ships) must return byte-identical placements for
// Workers ∈ {1, 2, 8}, each identical to the cold serial solve of the
// same instance. This is the resolve==cold lock at the cover layer,
// where the worker pool actually lives (the facade's tap/exact solve
// is serial; invariant 6 covers it at Workers = 1). Comparisons apply
// only when both sides prove optimality — a budget-capped incumbent is
// documented to be warm-dependent.
//
// The chain uses churn's rescale mutation (volumes reweighted, rows
// kept): it preserves the root LP's shape, so the saved basis actually
// engages and the vacuity guard below has teeth. Row-churning chains
// (drop/add) are exercised by invariant 6 — there the artifacts are
// legitimately rejected on revalidation, which this test cannot
// distinguish from a warm path that silently broke.
func TestWarmResolveWorkerIdentity(t *testing.T) {
	fams := scenario.Families()
	// Seeds and coverage are picked so that on at least the pop and
	// churn families the cold solve reaches the root LP (captures a
	// basis) and the next step consumes it — the other families ride
	// along for the identity check even where warmth never engages.
	seeds := []int64{2, 4}
	if testing.Short() {
		seeds = []int64{2}
	}
	const (
		k        = 0.95
		size     = 16
		maxNodes = 50_000
	)
	ctx := context.Background()
	warmEngaged, err := engine.Map(ctx, engine.New(engine.Options{}), len(fams)*len(seeds), func(ctx context.Context, i int) (int, error) {
		fam, seed := fams[i/len(seeds)], seeds[i%len(seeds)]
		sz := size
		if f, _ := scenario.Lookup(fam); sz < f.MinSize {
			sz = f.MinSize
		}
		s, err := scenario.Generate(fam, sz, seed)
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: %w", fam, sz, seed, err)
		}
		chain, err := rescaleChain(s, 2)
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: churn chain: %w", fam, sz, seed, err)
		}
		engaged := 0
		var prevHint []int
		var prevBasis *lp.Basis
		for step, in := range chain {
			cold := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: maxNodes, Workers: 1})
			var warm *cover.Warm
			if step > 0 && (prevHint != nil || prevBasis != nil) {
				warm = &cover.Warm{Hint: prevHint, Basis: prevBasis}
			}
			capt := &cover.Capture{}
			for _, w := range []int{1, 2, 8} {
				opts := cover.ExactOptions{MaxNodes: maxNodes, Workers: w, Warm: warm}
				if w == 1 {
					opts.Capture = capt // next step's seed: same artifacts for every worker count
				}
				got := passive.ExactCover(ctx, in, k, opts)
				engaged += got.Stats.WarmStarts
				if !got.Exact || !cold.Exact {
					continue
				}
				tag := fmt.Sprintf("%s/size=%d/seed=%d/step=%d/workers=%d", fam, sz, seed, step, w)
				if got.Covered != cold.Covered {
					t.Errorf("%s: warm covered %v, cold serial %v", tag, got.Covered, cold.Covered)
				}
				if len(got.Edges) != len(cold.Edges) {
					t.Errorf("%s: warm placed %d devices, cold serial %d", tag, len(got.Edges), len(cold.Edges))
					continue
				}
				for j := range got.Edges {
					if got.Edges[j] != cold.Edges[j] {
						t.Errorf("%s: edges differ at %d: %v vs %v", tag, j, got.Edges, cold.Edges)
						break
					}
				}
			}
			prevBasis = capt.Basis
			prevHint = nil
			if cold.Exact {
				prevHint = make([]int, len(cold.Edges))
				for j, e := range cold.Edges {
					prevHint[j] = int(e)
				}
			}
		}
		return engaged, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	total := 0
	for _, n := range warmEngaged {
		total += n
	}
	// The lock is vacuous if no warm artifact was ever consumed.
	if total == 0 {
		t.Fatal("no warm solve consumed an artifact — the warm path never engaged")
	}
}
