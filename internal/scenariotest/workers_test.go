package scenariotest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/passive"
	"repro/internal/scenario"

	"repro/internal/cover"
)

// TestExactCoverWorkerIdentity extends the cross-solver harness with
// the determinism oracle of the parallel branch-and-bound: on every
// scenario family, the exact cover search must return byte-identical
// placements for Workers ∈ {1, 2, 8} — same edges in the same order,
// same covered volume, same optimality flag — both under an ample node
// budget and under a tight budget that exhausts the serial burn-in and
// forces the capped parallel path.
func TestExactCoverWorkerIdentity(t *testing.T) {
	fams := scenario.Families()
	sizes := []int{12, 16}
	seeds := []int64{3, 8}
	// Short mode keeps size 16: every size-12 instance closes inside
	// the serial burn-in, which would trip the vacuity guard below.
	if testing.Short() {
		sizes = []int{16}
		seeds = []int64{3}
	}
	type cell struct {
		fam      string
		size     int
		seed     int64
		maxNodes int
	}
	var cells []cell
	for _, fam := range fams {
		for _, size := range sizes {
			for _, seed := range seeds {
				// 50k closes most instances (identity on the proof
				// path); 2600 leaves ~550 nodes past the serial burn-in,
				// so hard instances dispatch budget-capped subtree tasks.
				for _, maxNodes := range []int{50_000, 2600} {
					cells = append(cells, cell{fam, size, seed, maxNodes})
				}
			}
		}
	}

	const k = 0.97
	ctx := context.Background()
	tasks, err := engine.Map(ctx, engine.New(engine.Options{}), len(cells), func(ctx context.Context, i int) (int, error) {
		c := cells[i]
		size := c.size
		if f, _ := scenario.Lookup(c.fam); size < f.MinSize {
			size = f.MinSize
		}
		s, err := scenario.Generate(c.fam, size, c.seed)
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: %w", c.fam, size, c.seed, err)
		}
		in, err := s.Instance()
		if err != nil {
			return 0, fmt.Errorf("%s/%d/%d: %w", c.fam, size, c.seed, err)
		}

		serial := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: c.maxNodes, Workers: 1})
		dispatched := 0
		for _, w := range []int{2, 8} {
			par := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: c.maxNodes, Workers: w})
			tag := fmt.Sprintf("%s/size=%d/seed=%d/maxNodes=%d/workers=%d", c.fam, size, c.seed, c.maxNodes, w)
			if par.Exact != serial.Exact {
				t.Errorf("%s: exact flag %v, serial says %v", tag, par.Exact, serial.Exact)
			}
			if par.Covered != serial.Covered {
				t.Errorf("%s: covered %v, serial %v", tag, par.Covered, serial.Covered)
			}
			if len(par.Edges) != len(serial.Edges) {
				t.Errorf("%s: %d devices, serial %d", tag, len(par.Edges), len(serial.Edges))
				continue
			}
			for j := range par.Edges {
				if par.Edges[j] != serial.Edges[j] {
					t.Errorf("%s: edges differ at %d: %v vs %v", tag, j, par.Edges, serial.Edges)
					break
				}
			}
			dispatched += par.Stats.SubtreeTasks
		}
		return dispatched, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	total := 0
	for _, n := range tasks {
		total += n
	}
	// The oracle is vacuous if every instance closes inside the serial
	// burn-in: the sweep must push at least some searches into the
	// parallel phase.
	if total == 0 {
		t.Fatal("no scenario instance dispatched subtree tasks — the parallel phase never ran")
	}
}
